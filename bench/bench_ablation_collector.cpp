// Ablation: collector polling period vs estimate quality vs overhead.
//
// The SNMP collector sees the network only through counter deltas, so its
// period sets a sampling floor: bursts shorter than a period smear into
// the average.  This bench runs on-off traffic (true mean 30 Mbps, peaks
// of 60) against polling periods from 0.5 s to 16 s and reports the
// measured median/quartiles plus the management traffic each period
// costs.  It also contrasts the passive SNMP collector with the active
// benchmark collector, whose probes cost simulated seconds instead of
// datagrams (the measurement *perturbs* the network).
#include <iostream>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "collector/benchmark_collector.hpp"
#include "netsim/traffic.hpp"

int main() {
  using namespace remos;
  using bench::row;
  using bench::rule;

  std::cout << "Ablation: polling period vs estimate fidelity "
               "(on-off traffic: 60 Mbps at 50% duty, true mean 30)\n\n";
  const std::vector<int> w{10, 9, 9, 9, 9, 12, 13};
  row({"period s", "q1", "median", "q3", "mean", "mgmt kbit/s",
       "wire dgrams"},
      w);
  rule(w);

  for (const double period : {0.5, 1.0, 2.0, 4.0, 8.0, 16.0}) {
    apps::CmuHarness::Options o;
    o.poll_period = period;
    apps::CmuHarness harness(o);
    harness.start(2.0);
    netsim::OnOffTraffic::Config cfg;
    cfg.rate = mbps(60);
    cfg.mean_on = 3.0;
    cfg.mean_off = 3.0;
    cfg.seed = 77;
    netsim::OnOffTraffic gen(harness.sim(),
                             harness.sim().topology().id_of("m-4"),
                             harness.sim().topology().id_of("m-5"), cfg);
    const double kRun = 240.0;
    harness.sim().run_for(kRun);

    bool flipped = false;
    const auto* link =
        harness.collector().model().find_link("m-4", "timberline", &flipped);
    const Measurement m = link->history.used_measurement(
        harness.sim().now(), kRun, !flipped);
    const auto& t = harness.transport();
    row({fixed(period, 1), fixed(to_mbps(m.quartiles.q1), 1),
         fixed(to_mbps(m.quartiles.median), 1),
         fixed(to_mbps(m.quartiles.q3), 1), fixed(to_mbps(m.mean), 1),
         fixed(static_cast<double>(t.bytes_sent()) * 8.0 /
                   harness.sim().now() / 1e3,
               1),
         std::to_string(t.datagrams_sent())},
        w);
  }

  std::cout << "\nShort periods resolve the on/off bimodality (q1 near 0, "
               "q3 near 60); long periods\nsmear everything toward the "
               "30 Mbps mean while costing proportionally less\n"
               "management traffic.  The mean column is period-invariant "
               "-- only the shape degrades.\n\n";

  std::cout << "Active benchmark collector on the same traffic "
               "(probe = 256 KiB bulk transfer):\n\n";
  const std::vector<int> w2{10, 12, 14, 16};
  row({"round", "m-4/m-5 est", "true avail now", "probe cost s"}, w2);
  rule(w2);
  {
    apps::CmuHarness harness;  // SNMP side unused; we need the simulator
    harness.start(2.0);
    netsim::OnOffTraffic::Config cfg;
    cfg.rate = mbps(60);
    cfg.mean_on = 3.0;
    cfg.mean_off = 3.0;
    cfg.seed = 77;
    netsim::OnOffTraffic gen(harness.sim(),
                             harness.sim().topology().id_of("m-4"),
                             harness.sim().topology().id_of("m-5"), cfg);
    collector::BenchmarkCollector probes(harness.sim(), {"m-4", "m-5"});
    probes.discover();
    for (int round = 1; round <= 6; ++round) {
      harness.sim().run_for(10.0);
      const double truth =
          mbps(100) - harness.sim().link_tx_rate(
                          harness.sim().topology().link_between(
                              harness.sim().topology().id_of("m-4"),
                              harness.sim().topology().id_of("timberline")),
                          true);
      probes.poll();
      const auto* l = probes.model().find_link("m-4", "m-5");
      const collector::Sample& s = l->history.latest();
      row({std::to_string(round),
           fixed(to_mbps(l->capacity - std::max(s.used_ab, s.used_ba)), 1),
           fixed(to_mbps(truth), 1),
           fixed(probes.last_poll_duration(), 3)},
          w2);
    }
  }
  std::cout << "\nThe active probe tracks availability without SNMP "
               "access but spends simulated\nseconds (and competes with "
               "real traffic) for every sample.\n";
  return 0;
}
