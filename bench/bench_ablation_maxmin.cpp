// Microbenchmark: the exact weighted max-min (water-filling) solver.
//
// DESIGN.md calls out exact progressive filling as a design choice over
// approximate sharing estimates; this bench shows its cost stays
// negligible at testbed-relevant scales and grows gently with flows and
// resources, justifying re-solving on every simulator event and every
// flow query.
#include <benchmark/benchmark.h>

#include "netsim/maxmin.hpp"
#include "util/rng.hpp"

namespace {

using namespace remos;
using netsim::MaxMinFlow;

struct Instance {
  std::vector<double> capacity;
  std::vector<MaxMinFlow> flows;
};

Instance random_instance(std::size_t resources, std::size_t flows,
                         std::uint64_t seed) {
  Rng rng(seed);
  Instance inst;
  inst.capacity.resize(resources);
  for (auto& c : inst.capacity) c = rng.uniform(10.0, 1000.0);
  inst.flows.resize(flows);
  for (auto& f : inst.flows) {
    const std::size_t touches = 1 + rng.below(std::min<std::size_t>(
                                        resources, 6));  // path length
    for (std::size_t k = 0; k < touches; ++k) {
      const std::size_t r = rng.below(resources);
      if (std::find(f.resources.begin(), f.resources.end(), r) ==
          f.resources.end())
        f.resources.push_back(r);
    }
    f.weight = rng.uniform(0.5, 2.0);
    if (rng.chance(0.25)) f.rate_cap = rng.uniform(1.0, 100.0);
  }
  return inst;
}

void BM_MaxMin(benchmark::State& state) {
  const auto resources = static_cast<std::size_t>(state.range(0));
  const auto flows = static_cast<std::size_t>(state.range(1));
  const Instance inst = random_instance(resources, flows, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netsim::max_min_allocate(inst.capacity, inst.flows));
  }
  state.SetComplexityN(state.range(1));
}
BENCHMARK(BM_MaxMin)
    ->Args({8, 4})       // one busy router
    ->Args({22, 12})     // the CMU testbed under a parallel app
    ->Args({64, 64})
    ->Args({256, 256})
    ->Args({256, 1024});

// The testbed case the simulator hits on every flow start/stop during a
// Table 2 run: 22 directed links + a handful of flows.
void BM_MaxMinTestbedEvent(benchmark::State& state) {
  const Instance inst = random_instance(22, 14, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        netsim::max_min_allocate(inst.capacity, inst.flows));
  }
}
BENCHMARK(BM_MaxMinTestbedEvent);

void BM_MaxMinFairnessCheck(benchmark::State& state) {
  const Instance inst = random_instance(64, 64, 9);
  const auto result = netsim::max_min_allocate(inst.capacity, inst.flows);
  for (auto _ : state) {
    benchmark::DoNotOptimize(netsim::is_max_min_fair(
        inst.capacity, inst.flows, result.rates));
  }
}
BENCHMARK(BM_MaxMinFairnessCheck);

}  // namespace

BENCHMARK_MAIN();
