// Ablation: predictors for kFuture queries across traffic shapes.
//
// §4.4 allows "a simplistic model to predict future performance from
// current and historical data" -- but which one?  This bench collects the
// SNMP collector's per-link usage series under three canonical shapes
// (CBR, on-off bursts, Poisson transfer mix) and scores each predictor's
// point forecast (median) against the realized mean usage over the next
// 10 s, as mean absolute error in Mbps.
#include <cmath>
#include <iostream>
#include <memory>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "core/predictor.hpp"
#include "netsim/traffic.hpp"

namespace {

using namespace remos;

std::vector<core::TimedSample> series_for(
    const std::string& shape, std::uint64_t seed,
    std::vector<std::pair<Seconds, double>>* future_truth) {
  apps::CmuHarness harness;
  harness.start(2.0);
  netsim::Simulator& sim = harness.sim();
  const auto src = sim.topology().id_of("m-4");
  const auto dst = sim.topology().id_of("m-5");

  std::unique_ptr<netsim::CbrTraffic> cbr;
  std::unique_ptr<netsim::OnOffTraffic> onoff;
  std::unique_ptr<netsim::PoissonTransfers> poisson;
  if (shape == "cbr") {
    cbr = std::make_unique<netsim::CbrTraffic>(sim, src, dst, mbps(40));
  } else if (shape == "on-off") {
    netsim::OnOffTraffic::Config cfg;
    cfg.rate = mbps(60);
    cfg.mean_on = 4.0;
    cfg.mean_off = 4.0;
    cfg.seed = seed;
    onoff = std::make_unique<netsim::OnOffTraffic>(sim, src, dst, cfg);
  } else {
    netsim::PoissonTransfers::Config cfg;
    cfg.arrivals_per_sec = 1.5;
    cfg.mean_size = 2e6;
    cfg.seed = seed;
    poisson = std::make_unique<netsim::PoissonTransfers>(sim, src, dst, cfg);
  }
  sim.run_for(400.0);

  // Collector's view of the m-4 uplink.
  bool flipped = false;
  const auto* link =
      harness.collector().model().find_link("m-4", "timberline", &flipped);
  std::vector<core::TimedSample> out;
  for (std::size_t i = 0; i < link->history.size(); ++i) {
    const collector::Sample& s = link->history.sample(i);
    out.push_back(
        core::TimedSample{s.at, flipped ? s.used_ba : s.used_ab});
  }
  // "Truth" for horizon scoring: mean usage over (t, t+10] from the same
  // series (the collector samples densely enough at 2 s polls).
  for (std::size_t i = 0; i + 5 < out.size(); ++i) {
    double sum = 0;
    for (std::size_t k = 1; k <= 5; ++k) sum += out[i + k].value;
    future_truth->push_back({out[i].at, sum / 5.0});
  }
  return out;
}

}  // namespace

int main() {
  using bench::row;
  using bench::rule;

  std::vector<std::unique_ptr<core::Predictor>> predictors;
  predictors.push_back(std::make_unique<core::LastValuePredictor>());
  predictors.push_back(std::make_unique<core::WindowMeanPredictor>());
  predictors.push_back(std::make_unique<core::EwmaPredictor>(0.3));
  predictors.push_back(std::make_unique<core::EwmaPredictor>(0.8));

  std::cout << "Ablation: forecast error (MAE, Mbps) of the next-10 s "
               "mean usage, per traffic shape\n(30 s history window, "
               "2 s polls, 400 s runs)\n\n";
  std::vector<int> w{10};
  std::vector<std::string> header{"shape"};
  for (const auto& p : predictors) {
    header.push_back(p->name());
    w.push_back(13);
  }
  row(header, w);
  rule(w);

  for (const std::string shape : {"cbr", "on-off", "poisson"}) {
    std::vector<std::pair<Seconds, double>> truth;
    const auto series = series_for(shape, 5, &truth);
    std::vector<std::string> cells{shape};
    for (const auto& p : predictors) {
      double abs_err = 0;
      std::size_t scored = 0;
      for (const auto& [at, actual] : truth) {
        // History window: samples in (at-30, at].
        std::vector<core::TimedSample> window;
        for (const auto& s : series)
          if (s.at > at - 30.0 && s.at <= at) window.push_back(s);
        if (window.size() < 3) continue;
        const Measurement forecast = p->predict(window);
        abs_err += std::abs(forecast.quartiles.median - actual);
        ++scored;
      }
      cells.push_back(
          fixed(to_mbps(abs_err / static_cast<double>(scored)), 2));
    }
    row(cells, w);
  }
  std::cout << "\nExpectation: on CBR everything is exact; on bursts the "
               "smoothers beat last-value\n(which chases the current "
               "burst state); the heavy-tailed mix favors wider\n"
               "smoothing.  This motivates EWMA as the default kFuture "
               "predictor.\n";
  return 0;
}
