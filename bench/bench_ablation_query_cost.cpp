// Ablation: distance matrices from topology queries vs flow queries.
//
// Paper §7.3: "the information to compute available bandwidth between
// pairs of nodes could have been obtained with flow queries also, but
// O(nodes^2) queries would have been needed, implying a much higher
// overhead which deteriorates rapidly for larger networks."  This bench
// quantifies that claim on synthetic two-level trees of growing size:
// one remos_get_graph + local graph arithmetic versus n^2 remos_flow_info
// calls, same resulting distance matrix.
#include <chrono>
#include <iostream>

#include "bench/bench_common.hpp"
#include "cluster/distance.hpp"
#include "collector/static_collector.hpp"
#include "core/modeler.hpp"

namespace {

using namespace remos;

/// hosts spread over sqrt(n) routers in a router ring.
collector::NetworkModel tree_model(std::size_t hosts) {
  collector::NetworkModel m;
  const std::size_t routers = std::max<std::size_t>(2, hosts / 4);
  for (std::size_t r = 0; r < routers; ++r)
    m.upsert_node("r" + std::to_string(r), true);
  for (std::size_t r = 0; r < routers; ++r)
    m.upsert_link("r" + std::to_string(r),
                  "r" + std::to_string((r + 1) % routers), mbps(155),
                  millis(0.2));
  for (std::size_t h = 0; h < hosts; ++h) {
    const std::string name = "h" + std::to_string(h);
    m.upsert_node(name, false);
    m.upsert_link(name, "r" + std::to_string(h % routers), mbps(100),
                  millis(0.2));
  }
  return m;
}

std::vector<std::string> host_names(std::size_t hosts) {
  std::vector<std::string> out;
  for (std::size_t h = 0; h < hosts; ++h)
    out.push_back("h" + std::to_string(h));
  return out;
}

double ms_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  using bench::row;
  using bench::rule;
  double benchmark_guard = 0;  // defeats dead-code elimination

  std::cout << "Ablation: one topology query vs n^2 flow queries for a "
               "distance matrix\n(times are wall-clock milliseconds per "
               "full matrix)\n\n";
  const std::vector<int> w{7, 14, 14, 8};
  row({"hosts", "get_graph ms", "flow-query ms", "ratio"}, w);
  rule(w);

  for (const std::size_t n : {4u, 8u, 16u, 32u, 48u}) {
    collector::StaticCollector source(tree_model(n));
    core::Modeler modeler(source);
    const auto hosts = host_names(n);

    // Best of several repetitions per approach (scheduler noise on this
    // scale dwarfs the measured work).
    constexpr int kReps = 5;
    double graph_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t0 = std::chrono::steady_clock::now();
      const core::NetworkGraph g =
          modeler.get_graph(hosts, core::Timeframe::statics());
      const cluster::DistanceMatrix matrix(g, hosts);
      graph_ms = std::min(graph_ms, ms_since(t0));
      benchmark_guard += matrix.at(0, 1);
    }

    double flow_ms = std::numeric_limits<double>::infinity();
    for (int rep = 0; rep < kReps; ++rep) {
      const auto t1 = std::chrono::steady_clock::now();
      for (const std::string& a : hosts) {
        for (const std::string& b : hosts) {
          if (a == b) continue;
          core::FlowQuery q;
          q.independent = core::FlowRequest{a, b, 0};
          q.timeframe = core::Timeframe::statics();
          benchmark_guard +=
              modeler.flow_info(q).independent->bandwidth.quartiles.median;
        }
      }
      flow_ms = std::min(flow_ms, ms_since(t1));
    }

    row({std::to_string(n), fixed(graph_ms, 2), fixed(flow_ms, 2),
         fixed(flow_ms / std::max(graph_ms, 1e-6), 1) + "x"},
        w);
  }
  std::cout << "\nExpectation (paper): the flow-query approach "
               "deteriorates quadratically; the\ntopology-query approach "
               "is why Remos exposes the graph at all.\n";
  if (benchmark_guard < 0) std::cout << benchmark_guard;  // never true
  return 0;
}
