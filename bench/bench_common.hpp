// Shared helpers for the experiment benches: fixed-width table printing
// and the standard Table-2/3 traffic blast.
//
// Each bench binary regenerates one table or figure of the paper and
// prints the paper's reported value next to the measured one, so the
// reproduction quality is visible in the output itself (EXPERIMENTS.md
// records a snapshot).
#pragma once

#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "netsim/traffic.hpp"
#include "util/strings.hpp"

namespace remos::bench {

/// Prints one table row of right-aligned columns.
inline void row(const std::vector<std::string>& cells,
                const std::vector<int>& widths) {
  std::string line;
  for (std::size_t i = 0; i < cells.size(); ++i)
    line += pad_left(cells[i], static_cast<std::size_t>(widths[i])) + "  ";
  std::cout << line << "\n";
}

inline void rule(const std::vector<int>& widths) {
  std::size_t total = 0;
  for (int w : widths) total += static_cast<std::size_t>(w) + 2;
  std::cout << std::string(total, '-') << "\n";
}

/// The synthetic competing program of §8.2: "generates significant
/// traffic between nodes m-6 and m-8".  A 95 Mbps constant source with a
/// very high max-min weight models the non-backing-off 1998 blaster: it
/// holds its full 95 Mbps even when half a dozen TCP-like application
/// flows share the link (they split the remaining ~5 Mbps), which is
/// what produces the paper's 79-194% penalties in Table 2.
inline std::unique_ptr<netsim::CbrTraffic> external_traffic(
    netsim::Simulator& sim, const std::string& src = "m-6",
    const std::string& dst = "m-8") {
  return std::make_unique<netsim::CbrTraffic>(sim, src, dst, mbps(95),
                                              120.0, "external");
}

/// Percent increase of b over a, formatted like the paper's tables.
inline std::string pct_increase(double a, double b) {
  return fixed((b - a) / a * 100.0, 0);
}

}  // namespace remos::bench
