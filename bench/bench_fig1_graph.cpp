// Figure 1 -- "Remos graph representing the structure of a simple
// network."  The same logical graph describes very different physical
// networks depending on the *node* performance annotation: with 100 Mbps
// switch backplanes the 10 Mbps access links govern (hosts 1-4 can push
// 40 Mbps aggregate to hosts 5-8); with 10 Mbps backplanes the two
// network nodes themselves bottleneck everything at 10 Mbps -- which is
// also how Remos models two shared 10 Mbps Ethernets joined by a fast
// uplink.  This bench reproduces both readings via flow queries.
#include <iostream>

#include "bench/bench_common.hpp"
#include "collector/static_collector.hpp"
#include "core/modeler.hpp"

namespace {

using namespace remos;

collector::NetworkModel figure1_model(BitsPerSec backplane) {
  collector::NetworkModel m;
  m.upsert_node("A", true).internal_bw = backplane;
  m.upsert_node("B", true).internal_bw = backplane;
  for (int i = 1; i <= 8; ++i) {
    const std::string host = std::to_string(i);
    m.upsert_node(host, false);
    m.upsert_link(host, i <= 4 ? "A" : "B", mbps(10), millis(0.2));
  }
  m.upsert_link("A", "B", mbps(100), millis(0.2));
  return m;
}

void evaluate(BitsPerSec backplane, const char* reading) {
  collector::StaticCollector source(figure1_model(backplane));
  core::Modeler modeler(source);

  std::cout << "--- internal bandwidth of A and B: "
            << to_mbps(backplane) << " Mbps (" << reading << ") ---\n";
  const core::NetworkGraph g = modeler.get_graph(
      {"1", "2", "3", "4", "5", "6", "7", "8"}, core::Timeframe::statics());
  std::cout << g.to_string() << "\n";

  core::FlowQuery q;
  for (int i = 1; i <= 4; ++i)
    q.variable.push_back(core::FlowRequest{std::to_string(i),
                                           std::to_string(i + 4), 1.0});
  q.timeframe = core::Timeframe::statics();
  const core::FlowQueryResult r = modeler.flow_info(q);
  double total = 0;
  for (const core::FlowResult& f : r.variable) {
    std::cout << "  flow " << f.request.src << " -> " << f.request.dst
              << ": " << to_mbps(f.bandwidth.quartiles.median) << " Mbps\n";
    total += f.bandwidth.quartiles.median;
  }
  std::cout << "  aggregate 1-4 -> 5-8: " << to_mbps(total) << " Mbps\n\n";
}

}  // namespace

int main() {
  std::cout << "Figure 1: one logical graph, two physical readings\n\n";
  evaluate(mbps(100),
           "switched LAN: access links are the constraint; expect 4 x 10 "
           "= 40 Mbps");
  evaluate(mbps(10),
           "two shared 10 Mbps Ethernets: network nodes are the "
           "constraint; expect 10 Mbps");
  std::cout << "Expectation (paper, section 4.3): the identical topology "
               "yields 40 vs 10 Mbps\naggregate purely from the node "
               "annotation -- why Remos annotates nodes, not just\n"
               "links.\n";
  return 0;
}
