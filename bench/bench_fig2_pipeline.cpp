// Figure 2 -- the Remos implementation architecture: applications ->
// Modeler -> cooperating Collectors -> SNMP / benchmarks.  This bench
// drives the whole pipeline: an SNMP collector covers the CMU testbed, a
// benchmark-probing collector covers endpoint pairs "through the cloud"
// (as the paper does for networks that do not answer SNMP), a
// CollectorSet merges them, and two application-level queries are
// answered from the merged model.  It also accounts the management
// overhead -- the paper's claim is that "the cost an application pays ...
// is low and directly related to the depth and frequency of its
// requests".
#include <iostream>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "collector/benchmark_collector.hpp"
#include "collector/collector_set.hpp"
#include "core/modeler.hpp"
#include "netsim/traffic.hpp"

int main() {
  using namespace remos;
  using bench::row;
  using bench::rule;

  apps::CmuHarness harness;  // Collector 1: SNMP, polling every 2 s
  harness.start(10.0);
  netsim::CbrTraffic cross(harness.sim(), "m-6", "m-8", mbps(50));

  // Collector 2: active benchmark probes over three endpoints.
  collector::BenchmarkCollector probes(harness.sim(),
                                       {"m-1", "m-4", "m-8"});
  probes.discover();
  for (int round = 0; round < 5; ++round) {
    harness.sim().run_for(4.0);
    probes.poll();
  }

  collector::CollectorSet set;
  set.add(harness.collector());
  set.add(probes);
  core::Modeler modeler(set);
  modeler.set_clock([&] { return harness.sim().now(); });

  std::cout << "Figure 2: two cooperating collectors feeding one modeler\n\n";
  const std::vector<int> w{26, 14, 14};
  row({"", "snmp", "benchmark"}, w);
  rule(w);
  row({"nodes discovered",
       std::to_string(harness.collector().model().nodes().size()),
       std::to_string(probes.model().nodes().size())},
      w);
  row({"links modeled",
       std::to_string(harness.collector().model().links().size()),
       std::to_string(probes.model().links().size())},
      w);
  row({"poll rounds",
       std::to_string(harness.collector().polls_completed()), "5"}, w);
  row({"probe cost (sim s/round)", "-",
       fixed(probes.last_poll_duration(), 3)},
      w);
  const collector::NetworkModel merged = set.merged();
  std::cout << "\nmerged model: " << merged.nodes().size() << " nodes, "
            << merged.links().size()
            << " links (physical + logical pair links)\n";

  // Application 1: topology query through the merged view.
  const core::NetworkGraph g = modeler.get_graph(
      {"m-1", "m-6", "m-8"}, core::Timeframe::history(15.0));
  std::cout << "\napplication 1, remos_get_graph({m-1, m-6, m-8}):\n"
            << g.to_string();

  // Application 2: flow query crossing the measured hot link.
  core::FlowQuery q;
  q.independent = core::FlowRequest{"m-4", "m-8", 0};
  q.timeframe = core::Timeframe::history(15.0);
  const auto r = modeler.flow_info(q);
  std::cout << "\napplication 2, remos_flow_info(independent m-4 -> m-8): "
            << to_mbps(r.independent->bandwidth.quartiles.median)
            << " Mbps median (50 Mbps of the trunk is taken)\n";

  // Management overhead accounting.
  const auto& t = harness.transport();
  std::cout << "\nmanagement overhead so far: " << t.datagrams_sent()
            << " datagrams, " << t.bytes_sent() << " bytes ("
            << fixed(static_cast<double>(t.bytes_sent()) * 8.0 /
                         harness.sim().now() / 1e3,
                     1)
            << " kbit/s average against 100 Mbps links)\n";
  return 0;
}
