// Figures 3 and 4 -- the CMU testbed and node selection on it with busy
// communication links.  Reproduces the paper's worked example exactly:
//   Traffic route: m-6 -> timberline -> whiteface -> m-8
//   Start node:    m-4
//   Selected:      m-1, m-2, m-4, m-5
// and prints the greedy growth step by step so the decision is visible.
#include <algorithm>
#include <iostream>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "cluster/clustering.hpp"
#include "netsim/testbeds.hpp"

int main() {
  using namespace remos;

  // Figure 3: the testbed itself.
  const netsim::Topology topo = netsim::make_cmu_testbed();
  std::cout << "Figure 3: CMU testbed -- " << topo.node_count()
            << " nodes, " << topo.link_count()
            << " full-duplex 100 Mbps links\n";
  for (const auto& r : netsim::CmuNames::routers()) {
    std::cout << "  " << r << ":";
    for (netsim::LinkId lid : topo.links_at(topo.id_of(r))) {
      const auto& peer = topo.node(topo.link(lid).other(topo.id_of(r)));
      std::cout << " " << peer.name;
    }
    std::cout << "\n";
  }

  // Figure 4: selection with the blast active.
  apps::CmuHarness harness;
  harness.start(5.0);
  const auto blast = bench::external_traffic(harness.sim());
  harness.sim().run_for(12.0);

  const core::NetworkGraph g = harness.modeler().get_graph(
      harness.hosts(), core::Timeframe::history(10.0));
  const cluster::DistanceMatrix d(g, harness.hosts());

  std::cout << "\nFigure 4: greedy growth from start node m-4 with the "
               "m-6 -> m-8 blast active\n";
  for (std::size_t k = 1; k <= 4; ++k) {
    const auto step = cluster::greedy_cluster(d, "m-4", k);
    std::cout << "  k=" << k << ": { " << join(step.nodes, ", ")
              << " }  cost " << fixed(step.cost, 3) << "\n";
  }
  auto final_set = cluster::greedy_cluster(d, "m-4", 4).nodes;
  std::sort(final_set.begin(), final_set.end());
  std::cout << "\nselected: { " << join(final_set, ", ")
            << " }   paper: { m-1, m-2, m-4, m-5 }\n";
  std::cout << (final_set ==
                        std::vector<std::string>{"m-1", "m-2", "m-4", "m-5"}
                    ? "MATCH: selection avoids every link the blast touches\n"
                    : "MISMATCH vs the paper's reported selection\n");
  return 0;
}
