// Microbenchmarks of the Remos query API (google-benchmark).
//
// The paper claims "the cost that an application pays in terms of runtime
// overhead is low and directly related to the depth and frequency of its
// requests for network information."  These timings pin that down for
// this implementation: per-query cost of remos_get_graph and
// remos_flow_info as functions of queried-node count and flow count, and
// the cost of one collector poll round over the wire protocol.
#include <benchmark/benchmark.h>

#include "apps/harness.hpp"
#include "collector/static_collector.hpp"
#include "core/modeler.hpp"

namespace {

using namespace remos;

/// Static model shaped like the query-cost ablation's two-level tree.
collector::NetworkModel tree_model(std::size_t hosts) {
  collector::NetworkModel m;
  const std::size_t routers = std::max<std::size_t>(2, hosts / 4);
  for (std::size_t r = 0; r < routers; ++r)
    m.upsert_node("r" + std::to_string(r), true);
  for (std::size_t r = 0; r < routers; ++r)
    m.upsert_link("r" + std::to_string(r),
                  "r" + std::to_string((r + 1) % routers), mbps(155),
                  millis(0.2));
  for (std::size_t h = 0; h < hosts; ++h) {
    const std::string name = "h" + std::to_string(h);
    m.upsert_node(name, false);
    m.upsert_link(name, "r" + std::to_string(h % routers), mbps(100),
                  millis(0.2));
  }
  return m;
}

std::vector<std::string> host_names(std::size_t hosts) {
  std::vector<std::string> out;
  for (std::size_t h = 0; h < hosts; ++h)
    out.push_back("h" + std::to_string(h));
  return out;
}

void BM_GetGraph(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  collector::StaticCollector source(tree_model(n));
  core::Modeler modeler(source);
  const auto hosts = host_names(n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        modeler.get_graph(hosts, core::Timeframe::statics()));
  }
}
BENCHMARK(BM_GetGraph)->Arg(4)->Arg(8)->Arg(16)->Arg(32)->Arg(64);

void BM_FlowInfo(benchmark::State& state) {
  const auto flows = static_cast<std::size_t>(state.range(0));
  collector::StaticCollector source(tree_model(32));
  core::Modeler modeler(source);
  core::FlowQuery q;
  q.timeframe = core::Timeframe::statics();
  for (std::size_t i = 0; i < flows; ++i)
    q.variable.push_back(core::FlowRequest{
        "h" + std::to_string(i % 32),
        "h" + std::to_string((i + 7) % 32), 1.0 + static_cast<double>(i)});
  for (auto _ : state) {
    benchmark::DoNotOptimize(modeler.flow_info(q));
  }
}
BENCHMARK(BM_FlowInfo)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

void BM_CollectorPollRound(benchmark::State& state) {
  apps::CmuHarness::Options o;
  o.poll_period = 0;  // poll manually
  apps::CmuHarness harness(o);
  harness.collector().discover();
  harness.collector().poll();  // prime counters
  for (auto _ : state) {
    harness.sim().run_for(1.0);
    harness.collector().poll();
  }
}
BENCHMARK(BM_CollectorPollRound);

void BM_SnmpWalkIfTable(benchmark::State& state) {
  apps::CmuHarness::Options o;
  o.poll_period = 0;
  apps::CmuHarness harness(o);
  snmp::Client client(harness.transport(),
                      snmp::agent_address("timberline"));
  for (auto _ : state) {
    benchmark::DoNotOptimize(client.walk(snmp::oids::kIfTableEntry));
  }
}
BENCHMARK(BM_SnmpWalkIfTable);

}  // namespace

BENCHMARK_MAIN();
