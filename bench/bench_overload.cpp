// Overload-control bench: the tenant-aware admission plane under a
// hot-tenant storm, plus the result cache's fresh-hit fast path.
//
// Phase A (cache micro): a standalone QueryService over a small star
// model; measures executed-query p50 (cache off) against fresh-hit p50
// (cache on, stable snapshot version) -- the O(1) lookup the brownout
// ladder's first rung rides on.
//
// Phase B (hot-tenant storm): the CMU testbed harness with the PR 1
// fault schedule active; 7 paced victim tenants and one unpaced hot
// tenant (10 threads through a retry-budgeted RemosClient) against a
// 16-slot strictly-sliced service.  A hot-free baseline run anchors the
// victim latency class.  Reports per the ISSUE 7 acceptance bar:
//   victim_p99_ratio      worst victim storm-p99 / max(baseline, 10ms)
//   victim_goodput        worst victim fraction of ok() answers
//   hot_shed_share        sheds charged to the hot tenant / all sheds
//   retry_amplification   hot client attempts / requests
//
// Results print as a table and are written to BENCH_overload.json
// (override with --out FILE) for CI trend tracking.
//
// Flags:
//   --check   exit nonzero if victim_p99_ratio > 2.0, victim_goodput
//             < 0.95, hot_shed_share < 0.90, or retry_amplification
//             > 1.3
//   --out F   write the JSON to F instead of BENCH_overload.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "collector/network_model.hpp"
#include "service/query_service.hpp"
#include "service/remos_client.hpp"
#include "service/tenant_admission.hpp"
#include "snmp/fault_injector.hpp"

namespace {

using namespace remos;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;
using apps::CmuHarness;
using service::GraphQuery;
using service::GraphResponse;
using service::QueryService;
using service::RemosClient;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

double p50(std::vector<double>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

double p99(std::vector<double>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[std::min(v.size() - 1,
                    static_cast<std::size_t>(0.99 *
                                             static_cast<double>(v.size())))];
}

/// Eight hosts behind one router, histories stamped at `t`.
collector::NetworkModel star_model(Seconds t) {
  collector::NetworkModel m;
  m.upsert_node("r", true);
  for (int i = 0; i < 8; ++i) {
    const std::string h = "h" + std::to_string(i);
    m.upsert_node(h, false);
    m.upsert_link(h, "r", mbps(100), millis(0.2));
  }
  for (collector::ModelLink& l : m.links()) {
    l.last_update = t;
    l.history.record(collector::Sample{t, mbps(10), mbps(5)});
  }
  return m;
}

// --- Phase A: the fresh-hit fast path ---------------------------------

struct CacheResult {
  double exec_p50_us = 0;
  double hit_p50_us = 0;
  double hit_rate = 0;
  int queries = 0;
};

CacheResult run_cache_phase() {
  CacheResult r;
  r.queries = 5'000;

  const auto measure = [&](std::size_t cache_capacity) {
    QueryService::Options o;
    o.workers = 2;
    o.queue_capacity = 32;
    o.staleness_slo = 1e9;
    o.cache_capacity = cache_capacity;
    QueryService svc(o);
    svc.start();
    svc.publish(star_model(0.0), 0.0);
    std::vector<double> lat;
    lat.reserve(static_cast<std::size_t>(r.queries));
    for (int i = 0; i < r.queries; ++i) {
      GraphQuery q;
      q.nodes = {"h0", "h1"};
      const auto t0 = Clock::now();
      const GraphResponse resp = svc.get_graph(std::move(q));
      lat.push_back(us_since(t0));
      if (!resp.meta.ok()) break;
    }
    const double rate =
        static_cast<double>(svc.stats().cache_hits) /
        static_cast<double>(std::max<std::uint64_t>(1, svc.stats().submitted));
    svc.stop();
    return std::pair<double, double>(p50(lat), rate);
  };

  r.exec_p50_us = measure(0).first;
  const auto [hit_p50, hit_rate] = measure(1024);
  r.hit_p50_us = hit_p50;
  r.hit_rate = hit_rate;
  return r;
}

// --- Phase B: the hot-tenant storm ------------------------------------

constexpr int kVictims = 7;
constexpr int kQueriesPerVictim = 400;
constexpr auto kVictimSpacing = 150us;
constexpr auto kVictimDeadline = 50ms;

struct StormResult {
  std::vector<double> victim_p99_us;  // per victim
  double worst_goodput = 1.0;
  std::uint64_t hot_sheds = 0;
  std::uint64_t total_sheds = 0;
  std::uint64_t cache_hits = 0;
  std::uint64_t degraded = 0;
  RemosClient::Stats hot;
};

StormResult run_storm(bool with_hot) {
  CmuHarness::Options ho;
  ho.poll_period = 2.0;
  CmuHarness h(ho);
  snmp::FaultInjector& fx = h.fault_injector();
  fx.loss_burst({10.0, 40.0}, 0.30);
  fx.crash(snmp::agent_address("timberline"), {50.0, 70.0});
  fx.counter_reset(snmp::agent_address("aspen"), 80.0);
  fx.crash(snmp::agent_address("whiteface"), {90.0, 120.0});
  h.start(6.0);

  QueryService::Options so;
  so.workers = 4;
  so.queue_capacity = 16;
  so.reserved_fraction = 1.0;
  so.default_deadline = 100ms;
  so.staleness_slo = 1e9;
  so.poll_interval = 3ms;
  so.cache_capacity = 256;
  so.brownout_halflife = 30.0;
  auto svc = h.serve(so);

  std::vector<int> victims;
  for (int v = 0; v < kVictims; ++v)
    victims.push_back(
        svc->register_tenant("victim-" + std::to_string(v), 1.0));
  const int hot_id = svc->register_tenant("hot", 1.0);

  const std::vector<std::string> hosts = h.hosts();
  std::vector<std::vector<double>> latencies(kVictims);
  std::vector<std::uint64_t> ok(kVictims, 0);

  std::atomic<bool> victims_done{false};
  std::vector<std::thread> threads;
  for (int v = 0; v < kVictims; ++v) {
    threads.emplace_back([&, v] {
      auto& lat = latencies[static_cast<std::size_t>(v)];
      lat.reserve(kQueriesPerVictim);
      for (int i = 0; i < kQueriesPerVictim; ++i) {
        GraphQuery q;
        q.nodes = {hosts[static_cast<std::size_t>(v) % hosts.size()],
                   hosts[static_cast<std::size_t>(v + 1 + i % 3) %
                         hosts.size()]};
        q.tenant = victims[static_cast<std::size_t>(v)];
        q.deadline = kVictimDeadline;
        const auto t0 = Clock::now();
        const service::ResponseMeta meta = svc->get_graph(std::move(q)).meta;
        lat.push_back(us_since(t0));
        if (meta.ok()) ++ok[static_cast<std::size_t>(v)];
        std::this_thread::sleep_for(kVictimSpacing);
      }
    });
  }

  RemosClient::Options co;
  co.tenant = hot_id;
  co.max_attempts = 3;
  co.base_backoff = 100us;
  RemosClient hot_client(*svc, co);
  std::vector<std::thread> hot_threads;
  if (with_hot) {
    for (int t = 0; t < 10; ++t) {
      hot_threads.emplace_back([&, t] {
        std::uint64_t s =
            0x9e3779b97f4a7c15ull * static_cast<unsigned>(t + 1);
        while (!victims_done.load(std::memory_order_acquire)) {
          s ^= s << 13;
          s ^= s >> 7;
          s ^= s << 17;
          GraphQuery q;
          q.nodes = {hosts[(s >> 3) % hosts.size()],
                     hosts[(s >> 17) % hosts.size()],
                     hosts[(s >> 31) % hosts.size()]};
          hot_client.get_graph(std::move(q));
        }
      });
    }
  }

  for (std::thread& t : threads) t.join();
  victims_done.store(true, std::memory_order_release);
  for (std::thread& t : hot_threads) t.join();

  StormResult r;
  for (int v = 0; v < kVictims; ++v) {
    const std::size_t i = static_cast<std::size_t>(v);
    r.victim_p99_us.push_back(p99(latencies[i]));
    r.worst_goodput = std::min(
        r.worst_goodput, static_cast<double>(ok[i]) /
                             static_cast<double>(kQueriesPerVictim));
    r.hot_sheds = svc->admission().tenant_stats(hot_id).shed;
  }
  r.total_sheds = svc->admission().shed();
  r.hot = hot_client.stats();
  svc->stop();
  r.cache_hits = svc->stats().cache_hits;
  r.degraded = svc->stats().degraded;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::row;
  using bench::rule;

  bool check = false;
  std::string out = "BENCH_overload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }

  std::cout << "Overload control plane: result cache, hot-tenant storm\n\n";

  const CacheResult cache = run_cache_phase();
  const StormResult base = run_storm(/*with_hot=*/false);
  const StormResult storm = run_storm(/*with_hot=*/true);

  // The 10ms floor on the baseline absorbs queueing behind admitted hot
  // jobs plus scheduler noise (mirrors the test soak's gate; the real
  // failure guarded is victims pushed toward their 50ms deadline).
  double ratio = 0;
  double worst_base_us = 0, worst_storm_us = 0;
  for (int v = 0; v < kVictims; ++v) {
    const std::size_t i = static_cast<std::size_t>(v);
    const double floor_us = std::max(base.victim_p99_us[i], 10'000.0);
    if (storm.victim_p99_us[i] / floor_us > ratio) {
      ratio = storm.victim_p99_us[i] / floor_us;
      worst_base_us = base.victim_p99_us[i];
      worst_storm_us = storm.victim_p99_us[i];
    }
  }
  const double shed_share =
      storm.total_sheds == 0
          ? 1.0
          : static_cast<double>(storm.hot_sheds) /
                static_cast<double>(storm.total_sheds);
  const double amplification =
      storm.hot.requests == 0
          ? 1.0
          : static_cast<double>(storm.hot.attempts) /
                static_cast<double>(storm.hot.requests);

  const std::vector<int> w{24, 22, 12, 8};
  row({"phase", "metric", "value", "unit"}, w);
  rule(w);
  row({"cache (star-8)", "executed p50", fixed(cache.exec_p50_us, 1), "us"},
      w);
  row({"", "fresh hit p50", fixed(cache.hit_p50_us, 1), "us"}, w);
  row({"", "hit rate", fixed(cache.hit_rate * 100, 1), "%"}, w);
  row({"storm (cmu + faults)", "victim p99 ratio", fixed(ratio, 2), "x"},
      w);
  row({"", "worst victim p99", fixed(worst_storm_us, 0), "us"}, w);
  row({"", "baseline p99", fixed(worst_base_us, 0), "us"}, w);
  row({"", "victim goodput", fixed(storm.worst_goodput * 100, 2), "%"}, w);
  row({"", "hot shed share", fixed(shed_share * 100, 1), "%"}, w);
  row({"", "retry amplification", fixed(amplification, 3), "x"}, w);
  row({"", "sheds", std::to_string(storm.total_sheds), ""}, w);
  row({"", "brownout answers", std::to_string(storm.degraded), ""}, w);
  std::cout << "\n(" << storm.hot.requests << " hot requests, "
            << storm.hot.attempts << " attempts, " << storm.cache_hits
            << " cache hits)\n";

  std::ofstream json(out);
  json << "{\n"
       << "  \"cache\": {\"exec_p50_us\": " << fixed(cache.exec_p50_us, 1)
       << ", \"hit_p50_us\": " << fixed(cache.hit_p50_us, 1)
       << ", \"hit_rate\": " << fixed(cache.hit_rate, 4)
       << ", \"queries\": " << cache.queries << "},\n"
       << "  \"storm\": {\"victim_p99_ratio\": " << fixed(ratio, 2)
       << ", \"worst_victim_p99_us\": " << fixed(worst_storm_us, 0)
       << ", \"victim_goodput\": " << fixed(storm.worst_goodput, 4)
       << ", \"hot_shed_share\": " << fixed(shed_share, 4)
       << ", \"retry_amplification\": " << fixed(amplification, 3)
       << ", \"total_sheds\": " << storm.total_sheds
       << ", \"degraded\": " << storm.degraded
       << ", \"cache_hits\": " << storm.cache_hits
       << ", \"hot_requests\": " << storm.hot.requests << "}\n"
       << "}\n";
  std::cout << "\nwrote " << out << "\n";

  bool ok = true;
  if (check) {
    ok = ratio <= 2.0 && storm.worst_goodput >= 0.95 &&
         shed_share >= 0.90 && amplification <= 1.3 &&
         storm.total_sheds > 50;
    if (!ok) std::cerr << "BENCH_overload: --check gates violated\n";
  }
  return ok ? 0 : 1;
}
