// Replication-plane bench: the snapshot wire format and mid-storm
// failover, measured.
//
// Phase A (delta sync): a 256-host Waxman model under measurement churn;
// per round, encode the version delta, decode it, and apply it to a
// replica copy -- reports encode/apply p50 microseconds and the delta /
// full frame size ratio.  Every round asserts fingerprint convergence.
//
// Phase B (full resync): a 1024-host fat-tree (k=16) full frame --
// encode, then decode + materialize (what a gapped replica pays to
// rejoin), in milliseconds.
//
// Phase C (kill-a-replica soak): 3 replicas behind the
// FailoverCoordinator, 4 client threads, while the channel corrupts and
// drops frames, one replica is partitioned and another crash/restarts.
// Reports client success rate, p99 latency, reroutes, and the failover
// blackout -- the longest wall-clock gap between consecutive successful
// queries across all clients.  Always asserts that every replica
// converges bit-for-bit (canonical fingerprint) to the primary.
//
// Results print as a table and are written to BENCH_replication.json
// (override with --out FILE) for CI trend tracking.
//
// Flags:
//   --check   exit nonzero if success rate < 99%, blackout > 1000 ms,
//             delta apply p50 > 5000 us, or full resync > 5000 ms
//   --out F   write the JSON to F instead of BENCH_replication.json
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.hpp"
#include "collector/network_model.hpp"
#include "collector/snapshot_codec.hpp"
#include "netsim/generators.hpp"
#include "netsim/topology.hpp"
#include "service/failover.hpp"
#include "service/replication.hpp"

namespace {

using namespace remos;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;
using Window = service::ChannelFaultInjector::Window;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

collector::NetworkModel build_model(const netsim::Topology& topo) {
  collector::NetworkModel model;
  for (const netsim::Node& n : topo.nodes())
    model.upsert_node(n.name, n.kind == netsim::NodeKind::kNetwork)
        .internal_bw = n.internal_bw;
  for (const netsim::Link& l : topo.links()) {
    collector::ModelLink& ml = model.upsert_link(
        topo.name_of(l.a), topo.name_of(l.b), l.capacity, l.latency);
    ml.last_update = 1.0;
    ml.history.record(collector::Sample{1.0, 0.0, 0.0});
  }
  return model;
}

/// One poll round of measurement churn: fresh samples on a rotating 5%
/// of the links, an occasional status flip.
void churn(collector::NetworkModel& model, int round, Seconds now) {
  auto& links = model.links();
  const std::size_t stride = std::max<std::size_t>(1, links.size() / 20);
  for (std::size_t k = 0; k < stride; ++k) {
    collector::ModelLink& l =
        links[(static_cast<std::size_t>(round) * stride + k) % links.size()];
    l.history.record(
        collector::Sample{now, mbps(5 + round % 7), mbps(1 + round % 3)});
    l.last_update = now;
  }
  if (round % 8 == 0) {
    collector::ModelLink& toggled =
        links[static_cast<std::size_t>(round / 8) % links.size()];
    toggled.up = !toggled.up;
  }
}

double p50(std::vector<double>& v) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  return v[v.size() / 2];
}

struct DeltaResult {
  double encode_p50_us = 0;
  double apply_p50_us = 0;
  double delta_bytes_p50 = 0;
  std::size_t full_bytes = 0;
  int rounds = 0;
  bool converged = true;
};

DeltaResult run_delta_phase() {
  netsim::WaxmanParams wx;
  wx.hosts = 256;
  wx.routers = 64;
  wx.seed = 7;
  collector::NetworkModel primary = build_model(make_waxman(wx));
  collector::NetworkModel replica = primary;

  DeltaResult r;
  r.rounds = 64;
  r.full_bytes = collector::encode_full(primary, 1, 1.0).size();
  std::vector<double> encode_us, apply_us, sizes;
  collector::NetworkModel base = primary;
  for (int round = 2; round <= r.rounds + 1; ++round) {
    churn(primary, round, round);
    const auto t0 = Clock::now();
    const std::vector<std::uint8_t> wire = collector::encode_delta(
        base, static_cast<std::uint64_t>(round) - 1, primary,
        static_cast<std::uint64_t>(round), round);
    encode_us.push_back(us_since(t0));
    sizes.push_back(static_cast<double>(wire.size()));

    const auto t1 = Clock::now();
    const collector::SnapshotFrame frame = collector::decode_frame(wire);
    collector::apply_delta(replica, frame);
    apply_us.push_back(us_since(t1));

    r.converged = r.converged && collector::model_fingerprint(replica) ==
                                     collector::model_fingerprint(primary);
    base = primary;
  }
  r.encode_p50_us = p50(encode_us);
  r.apply_p50_us = p50(apply_us);
  r.delta_bytes_p50 = p50(sizes);
  return r;
}

struct ResyncResult {
  double encode_ms = 0;
  double materialize_ms = 0;
  std::size_t bytes = 0;
  std::size_t hosts = 0;
  bool converged = true;
};

ResyncResult run_resync_phase() {
  netsim::FatTreeParams ft;
  ft.k = 16;  // 1024 hosts
  const collector::NetworkModel primary = build_model(make_fat_tree(ft));

  ResyncResult r;
  r.hosts = ft.k * ft.k * ft.k / 4;
  // Best of 3: resync cost is a latency budget, not a throughput one.
  for (int rep = 0; rep < 3; ++rep) {
    const auto t0 = Clock::now();
    const std::vector<std::uint8_t> wire =
        collector::encode_full(primary, 5, 9.0);
    const double enc = us_since(t0) / 1000.0;
    const auto t1 = Clock::now();
    const collector::NetworkModel rebuilt =
        collector::materialize(collector::decode_frame(wire));
    const double mat = us_since(t1) / 1000.0;
    if (rep == 0 || enc < r.encode_ms) r.encode_ms = enc;
    if (rep == 0 || mat < r.materialize_ms) r.materialize_ms = mat;
    r.bytes = wire.size();
    r.converged = r.converged && collector::model_fingerprint(rebuilt) ==
                                     collector::model_fingerprint(primary);
  }
  return r;
}

struct SoakResult {
  std::uint64_t queries = 0;
  std::uint64_t failed = 0;
  double success_rate = 0;
  std::uint64_t p99_us = 0;
  double blackout_ms = 0;
  std::uint64_t reroutes = 0;
  std::uint64_t restarts = 0;
  std::uint64_t resyncs = 0;
  bool converged = false;
};

SoakResult run_failover_soak() {
  constexpr int kClients = 4;
  constexpr int kRounds = 150;

  service::ReplicatedService::Options o;
  o.replicas = 3;
  o.service.workers = 2;
  o.service.queue_capacity = 64;
  o.service.default_deadline = 2'000'000us;
  o.service.staleness_slo = 30.0;
  o.full_every = 16;
  service::ReplicatedService rs(o);

  rs.faults().corrupt(Window{20.0, 50.0}, 0.30);
  rs.faults().drop(Window{40.0, 70.0}, 0.20);
  rs.faults().partition(1, Window{30.0, 60.0});
  rs.faults().crash(2, Window{60.0, 110.0});

  rs.start();
  netsim::WaxmanParams wx;
  wx.hosts = 32;
  wx.routers = 8;
  wx.seed = 12;
  collector::NetworkModel model = build_model(make_waxman(wx));
  rs.publish(model, 0.5);

  const auto epoch = Clock::now();
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int round = 1; round <= kRounds; ++round) {
      churn(model, round, round);
      rs.publish(model, round);
      std::this_thread::sleep_for(2ms);
    }
    done.store(true, std::memory_order_release);
  });

  std::mutex mu;
  std::vector<double> success_at_us;  // wall offsets of successful queries
  std::vector<std::uint64_t> latencies;
  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      std::vector<double> local_at;
      std::vector<std::uint64_t> local_lat;
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        service::GraphQuery q;
        q.nodes = {"h" + std::to_string(i % 32),
                   "h" + std::to_string((i + 5 + c) % 32)};
        const auto t0 = Clock::now();
        const service::ResponseMeta meta =
            rs.coordinator().get_graph(std::move(q)).meta;
        const double at = us_since(epoch);
        local_lat.push_back(static_cast<std::uint64_t>(us_since(t0)));
        if (meta.ok()) {
          ok.fetch_add(1, std::memory_order_relaxed);
          local_at.push_back(at);
        } else {
          failed.fetch_add(1, std::memory_order_relaxed);
        }
        ++i;
      }
      const std::lock_guard<std::mutex> lock(mu);
      success_at_us.insert(success_at_us.end(), local_at.begin(),
                           local_at.end());
      latencies.insert(latencies.end(), local_lat.begin(), local_lat.end());
    });
  }
  publisher.join();
  for (std::thread& t : clients) t.join();
  rs.stop();

  SoakResult r;
  r.queries = ok.load() + failed.load();
  r.failed = failed.load();
  r.success_rate = r.queries == 0 ? 0
                                  : static_cast<double>(ok.load()) /
                                        static_cast<double>(r.queries);
  std::sort(latencies.begin(), latencies.end());
  if (!latencies.empty())
    r.p99_us = latencies[std::min(
        latencies.size() - 1,
        static_cast<std::size_t>(
            0.99 * static_cast<double>(latencies.size())))];
  // Blackout: the longest stretch of the soak during which no query
  // succeeded anywhere -- what a well-routed failover keeps tiny even
  // while a replica is down.
  std::sort(success_at_us.begin(), success_at_us.end());
  double worst_gap_us = 0;
  for (std::size_t i = 1; i < success_at_us.size(); ++i)
    worst_gap_us =
        std::max(worst_gap_us, success_at_us[i] - success_at_us[i - 1]);
  r.blackout_ms = worst_gap_us / 1000.0;
  r.reroutes = rs.coordinator().stats().rerouted;
  r.restarts = rs.replica(2).stats().restarts;
  r.resyncs = rs.replica(0).stats().resyncs + rs.replica(1).stats().resyncs +
              rs.replica(2).stats().resyncs;

  r.converged = true;
  for (std::size_t i = 0; i < rs.replica_count(); ++i)
    r.converged = r.converged &&
                  rs.replica(i).fingerprint() == rs.primary_fingerprint() &&
                  rs.replica(i).applied_version() == rs.primary_version();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::row;
  using bench::rule;

  bool check = false;
  std::string out = "BENCH_replication.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--check") == 0) check = true;
    if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) out = argv[++i];
  }

  std::cout << "Replicated snapshot plane: delta sync, resync, failover\n\n";

  const DeltaResult delta = run_delta_phase();
  const ResyncResult resync = run_resync_phase();
  const SoakResult soak = run_failover_soak();

  const std::vector<int> w{22, 14, 14, 14};
  row({"phase", "metric", "value", "unit"}, w);
  rule(w);
  row({"delta (waxman-256)", "encode p50", fixed(delta.encode_p50_us, 1),
       "us"},
      w);
  row({"", "apply p50", fixed(delta.apply_p50_us, 1), "us"}, w);
  row({"", "delta size p50", fixed(delta.delta_bytes_p50 / 1024.0, 1),
       "KiB"},
      w);
  row({"", "full size",
       fixed(static_cast<double>(delta.full_bytes) / 1024.0, 1), "KiB"},
      w);
  row({"full resync (ft-16)", "encode", fixed(resync.encode_ms, 2), "ms"},
      w);
  row({"", "decode+build", fixed(resync.materialize_ms, 2), "ms"}, w);
  row({"failover soak", "success rate", fixed(soak.success_rate * 100, 2),
       "%"},
      w);
  row({"", "p99", std::to_string(soak.p99_us), "us"}, w);
  row({"", "blackout", fixed(soak.blackout_ms, 1), "ms"}, w);
  row({"", "reroutes", std::to_string(soak.reroutes), ""}, w);
  row({"", "restarts", std::to_string(soak.restarts), ""}, w);
  std::cout << "\n(" << soak.queries << " soak queries; "
            << "blackout = longest gap between successful answers)\n";

  std::ofstream json(out);
  json << "{\n"
       << "  \"delta\": {\"encode_p50_us\": " << fixed(delta.encode_p50_us, 1)
       << ", \"apply_p50_us\": " << fixed(delta.apply_p50_us, 1)
       << ", \"delta_bytes_p50\": " << fixed(delta.delta_bytes_p50, 0)
       << ", \"full_bytes\": " << delta.full_bytes
       << ", \"rounds\": " << delta.rounds << "},\n"
       << "  \"full_resync\": {\"encode_ms\": " << fixed(resync.encode_ms, 2)
       << ", \"materialize_ms\": " << fixed(resync.materialize_ms, 2)
       << ", \"bytes\": " << resync.bytes << ", \"hosts\": " << resync.hosts
       << "},\n"
       << "  \"failover\": {\"queries\": " << soak.queries
       << ", \"success_rate\": " << fixed(soak.success_rate, 4)
       << ", \"p99_us\": " << soak.p99_us
       << ", \"blackout_ms\": " << fixed(soak.blackout_ms, 1)
       << ", \"reroutes\": " << soak.reroutes
       << ", \"restarts\": " << soak.restarts
       << ", \"resyncs\": " << soak.resyncs << ", \"converged\": "
       << (soak.converged ? "true" : "false") << "}\n"
       << "}\n";
  std::cout << "\nwrote " << out << "\n";

  // Convergence is a correctness invariant, not a perf gate: enforced
  // with or without --check.
  bool ok = delta.converged && resync.converged && soak.converged &&
            soak.restarts >= 1;
  if (!ok) std::cerr << "BENCH_replication: convergence violated\n";
  if (check) {
    const bool gates = soak.success_rate >= 0.99 &&
                       soak.blackout_ms <= 1000.0 &&
                       delta.apply_p50_us <= 5000.0 &&
                       resync.encode_ms + resync.materialize_ms <= 5000.0;
    if (!gates) std::cerr << "BENCH_replication: --check gates violated\n";
    ok = ok && gates;
  }
  return ok ? 0 : 1;
}
