// Scale-plane bench: synthetic topology sweep measuring, per size:
//
//   - model build time (generator + collector NetworkModel construction);
//   - per-event incremental max-min solve time under flow churn, next to
//     the retained from-scratch solver on the same instance (the ratio is
//     the whole point of IncrementalMaxMin);
//   - Modeler::flow_info latency (p50/p99) over 1000 random host-pair
//     queries against a snapshot of the model.
//
// Results print as a table and are written to BENCH_scale.json (override
// with --out FILE) for CI trend tracking.
//
// Flags:
//   --small   sweep only topologies up to 256 hosts (CI perf-smoke mode)
//   --check   exit nonzero if the incremental solver's mean per-event
//             solve exceeds 10% of the from-scratch solve on the
//             256-host Waxman instance, or (full sweep only) if the
//             1024-host fat-tree model build + 1000 queries exceed 5 s
//   --out F   write the JSON to F instead of BENCH_scale.json
#include <algorithm>
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench/bench_common.hpp"
#include "collector/network_model.hpp"
#include "core/modeler.hpp"
#include "netsim/generators.hpp"
#include "netsim/maxmin.hpp"
#include "netsim/routing.hpp"
#include "netsim/topology.hpp"
#include "util/rng.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;
using netsim::FlowHandle;
using netsim::IncrementalMaxMin;
using netsim::LinkId;
using netsim::MaxMinFlow;
using netsim::NodeId;
using netsim::Topology;
using Clock = std::chrono::steady_clock;

double ms_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(Clock::now() - t0)
      .count();
}

struct TopoCase {
  std::string family;
  std::size_t hosts = 0;
  Topology topo;
};

std::vector<TopoCase> sweep(bool small) {
  std::vector<TopoCase> out;
  for (const std::size_t k : {4u, 8u, 16u}) {
    if (small && k > 8) continue;
    netsim::FatTreeParams p;
    p.k = k;
    out.push_back({"fat_tree", k * k * k / 4, make_fat_tree(p)});
  }
  for (const std::size_t side : {32u, 128u, 512u}) {
    if (small && side > 128) continue;
    netsim::DumbbellParams p;
    p.hosts_per_side = side;
    p.trunk_hops = 2;
    out.push_back({"dumbbell", 2 * side, make_dumbbell(p)});
  }
  for (const std::size_t hosts : {64u, 256u, 1024u}) {
    if (small && hosts > 256) continue;
    netsim::WaxmanParams p;
    p.hosts = hosts;
    p.routers = std::max<std::size_t>(16, hosts / 4);
    p.seed = 7;
    out.push_back({"waxman", hosts, make_waxman(p)});
  }
  return out;
}

std::size_t dir_index(LinkId link, bool from_a) {
  return 2 * static_cast<std::size_t>(link) + (from_a ? 0 : 1);
}

/// Collector-model construction from a generated topology (what a
/// completed discovery pass would produce), with one quiet sample per
/// link so dynamic timeframes have data.
collector::NetworkModel build_model(const Topology& topo) {
  collector::NetworkModel model;
  for (const netsim::Node& n : topo.nodes())
    model.upsert_node(n.name, n.kind == netsim::NodeKind::kNetwork)
        .internal_bw = n.internal_bw;
  for (const netsim::Link& l : topo.links()) {
    collector::ModelLink& ml =
        model.upsert_link(topo.name_of(l.a), topo.name_of(l.b), l.capacity,
                          l.latency);
    ml.last_update = 1.0;
    ml.history.record(collector::Sample{1.0, 0.0, 0.0});
  }
  return model;
}

struct ChurnStats {
  std::size_t events = 0;
  double inc_mean_us = 0;
  double oracle_mean_us = 0;
  double ratio() const {
    return oracle_mean_us == 0 ? 0.0 : inc_mean_us / oracle_mean_us;
  }
};

/// Seeded add/remove churn at up to 32 live flows: times every
/// incremental solve and, every 8th event, a from-scratch solve of the
/// full live instance for the ratio.
ChurnStats run_churn(const Topology& topo, std::uint64_t seed) {
  const netsim::RoutingTable routing(topo);
  const std::vector<NodeId> hosts = topo.compute_nodes();
  std::vector<double> caps(2 * topo.link_count(), 0.0);
  for (const netsim::Link& l : topo.links()) {
    caps[dir_index(l.id, true)] = l.capacity;
    caps[dir_index(l.id, false)] = l.capacity;
  }
  IncrementalMaxMin inc(caps);
  Rng rng(seed);

  struct Live {
    FlowHandle handle;
    MaxMinFlow spec;
  };
  std::vector<Live> live;

  const auto event = [&] {
    if (live.size() < 32 && (live.size() < 4 || rng.chance(0.5))) {
      MaxMinFlow spec;
      for (int tries = 0; tries < 16; ++tries) {
        const NodeId src = hosts[rng.below(hosts.size())];
        const NodeId dst = hosts[rng.below(hosts.size())];
        if (src == dst) continue;
        const netsim::Path path = routing.route(src, dst);
        for (std::size_t i = 0; i < path.links.size(); ++i) {
          const netsim::Link& l = topo.link(path.links[i]);
          spec.resources.push_back(dir_index(l.id, path.nodes[i] == l.a));
        }
        break;
      }
      spec.weight = rng.uniform(0.5, 4.0);
      live.push_back({inc.add_flow(spec), std::move(spec)});
    } else {
      const std::size_t i = rng.below(live.size());
      inc.remove_flow(live[i].handle);
      live[i] = std::move(live.back());
      live.pop_back();
    }
  };

  // Warmup: reach steady live count and buffer high-water marks.
  for (int i = 0; i < 128; ++i) {
    event();
    inc.solve();
  }

  ChurnStats stats;
  stats.events = 512;
  double inc_us = 0, oracle_us = 0;
  std::size_t oracle_solves = 0;
  for (std::size_t e = 0; e < stats.events; ++e) {
    event();
    const auto t0 = Clock::now();
    inc.solve();
    inc_us += ms_since(t0) * 1e3;
    if (e % 8 == 0) {
      std::vector<MaxMinFlow> specs;
      specs.reserve(live.size());
      for (const Live& f : live) specs.push_back(f.spec);
      const auto t1 = Clock::now();
      const auto ref = netsim::max_min_allocate(caps, specs);
      oracle_us += ms_since(t1) * 1e3;
      ++oracle_solves;
      (void)ref;
    }
  }
  stats.inc_mean_us = inc_us / static_cast<double>(stats.events);
  stats.oracle_mean_us =
      oracle_us / static_cast<double>(std::max<std::size_t>(1, oracle_solves));
  return stats;
}

struct QueryStats {
  std::size_t count = 0;
  double total_ms = 0;
  double p50_us = 0;
  double p99_us = 0;
};

QueryStats run_queries(const collector::NetworkModel& model,
                       const Topology& topo, std::size_t count,
                       std::uint64_t seed) {
  core::Modeler modeler(model);
  const std::vector<NodeId> hosts = topo.compute_nodes();
  Rng rng(seed);
  std::vector<double> lat_us;
  lat_us.reserve(count);
  QueryStats out;
  out.count = count;
  const auto t0 = Clock::now();
  for (std::size_t i = 0; i < count; ++i) {
    core::FlowQuery q;
    core::FlowRequest req;
    req.src = topo.name_of(hosts[rng.below(hosts.size())]);
    do {
      req.dst = topo.name_of(hosts[rng.below(hosts.size())]);
    } while (req.dst == req.src);
    req.requested = mbps(5);
    q.fixed.push_back(std::move(req));
    const auto s = Clock::now();
    const core::FlowQueryResult r = modeler.flow_info(q);
    lat_us.push_back(ms_since(s) * 1e3);
    if (r.fixed.empty()) std::cerr << "empty flow result\n";
  }
  out.total_ms = ms_since(t0);
  std::sort(lat_us.begin(), lat_us.end());
  const auto pct = [&](double p) {
    const auto idx = std::min(
        lat_us.size() - 1,
        static_cast<std::size_t>(p * static_cast<double>(lat_us.size())));
    return lat_us[idx];
  };
  out.p50_us = pct(0.50);
  out.p99_us = pct(0.99);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  using bench::row;
  using bench::rule;

  bool small = false, check = false;
  std::string out_path = "BENCH_scale.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--small") == 0) {
      small = true;
    } else if (std::strcmp(argv[i], "--check") == 0) {
      check = true;
    } else if (std::strcmp(argv[i], "--out") == 0 && i + 1 < argc) {
      out_path = argv[++i];
    } else {
      std::cerr << "usage: bench_scale [--small] [--check] [--out FILE]\n";
      return 2;
    }
  }

  std::cout << "Scale plane: build / churn-solve / query sweep"
            << (small ? " (small mode)" : "") << "\n\n";

  struct Entry {
    TopoCase tc;
    double build_ms = 0;
    ChurnStats churn;
    QueryStats queries;
  };
  std::vector<Entry> entries;
  for (TopoCase& tc : sweep(small)) {
    Entry e;
    e.tc = std::move(tc);
    const auto t0 = Clock::now();
    const collector::NetworkModel model = build_model(e.tc.topo);
    e.build_ms = ms_since(t0);
    e.churn = run_churn(e.tc.topo, 0x5CA1E + e.tc.hosts);
    e.queries = run_queries(model, e.tc.topo, 1000, 0x9E55 + e.tc.hosts);
    entries.push_back(std::move(e));
  }

  const std::vector<int> w{10, 7, 7, 7, 10, 10, 10, 9, 10, 10};
  row({"family", "hosts", "nodes", "links", "build ms", "inc us",
       "oracle us", "ratio", "q p50 us", "q p99 us"},
      w);
  rule(w);
  for (const Entry& e : entries)
    row({e.tc.family, std::to_string(e.tc.hosts),
         std::to_string(e.tc.topo.node_count()),
         std::to_string(e.tc.topo.link_count()), fixed(e.build_ms, 2),
         fixed(e.churn.inc_mean_us, 2), fixed(e.churn.oracle_mean_us, 2),
         fixed(e.churn.ratio(), 3), fixed(e.queries.p50_us, 1),
         fixed(e.queries.p99_us, 1)},
        w);

  std::ofstream json(out_path);
  json << "{\n  \"mode\": \"" << (small ? "small" : "full")
       << "\",\n  \"topologies\": [\n";
  for (std::size_t i = 0; i < entries.size(); ++i) {
    const Entry& e = entries[i];
    json << "    {\"family\": \"" << e.tc.family
         << "\", \"hosts\": " << e.tc.hosts
         << ", \"nodes\": " << e.tc.topo.node_count()
         << ", \"links\": " << e.tc.topo.link_count()
         << ", \"build_ms\": " << fixed(e.build_ms, 3)
         << ",\n     \"churn\": {\"events\": " << e.churn.events
         << ", \"inc_mean_us\": " << fixed(e.churn.inc_mean_us, 3)
         << ", \"oracle_mean_us\": " << fixed(e.churn.oracle_mean_us, 3)
         << ", \"ratio\": " << fixed(e.churn.ratio(), 4)
         << "},\n     \"queries\": {\"count\": " << e.queries.count
         << ", \"total_ms\": " << fixed(e.queries.total_ms, 2)
         << ", \"p50_us\": " << fixed(e.queries.p50_us, 2)
         << ", \"p99_us\": " << fixed(e.queries.p99_us, 2) << "}}"
         << (i + 1 < entries.size() ? "," : "") << "\n";
  }
  json << "  ]\n}\n";
  std::cout << "\nwrote " << out_path << "\n";

  if (!check) return 0;
  bool ok = true;
  for (const Entry& e : entries) {
    if (e.tc.family == "waxman" && e.tc.hosts == 256 &&
        e.churn.ratio() > 0.10) {
      std::cerr << "CHECK FAILED: waxman-256 incremental/oracle ratio "
                << fixed(e.churn.ratio(), 3) << " > 0.10\n";
      ok = false;
    }
    if (e.tc.family == "fat_tree" && e.tc.hosts == 1024) {
      const double total_s = (e.build_ms + e.queries.total_ms) / 1e3;
      if (total_s > 5.0) {
        std::cerr << "CHECK FAILED: fat-tree-1024 build + 1000 queries "
                  << fixed(total_s, 2) << " s > 5 s\n";
        ok = false;
      }
    }
  }
  if (ok) std::cout << "checks passed\n";
  return ok ? 0 : 1;
}
