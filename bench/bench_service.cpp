// Service throughput/latency bench: the concurrent QueryService at
// capacity and at 2x sustained overload.
//
// Phase A (capacity): client concurrency matched to the worker pool;
// reports sustained qps and client-observed p50/p99.
//
// Phase B (2x overload): offered concurrency is twice the admission
// bound, so the bounded queue must shed -- reports the shed rate and the
// p50/p99 of the queries that were admitted, which is the property the
// service actually guarantees (admitted latency stays bounded no matter
// the offered load).
//
// Phase C (observability overhead): the capacity workload twice in one
// process -- once with the harness's metrics/recorder wired through
// every plane, once with every sink left a no-op -- and reports the p50
// overhead of the wired run.  The budget is <= 5%; the bench only hard-
// fails above 15% so scheduler noise on shared runners cannot flake CI.
//
// Phase D (batch amortization): fat-tree topologies at 128 and 1024
// hosts, a clients x batch-size sweep where the same structurally
// disjoint host-pair flow queries are issued once as lone flow_info
// calls and once as shared-mode flow_info_batch calls against the same
// published snapshot.  Reports sub-queries/sec for both sides and the
// speedup; the batch answers are checked against the sequential oracle
// to within 1e-9 of the host link capacity before any timing counts.
//
// Results are printed as a table and also written to BENCH_service.json
// in the working directory for CI trend tracking.
//
// With --check, the run is additionally gated against the committed
// BENCH_service.json baseline (read before it is overwritten): overload
// shed rate must stay within +/-25% relative (0.02 absolute epsilon),
// capacity p99 must stay under baseline*1.25 + 200us, the 1024-host
// single-client batch-8 cell must hold a >= 3x speedup over its
// sequential baseline, and its per-batch p99 must stay under the batch
// p99 * 1.25 + 5ms.  (Batch 64 is swept but not gated: a combined
// query spanning 128 endpoints covers most of the fabric, so its solve
// stops amortizing -- the sweep exists to show where that cliff is.)
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "collector/network_model.hpp"
#include "netsim/generators.hpp"
#include "netsim/topology.hpp"
#include "netsim/traffic.hpp"
#include "service/query_service.hpp"

namespace {

using namespace remos;
using service::QueryStatus;
using Clock = std::chrono::steady_clock;

struct PhaseResult {
  double qps = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;

  double shed_rate() const {
    const double total = static_cast<double>(admitted + shed);
    return total == 0 ? 0.0 : static_cast<double>(shed) / total;
  }
};

std::uint64_t percentile_us(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// Drives `clients` threads, each issuing `per_client` graph queries, and
/// tallies client-side outcomes.  Latencies are recorded for admitted
/// (non-shed) queries only: shed returns are O(1) by design and would
/// just dilute the quantiles the SLO is about.
PhaseResult run_phase(apps::CmuHarness& harness,
                      service::QueryService& service, int clients,
                      int per_client) {
  std::mutex mu;
  std::vector<std::uint64_t> admitted_us;
  PhaseResult r;
  std::atomic<std::uint64_t> admitted{0}, shed{0}, expired{0}, errors{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<std::string>& hosts = harness.hosts();
      std::vector<std::uint64_t> local;
      local.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        service::GraphQuery q;
        q.nodes = {hosts[static_cast<std::size_t>(i + c) % hosts.size()],
                   hosts[static_cast<std::size_t>(i + c + 3) %
                         hosts.size()]};
        const auto s = Clock::now();
        const service::ResponseMeta meta =
            service.get_graph(std::move(q)).meta;
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - s)
                .count();
        switch (meta.status) {
          case QueryStatus::kAnswered:
          case QueryStatus::kStale:
          case QueryStatus::kDegraded:
            ++admitted;
            local.push_back(static_cast<std::uint64_t>(us));
            break;
          case QueryStatus::kOverloaded: ++shed; break;
          case QueryStatus::kExpired: ++expired; break;
          case QueryStatus::kError: ++errors; break;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      admitted_us.insert(admitted_us.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  r.admitted = admitted.load();
  r.shed = shed.load();
  r.expired = expired.load();
  r.errors = errors.load();
  const double total = static_cast<double>(clients) * per_client;
  r.qps = secs == 0 ? 0 : total / secs;
  r.p50_us = percentile_us(admitted_us, 0.50);
  r.p99_us = percentile_us(admitted_us, 0.99);
  return r;
}

// --- Phase D: batch amortization helpers ------------------------------

/// Collector model for a generated fat-tree (what a completed discovery
/// pass would produce), with one quiet sample per link so dynamic
/// timeframes have data.  Host names are returned in creation order, so
/// consecutive hosts sit under the same edge switch: the pair
/// (hosts[2j], hosts[2j+1]) shares only its own access links with the
/// rest of the sweep, which is what makes shared-mode batches of such
/// pairs bit-comparable to lone queries.
collector::NetworkModel fat_tree_model(std::size_t k,
                                       std::vector<std::string>& hosts) {
  netsim::FatTreeParams p;
  p.k = k;
  const netsim::Topology topo = netsim::make_fat_tree(p);
  collector::NetworkModel model;
  for (const netsim::Node& n : topo.nodes()) {
    model.upsert_node(n.name, n.kind == netsim::NodeKind::kNetwork)
        .internal_bw = n.internal_bw;
    if (n.kind == netsim::NodeKind::kCompute) hosts.push_back(n.name);
  }
  for (const netsim::Link& l : topo.links()) {
    collector::ModelLink& ml =
        model.upsert_link(topo.name_of(l.a), topo.name_of(l.b), l.capacity,
                          l.latency);
    ml.last_update = 1.0;
    ml.history.record(collector::Sample{1.0, 0.0, 0.0});
  }
  return model;
}

/// One fixed-flow query per same-edge-switch host pair.
std::vector<core::FlowQuery> pair_queries(
    const std::vector<std::string>& hosts) {
  std::vector<core::FlowQuery> out;
  out.reserve(hosts.size() / 2);
  for (std::size_t i = 0; i + 1 < hosts.size(); i += 2) {
    core::FlowQuery q;
    q.fixed = {core::FlowRequest{hosts[i], hosts[i + 1], mbps(100)}};
    out.push_back(std::move(q));
  }
  return out;
}

struct BatchCell {
  std::size_t hosts = 0;
  int clients = 0;
  int batch = 0;
  double seq_qps = 0;    // sub-queries/sec, lone flow_info calls
  double batch_qps = 0;  // sub-queries/sec through flow_info_batch
  std::uint64_t batch_p99_us = 0;  // client-observed per-batch latency
  std::uint64_t errors = 0;
  double speedup() const {
    return seq_qps == 0 ? 0.0 : batch_qps / seq_qps;
  }
};

/// The same rotating sub-query schedule driven both ways: `per_client`
/// sub-queries per client as lone flow_info calls, then as shared-mode
/// batches of `batch`.  Both sides run against the same service and the
/// same pinned snapshot inside one bench run, so the speedup is the
/// batch plane's and nothing else's.
BatchCell run_batch_cell(service::QueryService& svc,
                         const std::vector<core::FlowQuery>& pairs,
                         std::size_t hosts, int clients, int batch,
                         int per_client) {
  BatchCell cell;
  cell.hosts = hosts;
  cell.clients = clients;
  cell.batch = batch;
  std::atomic<std::uint64_t> errors{0};

  const auto pair_at = [&pairs](int c, int i) {
    return pairs[static_cast<std::size_t>(c * 131 + i) % pairs.size()];
  };

  {  // Sequential baseline.
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        for (int i = 0; i < per_client; ++i) {
          service::FlowInfoQuery q;
          q.query = pair_at(c, i);
          if (!svc.flow_info(std::move(q)).meta.ok()) ++errors;
        }
      });
    for (std::thread& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    cell.seq_qps =
        secs == 0 ? 0 : static_cast<double>(clients) * per_client / secs;
  }

  {  // Shared-mode batches over the identical sub-query schedule.
    std::mutex mu;
    std::vector<std::uint64_t> lat_us;
    const auto t0 = Clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < clients; ++c)
      threads.emplace_back([&, c] {
        std::vector<std::uint64_t> local;
        for (int b = 0; b < per_client / batch; ++b) {
          service::FlowBatchInfoQuery q;
          q.batch.mode = core::FlowBatchQuery::Mode::kShared;
          q.batch.queries.reserve(static_cast<std::size_t>(batch));
          for (int j = 0; j < batch; ++j)
            q.batch.queries.push_back(pair_at(c, b * batch + j));
          const auto s = Clock::now();
          if (!svc.flow_info_batch(std::move(q)).meta.ok()) ++errors;
          local.push_back(static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::microseconds>(
                  Clock::now() - s)
                  .count()));
        }
        const std::lock_guard<std::mutex> lock(mu);
        lat_us.insert(lat_us.end(), local.begin(), local.end());
      });
    for (std::thread& t : threads) t.join();
    const double secs =
        std::chrono::duration<double>(Clock::now() - t0).count();
    cell.batch_qps =
        secs == 0
            ? 0
            : static_cast<double>(clients) * (per_client / batch) * batch /
                  secs;
    cell.batch_p99_us = percentile_us(lat_us, 0.99);
  }

  cell.errors = errors.load();
  return cell;
}

/// Correctness before timing: one shared batch over `n` disjoint pairs
/// vs the n lone answers, max absolute deviation across the bandwidth
/// and latency summaries.  Structurally disjoint pairs do not contend,
/// so sharing the solve must not move any number past float noise.
double batch_vs_sequential_dev(service::QueryService& svc,
                               const std::vector<core::FlowQuery>& pairs,
                               int n) {
  service::FlowBatchInfoQuery bq;
  bq.batch.mode = core::FlowBatchQuery::Mode::kShared;
  for (int j = 0; j < n; ++j)
    bq.batch.queries.push_back(pairs[static_cast<std::size_t>(j)]);
  const service::FlowBatchResponse br = svc.flow_info_batch(std::move(bq));
  if (!br.meta.ok()) return 1e9;

  double dev = 0;
  const auto measure_dev = [&dev](const Measurement& a,
                                  const Measurement& b) {
    dev = std::max(dev, std::abs(a.quartiles.median - b.quartiles.median));
    dev = std::max(dev, std::abs(a.mean - b.mean));
  };
  for (int j = 0; j < n; ++j) {
    service::FlowInfoQuery q;
    q.query = pairs[static_cast<std::size_t>(j)];
    const service::FlowInfoResponse lone = svc.flow_info(std::move(q));
    if (!lone.meta.ok()) return 1e9;
    const core::FlowResult& a =
        br.results[static_cast<std::size_t>(j)].fixed[0];
    const core::FlowResult& b = lone.result.fixed[0];
    if (a.satisfied != b.satisfied || a.routable != b.routable) return 1e9;
    measure_dev(a.bandwidth, b.bandwidth);
    measure_dev(a.latency, b.latency);
  }
  return dev;
}

/// Pulls `"key": <number>` out of the named JSON section ("capacity",
/// "overload_2x", ...) of a prior BENCH_service.json.  Hand-rolled on
/// purpose: the bench writes this file itself, so the shape is known and
/// a JSON library is not worth a dependency.  Returns fallback when the
/// section or key is absent.
double baseline_number(const std::string& text, const std::string& section,
                       const std::string& key, double fallback) {
  const std::size_t sec = text.find("\"" + section + "\"");
  if (sec == std::string::npos) return fallback;
  const std::size_t end = text.find('}', sec);
  const std::size_t pos = text.find("\"" + key + "\":", sec);
  if (pos == std::string::npos || (end != std::string::npos && pos > end))
    return fallback;
  try {
    return std::stod(text.substr(pos + key.size() + 3));
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using bench::row;
  using bench::rule;

  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--check") check = true;

  // The committed baseline must be read before the run overwrites it.
  std::string baseline;
  if (check) {
    std::ifstream in("BENCH_service.json");
    baseline.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    if (baseline.empty())
      std::cerr << "BENCH_service: --check but no committed "
                   "BENCH_service.json baseline; skipping regression "
                   "gates\n";
  }

  std::cout << "Concurrent query service: capacity vs 2x overload\n\n";

  // --- Phase A: at capacity -------------------------------------------
  PhaseResult cap;
  std::size_t cap_queue = 0;
  {
    apps::CmuHarness harness;
    harness.start(6.0);
    netsim::CbrTraffic background(harness.sim(), "m-5", "m-8", mbps(20),
                                  4.0);
    service::QueryService::Options so;
    so.workers = 4;
    so.queue_capacity = 64;
    so.default_deadline = std::chrono::milliseconds(2000);
    so.staleness_slo = 1e9;
    so.poll_interval = std::chrono::milliseconds(5);
    cap_queue = so.queue_capacity;
    auto service = harness.serve(so);
    cap = run_phase(harness, *service, /*clients=*/4, /*per_client=*/250);
    service->stop();
  }

  // --- Phase B: 2x sustained overload ---------------------------------
  // Offered concurrency = 2x the admission bound, so shedding is the
  // designed steady state, not an accident.
  PhaseResult over;
  std::size_t over_queue = 0;
  {
    apps::CmuHarness harness;
    harness.start(6.0);
    service::QueryService::Options so;
    so.workers = 2;
    so.queue_capacity = 8;
    so.default_deadline = std::chrono::milliseconds(2000);
    so.staleness_slo = 1e9;
    so.poll_interval = std::chrono::milliseconds(5);
    over_queue = so.queue_capacity;
    auto service = harness.serve(so);
    over = run_phase(harness, *service, /*clients=*/16, /*per_client=*/80);
    service->stop();
  }

  // --- Phase C: observability overhead on the hot path ----------------
  // Same capacity workload, sinks disabled vs wired; interleaved within
  // one process so both runs see the same machine state.
  PhaseResult bare, wired;
  for (const bool wire : {false, true}) {
    apps::CmuHarness::Options ho;
    ho.wire_obs = wire;
    apps::CmuHarness harness(ho);
    harness.start(6.0);
    netsim::CbrTraffic background(harness.sim(), "m-5", "m-8", mbps(20),
                                  4.0);
    service::QueryService::Options so;
    so.workers = 4;
    so.queue_capacity = 64;
    so.default_deadline = std::chrono::milliseconds(2000);
    so.staleness_slo = 1e9;
    so.poll_interval = std::chrono::milliseconds(5);
    auto service = harness.serve(so);
    (wire ? wired : bare) =
        run_phase(harness, *service, /*clients=*/4, /*per_client=*/250);
    service->stop();
  }
  const double obs_overhead =
      bare.p50_us == 0
          ? 0.0
          : static_cast<double>(wired.p50_us) /
                    static_cast<double>(bare.p50_us) -
                1.0;

  // --- Phase D: batch amortization (fat-tree sweep) -------------------
  // One service per topology, one snapshot published once (no poller):
  // every cell's sequential and batched sides see byte-identical state.
  std::vector<BatchCell> cells;
  double batch_max_dev = 0;
  BatchCell flagship;  // 1024 hosts, 1 client, batch 8: the gated cell
  for (const std::size_t k : {8u, 16u}) {
    std::vector<std::string> hosts;
    const collector::NetworkModel model = fat_tree_model(k, hosts);
    const std::vector<core::FlowQuery> pairs = pair_queries(hosts);

    service::QueryService::Options so;
    so.workers = 4;
    so.queue_capacity = 64;
    so.default_deadline = std::chrono::milliseconds(10000);
    so.staleness_slo = 1e9;
    service::QueryService svc(so);
    svc.start();
    svc.publish(model, 1.0);

    // The oracle pass doubles as warmup: allocator and route-cache state
    // settle before anything is timed.
    batch_max_dev =
        std::max(batch_max_dev, batch_vs_sequential_dev(svc, pairs, 64));
    for (const int clients : {1, 4})
      for (const int batch : {8, 64}) {
        const BatchCell cell = run_batch_cell(svc, pairs, hosts.size(),
                                              clients, batch,
                                              /*per_client=*/512);
        if (cell.hosts == 1024 && cell.clients == 1 && cell.batch == 8)
          flagship = cell;
        cells.push_back(cell);
      }
    svc.stop();
  }

  const std::vector<int> w{12, 10, 10, 10, 10, 10, 10};
  row({"phase", "qps", "p50 us", "p99 us", "admitted", "shed",
       "shed rate"},
      w);
  rule(w);
  row({"capacity", fixed(cap.qps, 0), std::to_string(cap.p50_us),
       std::to_string(cap.p99_us), std::to_string(cap.admitted),
       std::to_string(cap.shed), fixed(cap.shed_rate() * 100, 1) + "%"},
      w);
  row({"2x overload", fixed(over.qps, 0), std::to_string(over.p50_us),
       std::to_string(over.p99_us), std::to_string(over.admitted),
       std::to_string(over.shed),
       fixed(over.shed_rate() * 100, 1) + "%"},
      w);
  row({"obs off", fixed(bare.qps, 0), std::to_string(bare.p50_us),
       std::to_string(bare.p99_us), std::to_string(bare.admitted),
       std::to_string(bare.shed), fixed(bare.shed_rate() * 100, 1) + "%"},
      w);
  row({"obs wired", fixed(wired.qps, 0), std::to_string(wired.p50_us),
       std::to_string(wired.p99_us), std::to_string(wired.admitted),
       std::to_string(wired.shed),
       fixed(wired.shed_rate() * 100, 1) + "%"},
      w);
  std::cout << "\n(queue depth " << cap_queue << " at capacity, "
            << over_queue << " under overload; overload quantiles are "
               "admitted queries only)\n";
  std::cout << "\nobservability p50 overhead: "
            << fixed(obs_overhead * 100, 1)
            << "%  (budget <= 5%, hard fail above 15%)\n";

  std::cout << "\nBatch amortization: shared-mode flow_info_batch vs lone "
               "flow_info\n(fat-tree, structurally disjoint host pairs, "
               "same snapshot both sides)\n\n";
  const std::vector<int> bw{8, 10, 8, 14, 14, 10, 12};
  row({"hosts", "clients", "batch", "seq q/s", "batch q/s", "speedup",
       "batch p99"},
      bw);
  rule(bw);
  for (const BatchCell& c : cells)
    row({std::to_string(c.hosts), std::to_string(c.clients),
         std::to_string(c.batch), fixed(c.seq_qps, 0),
         fixed(c.batch_qps, 0), fixed(c.speedup(), 1) + "x",
         std::to_string(c.batch_p99_us) + " us"},
        bw);
  std::cout << "\nbatch vs sequential max deviation: "
            << fixed(batch_max_dev, 12) << " bit/s (gate 1e-9 x "
            << fixed(mbps(1000), 0) << ")\n";

  std::ofstream json("BENCH_service.json");
  json << "{\n"
       << "  \"capacity\": {\"qps\": " << fixed(cap.qps, 1)
       << ", \"p50_us\": " << cap.p50_us << ", \"p99_us\": " << cap.p99_us
       << ", \"admitted\": " << cap.admitted << ", \"shed\": " << cap.shed
       << ", \"errors\": " << cap.errors << "},\n"
       << "  \"overload_2x\": {\"qps\": " << fixed(over.qps, 1)
       << ", \"p50_us\": " << over.p50_us
       << ", \"p99_us\": " << over.p99_us
       << ", \"admitted\": " << over.admitted
       << ", \"shed\": " << over.shed
       << ", \"shed_rate\": " << fixed(over.shed_rate(), 4)
       << ", \"errors\": " << over.errors << "},\n"
       << "  \"obs_overhead\": {\"bare_p50_us\": " << bare.p50_us
       << ", \"wired_p50_us\": " << wired.p50_us
       << ", \"p50_overhead\": " << fixed(obs_overhead, 4)
       << ", \"errors\": " << bare.errors + wired.errors << "},\n"
       << "  \"batch_1024\": {\"seq_qps\": " << fixed(flagship.seq_qps, 1)
       << ", \"batch_qps\": " << fixed(flagship.batch_qps, 1)
       << ", \"speedup\": " << fixed(flagship.speedup(), 2)
       << ", \"p99_us\": " << flagship.batch_p99_us
       << ", \"max_dev\": " << fixed(batch_max_dev, 12)
       << ", \"errors\": " << flagship.errors << "}\n"
       << "}\n";
  std::cout << "\nwrote BENCH_service.json\n";

  // Exit nonzero if the SLO story failed: at 2x overload the service
  // must shed rather than queue without bound, nothing may error, and
  // the wired observability path must stay within the lenient overhead
  // ceiling (target <= 5%; 15% absorbs shared-runner noise).
  bool ok = cap.errors == 0 && over.errors == 0 && over.shed > 0 &&
            cap.shed == 0 && bare.errors == 0 && wired.errors == 0 &&
            obs_overhead <= 0.15;
  if (!ok) std::cerr << "BENCH_service: SLO invariants violated\n";

  // The batch plane's correctness is an invariant, not a --check gate: a
  // shared solve over disjoint pairs that moves any answer past 1e-9 of
  // the host link capacity is a solver bug, whatever the clock says.
  std::uint64_t batch_errors = 0;
  for (const BatchCell& c : cells) batch_errors += c.errors;
  if (batch_errors > 0 || batch_max_dev > 1e-9 * mbps(1000)) {
    std::cerr << "BENCH_service: batch plane violated the sequential "
                 "oracle (errors "
              << batch_errors << ", max dev " << fixed(batch_max_dev, 12)
              << ")\n";
    ok = false;
  }

  // --check: regression gates against the committed baseline.  Shed rate
  // is a designed behaviour, so it must stay within +/-25% relative of
  // the baseline (0.02 absolute epsilon absorbs small-count noise); p99
  // is gated upper-only at baseline*1.25 + 200us, since a faster run is
  // never a regression.
  if (check && !baseline.empty()) {
    const double base_shed =
        baseline_number(baseline, "overload_2x", "shed_rate", -1.0);
    const double base_p99 =
        baseline_number(baseline, "capacity", "p99_us", -1.0);
    bool gates = true;
    if (base_shed >= 0.0) {
      const double tolerance = std::max(0.25 * base_shed, 0.02);
      if (std::abs(over.shed_rate() - base_shed) > tolerance) {
        std::cerr << "BENCH_service: shed rate " << fixed(over.shed_rate(), 4)
                  << " outside baseline " << fixed(base_shed, 4) << " +/- "
                  << fixed(tolerance, 4) << "\n";
        gates = false;
      }
    }
    if (base_p99 >= 0.0) {
      const double ceiling = base_p99 * 1.25 + 200.0;
      if (static_cast<double>(cap.p99_us) > ceiling) {
        std::cerr << "BENCH_service: capacity p99 " << cap.p99_us
                  << "us above baseline ceiling " << fixed(ceiling, 0)
                  << "us\n";
        gates = false;
      }
    }
    // The batch plane must pay for itself: the 1024-host single-client
    // batch-8 cell holds >= 3x over its own-run sequential baseline
    // (single client: the ratio measures the solver's amortization, not
    // scheduler contention between concurrent batch solves),
    // and its per-batch p99 stays near the committed number.
    if (flagship.speedup() < 3.0) {
      std::cerr << "BENCH_service: 1024-host batch speedup "
                << fixed(flagship.speedup(), 2) << "x below the 3x gate\n";
      gates = false;
    }
    // The p99 grace is deliberately wide (+5ms): a single descheduled
    // worker puts milliseconds on one of only ~64 samples, and the gate
    // is after order-of-magnitude regressions, not scheduler jitter.
    const double base_batch_p99 =
        baseline_number(baseline, "batch_1024", "p99_us", -1.0);
    if (base_batch_p99 >= 0.0) {
      const double ceiling = base_batch_p99 * 1.25 + 5000.0;
      if (static_cast<double>(flagship.batch_p99_us) > ceiling) {
        std::cerr << "BENCH_service: 1024-host batch p99 "
                  << flagship.batch_p99_us << "us above baseline ceiling "
                  << fixed(ceiling, 0) << "us\n";
        gates = false;
      }
    }
    if (gates)
      std::cout << "--check: within baseline (shed " << fixed(base_shed, 4)
                << ", p99 " << fixed(base_p99, 0) << "us, batch speedup "
                << fixed(flagship.speedup(), 2) << "x)\n";
    ok = ok && gates;
  }
  return ok ? 0 : 1;
}
