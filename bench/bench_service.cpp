// Service throughput/latency bench: the concurrent QueryService at
// capacity and at 2x sustained overload.
//
// Phase A (capacity): client concurrency matched to the worker pool;
// reports sustained qps and client-observed p50/p99.
//
// Phase B (2x overload): offered concurrency is twice the admission
// bound, so the bounded queue must shed -- reports the shed rate and the
// p50/p99 of the queries that were admitted, which is the property the
// service actually guarantees (admitted latency stays bounded no matter
// the offered load).
//
// Phase C (observability overhead): the capacity workload twice in one
// process -- once with the harness's metrics/recorder wired through
// every plane, once with every sink left a no-op -- and reports the p50
// overhead of the wired run.  The budget is <= 5%; the bench only hard-
// fails above 15% so scheduler noise on shared runners cannot flake CI.
//
// Results are printed as a table and also written to BENCH_service.json
// in the working directory for CI trend tracking.
//
// With --check, the run is additionally gated against the committed
// BENCH_service.json baseline (read before it is overwritten): overload
// shed rate must stay within +/-25% relative (0.02 absolute epsilon) and
// capacity p99 must stay under baseline*1.25 + 200us.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <fstream>
#include <iostream>
#include <iterator>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "netsim/traffic.hpp"

namespace {

using namespace remos;
using service::QueryStatus;
using Clock = std::chrono::steady_clock;

struct PhaseResult {
  double qps = 0;
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
  std::uint64_t admitted = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;

  double shed_rate() const {
    const double total = static_cast<double>(admitted + shed);
    return total == 0 ? 0.0 : static_cast<double>(shed) / total;
  }
};

std::uint64_t percentile_us(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// Drives `clients` threads, each issuing `per_client` graph queries, and
/// tallies client-side outcomes.  Latencies are recorded for admitted
/// (non-shed) queries only: shed returns are O(1) by design and would
/// just dilute the quantiles the SLO is about.
PhaseResult run_phase(apps::CmuHarness& harness,
                      service::QueryService& service, int clients,
                      int per_client) {
  std::mutex mu;
  std::vector<std::uint64_t> admitted_us;
  PhaseResult r;
  std::atomic<std::uint64_t> admitted{0}, shed{0}, expired{0}, errors{0};

  const auto t0 = Clock::now();
  std::vector<std::thread> threads;
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<std::string>& hosts = harness.hosts();
      std::vector<std::uint64_t> local;
      local.reserve(static_cast<std::size_t>(per_client));
      for (int i = 0; i < per_client; ++i) {
        service::GraphQuery q;
        q.nodes = {hosts[static_cast<std::size_t>(i + c) % hosts.size()],
                   hosts[static_cast<std::size_t>(i + c + 3) %
                         hosts.size()]};
        const auto s = Clock::now();
        const service::ResponseMeta meta =
            service.get_graph(std::move(q)).meta;
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - s)
                .count();
        switch (meta.status) {
          case QueryStatus::kAnswered:
          case QueryStatus::kStale:
          case QueryStatus::kDegraded:
            ++admitted;
            local.push_back(static_cast<std::uint64_t>(us));
            break;
          case QueryStatus::kOverloaded: ++shed; break;
          case QueryStatus::kExpired: ++expired; break;
          case QueryStatus::kError: ++errors; break;
        }
      }
      const std::lock_guard<std::mutex> lock(mu);
      admitted_us.insert(admitted_us.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(Clock::now() - t0).count();

  r.admitted = admitted.load();
  r.shed = shed.load();
  r.expired = expired.load();
  r.errors = errors.load();
  const double total = static_cast<double>(clients) * per_client;
  r.qps = secs == 0 ? 0 : total / secs;
  r.p50_us = percentile_us(admitted_us, 0.50);
  r.p99_us = percentile_us(admitted_us, 0.99);
  return r;
}

/// Pulls `"key": <number>` out of the named JSON section ("capacity",
/// "overload_2x", ...) of a prior BENCH_service.json.  Hand-rolled on
/// purpose: the bench writes this file itself, so the shape is known and
/// a JSON library is not worth a dependency.  Returns fallback when the
/// section or key is absent.
double baseline_number(const std::string& text, const std::string& section,
                       const std::string& key, double fallback) {
  const std::size_t sec = text.find("\"" + section + "\"");
  if (sec == std::string::npos) return fallback;
  const std::size_t end = text.find('}', sec);
  const std::size_t pos = text.find("\"" + key + "\":", sec);
  if (pos == std::string::npos || (end != std::string::npos && pos > end))
    return fallback;
  try {
    return std::stod(text.substr(pos + key.size() + 3));
  } catch (const std::exception&) {
    return fallback;
  }
}

}  // namespace

int main(int argc, char** argv) {
  using bench::row;
  using bench::rule;

  bool check = false;
  for (int i = 1; i < argc; ++i)
    if (std::string(argv[i]) == "--check") check = true;

  // The committed baseline must be read before the run overwrites it.
  std::string baseline;
  if (check) {
    std::ifstream in("BENCH_service.json");
    baseline.assign(std::istreambuf_iterator<char>(in),
                    std::istreambuf_iterator<char>());
    if (baseline.empty())
      std::cerr << "BENCH_service: --check but no committed "
                   "BENCH_service.json baseline; skipping regression "
                   "gates\n";
  }

  std::cout << "Concurrent query service: capacity vs 2x overload\n\n";

  // --- Phase A: at capacity -------------------------------------------
  PhaseResult cap;
  std::size_t cap_queue = 0;
  {
    apps::CmuHarness harness;
    harness.start(6.0);
    netsim::CbrTraffic background(harness.sim(), "m-5", "m-8", mbps(20),
                                  4.0);
    service::QueryService::Options so;
    so.workers = 4;
    so.queue_capacity = 64;
    so.default_deadline = std::chrono::milliseconds(2000);
    so.staleness_slo = 1e9;
    so.poll_interval = std::chrono::milliseconds(5);
    cap_queue = so.queue_capacity;
    auto service = harness.serve(so);
    cap = run_phase(harness, *service, /*clients=*/4, /*per_client=*/250);
    service->stop();
  }

  // --- Phase B: 2x sustained overload ---------------------------------
  // Offered concurrency = 2x the admission bound, so shedding is the
  // designed steady state, not an accident.
  PhaseResult over;
  std::size_t over_queue = 0;
  {
    apps::CmuHarness harness;
    harness.start(6.0);
    service::QueryService::Options so;
    so.workers = 2;
    so.queue_capacity = 8;
    so.default_deadline = std::chrono::milliseconds(2000);
    so.staleness_slo = 1e9;
    so.poll_interval = std::chrono::milliseconds(5);
    over_queue = so.queue_capacity;
    auto service = harness.serve(so);
    over = run_phase(harness, *service, /*clients=*/16, /*per_client=*/80);
    service->stop();
  }

  // --- Phase C: observability overhead on the hot path ----------------
  // Same capacity workload, sinks disabled vs wired; interleaved within
  // one process so both runs see the same machine state.
  PhaseResult bare, wired;
  for (const bool wire : {false, true}) {
    apps::CmuHarness::Options ho;
    ho.wire_obs = wire;
    apps::CmuHarness harness(ho);
    harness.start(6.0);
    netsim::CbrTraffic background(harness.sim(), "m-5", "m-8", mbps(20),
                                  4.0);
    service::QueryService::Options so;
    so.workers = 4;
    so.queue_capacity = 64;
    so.default_deadline = std::chrono::milliseconds(2000);
    so.staleness_slo = 1e9;
    so.poll_interval = std::chrono::milliseconds(5);
    auto service = harness.serve(so);
    (wire ? wired : bare) =
        run_phase(harness, *service, /*clients=*/4, /*per_client=*/250);
    service->stop();
  }
  const double obs_overhead =
      bare.p50_us == 0
          ? 0.0
          : static_cast<double>(wired.p50_us) /
                    static_cast<double>(bare.p50_us) -
                1.0;

  const std::vector<int> w{12, 10, 10, 10, 10, 10, 10};
  row({"phase", "qps", "p50 us", "p99 us", "admitted", "shed",
       "shed rate"},
      w);
  rule(w);
  row({"capacity", fixed(cap.qps, 0), std::to_string(cap.p50_us),
       std::to_string(cap.p99_us), std::to_string(cap.admitted),
       std::to_string(cap.shed), fixed(cap.shed_rate() * 100, 1) + "%"},
      w);
  row({"2x overload", fixed(over.qps, 0), std::to_string(over.p50_us),
       std::to_string(over.p99_us), std::to_string(over.admitted),
       std::to_string(over.shed),
       fixed(over.shed_rate() * 100, 1) + "%"},
      w);
  row({"obs off", fixed(bare.qps, 0), std::to_string(bare.p50_us),
       std::to_string(bare.p99_us), std::to_string(bare.admitted),
       std::to_string(bare.shed), fixed(bare.shed_rate() * 100, 1) + "%"},
      w);
  row({"obs wired", fixed(wired.qps, 0), std::to_string(wired.p50_us),
       std::to_string(wired.p99_us), std::to_string(wired.admitted),
       std::to_string(wired.shed),
       fixed(wired.shed_rate() * 100, 1) + "%"},
      w);
  std::cout << "\n(queue depth " << cap_queue << " at capacity, "
            << over_queue << " under overload; overload quantiles are "
               "admitted queries only)\n";
  std::cout << "\nobservability p50 overhead: "
            << fixed(obs_overhead * 100, 1)
            << "%  (budget <= 5%, hard fail above 15%)\n";

  std::ofstream json("BENCH_service.json");
  json << "{\n"
       << "  \"capacity\": {\"qps\": " << fixed(cap.qps, 1)
       << ", \"p50_us\": " << cap.p50_us << ", \"p99_us\": " << cap.p99_us
       << ", \"admitted\": " << cap.admitted << ", \"shed\": " << cap.shed
       << ", \"errors\": " << cap.errors << "},\n"
       << "  \"overload_2x\": {\"qps\": " << fixed(over.qps, 1)
       << ", \"p50_us\": " << over.p50_us
       << ", \"p99_us\": " << over.p99_us
       << ", \"admitted\": " << over.admitted
       << ", \"shed\": " << over.shed
       << ", \"shed_rate\": " << fixed(over.shed_rate(), 4)
       << ", \"errors\": " << over.errors << "},\n"
       << "  \"obs_overhead\": {\"bare_p50_us\": " << bare.p50_us
       << ", \"wired_p50_us\": " << wired.p50_us
       << ", \"p50_overhead\": " << fixed(obs_overhead, 4)
       << ", \"errors\": " << bare.errors + wired.errors << "}\n"
       << "}\n";
  std::cout << "\nwrote BENCH_service.json\n";

  // Exit nonzero if the SLO story failed: at 2x overload the service
  // must shed rather than queue without bound, nothing may error, and
  // the wired observability path must stay within the lenient overhead
  // ceiling (target <= 5%; 15% absorbs shared-runner noise).
  bool ok = cap.errors == 0 && over.errors == 0 && over.shed > 0 &&
            cap.shed == 0 && bare.errors == 0 && wired.errors == 0 &&
            obs_overhead <= 0.15;
  if (!ok) std::cerr << "BENCH_service: SLO invariants violated\n";

  // --check: regression gates against the committed baseline.  Shed rate
  // is a designed behaviour, so it must stay within +/-25% relative of
  // the baseline (0.02 absolute epsilon absorbs small-count noise); p99
  // is gated upper-only at baseline*1.25 + 200us, since a faster run is
  // never a regression.
  if (check && !baseline.empty()) {
    const double base_shed =
        baseline_number(baseline, "overload_2x", "shed_rate", -1.0);
    const double base_p99 =
        baseline_number(baseline, "capacity", "p99_us", -1.0);
    bool gates = true;
    if (base_shed >= 0.0) {
      const double tolerance = std::max(0.25 * base_shed, 0.02);
      if (std::abs(over.shed_rate() - base_shed) > tolerance) {
        std::cerr << "BENCH_service: shed rate " << fixed(over.shed_rate(), 4)
                  << " outside baseline " << fixed(base_shed, 4) << " +/- "
                  << fixed(tolerance, 4) << "\n";
        gates = false;
      }
    }
    if (base_p99 >= 0.0) {
      const double ceiling = base_p99 * 1.25 + 200.0;
      if (static_cast<double>(cap.p99_us) > ceiling) {
        std::cerr << "BENCH_service: capacity p99 " << cap.p99_us
                  << "us above baseline ceiling " << fixed(ceiling, 0)
                  << "us\n";
        gates = false;
      }
    }
    if (gates)
      std::cout << "--check: within baseline (shed " << fixed(base_shed, 4)
                << ", p99 " << fixed(base_p99, 0) << "us)\n";
    ok = ok && gates;
  }
  return ok ? 0 : 1;
}
