// Table 1 -- "Performance of programs on nodes selected using Remos on
// our IP based testbed": node selection in a *static* (unloaded)
// environment.  Remos-selected node sets are compared against the paper's
// "other representative node sets"; with no competing traffic the
// differences should be small (the paper saw -0.4%..+7.3%).
#include <iostream>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "cluster/clustering.hpp"
#include "fx/runtime.hpp"

namespace {

using namespace remos;

double run_once(const fx::AppModel& app,
                const std::vector<std::string>& nodes) {
  apps::CmuHarness harness;
  return fx::FxRuntime(harness.sim(), app, nodes).run().total;
}

std::vector<std::string> remos_select(std::size_t k) {
  apps::CmuHarness harness;
  harness.start(10.0);
  const core::NetworkGraph g = harness.modeler().get_graph(
      harness.hosts(), core::Timeframe::history(8.0));
  const cluster::DistanceMatrix d(g, harness.hosts());
  return cluster::greedy_cluster(d, "m-4", k).nodes;
}

struct Case {
  std::string name;
  fx::AppModel app;
  std::size_t k;
  double paper_remos_secs;  // Table 1's Remos-selected column
  std::vector<std::vector<std::string>> other_sets;
  std::vector<double> paper_other_secs;
};

}  // namespace

int main() {
  using bench::pct_increase;
  using bench::row;
  using bench::rule;

  std::vector<Case> cases = {
      {"FFT(512)", apps::make_fft(512), 2, 0.462,
       {{"m-1", "m-4"}, {"m-4", "m-8"}},
       {0.468, 0.481}},
      {"FFT(512)", apps::make_fft(512), 4, 0.266,
       {{"m-1", "m-2", "m-4", "m-5"}, {"m-1", "m-4", "m-6", "m-7"}},
       {0.287, 0.268}},
      {"FFT(1K)", apps::make_fft(1024), 2, 2.63,
       {{"m-1", "m-4"}, {"m-4", "m-8"}},
       {2.66, 2.68}},
      {"FFT(1K)", apps::make_fft(1024), 4, 1.51,
       {{"m-1", "m-2", "m-4", "m-5"}, {"m-1", "m-4", "m-6", "m-7"}},
       {1.62, 1.61}},
      {"Airshed", apps::make_airshed(), 3, 908,
       {{"m-4", "m-6", "m-8"}, {"m-1", "m-4", "m-7"}},
       {907, 917}},
      {"Airshed", apps::make_airshed(), 5, 650,
       {{"m-1", "m-2", "m-3", "m-4", "m-5"},
        {"m-1", "m-2", "m-4", "m-5", "m-7"}},
       {647, 657}},
  };

  std::cout << "Table 1: node selection in a static (unloaded) network\n"
            << "start node m-4; times in seconds; paper values in ()\n\n";
  const std::vector<int> w{9, 3, 24, 9, 9, 26, 9, 9, 7};
  row({"program", "n", "remos-selected set", "t", "(paper)", "other set",
       "t", "(paper)", "+%"},
      w);
  rule(w);

  for (const Case& c : cases) {
    const auto selected = remos_select(c.k);
    const double t_remos = run_once(c.app, selected);
    bool first = true;
    for (std::size_t o = 0; o < c.other_sets.size(); ++o) {
      const double t_other = run_once(c.app, c.other_sets[o]);
      row({first ? c.name : "", first ? std::to_string(c.k) : "",
           first ? join(selected, ",") : "",
           first ? fixed(t_remos, c.k > 2 || t_remos < 10 ? 3 : 2) : "",
           first ? "(" + fixed(c.paper_remos_secs, 3) + ")" : "",
           join(c.other_sets[o], ","),
           fixed(t_other, t_other < 10 ? 3 : 1),
           "(" + fixed(c.paper_other_secs[o], 3) + ")",
           pct_increase(t_remos, t_other)},
          w);
      first = false;
    }
  }
  std::cout << "\nExpectation (paper): on an unloaded testbed with "
               "uniform links, all sets are\nnearly equivalent -- "
               "differences stay in the single-digit percent range.\n";
  return 0;
}
