// Table 2 -- "Performance implications of node selection using Remos in
// the presence of external traffic".  A synthetic program blasts
// m-6 -> m-8; applications run either on nodes chosen from *dynamic*
// Remos measurements (which dodge the busy links) or on the sets a
// static-capacity-only selection could have produced (which straddle
// them).  The paper measured 79-194% slowdowns for the static choice and
// near-baseline times for the dynamic one.
#include <iostream>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "cluster/clustering.hpp"
#include "fx/runtime.hpp"

namespace {

using namespace remos;

/// Runs `app` on `nodes` in a world with the external blast active.
double run_with_traffic(const fx::AppModel& app,
                        const std::vector<std::string>& nodes) {
  apps::CmuHarness harness;
  harness.start(5.0);
  const auto blast = bench::external_traffic(harness.sim());
  harness.sim().run_for(10.0);
  return fx::FxRuntime(harness.sim(), app, nodes).run().total;
}

double run_clean(const fx::AppModel& app,
                 const std::vector<std::string>& nodes) {
  apps::CmuHarness harness;
  return fx::FxRuntime(harness.sim(), app, nodes).run().total;
}

/// Node selection from live measurements taken while the blast runs.
std::vector<std::string> dynamic_select(std::size_t k) {
  apps::CmuHarness harness;
  harness.start(5.0);
  const auto blast = bench::external_traffic(harness.sim());
  harness.sim().run_for(12.0);
  const core::NetworkGraph g = harness.modeler().get_graph(
      harness.hosts(), core::Timeframe::history(10.0));
  const cluster::DistanceMatrix d(g, harness.hosts());
  return cluster::greedy_cluster(d, "m-4", k).nodes;
}

struct Case {
  std::string name;
  fx::AppModel app;
  std::size_t k;
  std::vector<std::string> static_set;  // the paper's naive choice
  double paper_dynamic, paper_static, paper_pct, paper_clean;
};

}  // namespace

int main() {
  using bench::pct_increase;
  using bench::row;
  using bench::rule;

  std::vector<Case> cases = {
      {"FFT(512)", apps::make_fft(512), 2, {"m-4", "m-6"},
       0.475, 1.40, 194, 0.462},
      {"FFT(512)", apps::make_fft(512), 4, {"m-4", "m-5", "m-6", "m-7"},
       0.322, 0.893, 177, 0.266},
      {"FFT(1K)", apps::make_fft(1024), 2, {"m-4", "m-6"},
       2.68, 7.38, 175, 2.63},
      {"FFT(1K)", apps::make_fft(1024), 4, {"m-4", "m-5", "m-6", "m-7"},
       2.07, 3.71, 79, 1.51},
      {"Airshed", apps::make_airshed(), 3, {"m-4", "m-5", "m-6"},
       905, 2113, 133, 908},
      {"Airshed", apps::make_airshed(), 5,
       {"m-4", "m-5", "m-6", "m-7", "m-8"},
       674, 1726, 156, 650},
  };

  std::cout << "Table 2: node selection under external m-6 -> m-8 traffic\n"
            << "times in seconds; paper values in ()\n\n";
  const std::vector<int> w{9, 3, 22, 8, 8, 8, 8, 5, 7, 9, 8};
  row({"program", "n", "dynamic-selected set", "t", "(paper)", "static t",
       "(paper)", "+%", "(paper)", "no-traf t", "(paper)"},
      w);
  rule(w);

  for (const Case& c : cases) {
    const auto selected = dynamic_select(c.k);
    const double t_dyn = run_with_traffic(c.app, selected);
    const double t_static = run_with_traffic(c.app, c.static_set);
    const double t_clean = run_clean(c.app, selected);
    auto fmt = [](double t) { return fixed(t, t < 10 ? 3 : 0); };
    row({c.name, std::to_string(c.k), join(selected, ","), fmt(t_dyn),
         "(" + fmt(c.paper_dynamic) + ")", fmt(t_static),
         "(" + fmt(c.paper_static) + ")", pct_increase(t_dyn, t_static),
         "(" + fixed(c.paper_pct, 0) + ")", fmt(t_clean),
         "(" + fmt(c.paper_clean) + ")"},
        w);
  }
  std::cout
      << "\nExpectation (paper): static selection pays a 79-194% penalty "
         "because at least one\napplication flow shares a link with the "
         "blast; dynamic selection stays within a few\npercent of the "
         "no-traffic baseline.\n";
  return 0;
}
