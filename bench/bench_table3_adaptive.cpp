// Table 3 -- "Execution times of adaptive version of Airshed executing on
// a fixed set of nodes and on dynamically selected nodes".  The program
// is compiled for 8 task chunks but only 5 nodes participate, so even the
// fixed run carries decomposition overhead (paper: 862 s vs 650 s for the
// native 5-node build).  Four traffic scenarios from the paper:
//   none             -- idle network
//   non-interfering  -- traffic confined to the aspen side
//   interfering-1    -- the m-6 -> m-8 blast across timberline/whiteface
//   interfering-2    -- a reverse-direction blast (m-8 -> m-5)
// Fixed mapping keeps {m-4..m-8}; the adaptive version migrates at
// iteration boundaries using Remos measurements.
#include <iostream>
#include <memory>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "fx/adaptation.hpp"
#include "fx/runtime.hpp"

namespace {

using namespace remos;

struct Scenario {
  std::string name;
  // (src, dst) pairs of external blasts.
  std::vector<std::pair<std::string, std::string>> blasts;
  double paper_fixed;
  double paper_adaptive;
};

struct Outcome {
  double seconds = 0;
  std::size_t migrations = 0;
};

Outcome run(const Scenario& scenario, bool adaptive) {
  apps::CmuHarness harness;
  harness.start(5.0);
  std::vector<std::unique_ptr<netsim::CbrTraffic>> traffic;
  for (const auto& [src, dst] : scenario.blasts)
    traffic.push_back(bench::external_traffic(harness.sim(), src, dst));
  harness.sim().run_for(10.0);

  const std::vector<std::string> start_nodes{"m-4", "m-5", "m-6", "m-7",
                                             "m-8"};
  fx::FxRuntime rt(harness.sim(), apps::make_airshed(24, /*chunks=*/8),
                   start_nodes);
  std::unique_ptr<fx::AdaptationModule> adapt;
  if (adaptive) {
    fx::AdaptationModule::Options opts;
    opts.timeframe = core::Timeframe::history(10.0);
    opts.compensate_own_traffic = true;
    adapt = std::make_unique<fx::AdaptationModule>(
        harness.modeler(), harness.hosts(), "m-4", opts);
    rt.set_adaptation(adapt.get());
  }
  const fx::RunStats stats = rt.run();
  return Outcome{stats.total, stats.migrations};
}

}  // namespace

int main() {
  using bench::row;
  using bench::rule;

  std::vector<Scenario> scenarios = {
      {"no traffic", {}, 862, 941},
      {"non-interfering", {{"m-1", "m-2"}}, 866, 974},
      {"interfering-1", {{"m-6", "m-8"}}, 1680, 1045},
      {"interfering-2", {{"m-8", "m-5"}}, 1826, 955},
  };

  std::cout << "Table 3: adaptive Airshed (compiled for 8 chunks, running "
               "on 5 of 8 hosts)\ntimes in seconds; paper values in (); "
               "the non-adaptive native-5 Airshed takes ~650 s\n\n";
  const std::vector<int> w{16, 9, 9, 11, 9, 11};
  row({"traffic", "fixed", "(paper)", "adaptive", "(paper)", "migrations"},
      w);
  rule(w);
  for (const Scenario& s : scenarios) {
    const Outcome fixed_run = run(s, false);
    const Outcome adaptive_run = run(s, true);
    row({s.name, fixed(fixed_run.seconds, 0),
         "(" + fixed(s.paper_fixed, 0) + ")",
         fixed(adaptive_run.seconds, 0),
         "(" + fixed(s.paper_adaptive, 0) + ")",
         std::to_string(adaptive_run.migrations)},
        w);
  }
  std::cout
      << "\nExpectation (paper): adaptation costs a moderate overhead "
         "when the network is\nquiet, but under interfering traffic the "
         "fixed mapping roughly doubles in run time\nwhile the adaptive "
         "version migrates off the hot links and stays near its "
         "no-traffic\ntime.\n";
  return 0;
}
