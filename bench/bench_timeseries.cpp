// Telemetry history plane bench: the costs the design promises to bound.
//
//   append        ns per TimeSeries::append on a long-lived series (raw
//                 ring full, rollup cascade active) -- the poll/publish
//                 hot-path cost.
//   read @ 1h     p50 of a stitched window() read over a 1-hour horizon
//                 on a series holding 2 h of 2 s samples (raw ring far
//                 exceeded, so the read is answered from rollups).
//   memory        retained bytes of one series after 24 h of 2 s samples
//                 (43200 appends) -- must be bounded by the ring + rollup
//                 capacities, not by the sample count.
//   service p50   the bench_service capacity workload with the telemetry
//                 plane wired vs every sink a no-op.  Budget: the wired
//                 run's p50 overhead <= 5%; hard fail above 15% so
//                 shared-runner noise cannot flake CI.  The append cost
//                 itself must also be <= 5% of the bare service p50.
//
// Results go to BENCH_obs.json for CI trend tracking.
#include <algorithm>
#include <atomic>
#include <chrono>
#include <fstream>
#include <iostream>
#include <mutex>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "bench/bench_common.hpp"
#include "netsim/traffic.hpp"
#include "obs/timeseries.hpp"

namespace {

using namespace remos;
using service::QueryStatus;
using Clock = std::chrono::steady_clock;

std::uint64_t percentile_us(std::vector<std::uint64_t>& v, double p) {
  if (v.empty()) return 0;
  std::sort(v.begin(), v.end());
  const std::size_t idx = std::min(
      v.size() - 1,
      static_cast<std::size_t>(p * static_cast<double>(v.size())));
  return v[idx];
}

/// ns per append on a series whose raw ring is already full and whose
/// rollup cascade is sealing buckets -- steady state, not warmup.
double bench_append_ns() {
  obs::TimeSeries ts;
  Seconds t = 0;
  for (int i = 0; i < 10000; ++i) ts.append(t += 2.0, 0.5);  // warm up
  constexpr int kN = 1'000'000;
  const auto t0 = Clock::now();
  for (int i = 0; i < kN; ++i)
    ts.append(t += 2.0, static_cast<double>(i % 97));
  const auto dt = std::chrono::duration<double, std::nano>(
      Clock::now() - t0);
  return dt.count() / kN;
}

/// p50 (us) of window() at a 1 h horizon over 2 h of 2 s samples: the
/// raw ring covers ~8.5 min, so the read stitches rollup buckets.
std::uint64_t bench_read_1h_p50_us() {
  obs::TimeSeries ts;
  Seconds t = 0;
  for (int i = 0; i < 3600; ++i) ts.append(t += 2.0, 0.25);
  std::vector<std::uint64_t> us;
  us.reserve(2000);
  for (int i = 0; i < 2000; ++i) {
    const auto t0 = Clock::now();
    const obs::WindowStats w = ts.window(t, 3600.0);
    const auto dt = std::chrono::duration_cast<std::chrono::microseconds>(
        Clock::now() - t0);
    us.push_back(static_cast<std::uint64_t>(dt.count()));
    if (w.measurement.samples == 0) std::abort();  // read must see data
  }
  return percentile_us(us, 0.50);
}

/// Retained bytes after 24 h of 2 s samples: bounded by capacities.
std::size_t bench_memory_24h() {
  obs::TimeSeries ts;
  Seconds t = 0;
  for (int i = 0; i < 43200; ++i) ts.append(t += 2.0, 0.5);
  return ts.memory_bytes();
}

/// One capacity-workload pass of the service (bench_service Phase A
/// shape); returns the client-observed p50 of answered queries.
std::uint64_t service_p50_us(bool wire_obs) {
  apps::CmuHarness::Options ho;
  ho.wire_obs = wire_obs;
  apps::CmuHarness harness(ho);
  harness.start(6.0);
  netsim::CbrTraffic background(harness.sim(), "m-5", "m-8", mbps(20),
                                4.0);
  service::QueryService::Options so;
  so.workers = 4;
  so.queue_capacity = 64;
  so.default_deadline = std::chrono::milliseconds(2000);
  so.staleness_slo = 1e9;
  so.poll_interval = std::chrono::milliseconds(5);
  auto service = harness.serve(so);

  std::mutex mu;
  std::vector<std::uint64_t> all_us;
  std::vector<std::thread> threads;
  for (int c = 0; c < 4; ++c) {
    threads.emplace_back([&, c] {
      const std::vector<std::string>& hosts = harness.hosts();
      std::vector<std::uint64_t> local;
      for (int i = 0; i < 250; ++i) {
        service::GraphQuery q;
        q.nodes = {hosts[static_cast<std::size_t>(i + c) % hosts.size()],
                   hosts[static_cast<std::size_t>(i + c + 3) %
                         hosts.size()]};
        const auto s = Clock::now();
        const service::ResponseMeta meta =
            service->get_graph(std::move(q)).meta;
        const auto us =
            std::chrono::duration_cast<std::chrono::microseconds>(
                Clock::now() - s)
                .count();
        if (meta.ok()) local.push_back(static_cast<std::uint64_t>(us));
      }
      const std::lock_guard<std::mutex> lock(mu);
      all_us.insert(all_us.end(), local.begin(), local.end());
    });
  }
  for (std::thread& t : threads) t.join();
  service->stop();
  return percentile_us(all_us, 0.50);
}

}  // namespace

int main() {
  using bench::row;
  using bench::rule;

  std::cout << "Telemetry history plane: append / read / memory / "
               "end-to-end overhead\n\n";

  const double append_ns = bench_append_ns();
  const std::uint64_t read_p50_us = bench_read_1h_p50_us();
  const std::size_t mem_bytes = bench_memory_24h();
  const std::uint64_t bare_p50 = service_p50_us(false);
  const std::uint64_t wired_p50 = service_p50_us(true);
  const double overhead =
      bare_p50 == 0 ? 0.0
                    : static_cast<double>(wired_p50) /
                              static_cast<double>(bare_p50) -
                          1.0;
  const double append_vs_p50 =
      bare_p50 == 0
          ? 0.0
          : append_ns / (static_cast<double>(bare_p50) * 1000.0);

  const std::vector<int> w{26, 14};
  row({"metric", "value"}, w);
  rule(w);
  row({"append", fixed(append_ns, 1) + " ns"}, w);
  row({"window() read @ 1h p50", std::to_string(read_p50_us) + " us"}, w);
  row({"series memory @ 24h", std::to_string(mem_bytes) + " B"}, w);
  row({"service p50 (obs off)", std::to_string(bare_p50) + " us"}, w);
  row({"service p50 (obs wired)", std::to_string(wired_p50) + " us"}, w);
  row({"wired p50 overhead", fixed(overhead * 100, 1) + "%"}, w);
  row({"append / bare p50", fixed(append_vs_p50 * 100, 2) + "%"}, w);
  std::cout << "\n(budgets: append <= 5% of service p50; wired overhead "
               "<= 5% target, 15% hard fail)\n";

  std::ofstream json("BENCH_obs.json");
  json << "{\n"
       << "  \"append_ns\": " << fixed(append_ns, 1) << ",\n"
       << "  \"read_1h_p50_us\": " << read_p50_us << ",\n"
       << "  \"series_memory_24h_bytes\": " << mem_bytes << ",\n"
       << "  \"service_p50_bare_us\": " << bare_p50 << ",\n"
       << "  \"service_p50_wired_us\": " << wired_p50 << ",\n"
       << "  \"wired_p50_overhead\": " << fixed(overhead, 4) << ",\n"
       << "  \"append_vs_bare_p50\": " << fixed(append_vs_p50, 6) << "\n"
       << "}\n";
  std::cout << "\nwrote BENCH_obs.json\n";

  // Memory must be bounded by capacities (raw ring 256 x 16 B plus the
  // two default rollup rings at ~72 B/bucket), far below the ~676 KB a
  // naive 43200-sample retention would cost.
  const bool mem_ok = mem_bytes < 256 * 1024;
  const bool ok = append_vs_p50 <= 0.05 && overhead <= 0.15 && mem_ok &&
                  bare_p50 > 0 && wired_p50 > 0;
  if (!ok) std::cerr << "BENCH_obs: budget violated\n";
  return ok ? 0 : 1;
}
