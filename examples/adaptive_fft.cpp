// A network-aware parallel FFT: the Fx runtime runs the same program
// three ways while cross-traffic hammers part of the testbed --
//   1. on naively chosen nodes (static capacities only),
//   2. on Remos-selected nodes (dynamic measurements),
//   3. with runtime adaptation enabled (migrates if conditions change).
//
//   ./adaptive_fft
#include <iostream>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "cluster/clustering.hpp"
#include "fx/runtime.hpp"
#include "netsim/traffic.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

double run_fft(apps::CmuHarness& harness, std::vector<std::string> nodes,
               fx::AdaptationModule* adapt) {
  fx::AppModel app = apps::make_fft(1024);
  app.iterations = 8;  // repeat the FFT so adaptation has migration points
  // Short iterations need cheap migration points: the FFT's replicated
  // state is tiny next to Airshed's, so decision/migration charges are
  // scaled down accordingly.
  fx::FxRuntime::Options costs;
  costs.decision_cost = 0.2;
  costs.migration_cost = 0.5;
  fx::FxRuntime rt(harness.sim(), std::move(app), std::move(nodes), costs);
  if (adapt) rt.set_adaptation(adapt);
  const fx::RunStats stats = rt.run();
  if (adapt)
    std::cout << "   (migrated " << stats.migrations << "x, final nodes { "
              << join(stats.mappings.back(), ", ") << " })\n";
  return stats.total;
}

}  // namespace

int main() {
  // Three identical worlds so the runs do not disturb each other, each
  // with a persistent blast across timberline -> whiteface.
  apps::CmuHarness h_naive, h_remos, h_adapt;
  std::vector<std::unique_ptr<netsim::CbrTraffic>> blasts;
  for (apps::CmuHarness* h : {&h_naive, &h_remos, &h_adapt}) {
    h->start();
    blasts.push_back(std::make_unique<netsim::CbrTraffic>(
        h->sim(), "m-6", "m-8", mbps(95), 19.0, "blast"));
    h->sim().run_for(15.0);
  }

  // 1. Naive: static capacities say all node sets are equal; take the
  // ones nearest the start node alphabetically spread over routers.
  const std::vector<std::string> naive_nodes{"m-4", "m-5", "m-6", "m-7"};
  std::cout << "1. naive nodes        { " << join(naive_nodes, ", ")
            << " }\n";
  const double t_naive = run_fft(h_naive, naive_nodes, nullptr);

  // 2. Remos selection from live measurements.
  const core::NetworkGraph g = h_remos.modeler().get_graph(
      h_remos.hosts(), core::Timeframe::history(10.0));
  const cluster::DistanceMatrix d(g, h_remos.hosts());
  const auto picked = cluster::greedy_cluster(d, "m-4", 4);
  std::cout << "2. remos-selected     { " << join(picked.nodes, ", ")
            << " }\n";
  const double t_remos = run_fft(h_remos, picked.nodes, nullptr);

  // 3. Start badly on purpose; let runtime adaptation fix it.
  fx::AdaptationModule::Options opts;
  opts.timeframe = core::Timeframe::history(10.0);
  opts.compensate_own_traffic = true;
  fx::AdaptationModule adapt(h_adapt.modeler(), h_adapt.hosts(), "m-4",
                             opts);
  std::cout << "3. adaptive, starting { " << join(naive_nodes, ", ")
            << " }\n";
  const double t_adapt = run_fft(h_adapt, naive_nodes, &adapt);

  std::cout << "\n8 iterations of a 1K x 1K FFT under cross-traffic:\n"
            << "   naive nodes    : " << fixed(t_naive, 2) << " s\n"
            << "   remos-selected : " << fixed(t_remos, 2) << " s\n"
            << "   adaptive       : " << fixed(t_adapt, 2) << " s\n";
  return 0;
}
