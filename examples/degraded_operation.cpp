// Graceful degradation, end to end: a router crashes mid-run and later
// recovers, and the measurement plane keeps answering.  The collector's
// health state machine reports healthy -> degraded -> unreachable -> back;
// queries over the dead router's links answer from retained history with
// honestly *widened* accuracy (paper §4.4) instead of erroring; the
// circuit breaker keeps the dead router from eating the management
// network; and node selection keeps working throughout, holding its
// mapping while the data is too stale to trust.
//
//   ./degraded_operation
#include <iostream>

#include "apps/harness.hpp"
#include "fx/adaptation.hpp"
#include "netsim/traffic.hpp"
#include "snmp/fault_injector.hpp"
#include "snmp/mib2.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

void report(apps::CmuHarness& h, fx::AdaptationModule& adapt,
            const std::vector<std::string>& mapping) {
  // Health column.
  std::cout << "t=" << fixed(h.sim().now(), 0) << "s  health:";
  for (const char* r : {"aspen", "timberline", "whiteface"})
    std::cout << " " << r << "="
              << collector::to_string(h.collector().health(r));

  // A flow query across the (possibly dead) whiteface router: the
  // bandwidth answer carries the widened accuracy.
  core::FlowQuery q;
  q.independent = core::FlowRequest{"m-7", "m-8", 0};
  q.timeframe = core::Timeframe::history(60.0);
  const auto r = h.modeler().flow_info(q);
  std::cout << "\n  m-7 -> m-8: ";
  if (r.independent->routable)
    std::cout << to_mbps(r.independent->bandwidth.quartiles.median)
              << " Mbps available, accuracy "
              << fixed(r.independent->bandwidth.accuracy, 2);
  else
    std::cout << "unroutable";

  // Node selection under the same conditions.
  const auto d = adapt.evaluate(mapping);
  std::cout << "\n  selection: { " << join(d.nodes, ", ") << " }"
            << "  confidence " << fixed(d.confidence, 2)
            << (d.held_low_confidence
                    ? "  [migration held: data too stale]"
                    : d.migrate ? "  [would migrate]" : "")
            << "\n";
}

}  // namespace

int main() {
  apps::CmuHarness h;
  snmp::FaultInjector& fx = h.fault_injector();
  // whiteface (the router serving m-7/m-8) dies at t=30 and restarts at
  // t=70; its counters re-base to zero, like a real reboot.
  fx.crash(snmp::agent_address("whiteface"), {30.0, 70.0});

  h.start(6.0);
  netsim::CbrTraffic cbr(h.sim(), "m-5", "m-8", mbps(20), 4.0);

  fx::AdaptationModule::Options opts;
  opts.timeframe = core::Timeframe::history(60.0);
  opts.min_accuracy = 0.5;  // hold migrations on low-confidence data
  fx::AdaptationModule adapt(h.modeler(), h.hosts(), "m-4", opts);
  const std::vector<std::string> mapping{"m-4", "m-5", "m-7", "m-8"};

  std::cout << "whiteface crashes at t=30, restarts at t=70\n\n";
  for (int step = 0; step < 6; ++step) {
    h.sim().run_for(16.0);
    report(h, adapt, mapping);
  }

  std::cout << "\nhealth transitions observed by the collector:\n";
  for (const collector::HealthTransition& t : h.collector().health_log())
    std::cout << "  t=" << fixed(t.at, 0) << "s  " << t.router << ": "
              << collector::to_string(t.from) << " -> "
              << collector::to_string(t.to) << "\n";

  std::cout << "\ncircuit breaker: "
            << h.collector().breakers().fast_failures()
            << " exchanges fast-failed without touching the wire; "
            << h.transport().datagrams_sent_to(
                   snmp::agent_address("whiteface"))
            << " datagrams total to the dead router\n";

  std::cout << "\nWhile whiteface is down, m-7/m-8 answers keep flowing "
               "from retained history --\nwith accuracy decaying toward "
               "zero (2^(-age/30s)) instead of hard errors -- and\nthe "
               "adaptation module refuses to migrate on that stale data. "
               "After the restart\nthe collector re-bases the counters, "
               "health returns to healthy, and confidence\nrecovers.\n";
  return 0;
}
