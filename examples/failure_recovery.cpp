// Link failure, end to end: a trunk link dies mid-run; SNMP agents flip
// ifOperStatus, the collector notices on its next poll, Remos queries
// start reporting the detour topology, and a network-aware bulk mover
// watches its bandwidth collapse and recover -- all without any component
// peeking at the simulator.
//
//   ./failure_recovery
#include <iostream>

#include "apps/harness.hpp"
#include "core/remos_api.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

void snapshot(apps::CmuHarness& harness, const char* when) {
  core::FlowQuery q;
  q.independent = core::FlowRequest{"m-4", "m-7", 0};
  q.timeframe = core::Timeframe::current();
  const auto r = harness.modeler().flow_info(q);
  std::cout << when << "  t=" << fixed(harness.sim().now(), 0) << "s:  ";
  if (!r.independent->routable) {
    std::cout << "m-4 -> m-7 UNREACHABLE\n";
    return;
  }
  std::cout << "residual m-4 -> m-7 capacity "
            << to_mbps(r.independent->bandwidth.quartiles.median)
            << " Mbps over "
            << fixed(r.independent->latency.mean * 1e3, 1) << " ms ("
            << r.independent->latency.mean / millis(0.2) << " hops)\n";
}

}  // namespace

int main() {
  apps::CmuHarness harness;
  harness.start(6.0);
  netsim::Simulator& sim = harness.sim();
  const auto tw = sim.topology().link_between(
      sim.topology().id_of("timberline"), sim.topology().id_of("whiteface"));

  snapshot(harness, "healthy      ");

  // A long-running transfer that rides the timberline->whiteface trunk.
  // Note: from here on, Remos queries see the mover's own traffic on
  // whatever path it uses -- Remos "does not distinguish between
  // different types or sources of traffic" (the paper's §8.3 caveat), so
  // the residual numbers below are capacity minus everything measured,
  // the mover included.
  netsim::FlowOptions bulk;
  bulk.tag = "bulk-mover";
  const auto mover = sim.start_flow("m-4", "m-7", bulk);
  std::cout << "  bulk mover started at "
            << to_mbps(sim.flow_rate(mover)) << " Mbps\n\n";

  std::cout << ">>> trunk timberline--whiteface goes down\n";
  sim.set_link_up(tw, false);
  sim.run_for(6.0);  // collector polls observe ifOperStatus = down(2)

  snapshot(harness, "during outage");
  std::cout << "  bulk mover rerouted via aspen, now at "
            << to_mbps(sim.flow_rate(mover)) << " Mbps"
            << " (sharing the detour with aspen traffic would halve it)\n";
  // Prove the sharing point: an aspen-side flow appears.
  const auto competitor = sim.start_flow("m-1", "m-8");
  std::cout << "  with an aspen->whiteface competitor: mover "
            << to_mbps(sim.flow_rate(mover)) << " Mbps, competitor "
            << to_mbps(sim.flow_rate(competitor)) << " Mbps\n";
  const core::GraphResult detour = remos_get_graph(
      harness.modeler(), {"m-4", "m-7"}, core::Timeframe::current());
  std::cout << "  remos_get_graph now abstracts the detour:\n";
  for (const auto& l : detour.graph.links()) {
    std::cout << "    " << l.a << " -- " << l.b;
    if (!l.abstracts.empty())
      std::cout << "  (hides: " << join(l.abstracts, ", ") << ")";
    std::cout << "\n";
  }
  sim.stop_flow(competitor);

  std::cout << "\n>>> trunk repaired\n";
  sim.set_link_up(tw, true);
  sim.run_for(6.0);
  snapshot(harness, "recovered    ");
  std::cout << "  bulk mover back at " << to_mbps(sim.flow_rate(mover))
            << " Mbps on the direct route\n";
  return 0;
}
