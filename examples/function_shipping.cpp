// Function/data shipping (usage model from paper §2): a client on m-1
// holds 200 MB of input for a simulation and must decide -- run locally,
// or ship the data to a compute server and pull results back?  The
// tradeoff depends on network *and* compute availability, both of which
// Remos reports: flow queries give transfer bandwidth, host info gives
// CPU load.  The example evaluates the cost model under three conditions
// and shows the decision flipping.
//
//   ./function_shipping
#include <iostream>
#include <memory>

#include "apps/harness.hpp"
#include "core/remos_api.hpp"
#include "netsim/traffic.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

constexpr Bytes kInputBytes = 200e6;
constexpr Bytes kOutputBytes = 20e6;
constexpr Seconds kWorkSeconds = 120;  // on one idle reference CPU

struct Estimate {
  std::string where;
  Seconds total;
  std::string detail;
};

Estimate local_estimate(apps::CmuHarness& harness) {
  const double speed = harness.sim().effective_speed(
      harness.sim().topology().id_of("m-1"));
  return {"local m-1", kWorkSeconds / speed,
          "compute only, at " + fixed(speed * 100, 0) + "% speed"};
}

Estimate remote_estimate(apps::CmuHarness& harness,
                         const std::string& server) {
  // One simultaneous query: upload and download as variable flows (they
  // do not overlap in time, but this bounds both with one round-trip to
  // the Modeler; a fussier client could issue two queries).
  const auto r = remos_flow_info(
      harness.modeler(), {},
      {core::FlowRequest{"m-1", server, 1.0},
       core::FlowRequest{server, "m-1", 1.0}},
      std::nullopt, core::Timeframe::history(10.0));
  const double up = r.variable[0].bandwidth.quartiles.q1;    // conservative
  const double down = r.variable[1].bandwidth.quartiles.q1;
  const auto g = harness.modeler().get_graph({"m-1", server},
                                             core::Timeframe::current());
  const double load = g.node(server).has_host_info ? g.node(server).cpu_load
                                                   : 0.0;
  const double speed = 1.0 - load;
  if (up <= 0 || down <= 0 || speed <= 0)
    return {server, std::numeric_limits<double>::infinity(), "unusable"};
  const Seconds total = kInputBytes * 8 / up + kWorkSeconds / speed +
                        kOutputBytes * 8 / down;
  return {server, total,
          "ship " + fixed(to_mbps(up), 0) + "/" + fixed(to_mbps(down), 0) +
              " Mbps, cpu " + fixed(speed * 100, 0) + "%"};
}

void decide(apps::CmuHarness& harness, const char* situation) {
  std::cout << "--- " << situation << " ---\n";
  std::vector<Estimate> options{local_estimate(harness)};
  for (const std::string server : {"m-4", "m-7"})
    options.push_back(remote_estimate(harness, server));
  const Estimate* best = &options[0];
  for (const Estimate& e : options) {
    std::cout << "  " << pad_right(e.where, 12)
              << pad_left(fixed(e.total, 1), 8) << " s   (" << e.detail
              << ")\n";
    if (e.total < best->total) best = &e;
  }
  std::cout << "  => run on " << best->where << "\n\n";
}

}  // namespace

int main() {
  apps::CmuHarness harness;
  harness.start(6.0);
  netsim::Simulator& sim = harness.sim();
  auto id = [&](const char* n) { return sim.topology().id_of(n); };

  // The client workstation is half-busy (its user is working);
  // the servers start idle.
  sim.set_cpu_load(id("m-1"), 0.5);
  sim.run_for(6.0);
  decide(harness, "idle network, idle servers: shipping wins");

  // A batch job lands on m-4.
  sim.set_cpu_load(id("m-4"), 0.85);
  sim.run_for(6.0);
  decide(harness, "m-4 busy: the decision moves to m-7");

  // Heavy traffic floods the path to m-7 as well.
  netsim::CbrTraffic blast(sim, "m-3", "m-7", mbps(95), 120.0);
  sim.run_for(12.0);
  decide(harness,
         "m-4 busy AND m-7's path congested: local execution wins");
  return 0;
}
