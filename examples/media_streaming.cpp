// Application-quality adaptation (usage models of paper §2): a media
// server on m-1 streams to three clients.  Audio is a fixed flow (it
// either fits or it does not), video is a variable flow whose encoding
// rate the server picks from the Remos answer, and a background prefetch
// runs as an independent flow soaking up leftovers.  When cross-traffic
// appears, the server re-queries and steps the video rate down instead of
// glitching -- and uses the quartile spread to decide how much headroom
// to keep.
//
//   ./media_streaming
#include <iostream>

#include "apps/harness.hpp"
#include "core/remos_api.hpp"
#include "netsim/traffic.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

// Ladder of video encodings the server can switch between.
constexpr double kLadderMbps[] = {1.5, 3.0, 6.0, 12.0, 25.0};

double pick_video_rate(const core::FlowResult& probe) {
  // Conservative policy: provision against the *worst* quartile scenario
  // -- the spread is exactly why Remos reports quartiles, and a bursty
  // competitor makes median and min very different numbers.
  const double budget = probe.bandwidth.quartiles.min;
  double chosen = 0;
  for (double rung : kLadderMbps)
    if (mbps(rung) <= budget) chosen = rung;
  return chosen;
}

void report(apps::CmuHarness& harness, const char* when) {
  const core::Timeframe window = core::Timeframe::history(30.0);

  // Step 1: probe -- how would two proportional video flows fare?
  const auto probe = remos_flow_info(
      harness.modeler(), {},
      {core::FlowRequest{"m-1", "m-7", 1.0},   // video to m-7
       core::FlowRequest{"m-1", "m-5", 1.0}},  // video to m-5
      std::nullopt, window);
  const double v7 = pick_video_rate(probe.variable[0]);
  const double v5 = pick_video_rate(probe.variable[1]);

  // Step 2: admit the chosen encodings as fixed flows and see what an
  // opportunistic prefetch can still scavenge.
  const auto admit = remos_flow_info(
      harness.modeler(),
      {core::FlowRequest{"m-1", "m-7", kbps(128)},  // audio
       core::FlowRequest{"m-1", "m-7", mbps(v7)},
       core::FlowRequest{"m-1", "m-5", mbps(v5)}},
      {}, core::FlowRequest{"m-1", "m-8", 0},  // prefetch leftovers
      window);

  std::cout << when << "\n";
  std::cout << "  audio 128 kbps m-1->m-7: "
            << (admit.fixed[0].satisfied ? "admitted" : "REFUSED") << "\n";
  auto show_video = [&](const core::FlowResult& f, double rate) {
    std::cout << "  video " << f.request.src << "->" << f.request.dst
              << ": scenario range ["
              << fixed(to_mbps(f.bandwidth.quartiles.min), 1) << " .. "
              << fixed(to_mbps(f.bandwidth.quartiles.max), 1)
              << "] Mbps -> encode at " << rate << " Mbps ("
              << (admit.all_fixed_satisfied() ? "fits" : "check") << ")\n";
  };
  show_video(probe.variable[0], v7);
  show_video(probe.variable[1], v5);
  std::cout << "  prefetch m-1->m-8 scavenges "
            << fixed(to_mbps(admit.independent->bandwidth.quartiles.median),
                     1)
            << " Mbps median\n\n";
}

}  // namespace

int main() {
  apps::CmuHarness harness;
  harness.start();
  harness.sim().run_for(15.0);

  report(harness, "--- quiet network ---");

  // Bursty competing traffic appears on the m-1 uplink's downstream path.
  netsim::OnOffTraffic::Config cfg;
  cfg.rate = mbps(85);
  cfg.weight = 3.0;  // an aggressive, non-backing-off source
  cfg.mean_on = 4.0;
  cfg.mean_off = 4.0;
  cfg.seed = 9;
  netsim::OnOffTraffic burst(harness.sim(),
                             harness.sim().topology().id_of("m-2"),
                             harness.sim().topology().id_of("m-7"), cfg);
  harness.sim().run_for(60.0);

  report(harness, "--- with bursty m-2 -> m-7 cross-traffic ---");

  std::cout << "Provisioning against the worst scenario quartile steps the "
               "congested stream down a\nrung; a median-based choice would "
               "stall whenever the burst is on.\n";
  return 0;
}
