// Node selection for a parallel job (the paper's §7 workflow and
// Figure 4): measure the network, derive the distance matrix from one
// topology query, grow a cluster greedily from a start node, and show how
// the selection dodges a busy path.
//
//   ./node_selection
#include <iostream>

#include "apps/harness.hpp"
#include "cluster/clustering.hpp"
#include "cluster/distance.hpp"
#include "netsim/traffic.hpp"
#include "util/strings.hpp"

int main() {
  using namespace remos;

  apps::CmuHarness harness;
  harness.start();

  auto select = [&](const std::string& label, std::size_t k) {
    const core::NetworkGraph graph = harness.modeler().get_graph(
        harness.hosts(), core::Timeframe::history(10.0));
    const cluster::DistanceMatrix distances(graph, harness.hosts());
    const cluster::ClusterResult result =
        cluster::greedy_cluster(distances, "m-4", k);
    std::cout << label << ": selected { " << join(result.nodes, ", ")
              << " }  (cost " << fixed(result.cost, 3) << ")\n";
    return result;
  };

  std::cout << "start node m-4, cluster size 4\n\n";
  std::cout << "--- unloaded network ---\n";
  select("clean", 4);

  std::cout << "\n--- with heavy m-6 -> m-8 traffic "
               "(m-6 -> timberline -> whiteface -> m-8) ---\n";
  netsim::CbrTraffic blast(harness.sim(), "m-6", "m-8", mbps(95), 19.0);
  harness.sim().run_for(15.0);  // give the collector time to see it
  const auto busy = select("busy ", 4);

  std::cout << "\nThe selection avoids every node whose access link or "
               "transit path crosses the\nbusy links -- the paper's "
               "Figure 4 outcome ({m-1, m-2, m-4, m-5}).\n";

  // Show the distance matrix so the decision is inspectable.
  const core::NetworkGraph graph = harness.modeler().get_graph(
      harness.hosts(), core::Timeframe::history(10.0));
  const cluster::DistanceMatrix distances(graph, harness.hosts());
  std::cout << "\ndistance matrix (bandwidth-dominant, 1.0 = clean "
               "100 Mbps path):\n"
            << distances.to_string();
  (void)busy;
  return 0;
}
