// Internal-parameter adaptation (paper §6, citing Siegell & Steenkiste:
// "an adaptation module selects the optimal pipeline depth for a
// pipelined SOR application based on network and CPU performance").
//
// A pipelined successive-over-relaxation solver overlaps computation with
// boundary exchange.  Its per-sweep cost model:
//
//   T(d) = C/(d * s) + d * (L + V / B)
//
// where d is pipeline depth, C sweep compute on one CPU, s effective CPU
// speed, L per-message latency, V boundary bytes per stage and B the
// bandwidth Remos reports for the exchange path.  Deeper pipelines cut
// compute per stage but pay one more latency+transfer term per sweep --
// so the optimum shifts when the network changes.  The adaptation module
// re-queries Remos and re-picks d.
//
//   ./pipelined_sor
#include <cmath>
#include <iostream>

#include "apps/harness.hpp"
#include "core/remos_api.hpp"
#include "netsim/traffic.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

constexpr Seconds kSweepCompute = 0.8;   // C
constexpr Bytes kBoundaryBytes = 2e6;    // V per stage
constexpr Seconds kMsgLatencyFloor = 2e-3;

struct Choice {
  int depth;
  Seconds per_sweep;
};

Choice pick_depth(apps::CmuHarness& harness, const std::string& left,
                  const std::string& right) {
  // One flow query gives the exchange path's expected bandwidth and
  // latency; one graph lookup gives CPU headroom.
  const auto r = remos_flow_info(
      harness.modeler(), {}, {core::FlowRequest{left, right, 1.0}},
      std::nullopt, core::Timeframe::history(10.0));
  const double bw = std::max(r.variable[0].bandwidth.quartiles.q1, 1e3);
  const Seconds lat =
      kMsgLatencyFloor + r.variable[0].latency.quartiles.median;
  const double speed = harness.sim().effective_speed(
      harness.sim().topology().id_of(left));

  Choice best{1, std::numeric_limits<double>::infinity()};
  for (int d = 1; d <= 16; ++d) {
    const Seconds t =
        kSweepCompute / (d * speed) + d * (lat + kBoundaryBytes * 8 / bw);
    if (t < best.per_sweep) best = {d, t};
  }
  std::cout << "  bandwidth q1 " << fixed(to_mbps(bw), 1) << " Mbps, "
            << "latency " << fixed(lat * 1e3, 1) << " ms, cpu "
            << fixed(speed * 100, 0) << "%  ->  depth " << best.depth
            << "  (" << fixed(best.per_sweep * 1e3, 1) << " ms/sweep)\n";
  return best;
}

}  // namespace

int main() {
  apps::CmuHarness harness;
  harness.start(6.0);
  netsim::Simulator& sim = harness.sim();

  std::cout << "Pipelined SOR between m-4 and m-5; depth re-picked from "
               "Remos after each change.\n\n";

  std::cout << "clean network:\n";
  const Choice before = pick_depth(harness, "m-4", "m-5");

  std::cout << "\n95 Mbps blast joins the m-4 uplink:\n";
  netsim::CbrTraffic blast(sim, "m-4", "m-6", mbps(95), 120.0);
  sim.run_for(12.0);
  const Choice congested = pick_depth(harness, "m-4", "m-5");

  std::cout << "\nblast gone, but a batch job eats 80% of m-4's CPU:\n";
  blast.stop();
  sim.set_cpu_load(sim.topology().id_of("m-4"), 0.8);
  sim.run_for(12.0);
  const Choice loaded = pick_depth(harness, "m-4", "m-5");

  std::cout << "\nWith bandwidth scarce the pipeline flattens (depth "
            << congested.depth << " < " << before.depth
            << "); with CPU scarce it deepens (depth " << loaded.depth
            << " > " << before.depth
            << ") -- the same query, two opposite knob movements.\n";
  return 0;
}
