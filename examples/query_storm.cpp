// Query storm: many concurrent network-aware applications hammering one
// Remos query service while the measurement plane degrades underneath it.
//
// Eight client threads issue mixed remos_get_graph / remos_flow_info
// queries against the concurrent QueryService while the PR 1 fault
// schedule runs: a 30% loss burst, two router-agent crash/restarts and a
// counter reset.  Every query carries a deadline and a staleness budget;
// the service answers from immutable snapshots, flags stale answers,
// sheds overload, and never blocks a caller past its deadline.
//
//   ./query_storm
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "netsim/traffic.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;
using service::QueryStatus;

struct Tally {
  std::atomic<std::uint64_t> answered{0};
  std::atomic<std::uint64_t> stale{0};
  std::atomic<std::uint64_t> overloaded{0};
  std::atomic<std::uint64_t> expired{0};
  std::atomic<std::uint64_t> errors{0};

  void count(QueryStatus s) {
    switch (s) {
      case QueryStatus::kAnswered: ++answered; break;
      case QueryStatus::kStale: ++stale; break;
      case QueryStatus::kDegraded: ++stale; break;  // brownout: count as stale
      case QueryStatus::kOverloaded: ++overloaded; break;
      case QueryStatus::kExpired: ++expired; break;
      case QueryStatus::kError: ++errors; break;
    }
  }
};

}  // namespace

int main() {
  apps::CmuHarness harness;
  snmp::FaultInjector& fx = harness.fault_injector();
  std::cout << "fault schedule: loss burst 30% @ [10,40)s, timberline "
               "crash @ [50,70)s,\n                aspen counter reset @ "
               "80s, whiteface crash @ [90,120)s\n\n";
  fx.loss_burst({10.0, 40.0}, 0.30);
  fx.crash(snmp::agent_address("timberline"), {50.0, 70.0});
  fx.counter_reset(snmp::agent_address("aspen"), 80.0);
  fx.crash(snmp::agent_address("whiteface"), {90.0, 120.0});
  harness.start(6.0);
  netsim::CbrTraffic background(harness.sim(), "m-5", "m-8", mbps(20), 4.0);

  service::QueryService::Options so;
  so.workers = 4;
  so.queue_capacity = 64;
  so.default_deadline = std::chrono::milliseconds(2000);
  // Tighter than the 2 s poll period: answers served late in a polling
  // interval exceed the budget and come back flagged kStale.
  so.staleness_slo = 1.0;
  so.poll_interval = std::chrono::milliseconds(3);
  // Micro-batching: concurrently arriving flow_info calls coalesce into
  // one shared batch solve per window (answers are bit-for-bit what the
  // lone calls would have produced against the same snapshot).
  so.coalesce_window = std::chrono::microseconds(200);
  auto service = harness.serve(so);
  std::cout << "service up: " << so.workers << " workers, queue depth "
            << so.queue_capacity << ", deadline 2 s, staleness SLO "
            << fixed(so.staleness_slo, 0) << " s (model clock), coalesce "
            << "window " << so.coalesce_window.count() << " us\n";

  // Clients program against the one FlowInfoEndpoint surface; swapping in
  // a RemosClient or a FailoverCoordinator is a wiring change, not a
  // call-site change.
  service::FlowInfoEndpoint& endpoint = *service;

  constexpr int kClients = 8;
  constexpr Seconds kEnd = 130.0;
  Tally tally;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::string>& hosts = harness.hosts();
      int i = 0;
      while (service->model_now() < kEnd) {
        service::ResponseMeta meta;
        if ((i + c) % 3 == 0) {
          core::FlowQuery fq;
          fq.fixed = {core::FlowRequest{
              hosts[static_cast<std::size_t>(i) % hosts.size()],
              hosts[static_cast<std::size_t>(i + 4) % hosts.size()],
              mbps(5)}};
          service::FlowInfoQuery q;
          q.query = std::move(fq);
          meta = endpoint.flow_info(std::move(q)).meta;
        } else {
          service::GraphQuery q;
          q.nodes = {hosts[static_cast<std::size_t>(i) % hosts.size()],
                     hosts[static_cast<std::size_t>(i + 1 + c) %
                           hosts.size()]};
          meta = endpoint.get_graph(std::move(q)).meta;
        }
        tally.count(meta.status);
        ++i;
      }
    });
  }
  for (std::thread& t : clients) t.join();

  // One traced query before shutdown: the span tree shows where a single
  // answer spent its budget.
  service::GraphQuery traced;
  traced.nodes = {harness.hosts()[0], harness.hosts()[5]};
  traced.trace = true;
  const service::GraphResponse traced_r =
      service->get_graph(std::move(traced));
  service->stop();

  const service::ServiceStats stats = service->stats();
  std::cout << "\nstorm complete at model time "
            << fixed(service->model_now(), 0) << " s, snapshot v"
            << stats.snapshot_version << " (" << stats.polls
            << " poll steps)\n\n";
  std::cout << "  answered fresh   " << tally.answered.load() << "\n"
            << "  answered stale   " << tally.stale.load()
            << "   (served past the SLO with decayed accuracy)\n"
            << "  shed (overload)  " << tally.overloaded.load() << "\n"
            << "  expired          " << tally.expired.load() << "\n"
            << "  errors           " << tally.errors.load() << "\n\n";
  std::cout << "service-side latency: p50 " << stats.p50_us << " us, p99 "
            << stats.p99_us << " us; in-flight high water "
            << stats.in_flight_high_water << "/" << so.queue_capacity
            << "\n";
  if (stats.coalesced_batches > 0)
    std::cout << "coalescer: " << stats.coalesced_queries
              << " flow queries folded into " << stats.coalesced_batches
              << " batch solves (mean batch "
              << fixed(static_cast<double>(stats.coalesced_queries) /
                           static_cast<double>(stats.coalesced_batches),
                       1)
              << ")\n";

  // The measurement plane really did degrade: show what the collector saw.
  std::cout << "\ncollector health transitions during the storm:\n";
  for (const collector::HealthTransition& t :
       harness.collector().health_log())
    std::cout << "  t=" << pad_left(fixed(t.at, 0), 3) << "s  " << t.router
              << ": " << to_string(t.from) << " -> " << to_string(t.to)
              << "\n";

  // Where one answer spent its budget (admission -> snapshot pickup ->
  // logical build / route resolution / max-min solve).
  std::cout << "\none traced query ("
            << to_string(traced_r.meta.status) << "):\n"
            << traced_r.meta.trace.render();

  // The flight recorder's retained window: breaker trips, health
  // transitions, snapshot publishes and shed episodes, in order.
  std::cout << "\nflight recorder (most recent "
            << harness.recorder().dump().size() << " of "
            << harness.recorder().total() << " events):\n"
            << harness.recorder().dump_text();

  // The full metrics exposition, scrape-ready; CI parses this block.
  std::cout << "\n--- metrics ---\n"
            << harness.metrics().render() << "--- end metrics ---\n";
  return 0;
}
