// Quickstart: bring up the simulated CMU testbed, let the SNMP collector
// discover and measure it, and ask Remos the paper's two questions --
// "what does my network look like?" (remos_get_graph) and "what will my
// flows get?" (remos_flow_info).
//
//   ./quickstart
#include <iostream>

#include "apps/harness.hpp"
#include "core/remos_api.hpp"
#include "netsim/traffic.hpp"

int main() {
  using namespace remos;

  // The full Figure-2 pipeline: simulator -> SNMP agents -> collector ->
  // modeler.  start() discovers the topology and begins polling.
  apps::CmuHarness harness;
  harness.start();
  std::cout << "discovered " << harness.collector().model().nodes().size()
            << " nodes from seed routers via SNMP\n\n";

  // Some competing traffic on the timberline->whiteface path.
  netsim::CbrTraffic cross(harness.sim(), "m-6", "m-8", mbps(60));
  harness.sim().run_for(20.0);

  // --- remos_get_graph: the logical topology between three hosts ---
  const core::GraphResult topo =
      remos_get_graph(harness.modeler(), {"m-1", "m-4", "m-8"},
                      core::Timeframe::history(15.0));
  std::cout << "logical topology for {m-1, m-4, m-8} over the last 15 s:\n"
            << topo.graph.to_string() << "\n";

  // --- remos_flow_info: a three-class flow query ---
  // A fixed 8 Mbps feed m-1 -> m-4, two variable flows from m-4 sharing
  // what remains 1:3, and an independent bulk mover m-4 -> m-8 that takes
  // the leftovers across the congested link.
  const auto result = remos_flow_info(
      harness.modeler(),
      /*fixed=*/{core::FlowRequest{"m-1", "m-4", mbps(8)}},
      /*variable=*/
      {core::FlowRequest{"m-4", "m-5", 1.0},
       core::FlowRequest{"m-4", "m-7", 3.0}},
      /*independent=*/core::FlowRequest{"m-4", "m-8", 0},
      core::Timeframe::history(15.0));

  auto show = [](const char* cls, const core::FlowResult& f) {
    std::cout << "  " << cls << " " << f.request.src << " -> "
              << f.request.dst << ": "
              << to_mbps(f.bandwidth.quartiles.median) << " Mbps median, "
              << "quartiles [" << to_mbps(f.bandwidth.quartiles.min) << ", "
              << to_mbps(f.bandwidth.quartiles.q1) << ", "
              << to_mbps(f.bandwidth.quartiles.median) << ", "
              << to_mbps(f.bandwidth.quartiles.q3) << ", "
              << to_mbps(f.bandwidth.quartiles.max) << "] Mbps, "
              << "latency " << f.latency.mean * 1e3 << " ms"
              << (f.satisfied ? "" : "  (NOT fully satisfiable)") << "\n";
  };
  std::cout << "flow query results:\n";
  show("fixed      ", result.fixed[0]);
  show("variable   ", result.variable[0]);
  show("variable   ", result.variable[1]);
  show("independent", *result.independent);

  std::cout << "\nall fixed flows satisfied: "
            << (result.all_fixed_satisfied() ? "yes" : "no") << "\n";

  // --- remos_flow_info_batch: N what-ifs, one snapshot, one call ---
  // Independent mode answers each sub-query exactly as a lone call would
  // (none of them sees the others), amortizing the shared routing work;
  // the same batch can also go through any service::FlowInfoEndpoint as
  // flow_info_batch.
  core::FlowBatchQuery batch;
  batch.mode = core::FlowBatchQuery::Mode::kIndependent;
  for (const char* dst : {"m-5", "m-7", "m-8"}) {
    core::FlowQuery what_if;
    what_if.variable.push_back(core::FlowRequest{"m-4", dst, 1.0});
    what_if.timeframe = core::Timeframe::history(15.0);
    batch.queries.push_back(std::move(what_if));
  }
  const core::FlowBatchResult batched =
      remos_flow_info_batch(harness.modeler(), batch);
  std::cout << "\nbatched what-ifs from m-4 (independent mode):\n";
  for (std::size_t i = 0; i < batched.results.size(); ++i)
    show("what-if    ", batched.results[i].variable[0]);
  return 0;
}
