// Replica failover, end to end: a primary Modeler streams versioned
// snapshot frames (deltas, periodic full anchors) to three in-process
// replicas over a deliberately hostile channel while client threads keep
// querying through the FailoverCoordinator.  Mid-run the channel
// corrupts and drops frames, partitions replica 1, and crash/restarts
// replica 2 -- and the queries keep getting answered, because the
// coordinator reroutes around the casualties.  At the end every replica
// must have converged bit-for-bit (canonical fingerprint) with the
// primary; the example exits nonzero if the story did not hold.
//
//   ./replica_failover
#include <atomic>
#include <chrono>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "collector/network_model.hpp"
#include "collector/snapshot_codec.hpp"
#include "netsim/generators.hpp"
#include "netsim/topology.hpp"
#include "service/failover.hpp"
#include "service/replication.hpp"

namespace {

using namespace remos;
using namespace std::chrono_literals;
using Window = service::ChannelFaultInjector::Window;

collector::NetworkModel build_model(const netsim::Topology& topo) {
  collector::NetworkModel model;
  for (const netsim::Node& n : topo.nodes())
    model.upsert_node(n.name, n.kind == netsim::NodeKind::kNetwork)
        .internal_bw = n.internal_bw;
  for (const netsim::Link& l : topo.links()) {
    collector::ModelLink& ml = model.upsert_link(
        topo.name_of(l.a), topo.name_of(l.b), l.capacity, l.latency);
    ml.last_update = 1.0;
    ml.history.record(collector::Sample{1.0, 0.0, 0.0});
  }
  return model;
}

}  // namespace

int main() {
  // A 32-host Waxman testbed, replicated three ways.
  service::ReplicatedService::Options o;
  o.replicas = 3;
  o.service.workers = 2;
  o.service.queue_capacity = 64;
  o.service.default_deadline = 2'000'000us;
  o.service.staleness_slo = 30.0;
  o.full_every = 16;
  service::ReplicatedService rs(o);

  // The storm script, in model-clock seconds (one publish round = 1s):
  // frames corrupted 30% of the time in [20,50), dropped 20% in [40,70),
  // replica 1 partitioned through [30,60), replica 2 down through
  // [60,90) and then restarted cold.
  rs.faults().corrupt(Window{20.0, 50.0}, 0.30);
  rs.faults().drop(Window{40.0, 70.0}, 0.20);
  rs.faults().partition(1, Window{30.0, 60.0});
  rs.faults().crash(2, Window{60.0, 90.0});

  rs.start();
  netsim::WaxmanParams wx;
  wx.hosts = 32;
  wx.routers = 8;
  wx.seed = 12;
  collector::NetworkModel model = build_model(make_waxman(wx));
  rs.publish(model, 0.5);

  constexpr int kRounds = 120;
  std::atomic<bool> done{false};
  std::thread publisher([&] {
    for (int round = 1; round <= kRounds; ++round) {
      auto& links = model.links();
      collector::ModelLink& l = links[static_cast<std::size_t>(round) %
                                      links.size()];
      l.history.record(collector::Sample{static_cast<Seconds>(round),
                                         mbps(5 + round % 7),
                                         mbps(1 + round % 3)});
      l.last_update = round;
      rs.publish(model, round);
      std::this_thread::sleep_for(2ms);
    }
    done.store(true, std::memory_order_release);
  });

  std::atomic<std::uint64_t> ok{0}, failed{0};
  std::vector<std::thread> clients;
  for (int c = 0; c < 4; ++c) {
    clients.emplace_back([&, c] {
      int i = 0;
      while (!done.load(std::memory_order_acquire)) {
        service::GraphQuery q;
        q.nodes = {"h" + std::to_string(i % 32),
                   "h" + std::to_string((i + 5 + c) % 32)};
        if (rs.coordinator().get_graph(std::move(q)).meta.ok())
          ok.fetch_add(1, std::memory_order_relaxed);
        else
          failed.fetch_add(1, std::memory_order_relaxed);
        ++i;
      }
    });
  }
  publisher.join();
  for (std::thread& t : clients) t.join();
  rs.stop();

  const auto& bus = rs.bus_stats();
  std::cout << "publisher: " << kRounds << " rounds, version "
            << rs.primary_version() << "\n"
            << "channel:   " << bus.sent << " frames sent, " << bus.dropped
            << " dropped, " << bus.mutated << " corrupted, "
            << bus.blackholed << " blackholed\n"
            << "queries:   " << ok.load() << " answered, " << failed.load()
            << " failed (" << rs.coordinator().stats().rerouted
            << " rerouted around sick replicas)\n";

  bool converged = true;
  for (std::size_t i = 0; i < rs.replica_count(); ++i) {
    const service::ReplicaStore& r = rs.replica(i);
    const bool match = r.fingerprint() == rs.primary_fingerprint() &&
                       r.applied_version() == rs.primary_version();
    converged = converged && match;
    std::cout << "replica " << i << ": v" << r.applied_version() << ", "
              << r.stats().deltas_applied << " deltas + "
              << r.stats().fulls_applied << " fulls, " << r.stats().gaps
              << " gaps, " << r.stats().resyncs << " resyncs, "
              << r.stats().restarts << " restarts -> "
              << (match ? "fingerprint converged" : "DIVERGED") << "\n";
  }

  const double total = static_cast<double>(ok.load() + failed.load());
  const double success =
      total == 0 ? 0.0 : static_cast<double>(ok.load()) / total;
  const bool passed = converged && success >= 0.99 &&
                      rs.replica(2).stats().restarts >= 1;
  std::cout << (passed ? "\nfailover held: " : "\nFAILOVER BROKE: ")
            << static_cast<int>(success * 100)
            << "% of queries answered through the storm\n";
  return passed ? 0 : 1;
}
