// Tenant QoS quickstart: weighted fair admission, brownout, and the
// client-side retry budget in one small program.
//
// Two applications share one Remos query service: "interactive" (a
// network-aware scheduler placing tasks, weight 4) and "batch" (a bulk
// topology walker, weight 1, deliberately run 10x too hot).  The
// admission plane slices the service's concurrency budget by weight, so
// the batch tenant's storm is shed back onto itself while interactive
// queries keep their latency class; shed queries with a cached answer
// brown out (kDegraded: the last good answer, accuracy discounted by
// age) instead of failing dry.  The batch client wraps its calls in
// RemosClient, whose retry budget caps amplification near 1x even while
// most of its attempts are being shed.
//
//   ./tenant_qos
#include <algorithm>
#include <atomic>
#include <chrono>
#include <iostream>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "service/query_service.hpp"
#include "service/remos_client.hpp"
#include "service/tenant_admission.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;
using namespace std::chrono_literals;
using Clock = std::chrono::steady_clock;

double us_since(Clock::time_point t0) {
  return std::chrono::duration<double, std::micro>(Clock::now() - t0)
      .count();
}

}  // namespace

int main() {
  apps::CmuHarness harness;
  harness.start(6.0);

  service::QueryService::Options so;
  so.workers = 4;
  so.queue_capacity = 16;      // admission budget: 16 concurrent queries
  so.reserved_fraction = 1.0;  // strict weighted slices, no shared pool
  so.default_deadline = 100ms;
  so.staleness_slo = 1e9;
  so.poll_interval = 3ms;
  so.cache_capacity = 256;     // enables the brownout ladder
  so.brownout_halflife = 30.0;
  auto service = harness.serve(so);

  const int interactive = service->register_tenant("interactive", 4.0);
  const int batch = service->register_tenant("batch", 1.0);
  std::cout << "budget 16, weights: interactive 4, batch 1, default 1\n"
            << "  -> reserved slots: interactive "
            << service->admission().tenant_stats(interactive).reserved_slots
            << ", batch "
            << service->admission().tenant_stats(batch).reserved_slots
            << "\n\n";

  const std::vector<std::string>& hosts = harness.hosts();

  // Both tenants program against FlowInfoEndpoint; that the interactive
  // tenant talks straight to the service while batch goes through a
  // retry-budgeted RemosClient is pure wiring.
  service::FlowInfoEndpoint& fg_endpoint = *service;

  // Interactive: 600 paced placement queries with a tight deadline.
  std::atomic<bool> done{false};
  std::vector<double> lat;
  std::uint64_t ok = 0;
  std::thread fg([&] {
    lat.reserve(600);
    for (int i = 0; i < 600; ++i) {
      service::GraphQuery q;
      q.nodes = {hosts[static_cast<std::size_t>(i) % hosts.size()],
                 hosts[static_cast<std::size_t>(i + 1) % hosts.size()]};
      q.tenant = interactive;
      q.deadline = 50ms;
      const auto t0 = Clock::now();
      if (fg_endpoint.get_graph(std::move(q)).meta.ok()) ++ok;
      lat.push_back(us_since(t0));
      std::this_thread::sleep_for(200us);
    }
    done.store(true, std::memory_order_release);
  });

  // Batch: ten unpaced threads through one retry-budgeted client --
  // far more offered load than a weight-1 slice can absorb.
  service::RemosClient::Options co;
  co.tenant = batch;
  co.max_attempts = 3;
  co.base_backoff = 100us;
  service::RemosClient batch_client(*service, co);
  service::FlowInfoEndpoint& bg_endpoint = batch_client;
  std::vector<std::thread> bg;
  for (int t = 0; t < 10; ++t) {
    bg.emplace_back([&, t] {
      std::uint64_t s = 0x9e3779b97f4a7c15ull * static_cast<unsigned>(t + 1);
      while (!done.load(std::memory_order_acquire)) {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        service::GraphQuery q;
        q.nodes = {hosts[(s >> 3) % hosts.size()],
                   hosts[(s >> 17) % hosts.size()],
                   hosts[(s >> 31) % hosts.size()]};
        bg_endpoint.get_graph(std::move(q));
      }
    });
  }

  fg.join();
  for (std::thread& t : bg) t.join();

  std::sort(lat.begin(), lat.end());
  const double p99 =
      lat[std::min(lat.size() - 1,
                   static_cast<std::size_t>(0.99 *
                                            static_cast<double>(lat.size())))];
  const service::TenantAdmission& adm = service->admission();
  const service::RemosClient::Stats cs = batch_client.stats();
  const service::ServiceStats ss = service->stats();

  std::cout << "interactive: " << ok << "/600 ok, p99 " << fixed(p99, 0)
            << " us, sheds " << adm.tenant_stats(interactive).shed << "\n";
  std::cout << "batch:       " << cs.requests << " requests, "
            << cs.attempts << " attempts (amplification "
            << fixed(static_cast<double>(cs.attempts) /
                         static_cast<double>(std::max<std::uint64_t>(
                             1, cs.requests)),
                     3)
            << "x), sheds " << adm.tenant_stats(batch).shed << "\n";
  std::cout << "service:     " << ss.cache_hits << " cache hits, "
            << ss.degraded << " brownout answers, " << ss.shed
            << " shed dry\n";

  // The contract this example demonstrates: the storm was shed onto its
  // source, the interactive tenant kept its latency class, and retries
  // never amplified the batch load.
  const bool isolated =
      adm.tenant_stats(interactive).shed == 0 && ok >= 570 &&
      static_cast<double>(cs.attempts) <=
          1.3 * static_cast<double>(std::max<std::uint64_t>(1, cs.requests));
  std::cout << (isolated ? "\ntenant isolation held\n"
                         : "\ntenant isolation VIOLATED\n");
  return isolated ? 0 : 1;
}
