// Weathermap: a terminal dashboard over the telemetry history plane.
//
// Runs the full deployment (simulator -> SNMP -> collector -> service)
// under a fault schedule while background traffic lights up the testbed,
// then renders what the history plane retained:
//
//   - per-link utilization timelines, ground truth ("sim.link.*", sampled
//     inside the simulator's integrator) against what the SNMP
//     measurement path reconstructed ("collector.link.*");
//   - the service's own series: per-status latency, shed admissions,
//     snapshot staleness;
//   - a long-horizon Timeframe::history read answered from rollup
//     buckets, with covered-span / truncation reporting;
//   - machine-readable blocks CI parses: the series CSV dump, the
//     Prometheus-style exposition (metrics + series window summary) and
//     the flight recorder as JSONL.
//
//   ./weathermap
#include <atomic>
#include <chrono>
#include <cmath>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "core/logical.hpp"
#include "core/predictor.hpp"
#include "netsim/traffic.hpp"
#include "obs/series_export.hpp"
#include "util/strings.hpp"

namespace {

using namespace remos;

constexpr Seconds kEnd = 90.0;  // model-time length of the run
constexpr std::size_t kCols = 60;

double finite_max(const std::vector<double>& vs) {
  double m = 0;
  for (double v : vs)
    if (std::isfinite(v)) m = std::max(m, v);
  return m;
}

/// The collector may have discovered a link in the opposite orientation
/// to the simulator's topology ("aspen~m-1" vs "m-1~aspen"); flipping a
/// key swaps the endpoints and the direction suffix.
std::string flipped_key(const std::string& key) {
  const std::size_t dot = key.rfind('.');
  const std::size_t tilde = key.find('~');
  if (dot == std::string::npos || tilde == std::string::npos) return key;
  const std::string a = key.substr(0, tilde);
  const std::string b = key.substr(tilde + 1, dot - tilde - 1);
  const std::string dir = key.substr(dot + 1);
  return b + "~" + a + "." + (dir == "ab" ? "ba" : "ab");
}

const obs::TimeSeries* find_measured(const obs::TimeSeriesStore& store,
                                     const std::string& key) {
  if (const obs::TimeSeries* ts = store.find("collector.link." + key))
    return ts;
  return store.find("collector.link." + flipped_key(key));
}

/// One "truth vs measured" row pair of the map.
void print_link_row(const std::string& key, const obs::TimeSeries& truth,
                    const obs::TimeSeries* measured, Seconds end) {
  const std::vector<double> t =
      obs::resample_mean(truth.raw(end, end), 0, end, kCols);
  std::cout << "  " << key << "\n";
  std::cout << "    truth    |" << obs::sparkline(t, 0.0, 1.0) << "| peak "
            << fixed(100.0 * finite_max(t), 0) << "%\n";
  if (measured && !measured->empty()) {
    const std::vector<double> m =
        obs::resample_mean(measured->raw(end, end), 0, end, kCols);
    std::cout << "    measured |" << obs::sparkline(m, 0.0, 1.0)
              << "| peak " << fixed(100.0 * finite_max(m), 0) << "%\n";
  } else {
    std::cout << "    measured |" << std::string(kCols, ' ')
              << "| (no samples)\n";
  }
}

void print_window(const char* label, const obs::WindowStats& w) {
  const Measurement& m = w.measurement;
  std::cout << "  " << label << ": covered " << fixed(w.covered, 0) << "/"
            << fixed(w.requested, 0) << " s ("
            << fixed(100.0 * w.coverage(), 0) << "%), "
            << (w.truncated ? "TRUNCATED" : "complete") << ", "
            << w.raw_samples << " raw + " << w.rollup_buckets
            << " rollup buckets\n"
            << "    quartiles [" << fixed(m.quartiles.min / 1e6, 1) << " "
            << fixed(m.quartiles.q1 / 1e6, 1) << " "
            << fixed(m.quartiles.median / 1e6, 1) << " "
            << fixed(m.quartiles.q3 / 1e6, 1) << " "
            << fixed(m.quartiles.max / 1e6, 1) << "] Mb/s, mean "
            << fixed(m.mean / 1e6, 1) << ", accuracy "
            << fixed(m.accuracy, 2) << "\n";
}

}  // namespace

int main() {
  apps::CmuHarness harness;
  snmp::FaultInjector& fx = harness.fault_injector();
  fx.loss_burst({20.0, 35.0}, 0.30);
  fx.crash(snmp::agent_address("timberline"), {45.0, 60.0});
  harness.start(6.0);

  // Background traffic so the map has weather: two CBR streams crossing
  // the backbone plus one long bulk transfer.
  netsim::CbrTraffic cbr1(harness.sim(), "m-1", "m-8", mbps(30), 4.0);
  netsim::CbrTraffic cbr2(harness.sim(), "m-5", "m-2", mbps(15), 6.0);
  netsim::FlowOptions bulk;
  bulk.volume = 400e6;  // ~400 MB, keeps a flow alive most of the run
  harness.sim().start_flow("m-3", "m-6", bulk);

  service::QueryService::Options so;
  so.workers = 2;
  so.queue_capacity = 16;
  so.poll_interval = std::chrono::milliseconds(2);
  auto service = harness.serve(so);

  // Two light clients keep the service series populated for the run.
  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::string>& hosts = harness.hosts();
      std::size_t i = 0;
      while (service->model_now() < kEnd) {
        service::GraphQuery q;
        q.nodes = {hosts[i % hosts.size()],
                   hosts[(i + 3 + static_cast<std::size_t>(c)) %
                         hosts.size()]};
        q.timeframe = core::Timeframe::history(20.0);
        (void)service->get_graph(std::move(q));
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
    });
  }
  for (std::thread& t : clients) t.join();
  service->stop();

  const obs::TimeSeriesStore& store = harness.series();
  const Seconds end = service->model_now();

  std::cout << "remos weathermap -- simulated CMU testbed, model time 0.."
            << fixed(end, 0) << " s\n"
            << "faults: 30% loss burst @ [20,35)s, timberline crash @ "
               "[45,60)s\n"
            << "timeline: " << kCols << " columns, "
            << fixed(end / static_cast<double>(kCols), 1)
            << " s/col, utilization scaled to [0,100%]\n\n";

  // Per-link truth-vs-measured rows, busiest first; quiet links elided.
  std::cout << "link utilization (ground truth vs SNMP-measured):\n";
  std::size_t shown = 0, quiet = 0;
  for (const std::string& name : store.names()) {
    const std::string prefix = "sim.link.";
    if (name.rfind(prefix, 0) != 0) continue;
    const std::string key = name.substr(prefix.size());
    const obs::TimeSeries* truth = store.find(name);
    const obs::WindowStats w = truth->window(end, end);
    if (w.measurement.quartiles.max < 0.01) {
      ++quiet;
      continue;
    }
    print_link_row(key, *truth, find_measured(store, key), end);
    ++shown;
  }
  std::cout << "  (" << shown << " active directions shown, " << quiet
            << " quiet elided)\n\n";

  // Service-plane series.
  std::cout << "service plane:\n";
  if (const obs::TimeSeries* lat =
          store.find("service.latency_ms.answered")) {
    const std::vector<double> v =
        obs::resample_mean(lat->raw(end, end), 0, end, kCols);
    const obs::WindowStats w = lat->window(end, end);
    std::cout << "  latency ms (answered) |"
              << obs::sparkline(v, 0.0, std::max(1.0, finite_max(v)))
              << "| median " << fixed(w.measurement.quartiles.median, 2)
              << " ms over " << w.raw_samples << " raw + "
              << w.rollup_buckets << " buckets\n";
  }
  if (const obs::TimeSeries* shed = store.find("service.shed")) {
    const obs::WindowStats w = shed->window(end, end);
    std::cout << "  shed fraction " << fixed(w.measurement.mean, 3)
              << " of " << shed->total_samples() << " submits\n";
  }
  if (const obs::TimeSeries* stale = store.find("service.staleness")) {
    const obs::WindowStats w = stale->window(end, end);
    std::cout << "  snapshot staleness s: median "
              << fixed(w.measurement.quartiles.median, 2) << ", max "
              << fixed(w.measurement.quartiles.max, 2) << "\n";
  }
  std::cout << "\n";

  // Long-horizon reads against one busy link's LinkHistory: a window the
  // raw ring covers, and one far beyond every retained datum -- the
  // second reports its covered span and a coverage-discounted accuracy
  // instead of silently answering from the tail.
  const collector::ModelLink* busy = nullptr;
  for (const collector::ModelLink& l : harness.collector().model().links())
    if (!l.history.empty() &&
        (!busy || l.history.size() > busy->history.size()))
      busy = &l;
  if (busy) {
    std::cout << "long-horizon history reads, link " << busy->a << "~"
              << busy->b << " (a->b):\n";
    print_window("window 60 s ",
                 busy->history.used_windowed(end, 60.0, true));
    print_window("window 600 s",
                 busy->history.used_windowed(end, 600.0, true));
    std::cout << "  history memory: " << busy->history.memory_bytes()
              << " bytes (bounded: raw ring + sealed rollup rings)\n\n";
  }

  std::cout << "series store: " << store.size() << " series, "
            << store.memory_bytes() << " bytes retained\n\n";

  // Machine-readable blocks (CI parses each one).
  std::cout << "--- series csv ---\n";
  obs::dump_series_csv(store, std::cout);
  std::cout << "--- end series csv ---\n\n";

  std::cout << "--- metrics ---\n"
            << harness.metrics().render()
            << obs::render_series_exposition(store, end, end)
            << "--- end metrics ---\n\n";

  std::cout << "--- events jsonl ---\n"
            << harness.recorder().dump_jsonl() << "--- end events jsonl ---\n";

  // Self-check: the run must have populated every plane's series.
  const char* required[] = {"service.latency_ms.answered", "service.shed",
                            "service.staleness"};
  for (const char* name : required) {
    const obs::TimeSeries* ts = store.find(name);
    if (!ts || ts->empty()) {
      std::cerr << "weathermap: FAIL: series " << name << " is empty\n";
      return 1;
    }
  }
  std::size_t sim_pts = 0, coll_pts = 0;
  for (const std::string& name : store.names()) {
    const obs::TimeSeries* ts = store.find(name);
    if (name.rfind("sim.link.", 0) == 0) sim_pts += ts->total_samples();
    if (name.rfind("collector.link.", 0) == 0)
      coll_pts += ts->total_samples();
  }
  if (sim_pts == 0 || coll_pts == 0) {
    std::cerr << "weathermap: FAIL: link series empty (sim " << sim_pts
              << ", collector " << coll_pts << ")\n";
    return 1;
  }
  std::cout << "\nweathermap: OK (" << sim_pts << " ground-truth and "
            << coll_pts << " measured link samples retained)\n";
  return 0;
}
