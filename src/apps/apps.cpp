#include "apps/apps.hpp"

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace remos::apps {

fx::AppModel make_fft(std::size_t n, std::size_t chunks) {
  if (n < 2) throw InvalidArgument("make_fft: n too small");
  fx::AppModel app;
  app.name = "fft-" + std::to_string(n);
  app.iterations = 1;
  app.chunks = chunks;

  // Sequential compute time, power-law fitted to the paper's two sizes:
  // T_seq(512) = 0.84 s and T_seq(1024) = 4.92 s back out of Table 1's
  // two-node runs after subtracting transpose time.  The implied exponent
  // (~2.55, above N^2 log N's effective 2.15) reflects the 1998 Alphas
  // falling out of cache at 1K -- we reproduce the measured scaling, not
  // the idealized one.
  const double nn = static_cast<double>(n);
  const Seconds seq = 0.84 * std::pow(nn / 512.0, 2.55);

  // Transpose volume: the whole complex dataset (8 B/point).
  const Bytes dataset = nn * nn * 8.0;

  fx::ComputePhase rows;
  rows.parallel_seconds = seq / 2;
  fx::CommPhase transpose;
  transpose.pattern = fx::Pattern::kAllToAll;
  transpose.volume = dataset;
  fx::ComputePhase cols;
  cols.parallel_seconds = seq / 2;

  app.phases = {rows, transpose, cols};
  return app;
}

fx::AppModel make_airshed(std::size_t hours, std::size_t chunks) {
  if (hours == 0) throw InvalidArgument("make_airshed: zero iterations");
  fx::AppModel app;
  app.name = "airshed";
  app.iterations = hours;
  app.chunks = chunks;
  // Task-multiplexing cost, calibrated to Table 3's fixed/no-traffic row
  // (the 8-chunk build on 5 nodes ran ~862 s vs 650 s native; load
  // imbalance explains ~100 s, the rest is Fx running multiple logical
  // tasks per node).  Two compute phases per iteration share the charge.
  app.task_multiplex_overhead = 2.6;

  // Fitted to T(3 nodes) = 908 s, T(5 nodes) = 650 s on a dedicated
  // network: T = a/n + b with a = 1935 s, b = 263 s gives, per iteration
  // (24 of them): parallel = 80.6 s, serial + comm = 11 s.
  const double per_iter_parallel = 1935.0 / 24.0;  // seconds, sequential
  const double per_iter_serial = 8.2;              // non-parallelizable

  // Transport step: exchange boundary/advection data -- the dominant
  // communication (about 100 MB per simulated hour across the domain
  // decomposition).
  fx::CommPhase transport;
  transport.pattern = fx::Pattern::kAllToAll;
  transport.volume = 100e6;

  // Chemistry: embarrassingly parallel, most of the compute.
  fx::ComputePhase chemistry;
  chemistry.parallel_seconds = per_iter_parallel * 0.7;
  chemistry.serial_seconds = per_iter_serial * 0.5;

  // Meteorology update broadcast to all workers.
  fx::CommPhase met;
  met.pattern = fx::Pattern::kBroadcast;
  met.volume = 8e6;

  // Transport/diffusion compute.
  fx::ComputePhase transport_compute;
  transport_compute.parallel_seconds = per_iter_parallel * 0.3;
  transport_compute.serial_seconds = per_iter_serial * 0.5;

  // Concentration statistics gathered for output.
  fx::CommPhase stats;
  stats.pattern = fx::Pattern::kReduce;
  stats.volume = 4e6;

  app.phases = {met, chemistry, transport, transport_compute, stats};
  return app;
}

}  // namespace remos::apps
