// The applications of the paper's evaluation (§8), as AppModels.
//
// * FFT: a two-dimensional FFT "parallelized such that it consists of a
//   set of independent 1-D row FFTs, followed by a transpose, and a set
//   of independent 1-D column FFTs".  The transpose is an all-to-all of
//   the full N*N complex dataset.
// * Airshed: the CMU pollution model -- "a rich set of computation and
//   communication operations" simulating chemistry and transport.  We
//   model one outer iteration (a simulated time step) as transport
//   exchange (all-to-all), chemistry compute, field broadcast and a
//   statistics reduce, with a non-parallelizable serial fraction.
//
// Calibration: the compute constants are fitted to the paper's
// dedicated-network measurements (Table 1: FFT(512)/2n = 0.462 s,
// FFT(1K)/2n = 2.63 s, Airshed/3n = 908 s, Airshed/5n = 650 s) on the
// simulated testbed's reference CPU.  The *shapes* -- scaling with node
// count and sensitivity to link congestion -- then follow from the model
// rather than from further fitting.
#pragma once

#include <cstddef>

#include "fx/app_model.hpp"

namespace remos::apps {

/// 2-D FFT of an n x n complex grid (paper: n = 512 and 1024).
/// `chunks` pins the compile-time decomposition (0 = matches node count).
fx::AppModel make_fft(std::size_t n, std::size_t chunks = 0);

/// Airshed pollution model, `hours` outer iterations (default reproduces
/// the paper's run length).
fx::AppModel make_airshed(std::size_t hours = 24, std::size_t chunks = 0);

}  // namespace remos::apps
