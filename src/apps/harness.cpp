#include "apps/harness.hpp"

#include "util/error.hpp"

namespace remos::apps {

namespace {

snmp::Transport::Config transport_config(const CmuHarness::Options& o) {
  snmp::Transport::Config cfg;
  cfg.loss_probability = o.snmp_loss;
  cfg.seed = o.seed;
  return cfg;
}

}  // namespace

CmuHarness::CmuHarness(Options options)
    : poll_period_(options.poll_period),
      wire_obs_(options.wire_obs),
      sim_(netsim::make_cmu_testbed(options.link_rate)),
      transport_(transport_config(options)),
      injector_(options.seed ^ 0xFA017),
      collector_(transport_, netsim::CmuNames::routers(),
                 options.collector),
      modeler_(collector_) {
  // Management time is simulator time; fault windows, breaker cooldowns
  // and staleness ages all share one clock.
  transport_.set_clock([this] { return sim_.now(); });
  transport_.set_fault_injector(&injector_);
  // One agent per node; hosts optionally carry the host-resources group.
  for (const netsim::Node& node : sim_.topology().nodes()) {
    const bool is_host = node.kind == netsim::NodeKind::kCompute;
    if (is_host && !options.host_agents) continue;
    auto agent = std::make_unique<snmp::Agent>();
    snmp::HostStats* hs = nullptr;
    if (is_host) {
      stats_.push_back(std::make_unique<snmp::HostStats>());
      stat_names_.push_back(node.name);
      hs = stats_.back().get();
    }
    snmp::populate_node_mib(*agent, sim_, node.id, hs);
    agent->bind(transport_, snmp::agent_address(node.name));
    agents_.push_back(std::move(agent));
  }
  modeler_.set_clock([this] { return sim_.now(); });
  if (wire_obs_) {
    collector_.set_obs(obs_.view());
    modeler_obs_ = core::ModelerObs::resolve(obs_.view());
    modeler_.set_obs(&modeler_obs_);
    // Ground-truth link telemetry at the collector's polling cadence:
    // the weathermap compares these series against the measured
    // "collector.link.*" ones the SNMP path produces.
    sim_.enable_telemetry(obs_.series,
                          poll_period_ > 0 ? poll_period_ : 2.0);
  }
  if (options.poll_period > 0)
    collector_.start_polling(sim_, options.poll_period);
}

const std::vector<std::string>& CmuHarness::hosts() const {
  return netsim::CmuNames::hosts();
}

void CmuHarness::start(Seconds warmup) {
  collector_.discover();
  sim_.run_for(warmup);
}

std::unique_ptr<service::QueryService> CmuHarness::serve(
    service::QueryService::Options options) {
  if (poll_period_ <= 0)
    throw InvalidArgument("serve: harness built without periodic polling");
  auto svc = std::make_unique<service::QueryService>(options);
  service::QueryService* s = svc.get();
  if (wire_obs_) svc->set_obs(obs_.view());
  // Snapshot publication hook: after every timer-driven poll round the
  // collector's refreshed model is deep-copied into an immutable
  // versioned snapshot.  The hook runs on the poller thread (the only
  // thread driving the simulator once the service starts).
  collector_.set_poll_hook(
      [s](const collector::NetworkModel& m, Seconds now) {
        s->publish(m, now);
      });
  // Seed version 1 from the collector's current (warmed-up) model so the
  // first queries never race the first timer-driven poll.
  svc->publish(collector_.model(), sim_.now());
  // Each poll step advances the clock a quarter polling period, so the
  // service's model clock moves smoothly between the collector's
  // timer-driven polls and snapshot age reflects the position within the
  // polling interval (a query landing just before the next poll sees an
  // almost-period-old snapshot, exactly as a real deployment would).
  const Seconds step = poll_period_ / 4.0;
  svc->start([this, s, step] {
    sim_.run_for(step);
    s->note_model_now(sim_.now());
  });
  return svc;
}

snmp::HostStats& CmuHarness::host_stats(const std::string& host) {
  for (std::size_t i = 0; i < stat_names_.size(); ++i)
    if (stat_names_[i] == host) return *stats_[i];
  throw NotFoundError("CmuHarness: no host stats for " + host);
}

}  // namespace remos::apps
