#include "apps/harness.hpp"

#include "util/error.hpp"

namespace remos::apps {

namespace {

snmp::Transport::Config transport_config(const CmuHarness::Options& o) {
  snmp::Transport::Config cfg;
  cfg.loss_probability = o.snmp_loss;
  cfg.seed = o.seed;
  return cfg;
}

}  // namespace

CmuHarness::CmuHarness(Options options)
    : sim_(netsim::make_cmu_testbed(options.link_rate)),
      transport_(transport_config(options)),
      injector_(options.seed ^ 0xFA017),
      collector_(transport_, netsim::CmuNames::routers(),
                 options.collector),
      modeler_(collector_) {
  // Management time is simulator time; fault windows, breaker cooldowns
  // and staleness ages all share one clock.
  transport_.set_clock([this] { return sim_.now(); });
  transport_.set_fault_injector(&injector_);
  // One agent per node; hosts optionally carry the host-resources group.
  for (const netsim::Node& node : sim_.topology().nodes()) {
    const bool is_host = node.kind == netsim::NodeKind::kCompute;
    if (is_host && !options.host_agents) continue;
    auto agent = std::make_unique<snmp::Agent>();
    snmp::HostStats* hs = nullptr;
    if (is_host) {
      stats_.push_back(std::make_unique<snmp::HostStats>());
      stat_names_.push_back(node.name);
      hs = stats_.back().get();
    }
    snmp::populate_node_mib(*agent, sim_, node.id, hs);
    agent->bind(transport_, snmp::agent_address(node.name));
    agents_.push_back(std::move(agent));
  }
  modeler_.set_clock([this] { return sim_.now(); });
  if (options.poll_period > 0)
    collector_.start_polling(sim_, options.poll_period);
}

const std::vector<std::string>& CmuHarness::hosts() const {
  return netsim::CmuNames::hosts();
}

void CmuHarness::start(Seconds warmup) {
  collector_.discover();
  sim_.run_for(warmup);
}

snmp::HostStats& CmuHarness::host_stats(const std::string& host) {
  for (std::size_t i = 0; i < stat_names_.size(); ++i)
    if (stat_names_[i] == host) return *stats_[i];
  throw NotFoundError("CmuHarness: no host stats for " + host);
}

}  // namespace remos::apps
