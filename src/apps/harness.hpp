// Experiment harness: the full Remos deployment on the simulated CMU
// testbed, wired end-to-end exactly as Figure 2 prescribes --
//
//   Simulator (testbed) -> SNMP agents -> Transport -> SnmpCollector
//                                                   -> Modeler -> queries
//
// Nothing in the query path reads simulator state directly; everything
// flows through the encoded SNMP protocol, so experiments exercise the
// same machinery an application would.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "collector/snmp_collector.hpp"
#include "core/modeler.hpp"
#include "netsim/simulator.hpp"
#include "netsim/testbeds.hpp"
#include "obs/obs.hpp"
#include "service/query_service.hpp"
#include "snmp/agent.hpp"
#include "snmp/fault_injector.hpp"
#include "snmp/mib2.hpp"
#include "snmp/transport.hpp"

namespace remos::apps {

class CmuHarness {
 public:
  struct Options {
    /// Collector polling period; the paper's Collector polls router
    /// counters every few seconds.
    Seconds poll_period = 2.0;
    /// Datagram loss on the management network.
    double snmp_loss = 0.0;
    /// Run host agents (CPU/memory info) in addition to router agents.
    bool host_agents = true;
    BitsPerSec link_rate = mbps(100);
    std::uint64_t seed = 0x51D;
    /// Collector policy (retry budgets, circuit breaker, plausibility
    /// margins) -- chaos experiments tighten these.
    collector::SnmpCollector::Options collector;
    /// Wire the deployment-wide observability bundle (metrics registry +
    /// flight recorder) through every plane.  Off leaves every sink a
    /// no-op -- the baseline for overhead benchmarks.
    bool wire_obs = true;
  };

  explicit CmuHarness(Options options);
  CmuHarness() : CmuHarness(Options{}) {}

  netsim::Simulator& sim() { return sim_; }
  snmp::Transport& transport() { return transport_; }
  /// The attached fault injector (idle until faults are scripted).  Its
  /// windows run on the simulator clock, which the transport is wired to.
  snmp::FaultInjector& fault_injector() { return injector_; }
  collector::SnmpCollector& collector() { return collector_; }
  const core::Modeler& modeler() const { return modeler_; }
  core::Modeler& modeler() { return modeler_; }

  /// The deployment-wide observability bundle.  All planes record into
  /// it when Options::wire_obs (the default); metrics().render() yields
  /// the Prometheus-style exposition at any time.
  obs::Observability& observability() { return obs_; }
  obs::MetricsRegistry& metrics() { return obs_.metrics; }
  obs::FlightRecorder& recorder() { return obs_.recorder; }
  /// The telemetry history plane: ground-truth "sim.link.*", measured
  /// "collector.link.*" and "service.*" time series accumulate here when
  /// Options::wire_obs (dump via obs::dump_series_csv / the weathermap).
  obs::TimeSeriesStore& series() { return obs_.series; }

  /// Host names (m-1..m-8).
  const std::vector<std::string>& hosts() const;

  /// Discovers the topology, starts periodic polling and advances the
  /// clock through `warmup` seconds so histories have content.
  void start(Seconds warmup = 6.0);

  /// Builds and starts a concurrent query service over this deployment.
  /// The service's background poller thread advances the simulated clock
  /// by poll_period per step (firing the collector's timer-driven polls),
  /// and the collector's poll hook publishes an immutable snapshot after
  /// each poll round.  From the moment serve() returns, the simulator and
  /// collector belong to the poller thread: interact with the experiment
  /// through the returned service, and stop() it (or destroy it) before
  /// touching sim()/collector() directly again.  The harness must outlive
  /// the returned service.
  std::unique_ptr<service::QueryService> serve(
      service::QueryService::Options options =
          service::QueryService::Options{});

  /// Mutable host-side stats (index matches hosts()).
  snmp::HostStats& host_stats(const std::string& host);

 private:
  Seconds poll_period_;
  bool wire_obs_;
  // Declared before the components that hold handles into it, so the
  // registry cells outlive every handle.
  obs::Observability obs_;
  core::ModelerObs modeler_obs_;
  netsim::Simulator sim_;
  snmp::Transport transport_;
  snmp::FaultInjector injector_;
  std::vector<std::unique_ptr<snmp::Agent>> agents_;
  std::vector<std::unique_ptr<snmp::HostStats>> stats_;
  std::vector<std::string> stat_names_;
  collector::SnmpCollector collector_;
  core::Modeler modeler_;
};

}  // namespace remos::apps
