#include "cluster/clustering.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace remos::cluster {

NodeCosts cpu_costs(const core::NetworkGraph& graph, double weight) {
  NodeCosts costs;
  for (const auto& [name, node] : graph.nodes()) {
    if (node.is_compute && node.has_host_info)
      costs[name] = weight * node.cpu_load;
  }
  return costs;
}

namespace {
double node_cost(const NodeCosts& costs, const std::string& name) {
  const auto it = costs.find(name);
  return it == costs.end() ? 0.0 : it->second;
}
}  // namespace

double cluster_cost(const DistanceMatrix& distances,
                    const std::vector<std::string>& nodes,
                    const NodeCosts& node_costs) {
  double cost = 0;
  for (std::size_t i = 0; i < nodes.size(); ++i) {
    cost += node_cost(node_costs, nodes[i]);
    for (std::size_t j = i + 1; j < nodes.size(); ++j)
      cost += distances.at(nodes[i], nodes[j]);
  }
  return cost;
}

ClusterResult greedy_cluster(const DistanceMatrix& distances,
                             const std::string& start, std::size_t size,
                             const NodeCosts& node_costs) {
  if (size == 0) throw InvalidArgument("greedy_cluster: size 0");
  if (size > distances.size())
    throw InvalidArgument("greedy_cluster: size exceeds candidate pool");
  distances.index_of(start);  // validates membership

  ClusterResult result;
  result.nodes.push_back(start);
  std::vector<std::string> remaining;
  for (const std::string& n : distances.names())
    if (n != start) remaining.push_back(n);

  while (result.nodes.size() < size) {
    std::size_t best = remaining.size();
    double best_d = std::numeric_limits<double>::infinity();
    for (std::size_t c = 0; c < remaining.size(); ++c) {
      double d = node_cost(node_costs, remaining[c]);
      for (const std::string& member : result.nodes)
        d += distances.at(remaining[c], member);
      // Strictly-better wins; ties keep the earlier (lexicographically
      // smaller, since `remaining` is sorted) candidate.
      if (d < best_d - 1e-12) {
        best_d = d;
        best = c;
      }
    }
    if (best == remaining.size())
      throw Error("greedy_cluster: no reachable candidate");
    result.nodes.push_back(remaining[best]);
    remaining.erase(remaining.begin() + static_cast<long>(best));
  }
  result.cost = cluster_cost(distances, result.nodes, node_costs);
  return result;
}

ClusterResult best_cluster_exhaustive(const DistanceMatrix& distances,
                                      const std::string& start,
                                      std::size_t size,
                                      const NodeCosts& node_costs) {
  if (size == 0) throw InvalidArgument("best_cluster_exhaustive: size 0");
  if (size > distances.size())
    throw InvalidArgument("best_cluster_exhaustive: size exceeds pool");
  const std::size_t start_idx = distances.index_of(start);

  const std::size_t n = distances.size();
  ClusterResult best;
  best.cost = std::numeric_limits<double>::infinity();

  std::vector<std::size_t> pool;
  for (std::size_t i = 0; i < n; ++i)
    if (i != start_idx) pool.push_back(i);

  // Enumerate (size-1)-subsets of pool.
  std::vector<std::size_t> pick(size - 1);
  auto evaluate = [&] {
    std::vector<std::string> nodes{start};
    for (std::size_t i : pick) nodes.push_back(distances.names()[i]);
    const double cost = cluster_cost(distances, nodes, node_costs);
    if (cost < best.cost) {
      best.cost = cost;
      best.nodes = std::move(nodes);
    }
  };
  if (size == 1) {
    best.nodes = {start};
    best.cost = cluster_cost(distances, best.nodes, node_costs);
    return best;
  }
  // Standard combination enumeration over idx[0] < idx[1] < ... .
  const std::size_t m = size - 1;
  if (m > pool.size())
    throw InvalidArgument("best_cluster_exhaustive: size exceeds pool");
  std::vector<std::size_t> idx(m);
  for (std::size_t i = 0; i < m; ++i) idx[i] = i;
  while (true) {
    for (std::size_t i = 0; i < m; ++i) pick[i] = pool[idx[i]];
    evaluate();
    // Rightmost index that can still advance.
    std::size_t k = m;
    while (k > 0 && idx[k - 1] == pool.size() - m + (k - 1)) --k;
    if (k == 0) break;
    ++idx[k - 1];
    for (std::size_t j = k; j < m; ++j) idx[j] = idx[j - 1] + 1;
  }
  return best;
}

}  // namespace remos::cluster
