// Node-selection clustering (paper §7.2).
//
// "The application provides an initial start node, which is the first
// node added to the selected cluster.  Next, the node with the shortest
// distance to the existing nodes in the cluster is determined and added.
// The step is repeated until the cluster contains the number of nodes
// needed."  Distance-to-cluster is the sum of distances to current
// members (what an all-to-all application pays); ties break on node name
// so selection is deterministic.
//
// The optimal-cluster problem is NP-hard (k-clique-like), so the greedy
// heuristic is the production path; an exhaustive search is provided for
// small instances to measure the heuristic's gap in tests and benches.
#pragma once

#include <map>
#include <string>
#include <vector>

#include "cluster/distance.hpp"
#include "core/graph.hpp"

namespace remos::cluster {

/// EXTENSION (§7.2: "in general, tradeoffs between computation and
/// communication resources would have to be considered for clustering"):
/// a per-node cost added once for each selected member -- typically a
/// scaled CPU load, so a busy host must be meaningfully better connected
/// to be worth picking.  Nodes absent from the map cost 0.
using NodeCosts = std::map<std::string, double>;

/// Builds NodeCosts from a graph's host info: weight * cpu_load for every
/// compute node that reported it.  A weight of ~1.0 makes a fully loaded
/// host as repellent as a congested 100 Mbps path is long.
NodeCosts cpu_costs(const core::NetworkGraph& graph, double weight);

struct ClusterResult {
  /// Selected nodes, in selection order (start node first).
  std::vector<std::string> nodes;
  /// Total pairwise distance within the cluster (lower is better); the
  /// "measure of expected communication performance" of §7.3.
  double cost = 0;
};

/// Total pairwise distance of a node set, plus each member's node cost.
double cluster_cost(const DistanceMatrix& distances,
                    const std::vector<std::string>& nodes,
                    const NodeCosts& node_costs = {});

/// Greedy growth from `start` to `size` members.
ClusterResult greedy_cluster(const DistanceMatrix& distances,
                             const std::string& start, std::size_t size,
                             const NodeCosts& node_costs = {});

/// Exhaustive minimum-cost cluster containing `start` (small n only;
/// cost is C(n-1, size-1) subsets).
ClusterResult best_cluster_exhaustive(const DistanceMatrix& distances,
                                      const std::string& start,
                                      std::size_t size,
                                      const NodeCosts& node_costs = {});

}  // namespace remos::cluster
