#include "cluster/distance.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace remos::cluster {

DistanceMatrix::DistanceMatrix(const core::NetworkGraph& graph,
                               std::vector<std::string> nodes,
                               DistanceOptions options)
    : names_(std::move(nodes)) {
  if (names_.empty()) throw InvalidArgument("DistanceMatrix: no nodes");
  std::sort(names_.begin(), names_.end());
  if (std::adjacent_find(names_.begin(), names_.end()) != names_.end())
    throw InvalidArgument("DistanceMatrix: duplicate node");
  for (const std::string& n : names_) {
    if (!graph.node(n).is_compute)
      throw InvalidArgument("DistanceMatrix: " + n + " is not a compute node");
  }

  const std::size_t n = names_.size();
  distance_.assign(n * n, 0.0);
  // One shortest-path tree per node (n Dijkstras), then O(path) work per
  // pair -- the whole point of deriving distances from a topology query.
  std::vector<core::RouteTree> trees;
  trees.reserve(n);
  for (const std::string& name : names_) trees.push_back(graph.routes_from(name));

  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      // Distance is symmetric-ified: the worse of the two directions
      // (synchronous phases wait for the slowest direction anyway).
      double d = 0;
      const auto fwd_path = trees[i].path_to(names_[j]);
      const auto rev_path = trees[j].path_to(names_[i]);
      const BitsPerSec fwd =
          fwd_path ? graph.bottleneck_available_on(*fwd_path) : 0;
      const BitsPerSec rev =
          rev_path ? graph.bottleneck_available_on(*rev_path) : 0;
      const BitsPerSec bw = std::min(fwd, rev);
      if (bw <= 0) {
        d = std::numeric_limits<double>::infinity();
      } else {
        d = options.bandwidth_weight * (1e8 / bw);
        if (options.latency_weight > 0)
          d += options.latency_weight * graph.path_latency_on(*fwd_path);
      }
      distance_[i * n + j] = d;
      distance_[j * n + i] = d;
    }
  }
}

double DistanceMatrix::at(std::size_t i, std::size_t j) const {
  if (i >= names_.size() || j >= names_.size())
    throw InvalidArgument("DistanceMatrix::at: index out of range");
  return distance_[i * names_.size() + j];
}

double DistanceMatrix::at(const std::string& a, const std::string& b) const {
  return at(index_of(a), index_of(b));
}

std::size_t DistanceMatrix::index_of(const std::string& name) const {
  const auto it = std::lower_bound(names_.begin(), names_.end(), name);
  if (it == names_.end() || *it != name)
    throw NotFoundError("DistanceMatrix: unknown node " + name);
  return static_cast<std::size_t>(it - names_.begin());
}

std::string DistanceMatrix::to_string() const {
  std::ostringstream os;
  os << pad_right("", 8);
  for (const std::string& n : names_) os << pad_left(n, 8);
  os << "\n";
  for (std::size_t i = 0; i < names_.size(); ++i) {
    os << pad_right(names_[i], 8);
    for (std::size_t j = 0; j < names_.size(); ++j)
      os << pad_left(fixed(at(i, j), 2), 8);
    os << "\n";
  }
  return os.str();
}

}  // namespace remos::cluster
