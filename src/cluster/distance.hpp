// Pairwise communication-distance matrix over a logical topology.
//
// "The logical topology graph is used to compute a matrix representing
// distance between all pairs of nodes" (paper §7.3).  Computing distances
// from one remos_get_graph call is the whole point: O(nodes^2) flow
// queries would cost far more (the ablation bench quantifies this).
//
// Distance combines the route's bottleneck *available* bandwidth and its
// latency.  On the CMU testbed "distance is based only on bandwidth since
// latency between any pair of nodes is virtually the same", which the
// default weights reflect.
#pragma once

#include <string>
#include <vector>

#include "core/graph.hpp"

namespace remos::cluster {

struct DistanceOptions {
  /// Scale such that a clean 100 Mbps path has bandwidth term 1.0.
  double bandwidth_weight = 1.0;
  /// Seconds-to-distance factor for the latency term.  The default keeps
  /// bandwidth dominant (1 ms adds just 0.01) but breaks the exact ties a
  /// deterministic simulator produces between equal-bandwidth paths in
  /// favor of fewer hops -- the role measurement noise plays on a real
  /// testbed.  Set to 0 for the paper's pure-bandwidth distance.
  double latency_weight = 10.0;
};

class DistanceMatrix {
 public:
  /// Distances between the given compute nodes on `graph`.  Unreachable
  /// pairs get +inf.
  DistanceMatrix(const core::NetworkGraph& graph,
                 std::vector<std::string> nodes, DistanceOptions options);
  DistanceMatrix(const core::NetworkGraph& graph,
                 std::vector<std::string> nodes)
      : DistanceMatrix(graph, std::move(nodes), DistanceOptions{}) {}

  const std::vector<std::string>& names() const { return names_; }
  std::size_t size() const { return names_.size(); }

  double at(std::size_t i, std::size_t j) const;
  double at(const std::string& a, const std::string& b) const;
  std::size_t index_of(const std::string& name) const;

  std::string to_string() const;

 private:
  std::vector<std::string> names_;
  std::vector<double> distance_;  // row-major size*size
};

}  // namespace remos::cluster
