#include "collector/benchmark_collector.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace remos::collector {

BenchmarkCollector::BenchmarkCollector(netsim::Simulator& sim,
                                       std::vector<std::string> hosts,
                                       Options options)
    : sim_(&sim), hosts_(std::move(hosts)), options_(options),
      rng_(options.seed) {
  if (hosts_.size() < 2)
    throw InvalidArgument("BenchmarkCollector: need at least two hosts");
  if (options_.probe_bytes <= 0)
    throw InvalidArgument("BenchmarkCollector: probe_bytes <= 0");
  std::sort(hosts_.begin(), hosts_.end());
}

void BenchmarkCollector::discover() {
  for (const std::string& h : hosts_) {
    sim_->topology().id_of(h);  // validates the host exists
    model_.upsert_node(h, /*is_router=*/false);
  }
  for (std::size_t i = 0; i < hosts_.size(); ++i)
    for (std::size_t j = i + 1; j < hosts_.size(); ++j)
      model_.upsert_link(hosts_[i], hosts_[j], /*capacity=*/0,
                         /*latency=*/0);
}

void BenchmarkCollector::poll() {
  const Seconds round_start = sim_->now();
  for (std::size_t i = 0; i < hosts_.size(); ++i) {
    for (std::size_t j = i + 1; j < hosts_.size(); ++j) {
      const netsim::NodeId src = sim_->topology().id_of(hosts_[i]);
      const netsim::NodeId dst = sim_->topology().id_of(hosts_[j]);

      // Latency probe: a tiny echo; modeled as the true one-way path
      // latency observed with measurement jitter.
      const Seconds lat =
          sim_->routing().path_latency(src, dst) *
          std::max(0.1, rng_.normal(1.0, options_.latency_jitter));

      // Bulk probe in each direction: a real greedy flow competing with
      // whatever else is on the path.
      auto probe = [&](netsim::NodeId from, netsim::NodeId to) {
        netsim::FlowOptions opts;
        opts.volume = options_.probe_bytes;
        opts.tag = options_.probe_tag;
        const Seconds t0 = sim_->now();
        const netsim::FlowId id = sim_->start_flow(from, to, opts);
        sim_->run_until_flows_done({id});
        const Seconds elapsed = sim_->now() - t0;
        return options_.probe_bytes * 8.0 / std::max(elapsed, 1e-9);
      };
      const BitsPerSec fwd = probe(src, dst);
      const BitsPerSec rev = probe(dst, src);

      bool flipped = false;
      ModelLink* link = model_.find_link(hosts_[i], hosts_[j], &flipped);
      if (!link) throw Error("BenchmarkCollector: poll before discover");
      // Capacity estimate = best throughput ever seen on the pair.
      link->capacity = std::max({link->capacity, fwd, rev});
      link->latency = link->latency <= 0 ? lat : 0.7 * link->latency + 0.3 * lat;
      Sample s;
      s.at = sim_->now();
      const BitsPerSec used_fwd = std::max(0.0, link->capacity - fwd);
      const BitsPerSec used_rev = std::max(0.0, link->capacity - rev);
      s.used_ab = flipped ? used_rev : used_fwd;
      s.used_ba = flipped ? used_fwd : used_rev;
      link->history.record(s);
    }
  }
  last_poll_duration_ = sim_->now() - round_start;
}

}  // namespace remos::collector
