// Active-probing collector (the paper's fallback "Collector that uses
// benchmarks to probe networks that do not respond to our SNMP queries",
// e.g. commercial WAN clouds).
//
// The collector is given a set of endpoint host names.  It cannot see
// inside the network, so its model is a *logical* one: each host pair is
// represented by a single end-to-end link whose characteristics come from
// measurements (the paper's Internet-as-a-single-link abstraction):
//   - latency: a small echo probe, measured as the path round-trip and
//     halved, with measurement jitter;
//   - bandwidth: a short bulk transfer (greedy flow of `probe_bytes`),
//     timed to completion -- the achieved rate is recorded as a *used +
//     available* sample, i.e. what a new flow could get right now.
// Active probing perturbs the network (the probe competes with real
// traffic for its duration); keeping probes small bounds that cost, and
// the ablation bench quantifies it.
#pragma once

#include <string>
#include <vector>

#include "collector/collector.hpp"
#include "util/rng.hpp"

namespace remos::collector {

class BenchmarkCollector : public Collector {
 public:
  struct Options {
    Bytes probe_bytes = 256 * 1024;  // bulk-probe size
    double latency_jitter = 0.05;    // relative sigma on latency probes
    std::uint64_t seed = 0xBEEF;
    std::string probe_tag = "remos-probe";
  };

  /// Probes run as real flows on `sim` between the named hosts.
  BenchmarkCollector(netsim::Simulator& sim, std::vector<std::string> hosts,
                     Options options);
  BenchmarkCollector(netsim::Simulator& sim, std::vector<std::string> hosts)
      : BenchmarkCollector(sim, std::move(hosts), Options{}) {}

  /// Builds the logical clique: one end-to-end logical link per host
  /// pair, characterized by poll().  Link capacity is estimated as the
  /// best throughput ever observed; "used" bandwidth in a sample is the
  /// estimated capacity minus what the probe achieved, so the Modeler's
  /// available-bandwidth arithmetic works identically for both collectors.
  void discover() override;

  /// One probe round: for every host pair, a latency estimate and a bulk
  /// throughput probe; samples land on the pair's logical link.
  void poll() override;

  /// Seconds of simulated time consumed by the last poll round (probing
  /// is not free; this is the perturbation-cost metric).
  Seconds last_poll_duration() const { return last_poll_duration_; }

 private:
  netsim::Simulator* sim_;
  std::vector<std::string> hosts_;
  Options options_;
  Rng rng_;
  Seconds last_poll_duration_ = 0;
};

}  // namespace remos::collector
