#include "collector/collector.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace remos::collector {

Collector::~Collector() = default;

Seconds Collector::freshest_sample() const {
  Seconds newest = -std::numeric_limits<Seconds>::infinity();
  for (const ModelLink& l : model_.links()) {
    newest = std::max(newest, l.last_update);
    if (!l.history.empty()) newest = std::max(newest, l.history.latest().at);
  }
  return newest;
}

void Collector::start_polling(netsim::Simulator& sim, Seconds period) {
  if (period <= 0) throw InvalidArgument("start_polling: period <= 0");
  if (polling_) throw Error("start_polling: already polling");
  polling_ = true;
  arm(sim, period);
}

void Collector::stop_polling() {
  polling_ = false;
  ++epoch_;
}

void Collector::arm(netsim::Simulator& sim, Seconds period) {
  const std::uint64_t epoch = epoch_;
  sim.schedule_in(period, [this, &sim, period, epoch] {
    if (epoch != epoch_ || !polling_) return;
    poll();
    ++polls_completed_;
    if (poll_hook_) poll_hook_(model_, sim.now());
    arm(sim, period);
  });
}

}  // namespace remos::collector
