// Collector interface (paper §5, Figure 2).
//
// A Collector retrieves raw information about the network and maintains a
// NetworkModel.  Two implementations exist, matching the paper's:
// SnmpCollector extracts static topology and dynamic bandwidth from router
// agents via SNMP; BenchmarkCollector probes networks that do not answer
// SNMP with active measurements.  Collectors are periodic: discover()
// once, then poll() on an interval (driven by simulator timers via
// start_polling, or manually from tests).
#pragma once

#include <functional>

#include "collector/network_model.hpp"
#include "netsim/simulator.hpp"

namespace remos::collector {

class Collector {
 public:
  /// Snapshot-publication hook: called after every timer-driven poll
  /// (start_polling) with the refreshed model and the simulator clock.
  /// The service layer uses this to publish an immutable snapshot per
  /// poll round; the hook runs on whatever thread drives the simulator.
  using PollHook =
      std::function<void(const NetworkModel& model, Seconds now)>;

  virtual ~Collector();

  Collector(const Collector&) = delete;
  Collector& operator=(const Collector&) = delete;

  /// Builds/refreshes the static topology in the model.
  virtual void discover() = 0;

  /// Takes one round of dynamic measurements.
  virtual void poll() = 0;

  /// False when the collector knows it is substantially degraded (e.g.
  /// some of its agents are unreachable).  CollectorSet::merged() lets
  /// healthy collectors' views dominate degraded ones'.
  virtual bool healthy() const { return true; }

  /// Timestamp of the newest link confirmation this collector holds
  /// (-infinity when it has none): the freshness key for merging.
  virtual Seconds freshest_sample() const;

  const NetworkModel& model() const { return model_; }
  NetworkModel& model() { return model_; }

  /// Polls every `period` seconds on the simulator's clock, starting one
  /// period from now.  The collector must outlive the polling (or call
  /// stop_polling()).
  void start_polling(netsim::Simulator& sim, Seconds period);
  void stop_polling();
  bool polling() const { return polling_; }
  std::size_t polls_completed() const { return polls_completed_; }

  /// Installs (or clears, with nullptr) the per-poll publication hook.
  void set_poll_hook(PollHook hook) { poll_hook_ = std::move(hook); }

 protected:
  Collector() = default;

  NetworkModel model_;

 private:
  void arm(netsim::Simulator& sim, Seconds period);

  bool polling_ = false;
  std::uint64_t epoch_ = 0;  // invalidates armed timers after stop
  std::size_t polls_completed_ = 0;
  PollHook poll_hook_;
};

}  // namespace remos::collector
