#include "collector/collector_set.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace remos::collector {

void CollectorSet::add(Collector& collector) {
  for (const Collector* c : collectors_)
    if (c == &collector)
      throw InvalidArgument("CollectorSet: collector already added");
  collectors_.push_back(&collector);
}

void CollectorSet::discover_all() {
  for (Collector* c : collectors_) c->discover();
}

void CollectorSet::poll_all() {
  for (Collector* c : collectors_) {
    try {
      c->poll();
    } catch (const Error&) {
      // A degraded collector keeps its prior model; the merged view
      // simply prefers its healthier peers until it recovers.
      ++poll_errors_;
    }
  }
  if (publish_hook_) publish_hook_(merged());
}

NetworkModel CollectorSet::merged() const {
  // merge_from lets the later model win scalar state (link up/down, host
  // load), so merge in ascending preference: unhealthy before healthy,
  // stale before fresh, registration order breaking ties.
  std::vector<const Collector*> order(collectors_.begin(),
                                      collectors_.end());
  std::stable_sort(order.begin(), order.end(),
                   [](const Collector* x, const Collector* y) {
                     if (x->healthy() != y->healthy()) return y->healthy();
                     return x->freshest_sample() < y->freshest_sample();
                   });
  NetworkModel out;
  for (const Collector* c : order) out.merge_from(c->model());
  return out;
}

}  // namespace remos::collector
