#include "collector/collector_set.hpp"

#include "util/error.hpp"

namespace remos::collector {

void CollectorSet::add(Collector& collector) {
  for (const Collector* c : collectors_)
    if (c == &collector)
      throw InvalidArgument("CollectorSet: collector already added");
  collectors_.push_back(&collector);
}

void CollectorSet::discover_all() {
  for (Collector* c : collectors_) c->discover();
}

void CollectorSet::poll_all() {
  for (Collector* c : collectors_) c->poll();
}

NetworkModel CollectorSet::merged() const {
  NetworkModel out;
  for (const Collector* c : collectors_) out.merge_from(c->model());
  return out;
}

}  // namespace remos::collector
