#include "collector/collector_set.hpp"

#include <algorithm>
#include <chrono>

#include "util/error.hpp"

namespace remos::collector {

void CollectorSet::set_obs(const obs::Obs& o) {
  if (o.metrics) {
    rounds_counter_ =
        o.metrics->counter("remos_collectorset_poll_rounds_total", {},
                           "Cooperating-collector poll rounds completed");
    round_errors_counter_ = o.metrics->counter(
        "remos_collectorset_poll_errors_total", {},
        "Collectors skipped in a round because poll() threw");
    merge_duration_ = o.metrics->histogram(
        "remos_collectorset_merge_duration_seconds",
        obs::default_time_buckets(), {},
        "Wall-clock duration of one merged-view rebuild");
  }
  recorder_ = o.recorder;
}

void CollectorSet::add(Collector& collector) {
  for (const Collector* c : collectors_)
    if (c == &collector)
      throw InvalidArgument("CollectorSet: collector already added");
  collectors_.push_back(&collector);
}

void CollectorSet::discover_all() {
  for (Collector* c : collectors_) c->discover();
}

void CollectorSet::poll_all() {
  for (Collector* c : collectors_) {
    try {
      c->poll();
    } catch (const Error& e) {
      // A degraded collector keeps its prior model; the merged view
      // simply prefers its healthier peers until it recovers.
      ++poll_errors_;
      round_errors_counter_.inc();
      if (recorder_)
        recorder_->record(obs::EventSeverity::kWarn, "collector",
                          "poll_skipped", e.what());
    }
  }
  rounds_counter_.inc();
  if (publish_hook_) {
    const auto t0 = std::chrono::steady_clock::now();
    NetworkModel view = merged();
    merge_duration_.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
            .count());
    publish_hook_(std::move(view));
  }
}

NetworkModel CollectorSet::merged() const {
  // merge_from lets the later model win scalar state (link up/down, host
  // load), so merge in ascending preference: unhealthy before healthy,
  // stale before fresh, registration order breaking ties.
  std::vector<const Collector*> order(collectors_.begin(),
                                      collectors_.end());
  std::stable_sort(order.begin(), order.end(),
                   [](const Collector* x, const Collector* y) {
                     if (x->healthy() != y->healthy()) return y->healthy();
                     return x->freshest_sample() < y->freshest_sample();
                   });
  NetworkModel out;
  for (const Collector* c : order) out.merge_from(c->model());
  return out;
}

}  // namespace remos::collector
