// Cooperating collectors ("a large environment may require multiple
// cooperating Collectors", paper §5).
//
// A CollectorSet owns no collector; it references several and exposes a
// merged NetworkModel.  Typical use: one SnmpCollector per management
// domain plus a BenchmarkCollector spanning the WAN cloud between them.
#pragma once

#include <vector>

#include "collector/collector.hpp"

namespace remos::collector {

class CollectorSet {
 public:
  CollectorSet() = default;

  /// Registers a collector; it must outlive the set.
  void add(Collector& collector);

  std::size_t size() const { return collectors_.size(); }

  /// Runs discovery on all collectors.
  void discover_all();

  /// Runs one poll round on all collectors.
  void poll_all();

  /// Merged view across all collectors (rebuilt on each call).
  NetworkModel merged() const;

 private:
  std::vector<Collector*> collectors_;
};

}  // namespace remos::collector
