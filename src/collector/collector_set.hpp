// Cooperating collectors ("a large environment may require multiple
// cooperating Collectors", paper §5).
//
// A CollectorSet owns no collector; it references several and exposes a
// merged NetworkModel.  Typical use: one SnmpCollector per management
// domain plus a BenchmarkCollector spanning the WAN cloud between them.
#pragma once

#include <functional>
#include <vector>

#include "collector/collector.hpp"
#include "obs/obs.hpp"

namespace remos::collector {

class CollectorSet {
 public:
  /// Snapshot-publication hook: called at the end of every poll_all()
  /// round with the freshly merged view (see Collector::PollHook for the
  /// single-collector equivalent).  The merged model passed in is a
  /// value the hook may move into an immutable snapshot.
  using PublishHook = std::function<void(NetworkModel merged)>;

  CollectorSet() = default;

  /// Registers a collector; it must outlive the set.
  void add(Collector& collector);

  std::size_t size() const { return collectors_.size(); }

  /// Runs discovery on all collectors.
  void discover_all();

  /// Runs one poll round on all collectors.  A collector that throws is
  /// skipped (its model keeps prior state); the round always completes.
  void poll_all();

  /// Poll rounds in which some collector threw.
  std::size_t poll_errors() const { return poll_errors_; }

  /// Wires round counters and skipped-collector events into the set
  /// (individual collectors are wired separately via their own set_obs).
  void set_obs(const obs::Obs& o);

  /// Installs (or clears, with nullptr) the per-round publication hook.
  void set_publish_hook(PublishHook hook) { publish_hook_ = std::move(hook); }

  /// Merged view across all collectors (rebuilt on each call).  Where
  /// collectors disagree on scalar state, healthy collectors override
  /// degraded ones and fresher data overrides staler.
  NetworkModel merged() const;

 private:
  std::vector<Collector*> collectors_;
  std::size_t poll_errors_ = 0;
  PublishHook publish_hook_;
  obs::Counter rounds_counter_;
  obs::Counter round_errors_counter_;
  obs::Histogram merge_duration_;
  obs::FlightRecorder* recorder_ = nullptr;
};

}  // namespace remos::collector
