#include "collector/network_model.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace remos::collector {

std::vector<double> LinkHistory::used_in_window(Seconds now, Seconds window,
                                                bool ab) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    if (window > 0 && s.at <= now - window) continue;
    if (s.at > now) continue;
    out.push_back(ab ? s.used_ab : s.used_ba);
  }
  return out;
}

obs::WindowStats LinkHistory::used_windowed(Seconds now, Seconds window,
                                            bool ab) const {
  Seconds raw_oldest = std::numeric_limits<Seconds>::infinity();
  if (!samples_.empty()) raw_oldest = samples_.front().at;
  return rollups(ab).stitched(now, window, used_in_window(now, window, ab),
                              raw_oldest);
}

Measurement LinkHistory::used_measurement(Seconds now, Seconds window,
                                          bool ab) const {
  return used_windowed(now, window, ab).measurement;
}

std::size_t LinkHistory::memory_bytes() const {
  return samples_.size() * sizeof(Sample) + rollup_ab_.memory_bytes() +
         rollup_ba_.memory_bytes();
}

ModelNode& NetworkModel::upsert_node(const std::string& name,
                                     bool is_router) {
  auto [it, inserted] = nodes_.try_emplace(name);
  if (inserted) {
    it->second.name = name;
    it->second.is_router = is_router;
  } else if (is_router) {
    it->second.is_router = true;  // router knowledge dominates
  }
  return it->second;
}

ModelLink& NetworkModel::upsert_link(const std::string& a,
                                     const std::string& b,
                                     BitsPerSec capacity, Seconds latency) {
  if (a == b) throw InvalidArgument("upsert_link: self-loop " + a);
  if (!has_node(a) || !has_node(b))
    throw InvalidArgument("upsert_link: unknown endpoint");
  bool flipped = false;
  if (ModelLink* existing = find_link(a, b, &flipped)) return *existing;
  links_.push_back(ModelLink{a, b, capacity, latency, true,
                             SharingPolicy::kUnknown, -1, LinkHistory{}});
  link_index_[{a, b}] = links_.size() - 1;
  return links_.back();
}

bool NetworkModel::has_node(const std::string& name) const {
  return nodes_.contains(name);
}

const ModelNode& NetworkModel::node(const std::string& name) const {
  const auto it = nodes_.find(name);
  if (it == nodes_.end())
    throw NotFoundError("NetworkModel: unknown node " + name);
  return it->second;
}

ModelNode& NetworkModel::node(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end())
    throw NotFoundError("NetworkModel: unknown node " + name);
  return it->second;
}

const ModelLink* NetworkModel::find_link(const std::string& a,
                                         const std::string& b,
                                         bool* flipped) const {
  if (auto it = link_index_.find({a, b}); it != link_index_.end()) {
    if (flipped) *flipped = false;
    return &links_[it->second];
  }
  if (auto it = link_index_.find({b, a}); it != link_index_.end()) {
    if (flipped) *flipped = true;
    return &links_[it->second];
  }
  return nullptr;
}

ModelLink* NetworkModel::find_link(const std::string& a, const std::string& b,
                                   bool* flipped) {
  return const_cast<ModelLink*>(
      std::as_const(*this).find_link(a, b, flipped));
}

std::vector<std::string> NetworkModel::neighbors(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const ModelLink& l : links_) {
    if (l.a == name) out.push_back(l.b);
    if (l.b == name) out.push_back(l.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool NetworkModel::remove_link(const std::string& a, const std::string& b) {
  bool flipped = false;
  const ModelLink* found = find_link(a, b, &flipped);
  if (!found) return false;
  const std::pair<std::string, std::string> key =
      flipped ? std::make_pair(b, a) : std::make_pair(a, b);
  const std::size_t at = link_index_.at(key);
  links_.erase(links_.begin() + static_cast<std::ptrdiff_t>(at));
  link_index_.erase(key);
  // Indices past the erased slot shifted down by one.
  for (auto& [names, index] : link_index_)
    if (index > at) --index;
  return true;
}

bool NetworkModel::remove_node(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end()) return false;
  for (std::size_t i = links_.size(); i-- > 0;)
    if (links_[i].a == name || links_[i].b == name)
      remove_link(links_[i].a, links_[i].b);
  nodes_.erase(it);
  return true;
}

std::int32_t RoutingIndex::id_of(const std::string& name) const {
  const auto it = ids_.find(name);
  return it == ids_.end() ? kNoNode : it->second;
}

void RoutingIndex::build(const NetworkModel& model) {
  names_.reserve(model.nodes().size());
  for (const auto& [name, node] : model.nodes()) {
    ids_.emplace(name, static_cast<std::int32_t>(names_.size()));
    names_.push_back(name);
    is_router_.push_back(node.is_router ? 1 : 0);
  }
  const std::size_t n = names_.size();
  rows_.resize(n);

  // CSR adjacency over up links: count degrees, place, then sort each
  // node's slice by neighbor id so BFS expansion follows name order.
  std::vector<std::uint32_t> degree(n, 0);
  const auto& links = model.links();
  for (const ModelLink& l : links) {
    if (!l.up) continue;
    ++degree[static_cast<std::size_t>(ids_.at(l.a))];
    ++degree[static_cast<std::size_t>(ids_.at(l.b))];
  }
  adj_offset_.assign(n + 1, 0);
  for (std::size_t i = 0; i < n; ++i)
    adj_offset_[i + 1] = adj_offset_[i] + degree[i];
  adj_.resize(adj_offset_[n]);
  std::vector<std::uint32_t> cursor(adj_offset_.begin(),
                                    adj_offset_.end() - 1);
  for (std::size_t li = 0; li < links.size(); ++li) {
    const ModelLink& l = links[li];
    if (!l.up) continue;
    const auto ia = ids_.at(l.a);
    const auto ib = ids_.at(l.b);
    adj_[cursor[static_cast<std::size_t>(ia)]++] =
        Hop{ib, static_cast<std::uint32_t>(li)};
    adj_[cursor[static_cast<std::size_t>(ib)]++] =
        Hop{ia, static_cast<std::uint32_t>(li)};
  }
  for (std::size_t i = 0; i < n; ++i)
    std::sort(adj_.begin() + adj_offset_[i], adj_.begin() + adj_offset_[i + 1],
              [](const Hop& x, const Hop& y) { return x.neighbor < y.neighbor; });
}

const RoutingIndex::Row& RoutingIndex::row_from(std::int32_t src) const {
  if (src < 0 || static_cast<std::size_t>(src) >= names_.size())
    throw InvalidArgument("RoutingIndex: node id out of range");
  const auto s = static_cast<std::size_t>(src);
  lock();
  if (rows_[s]) {
    const Row& ready = *rows_[s];
    unlock();
    return ready;
  }
  unlock();

  // Build outside the lock (BFS can be slow on big graphs); losing a
  // race just wastes one redundant build.
  auto row = std::make_unique<Row>();
  const std::size_t n = names_.size();
  row->parent.assign(n, kNoNode);
  row->via_link.assign(n, 0);
  row->parent[s] = src;
  std::vector<std::int32_t> frontier;
  frontier.reserve(n);
  frontier.push_back(src);
  for (std::size_t head = 0; head < frontier.size(); ++head) {
    const std::int32_t cur = frontier[head];
    const auto c = static_cast<std::size_t>(cur);
    if (cur != src && !is_router_[c]) continue;  // hosts do not forward
    for (std::uint32_t k = adj_offset_[c]; k < adj_offset_[c + 1]; ++k) {
      const Hop& hop = adj_[k];
      const auto v = static_cast<std::size_t>(hop.neighbor);
      if (row->parent[v] != kNoNode) continue;
      row->parent[v] = cur;
      row->via_link[v] = hop.link;
      frontier.push_back(hop.neighbor);
    }
  }

  lock();
  if (!rows_[s]) rows_[s] = std::move(row);
  const Row& ready = *rows_[s];
  unlock();
  return ready;
}

const RoutingIndex& NetworkModel::routing_index() const {
  // FNV-style structural fingerprint: node names/roles, link endpoints
  // and up flags.  Order-sensitive, so any structural change moves it.
  std::uint64_t fp = 0xcbf29ce484222325ULL;
  auto mix = [&fp](std::uint64_t v) {
    fp ^= v;
    fp *= 0x100000001b3ULL;
  };
  auto mix_str = [&](const std::string& sv) {
    mix(sv.size());
    for (const char ch : sv) mix(static_cast<unsigned char>(ch));
  };
  mix(nodes_.size());
  for (const auto& [name, node] : nodes_) {
    mix_str(name);
    mix(node.is_router ? 2u : 3u);
  }
  mix(links_.size());
  for (const ModelLink& l : links_) {
    mix_str(l.a);
    mix_str(l.b);
    mix(l.up ? 5u : 7u);
  }

  routing_cache_.lock();
  if (!routing_cache_.index || routing_cache_.fingerprint != fp) {
    auto index = std::make_shared<RoutingIndex>();
    index->build(*this);
    routing_cache_.index = std::move(index);
    routing_cache_.fingerprint = fp;
  }
  const RoutingIndex& ref = *routing_cache_.index;
  routing_cache_.unlock();
  return ref;
}

void NetworkModel::merge_from(const NetworkModel& other) {
  for (const auto& [name, n] : other.nodes()) {
    ModelNode& mine = upsert_node(name, n.is_router);
    if (n.internal_bw > 0) mine.internal_bw = n.internal_bw;
    if (n.has_host_info) {
      mine.has_host_info = true;
      mine.cpu_load = n.cpu_load;
      mine.memory_mb = n.memory_mb;
    }
  }
  for (const ModelLink& l : other.links()) {
    bool flipped = false;
    ModelLink* mine = find_link(l.a, l.b, &flipped);
    if (!mine) {
      mine = &upsert_link(l.a, l.b, l.capacity, l.latency);
      flipped = false;
    }
    mine->up = l.up;
    if (l.sharing != SharingPolicy::kUnknown) mine->sharing = l.sharing;
    mine->last_update = std::max(mine->last_update, l.last_update);
    // Adopt the other collector's samples that are newer than anything we
    // already hold (clock domains are shared: both stamp in sim time).
    const Seconds newest = mine->history.empty()
                               ? -std::numeric_limits<Seconds>::infinity()
                               : mine->history.latest().at;
    for (std::size_t i = 0; i < l.history.size(); ++i) {
      const Sample s = l.history.sample(i);
      if (s.at > newest) {
        Sample adjusted = s;
        if (flipped) std::swap(adjusted.used_ab, adjusted.used_ba);
        mine->history.record(adjusted);
      }
    }
  }
}

}  // namespace remos::collector
