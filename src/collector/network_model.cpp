#include "collector/network_model.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace remos::collector {

std::vector<double> LinkHistory::used_in_window(Seconds now, Seconds window,
                                                bool ab) const {
  std::vector<double> out;
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    const Sample& s = samples_[i];
    if (window > 0 && s.at <= now - window) continue;
    if (s.at > now) continue;
    out.push_back(ab ? s.used_ab : s.used_ba);
  }
  return out;
}

obs::WindowStats LinkHistory::used_windowed(Seconds now, Seconds window,
                                            bool ab) const {
  Seconds raw_oldest = std::numeric_limits<Seconds>::infinity();
  if (!samples_.empty()) raw_oldest = samples_.front().at;
  return rollups(ab).stitched(now, window, used_in_window(now, window, ab),
                              raw_oldest);
}

Measurement LinkHistory::used_measurement(Seconds now, Seconds window,
                                          bool ab) const {
  return used_windowed(now, window, ab).measurement;
}

std::size_t LinkHistory::memory_bytes() const {
  return samples_.size() * sizeof(Sample) + rollup_ab_.memory_bytes() +
         rollup_ba_.memory_bytes();
}

ModelNode& NetworkModel::upsert_node(const std::string& name,
                                     bool is_router) {
  auto [it, inserted] = nodes_.try_emplace(name);
  if (inserted) {
    it->second.name = name;
    it->second.is_router = is_router;
  } else if (is_router) {
    it->second.is_router = true;  // router knowledge dominates
  }
  return it->second;
}

ModelLink& NetworkModel::upsert_link(const std::string& a,
                                     const std::string& b,
                                     BitsPerSec capacity, Seconds latency) {
  if (a == b) throw InvalidArgument("upsert_link: self-loop " + a);
  if (!has_node(a) || !has_node(b))
    throw InvalidArgument("upsert_link: unknown endpoint");
  bool flipped = false;
  if (ModelLink* existing = find_link(a, b, &flipped)) return *existing;
  links_.push_back(ModelLink{a, b, capacity, latency, true,
                             SharingPolicy::kUnknown, -1, LinkHistory{}});
  link_index_[{a, b}] = links_.size() - 1;
  return links_.back();
}

bool NetworkModel::has_node(const std::string& name) const {
  return nodes_.contains(name);
}

const ModelNode& NetworkModel::node(const std::string& name) const {
  const auto it = nodes_.find(name);
  if (it == nodes_.end())
    throw NotFoundError("NetworkModel: unknown node " + name);
  return it->second;
}

ModelNode& NetworkModel::node(const std::string& name) {
  const auto it = nodes_.find(name);
  if (it == nodes_.end())
    throw NotFoundError("NetworkModel: unknown node " + name);
  return it->second;
}

const ModelLink* NetworkModel::find_link(const std::string& a,
                                         const std::string& b,
                                         bool* flipped) const {
  if (auto it = link_index_.find({a, b}); it != link_index_.end()) {
    if (flipped) *flipped = false;
    return &links_[it->second];
  }
  if (auto it = link_index_.find({b, a}); it != link_index_.end()) {
    if (flipped) *flipped = true;
    return &links_[it->second];
  }
  return nullptr;
}

ModelLink* NetworkModel::find_link(const std::string& a, const std::string& b,
                                   bool* flipped) {
  return const_cast<ModelLink*>(
      std::as_const(*this).find_link(a, b, flipped));
}

std::vector<std::string> NetworkModel::neighbors(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const ModelLink& l : links_) {
    if (l.a == name) out.push_back(l.b);
    if (l.b == name) out.push_back(l.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

void NetworkModel::merge_from(const NetworkModel& other) {
  for (const auto& [name, n] : other.nodes()) {
    ModelNode& mine = upsert_node(name, n.is_router);
    if (n.internal_bw > 0) mine.internal_bw = n.internal_bw;
    if (n.has_host_info) {
      mine.has_host_info = true;
      mine.cpu_load = n.cpu_load;
      mine.memory_mb = n.memory_mb;
    }
  }
  for (const ModelLink& l : other.links()) {
    bool flipped = false;
    ModelLink* mine = find_link(l.a, l.b, &flipped);
    if (!mine) {
      mine = &upsert_link(l.a, l.b, l.capacity, l.latency);
      flipped = false;
    }
    mine->up = l.up;
    if (l.sharing != SharingPolicy::kUnknown) mine->sharing = l.sharing;
    mine->last_update = std::max(mine->last_update, l.last_update);
    // Adopt the other collector's samples that are newer than anything we
    // already hold (clock domains are shared: both stamp in sim time).
    const Seconds newest = mine->history.empty()
                               ? -std::numeric_limits<Seconds>::infinity()
                               : mine->history.latest().at;
    for (std::size_t i = 0; i < l.history.size(); ++i) {
      const Sample s = l.history.sample(i);
      if (s.at > newest) {
        Sample adjusted = s;
        if (flipped) std::swap(adjusted.used_ab, adjusted.used_ba);
        mine->history.record(adjusted);
      }
    }
  }
}

}  // namespace remos::collector
