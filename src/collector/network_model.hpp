// The collector's data product: a named-node network model with per-link
// measurement histories.
//
// This is deliberately separate from both the simulator Topology (which a
// real collector cannot see) and the core::NetworkGraph the Remos API
// returns (which is a per-query logical view).  Everything here is keyed
// by node *name*, because names (sysName) are all that SNMP discovery
// yields.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/rollup.hpp"
#include "util/ring_buffer.hpp"
#include "util/sharing.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace remos::collector {

/// One polling observation of a link: traffic rates seen in each
/// direction over the last polling interval.
struct Sample {
  Seconds at = 0;          // collector-side timestamp of the interval end
  BitsPerSec used_ab = 0;  // traffic a -> b
  BitsPerSec used_ba = 0;  // traffic b -> a
};

/// Bounded multi-resolution history of samples for one link: a raw ring
/// for recent polls plus one rollup cascade per direction (10 s / 60 s
/// quartile buckets by default), so windowed reads answer horizons far
/// beyond the raw ring at bounded memory instead of silently truncating.
/// Merged-in samples (merge_from) flow through record() and therefore
/// backfill the cascades too.
class LinkHistory {
 public:
  explicit LinkHistory(std::size_t capacity = 256)
      : samples_(capacity) {}

  void record(Sample s) {
    rollup_ab_.append(s.at, s.used_ab);
    rollup_ba_.append(s.at, s.used_ba);
    samples_.push(s);
  }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& latest() const { return samples_.back(); }
  /// i-th retained sample, 0 = oldest.
  const Sample& sample(std::size_t i) const { return samples_[i]; }

  /// Used-bandwidth samples in (now - window, now], oldest first.
  /// window <= 0 means "everything retained".  Raw ring only.
  std::vector<double> used_in_window(Seconds now, Seconds window,
                                     bool ab) const;

  /// Windowed quartile read with covered-span semantics: windows inside
  /// the raw ring answer exactly from samples; longer windows stitch in
  /// rollup buckets; a window beyond all retention reports the effective
  /// covered span with `truncated` set and accuracy discounted by the
  /// coverage ratio.
  obs::WindowStats used_windowed(Seconds now, Seconds window, bool ab) const;

  /// Quartile measurement of used bandwidth over the window
  /// (used_windowed().measurement).
  Measurement used_measurement(Seconds now, Seconds window, bool ab) const;

  /// The per-direction rollup cascade (audit/export).
  const obs::RollupCascade& rollups(bool ab) const {
    return ab ? rollup_ab_ : rollup_ba_;
  }

  /// Approximate heap footprint of retained state (raw + rollups).
  std::size_t memory_bytes() const;

 private:
  RingBuffer<Sample> samples_;
  obs::RollupCascade rollup_ab_;
  obs::RollupCascade rollup_ba_;
};

struct ModelNode {
  std::string name;
  bool is_router = false;
  /// Aggregate forwarding capacity (0 = not reported / unlimited).
  BitsPerSec internal_bw = 0;
  /// Host info (compute nodes with a responding host agent only).
  bool has_host_info = false;
  double cpu_load = 0.0;
  std::uint32_t memory_mb = 0;
};

struct ModelLink {
  std::string a;
  std::string b;
  BitsPerSec capacity = 0;
  Seconds latency = 0;
  /// Operational state, from ifOperStatus.  Down links stay in the model
  /// (they may return) but contribute nothing to logical topologies.
  bool up = true;
  /// How competing flows split this link's capacity (extension; unknown
  /// for links the network did not describe, e.g. probed WAN pairs).
  SharingPolicy sharing = SharingPolicy::kUnknown;
  /// When a collector last confirmed this link's state (collector clock;
  /// < 0 = never).  Distinct from history.latest().at: a poll that
  /// reaches the agent but yields no usable sample (e.g. a counter
  /// discontinuity) still refreshes this, while a dead agent freezes it.
  /// Queries widen their accuracy as links go stale.
  Seconds last_update = -1;
  LinkHistory history;
};

/// Discovered topology plus measurement state.  Links are unordered pairs;
/// sample direction is stored relative to the (a, b) orientation the link
/// was first inserted with.
class NetworkModel {
 public:
  /// Inserts or updates a node; returns the stored entry.
  ModelNode& upsert_node(const std::string& name, bool is_router);

  /// Inserts a link if absent (either orientation); returns the entry.
  ModelLink& upsert_link(const std::string& a, const std::string& b,
                         BitsPerSec capacity, Seconds latency);

  bool has_node(const std::string& name) const;
  const ModelNode& node(const std::string& name) const;
  ModelNode& node(const std::string& name);

  /// Finds the link between a and b in either orientation; `flipped` is
  /// set if the stored orientation is (b, a).  Null if absent.
  const ModelLink* find_link(const std::string& a, const std::string& b,
                             bool* flipped = nullptr) const;
  ModelLink* find_link(const std::string& a, const std::string& b,
                       bool* flipped = nullptr);

  const std::map<std::string, ModelNode>& nodes() const { return nodes_; }
  const std::vector<ModelLink>& links() const { return links_; }
  std::vector<ModelLink>& links() { return links_; }

  /// Node names adjacent to `name`.
  std::vector<std::string> neighbors(const std::string& name) const;

  /// Merges another model into this one (multi-collector cooperation):
  /// unknown nodes/links are added; known links keep their existing
  /// history and adopt the other's samples.
  void merge_from(const NetworkModel& other);

 private:
  std::map<std::string, ModelNode> nodes_;
  std::vector<ModelLink> links_;
  std::map<std::pair<std::string, std::string>, std::size_t> link_index_;
};

}  // namespace remos::collector
