// The collector's data product: a named-node network model with per-link
// measurement histories.
//
// This is deliberately separate from both the simulator Topology (which a
// real collector cannot see) and the core::NetworkGraph the Remos API
// returns (which is a per-query logical view).  Everything here is keyed
// by node *name*, because names (sysName) are all that SNMP discovery
// yields.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "obs/rollup.hpp"
#include "util/ring_buffer.hpp"
#include "util/sharing.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace remos::collector {

/// One polling observation of a link: traffic rates seen in each
/// direction over the last polling interval.
struct Sample {
  Seconds at = 0;          // collector-side timestamp of the interval end
  BitsPerSec used_ab = 0;  // traffic a -> b
  BitsPerSec used_ba = 0;  // traffic b -> a
};

/// Bounded multi-resolution history of samples for one link: a raw ring
/// for recent polls plus one rollup cascade per direction (10 s / 60 s
/// quartile buckets by default), so windowed reads answer horizons far
/// beyond the raw ring at bounded memory instead of silently truncating.
/// Merged-in samples (merge_from) flow through record() and therefore
/// backfill the cascades too.
class LinkHistory {
 public:
  explicit LinkHistory(std::size_t capacity = 256)
      : samples_(capacity) {}

  void record(Sample s) {
    rollup_ab_.append(s.at, s.used_ab);
    rollup_ba_.append(s.at, s.used_ba);
    samples_.push(s);
  }
  std::size_t size() const { return samples_.size(); }
  bool empty() const { return samples_.empty(); }
  const Sample& latest() const { return samples_.back(); }
  /// i-th retained sample, 0 = oldest.
  const Sample& sample(std::size_t i) const { return samples_[i]; }

  /// Used-bandwidth samples in (now - window, now], oldest first.
  /// window <= 0 means "everything retained".  Raw ring only.
  std::vector<double> used_in_window(Seconds now, Seconds window,
                                     bool ab) const;

  /// Windowed quartile read with covered-span semantics: windows inside
  /// the raw ring answer exactly from samples; longer windows stitch in
  /// rollup buckets; a window beyond all retention reports the effective
  /// covered span with `truncated` set and accuracy discounted by the
  /// coverage ratio.
  obs::WindowStats used_windowed(Seconds now, Seconds window, bool ab) const;

  /// Quartile measurement of used bandwidth over the window
  /// (used_windowed().measurement).
  Measurement used_measurement(Seconds now, Seconds window, bool ab) const;

  /// The per-direction rollup cascade (audit/export).
  const obs::RollupCascade& rollups(bool ab) const {
    return ab ? rollup_ab_ : rollup_ba_;
  }

  /// Approximate heap footprint of retained state (raw + rollups).
  std::size_t memory_bytes() const;

 private:
  RingBuffer<Sample> samples_;
  obs::RollupCascade rollup_ab_;
  obs::RollupCascade rollup_ba_;
};

struct ModelNode {
  std::string name;
  bool is_router = false;
  /// Aggregate forwarding capacity (0 = not reported / unlimited).
  BitsPerSec internal_bw = 0;
  /// Host info (compute nodes with a responding host agent only).
  bool has_host_info = false;
  double cpu_load = 0.0;
  std::uint32_t memory_mb = 0;
};

struct ModelLink {
  std::string a;
  std::string b;
  BitsPerSec capacity = 0;
  Seconds latency = 0;
  /// Operational state, from ifOperStatus.  Down links stay in the model
  /// (they may return) but contribute nothing to logical topologies.
  bool up = true;
  /// How competing flows split this link's capacity (extension; unknown
  /// for links the network did not describe, e.g. probed WAN pairs).
  SharingPolicy sharing = SharingPolicy::kUnknown;
  /// When a collector last confirmed this link's state (collector clock;
  /// < 0 = never).  Distinct from history.latest().at: a poll that
  /// reaches the agent but yields no usable sample (e.g. a counter
  /// discontinuity) still refreshes this, while a dead agent freezes it.
  /// Queries widen their accuracy as links go stale.
  Seconds last_update = -1;
  LinkHistory history;
};

class NetworkModel;

/// Integer-form routing view of a NetworkModel: node names interned to
/// dense ids (lexicographic order), adjacency restricted to *up* links,
/// and memoized per-source BFS parent rows (hosts do not forward).  A
/// row answers every route from its source in O(path length), so a
/// query over k nodes costs k BFS runs once -- not per query -- on a
/// shared snapshot.
///
/// The index is immutable with respect to the model state it was built
/// from; NetworkModel::routing_index() rebuilds it when the model's
/// structural fingerprint (node/link sets, up flags, router flags)
/// changes.  Row memoization is guarded by a tiny acquire/release
/// spinlock so concurrent query workers can share one index safely.
class RoutingIndex {
 public:
  /// One BFS tree: parent[v] is the predecessor of v on the route from
  /// the source (kNoNode if unreachable, the source for itself);
  /// via_link[v] indexes NetworkModel::links() for the edge taken.
  struct Row {
    std::vector<std::int32_t> parent;
    std::vector<std::uint32_t> via_link;
  };

  static constexpr std::int32_t kNoNode = -1;

  std::size_t node_count() const { return names_.size(); }
  /// Dense id of a node name; kNoNode if unknown.
  std::int32_t id_of(const std::string& name) const;
  const std::string& name_of(std::int32_t id) const {
    return names_[static_cast<std::size_t>(id)];
  }
  bool is_router(std::int32_t id) const {
    return is_router_[static_cast<std::size_t>(id)] != 0;
  }

  /// The memoized BFS row from `src` (computed on first use).
  /// Deterministic: neighbors expand in id (= name) order.
  const Row& row_from(std::int32_t src) const;

 private:
  friend class NetworkModel;
  void build(const NetworkModel& model);

  void lock() const {
    while (lock_.test_and_set(std::memory_order_acquire))
      while (lock_.test(std::memory_order_relaxed)) {
      }
  }
  void unlock() const { lock_.clear(std::memory_order_release); }

  struct Hop {
    std::int32_t neighbor = kNoNode;
    std::uint32_t link = 0;  // index into NetworkModel::links()
  };

  std::vector<std::string> names_;            // id -> name, sorted
  std::map<std::string, std::int32_t> ids_;   // name -> id
  std::vector<char> is_router_;
  std::vector<std::uint32_t> adj_offset_;     // CSR: per-node slice of adj_
  std::vector<Hop> adj_;                      // neighbors, id-sorted per node

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  mutable std::vector<std::unique_ptr<Row>> rows_;
};

/// Discovered topology plus measurement state.  Links are unordered pairs;
/// sample direction is stored relative to the (a, b) orientation the link
/// was first inserted with.
class NetworkModel {
 public:
  /// Inserts or updates a node; returns the stored entry.
  ModelNode& upsert_node(const std::string& name, bool is_router);

  /// Inserts a link if absent (either orientation); returns the entry.
  ModelLink& upsert_link(const std::string& a, const std::string& b,
                         BitsPerSec capacity, Seconds latency);

  bool has_node(const std::string& name) const;
  const ModelNode& node(const std::string& name) const;
  ModelNode& node(const std::string& name);

  /// Finds the link between a and b in either orientation; `flipped` is
  /// set if the stored orientation is (b, a).  Null if absent.
  const ModelLink* find_link(const std::string& a, const std::string& b,
                             bool* flipped = nullptr) const;
  ModelLink* find_link(const std::string& a, const std::string& b,
                       bool* flipped = nullptr);

  const std::map<std::string, ModelNode>& nodes() const { return nodes_; }
  const std::vector<ModelLink>& links() const { return links_; }
  std::vector<ModelLink>& links() { return links_; }

  /// Node names adjacent to `name`.
  std::vector<std::string> neighbors(const std::string& name) const;

  /// Merges another model into this one (multi-collector cooperation):
  /// unknown nodes/links are added; known links keep their existing
  /// history and adopt the other's samples.
  void merge_from(const NetworkModel& other);

  /// Removes the link between a and b (either orientation) with its
  /// history.  Returns false if no such link exists.  O(links): the
  /// link vector and its index are rebuilt without the entry.
  bool remove_link(const std::string& a, const std::string& b);

  /// Removes a node and every link incident to it.  Returns false if
  /// the node is unknown.  (Replication deltas decommission nodes this
  /// way; collectors keep vanished routers in the model instead, since
  /// they may return.)
  bool remove_node(const std::string& name);

  /// The routing index for the model's current structure, built lazily
  /// and cached.  Because links() hands out mutable references (callers
  /// flip `up` in place), invalidation is by structural fingerprint --
  /// an O(nodes + links) fold over the node set, link endpoints, up
  /// flags and router flags recomputed on each call -- rather than by
  /// mutation hooks.  Measurement updates (histories, last_update) do
  /// not perturb the fingerprint and keep the cached index.  The
  /// returned reference is valid until the model's structure next
  /// changes.  Safe for concurrent readers of an immutable snapshot.
  const RoutingIndex& routing_index() const;

 private:
  std::map<std::string, ModelNode> nodes_;
  std::vector<ModelLink> links_;
  std::map<std::pair<std::string, std::string>, std::size_t> link_index_;

  /// Cached routing index + the fingerprint it was built under.  Copies
  /// of a model deliberately start with a cold cache (the index holds no
  /// model pointers, but rebuilding on first use is simpler than proving
  /// copy equivalence).
  struct RoutingCache {
    RoutingCache() = default;
    RoutingCache(const RoutingCache&) {}
    RoutingCache& operator=(const RoutingCache&) {
      index.reset();
      fingerprint = 0;
      return *this;
    }

    void lock() const {
      while (flag.test_and_set(std::memory_order_acquire))
        while (flag.test(std::memory_order_relaxed)) {
        }
    }
    void unlock() const { flag.clear(std::memory_order_release); }

    mutable std::atomic_flag flag = ATOMIC_FLAG_INIT;
    std::shared_ptr<RoutingIndex> index;
    std::uint64_t fingerprint = 0;
  };
  mutable RoutingCache routing_cache_;
};

}  // namespace remos::collector
