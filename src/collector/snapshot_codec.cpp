#include "collector/snapshot_codec.hpp"

#include <algorithm>
#include <bit>
#include <cstring>
#include <map>
#include <set>

#include "util/error.hpp"

namespace remos::collector {
namespace {

constexpr std::uint8_t kMagic[4] = {'R', 'S', 'N', 'P'};
constexpr std::size_t kHeaderSize = 36;   // through payload-length field
constexpr std::size_t kChecksumSize = 8;

std::uint64_t fnv1a64(const std::uint8_t* data, std::size_t n) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (std::size_t i = 0; i < n; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// --- little-endian writer --------------------------------------------

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) {
  out.push_back(v);
}
void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
  out.push_back(static_cast<std::uint8_t>(v));
  out.push_back(static_cast<std::uint8_t>(v >> 8));
}
void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<std::uint8_t>(v >> (8 * i)));
}
void put_f64(std::vector<std::uint8_t>& out, double v) {
  put_u64(out, std::bit_cast<std::uint64_t>(v));
}
void put_str(std::vector<std::uint8_t>& out, const std::string& s) {
  if (s.size() > 0xffff)
    throw ProtocolError("snapshot codec: name longer than 65535 bytes");
  put_u16(out, static_cast<std::uint16_t>(s.size()));
  out.insert(out.end(), s.begin(), s.end());
}

// --- bounds-checked reader -------------------------------------------

class Reader {
 public:
  Reader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return take(1)[0]; }
  std::uint16_t u16() {
    const std::uint8_t* p = take(2);
    return static_cast<std::uint16_t>(p[0] | (p[1] << 8));
  }
  std::uint32_t u32() {
    const std::uint8_t* p = take(4);
    std::uint32_t v = 0;
    for (int i = 3; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  std::uint64_t u64() {
    const std::uint8_t* p = take(8);
    std::uint64_t v = 0;
    for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
    return v;
  }
  double f64() { return std::bit_cast<double>(u64()); }
  std::string str() {
    const std::size_t n = u16();
    const std::uint8_t* p = take(n);
    return std::string(reinterpret_cast<const char*>(p), n);
  }
  bool done() const { return pos_ == size_; }
  std::size_t remaining() const { return size_ - pos_; }

 private:
  const std::uint8_t* take(std::size_t n) {
    if (size_ - pos_ < n)
      throw ProtocolError("snapshot codec: truncated frame");
    const std::uint8_t* p = data_ + pos_;
    pos_ += n;
    return p;
  }
  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

// --- canonical record encodings --------------------------------------

void encode_node(std::vector<std::uint8_t>& out, const ModelNode& n) {
  put_str(out, n.name);
  const std::uint8_t flags = static_cast<std::uint8_t>(
      (n.is_router ? 1u : 0u) | (n.has_host_info ? 2u : 0u));
  put_u8(out, flags);
  put_f64(out, n.internal_bw);
  put_f64(out, n.cpu_load);
  put_u32(out, n.memory_mb);
}

void encode_link(std::vector<std::uint8_t>& out, const ModelLink& l) {
  put_str(out, l.a);
  put_str(out, l.b);
  put_f64(out, l.capacity);
  put_f64(out, l.latency);
  put_u8(out, l.up ? 1 : 0);
  put_u8(out, static_cast<std::uint8_t>(l.sharing));
  put_f64(out, l.last_update);
  const std::size_t n = std::min(l.history.size(), kWireSampleCap);
  put_u16(out, static_cast<std::uint16_t>(n));
  for (std::size_t i = l.history.size() - n; i < l.history.size(); ++i) {
    const Sample& s = l.history.sample(i);
    put_f64(out, s.at);
    put_f64(out, s.used_ab);
    put_f64(out, s.used_ba);
  }
}

/// Link indices in canonical (a, b) name order.
std::vector<std::size_t> canonical_link_order(const NetworkModel& m) {
  std::vector<std::size_t> order(m.links().size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t x, std::size_t y) {
    const ModelLink& lx = m.links()[x];
    const ModelLink& ly = m.links()[y];
    return std::tie(lx.a, lx.b) < std::tie(ly.a, ly.b);
  });
  return order;
}

/// The canonical model body: the full-frame payload (and the fingerprint
/// input).  Nodes in name order (std::map), links in (a, b) order.
std::vector<std::uint8_t> encode_body(const NetworkModel& m) {
  std::vector<std::uint8_t> out;
  put_u32(out, static_cast<std::uint32_t>(m.nodes().size()));
  for (const auto& [name, node] : m.nodes()) encode_node(out, node);
  const std::vector<std::size_t> order = canonical_link_order(m);
  put_u32(out, static_cast<std::uint32_t>(order.size()));
  for (const std::size_t i : order) encode_link(out, m.links()[i]);
  return out;
}

WireNode decode_node(Reader& r) {
  WireNode n;
  n.name = r.str();
  if (n.name.empty())
    throw ProtocolError("snapshot codec: empty node name");
  const std::uint8_t flags = r.u8();
  if (flags > 3)
    throw ProtocolError("snapshot codec: unknown node flags");
  n.is_router = flags & 1;
  n.has_host_info = flags & 2;
  n.internal_bw = r.f64();
  n.cpu_load = r.f64();
  n.memory_mb = r.u32();
  return n;
}

WireLink decode_link(Reader& r) {
  WireLink l;
  l.a = r.str();
  l.b = r.str();
  if (l.a.empty() || l.b.empty() || l.a == l.b)
    throw ProtocolError("snapshot codec: bad link endpoints");
  l.capacity = r.f64();
  l.latency = r.f64();
  const std::uint8_t up = r.u8();
  if (up > 1) throw ProtocolError("snapshot codec: bad link up flag");
  l.up = up == 1;
  const std::uint8_t sharing = r.u8();
  if (sharing > static_cast<std::uint8_t>(SharingPolicy::kWeightedShare))
    throw ProtocolError("snapshot codec: unknown sharing policy");
  l.sharing = static_cast<SharingPolicy>(sharing);
  l.last_update = r.f64();
  const std::size_t n = r.u16();
  if (n > kWireSampleCap)
    throw ProtocolError("snapshot codec: sample tail exceeds cap");
  l.samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    WireSample s;
    s.at = r.f64();
    s.used_ab = r.f64();
    s.used_ba = r.f64();
    l.samples.push_back(s);
  }
  return l;
}

std::vector<std::uint8_t> frame(FrameKind kind, std::uint64_t version,
                                std::uint64_t base_version, Seconds taken_at,
                                const std::vector<std::uint8_t>& payload) {
  std::vector<std::uint8_t> out;
  out.reserve(kHeaderSize + payload.size() + kChecksumSize);
  out.insert(out.end(), kMagic, kMagic + 4);
  put_u16(out, kSnapshotWireVersion);
  put_u8(out, static_cast<std::uint8_t>(kind));
  put_u8(out, 0);
  put_u64(out, version);
  put_u64(out, base_version);
  put_f64(out, taken_at);
  put_u32(out, static_cast<std::uint32_t>(payload.size()));
  out.insert(out.end(), payload.begin(), payload.end());
  put_u64(out, fnv1a64(out.data(), out.size()));
  return out;
}

/// Overwrites a model link's fields and rebuilds its history from the
/// wire sample tail (the canonical form both sides fingerprint).
void overwrite_link(ModelLink& ml, const WireLink& wl) {
  ml.capacity = wl.capacity;
  ml.latency = wl.latency;
  ml.up = wl.up;
  ml.sharing = wl.sharing;
  ml.last_update = wl.last_update;
  ml.history = LinkHistory{};
  for (const WireSample& s : wl.samples)
    ml.history.record(Sample{s.at, s.used_ab, s.used_ba});
}

void overwrite_node(ModelNode& mn, const WireNode& wn) {
  mn.is_router = wn.is_router;
  mn.has_host_info = wn.has_host_info;
  mn.internal_bw = wn.internal_bw;
  mn.cpu_load = wn.cpu_load;
  mn.memory_mb = wn.memory_mb;
}

void upsert_wire_link(NetworkModel& m, const WireLink& wl) {
  if (!m.has_node(wl.a) || !m.has_node(wl.b))
    throw ProtocolError("snapshot codec: link references unknown node " +
                        (m.has_node(wl.a) ? wl.b : wl.a));
  // A stored flipped orientation means the primary removed and re-added
  // the link; mirror that so sample directions stay aligned.
  bool flipped = false;
  if (m.find_link(wl.a, wl.b, &flipped) && flipped)
    m.remove_link(wl.a, wl.b);
  ModelLink& ml = m.upsert_link(wl.a, wl.b, wl.capacity, wl.latency);
  overwrite_link(ml, wl);
}

}  // namespace

std::vector<std::uint8_t> encode_full(const NetworkModel& model,
                                      std::uint64_t version,
                                      Seconds taken_at) {
  return frame(FrameKind::kFull, version, 0, taken_at, encode_body(model));
}

std::vector<std::uint8_t> encode_delta(const NetworkModel& base,
                                       std::uint64_t base_version,
                                       const NetworkModel& next,
                                       std::uint64_t version,
                                       Seconds taken_at) {
  // Canonical per-record bytes on both sides; a record that changed in
  // any wire-visible way (including a new sample in the tail) differs.
  std::map<std::string, std::vector<std::uint8_t>> base_nodes;
  for (const auto& [name, node] : base.nodes())
    encode_node(base_nodes[name], node);
  std::map<std::pair<std::string, std::string>, std::vector<std::uint8_t>>
      base_links;
  for (const ModelLink& l : base.links())
    encode_link(base_links[{l.a, l.b}], l);

  std::vector<std::uint8_t> removed_nodes_pl;
  std::uint32_t removed_nodes = 0;
  for (const auto& [name, bytes] : base_nodes) {
    if (!next.has_node(name)) {
      put_str(removed_nodes_pl, name);
      ++removed_nodes;
    }
  }
  std::vector<std::uint8_t> removed_links_pl;
  std::uint32_t removed_links = 0;
  for (const auto& [names, bytes] : base_links) {
    if (!next.find_link(names.first, names.second)) {
      put_str(removed_links_pl, names.first);
      put_str(removed_links_pl, names.second);
      ++removed_links;
    }
  }

  std::vector<std::uint8_t> nodes_pl;
  std::uint32_t changed_nodes = 0;
  for (const auto& [name, node] : next.nodes()) {
    std::vector<std::uint8_t> rec;
    encode_node(rec, node);
    const auto it = base_nodes.find(name);
    if (it != base_nodes.end() && it->second == rec) continue;
    nodes_pl.insert(nodes_pl.end(), rec.begin(), rec.end());
    ++changed_nodes;
  }
  std::vector<std::uint8_t> links_pl;
  std::uint32_t changed_links = 0;
  for (const std::size_t i : canonical_link_order(next)) {
    const ModelLink& l = next.links()[i];
    std::vector<std::uint8_t> rec;
    encode_link(rec, l);
    const auto it = base_links.find({l.a, l.b});
    if (it != base_links.end() && it->second == rec) continue;
    links_pl.insert(links_pl.end(), rec.begin(), rec.end());
    ++changed_links;
  }

  std::vector<std::uint8_t> payload;
  put_u32(payload, removed_nodes);
  payload.insert(payload.end(), removed_nodes_pl.begin(),
                 removed_nodes_pl.end());
  put_u32(payload, removed_links);
  payload.insert(payload.end(), removed_links_pl.begin(),
                 removed_links_pl.end());
  put_u32(payload, changed_nodes);
  payload.insert(payload.end(), nodes_pl.begin(), nodes_pl.end());
  put_u32(payload, changed_links);
  payload.insert(payload.end(), links_pl.begin(), links_pl.end());
  return frame(FrameKind::kDelta, version, base_version, taken_at, payload);
}

SnapshotFrame decode_frame(const std::vector<std::uint8_t>& wire) {
  if (wire.size() < kHeaderSize + kChecksumSize)
    throw ProtocolError("snapshot codec: frame shorter than header");
  if (std::memcmp(wire.data(), kMagic, 4) != 0)
    throw ProtocolError("snapshot codec: bad magic");
  const std::uint64_t declared =
      Reader(wire.data() + wire.size() - kChecksumSize, kChecksumSize).u64();
  if (declared != fnv1a64(wire.data(), wire.size() - kChecksumSize))
    throw ProtocolError("snapshot codec: checksum mismatch");

  Reader r(wire.data() + 4, wire.size() - 4 - kChecksumSize);
  SnapshotFrame f;
  const std::uint16_t wire_version = r.u16();
  if (wire_version != kSnapshotWireVersion)
    throw ProtocolError("snapshot codec: unsupported wire version " +
                        std::to_string(wire_version));
  const std::uint8_t kind = r.u8();
  if (kind > static_cast<std::uint8_t>(FrameKind::kDelta))
    throw ProtocolError("snapshot codec: unknown frame kind");
  f.kind = static_cast<FrameKind>(kind);
  if (r.u8() != 0)
    throw ProtocolError("snapshot codec: nonzero reserved byte");
  f.version = r.u64();
  f.base_version = r.u64();
  f.taken_at = r.f64();
  const std::uint32_t payload_len = r.u32();
  if (payload_len != r.remaining())
    throw ProtocolError("snapshot codec: payload length mismatch");
  if (f.kind == FrameKind::kFull && f.base_version != 0)
    throw ProtocolError("snapshot codec: full frame with base version");

  if (f.kind == FrameKind::kDelta) {
    const std::uint32_t rn = r.u32();
    for (std::uint32_t i = 0; i < rn; ++i)
      f.removed_nodes.push_back(r.str());
    const std::uint32_t rl = r.u32();
    for (std::uint32_t i = 0; i < rl; ++i) {
      std::string a = r.str();
      std::string b = r.str();
      f.removed_links.emplace_back(std::move(a), std::move(b));
    }
  }
  const std::uint32_t nn = r.u32();
  for (std::uint32_t i = 0; i < nn; ++i) f.nodes.push_back(decode_node(r));
  const std::uint32_t nl = r.u32();
  for (std::uint32_t i = 0; i < nl; ++i) f.links.push_back(decode_link(r));
  if (!r.done())
    throw ProtocolError("snapshot codec: trailing bytes in payload");
  return f;
}

NetworkModel materialize(const SnapshotFrame& full) {
  if (full.kind != FrameKind::kFull)
    throw ProtocolError("snapshot codec: materialize needs a full frame");
  NetworkModel m;
  for (const WireNode& n : full.nodes)
    overwrite_node(m.upsert_node(n.name, n.is_router), n);
  for (const WireLink& l : full.links) upsert_wire_link(m, l);
  return m;
}

void apply_delta(NetworkModel& m, const SnapshotFrame& delta) {
  if (delta.kind != FrameKind::kDelta)
    throw ProtocolError("snapshot codec: apply_delta needs a delta frame");
  for (const auto& [a, b] : delta.removed_links) m.remove_link(a, b);
  for (const std::string& name : delta.removed_nodes) m.remove_node(name);
  for (const WireNode& n : delta.nodes)
    overwrite_node(m.upsert_node(n.name, n.is_router), n);
  for (const WireLink& l : delta.links) upsert_wire_link(m, l);
}

std::uint64_t model_fingerprint(const NetworkModel& model) {
  const std::vector<std::uint8_t> body = encode_body(model);
  return fnv1a64(body.data(), body.size());
}

}  // namespace remos::collector
