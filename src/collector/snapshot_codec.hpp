// Versioned wire format for NetworkModel snapshots (replication plane).
//
// The paper's Figure-2 architecture runs one Collector per cloud; a
// production deployment replicates the resulting model to N service
// replicas.  That turns the model into *data on a wire*: it must be
// framed, versioned, checksummed, and diffable, and every malformed
// byte sequence must decode to a structured ProtocolError -- never UB --
// because the replication channel is subject to the same fault model as
// the management plane (corruption, truncation, reordering).
//
// Frame layout (all integers little-endian, doubles as IEEE-754 bits):
//
//   offset  size  field
//   0       4     magic "RSNP"
//   4       2     wire-format version (kSnapshotWireVersion)
//   6       1     kind: 0 = full snapshot, 1 = delta
//   7       1     reserved (0)
//   8       8     snapshot version (monotonic, assigned by the primary)
//   16      8     base version (delta only; 0 in full frames)
//   24      8     taken_at (model clock, f64 bits)
//   32      4     payload length
//   36      n     payload (kind-specific, below)
//   36+n    8     FNV-1a64 checksum of bytes [0, 36+n)
//
// Full payload: the *canonical* model body -- nodes in name order, links
// in (a, b) order, each link carrying its newest kWireSampleCap history
// samples.  Delta payload: removed-node and removed-link name lists plus
// full records for every node/link whose canonical record differs from
// the base version's.  Applying a delta to a bit-identical base yields a
// model whose canonical body is bit-identical to the primary's -- which
// is what model_fingerprint() verifies after a resync.
//
// The canonical body deliberately bounds per-link history to the sample
// tail: replicas answer measurement queries from the last
// kWireSampleCap polls (plenty for current/prediction timeframes), and
// the bound keeps full frames O(model) and delta frames O(changed
// links), not O(retention).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "collector/network_model.hpp"
#include "util/units.hpp"

namespace remos::collector {

inline constexpr std::uint16_t kSnapshotWireVersion = 1;
/// Newest history samples carried per link in the canonical body.
inline constexpr std::size_t kWireSampleCap = 16;

enum class FrameKind : std::uint8_t { kFull = 0, kDelta = 1 };

struct WireSample {
  Seconds at = 0;
  BitsPerSec used_ab = 0;
  BitsPerSec used_ba = 0;
};

struct WireNode {
  std::string name;
  bool is_router = false;
  bool has_host_info = false;
  BitsPerSec internal_bw = 0;
  double cpu_load = 0.0;
  std::uint32_t memory_mb = 0;
};

struct WireLink {
  std::string a;
  std::string b;
  BitsPerSec capacity = 0;
  Seconds latency = 0;
  bool up = true;
  SharingPolicy sharing = SharingPolicy::kUnknown;
  Seconds last_update = -1;
  std::vector<WireSample> samples;  // oldest first, <= kWireSampleCap
};

/// One decoded frame.  For kFull, `nodes`/`links` are the whole model
/// and the removal lists are empty; for kDelta they are upserts against
/// `base_version`.
struct SnapshotFrame {
  FrameKind kind = FrameKind::kFull;
  std::uint64_t version = 0;
  std::uint64_t base_version = 0;
  Seconds taken_at = 0;
  std::vector<WireNode> nodes;
  std::vector<WireLink> links;
  std::vector<std::string> removed_nodes;
  std::vector<std::pair<std::string, std::string>> removed_links;
};

/// Encodes the whole model as a full frame.
std::vector<std::uint8_t> encode_full(const NetworkModel& model,
                                      std::uint64_t version,
                                      Seconds taken_at);

/// Encodes the difference next - base as a delta frame against
/// `base_version`.  A replica whose applied version is not
/// `base_version` must not apply it (gap: request a full resync).
std::vector<std::uint8_t> encode_delta(const NetworkModel& base,
                                       std::uint64_t base_version,
                                       const NetworkModel& next,
                                       std::uint64_t version,
                                       Seconds taken_at);

/// Decodes and validates one frame.  Throws ProtocolError on any
/// malformed input: bad magic, unknown wire version, truncation at any
/// byte, checksum mismatch, out-of-range enums, or trailing garbage.
SnapshotFrame decode_frame(const std::vector<std::uint8_t>& wire);

/// Builds a model from a full frame.  Throws ProtocolError if the frame
/// is not kFull or a link references an undeclared node.
NetworkModel materialize(const SnapshotFrame& full);

/// Applies a delta frame in place: removals first, then node/link
/// upserts (a changed link's history is rebuilt from the frame's sample
/// tail).  Removals of unknown names are ignored, so re-applying a delta
/// is idempotent.  Throws ProtocolError if the frame is not kDelta or an
/// upserted link references a node known to neither the model nor the
/// frame.
void apply_delta(NetworkModel& model, const SnapshotFrame& delta);

/// FNV-1a64 fingerprint of the model's canonical body (the exact bytes a
/// full frame would carry as payload, minus framing).  Two models with
/// equal fingerprints answer queries identically over the wire-visible
/// state; a resynced replica must converge to the primary's fingerprint.
std::uint64_t model_fingerprint(const NetworkModel& model);

}  // namespace remos::collector
