#include "collector/snmp_collector.hpp"

#include <algorithm>
#include <chrono>
#include <deque>

#include "snmp/mib2.hpp"
#include "util/error.hpp"

namespace remos::collector {

namespace {
using snmp::Oid;
using snmp::oids::kIfTableEntry;
using snmp::oids::kRemosNeighborEntry;

constexpr double kCounterModulus = 4294967296.0;  // 2^32

/// Counter32 difference that survives one wrap.
std::uint32_t counter_delta(std::uint32_t now, std::uint32_t before) {
  return now - before;  // unsigned arithmetic wraps correctly
}
}  // namespace

SnmpCollector::SnmpCollector(snmp::Transport& transport,
                             std::vector<std::string> seed_routers,
                             Options options)
    : transport_(&transport),
      seeds_(std::move(seed_routers)),
      options_(std::move(options)),
      breakers_(options_.breaker) {
  if (seeds_.empty())
    throw InvalidArgument("SnmpCollector: no seed routers");
  if (options_.unreachable_after < 1)
    throw InvalidArgument("SnmpCollector: unreachable_after < 1");
  if (options_.delta_margin < 1.0)
    throw InvalidArgument("SnmpCollector: delta_margin < 1");
}

snmp::Client SnmpCollector::make_client(const std::string& node) {
  return snmp::Client(*transport_, snmp::agent_address(node),
                      options_.community, options_.client, &breakers_,
                      &client_obs_);
}

void SnmpCollector::set_obs(const obs::Obs& o) {
  obs_ = o;
  client_obs_ = snmp::ClientObs::resolve(o);
  breakers_.set_obs(o);
  if (o.metrics) {
    polls_counter_ = o.metrics->counter("remos_collector_polls_total", {},
                                        "Collector poll rounds completed");
    partial_polls_counter_ = o.metrics->counter(
        "remos_collector_partial_polls_total", {},
        "Polls that lost some interfaces but kept the rest");
    poll_failures_counter_ = o.metrics->counter(
        "remos_collector_poll_failures_total", {},
        "Per-router polls that failed outright");
    implausible_counter_ = o.metrics->counter(
        "remos_collector_implausible_deltas_total", {},
        "Counter samples discarded as implausible");
    poll_duration_ = o.metrics->histogram(
        "remos_collector_poll_duration_seconds",
        obs::default_time_buckets(), {},
        "Wall-clock duration of one poll round");
    unreachable_gauge_ =
        o.metrics->gauge("remos_collector_unreachable_agents", {},
                         "Agents that failed during the last operation");
    staleness_gauge_ = o.metrics->gauge(
        "remos_collector_staleness_seconds", {},
        "Model-clock age of the freshest link confirmation");
    // Health gauges for routers already known (newly met routers are
    // added lazily by set_health).
    for (const auto& [router, st] : router_state_)
      health_gauge(router).set(static_cast<double>(st.health));
  }
}

obs::Gauge& SnmpCollector::health_gauge(const std::string& router) {
  auto it = health_gauges_.find(router);
  if (it == health_gauges_.end()) {
    obs::Gauge g;
    if (obs_.metrics)
      g = obs_.metrics->gauge(
          "remos_collector_router_health", {{"router", router}},
          "Per-router agent health (0 healthy, 1 degraded, 2 unreachable)");
    it = health_gauges_.emplace(router, g).first;
  }
  return it->second;
}

Seconds SnmpCollector::sample_time(std::uint32_t uptime_ticks) const {
  if (transport_->has_clock()) return transport_->now();
  return static_cast<double>(uptime_ticks) / 100.0;
}

AgentHealth SnmpCollector::health(const std::string& router) const {
  const auto it = router_state_.find(router);
  return it == router_state_.end() ? AgentHealth::kHealthy
                                   : it->second.health;
}

bool SnmpCollector::healthy() const {
  if (!pending_routers_.empty()) return false;
  for (const auto& [router, st] : router_state_)
    if (st.health == AgentHealth::kUnreachable) return false;
  return true;
}

void SnmpCollector::set_health(const std::string& router, AgentHealth to) {
  RouterState& st = router_state_[router];
  if (st.health == to) return;
  health_log_.push_back(
      HealthTransition{transport_->now(), router, st.health, to});
  if (obs_.recorder)
    obs_.recorder->record(to == AgentHealth::kHealthy
                              ? obs::EventSeverity::kInfo
                              : obs::EventSeverity::kWarn,
                          "collector", "health_transition",
                          router + ": " + obs::to_string(st.health) +
                              " -> " + obs::to_string(to),
                          transport_->now());
  st.health = to;
  health_gauge(router).set(static_cast<double>(to));
}

void SnmpCollector::note_poll_result(const std::string& router,
                                     std::size_t attempted,
                                     std::size_t failed) {
  if (attempted > 0 && failed == attempted) {
    note_poll_failure(router);
    return;
  }
  RouterState& st = router_state_[router];
  st.consecutive_failures = 0;  // the agent answered something
  st.last_success = transport_->now();
  if (failed > 0) partial_polls_counter_.inc();
  set_health(router, failed == 0 ? AgentHealth::kHealthy
                                 : AgentHealth::kDegraded);
}

void SnmpCollector::note_poll_failure(const std::string& router) {
  RouterState& st = router_state_[router];
  ++st.consecutive_failures;
  poll_failures_counter_.inc();
  set_health(router,
             st.consecutive_failures >= options_.unreachable_after
                 ? AgentHealth::kUnreachable
                 : AgentHealth::kDegraded);
}

void SnmpCollector::discover() {
  unreachable_ = 0;
  std::deque<std::string> frontier(seeds_.begin(), seeds_.end());
  std::set<std::string> visited;
  while (!frontier.empty()) {
    const std::string router = frontier.front();
    frontier.pop_front();
    if (!visited.insert(router).second) continue;
    // A lossy transport can kill one exchange in a long table walk even
    // with per-datagram retries; retry the whole router a few times
    // before declaring it unreachable (it stays pending and is retried
    // again on every poll).
    bool reached = false;
    for (int attempt = 0; attempt < 3 && !reached; ++attempt) {
      try {
        for (const std::string& peer : ingest_router(router))
          if (!visited.contains(peer)) frontier.push_back(peer);
        known_routers_.insert(router);
        pending_routers_.erase(router);
        reached = true;
      } catch (const NotFoundError&) {
        break;  // no agent at that address: retrying cannot help now
      } catch (const TimeoutError&) {
      } catch (const ProtocolError&) {
        // Garbled tables (corruption in flight): retry like a timeout.
      }
    }
    if (!reached) {
      ++unreachable_;
      pending_routers_.insert(router);
    }
  }
  if (known_routers_.empty())
    throw Error("SnmpCollector: discovery reached no routers");
}

std::vector<std::string> SnmpCollector::ingest_router(
    const std::string& name) {
  snmp::Client client = make_client(name);
  const std::string sys_name = client.get(snmp::oids::kSysName).as_octets();
  ModelNode& self = model_.upsert_node(sys_name, /*is_router=*/true);
  try {
    self.internal_bw =
        static_cast<double>(
            client.get(snmp::oids::kRemosBackplaneKbps).as_gauge32()) *
        1e3;
  } catch (const NotFoundError&) {
    // No finite backplane reported: only links constrain traffic.
  }

  // Column-indexed walk results: ifIndex -> value.
  auto column = [&](const Oid& entry, std::uint32_t col) {
    std::map<std::uint32_t, snmp::Value> out;
    for (const snmp::VarBind& vb : client.walk(entry.child(col)))
      out.emplace(vb.oid[vb.oid.size() - 1], vb.value);
    return out;
  };

  const auto speeds = column(kIfTableEntry, snmp::oids::kIfSpeedCol);
  const auto nbr_names =
      column(kRemosNeighborEntry, snmp::oids::kNbrNameCol);
  const auto nbr_router =
      column(kRemosNeighborEntry, snmp::oids::kNbrIsRouterCol);
  const auto nbr_latency =
      column(kRemosNeighborEntry, snmp::oids::kNbrLatencyMicrosCol);
  const auto nbr_sharing =
      column(kRemosNeighborEntry, snmp::oids::kNbrSharingCol);

  std::vector<std::string> peer_routers;
  for (const auto& [if_index, name_value] : nbr_names) {
    const std::string peer = name_value.as_octets();
    const bool peer_is_router = nbr_router.at(if_index).as_integer() != 0;
    const auto speed_it = speeds.find(if_index);
    if (speed_it == speeds.end())
      throw ProtocolError("SnmpCollector: neighbor without ifSpeed");
    const auto capacity =
        static_cast<BitsPerSec>(speed_it->second.as_gauge32());
    const Seconds latency =
        static_cast<double>(nbr_latency.at(if_index).as_gauge32()) * 1e-6;

    model_.upsert_node(peer, peer_is_router);
    ModelLink& link = model_.upsert_link(sys_name, peer, capacity, latency);
    if (const auto it = nbr_sharing.find(if_index);
        it != nbr_sharing.end()) {
      const std::int64_t raw = it->second.as_integer();
      if (raw >= 0 && raw <= 2)
        link.sharing = static_cast<SharingPolicy>(raw);
    }
    link.last_update = transport_->now();
    if_neighbor_[{sys_name, if_index}] = peer;
    if (peer_is_router) peer_routers.push_back(peer);

    if (!peer_is_router && options_.query_hosts &&
        transport_->bound(snmp::agent_address(peer))) {
      snmp::Client host = make_client(peer);
      try {
        ModelNode& hn = model_.node(peer);
        hn.cpu_load =
            static_cast<double>(
                host.get(snmp::oids::kHrProcessorLoad).as_integer()) /
            100.0;
        hn.memory_mb = host.get(snmp::oids::kHrMemorySize).as_gauge32();
        hn.has_host_info = true;
        known_hosts_.insert(peer);
      } catch (const TimeoutError&) {
        ++unreachable_;
      } catch (const NotFoundError&) {
        // Host agent lacks the host group: fine, info stays unknown.
      }
    }
  }
  return peer_routers;
}

void SnmpCollector::poll() {
  const auto poll_start = std::chrono::steady_clock::now();
  unreachable_ = 0;
  // Second-chance discovery for routers that were unreachable earlier.
  for (auto it = pending_routers_.begin(); it != pending_routers_.end();) {
    try {
      ingest_router(*it);
      known_routers_.insert(*it);
      it = pending_routers_.erase(it);
    } catch (const Error&) {
      ++unreachable_;
      ++it;
    }
  }
  for (const std::string& router : known_routers_) {
    try {
      const auto [attempted, failed] = poll_router(router);
      note_poll_result(router, attempted, failed);
      if (failed > 0) ++unreachable_;
    } catch (const Error&) {
      // Missed poll: prior history stays in place, queries widen their
      // accuracy with staleness instead of failing.
      ++unreachable_;
      note_poll_failure(router);
    }
  }
  // Host CPU load is as dynamic as link usage: refresh it every round.
  for (const std::string& host : known_hosts_) {
    try {
      poll_host(host);
    } catch (const Error&) {
      ++unreachable_;
    }
  }
  polls_counter_.inc();
  poll_duration_.observe(std::chrono::duration<double>(
                             std::chrono::steady_clock::now() - poll_start)
                             .count());
  unreachable_gauge_.set(static_cast<double>(unreachable_));
  const Seconds freshest = freshest_sample();
  if (freshest > -1e18)
    staleness_gauge_.set(std::max(0.0, transport_->now() - freshest));
}

void SnmpCollector::poll_host(const std::string& name) {
  snmp::Client client = make_client(name);
  ModelNode& hn = model_.node(name);
  hn.cpu_load = static_cast<double>(
                    client.get(snmp::oids::kHrProcessorLoad).as_integer()) /
                100.0;
}

std::pair<std::size_t, std::size_t> SnmpCollector::poll_router(
    const std::string& name) {
  snmp::Client client = make_client(name);
  // If this GET fails the whole router is unreachable this round; the
  // per-interface GETs below fail individually (partial poll).
  const std::uint32_t uptime =
      client.get(snmp::oids::kSysUpTime).as_time_ticks();
  const Seconds stamp = sample_time(uptime);

  std::size_t attempted = 0;
  std::size_t failed = 0;
  for (const auto& [key, neighbor] : if_neighbor_) {
    if (key.first != name) continue;
    ++attempted;
    const std::uint32_t if_index = key.second;
    const auto in_oid =
        kIfTableEntry.descend({snmp::oids::kIfInOctetsCol, if_index});
    const auto out_oid =
        kIfTableEntry.descend({snmp::oids::kIfOutOctetsCol, if_index});
    const auto oper_oid =
        kIfTableEntry.descend({snmp::oids::kIfOperStatusCol, if_index});
    std::vector<snmp::VarBind> values;
    try {
      values = client.get_many({in_oid, out_oid, oper_oid});
    } catch (const TimeoutError&) {
      ++failed;  // this interface keeps its old counters and history
      continue;
    } catch (const ProtocolError&) {
      ++failed;
      continue;
    }
    const std::uint32_t in_now = values[0].value.as_counter32();
    const std::uint32_t out_now = values[1].value.as_counter32();
    const bool oper_up = values[2].value.as_integer() == 1;
    bool flipped = false;
    ModelLink* link = model_.find_link(name, neighbor, &flipped);
    if (link) {
      link->up = oper_up;
      link->last_update = stamp;
    }

    CounterState& prev = counters_[key];
    if (prev.valid && uptime < prev.uptime_ticks) {
      // Uptime went backwards: the agent restarted and its counters were
      // zeroed.  The delta against pre-restart values is meaningless, so
      // re-arm the baseline and take no sample this round.
      ++implausible_deltas_;
      implausible_counter_.inc();
    } else if (prev.valid && uptime != prev.uptime_ticks) {
      const double dt =
          static_cast<double>(counter_delta(uptime, prev.uptime_ticks)) /
          100.0;
      const double in_bytes = counter_delta(in_now, prev.in_octets);
      const double out_bytes = counter_delta(out_now, prev.out_octets);
      // A polling gap longer than one wrap period is not recoverable from
      // 32-bit counters; guard against absurd rates instead of recording
      // garbage.
      const BitsPerSec in_rate = in_bytes * 8.0 / dt;
      const BitsPerSec out_rate = out_bytes * 8.0 / dt;
      // Plausibility ceiling: an interface cannot carry more than its
      // speed (margin covers rounding).  Deltas beyond it mean the
      // counter was reset or rewritten between polls, not real traffic.
      const BitsPerSec ceiling =
          link && link->capacity > 0
              ? link->capacity * options_.delta_margin
              : kCounterModulus * 8.0;  // unknown speed: wrap guard only
      if (link && in_bytes < kCounterModulus &&
          out_bytes < kCounterModulus && in_rate <= ceiling &&
          out_rate <= ceiling) {
        // Router's out direction = router -> neighbor traffic.
        Sample s;
        s.at = stamp;
        const bool router_is_a = !flipped;
        s.used_ab = router_is_a ? out_rate : in_rate;
        s.used_ba = router_is_a ? in_rate : out_rate;
        link->history.record(s);
        // Measured-utilization history series, named to line up with the
        // simulator's ground-truth "sim.link.<a>~<b>.<ab|ba>" series.
        if (obs_.series && link->capacity > 0) {
          const std::string base =
              "collector.link." + link->a + "~" + link->b;
          obs_.series->series(base + ".ab")
              .append(stamp, s.used_ab / link->capacity);
          obs_.series->series(base + ".ba")
              .append(stamp, s.used_ba / link->capacity);
        }
      } else {
        ++implausible_deltas_;
        implausible_counter_.inc();
      }
    }
    prev.in_octets = in_now;
    prev.out_octets = out_now;
    prev.uptime_ticks = uptime;
    prev.valid = true;
  }
  return {attempted, failed};
}

}  // namespace remos::collector
