// SNMP-based collector (the paper's primary Collector).
//
// Discovery: starting from seed router addresses, walks each agent's
// system group, ifTable and Remos neighbor table, inserting nodes and
// links; newly met routers are visited transitively (breadth-first), so a
// single seed suffices on a connected management domain.  Hosts found in
// neighbor tables are recorded but not required to run agents; if a host
// agent answers, its CPU/memory group is read too.
//
// Polling: reads sysUpTime and ifIn/ifOutOctets from every known router,
// differences the Counter32 values against the previous poll (modulo 2^32,
// surviving counter wrap), and records per-direction utilization samples
// into the model's link histories.  Rates are computed against the agent's
// own uptime clock, so collector-side scheduling jitter does not corrupt
// the estimates.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "collector/collector.hpp"
#include "snmp/client.hpp"
#include "snmp/transport.hpp"

namespace remos::collector {

class SnmpCollector : public Collector {
 public:
  struct Options {
    std::string community = "public";
    /// Also query host agents met during discovery (CPU/memory info).
    bool query_hosts = true;
  };

  /// `seed_routers` are node names (addresses derive via agent_address).
  SnmpCollector(snmp::Transport& transport,
                std::vector<std::string> seed_routers, Options options);
  SnmpCollector(snmp::Transport& transport,
                std::vector<std::string> seed_routers)
      : SnmpCollector(transport, std::move(seed_routers), Options{}) {}

  void discover() override;
  void poll() override;

  /// Number of agents that failed to answer during the last operation.
  std::size_t unreachable_agents() const { return unreachable_; }

 private:
  struct CounterState {
    std::uint32_t in_octets = 0;
    std::uint32_t out_octets = 0;
    std::uint32_t uptime_ticks = 0;
    bool valid = false;
  };

  /// Reads one router's tables into the model; returns neighbor routers.
  std::vector<std::string> ingest_router(const std::string& name);
  void poll_router(const std::string& name);

  void poll_host(const std::string& name);

  snmp::Transport* transport_;
  std::vector<std::string> seeds_;
  Options options_;
  std::set<std::string> known_routers_;
  std::set<std::string> pending_routers_;  // unreachable so far; retried
  std::set<std::string> known_hosts_;      // hosts with responding agents
  // (router, ifIndex) -> previous counters.
  std::map<std::pair<std::string, std::uint32_t>, CounterState> counters_;
  // (router, ifIndex) -> neighbor name (fixed at discovery).
  std::map<std::pair<std::string, std::uint32_t>, std::string> if_neighbor_;
  std::size_t unreachable_ = 0;
};

}  // namespace remos::collector
