// SNMP-based collector (the paper's primary Collector).
//
// Discovery: starting from seed router addresses, walks each agent's
// system group, ifTable and Remos neighbor table, inserting nodes and
// links; newly met routers are visited transitively (breadth-first), so a
// single seed suffices on a connected management domain.  Hosts found in
// neighbor tables are recorded but not required to run agents; if a host
// agent answers, its CPU/memory group is read too.
//
// Polling: reads sysUpTime and ifIn/ifOutOctets from every known router,
// differences the Counter32 values against the previous poll (modulo 2^32,
// surviving counter wrap), and records per-direction utilization samples
// into the model's link histories.  Rates are computed against the agent's
// own uptime clock, so collector-side scheduling jitter does not corrupt
// the estimates.
//
// Degradation: poll() never throws.  Each router carries a health state
// machine (healthy -> degraded -> unreachable, recovering on the first
// clean poll); a poll that loses some interfaces keeps the rest (partial
// poll), and a poll that fails outright leaves prior history in place --
// queries then answer from stale data with widened accuracy instead of
// erroring (paper §4.4).  Counter deltas that imply rates beyond the
// interface's plausible ceiling (agent reboot, counter reset, replayed
// values) are discarded and the baseline re-armed.  A shared per-agent
// circuit breaker caps the datagram cost of a dead router at O(1) per
// poll cycle.
#pragma once

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "collector/collector.hpp"
#include "obs/obs.hpp"
#include "snmp/client.hpp"
#include "snmp/transport.hpp"

namespace remos::collector {

/// Per-router agent health as seen by the collector (shared vocabulary;
/// see obs/status.hpp).
using AgentHealth = obs::AgentHealth;

inline const char* to_string(AgentHealth h) { return obs::to_string(h); }

/// One edge of a router's health state machine, for audit and display.
struct HealthTransition {
  Seconds at = 0;  // transport clock
  std::string router;
  AgentHealth from = AgentHealth::kHealthy;
  AgentHealth to = AgentHealth::kHealthy;
};

class SnmpCollector : public Collector {
 public:
  struct Options {
    std::string community = "public";
    /// Also query host agents met during discovery (CPU/memory info).
    bool query_hosts = true;
    /// Per-exchange retry/timeout policy for every client this collector
    /// creates.
    snmp::Client::Config client;
    /// Circuit-breaker policy shared by all of this collector's clients.
    snmp::BreakerBoard::Options breaker;
    /// Consecutive fully-failed polls before a router is declared
    /// unreachable (one failed poll only degrades it).
    int unreachable_after = 3;
    /// Counter deltas implying a rate above capacity * delta_margin are
    /// discarded as counter glitches (reset, reboot, replay) instead of
    /// being recorded as absurd utilization samples.
    double delta_margin = 1.5;
  };

  /// `seed_routers` are node names (addresses derive via agent_address).
  SnmpCollector(snmp::Transport& transport,
                std::vector<std::string> seed_routers, Options options);
  SnmpCollector(snmp::Transport& transport,
                std::vector<std::string> seed_routers)
      : SnmpCollector(transport, std::move(seed_routers), Options{}) {}

  void discover() override;
  void poll() override;
  bool healthy() const override;

  /// Number of agents that failed to answer during the last operation.
  std::size_t unreachable_agents() const { return unreachable_; }

  /// Current health of one router (healthy if never polled).
  AgentHealth health(const std::string& router) const;

  /// Every health transition observed so far, in order.
  const std::vector<HealthTransition>& health_log() const {
    return health_log_;
  }

  /// The shared circuit-breaker state (for audit in tests/examples).
  const snmp::BreakerBoard& breakers() const { return breakers_; }

  /// Counter samples discarded as implausible since construction.
  std::uint64_t implausible_deltas() const { return implausible_deltas_; }

  /// Wires metrics and flight-recorder events into this collector, its
  /// breaker board and every SNMP client it creates: poll duration and
  /// partial-poll counters, a per-router health gauge, model staleness,
  /// and health-transition events.  Call before polling starts.
  void set_obs(const obs::Obs& o);

 private:
  struct CounterState {
    std::uint32_t in_octets = 0;
    std::uint32_t out_octets = 0;
    std::uint32_t uptime_ticks = 0;
    bool valid = false;
  };

  struct RouterState {
    AgentHealth health = AgentHealth::kHealthy;
    int consecutive_failures = 0;
    Seconds last_success = -1;
  };

  snmp::Client make_client(const std::string& node);
  /// Lazily-resolved per-router health gauge (no-op without a registry).
  obs::Gauge& health_gauge(const std::string& router);
  /// Collector-side timestamp for samples taken with agent uptime
  /// `uptime_ticks`: the transport clock when one is wired (immune to
  /// agent reboots), else the agent's own uptime.
  Seconds sample_time(std::uint32_t uptime_ticks) const;
  void set_health(const std::string& router, AgentHealth to);
  void note_poll_result(const std::string& router, std::size_t attempted,
                        std::size_t failed);
  void note_poll_failure(const std::string& router);

  /// Reads one router's tables into the model; returns neighbor routers.
  std::vector<std::string> ingest_router(const std::string& name);
  /// Polls one router's interfaces; per-interface failures are tolerated
  /// (partial poll).  Returns {attempted, failed} interface counts;
  /// throws only when the router answers nothing at all.
  std::pair<std::size_t, std::size_t> poll_router(const std::string& name);

  void poll_host(const std::string& name);

  snmp::Transport* transport_;
  std::vector<std::string> seeds_;
  Options options_;
  snmp::BreakerBoard breakers_;
  std::set<std::string> known_routers_;
  std::set<std::string> pending_routers_;  // unreachable so far; retried
  std::set<std::string> known_hosts_;      // hosts with responding agents
  // (router, ifIndex) -> previous counters.
  std::map<std::pair<std::string, std::uint32_t>, CounterState> counters_;
  // (router, ifIndex) -> neighbor name (fixed at discovery).
  std::map<std::pair<std::string, std::uint32_t>, std::string> if_neighbor_;
  std::map<std::string, RouterState> router_state_;
  std::vector<HealthTransition> health_log_;
  std::size_t unreachable_ = 0;
  std::uint64_t implausible_deltas_ = 0;

  // Observability (no-op sinks until set_obs).
  obs::Obs obs_;
  snmp::ClientObs client_obs_;
  obs::Counter polls_counter_;
  obs::Counter partial_polls_counter_;
  obs::Counter poll_failures_counter_;
  obs::Counter implausible_counter_;
  obs::Histogram poll_duration_;
  obs::Gauge unreachable_gauge_;
  obs::Gauge staleness_gauge_;
  std::map<std::string, obs::Gauge> health_gauges_;
};

}  // namespace remos::collector
