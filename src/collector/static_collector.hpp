// A collector that serves a fixed, hand-authored NetworkModel.
//
// Useful wherever the Modeler should answer from a known model rather
// than live measurement: unit tests, didactic examples (the paper's
// Figure 1), and environments where topology/usage comes from a file or
// an external system instead of SNMP.
#pragma once

#include "collector/collector.hpp"

namespace remos::collector {

class StaticCollector : public Collector {
 public:
  explicit StaticCollector(NetworkModel model) { model_ = std::move(model); }

  void discover() override {}
  void poll() override {}

  /// Replaces the served model.
  void set_model(NetworkModel model) { model_ = std::move(model); }
};

}  // namespace remos::collector
