// Flow-based queries (paper §4.2).
//
// A flow is an application-level connection between a pair of compute
// nodes.  One query names up to three classes of flows:
//   fixed       -- each needs a specific bandwidth (admission question);
//   variable    -- share whatever remains in proportion to their
//                  requested values (3 : 4.5 : 9 -> 1 : 1.5 : 3);
//   independent -- lower priority; told what is left over afterwards.
// A single query may name many flows at once so Remos can account for the
// *internal* sharing between an application's own flows, which per-flow
// queries would miss.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "core/timeframe.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace remos::core {

struct FlowRequest {
  std::string src;
  std::string dst;
  /// Fixed flows: required bandwidth.  Variable flows: relative demand
  /// (only ratios matter).  Independent flows: ignored.
  BitsPerSec requested = 0;
};

struct FlowResult {
  FlowRequest request;
  /// Fixed flows: whether the full request fits (at the median estimate).
  bool satisfied = false;
  /// Bandwidth this flow can expect, as quartiles over the background-
  /// traffic scenarios implied by the timeframe.
  Measurement bandwidth;
  /// One-way path latency.
  Measurement latency;
  /// False when no route exists between the endpoints.
  bool routable = true;
};

/// EXTENSION (paper §4.5 lists multicast as an unimplemented limitation):
/// a one-to-many flow with a fixed bandwidth requirement.  The flow's
/// data crosses each link of its distribution tree once, regardless of
/// receiver count -- the defining economy of multicast.
struct MulticastRequest {
  std::string src;
  std::vector<std::string> dsts;
  BitsPerSec requested = 0;
};

struct MulticastResult {
  MulticastRequest request;
  bool satisfied = false;
  /// Rate deliverable to every receiver simultaneously.
  Measurement bandwidth;
  /// Latency to the farthest receiver.
  Measurement latency;
  bool routable = true;
};

/// remos_flow_info(fixed_flows, variable_flows, independent_flow,
/// timeframe) -- the paper's general flow query, extended with multicast.
struct FlowQuery {
  std::vector<FlowRequest> fixed;
  /// Admitted with (after) the fixed class, in order.
  std::vector<MulticastRequest> multicast;
  std::vector<FlowRequest> variable;
  std::optional<FlowRequest> independent;
  Timeframe timeframe = Timeframe::current();
};

struct FlowQueryResult {
  std::vector<FlowResult> fixed;
  std::vector<MulticastResult> multicast;
  std::vector<FlowResult> variable;
  std::optional<FlowResult> independent;

  /// True when every fixed (and multicast) flow fit in full.
  bool all_fixed_satisfied() const {
    for (const FlowResult& f : fixed)
      if (!f.satisfied) return false;
    for (const MulticastResult& m : multicast)
      if (!m.satisfied) return false;
    return true;
  }
};

/// N flow queries resolved against one snapshot in one call (the batch
/// form of the paper's §4 "simultaneous queries").
///
///   kShared      the sub-queries are co-scheduled: they are solved as
///                ONE combined FlowQuery (sub-query flow lists
///                concatenated in order), so the batch's flows share the
///                network with each other exactly as the paper's
///                simultaneous-query semantics prescribe.  Requires a
///                single timeframe across the batch and admits at most
///                one independent flow in total.
///   kIndependent each sub-query is an isolated what-if: it sees the
///                measured background but NOT the other sub-queries.
///                Answers are bit-for-bit identical to N sequential
///                flow_info calls against the same snapshot; the batch
///                only amortizes the shared work (routing index, logical
///                graph builds for sub-queries naming the same
///                endpoints).
struct FlowBatchQuery {
  enum class Mode { kShared, kIndependent };
  Mode mode = Mode::kIndependent;
  std::vector<FlowQuery> queries;
};

struct FlowBatchResult {
  /// Index-aligned with FlowBatchQuery::queries.
  std::vector<FlowQueryResult> results;
  /// Index-aligned per-sub-query failure detail (independent mode): a
  /// non-empty string marks a structurally malformed sub-query whose
  /// result slot is empty; the rest of the batch still answers.  Shared
  /// mode has no per-sub isolation -- a malformed sub-query fails the
  /// whole combined solve -- so there every entry is empty.
  std::vector<std::string> errors;

  bool all_ok() const {
    for (const std::string& e : errors)
      if (!e.empty()) return false;
    return true;
  }
};

}  // namespace remos::core
