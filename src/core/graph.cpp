#include "core/graph.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <sstream>
#include <tuple>

#include "util/error.hpp"

namespace remos::core {

namespace {

/// capacity - used, element-wise on quartiles, clamped at zero.  Note the
/// quartile flip: high usage means low availability.
Measurement availability(const Measurement& capacity,
                         const Measurement& used) {
  if (!used.known()) return capacity;
  Measurement out;
  const double cap = capacity.mean;  // capacity is exact in practice
  out.quartiles.min = std::max(0.0, cap - used.quartiles.max);
  out.quartiles.q1 = std::max(0.0, cap - used.quartiles.q3);
  out.quartiles.median = std::max(0.0, cap - used.quartiles.median);
  out.quartiles.q3 = std::max(0.0, cap - used.quartiles.q1);
  out.quartiles.max = std::max(0.0, cap - used.quartiles.min);
  out.mean = std::max(0.0, cap - used.mean);
  out.samples = used.samples;
  out.accuracy = std::min(capacity.accuracy, used.accuracy);
  return out;
}

}  // namespace

Measurement GraphLink::available_ab() const {
  return availability(capacity, used_ab);
}

Measurement GraphLink::available_ba() const {
  return availability(capacity, used_ba);
}

Measurement GraphLink::available_from(const std::string& from) const {
  if (from == a) return available_ab();
  if (from == b) return available_ba();
  throw InvalidArgument("available_from: " + from + " not an endpoint");
}

GraphNode& NetworkGraph::add_node(GraphNode node) {
  if (node.name.empty()) throw InvalidArgument("add_node: empty name");
  auto [it, inserted] = nodes_.emplace(node.name, std::move(node));
  if (!inserted)
    throw InvalidArgument("add_node: duplicate node " + it->first);
  return it->second;
}

GraphLink& NetworkGraph::add_link(GraphLink link) {
  if (!has_node(link.a) || !has_node(link.b))
    throw InvalidArgument("add_link: unknown endpoint");
  if (link.a == link.b) throw InvalidArgument("add_link: self-loop");
  if (find_link(link.a, link.b))
    throw InvalidArgument("add_link: duplicate link");
  links_.push_back(std::move(link));
  adjacency_valid_ = false;
  return links_.back();
}

const std::map<std::string, std::vector<std::size_t>>&
NetworkGraph::adjacency() const {
  if (!adjacency_valid_) {
    adjacency_.clear();
    for (const auto& [name, node] : nodes_) adjacency_[name];
    for (std::size_t i = 0; i < links_.size(); ++i) {
      adjacency_[links_[i].a].push_back(i);
      adjacency_[links_[i].b].push_back(i);
    }
    adjacency_valid_ = true;
  }
  return adjacency_;
}

bool NetworkGraph::has_node(const std::string& name) const {
  return nodes_.contains(name);
}

const GraphNode& NetworkGraph::node(const std::string& name) const {
  const auto it = nodes_.find(name);
  if (it == nodes_.end())
    throw NotFoundError("NetworkGraph: unknown node " + name);
  return it->second;
}

const GraphLink* NetworkGraph::find_link(const std::string& a,
                                         const std::string& b,
                                         bool* flipped) const {
  for (const GraphLink& l : links_) {
    if (l.a == a && l.b == b) {
      if (flipped) *flipped = false;
      return &l;
    }
    if (l.a == b && l.b == a) {
      if (flipped) *flipped = true;
      return &l;
    }
  }
  return nullptr;
}

std::vector<std::string> NetworkGraph::neighbors(
    const std::string& name) const {
  std::vector<std::string> out;
  for (const GraphLink& l : links_) {
    if (l.a == name) out.push_back(l.b);
    if (l.b == name) out.push_back(l.a);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::optional<GraphPath> RouteTree::path_to(const std::string& dst) const {
  if (dst == src_) return GraphPath{{src_}, {}};
  if (!parent_.contains(dst)) return std::nullopt;
  GraphPath path;
  std::string cur = dst;
  while (cur != src_) {
    const Hop& hop = parent_.at(cur);
    path.nodes.push_back(cur);
    path.link_indices.push_back(hop.prev_link);
    cur = hop.prev_node;
  }
  path.nodes.push_back(src_);
  std::reverse(path.nodes.begin(), path.nodes.end());
  std::reverse(path.link_indices.begin(), path.link_indices.end());
  return path;
}

RouteTree NetworkGraph::routes_from(const std::string& src) const {
  node(src);
  // Dijkstra on (hops, latency, name-sequence) like the substrate router.
  struct State {
    std::size_t hops = std::numeric_limits<std::size_t>::max();
    Seconds latency = std::numeric_limits<Seconds>::max();
    std::string prev_node;
    std::size_t prev_link = 0;
  };
  std::map<std::string, State> best;
  best[src] = State{0, 0, "", 0};
  using Entry = std::tuple<std::size_t, Seconds, std::string>;
  std::priority_queue<Entry, std::vector<Entry>, std::greater<>> queue;
  queue.push({0, 0, src});

  while (!queue.empty()) {
    const auto [hops, lat, name] = queue.top();
    queue.pop();
    const State& cur = best[name];
    if (hops > cur.hops || (hops == cur.hops && lat > cur.latency)) continue;
    if (name != src && node(name).is_compute) continue;  // no forwarding
    for (std::size_t li : adjacency().at(name)) {
      const GraphLink& l = links_[li];
      const std::string& next = l.a == name ? l.b : l.a;
      const std::size_t nh = hops + 1;
      const Seconds nl = lat + l.latency.quartiles.median;
      // Strict improvement only: equal-cost ties keep the first-found
      // predecessor.  The queue pops (hops, latency, name) in order and
      // adjacency lists are index-ordered, so the result is still fully
      // deterministic -- and tie re-expansion cascades (exponential on
      // ring topologies) cannot happen.
      auto it = best.find(next);
      const bool improves = it == best.end() || nh < it->second.hops ||
                            (nh == it->second.hops &&
                             nl < it->second.latency - 1e-15);
      if (improves) {
        best[next] = State{nh, nl, name, li};
        queue.push({nh, nl, next});
      }
    }
  }

  RouteTree tree;
  tree.src_ = src;
  for (const auto& [name, state] : best) {
    if (name == src) continue;
    tree.parent_.emplace(name,
                         RouteTree::Hop{state.prev_node, state.prev_link});
  }
  return tree;
}

std::optional<GraphPath> NetworkGraph::route(const std::string& src,
                                             const std::string& dst) const {
  node(dst);
  return routes_from(src).path_to(dst);
}

BitsPerSec NetworkGraph::bottleneck_available_on(
    const GraphPath& path) const {
  if (path.link_indices.empty()) return 0;
  BitsPerSec bottleneck = std::numeric_limits<BitsPerSec>::infinity();
  for (std::size_t i = 0; i < path.link_indices.size(); ++i) {
    const GraphLink& l = links_[path.link_indices[i]];
    const Measurement avail = l.available_from(path.nodes[i]);
    bottleneck = std::min(bottleneck, avail.quartiles.median);
  }
  return bottleneck;
}

Seconds NetworkGraph::path_latency_on(const GraphPath& path) const {
  Seconds total = 0;
  for (std::size_t li : path.link_indices)
    total += links_[li].latency.quartiles.median;
  return total;
}

BitsPerSec NetworkGraph::bottleneck_available(const std::string& src,
                                              const std::string& dst) const {
  const auto path = route(src, dst);
  if (!path) return 0;
  return bottleneck_available_on(*path);
}

Seconds NetworkGraph::path_latency(const std::string& src,
                                   const std::string& dst) const {
  const auto path = route(src, dst);
  if (!path) return std::numeric_limits<Seconds>::infinity();
  return path_latency_on(*path);
}

std::vector<std::string> NetworkGraph::compute_nodes() const {
  std::vector<std::string> out;
  for (const auto& [name, n] : nodes_)
    if (n.is_compute) out.push_back(name);
  return out;  // map iteration is already sorted
}

std::string NetworkGraph::to_string() const {
  std::ostringstream os;
  os << "graph: " << nodes_.size() << " nodes, " << links_.size()
     << " links\n";
  for (const auto& [name, n] : nodes_) {
    os << "  node " << name << (n.is_compute ? " [compute]" : " [network]");
    if (n.internal_bw.known())
      os << " internal_bw=" << to_mbps(n.internal_bw.quartiles.median)
         << "Mbps";
    if (n.has_host_info)
      os << " cpu=" << n.cpu_load << " mem=" << n.memory_mb << "MB";
    os << "\n";
  }
  for (const GraphLink& l : links_) {
    os << "  link " << l.a << " -- " << l.b
       << " cap=" << to_mbps(l.capacity.quartiles.median) << "Mbps"
       << " lat=" << l.latency.quartiles.median * 1e3 << "ms";
    if (l.used_ab.known())
      os << " used(ab)=" << to_mbps(l.used_ab.quartiles.median) << "Mbps"
         << " used(ba)=" << to_mbps(l.used_ba.quartiles.median) << "Mbps";
    if (l.sharing != SharingPolicy::kUnknown)
      os << " sharing=" << remos::to_string(l.sharing);
    if (!l.abstracts.empty()) {
      os << " abstracts={";
      for (std::size_t i = 0; i < l.abstracts.size(); ++i)
        os << (i ? "," : "") << l.abstracts[i];
      os << "}";
    }
    os << "\n";
  }
  return os.str();
}

}  // namespace remos::core
