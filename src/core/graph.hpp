// The network graph the Remos API returns (paper §4.3).
//
// "Remos represents the network as a graph with each edge corresponding
// to a link between nodes; nodes can be either compute nodes or network
// nodes."  This is a *logical* topology: links may summarize whole chains
// or clouds of physical equipment, and every dynamic annotation is a
// quartile Measurement for the query's timeframe.  The graph is a value
// type -- a snapshot answered to one query -- so applications can hold it
// while the network moves on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "util/sharing.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace remos::core {

struct GraphNode {
  std::string name;
  bool is_compute = true;
  /// Aggregate forwarding capacity through the node; unknown() if the
  /// network did not reveal one (then only links constrain traffic).
  Measurement internal_bw;
  /// Compute/memory info (the paper's "simple interface to computation
  /// and memory resources"); valid when has_host_info.
  bool has_host_info = false;
  double cpu_load = 0.0;
  std::uint32_t memory_mb = 0;
};

struct GraphLink {
  std::string a;
  std::string b;
  Measurement capacity;  // physical/logical capacity per direction
  Measurement latency;   // one-way
  /// Bandwidth in use by existing traffic, per direction, for the query
  /// timeframe.  available = capacity - used, clamped at 0.
  Measurement used_ab;
  Measurement used_ba;
  /// Physical network nodes hidden inside this logical link (empty for a
  /// link that exists physically).
  std::vector<std::string> abstracts;
  /// How competing flows split this link (extension; a collapsed chain of
  /// mixed policies reports kUnknown).
  SharingPolicy sharing = SharingPolicy::kUnknown;

  Measurement available_ab() const;
  Measurement available_ba() const;
  /// Available bandwidth in the direction from `from` (must be a or b).
  Measurement available_from(const std::string& from) const;
};

/// A route inside a NetworkGraph.
struct GraphPath {
  std::vector<std::string> nodes;           // src ... dst
  std::vector<std::size_t> link_indices;    // into NetworkGraph::links()
  std::size_t hops() const { return link_indices.size(); }
};

/// Shortest-path tree from one source; answers path queries to every
/// destination from a single Dijkstra run (all-pairs consumers like
/// DistanceMatrix need n trees, not n^2 routes).
class RouteTree {
 public:
  /// Route to `dst`; nullopt if unreachable.
  std::optional<GraphPath> path_to(const std::string& dst) const;
  const std::string& source() const { return src_; }

 private:
  friend class NetworkGraph;
  struct Hop {
    std::string prev_node;
    std::size_t prev_link = 0;
  };
  std::string src_;
  std::map<std::string, Hop> parent_;  // reachable nodes except src
};

class NetworkGraph {
 public:
  GraphNode& add_node(GraphNode node);
  GraphLink& add_link(GraphLink link);

  bool has_node(const std::string& name) const;
  const GraphNode& node(const std::string& name) const;
  const std::map<std::string, GraphNode>& nodes() const { return nodes_; }
  const std::vector<GraphLink>& links() const { return links_; }
  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const GraphLink* find_link(const std::string& a, const std::string& b,
                             bool* flipped = nullptr) const;
  std::vector<std::string> neighbors(const std::string& name) const;

  /// Mutable link access for clients that post-process annotations (e.g.
  /// crediting an application's own traffic back before costing).
  std::vector<GraphLink>& mutable_links() { return links_; }

  /// Mutable node access for annotation post-processing (e.g. the service
  /// cache discounting dynamic accuracies on brownout answers).  Renaming
  /// a node through this reference is undefined (the key stays put).
  std::map<std::string, GraphNode>& mutable_nodes() { return nodes_; }

  /// Fewest-hop route (ties: lower total median latency, then smaller
  /// node names); compute nodes do not forward.  nullopt if disconnected.
  std::optional<GraphPath> route(const std::string& src,
                                 const std::string& dst) const;

  /// Shortest-path tree from src (one Dijkstra; see RouteTree).
  RouteTree routes_from(const std::string& src) const;

  /// Median available bandwidth of the route's bottleneck, in the
  /// src->dst direction.  0 if unreachable.
  BitsPerSec bottleneck_available(const std::string& src,
                                  const std::string& dst) const;

  /// Sum of median link latencies along the route; +inf if unreachable.
  Seconds path_latency(const std::string& src, const std::string& dst) const;

  /// Same metrics for an already-computed path (avoids re-routing when a
  /// RouteTree is in hand).
  BitsPerSec bottleneck_available_on(const GraphPath& path) const;
  Seconds path_latency_on(const GraphPath& path) const;

  /// Compute-node names, sorted.
  std::vector<std::string> compute_nodes() const;

  /// Human-readable dump (examples and benches print this).
  std::string to_string() const;

 private:
  /// Link indices incident to each node, built lazily for route().
  const std::map<std::string, std::vector<std::size_t>>& adjacency() const;

  std::map<std::string, GraphNode> nodes_;
  std::vector<GraphLink> links_;
  mutable std::map<std::string, std::vector<std::size_t>> adjacency_;
  mutable bool adjacency_valid_ = false;
};

}  // namespace remos::core
