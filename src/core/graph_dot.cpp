#include "core/graph_dot.hpp"

#include <sstream>

#include "util/strings.hpp"

namespace remos::core {

namespace {

/// DOT identifiers: quote everything, escape embedded quotes.
std::string quoted(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
  return out + "\"";
}

}  // namespace

std::string to_dot(const NetworkGraph& graph, const std::string& title) {
  std::ostringstream os;
  os << "graph " << quoted(title) << " {\n";
  os << "  layout=neato; overlap=false; splines=true;\n";
  for (const auto& [name, node] : graph.nodes()) {
    os << "  " << quoted(name) << " [shape="
       << (node.is_compute ? "box" : "ellipse");
    if (node.has_host_info && node.cpu_load > 0)
      os << ", label=" << quoted(name + "\\ncpu " +
                                 fixed(node.cpu_load * 100, 0) + "%");
    os << "];\n";
  }
  for (const GraphLink& l : graph.links()) {
    std::string label = fixed(to_mbps(l.capacity.quartiles.median), 0) + "M";
    if (l.used_ab.known() || l.used_ba.known()) {
      const double worst = std::max(l.used_ab.quartiles.median,
                                    l.used_ba.quartiles.median);
      if (worst > 0) label += " (" + fixed(to_mbps(worst), 0) + "M used)";
    }
    label += " " + fixed(l.latency.quartiles.median * 1e3, 1) + "ms";
    if (l.sharing != SharingPolicy::kUnknown)
      label += " " + remos::to_string(l.sharing);
    os << "  " << quoted(l.a) << " -- " << quoted(l.b) << " [label="
       << quoted(label);
    if (!l.abstracts.empty()) os << ", style=dashed";
    os << "];\n";
  }
  os << "}\n";
  return os.str();
}

}  // namespace remos::core
