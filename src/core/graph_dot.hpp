// Graphviz (DOT) rendering of a Remos logical topology -- for humans:
//   ./quickstart | ... | dot -Tsvg > network.svg
//
// Compute nodes are boxes, network nodes ellipses, logical links that
// abstract hidden equipment are dashed; edges are labeled with capacity,
// median usage, latency and (when known) sharing policy.
#pragma once

#include <string>

#include "core/graph.hpp"

namespace remos::core {

std::string to_dot(const NetworkGraph& graph,
                   const std::string& title = "remos");

}  // namespace remos::core
