#include "core/logical.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "util/error.hpp"

namespace remos::core {

namespace {

using collector::ModelLink;
using collector::ModelNode;
using collector::NetworkModel;
using collector::RoutingIndex;

Measurement exactish(double v) { return Measurement::exact(v); }

}  // namespace

Measurement used_for_timeframe(const collector::LinkHistory& history,
                               const Timeframe& timeframe, Seconds now,
                               bool ab, const Predictor& predictor,
                               obs::WindowStats* window_out) {
  switch (timeframe.kind) {
    case Timeframe::Kind::kStatic:
      return Measurement{};  // no dynamic content requested
    case Timeframe::Kind::kCurrent: {
      if (history.empty()) return Measurement{};
      const collector::Sample& s = history.latest();
      return Measurement::from_samples({ab ? s.used_ab : s.used_ba});
    }
    case Timeframe::Kind::kHistory: {
      obs::WindowStats w =
          history.used_windowed(now, timeframe.window, ab);
      if (window_out) *window_out = w;
      return w.measurement;
    }
    case Timeframe::Kind::kFuture: {
      std::vector<TimedSample> series;
      for (std::size_t i = 0; i < history.size(); ++i) {
        const collector::Sample& s = history.sample(i);
        if (timeframe.window > 0 && s.at <= now - timeframe.window) continue;
        if (s.at > now) continue;
        series.push_back(TimedSample{s.at, ab ? s.used_ab : s.used_ba});
      }
      return predictor.predict(series);
    }
  }
  return Measurement{};
}

NetworkGraph build_logical_graph(const NetworkModel& model,
                                 const std::vector<std::string>& nodes,
                                 const Timeframe& timeframe, Seconds now,
                                 const Predictor& predictor,
                                 const LogicalOptions& options) {
  if (nodes.empty())
    throw InvalidArgument("build_logical_graph: empty node set");
  std::set<std::string> queried;
  for (const std::string& n : nodes) {
    model.node(n);  // throws NotFoundError if unknown
    queried.insert(n);
  }

  // 1. Relevant subgraph: union of pairwise routes, via the model's
  // cached RoutingIndex (memoized per-source BFS rows shared across
  // queries on the same snapshot; one walk per pair is O(path length)).
  std::set<std::string> keep_nodes;
  std::vector<char> keep_link(model.links().size(), 0);
  if (options.keep_all) {
    for (const auto& [name, n] : model.nodes()) keep_nodes.insert(name);
    for (std::size_t li = 0; li < model.links().size(); ++li)
      if (model.links()[li].up) keep_link[li] = 1;
  } else {
    const RoutingIndex& index = model.routing_index();
    for (const std::string& a : queried) {
      keep_nodes.insert(a);
      const std::int32_t ia = index.id_of(a);
      const RoutingIndex::Row& row = index.row_from(ia);
      for (const std::string& b : queried) {
        if (a >= b) continue;
        const std::int32_t ib = index.id_of(b);
        if (row.parent[static_cast<std::size_t>(ib)] == RoutingIndex::kNoNode)
          continue;  // unreachable pair
        // Walk b back to a; every edge on the way is relevant.
        for (std::int32_t cur = ib; cur != ia;) {
          const auto c = static_cast<std::size_t>(cur);
          keep_nodes.insert(index.name_of(cur));
          keep_link[row.via_link[c]] = 1;
          cur = row.parent[c];
        }
      }
    }
  }

  // Annotated working copies of the kept links (mutable for collapsing).
  struct WorkLink {
    std::string a, b;
    Measurement capacity, latency, used_ab, used_ba;
    std::vector<std::string> abstracts;
    SharingPolicy sharing = SharingPolicy::kUnknown;
  };
  std::vector<WorkLink> work;
  for (std::size_t li = 0; li < model.links().size(); ++li) {
    const ModelLink& l = model.links()[li];
    if (!l.up) continue;
    if (!keep_link[li]) continue;
    WorkLink w;
    w.a = l.a;
    w.b = l.b;
    w.capacity = exactish(l.capacity);
    w.latency = exactish(l.latency);
    w.used_ab = used_for_timeframe(l.history, timeframe, now, true, predictor);
    w.used_ba =
        used_for_timeframe(l.history, timeframe, now, false, predictor);
    if (options.accuracy_halflife > 0) {
      // Staleness decay: confidence halves every accuracy_halflife
      // seconds since a collector last confirmed this link.
      Seconds fresh = l.last_update;
      if (!l.history.empty())
        fresh = std::max(fresh, l.history.latest().at);
      if (fresh >= 0) {
        const Seconds age = std::max(0.0, now - fresh);
        const double factor =
            std::exp2(-age / options.accuracy_halflife);
        w.used_ab.accuracy *= factor;
        w.used_ba.accuracy *= factor;
      }
    }
    w.sharing = l.sharing;
    work.push_back(std::move(w));
  }

  // 2. Chain collapsing.
  if (options.collapse_chains) {
    bool changed = true;
    while (changed) {
      changed = false;
      // Degree count over the working link set.
      std::map<std::string, std::vector<std::size_t>> incident;
      for (std::size_t i = 0; i < work.size(); ++i) {
        incident[work[i].a].push_back(i);
        incident[work[i].b].push_back(i);
      }
      for (const auto& [name, links] : incident) {
        if (queried.contains(name)) continue;
        if (!model.node(name).is_router) continue;
        if (model.node(name).internal_bw > 0) continue;  // constraint: keep
        if (links.size() != 2) continue;
        WorkLink& l1 = work[links[0]];
        WorkLink& l2 = work[links[1]];
        const std::string x = l1.a == name ? l1.b : l1.a;
        const std::string y = l2.a == name ? l2.b : l2.a;
        if (x == y) continue;  // parallel chain; leave alone
        // Direction bookkeeping: usage seen traveling x -> name -> y.
        auto used_towards = [&](const WorkLink& l, const std::string& to) {
          return l.b == to ? l.used_ab : l.used_ba;
        };
        auto avail = [](const Measurement& cap, const Measurement& used) {
          GraphLink tmp;
          tmp.capacity = cap;
          tmp.used_ab = used;
          return tmp.available_ab();
        };
        WorkLink merged;
        merged.a = x;
        merged.b = y;
        const double cap = std::min(l1.capacity.mean, l2.capacity.mean);
        merged.capacity = exactish(cap);
        merged.latency = exactish(l1.latency.mean + l2.latency.mean);
        // Logical usage: whatever leaves the *least* availability along
        // the chain, per direction, element-wise on quartiles.
        auto merge_used = [&](const std::string& from, const std::string& to) {
          const Measurement a1 = avail(l1.capacity,
                                       used_towards(l1, from == x ? name : x));
          const Measurement a2 = avail(l2.capacity,
                                       used_towards(l2, from == x ? y : name));
          (void)to;
          if (!l1.used_ab.known() && !l2.used_ab.known() &&
              !l1.used_ba.known() && !l2.used_ba.known())
            return Measurement{};
          Measurement out;
          auto lo = [](double p, double q) { return std::min(p, q); };
          // available = min(a1, a2); used = cap - available (per quartile).
          out.quartiles.min = cap - lo(a1.quartiles.max, a2.quartiles.max);
          out.quartiles.q1 = cap - lo(a1.quartiles.q3, a2.quartiles.q3);
          out.quartiles.median =
              cap - lo(a1.quartiles.median, a2.quartiles.median);
          out.quartiles.q3 = cap - lo(a1.quartiles.q1, a2.quartiles.q1);
          out.quartiles.max = cap - lo(a1.quartiles.min, a2.quartiles.min);
          out.mean = cap - lo(a1.mean, a2.mean);
          out.samples = std::min(a1.samples, a2.samples);
          out.accuracy = std::min(a1.accuracy, a2.accuracy);
          for (double* q : {&out.quartiles.min, &out.quartiles.q1,
                            &out.quartiles.median, &out.quartiles.q3,
                            &out.quartiles.max, &out.mean})
            *q = std::max(0.0, *q);
          return out;
        };
        merged.used_ab = merge_used(x, y);
        merged.used_ba = merge_used(y, x);
        // A chain of uniform policy keeps it; a mixed chain is opaque.
        merged.sharing = l1.sharing == l2.sharing ? l1.sharing
                                                  : SharingPolicy::kUnknown;
        merged.abstracts = l1.abstracts;
        merged.abstracts.push_back(name);
        merged.abstracts.insert(merged.abstracts.end(), l2.abstracts.begin(),
                                l2.abstracts.end());
        std::sort(merged.abstracts.begin(), merged.abstracts.end());

        // A parallel link x--y may already exist; if so, keep both as
        // physical (no multigraph support) and skip this node.
        bool parallel = false;
        for (std::size_t i = 0; i < work.size(); ++i) {
          if (i == links[0] || i == links[1]) continue;
          if ((work[i].a == x && work[i].b == y) ||
              (work[i].a == y && work[i].b == x))
            parallel = true;
        }
        if (parallel) continue;

        const std::size_t i1 = std::max(links[0], links[1]);
        const std::size_t i2 = std::min(links[0], links[1]);
        work.erase(work.begin() + static_cast<long>(i1));
        work.erase(work.begin() + static_cast<long>(i2));
        work.push_back(std::move(merged));
        keep_nodes.erase(name);
        changed = true;
        break;  // restart: indices invalidated
      }
    }
  }

  // 3. Assemble the value graph.
  NetworkGraph graph;
  std::set<std::string> still_used;
  for (const WorkLink& w : work) {
    still_used.insert(w.a);
    still_used.insert(w.b);
  }
  for (const std::string& name : keep_nodes) {
    if (!still_used.contains(name) && !queried.contains(name))
      continue;  // dangling interior node after collapsing
    const ModelNode& mn = model.node(name);
    GraphNode gn;
    gn.name = name;
    gn.is_compute = !mn.is_router;
    if (mn.internal_bw > 0) gn.internal_bw = exactish(mn.internal_bw);
    gn.has_host_info = mn.has_host_info;
    gn.cpu_load = mn.cpu_load;
    gn.memory_mb = mn.memory_mb;
    graph.add_node(std::move(gn));
  }
  for (WorkLink& w : work) {
    GraphLink gl;
    gl.a = std::move(w.a);
    gl.b = std::move(w.b);
    gl.capacity = w.capacity;
    gl.latency = w.latency;
    gl.used_ab = w.used_ab;
    gl.used_ba = w.used_ba;
    gl.abstracts = std::move(w.abstracts);
    gl.sharing = w.sharing;
    graph.add_link(std::move(gl));
  }
  return graph;
}

}  // namespace remos::core
