// Logical-topology generation (paper §4.3).
//
// "The graph presented to the user is intended only to represent how the
// network behaves as seen by the user, and does not necessarily show the
// network's true physical topology."  Given the collector's model and the
// set of nodes a query names, this builder:
//   1. keeps only the subgraph relevant to connecting the queried nodes
//      (union of routes between all pairs);
//   2. annotates every element for the requested timeframe (static
//      capacities; current / windowed / predicted usage as quartile
//      Measurements);
//   3. collapses chains through unqueried degree-2 network nodes into
//      single logical links (min capacity, summed latency, element-wise
//      worst-case usage), recording the hidden equipment in
//      GraphLink::abstracts -- the paper's complex-network-as-one-link
//      abstraction.
#pragma once

#include <string>
#include <vector>

#include "collector/network_model.hpp"
#include "core/graph.hpp"
#include "core/predictor.hpp"
#include "core/timeframe.hpp"

namespace remos::core {

struct LogicalOptions {
  /// Collapse degree-2 network chains into logical links.
  bool collapse_chains = true;
  /// Keep the entire known network instead of pruning to relevance
  /// (useful for whole-network dashboards).
  bool keep_all = false;
  /// Staleness half-life: usage-measurement accuracy is multiplied by
  /// 2^(-age / halflife), where age is how long ago a collector last
  /// confirmed the link.  Data from an unreachable router thus answers
  /// queries with honestly widened accuracy instead of an error (paper
  /// §4.4 "variation in the information is reported to the application").
  /// 0 disables decay.
  Seconds accuracy_halflife = 30.0;
};

/// Builds the annotated logical graph for `nodes` at `now`.
/// Throws NotFoundError if a queried node is unknown to the model.
NetworkGraph build_logical_graph(const collector::NetworkModel& model,
                                 const std::vector<std::string>& nodes,
                                 const Timeframe& timeframe, Seconds now,
                                 const Predictor& predictor,
                                 const LogicalOptions& options);

/// Annotation helper shared with the flow solver: the "used bandwidth"
/// Measurement of one link direction for a timeframe.
///
/// kHistory windows are covered-span aware: windows longer than the raw
/// sample ring are answered from the history's rollup cascade (stitched
/// quartiles), and a window reaching beyond all retention reports the
/// effective covered span through `window_out` (when non-null) with the
/// Measurement's accuracy discounted by the coverage ratio -- a
/// long-horizon Timeframe::history query degrades honestly instead of
/// silently answering from the retained tail.
Measurement used_for_timeframe(const collector::LinkHistory& history,
                               const Timeframe& timeframe, Seconds now,
                               bool ab, const Predictor& predictor,
                               obs::WindowStats* window_out = nullptr);

}  // namespace remos::core
