#include "core/modeler.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <limits>
#include <set>

#include "netsim/maxmin.hpp"
#include "util/error.hpp"

namespace remos::core {

ModelerObs ModelerObs::resolve(const obs::Obs& o) {
  ModelerObs m;
  if (o.metrics) {
    m.graph_queries =
        o.metrics->counter("remos_modeler_graph_queries_total", {},
                           "Logical-topology queries answered");
    m.flow_queries = o.metrics->counter(
        "remos_modeler_flow_queries_total", {}, "Flow queries answered");
    m.partial_graphs = o.metrics->counter(
        "remos_modeler_partial_graphs_total", {},
        "Graph answers that dropped unknown nodes (partial results)");
    m.unroutable_flows = o.metrics->counter(
        "remos_modeler_unroutable_flows_total", {},
        "Flow results returned with routable=false");
    m.solve_duration = o.metrics->histogram(
        "remos_modeler_solve_duration_seconds",
        obs::default_time_buckets(), {},
        "Max-min scenario sweep duration per flow query");
  }
  return m;
}

Modeler::Modeler(const collector::Collector& collector)
    : single_(&collector) {}

Modeler::Modeler(const collector::CollectorSet& set) : set_(&set) {}

Modeler::Modeler(const collector::NetworkModel& snapshot)
    : snapshot_(&snapshot) {}

void Modeler::set_clock(std::function<Seconds()> clock) {
  clock_ = std::move(clock);
}

void Modeler::set_predictor(std::unique_ptr<Predictor> predictor) {
  if (!predictor) throw InvalidArgument("set_predictor: null predictor");
  predictor_ = std::move(predictor);
}

const collector::NetworkModel& Modeler::model() const {
  if (snapshot_) return *snapshot_;
  if (single_) return single_->model();
  merged_cache_ = set_->merged();
  return merged_cache_;
}

Seconds Modeler::now(const collector::NetworkModel& m) const {
  if (clock_) return clock_();
  Seconds newest = 0;
  for (const collector::ModelLink& l : m.links())
    if (!l.history.empty()) newest = std::max(newest, l.history.latest().at);
  return newest;
}

GraphResult Modeler::get_graph_result(const std::vector<std::string>& nodes,
                                      const Timeframe& timeframe,
                                      const LogicalOptions& options) const {
  GraphResult out;
  if (obs_) obs_->graph_queries.inc();
  try {
    timeframe.validate();
  } catch (const std::exception& e) {
    out.status = obs::GraphStatus::kInvalid;
    out.error = e.what();
    return out;
  }
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  const collector::NetworkModel& m = model();

  // Partition the queried names so one typo degrades the answer instead
  // of aborting it.
  std::vector<std::string> known;
  known.reserve(nodes.size());
  for (const std::string& n : nodes) {
    if (m.has_node(n))
      known.push_back(n);
    else
      out.unknown_nodes.push_back(n);
  }
  if (!nodes.empty() && known.empty()) {
    out.status = obs::GraphStatus::kUnresolved;
    return out;
  }

  {
    obs::TraceBuilder::Scoped span(trace_, "logical_build");
    try {
      out.graph = build_logical_graph(m, known, timeframe, now(m),
                                      *predictor_, options);
    } catch (const std::exception& e) {
      out.status = obs::GraphStatus::kInvalid;
      out.error = e.what();
      out.graph = NetworkGraph{};
      return out;
    }
  }
  if (!out.unknown_nodes.empty()) {
    out.status = obs::GraphStatus::kPartial;
    if (obs_) obs_->partial_graphs.inc();
  }
  return out;
}

NetworkGraph Modeler::get_graph(const std::vector<std::string>& nodes,
                                const Timeframe& timeframe,
                                const LogicalOptions& options) const {
  GraphResult r = get_graph_result(nodes, timeframe, options);
  if (r.status == obs::GraphStatus::kInvalid) throw InvalidArgument(r.error);
  if (!r.unknown_nodes.empty())
    throw NotFoundError("get_graph: unknown node " + r.unknown_nodes.front());
  return std::move(r.graph);
}

namespace {

/// A routed query flow ready for allocation.
struct RoutedFlow {
  const FlowRequest* request;
  std::vector<std::size_t> resources;  // directed link / node resources
  Seconds latency = 0;
  std::size_t min_samples = std::numeric_limits<std::size_t>::max();
  double min_accuracy = 1.0;
  bool routable = false;
};

/// Background-usage scenario index 0..4 maps to the used-bandwidth
/// quartile {min,q1,median,q3,max}; low usage = optimistic scenario.
double used_at(const Measurement& used, std::size_t scenario) {
  if (!used.known()) return 0.0;
  switch (scenario) {
    case 0: return used.quartiles.min;
    case 1: return used.quartiles.q1;
    case 2: return used.quartiles.median;
    case 3: return used.quartiles.q3;
    default: return used.quartiles.max;
  }
}

/// Validates the flow structure and collects the endpoint set (the
/// InvalidArgument throws here are flow_info's documented contract).
std::set<std::string> flow_query_endpoints(const FlowQuery& query) {
  std::vector<const FlowRequest*> all;
  for (const FlowRequest& f : query.fixed) all.push_back(&f);
  for (const FlowRequest& f : query.variable) all.push_back(&f);
  if (query.independent) all.push_back(&*query.independent);
  if (all.empty() && query.multicast.empty())
    throw InvalidArgument("flow_info: no flows in query");

  std::set<std::string> endpoint_set;
  for (const FlowRequest* f : all) {
    if (f->src == f->dst)
      throw InvalidArgument("flow_info: src == dst for " + f->src);
    endpoint_set.insert(f->src);
    endpoint_set.insert(f->dst);
  }
  for (const MulticastRequest& m : query.multicast) {
    if (m.dsts.empty())
      throw InvalidArgument("flow_info: multicast without receivers");
    endpoint_set.insert(m.src);
    for (const std::string& d : m.dsts) {
      if (d == m.src)
        throw InvalidArgument("flow_info: multicast src == dst for " +
                              m.src);
      endpoint_set.insert(d);
    }
  }
  return endpoint_set;
}

/// Fingerprint of what determines a flow query's logical graph: the
/// timeframe and the known endpoint set (already sorted by std::set).
/// Independent-mode batch sub-queries with equal keys share one build.
std::string graph_group_key(const Timeframe& tf,
                            const std::set<std::string>& known) {
  std::string key = std::to_string(static_cast<int>(tf.kind)) + ':' +
                    std::to_string(tf.window) + ':' +
                    std::to_string(tf.horizon);
  for (const std::string& e : known) {
    key += '\x1f';
    key += e;
  }
  return key;
}

}  // namespace

NetworkGraph Modeler::build_flow_graph(const collector::NetworkModel& m,
                                       const std::set<std::string>& known,
                                       const Timeframe& timeframe) const {
  // The embedded topology lookup counts as a graph query of its own.
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  obs::TraceBuilder::Scoped span(trace_, "logical_build");
  NetworkGraph graph;
  const std::vector<std::string> endpoints(known.begin(), known.end());
  if (!endpoints.empty())
    graph = build_logical_graph(m, endpoints, timeframe, now(m),
                                *predictor_, LogicalOptions{});
  return graph;
}

FlowQueryResult Modeler::flow_info(const FlowQuery& query) const {
  query.timeframe.validate();
  queries_answered_.fetch_add(1, std::memory_order_relaxed);
  if (obs_) obs_->flow_queries.inc();
  // Endpoint set -> logical graph for the query's timeframe.  Endpoints
  // the model does not know make their flows structured routable=false
  // results instead of a NotFoundError escaping the query API
  // mid-session; the logical graph is built over the known names.
  const std::set<std::string> endpoint_set = flow_query_endpoints(query);
  const collector::NetworkModel& m = model();
  std::set<std::string> known;
  for (const std::string& e : endpoint_set)
    if (m.has_node(e)) known.insert(e);
  const NetworkGraph graph = build_flow_graph(m, known, query.timeframe);
  std::map<std::string, RouteTree> route_trees;
  return solve_on_graph(query, graph, known, route_trees);
}

FlowQueryResult Modeler::solve_on_graph(
    const FlowQuery& query, const NetworkGraph& graph,
    const std::set<std::string>& known,
    std::map<std::string, RouteTree>& route_trees) const {
  std::vector<const FlowRequest*> all;
  for (const FlowRequest& f : query.fixed) all.push_back(&f);
  for (const FlowRequest& f : query.variable) all.push_back(&f);
  if (query.independent) all.push_back(&*query.independent);
  const auto resolvable = [&](const FlowRequest& f) {
    return known.contains(f.src) && known.contains(f.dst);
  };

  // Resource table over the logical graph: two directed resources per
  // link, then one per node with a known internal bandwidth.
  const std::size_t nl = graph.links().size();
  std::vector<const Measurement*> dir_used(2 * nl);
  std::vector<double> dir_capacity(2 * nl);
  for (std::size_t i = 0; i < nl; ++i) {
    const GraphLink& l = graph.links()[i];
    dir_capacity[2 * i] = l.capacity.mean;
    dir_capacity[2 * i + 1] = l.capacity.mean;
    dir_used[2 * i] = &l.used_ab;
    dir_used[2 * i + 1] = &l.used_ba;
  }
  std::vector<std::string> constrained_nodes;
  std::vector<double> node_capacity;
  for (const auto& [name, n] : graph.nodes()) {
    if (n.internal_bw.known()) {
      constrained_nodes.push_back(name);
      node_capacity.push_back(n.internal_bw.mean);
    }
  }

  // Route every flow once.  Flows sharing a source (the common case in
  // collective-communication queries) share one Dijkstra: RouteTrees are
  // memoized per distinct source instead of re-run per flow.
  const std::size_t route_span =
      trace_ ? trace_->open("route_resolution") : 0;
  const auto tree_for = [&](const std::string& src) -> const RouteTree& {
    auto it = route_trees.find(src);
    if (it == route_trees.end())
      it = route_trees.emplace(src, graph.routes_from(src)).first;
    return it->second;
  };
  std::vector<RoutedFlow> routed(all.size());
  for (std::size_t i = 0; i < all.size(); ++i) {
    RoutedFlow& rf = routed[i];
    rf.request = all[i];
    if (!resolvable(*all[i])) continue;  // unknown endpoint: unroutable
    const auto path = tree_for(all[i]->src).path_to(all[i]->dst);
    if (!path) continue;
    rf.routable = true;
    for (std::size_t k = 0; k < path->link_indices.size(); ++k) {
      const std::size_t li = path->link_indices[k];
      const GraphLink& l = graph.links()[li];
      const bool forward = path->nodes[k] == l.a;
      rf.resources.push_back(2 * li + (forward ? 0 : 1));
      rf.latency += l.latency.quartiles.median;
      const Measurement& used = forward ? l.used_ab : l.used_ba;
      if (used.known()) {
        rf.min_samples = std::min(rf.min_samples, used.samples);
        rf.min_accuracy = std::min(rf.min_accuracy, used.accuracy);
      }
      rf.min_accuracy = std::min(rf.min_accuracy, l.capacity.accuracy);
    }
    for (const std::string& name : path->nodes) {
      const auto it = std::find(constrained_nodes.begin(),
                                constrained_nodes.end(), name);
      if (it != constrained_nodes.end())
        rf.resources.push_back(
            2 * nl + static_cast<std::size_t>(
                         it - constrained_nodes.begin()));
    }
  }

  // Route the multicast trees: the resource set is the union over the
  // per-receiver paths (each tree link charged once), latency is the
  // farthest receiver's.
  struct RoutedMulticast {
    std::vector<std::size_t> resources;
    Seconds latency = 0;
    double min_accuracy = 1.0;
    bool routable = true;
  };
  std::vector<RoutedMulticast> routed_mc(query.multicast.size());
  for (std::size_t i = 0; i < query.multicast.size(); ++i) {
    const MulticastRequest& mc = query.multicast[i];
    RoutedMulticast& rm = routed_mc[i];
    if (!known.contains(mc.src)) {
      rm.routable = false;
      continue;
    }
    for (const std::string& dst : mc.dsts)
      if (!known.contains(dst)) rm.routable = false;
    if (!rm.routable) continue;
    std::set<std::size_t> union_resources;
    const RouteTree& tree = tree_for(mc.src);
    for (const std::string& dst : mc.dsts) {
      const auto path = tree.path_to(dst);
      if (!path) {
        rm.routable = false;
        break;
      }
      Seconds leaf_latency = 0;
      for (std::size_t k = 0; k < path->link_indices.size(); ++k) {
        const std::size_t li = path->link_indices[k];
        const GraphLink& l = graph.links()[li];
        const bool forward = path->nodes[k] == l.a;
        union_resources.insert(2 * li + (forward ? 0 : 1));
        leaf_latency += l.latency.quartiles.median;
        const Measurement& used = forward ? l.used_ab : l.used_ba;
        if (used.known())
          rm.min_accuracy = std::min(rm.min_accuracy, used.accuracy);
      }
      rm.latency = std::max(rm.latency, leaf_latency);
      for (const std::string& name : path->nodes) {
        const auto it = std::find(constrained_nodes.begin(),
                                  constrained_nodes.end(), name);
        if (it != constrained_nodes.end())
          union_resources.insert(
              2 * nl + static_cast<std::size_t>(
                           it - constrained_nodes.begin()));
      }
    }
    rm.resources.assign(union_resources.begin(), union_resources.end());
  }
  if (trace_) trace_->close(route_span);

  // Evaluate the staged allocation under each background scenario.
  const std::size_t solve_span =
      trace_ ? trace_->open("maxmin_solve") : 0;
  const auto solve_t0 = std::chrono::steady_clock::now();
  constexpr std::size_t kScenarios = 5;
  std::vector<std::array<double, kScenarios>> grants(
      all.size(), std::array<double, kScenarios>{});
  std::vector<bool> satisfied_median(all.size(), false);
  std::vector<std::array<double, kScenarios>> mc_grants(
      query.multicast.size(), std::array<double, kScenarios>{});
  std::vector<bool> mc_satisfied(query.multicast.size(), false);

  for (std::size_t s = 0; s < kScenarios; ++s) {
    std::vector<double> residual(2 * nl + constrained_nodes.size());
    for (std::size_t r = 0; r < 2 * nl; ++r)
      residual[r] =
          std::max(0.0, dir_capacity[r] - used_at(*dir_used[r], s));
    for (std::size_t k = 0; k < constrained_nodes.size(); ++k)
      residual[2 * nl + k] = node_capacity[k];

    // Stage 1: fixed flows, in query order (first come, first admitted).
    for (std::size_t i = 0; i < query.fixed.size(); ++i) {
      RoutedFlow& rf = routed[i];
      if (!rf.routable) continue;
      double bottleneck = std::numeric_limits<double>::infinity();
      for (std::size_t r : rf.resources)
        bottleneck = std::min(bottleneck, residual[r]);
      const double grant = std::min(rf.request->requested, bottleneck);
      grants[i][s] = grant;
      for (std::size_t r : rf.resources) residual[r] -= grant;
      if (s == 2)
        satisfied_median[i] = grant >= rf.request->requested * (1 - 1e-9);
    }

    // Stage 1b: multicast trees, admitted after the unicast fixed class.
    for (std::size_t i = 0; i < query.multicast.size(); ++i) {
      RoutedMulticast& rm = routed_mc[i];
      if (!rm.routable) continue;
      double bottleneck = std::numeric_limits<double>::infinity();
      for (std::size_t r : rm.resources)
        bottleneck = std::min(bottleneck, residual[r]);
      const double grant =
          std::min(query.multicast[i].requested, bottleneck);
      mc_grants[i][s] = grant;
      for (std::size_t r : rm.resources) residual[r] -= grant;
      if (s == 2)
        mc_satisfied[i] =
            grant >= query.multicast[i].requested * (1 - 1e-9);
    }

    // Stage 2: variable flows, weighted max-min on the residual.
    if (!query.variable.empty()) {
      std::vector<netsim::MaxMinFlow> specs;
      std::vector<std::size_t> index;  // into routed/grants
      for (std::size_t i = 0; i < query.variable.size(); ++i) {
        const std::size_t gi = query.fixed.size() + i;
        if (!routed[gi].routable) continue;
        netsim::MaxMinFlow spec;
        spec.resources = routed[gi].resources;
        spec.weight = std::max(routed[gi].request->requested, 1e-9);
        specs.push_back(std::move(spec));
        index.push_back(gi);
      }
      if (!specs.empty()) {
        const auto result = netsim::max_min_allocate(residual, specs);
        for (std::size_t k = 0; k < index.size(); ++k) {
          grants[index[k]][s] = result.rates[k];
          if (s == 2) satisfied_median[index[k]] = true;
        }
        residual = result.residual;
      }
    }

    // Stage 3: the independent flow absorbs the leftover bottleneck.
    if (query.independent) {
      const std::size_t gi = all.size() - 1;
      RoutedFlow& rf = routed[gi];
      if (rf.routable) {
        double bottleneck = std::numeric_limits<double>::infinity();
        for (std::size_t r : rf.resources)
          bottleneck = std::min(bottleneck, residual[r]);
        grants[gi][s] = rf.resources.empty() ? 0.0 : bottleneck;
        if (s == 2) satisfied_median[gi] = true;
      }
    }
  }

  if (obs_)
    obs_->solve_duration.observe(
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      solve_t0)
            .count());
  if (trace_) trace_->close(solve_span);

  // Assemble results: quartiles across scenarios (scenario 0 = least
  // background usage = highest grant, so reverse into ascending order).
  obs::TraceBuilder::Scoped assemble_span(trace_, "assemble");
  auto to_result = [&](std::size_t i) {
    FlowResult out;
    out.request = *all[i];
    out.routable = routed[i].routable;
    if (!routed[i].routable) {
      if (obs_) obs_->unroutable_flows.inc();
      return out;
    }
    std::vector<double> g(grants[i].begin(), grants[i].end());
    out.bandwidth = Measurement::from_samples(g);
    out.bandwidth.samples = routed[i].min_samples ==
                                    std::numeric_limits<std::size_t>::max()
                                ? 1
                                : routed[i].min_samples;
    out.bandwidth.accuracy = routed[i].min_accuracy;
    out.latency = Measurement::exact(routed[i].latency);
    out.satisfied = satisfied_median[i];
    return out;
  };

  FlowQueryResult result;
  for (std::size_t i = 0; i < query.fixed.size(); ++i)
    result.fixed.push_back(to_result(i));
  for (std::size_t i = 0; i < query.multicast.size(); ++i) {
    MulticastResult out;
    out.request = query.multicast[i];
    out.routable = routed_mc[i].routable;
    if (!out.routable && obs_) obs_->unroutable_flows.inc();
    if (out.routable) {
      std::vector<double> g(mc_grants[i].begin(), mc_grants[i].end());
      out.bandwidth = Measurement::from_samples(g);
      out.bandwidth.accuracy = routed_mc[i].min_accuracy;
      out.latency = Measurement::exact(routed_mc[i].latency);
      out.satisfied = mc_satisfied[i];
    }
    result.multicast.push_back(std::move(out));
  }
  for (std::size_t i = 0; i < query.variable.size(); ++i)
    result.variable.push_back(to_result(query.fixed.size() + i));
  if (query.independent) result.independent = to_result(all.size() - 1);
  return result;
}

FlowBatchResult Modeler::flow_info_batch(const FlowBatchQuery& batch) const {
  if (batch.queries.empty())
    throw InvalidArgument("flow_info_batch: empty batch");
  FlowBatchResult out;
  out.results.resize(batch.queries.size());
  out.errors.resize(batch.queries.size());

  if (batch.mode == FlowBatchQuery::Mode::kShared) {
    // Co-scheduled: the batch IS one combined simultaneous query (paper
    // §4), so one staged max-min sweep prices every sub-query's flows
    // against each other.  The combined query has a single timeframe and
    // at most one independent flow; anything else is a contradiction in
    // the sharing semantics, not an answerable question.
    const Timeframe& tf = batch.queries.front().timeframe;
    std::size_t independents = 0;
    for (const FlowQuery& q : batch.queries) {
      if (q.timeframe.kind != tf.kind || q.timeframe.window != tf.window ||
          q.timeframe.horizon != tf.horizon)
        throw InvalidArgument(
            "flow_info_batch: shared batch requires one timeframe");
      if (q.independent) ++independents;
    }
    if (independents > 1)
      throw InvalidArgument(
          "flow_info_batch: shared batch admits at most one independent "
          "flow");

    FlowQuery combined;
    combined.timeframe = tf;
    for (const FlowQuery& q : batch.queries) {
      combined.fixed.insert(combined.fixed.end(), q.fixed.begin(),
                            q.fixed.end());
      combined.multicast.insert(combined.multicast.end(),
                                q.multicast.begin(), q.multicast.end());
      combined.variable.insert(combined.variable.end(), q.variable.begin(),
                               q.variable.end());
      if (q.independent) combined.independent = q.independent;
    }
    const FlowQueryResult cr = flow_info(combined);

    // Scatter the combined answer back by sub-query offsets.
    std::size_t fi = 0, mi = 0, vi = 0;
    for (std::size_t i = 0; i < batch.queries.size(); ++i) {
      const FlowQuery& q = batch.queries[i];
      FlowQueryResult& r = out.results[i];
      r.fixed.assign(cr.fixed.begin() + static_cast<std::ptrdiff_t>(fi),
                     cr.fixed.begin() +
                         static_cast<std::ptrdiff_t>(fi + q.fixed.size()));
      r.multicast.assign(
          cr.multicast.begin() + static_cast<std::ptrdiff_t>(mi),
          cr.multicast.begin() +
              static_cast<std::ptrdiff_t>(mi + q.multicast.size()));
      r.variable.assign(
          cr.variable.begin() + static_cast<std::ptrdiff_t>(vi),
          cr.variable.begin() +
              static_cast<std::ptrdiff_t>(vi + q.variable.size()));
      if (q.independent) r.independent = cr.independent;
      fi += q.fixed.size();
      mi += q.multicast.size();
      vi += q.variable.size();
    }
    return out;
  }

  // Independent mode: each sub-query is answered exactly as a lone
  // flow_info call would answer it (same validation, same known-endpoint
  // graph, same staged sweep), but sub-queries naming the same
  // (endpoint set, timeframe) share one logical-graph build and one
  // route-tree memo -- the graphs are pure functions of that key, so
  // sharing is bit-for-bit invisible in the results.
  struct Group {
    NetworkGraph graph;
    std::map<std::string, RouteTree> route_trees;
    bool built = false;
  };
  std::map<std::string, Group> groups;
  const collector::NetworkModel& m = model();
  for (std::size_t i = 0; i < batch.queries.size(); ++i) {
    const FlowQuery& q = batch.queries[i];
    try {
      q.timeframe.validate();
      queries_answered_.fetch_add(1, std::memory_order_relaxed);
      if (obs_) obs_->flow_queries.inc();
      const std::set<std::string> endpoint_set = flow_query_endpoints(q);
      std::set<std::string> known;
      for (const std::string& e : endpoint_set)
        if (m.has_node(e)) known.insert(e);
      Group& g = groups[graph_group_key(q.timeframe, known)];
      if (!g.built) {
        g.graph = build_flow_graph(m, known, q.timeframe);
        g.built = true;
      }
      out.results[i] = solve_on_graph(q, g.graph, known, g.route_trees);
    } catch (const std::exception& e) {
      out.errors[i] = e.what();
    }
  }
  return out;
}

}  // namespace remos::core
