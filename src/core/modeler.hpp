// The Remos Modeler (paper §5): the library an application links against.
//
// "It satisfies application requests based on the information provided by
// the Collector.  The primary tasks of the modeler are: generating a
// logical topology, associating appropriate static and dynamic information
// with each of the network components, and satisfying flow requests based
// on the logical topology."
//
// The Modeler holds no measurement state of its own.  It serves from one
// of three sources:
//   - a live Collector (reads the collector's model at query time);
//   - a CollectorSet (re-merges the cooperating views at query time);
//   - an immutable NetworkModel snapshot (service mode).
// Snapshot mode is fully const and touches no shared mutable state, so
// any number of threads may query the same snapshot-backed Modeler (or
// per-thread Modelers over the same snapshot) concurrently -- this is the
// hot path of service::QueryService.  The live modes remain
// single-threaded: a query concurrent with a poll would observe torn
// collector state.
#pragma once

#include <atomic>
#include <functional>
#include <memory>

#include "collector/collector.hpp"
#include "collector/collector_set.hpp"
#include "core/flows.hpp"
#include "core/graph.hpp"
#include "core/logical.hpp"
#include "core/predictor.hpp"

namespace remos::core {

class Modeler {
 public:
  /// Serves queries from one collector's live model.
  explicit Modeler(const collector::Collector& collector);
  /// Serves queries from the merged view of cooperating collectors.
  explicit Modeler(const collector::CollectorSet& set);
  /// Serves queries from an immutable model snapshot (must outlive the
  /// Modeler).  All queries are const-correct reads of the snapshot.
  explicit Modeler(const collector::NetworkModel& snapshot);

  /// Queries are windowed relative to "now"; by default that is the
  /// newest sample timestamp in the model.  Wire the simulator clock in
  /// with set_clock for live use (or the snapshot's publication-time
  /// model clock in service mode, so staleness decay keeps advancing).
  void set_clock(std::function<Seconds()> clock);

  /// Replaces the kFuture predictor (default: EWMA 0.3).
  void set_predictor(std::unique_ptr<Predictor> predictor);

  /// remos_get_graph: the logical topology relevant to `nodes`, annotated
  /// for `timeframe`.
  NetworkGraph get_graph(const std::vector<std::string>& nodes,
                         const Timeframe& timeframe,
                         const LogicalOptions& options = {}) const;

  /// remos_flow_info: resolves a simultaneous three-class flow query
  /// against the logical topology, honoring max-min sharing between the
  /// queried flows and the measured background traffic.
  ///
  /// A flow naming a host the model does not know comes back as a
  /// structured routable=false result -- not an exception -- so one
  /// mistyped endpoint cannot kill a long-running query session.
  /// Structurally malformed queries (src == dst, empty query, degenerate
  /// timeframe) still throw InvalidArgument.
  FlowQueryResult flow_info(const FlowQuery& query) const;

  /// Number of queries answered (overhead bookkeeping for the ablation).
  std::size_t queries_answered() const {
    return queries_answered_.load(std::memory_order_relaxed);
  }

 private:
  const collector::NetworkModel& model() const;
  Seconds now(const collector::NetworkModel& m) const;

  const collector::Collector* single_ = nullptr;
  const collector::CollectorSet* set_ = nullptr;
  const collector::NetworkModel* snapshot_ = nullptr;
  mutable collector::NetworkModel merged_cache_;
  std::function<Seconds()> clock_;
  std::unique_ptr<Predictor> predictor_ = make_default_predictor();
  mutable std::atomic<std::size_t> queries_answered_{0};
};

}  // namespace remos::core
