// The Remos Modeler (paper §5): the library an application links against.
//
// "It satisfies application requests based on the information provided by
// the Collector.  The primary tasks of the modeler are: generating a
// logical topology, associating appropriate static and dynamic information
// with each of the network components, and satisfying flow requests based
// on the logical topology."
//
// The Modeler holds no measurement state of its own.  It serves from one
// of three sources:
//   - a live Collector (reads the collector's model at query time);
//   - a CollectorSet (re-merges the cooperating views at query time);
//   - an immutable NetworkModel snapshot (service mode).
// Snapshot mode is fully const and touches no shared mutable state, so
// any number of threads may query the same snapshot-backed Modeler (or
// per-thread Modelers over the same snapshot) concurrently -- this is the
// hot path of service::QueryService.  The live modes remain
// single-threaded: a query concurrent with a poll would observe torn
// collector state.
#pragma once

#include <atomic>
#include <functional>
#include <map>
#include <memory>
#include <set>

#include "collector/collector.hpp"
#include "collector/collector_set.hpp"
#include "core/flows.hpp"
#include "core/graph.hpp"
#include "core/logical.hpp"
#include "core/predictor.hpp"
#include "obs/obs.hpp"

namespace remos::core {

/// Structured outcome of a topology query (the non-throwing API).
/// Unknown endpoints no longer abort the query: the graph is built over
/// the nodes the model does know and the rest are reported by name, so
/// one mistyped host cannot kill a long-running session (mirrors
/// FlowResult::routable for flow queries).
struct GraphResult {
  obs::GraphStatus status = obs::GraphStatus::kOk;
  /// The annotated logical graph; meaningful for kOk and kPartial (and
  /// empty for kUnresolved / kInvalid).
  NetworkGraph graph;
  /// Queried nodes the model does not know, in query order.
  std::vector<std::string> unknown_nodes;
  /// Human-readable detail when status == kInvalid.
  std::string error;

  /// True when a usable graph was produced (kOk or kPartial).
  bool ok() const {
    return status == obs::GraphStatus::kOk ||
           status == obs::GraphStatus::kPartial;
  }
};

/// Pre-resolved modeler instrumentation.  Service mode creates a fresh
/// Modeler per query, so handles are resolved once by whoever owns the
/// registry (QueryService, CmuHarness) and shared by pointer -- a query
/// never touches the registry mutex.
struct ModelerObs {
  obs::Counter graph_queries;
  obs::Counter flow_queries;
  obs::Counter partial_graphs;    // graph answers with unknown nodes
  obs::Counter unroutable_flows;  // flow results with routable == false
  obs::Histogram solve_duration;  // max-min scenario sweep, seconds

  static ModelerObs resolve(const obs::Obs& o);
};

class Modeler {
 public:
  /// Serves queries from one collector's live model.
  explicit Modeler(const collector::Collector& collector);
  /// Serves queries from the merged view of cooperating collectors.
  explicit Modeler(const collector::CollectorSet& set);
  /// Serves queries from an immutable model snapshot (must outlive the
  /// Modeler).  All queries are const-correct reads of the snapshot.
  explicit Modeler(const collector::NetworkModel& snapshot);

  /// Queries are windowed relative to "now"; by default that is the
  /// newest sample timestamp in the model.  Wire the simulator clock in
  /// with set_clock for live use (or the snapshot's publication-time
  /// model clock in service mode, so staleness decay keeps advancing).
  void set_clock(std::function<Seconds()> clock);

  /// Replaces the kFuture predictor (default: EWMA 0.3).
  void set_predictor(std::unique_ptr<Predictor> predictor);

  /// Shares pre-resolved metric handles (may be nullptr to unwire; the
  /// pointee must outlive the Modeler).  Queries stay lock-free.
  void set_obs(const ModelerObs* obs) { obs_ = obs; }

  /// Attaches a per-query trace builder (nullptr = untraced).  The
  /// builder is single-threaded; set it on the Modeler answering that
  /// one query (service mode creates a Modeler per query anyway).
  void set_trace(obs::TraceBuilder* trace) { trace_ = trace; }

  /// remos_get_graph: the logical topology relevant to `nodes`, annotated
  /// for `timeframe`.  Never throws past the API boundary for bad input:
  /// unknown nodes yield kPartial (graph over the known subset) or
  /// kUnresolved (no queried node known), and a malformed timeframe
  /// yields kInvalid with the validation message.
  GraphResult get_graph_result(const std::vector<std::string>& nodes,
                               const Timeframe& timeframe,
                               const LogicalOptions& options = {}) const;

  /// Deprecated throwing form, kept for source compatibility: forwards
  /// to get_graph_result and converts kInvalid back to InvalidArgument
  /// and unknown nodes back to NotFoundError.  New code should call
  /// get_graph_result.
  NetworkGraph get_graph(const std::vector<std::string>& nodes,
                         const Timeframe& timeframe,
                         const LogicalOptions& options = {}) const;

  /// remos_flow_info: resolves a simultaneous three-class flow query
  /// against the logical topology, honoring max-min sharing between the
  /// queried flows and the measured background traffic.
  ///
  /// A flow naming a host the model does not know comes back as a
  /// structured routable=false result -- not an exception -- so one
  /// mistyped endpoint cannot kill a long-running query session.
  /// Structurally malformed queries (src == dst, empty query, degenerate
  /// timeframe) still throw InvalidArgument.
  FlowQueryResult flow_info(const FlowQuery& query) const;

  /// remos_flow_info_batch: N flow queries against this one session in
  /// one call (see core::FlowBatchQuery for the two sharing modes).
  ///
  /// Shared mode solves the batch as one combined FlowQuery -- one
  /// staged max-min sweep for all sub-queries -- and scatters the
  /// results back per sub-query; it throws InvalidArgument when the
  /// batch mixes timeframes, names more than one independent flow, or a
  /// sub-query is structurally malformed (the combined solve has no
  /// per-sub isolation).
  ///
  /// Independent mode answers each sub-query exactly as a lone
  /// flow_info call would (bit-for-bit), building each distinct
  /// (endpoint set, timeframe) logical graph once and sharing it across
  /// the sub-queries that need it.  A malformed sub-query lands in
  /// FlowBatchResult::errors instead of failing the batch.
  ///
  /// An empty batch throws InvalidArgument.
  FlowBatchResult flow_info_batch(const FlowBatchQuery& batch) const;

  /// Number of queries answered (overhead bookkeeping for the ablation).
  std::size_t queries_answered() const {
    return queries_answered_.load(std::memory_order_relaxed);
  }

 private:
  const collector::NetworkModel& model() const;
  Seconds now(const collector::NetworkModel& m) const;
  /// Logical graph over the known flow endpoints, exactly as a lone
  /// flow_info builds it (empty endpoint set -> empty graph).
  NetworkGraph build_flow_graph(const collector::NetworkModel& m,
                                const std::set<std::string>& known,
                                const Timeframe& timeframe) const;
  /// Routes and solves `query` against a pre-built logical graph --
  /// everything flow_info does after the graph build.  `route_trees`
  /// memoizes per-source route trees over `graph`; callers sharing one
  /// graph across queries may share the memo (trees depend only on the
  /// graph).
  FlowQueryResult solve_on_graph(
      const FlowQuery& query, const NetworkGraph& graph,
      const std::set<std::string>& known,
      std::map<std::string, RouteTree>& route_trees) const;

  const collector::Collector* single_ = nullptr;
  const collector::CollectorSet* set_ = nullptr;
  const collector::NetworkModel* snapshot_ = nullptr;
  mutable collector::NetworkModel merged_cache_;
  std::function<Seconds()> clock_;
  std::unique_ptr<Predictor> predictor_ = make_default_predictor();
  mutable std::atomic<std::size_t> queries_answered_{0};
  const ModelerObs* obs_ = nullptr;      // shared, pre-resolved handles
  obs::TraceBuilder* trace_ = nullptr;   // per-query, single-threaded
};

}  // namespace remos::core
