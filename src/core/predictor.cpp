#include "core/predictor.hpp"

#include <algorithm>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace remos::core {

Predictor::~Predictor() = default;

namespace {

std::vector<double> values_of(const std::vector<TimedSample>& samples) {
  std::vector<double> out;
  out.reserve(samples.size());
  for (const TimedSample& s : samples) out.push_back(s.value);
  return out;
}

/// Window dispersion around an arbitrary center: keeps honest error bars
/// even when the point forecast is not the window median.
Measurement around(double center, const std::vector<TimedSample>& samples) {
  Measurement base = Measurement::from_samples(values_of(samples));
  const double shift = center - base.quartiles.median;
  Measurement out = base;
  out.quartiles.min += shift;
  out.quartiles.q1 += shift;
  out.quartiles.median = center;
  out.quartiles.q3 += shift;
  out.quartiles.max += shift;
  out.mean = center;
  // Clamp: a bandwidth forecast cannot be negative.
  out.quartiles.min = std::max(0.0, out.quartiles.min);
  out.quartiles.q1 = std::max(out.quartiles.min, out.quartiles.q1);
  return out;
}

}  // namespace

Measurement LastValuePredictor::predict(
    const std::vector<TimedSample>& samples) const {
  if (samples.empty()) return Measurement{};
  return around(samples.back().value, samples);
}

Measurement WindowMeanPredictor::predict(
    const std::vector<TimedSample>& samples) const {
  if (samples.empty()) return Measurement{};
  return Measurement::from_samples(values_of(samples));
}

EwmaPredictor::EwmaPredictor(double alpha) : alpha_(alpha) {
  if (alpha <= 0.0 || alpha > 1.0)
    throw InvalidArgument("EwmaPredictor: alpha outside (0,1]");
}

std::string EwmaPredictor::name() const {
  return "ewma(" + fixed(alpha_, 2) + ")";
}

Measurement EwmaPredictor::predict(
    const std::vector<TimedSample>& samples) const {
  if (samples.empty()) return Measurement{};
  double state = samples.front().value;
  for (std::size_t i = 1; i < samples.size(); ++i)
    state = alpha_ * samples[i].value + (1.0 - alpha_) * state;
  return around(state, samples);
}

std::unique_ptr<Predictor> make_default_predictor() {
  return std::make_unique<EwmaPredictor>(0.3);
}

}  // namespace remos::core
