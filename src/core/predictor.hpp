// Predictors for kFuture timeframes (paper §4.4: "Remos supports ...
// prediction of expected future performance.  Initial implementations may
// ... use a simplistic model to predict future performance from current
// and historical data.").
//
// A predictor turns a window of (time, value) observations into a
// Measurement describing the expected value over a future horizon.  The
// spread of the returned quartiles reflects the dispersion of the window
// (an honest "we do not know better than history").  The predictor
// ablation bench compares these on CBR, on-off and Poisson traffic.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace remos::core {

struct TimedSample {
  Seconds at = 0;
  double value = 0;
};

class Predictor {
 public:
  virtual ~Predictor();
  virtual std::string name() const = 0;
  /// Point forecast + uncertainty for the horizon after `samples`.
  /// Empty input yields an unknown (accuracy-0) Measurement.
  virtual Measurement predict(const std::vector<TimedSample>& samples) const = 0;
};

/// Tomorrow equals today: forecast = most recent observation.
class LastValuePredictor final : public Predictor {
 public:
  std::string name() const override { return "last-value"; }
  Measurement predict(const std::vector<TimedSample>& samples) const override;
};

/// Forecast = window mean, quartiles = window quartiles.
class WindowMeanPredictor final : public Predictor {
 public:
  std::string name() const override { return "window-mean"; }
  Measurement predict(const std::vector<TimedSample>& samples) const override;
};

/// Exponentially weighted moving average with smoothing factor alpha in
/// (0, 1]; alpha -> 1 approaches last-value.
class EwmaPredictor final : public Predictor {
 public:
  explicit EwmaPredictor(double alpha);
  std::string name() const override;
  Measurement predict(const std::vector<TimedSample>& samples) const override;

 private:
  double alpha_;
};

/// The default used by the Modeler for kFuture queries.
std::unique_ptr<Predictor> make_default_predictor();

}  // namespace remos::core
