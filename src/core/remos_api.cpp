#include "core/remos_api.hpp"

namespace remos {

core::GraphResult remos_get_graph(const core::Modeler& session,
                                  const std::vector<std::string>& nodes,
                                  const core::Timeframe& timeframe) {
  return session.get_graph_result(nodes, timeframe);
}

// Defining a [[deprecated]] function is not a use; only callers warn.
void remos_get_graph(const core::Modeler& session,
                     const std::vector<std::string>& nodes,
                     core::NetworkGraph& graph,
                     const core::Timeframe& timeframe) {
  graph = session.get_graph(nodes, timeframe);
}

core::FlowQueryResult remos_flow_info(const core::Modeler& session,
                                      const core::FlowQuery& query) {
  return session.flow_info(query);
}

core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    const core::Timeframe& timeframe) {
  return remos_flow_info(session, std::move(fixed_flows),
                         std::move(variable_flows),
                         std::move(independent_flow), {}, timeframe);
}

core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    std::vector<core::MulticastRequest> multicast_flows,
    const core::Timeframe& timeframe) {
  core::FlowQuery query;
  query.fixed = std::move(fixed_flows);
  query.variable = std::move(variable_flows);
  query.independent = std::move(independent_flow);
  query.multicast = std::move(multicast_flows);
  query.timeframe = timeframe;
  return session.flow_info(query);
}

core::FlowBatchResult remos_flow_info_batch(const core::Modeler& session,
                                            const core::FlowBatchQuery& batch) {
  return session.flow_info_batch(batch);
}

}  // namespace remos
