#include "core/remos_api.hpp"

namespace remos {

void remos_get_graph(const core::Modeler& session,
                     const std::vector<std::string>& nodes,
                     core::NetworkGraph& graph,
                     const core::Timeframe& timeframe) {
  graph = session.get_graph(nodes, timeframe);
}

core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    const core::Timeframe& timeframe) {
  core::FlowQuery query;
  query.fixed = std::move(fixed_flows);
  query.variable = std::move(variable_flows);
  query.independent = std::move(independent_flow);
  query.timeframe = timeframe;
  return session.flow_info(query);
}

}  // namespace remos
