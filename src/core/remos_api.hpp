// The Remos query API in the paper's shape.
//
// The paper presents two entry points:
//
//   remos_get_graph(nodes, graph, timeframe)
//   remos_flow_info(fixed_flows, variable_flows, independent_flow,
//                   timeframe)
//
// These free functions mirror those signatures over a Modeler session
// (the paper's Modeler is "a library that can be linked with
// applications"; the session object carries the link to the collectors).
// The object-oriented Modeler interface underneath is the primary C++
// API; these wrappers exist so code written against the paper reads
// one-to-one.
//
// Facade table (every overload, one row each):
//
//   facade call                          forwards to                 notes
//   ---------------------------------    -------------------------   -----
//   remos_get_graph(s, nodes, tf)        Modeler::get_graph_result   structured; never throws for bad input
//   remos_get_graph(s, nodes, g&, tf)    Modeler::get_graph          LEGACY output-parameter form; throws; [[deprecated]]
//   remos_flow_info(s, query)            Modeler::flow_info          full FlowQuery (fixed + multicast + variable + independent)
//   remos_flow_info(s, fx, var, ind, tf) Modeler::flow_info          assembles the FlowQuery; the paper's exact signature
//   remos_flow_info(s, fx, var, ind,     Modeler::flow_info          as above, carrying the paper's multicast flow class
//                   mcast, tf)
//   remos_flow_info_batch(s, batch)      Modeler::flow_info_batch    N queries, one snapshot, one shared solve (batch plane)
//
// The structured forms never throw for bad input: unknown nodes come
// back as GraphResult::unknown_nodes / FlowResult::routable == false,
// and malformed timeframes as GraphStatus::kInvalid -- one mistyped
// endpoint cannot abort a long-running session.  The flow_info forms
// still throw InvalidArgument for structurally malformed queries
// (src == dst, empty query, degenerate timeframe), as does
// remos_flow_info_batch for a malformed batch shape (empty batch,
// shared-mode timeframe mismatch, two independent flows).
#pragma once

#include "core/modeler.hpp"

namespace remos {

/// Structured form: returns the logical topology relevant to connecting
/// `nodes`, annotated for `timeframe`, with unknown nodes reported by
/// name instead of thrown.
core::GraphResult remos_get_graph(const core::Modeler& session,
                                  const std::vector<std::string>& nodes,
                                  const core::Timeframe& timeframe);

/// Legacy output-parameter form (the paper's exact shape).  Throws
/// NotFoundError when a node is unknown and InvalidArgument on a
/// malformed timeframe -- an exception path the structured overload
/// replaced; migrate to `remos_get_graph(session, nodes, timeframe)`
/// and branch on GraphResult::status instead.
[[deprecated(
    "use the structured GraphResult overload: "
    "remos_get_graph(session, nodes, timeframe)")]]
void remos_get_graph(const core::Modeler& session,
                     const std::vector<std::string>& nodes,
                     core::NetworkGraph& graph,
                     const core::Timeframe& timeframe);

/// Full-query form: resolves an already-assembled FlowQuery (fixed,
/// variable, independent and multicast classes) against the session.
core::FlowQueryResult remos_flow_info(const core::Modeler& session,
                                      const core::FlowQuery& query);

/// Satisfies the fixed flows first, then the variable flows
/// simultaneously, and finally the independent flow.  The flow vectors
/// are filled in to the extent that the requests can be satisfied.
core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    const core::Timeframe& timeframe);

/// Multicast-carrying form: as above, with the paper's multicast flow
/// class admitted after the unicast fixed flows.
core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    std::vector<core::MulticastRequest> multicast_flows,
    const core::Timeframe& timeframe);

/// Batch form: N flow queries against one session state in one call --
/// co-scheduled (one combined max-min solve, the paper's §4 simultaneous
/// semantics across the whole batch) or independent what-ifs sharing the
/// session's routing work.  See core::FlowBatchQuery.
core::FlowBatchResult remos_flow_info_batch(const core::Modeler& session,
                                            const core::FlowBatchQuery& batch);

}  // namespace remos
