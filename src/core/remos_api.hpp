// The Remos query API in the paper's shape.
//
// The paper presents two entry points:
//
//   remos_get_graph(nodes, graph, timeframe)
//   remos_flow_info(fixed_flows, variable_flows, independent_flow,
//                   timeframe)
//
// These free functions mirror those signatures over a Modeler session
// (the paper's Modeler is "a library that can be linked with
// applications"; the session object carries the link to the collectors).
// The object-oriented Modeler interface underneath is the primary C++
// API; these wrappers exist so code written against the paper reads
// one-to-one.
#pragma once

#include "core/modeler.hpp"

namespace remos {

/// Fills `graph` with the logical topology relevant to connecting
/// `nodes`, annotated for `timeframe`.
void remos_get_graph(const core::Modeler& session,
                     const std::vector<std::string>& nodes,
                     core::NetworkGraph& graph,
                     const core::Timeframe& timeframe);

/// Satisfies the fixed flows first, then the variable flows
/// simultaneously, and finally the independent flow.  The flow vectors
/// are filled in to the extent that the requests can be satisfied.
core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    const core::Timeframe& timeframe);

}  // namespace remos
