// The Remos query API in the paper's shape.
//
// The paper presents two entry points:
//
//   remos_get_graph(nodes, graph, timeframe)
//   remos_flow_info(fixed_flows, variable_flows, independent_flow,
//                   timeframe)
//
// These free functions mirror those signatures over a Modeler session
// (the paper's Modeler is "a library that can be linked with
// applications"; the session object carries the link to the collectors).
// The object-oriented Modeler interface underneath is the primary C++
// API; these wrappers exist so code written against the paper reads
// one-to-one.
//
// Facade <-> object-oriented mapping:
//
//   remos_get_graph(session, nodes, tf)
//       -> Modeler::get_graph_result(nodes, tf)       [structured]
//   remos_get_graph(session, nodes, graph&, tf)
//       -> Modeler::get_graph(nodes, tf)              [throwing, legacy]
//   remos_flow_info(session, query)
//       -> Modeler::flow_info(query)                  [full FlowQuery]
//   remos_flow_info(session, fixed, variable, independent, tf)
//       -> Modeler::flow_info over an assembled FlowQuery
//   remos_flow_info(session, fixed, variable, independent, multicast, tf)
//       -> same, carrying the paper's multicast flow class
//
// The structured forms never throw for bad input: unknown nodes come
// back as GraphResult::unknown_nodes / FlowResult::routable == false,
// and malformed timeframes as GraphStatus::kInvalid -- one mistyped
// endpoint cannot abort a long-running session.
#pragma once

#include "core/modeler.hpp"

namespace remos {

/// Structured form: returns the logical topology relevant to connecting
/// `nodes`, annotated for `timeframe`, with unknown nodes reported by
/// name instead of thrown.
core::GraphResult remos_get_graph(const core::Modeler& session,
                                  const std::vector<std::string>& nodes,
                                  const core::Timeframe& timeframe);

/// Legacy output-parameter form (the paper's exact shape).  Throws
/// NotFoundError when a node is unknown and InvalidArgument on a
/// malformed timeframe; prefer the GraphResult overload.
void remos_get_graph(const core::Modeler& session,
                     const std::vector<std::string>& nodes,
                     core::NetworkGraph& graph,
                     const core::Timeframe& timeframe);

/// Full-query form: resolves an already-assembled FlowQuery (fixed,
/// variable, independent and multicast classes) against the session.
core::FlowQueryResult remos_flow_info(const core::Modeler& session,
                                      const core::FlowQuery& query);

/// Satisfies the fixed flows first, then the variable flows
/// simultaneously, and finally the independent flow.  The flow vectors
/// are filled in to the extent that the requests can be satisfied.
core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    const core::Timeframe& timeframe);

/// Multicast-carrying form: as above, with the paper's multicast flow
/// class admitted after the unicast fixed flows.
core::FlowQueryResult remos_flow_info(
    const core::Modeler& session, std::vector<core::FlowRequest> fixed_flows,
    std::vector<core::FlowRequest> variable_flows,
    std::optional<core::FlowRequest> independent_flow,
    std::vector<core::MulticastRequest> multicast_flows,
    const core::Timeframe& timeframe);

}  // namespace remos
