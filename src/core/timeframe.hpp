// Variable-timescale queries (paper §4.4).
//
// Every Remos query carries a timeframe selecting what the returned
// numbers mean:
//   kStatic  -- invariant physical capacities only; no dynamic content.
//   kCurrent -- most recent measurements ("timeframe = current" in the
//               paper's §7.3 call).
//   kHistory -- dynamic properties averaged/quartiled over a trailing
//               window of the given length.
//   kFuture  -- expected availability over the given horizon, produced by
//               a predictor from a trailing window of history.
//
// Timeframes are validated both at construction (the factories throw on
// degenerate durations) and at use (Modeler queries call validate(), so
// a hand-brace-initialized Timeframe cannot silently produce nonsense
// statistics from a negative window or an inverted range).
#pragma once

#include <cmath>

#include "util/error.hpp"
#include "util/units.hpp"

namespace remos::core {

struct Timeframe {
  enum class Kind { kStatic, kCurrent, kHistory, kFuture };

  Kind kind = Kind::kCurrent;
  /// History window feeding the estimate (kHistory, kFuture).
  Seconds window = 30.0;
  /// Prediction horizon (kFuture only).
  Seconds horizon = 0.0;

  static Timeframe statics() { return {Kind::kStatic, 0, 0}; }
  static Timeframe current() { return {Kind::kCurrent, 0, 0}; }
  static Timeframe history(Seconds window) {
    Timeframe t{Kind::kHistory, window, 0};
    t.validate();
    return t;
  }
  static Timeframe future(Seconds horizon, Seconds window = 30.0) {
    Timeframe t{Kind::kFuture, window, horizon};
    t.validate();
    return t;
  }

  /// Throws InvalidArgument on degenerate durations: a history or
  /// prediction window must be a positive finite length, a prediction
  /// horizon must not be negative, and no field may be NaN.
  void validate() const {
    if (std::isnan(window) || std::isnan(horizon))
      throw InvalidArgument("Timeframe: NaN duration");
    if (window < 0 || horizon < 0)
      throw InvalidArgument("Timeframe: negative duration (inverted range)");
    if (kind == Kind::kHistory || kind == Kind::kFuture) {
      if (!(window > 0) || std::isinf(window))
        throw InvalidArgument(
            "Timeframe: history window must be a positive finite length");
    }
    if (kind == Kind::kFuture && std::isinf(horizon))
      throw InvalidArgument("Timeframe: infinite prediction horizon");
  }

  bool operator==(const Timeframe&) const = default;
};

}  // namespace remos::core
