// Variable-timescale queries (paper §4.4).
//
// Every Remos query carries a timeframe selecting what the returned
// numbers mean:
//   kStatic  -- invariant physical capacities only; no dynamic content.
//   kCurrent -- most recent measurements ("timeframe = current" in the
//               paper's §7.3 call).
//   kHistory -- dynamic properties averaged/quartiled over a trailing
//               window of the given length.
//   kFuture  -- expected availability over the given horizon, produced by
//               a predictor from a trailing window of history.
#pragma once

#include "util/units.hpp"

namespace remos::core {

struct Timeframe {
  enum class Kind { kStatic, kCurrent, kHistory, kFuture };

  Kind kind = Kind::kCurrent;
  /// History window feeding the estimate (kHistory, kFuture).
  Seconds window = 30.0;
  /// Prediction horizon (kFuture only).
  Seconds horizon = 0.0;

  static Timeframe statics() { return {Kind::kStatic, 0, 0}; }
  static Timeframe current() { return {Kind::kCurrent, 0, 0}; }
  static Timeframe history(Seconds window) {
    return {Kind::kHistory, window, 0};
  }
  static Timeframe future(Seconds horizon, Seconds window = 30.0) {
    return {Kind::kFuture, window, horizon};
  }

  bool operator==(const Timeframe&) const = default;
};

}  // namespace remos::core
