#include "fx/adaptation.hpp"

#include <algorithm>
#include <set>

#include "util/error.hpp"

namespace remos::fx {

namespace {

/// used - rate on every quartile, clamped at zero; order is preserved
/// because the same shift applies to each quantile.
void credit_back(Measurement& used, BitsPerSec rate) {
  if (!used.known()) return;
  for (double* q : {&used.quartiles.min, &used.quartiles.q1,
                    &used.quartiles.median, &used.quartiles.q3,
                    &used.quartiles.max, &used.mean})
    *q = std::max(0.0, *q - rate);
}

}  // namespace

AdaptationModule::AdaptationModule(service::FlowInfoEndpoint& endpoint,
                                   std::vector<std::string> candidate_nodes,
                                   std::string start_node, Options options)
    : endpoint_(&endpoint),
      candidates_(std::move(candidate_nodes)),
      start_(std::move(start_node)),
      options_(options) {
  validate_candidates();
}

AdaptationModule::AdaptationModule(const core::Modeler& modeler,
                                   std::vector<std::string> candidate_nodes,
                                   std::string start_node, Options options)
    : owned_(std::make_unique<service::ModelerEndpoint>(modeler)),
      endpoint_(owned_.get()),
      candidates_(std::move(candidate_nodes)),
      start_(std::move(start_node)),
      options_(options) {
  validate_candidates();
}

void AdaptationModule::validate_candidates() {
  if (candidates_.size() < 2)
    throw InvalidArgument("AdaptationModule: need at least two candidates");
  std::sort(candidates_.begin(), candidates_.end());
  if (!std::binary_search(candidates_.begin(), candidates_.end(), start_))
    throw InvalidArgument("AdaptationModule: start node not a candidate");
}

AdaptationModule::Decision AdaptationModule::evaluate(
    const std::vector<std::string>& current, BitsPerSec own_rate) const {
  if (current.empty())
    throw InvalidArgument("AdaptationModule: empty current mapping");
  for (const std::string& n : current)
    if (!std::binary_search(candidates_.begin(), candidates_.end(), n))
      throw InvalidArgument("AdaptationModule: " + n + " not a candidate");
  ++evaluations_;

  // 1. remos_get_graph over the candidate pool, through whichever query
  // surface was wired in.  Service-level failures (shed, expired, error)
  // surface as exceptions here: a migration decision needs an answer.
  service::GraphQuery gq;
  gq.nodes = candidates_;
  gq.timeframe = options_.timeframe;
  service::GraphResponse resp = endpoint_->get_graph(std::move(gq));
  if (!resp.meta.ok())
    throw Error("AdaptationModule: get_graph " +
                std::string(service::to_string(resp.meta.status)) +
                (resp.meta.error.empty() ? "" : ": " + resp.meta.error));
  if (!resp.unknown_nodes.empty())
    throw NotFoundError("AdaptationModule: unknown candidate " +
                        resp.unknown_nodes.front());
  core::NetworkGraph graph = std::move(resp.graph);

  // 2. (optionally) credit the application's own traffic back: it moves
  // with the application, so no candidate mapping should be charged it.
  if (options_.compensate_own_traffic && own_rate > 0) {
    for (const std::string& u : current) {
      for (const std::string& v : current) {
        if (u == v) continue;
        const auto path = graph.route(u, v);
        if (!path) continue;
        for (std::size_t k = 0; k < path->link_indices.size(); ++k) {
          core::GraphLink& l =
              graph.mutable_links()[path->link_indices[k]];
          const bool forward = path->nodes[k] == l.a;
          credit_back(forward ? l.used_ab : l.used_ba, own_rate);
        }
      }
    }
  }

  // 3. distance matrix + clustering from the start node (optionally
  // penalizing CPU-loaded hosts).
  const cluster::DistanceMatrix distances(graph, candidates_,
                                          options_.distance);
  const cluster::NodeCosts costs =
      options_.cpu_weight > 0 ? cluster::cpu_costs(graph, options_.cpu_weight)
                              : cluster::NodeCosts{};
  const cluster::ClusterResult best =
      cluster::greedy_cluster(distances, start_, current.size(), costs);

  Decision decision;
  decision.nodes = best.nodes;
  decision.best_cost = best.cost;
  decision.current_cost = cluster::cluster_cost(distances, current, costs);

  // Confidence: the weakest usage measurement consulted.  Staleness decay
  // (core::LogicalOptions::accuracy_halflife) lowers this as routers go
  // unreachable.
  for (const core::GraphLink& l : graph.links()) {
    if (!l.used_ab.known() && !l.used_ba.known()) continue;
    const double link_conf =
        std::max(l.used_ab.known() ? l.used_ab.accuracy : 0.0,
                 l.used_ba.known() ? l.used_ba.accuracy : 0.0);
    decision.confidence = std::min(decision.confidence, link_conf);
  }

  // 4. migrate when the relative improvement clears the threshold and the
  // recommended set actually differs -- unless the data is too stale to
  // trust (better to stay put than to chase measurement noise).
  const std::set<std::string> cur_set(current.begin(), current.end());
  const std::set<std::string> new_set(best.nodes.begin(), best.nodes.end());
  const double improvement =
      decision.current_cost <= 0
          ? 0
          : (decision.current_cost - decision.best_cost) /
                decision.current_cost;
  decision.migrate =
      new_set != cur_set && improvement > options_.improvement_threshold;
  if (decision.migrate && decision.confidence < options_.min_accuracy) {
    decision.migrate = false;
    decision.held_low_confidence = true;
  }
  return decision;
}

}  // namespace remos::fx
