// The adaptation module (paper §6-§7.3).
//
// "A network-aware parallel application typically consists of a
// computation module and an adaptation module. ... Only the adaptation
// module interacts with tools like Remos."  At each migration point it:
//   1. calls remos_get_graph for the candidate node pool,
//   2. derives the pairwise distance matrix from the logical topology,
//   3. runs the clustering routine from the application's start node,
//   4. compares the estimated communication performance of the best
//      cluster with the current mapping and migrates when the improvement
//      clears a threshold.
//
// §8.3 catch: Remos measurements do not distinguish traffic sources, so
// an application can see *its own* traffic and migrate to avoid itself.
// With `compensate_own_traffic`, the runtime tells the module what the
// application currently generates, and the module credits that bandwidth
// back to the links its current mapping uses before costing it.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "cluster/clustering.hpp"
#include "core/modeler.hpp"
#include "service/endpoint.hpp"

namespace remos::fx {

class AdaptationModule {
 public:
  struct Options {
    core::Timeframe timeframe = core::Timeframe::history(10.0);
    /// Minimum relative cost improvement to migrate; 0 = "whenever the
    /// potential improvement was positive" (the paper's experiments).
    double improvement_threshold = 0.0;
    /// Credit the application's own traffic back to its current links.
    bool compensate_own_traffic = false;
    cluster::DistanceOptions distance;
    /// Weight of host CPU load in the cluster cost (0 = network only;
    /// §7.2's computation/communication tradeoff).
    double cpu_weight = 0.0;
    /// Migration hysteresis on data quality: when the least-accurate
    /// usage measurement backing the decision falls below this, the
    /// module holds the current mapping rather than migrating on stale
    /// or missing data (a crashed router must not trigger a move).
    /// 0 never gates.
    double min_accuracy = 0.0;
  };

  /// Programs against any Remos query surface -- an in-process
  /// ModelerEndpoint, a QueryService, a retrying RemosClient or a
  /// replicated FailoverCoordinator -- chosen at wiring time.  The
  /// endpoint must outlive the module.
  AdaptationModule(service::FlowInfoEndpoint& endpoint,
                   std::vector<std::string> candidate_nodes,
                   std::string start_node, Options options);
  AdaptationModule(service::FlowInfoEndpoint& endpoint,
                   std::vector<std::string> candidate_nodes,
                   std::string start_node)
      : AdaptationModule(endpoint, std::move(candidate_nodes),
                         std::move(start_node), Options{}) {}

  /// Convenience: wraps a bare Modeler in an owned ModelerEndpoint (the
  /// pre-endpoint wiring; the modeler must outlive the module).
  AdaptationModule(const core::Modeler& modeler,
                   std::vector<std::string> candidate_nodes,
                   std::string start_node, Options options);
  AdaptationModule(const core::Modeler& modeler,
                   std::vector<std::string> candidate_nodes,
                   std::string start_node)
      : AdaptationModule(modeler, std::move(candidate_nodes),
                         std::move(start_node), Options{}) {}

  struct Decision {
    bool migrate = false;
    std::vector<std::string> nodes;  // recommended mapping (size k)
    double current_cost = 0;
    double best_cost = 0;
    /// Least accuracy among the usage measurements consulted (1 when the
    /// graph held no dynamic data to distrust).
    double confidence = 1.0;
    /// True when a migration was suppressed only by the accuracy gate.
    bool held_low_confidence = false;
  };

  /// Evaluates the current mapping against the best cluster of the same
  /// size.  `own_rate` is the application's own average per-directed-path
  /// rate between current members (used only when compensating).
  Decision evaluate(const std::vector<std::string>& current,
                    BitsPerSec own_rate = 0) const;

  std::size_t evaluations() const { return evaluations_; }

 private:
  /// Sorts the candidate pool and rejects degenerate configurations.
  void validate_candidates();

  std::unique_ptr<service::ModelerEndpoint> owned_;  // Modeler ctor only
  service::FlowInfoEndpoint* endpoint_;
  std::vector<std::string> candidates_;
  std::string start_;
  Options options_;
  mutable std::size_t evaluations_ = 0;
};

}  // namespace remos::fx
