// Model of an Fx-compiled data-parallel program (paper §7.1).
//
// Fx programs are iterative and synchronous: each outer iteration runs a
// fixed sequence of phases -- compute phases (data-parallel work, plus an
// optional non-parallelizable serial part) and collective communication
// phases (the transpose of a 2-D FFT, the exchanges of Airshed).  Fx's
// task-parallel support decomposes work into `chunks` logical tasks; a
// program "compiled for 8 nodes but run on 5" keeps its 8-way
// decomposition, which costs load imbalance and extra communication --
// exactly the overhead the paper's Table 3 measures.
#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "util/units.hpp"

namespace remos::fx {

enum class Pattern : std::uint8_t {
  kAllToAll,   // every task sends to every other (transpose)
  kRing,       // task i -> task i+1 mod T (pipeline/shift)
  kBroadcast,  // task 0 -> everyone else
  kReduce,     // everyone else -> task 0
};

std::string to_string(Pattern pattern);

struct ComputePhase {
  /// Work that divides over tasks (seconds on one reference CPU).
  Seconds parallel_seconds = 0;
  /// Work that does not parallelize (runs once per iteration).
  Seconds serial_seconds = 0;
};

struct CommPhase {
  Pattern pattern = Pattern::kAllToAll;
  /// Total logical data volume moved by the phase across all task pairs
  /// (the dataset size for a transpose).  How much actually crosses the
  /// network depends on how tasks map onto nodes.
  Bytes volume = 0;
};

using Phase = std::variant<ComputePhase, CommPhase>;

struct AppModel {
  std::string name;
  std::size_t iterations = 1;
  std::vector<Phase> phases;  // executed in order, once per iteration
  /// Task decomposition width fixed at compile time; 0 = "recompiled for
  /// whatever node count it runs on" (perfect decomposition).
  std::size_t chunks = 0;
  /// Fixed software overhead charged per communication phase
  /// (synchronization, message setup).
  Seconds per_phase_overhead = 2e-3;
  /// Cost per compute phase for every *extra* task layer a node hosts
  /// (context switching, duplicated boundary buffers).  Zero when tasks
  /// map one-to-one; a program compiled for 8 chunks running on 5 nodes
  /// pays one layer of this -- the overhead the paper's Table 3 observes
  /// beyond pure load imbalance.
  Seconds task_multiplex_overhead = 0;

  /// Tasks for a run on n nodes: chunks if pinned, else n.
  std::size_t tasks_for(std::size_t n) const {
    return chunks == 0 ? n : chunks;
  }
};

}  // namespace remos::fx
