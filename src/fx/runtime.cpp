#include "fx/runtime.hpp"

#include <algorithm>
#include <map>
#include <set>

#include "util/error.hpp"

namespace remos::fx {

std::string to_string(Pattern pattern) {
  switch (pattern) {
    case Pattern::kAllToAll: return "all-to-all";
    case Pattern::kRing: return "ring";
    case Pattern::kBroadcast: return "broadcast";
    case Pattern::kReduce: return "reduce";
  }
  return "?";
}

FxRuntime::FxRuntime(netsim::Simulator& sim, AppModel app,
                     std::vector<std::string> nodes, Options options)
    : sim_(&sim), app_(std::move(app)), nodes_(std::move(nodes)),
      options_(options) {
  if (nodes_.empty()) throw InvalidArgument("FxRuntime: no nodes");
  std::set<std::string> unique(nodes_.begin(), nodes_.end());
  if (unique.size() != nodes_.size())
    throw InvalidArgument("FxRuntime: duplicate node in mapping");
  for (const std::string& n : nodes_) sim_->topology().id_of(n);
  if (app_.chunks > 0 && app_.chunks < nodes_.size())
    throw InvalidArgument(
        "FxRuntime: more nodes than compiled task chunks");
  if (app_.iterations == 0)
    throw InvalidArgument("FxRuntime: zero iterations");
}

void FxRuntime::set_adaptation(AdaptationModule* adaptation) {
  adaptation_ = adaptation;
}

Seconds FxRuntime::run_compute(const ComputePhase& phase) const {
  // Tasks are dealt round-robin onto nodes; the phase lasts as long as
  // the most loaded / slowest node takes.
  const std::size_t n = nodes_.size();
  const std::size_t tasks = app_.tasks_for(n);
  const double per_task = phase.parallel_seconds / static_cast<double>(tasks);
  Seconds worst = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t my_tasks = tasks / n + (i < tasks % n ? 1 : 0);
    // Effective speed folds in competing CPU load on the host.
    const double speed =
        sim_->effective_speed(sim_->topology().id_of(nodes_[i]));
    worst = std::max(worst,
                     static_cast<double>(my_tasks) * per_task / speed);
  }
  const std::size_t layers = (tasks + n - 1) / n;
  return worst + phase.serial_seconds +
         static_cast<double>(layers - 1) * app_.task_multiplex_overhead;
}

Seconds FxRuntime::run_comm(const CommPhase& phase) {
  const std::size_t n = nodes_.size();
  const std::size_t tasks = app_.tasks_for(n);
  if (n == 1 || phase.volume <= 0) return app_.per_phase_overhead;

  // node index hosting task t (round-robin, matching run_compute).
  auto node_of = [&](std::size_t t) { return t % n; };

  // Aggregate the phase's task-pair volumes into per-node-pair flows;
  // co-located task pairs exchange through memory and cost nothing.
  std::map<std::pair<std::size_t, std::size_t>, Bytes> volumes;
  auto add = [&](std::size_t from_task, std::size_t to_task, Bytes bytes) {
    const std::size_t a = node_of(from_task);
    const std::size_t b = node_of(to_task);
    if (a != b && bytes > 0) volumes[{a, b}] += bytes;
  };
  switch (phase.pattern) {
    case Pattern::kAllToAll: {
      const Bytes per_pair =
          phase.volume / static_cast<double>(tasks * tasks);
      for (std::size_t i = 0; i < tasks; ++i)
        for (std::size_t j = 0; j < tasks; ++j)
          if (i != j) add(i, j, per_pair);
      break;
    }
    case Pattern::kRing: {
      const Bytes per_hop = phase.volume / static_cast<double>(tasks);
      for (std::size_t i = 0; i < tasks; ++i)
        add(i, (i + 1) % tasks, per_hop);
      break;
    }
    case Pattern::kBroadcast: {
      const Bytes per_leaf = phase.volume / static_cast<double>(tasks - 1);
      for (std::size_t i = 1; i < tasks; ++i) add(0, i, per_leaf);
      break;
    }
    case Pattern::kReduce: {
      const Bytes per_leaf = phase.volume / static_cast<double>(tasks - 1);
      for (std::size_t i = 1; i < tasks; ++i) add(i, 0, per_leaf);
      break;
    }
  }

  const Seconds phase_start = sim_->now();
  std::vector<netsim::FlowId> flows;
  Seconds worst_latency = 0;
  for (const auto& [pair, bytes] : volumes) {
    netsim::FlowOptions opts;
    opts.volume = bytes;
    opts.tag = "fx:" + app_.name;
    const netsim::NodeId src = sim_->topology().id_of(nodes_[pair.first]);
    const netsim::NodeId dst = sim_->topology().id_of(nodes_[pair.second]);
    flows.push_back(sim_->start_flow(src, dst, opts));
    worst_latency =
        std::max(worst_latency, sim_->routing().path_latency(src, dst));
  }
  if (!flows.empty()) sim_->run_until_flows_done(flows);
  // Synchronous phase epilogue: trailing propagation + software overhead.
  sim_->run_for(worst_latency + app_.per_phase_overhead);
  return sim_->now() - phase_start;
}

RunStats FxRuntime::run() {
  RunStats stats;
  stats.mappings.push_back(nodes_);
  const Seconds t0 = sim_->now();

  // Average rate the app itself pushes per node pair (for own-traffic
  // compensation): updated after each iteration from observed behavior.
  BitsPerSec own_rate_estimate = 0;
  Bytes bytes_per_iter = 0;
  for (const Phase& p : app_.phases)
    if (const auto* c = std::get_if<CommPhase>(&p)) bytes_per_iter += c->volume;

  for (std::size_t iter = 0; iter < app_.iterations; ++iter) {
    // Migration point (not before the first iteration: the initial
    // mapping was just chosen).
    if (adaptation_ && iter > 0) {
      const Seconds adapt_start = sim_->now();
      sim_->run_for(options_.decision_cost);
      const auto decision = adaptation_->evaluate(nodes_, own_rate_estimate);
      if (decision.migrate) {
        sim_->run_for(options_.migration_cost);
        nodes_ = decision.nodes;
        ++stats.migrations;
        stats.mappings.push_back(nodes_);
      }
      stats.adaptation_overhead += sim_->now() - adapt_start;
    }

    Seconds iter_comm = 0;
    for (const Phase& phase : app_.phases) {
      if (const auto* compute = std::get_if<ComputePhase>(&phase)) {
        const Seconds t = run_compute(*compute);
        sim_->run_for(t);
        stats.compute += t;
      } else {
        const Seconds t = run_comm(std::get<CommPhase>(phase));
        stats.communication += t;
        iter_comm += t;
      }
    }
    // Rough own-traffic estimate: per-iteration bytes spread over the
    // iteration, per node pair, both directions.
    const Seconds iter_time = sim_->now() - t0;
    if (iter_time > 0 && nodes_.size() > 1) {
      const double pairs =
          static_cast<double>(nodes_.size() * (nodes_.size() - 1));
      own_rate_estimate = bytes_per_iter * 8.0 *
                          static_cast<double>(iter + 1) / iter_time / pairs;
    }
    (void)iter_comm;
  }
  stats.total = sim_->now() - t0;
  return stats;
}

}  // namespace remos::fx
