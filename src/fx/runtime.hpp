// Execution of an AppModel on the network simulator (the Fx runtime
// system, enhanced with runtime remapping -- paper §7.1).
//
// Phases are synchronous: a compute phase takes as long as its
// worst-loaded node; a communication phase ends when its last flow
// drains.  Flows run on the simulator and therefore compete (max-min)
// with background traffic and with each other -- the internal-sharing
// effect the Remos flow interface exists to expose.
//
// At the start of every iteration after the first, the runtime offers an
// AdaptationModule (if installed) a migration point: "the set of
// processors assigned to the active task can be changed at runtime".
// Migration assumes replicated active data (paper §8.3), so its cost is a
// fixed synchronization charge, plus the modeled cost of the decision
// procedure itself.
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "fx/adaptation.hpp"
#include "fx/app_model.hpp"
#include "netsim/simulator.hpp"

namespace remos::fx {

struct RunStats {
  Seconds total = 0;
  Seconds compute = 0;
  Seconds communication = 0;
  Seconds adaptation_overhead = 0;  // decisions + migrations
  std::size_t migrations = 0;
  std::vector<std::vector<std::string>> mappings;  // every mapping used
};

class FxRuntime {
 public:
  struct Options {
    /// Wall-clock charged per adaptation decision (cluster analysis).
    Seconds decision_cost = 1.5;
    /// Wall-clock charged per actual migration (remap + resync).
    Seconds migration_cost = 2.0;
  };

  FxRuntime(netsim::Simulator& sim, AppModel app,
            std::vector<std::string> nodes, Options options);
  FxRuntime(netsim::Simulator& sim, AppModel app,
            std::vector<std::string> nodes)
      : FxRuntime(sim, std::move(app), std::move(nodes), Options{}) {}

  /// Installs runtime adaptation; the module must outlive run().
  void set_adaptation(AdaptationModule* adaptation);

  /// Runs the program to completion, advancing the simulator.
  RunStats run();

  const std::vector<std::string>& nodes() const { return nodes_; }

 private:
  Seconds run_compute(const ComputePhase& phase) const;
  Seconds run_comm(const CommPhase& phase);

  netsim::Simulator* sim_;
  AppModel app_;
  std::vector<std::string> nodes_;
  Options options_;
  AdaptationModule* adaptation_ = nullptr;
};

}  // namespace remos::fx
