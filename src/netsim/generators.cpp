#include "netsim/generators.hpp"

#include <cmath>
#include <numeric>
#include <string>
#include <vector>

#include "util/error.hpp"
#include "util/rng.hpp"

namespace remos::netsim {

namespace {

std::string num(std::size_t v) { return std::to_string(v); }

// Quantizes a latency to whole microseconds so generated topologies
// print cleanly (topology_io emits milliseconds with 3 decimals).
Seconds quantize_us(Seconds s) {
  return std::round(s * 1e6) / 1e6;
}

}  // namespace

Topology make_fat_tree(const FatTreeParams& p) {
  if (p.k < 2 || p.k % 2 != 0)
    throw InvalidArgument("make_fat_tree: k must be even and >= 2");
  if (p.host_rate <= 0 || p.edge_aggr_rate <= 0 || p.aggr_core_rate <= 0)
    throw InvalidArgument("make_fat_tree: rates must be positive");
  if (p.hop_latency < 0)
    throw InvalidArgument("make_fat_tree: negative latency");

  const std::size_t half = p.k / 2;
  Topology t;

  // Core switches: (k/2)^2, indexed (i, j); core (i, j) connects to the
  // i-th aggregation switch of every pod.
  std::vector<std::vector<NodeId>> core(half, std::vector<NodeId>(half));
  for (std::size_t i = 0; i < half; ++i)
    for (std::size_t j = 0; j < half; ++j)
      core[i][j] =
          t.add_node("c" + num(i) + "-" + num(j), NodeKind::kNetwork);

  for (std::size_t pod = 0; pod < p.k; ++pod) {
    std::vector<NodeId> aggr(half), edge(half);
    for (std::size_t i = 0; i < half; ++i)
      aggr[i] = t.add_node("a" + num(pod) + "-" + num(i), NodeKind::kNetwork);
    for (std::size_t i = 0; i < half; ++i)
      edge[i] = t.add_node("e" + num(pod) + "-" + num(i), NodeKind::kNetwork);
    // Full bipartite edge <-> aggregation inside the pod.
    for (std::size_t e = 0; e < half; ++e)
      for (std::size_t a = 0; a < half; ++a)
        t.add_link(edge[e], aggr[a], p.edge_aggr_rate, p.hop_latency);
    // Aggregation i <-> core row i.
    for (std::size_t a = 0; a < half; ++a)
      for (std::size_t j = 0; j < half; ++j)
        t.add_link(aggr[a], core[a][j], p.aggr_core_rate, p.hop_latency);
    // Hosts under each edge switch.
    for (std::size_t e = 0; e < half; ++e)
      for (std::size_t h = 0; h < half; ++h) {
        const NodeId host = t.add_node(
            "h" + num(pod) + "-" + num(e) + "-" + num(h), NodeKind::kCompute);
        t.add_link(host, edge[e], p.host_rate, p.hop_latency);
      }
  }
  return t;
}

Topology make_dumbbell(const DumbbellParams& p) {
  if (p.hosts_per_side < 1)
    throw InvalidArgument("make_dumbbell: hosts_per_side must be >= 1");
  if (p.trunk_hops < 1)
    throw InvalidArgument("make_dumbbell: trunk_hops must be >= 1");
  if (p.access_rate <= 0 || p.trunk_rate <= 0)
    throw InvalidArgument("make_dumbbell: rates must be positive");
  if (p.access_latency < 0 || p.trunk_latency < 0)
    throw InvalidArgument("make_dumbbell: negative latency");

  Topology t;
  const NodeId sl = t.add_node("sl", NodeKind::kNetwork);
  const NodeId sr = t.add_node("sr", NodeKind::kNetwork);

  // Trunk chain sl - t0 - ... - sr with trunk_hops links; each link
  // carries an equal share of the end-to-end trunk latency.
  const Seconds per_hop =
      quantize_us(p.trunk_latency / static_cast<double>(p.trunk_hops));
  NodeId prev = sl;
  for (std::size_t i = 0; i + 1 < p.trunk_hops; ++i) {
    const NodeId mid = t.add_node("t" + num(i), NodeKind::kNetwork);
    t.add_link(prev, mid, p.trunk_rate, per_hop);
    prev = mid;
  }
  t.add_link(prev, sr, p.trunk_rate, per_hop);

  for (std::size_t i = 0; i < p.hosts_per_side; ++i) {
    const NodeId l = t.add_node("l" + num(i), NodeKind::kCompute);
    t.add_link(l, sl, p.access_rate, p.access_latency);
  }
  for (std::size_t i = 0; i < p.hosts_per_side; ++i) {
    const NodeId r = t.add_node("r" + num(i), NodeKind::kCompute);
    t.add_link(r, sr, p.access_rate, p.access_latency);
  }
  return t;
}

Topology make_waxman(const WaxmanParams& p) {
  if (p.hosts < 1) throw InvalidArgument("make_waxman: hosts must be >= 1");
  if (p.routers < 2)
    throw InvalidArgument("make_waxman: routers must be >= 2");
  if (p.alpha <= 0 || p.alpha > 1 || p.beta <= 0)
    throw InvalidArgument("make_waxman: alpha in (0,1], beta > 0 required");
  if (p.host_rate <= 0)
    throw InvalidArgument("make_waxman: host_rate must be positive");
  if (p.host_latency < 0 || p.diagonal_latency < 0)
    throw InvalidArgument("make_waxman: negative latency");

  Rng rng(p.seed ^ 0x9e3779b97f4a7c15ULL);
  Topology t;

  std::vector<NodeId> routers(p.routers);
  std::vector<double> x(p.routers), y(p.routers);
  for (std::size_t i = 0; i < p.routers; ++i) {
    routers[i] = t.add_node("w" + num(i), NodeKind::kNetwork);
    x[i] = rng.uniform();
    y[i] = rng.uniform();
  }

  const double diagonal = std::sqrt(2.0);
  constexpr double kTrunkMbps[] = {155.0, 622.0, 2488.0};
  auto trunk_rate = [&] { return mbps(kTrunkMbps[rng.below(3)]); };
  auto distance = [&](std::size_t i, std::size_t j) {
    const double dx = x[i] - x[j];
    const double dy = y[i] - y[j];
    return std::sqrt(dx * dx + dy * dy);
  };
  auto trunk_latency = [&](double d) {
    return quantize_us(p.diagonal_latency * d / diagonal);
  };

  // Union-find over routers for the connectivity repair below.
  std::vector<std::size_t> parent(p.routers);
  std::iota(parent.begin(), parent.end(), std::size_t{0});
  auto find = [&](std::size_t v) {
    while (parent[v] != v) {
      parent[v] = parent[parent[v]];
      v = parent[v];
    }
    return v;
  };

  for (std::size_t i = 0; i < p.routers; ++i) {
    for (std::size_t j = i + 1; j < p.routers; ++j) {
      const double d = distance(i, j);
      const double prob = p.alpha * std::exp(-d / (p.beta * diagonal));
      if (!rng.chance(prob)) continue;
      t.add_link(routers[i], routers[j], trunk_rate(), trunk_latency(d));
      parent[find(i)] = find(j);
    }
  }

  // Repair: every component beyond the first gets one deterministic link
  // from its lowest-index router to the lowest-index router overall.
  const std::size_t root = find(0);
  for (std::size_t i = 1; i < p.routers; ++i) {
    if (find(i) == root) continue;
    t.add_link(routers[0], routers[i], trunk_rate(),
               trunk_latency(distance(0, i)));
    parent[find(i)] = root;
  }

  for (std::size_t i = 0; i < p.hosts; ++i) {
    const NodeId h = t.add_node("h" + num(i), NodeKind::kCompute);
    t.add_link(h, routers[i % p.routers], p.host_rate, p.host_latency);
  }
  return t;
}

}  // namespace remos::netsim
