// Synthetic topology generators for the scale plane.
//
// The paper's evaluation runs on an 11-node testbed; the ROADMAP
// north-star is a production-scale system, so these generators produce
// deterministic 64-2048 host networks through the same Topology API the
// hand-built testbeds use.  Three families cover the structures that
// stress different parts of the stack:
//
//   - k-ary fat-tree: the canonical datacenter Clos fabric.  Many
//     equal-cost paths, deep sharing on core links; hosts = k^3/4
//     (k=8 -> 128 hosts, k=16 -> 1024 hosts).
//   - dumbbell-of-N: 2N hosts squeezed through one trunk.  The worst
//     case for incremental solving (every flow shares one component) and
//     the best case for routing caches.
//   - Waxman random graph: the classic ISP-like random topology
//     (Waxman '88): routers placed in the unit square, edge probability
//     alpha * exp(-d / (beta * L)).  Irregular degree and path
//     diversity, seeded and fully reproducible.
//
// All generators are pure functions of their parameter struct: the same
// parameters (including the seed) produce a bit-identical Topology on
// every platform, which the round-trip and differential suites rely on.
#pragma once

#include <cstdint>

#include "netsim/topology.hpp"

namespace remos::netsim {

/// k-ary fat-tree (Al-Fares et al.): k pods, each with k/2 edge and k/2
/// aggregation switches, (k/2)^2 core switches, k/2 hosts per edge
/// switch.  Node names: hosts "h<pod>-<edge>-<i>", edge "e<pod>-<i>",
/// aggregation "a<pod>-<i>", core "c<i>-<j>".
struct FatTreeParams {
  /// Arity; must be even and >= 2.  Hosts = k^3 / 4.
  std::size_t k = 8;
  /// Host uplink rate (host <-> edge switch).
  BitsPerSec host_rate = mbps(1000);
  /// Edge <-> aggregation rate.
  BitsPerSec edge_aggr_rate = mbps(1000);
  /// Aggregation <-> core rate.
  BitsPerSec aggr_core_rate = mbps(1000);
  /// One-way latency of every link.
  Seconds hop_latency = micros(50);
};
Topology make_fat_tree(const FatTreeParams& params);

/// Dumbbell: `hosts_per_side` hosts on each of two access switches
/// ("sl", "sr"), joined by a trunk of `trunk_hops` links (intermediate
/// routers "t<i>" when trunk_hops > 1).  Host names "l<i>" / "r<i>".
struct DumbbellParams {
  /// Hosts on each side; total hosts = 2 * hosts_per_side.  Must be >= 1.
  std::size_t hosts_per_side = 32;
  /// Number of links in the trunk chain; must be >= 1.
  std::size_t trunk_hops = 1;
  BitsPerSec access_rate = mbps(100);
  BitsPerSec trunk_rate = mbps(1000);
  Seconds access_latency = micros(100);
  Seconds trunk_latency = millis(1);
};
Topology make_dumbbell(const DumbbellParams& params);

/// Waxman-style random ISP graph: `routers` placed uniformly in the unit
/// square (seeded), each pair linked with probability
/// alpha * exp(-distance / (beta * sqrt(2))); disconnected components
/// are repaired deterministically; `hosts` are attached round-robin.
/// Router names "w<i>", host names "h<i>".  Trunk capacities are drawn
/// from {155, 622, 2488} Mbps (OC-3/12/48); trunk latency is
/// proportional to Euclidean distance.
struct WaxmanParams {
  std::size_t hosts = 64;    // >= 1
  std::size_t routers = 16;  // >= 2
  double alpha = 0.55;
  double beta = 0.35;
  BitsPerSec host_rate = mbps(100);
  Seconds host_latency = micros(100);
  /// Latency of a trunk spanning the full unit-square diagonal.
  Seconds diagonal_latency = millis(10);
  std::uint64_t seed = 1;
};
Topology make_waxman(const WaxmanParams& params);

}  // namespace remos::netsim
