#include "netsim/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace remos::netsim {

namespace {

void validate(const std::vector<double>& capacity,
              const std::vector<MaxMinFlow>& flows) {
  for (double c : capacity)
    if (c < 0 || std::isnan(c))
      throw InvalidArgument("max_min_allocate: negative/NaN capacity");
  for (const MaxMinFlow& f : flows) {
    if (f.weight <= 0 || !std::isfinite(f.weight))
      throw InvalidArgument("max_min_allocate: non-positive weight");
    if (f.rate_cap < 0 || std::isnan(f.rate_cap))
      throw InvalidArgument("max_min_allocate: negative/NaN rate cap");
    for (std::size_t r : f.resources)
      if (r >= capacity.size())
        throw InvalidArgument("max_min_allocate: resource index out of range");
  }
}

}  // namespace

MaxMinResult max_min_allocate(const std::vector<double>& capacity,
                              const std::vector<MaxMinFlow>& flows) {
  validate(capacity, flows);
  const std::size_t nf = flows.size();
  const std::size_t nr = capacity.size();

  MaxMinResult out;
  out.rates.resize(nf);
  out.residual.resize(nr);

  std::vector<FairShareFlowView> views(nf);
  for (std::size_t i = 0; i < nf; ++i) {
    views[i].resources = flows[i].resources.data();
    views[i].resource_count = flows[i].resources.size();
    views[i].weight = flows[i].weight;
    views[i].rate_cap = flows[i].rate_cap;
  }
  FairShareScratch scratch;
  fair_share_fill(capacity.data(), nr, views.data(), nf, out.rates.data(),
                  out.residual.data(), scratch);
  return out;
}

bool is_max_min_fair(const std::vector<double>& capacity,
                     const std::vector<MaxMinFlow>& flows,
                     const std::vector<double>& rates, double eps) {
  if (rates.size() != flows.size()) return false;
  const std::size_t nr = capacity.size();
  std::vector<double> used(nr, 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] < -eps) return false;
    if (rates[i] > flows[i].rate_cap + eps) return false;
    if (std::isinf(rates[i])) {
      // An infinite rate is only legal if nothing on its path is finite.
      for (std::size_t r : flows[i].resources)
        if (std::isfinite(capacity[r])) return false;
      continue;
    }
    for (std::size_t r : flows[i].resources) used[r] += rates[i];
  }
  // Feasibility.
  for (std::size_t r = 0; r < nr; ++r) {
    const double slack_eps = eps * std::max(1.0, capacity[r]);
    if (used[r] > capacity[r] + slack_eps) return false;
  }
  // Max-min property: every flow below its cap must traverse a resource
  // that is saturated AND on which it has the (weakly) largest weighted
  // rate among the flows using that resource.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] >= flows[i].rate_cap - eps) continue;  // demand-limited
    bool justified = false;
    for (std::size_t r : flows[i].resources) {
      const double slack_eps = eps * std::max(1.0, capacity[r]);
      if (used[r] < capacity[r] - slack_eps) continue;  // not saturated
      bool largest_here = true;
      const double my_norm = rates[i] / flows[i].weight;
      for (std::size_t j = 0; j < flows.size(); ++j) {
        if (j == i) continue;
        const auto& res_j = flows[j].resources;
        if (std::find(res_j.begin(), res_j.end(), r) == res_j.end()) continue;
        if (rates[j] / flows[j].weight > my_norm + eps) {
          largest_here = false;
          break;
        }
      }
      if (largest_here) {
        justified = true;
        break;
      }
    }
    if (!justified) return false;
  }
  return true;
}

// ---------------------------------------------------------------------------
// IncrementalMaxMin

void IncrementalMaxMin::reset(std::vector<double> capacity) {
  for (double c : capacity)
    if (c < 0 || std::isnan(c))
      throw InvalidArgument("IncrementalMaxMin: negative/NaN capacity");
  capacity_ = std::move(capacity);
  residual_ = capacity_;
  const std::size_t nr = capacity_.size();
  slots_.clear();
  free_slots_.clear();
  live_flows_ = 0;
  res_flows_.assign(nr, {});
  dirty_resources_.clear();
  dirty_lone_.clear();
  res_dirty_stamp_.assign(nr, 0);
  dirty_epoch_ = 1;
  res_visit_stamp_.assign(nr, 0);
  flow_visit_stamp_.clear();
  visit_epoch_ = 0;
  res_local_.assign(nr, 0);
  comp_res_.clear();
  comp_flows_.clear();
  changed_.clear();
  last_solved_flows_ = 0;
  solves_ = 0;
}

void IncrementalMaxMin::validate_flow(const std::size_t* resources,
                                      std::size_t n, double weight,
                                      double rate_cap) const {
  if (weight <= 0 || !std::isfinite(weight))
    throw InvalidArgument("IncrementalMaxMin: non-positive weight");
  if (rate_cap < 0 || std::isnan(rate_cap))
    throw InvalidArgument("IncrementalMaxMin: negative/NaN rate cap");
  for (std::size_t k = 0; k < n; ++k)
    if (resources[k] >= capacity_.size())
      throw InvalidArgument("IncrementalMaxMin: resource index out of range");
}

void IncrementalMaxMin::mark_resource_dirty(std::size_t r) {
  if (res_dirty_stamp_[r] == dirty_epoch_) return;
  res_dirty_stamp_[r] = dirty_epoch_;
  dirty_resources_.push_back(r);
}

void IncrementalMaxMin::mark_lone_dirty(FlowHandle handle) {
  dirty_lone_.push_back(handle);
}

void IncrementalMaxMin::attach(FlowHandle handle) {
  Slot& s = slots_[handle];
  s.pos.resize(s.resources.size());
  for (std::size_t k = 0; k < s.resources.size(); ++k) {
    const std::size_t r = s.resources[k];
    s.pos[k] = static_cast<std::uint32_t>(res_flows_[r].size());
    res_flows_[r].push_back(handle);
    mark_resource_dirty(r);
  }
  if (s.resources.empty()) mark_lone_dirty(handle);
}

void IncrementalMaxMin::detach(FlowHandle handle) {
  Slot& s = slots_[handle];
  for (std::size_t k = 0; k < s.resources.size(); ++k) {
    const std::size_t r = s.resources[k];
    auto& list = res_flows_[r];
    const std::size_t p = s.pos[k];
    const FlowHandle moved = list.back();
    list[p] = moved;
    list.pop_back();
    mark_resource_dirty(r);
    if (p == list.size()) continue;  // removed the tail entry itself
    // The moved flow's position record for r pointed at the old tail.
    Slot& ms = slots_[moved];
    for (std::size_t j = 0; j < ms.resources.size(); ++j) {
      if (ms.resources[j] == r &&
          ms.pos[j] == static_cast<std::uint32_t>(list.size())) {
        ms.pos[j] = static_cast<std::uint32_t>(p);
        break;
      }
    }
  }
}

void IncrementalMaxMin::set_capacity(std::size_t resource, double value) {
  if (resource >= capacity_.size())
    throw InvalidArgument("IncrementalMaxMin: resource index out of range");
  if (value < 0 || std::isnan(value))
    throw InvalidArgument("IncrementalMaxMin: negative/NaN capacity");
  if (capacity_[resource] == value) return;
  capacity_[resource] = value;
  // An idle resource's residual tracks its capacity directly (no fill
  // will visit it if no flow ever touches it).
  if (res_flows_[resource].empty()) {
    residual_[resource] = value;
    return;
  }
  mark_resource_dirty(resource);
}

double IncrementalMaxMin::capacity(std::size_t resource) const {
  if (resource >= capacity_.size())
    throw InvalidArgument("IncrementalMaxMin: resource index out of range");
  return capacity_[resource];
}

FlowHandle IncrementalMaxMin::add_flow(const std::size_t* resources,
                                       std::size_t n, double weight,
                                       double rate_cap) {
  validate_flow(resources, n, weight, rate_cap);
  FlowHandle h;
  if (!free_slots_.empty()) {
    h = free_slots_.back();
    free_slots_.pop_back();
  } else {
    h = slots_.size();
    slots_.emplace_back();
    flow_visit_stamp_.push_back(0);
  }
  Slot& s = slots_[h];
  s.resources.assign(resources, resources + n);
  s.weight = weight;
  s.rate_cap = rate_cap;
  s.rate = 0.0;
  s.live = true;
  attach(h);
  ++live_flows_;
  return h;
}

void IncrementalMaxMin::update_flow(FlowHandle handle,
                                    const std::size_t* resources,
                                    std::size_t n, double weight,
                                    double rate_cap) {
  if (handle >= slots_.size() || !slots_[handle].live)
    throw NotFoundError("IncrementalMaxMin: unknown flow handle");
  validate_flow(resources, n, weight, rate_cap);
  Slot& s = slots_[handle];
  const bool same = s.weight == weight && s.rate_cap == rate_cap &&
                    s.resources.size() == n &&
                    std::equal(s.resources.begin(), s.resources.end(),
                               resources);
  if (same) return;
  detach(handle);
  s.resources.assign(resources, resources + n);
  s.weight = weight;
  s.rate_cap = rate_cap;
  attach(handle);
}

void IncrementalMaxMin::remove_flow(FlowHandle handle) {
  if (handle >= slots_.size() || !slots_[handle].live)
    throw NotFoundError("IncrementalMaxMin: unknown flow handle");
  detach(handle);
  Slot& s = slots_[handle];
  s.live = false;
  s.rate = 0.0;
  s.resources.clear();
  s.pos.clear();
  free_slots_.push_back(handle);
  --live_flows_;
}

double IncrementalMaxMin::rate(FlowHandle handle) const {
  if (handle >= slots_.size() || !slots_[handle].live)
    throw NotFoundError("IncrementalMaxMin: unknown flow handle");
  return slots_[handle].rate;
}

double IncrementalMaxMin::residual(std::size_t resource) const {
  if (resource >= capacity_.size())
    throw InvalidArgument("IncrementalMaxMin: resource index out of range");
  return residual_[resource];
}

const std::vector<FlowHandle>& IncrementalMaxMin::solve() {
  changed_.clear();
  comp_res_.clear();
  comp_flows_.clear();

  // Resource-less flows: rate equals the demand cap, independent of the
  // rest of the system.
  for (FlowHandle h : dirty_lone_) {
    if (h >= slots_.size() || !slots_[h].live) continue;
    Slot& s = slots_[h];
    if (!s.resources.empty()) continue;  // rebound onto resources since
    if (s.rate != s.rate_cap) {
      s.rate = s.rate_cap;
      changed_.push_back(h);
    }
  }
  dirty_lone_.clear();

  if (!dirty_resources_.empty()) {
    // Grow the dirty set to full connected components: alternate
    // resource -> flows -> resources until closure.
    ++visit_epoch_;
    bfs_stack_.clear();
    for (std::size_t r : dirty_resources_) {
      if (res_visit_stamp_[r] == visit_epoch_) continue;
      res_visit_stamp_[r] = visit_epoch_;
      comp_res_.push_back(r);
      bfs_stack_.push_back(r);
    }
    while (!bfs_stack_.empty()) {
      const std::size_t r = bfs_stack_.back();
      bfs_stack_.pop_back();
      for (FlowHandle h : res_flows_[r]) {
        if (flow_visit_stamp_[h] == visit_epoch_) continue;
        flow_visit_stamp_[h] = visit_epoch_;
        comp_flows_.push_back(h);
        for (std::size_t r2 : slots_[h].resources) {
          if (res_visit_stamp_[r2] == visit_epoch_) continue;
          res_visit_stamp_[r2] = visit_epoch_;
          comp_res_.push_back(r2);
          bfs_stack_.push_back(r2);
        }
      }
    }

    const std::size_t nc = comp_res_.size();
    const std::size_t nf = comp_flows_.size();
    for (std::size_t i = 0; i < nc; ++i)
      res_local_[comp_res_[i]] = static_cast<std::uint32_t>(i);
    cap_local_.resize(nc);
    residual_local_.resize(nc);
    for (std::size_t i = 0; i < nc; ++i) cap_local_[i] = capacity_[comp_res_[i]];

    // Flatten flow->resource lists into local indices; build views after
    // the flat buffer stops growing (pointers into it must stay stable).
    flow_res_flat_.clear();
    views_.resize(nf);
    rates_local_.resize(nf);
    for (std::size_t i = 0; i < nf; ++i) {
      const Slot& s = slots_[comp_flows_[i]];
      views_[i].resource_count = s.resources.size();
      views_[i].weight = s.weight;
      views_[i].rate_cap = s.rate_cap;
      for (std::size_t r : s.resources)
        flow_res_flat_.push_back(res_local_[r]);
    }
    std::size_t offset = 0;
    for (std::size_t i = 0; i < nf; ++i) {
      views_[i].resources = flow_res_flat_.data() + offset;
      offset += views_[i].resource_count;
    }

    fair_share_fill(cap_local_.data(), nc, views_.data(), nf,
                    rates_local_.data(), residual_local_.data(),
                    fill_scratch_);

    for (std::size_t i = 0; i < nf; ++i) {
      Slot& s = slots_[comp_flows_[i]];
      if (s.rate != rates_local_[i]) {
        s.rate = rates_local_[i];
        changed_.push_back(comp_flows_[i]);
      }
    }
    for (std::size_t i = 0; i < nc; ++i)
      residual_[comp_res_[i]] = residual_local_[i];

    dirty_resources_.clear();
    ++dirty_epoch_;
  }

  last_solved_flows_ = comp_flows_.size();
  ++solves_;
  return changed_;
}

}  // namespace remos::netsim
