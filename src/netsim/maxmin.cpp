#include "netsim/maxmin.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace remos::netsim {

namespace {

void validate(const std::vector<double>& capacity,
              const std::vector<MaxMinFlow>& flows) {
  for (double c : capacity)
    if (c < 0 || std::isnan(c))
      throw InvalidArgument("max_min_allocate: negative/NaN capacity");
  for (const MaxMinFlow& f : flows) {
    if (f.weight <= 0 || !std::isfinite(f.weight))
      throw InvalidArgument("max_min_allocate: non-positive weight");
    if (f.rate_cap < 0 || std::isnan(f.rate_cap))
      throw InvalidArgument("max_min_allocate: negative/NaN rate cap");
    for (std::size_t r : f.resources)
      if (r >= capacity.size())
        throw InvalidArgument("max_min_allocate: resource index out of range");
  }
}

}  // namespace

MaxMinResult max_min_allocate(const std::vector<double>& capacity,
                              const std::vector<MaxMinFlow>& flows) {
  validate(capacity, flows);
  const std::size_t nf = flows.size();
  const std::size_t nr = capacity.size();

  MaxMinResult out;
  out.rates.assign(nf, 0.0);
  out.residual = capacity;

  // active[i]: flow i still grows with the water level.
  std::vector<bool> active(nf, true);
  // Weight and count of active flows per resource.  The count matters:
  // subtracting weights leaves float residue (~1e-16), and a "saturated"
  // resource with zero remaining flows but ghost weight would pin the
  // water level forever.
  std::vector<double> active_weight(nr, 0.0);
  std::vector<std::size_t> active_count(nr, 0);
  for (std::size_t i = 0; i < nf; ++i) {
    for (std::size_t r : flows[i].resources) {
      active_weight[r] += flows[i].weight;
      ++active_count[r];
    }
  }

  // Flows with no cap and no resources would grow forever; freeze them at
  // infinity immediately (a flow across a zero-hop path is not rate
  // limited by the network).
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    if (flows[i].resources.empty() &&
        flows[i].rate_cap == kUnlimitedRate) {
      out.rates[i] = kUnlimitedRate;
      active[i] = false;
    } else {
      ++remaining;
    }
  }

  double level = 0.0;  // water level: active flow i has rate weight_i*level
  // Every iteration freezes at least one flow, so nf + 1 rounds suffice;
  // exceeding that means a numeric-progress bug and must fail loudly
  // rather than spin.
  std::size_t iterations_left = nf + 2;
  while (remaining > 0) {
    if (iterations_left-- == 0)
      throw Error("max_min_allocate: failed to make progress");
    // Next event: a resource saturates or a flow hits its demand cap.
    double next_level = kUnlimitedRate;
    for (std::size_t r = 0; r < nr; ++r) {
      if (active_count[r] == 0 || active_weight[r] <= 0) continue;
      const double lvl = level + out.residual[r] / active_weight[r];
      next_level = std::min(next_level, lvl);
    }
    for (std::size_t i = 0; i < nf; ++i) {
      if (!active[i] || flows[i].rate_cap == kUnlimitedRate) continue;
      next_level = std::min(next_level, flows[i].rate_cap / flows[i].weight);
    }
    if (next_level == kUnlimitedRate) {
      // No constraint binds the remaining flows (all-infinite capacities).
      for (std::size_t i = 0; i < nf; ++i)
        if (active[i]) out.rates[i] = kUnlimitedRate;
      break;
    }

    // Advance all active flows to the new level and charge resources.
    const double delta = next_level - level;
    if (delta > 0) {
      for (std::size_t i = 0; i < nf; ++i) {
        if (!active[i]) continue;
        out.rates[i] += flows[i].weight * delta;
        for (std::size_t r : flows[i].resources)
          out.residual[r] -= flows[i].weight * delta;
      }
      for (double& res : out.residual) res = std::max(res, 0.0);
    }
    level = next_level;

    // Freeze flows that hit their cap or sit on a saturated resource.
    constexpr double kEps = 1e-12;
    for (std::size_t i = 0; i < nf; ++i) {
      if (!active[i]) continue;
      bool freeze = flows[i].rate_cap != kUnlimitedRate &&
                    out.rates[i] >= flows[i].rate_cap - kEps;
      if (!freeze) {
        for (std::size_t r : flows[i].resources) {
          if (out.residual[r] <= kEps * std::max(1.0, capacity[r])) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        active[i] = false;
        --remaining;
        for (std::size_t r : flows[i].resources) {
          active_weight[r] -= flows[i].weight;
          --active_count[r];
        }
      }
    }
  }
  return out;
}

bool is_max_min_fair(const std::vector<double>& capacity,
                     const std::vector<MaxMinFlow>& flows,
                     const std::vector<double>& rates, double eps) {
  if (rates.size() != flows.size()) return false;
  const std::size_t nr = capacity.size();
  std::vector<double> used(nr, 0.0);
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] < -eps) return false;
    if (rates[i] > flows[i].rate_cap + eps) return false;
    if (std::isinf(rates[i])) {
      // An infinite rate is only legal if nothing on its path is finite.
      for (std::size_t r : flows[i].resources)
        if (std::isfinite(capacity[r])) return false;
      continue;
    }
    for (std::size_t r : flows[i].resources) used[r] += rates[i];
  }
  // Feasibility.
  for (std::size_t r = 0; r < nr; ++r) {
    const double slack_eps = eps * std::max(1.0, capacity[r]);
    if (used[r] > capacity[r] + slack_eps) return false;
  }
  // Max-min property: every flow below its cap must traverse a resource
  // that is saturated AND on which it has the (weakly) largest weighted
  // rate among the flows using that resource.
  for (std::size_t i = 0; i < flows.size(); ++i) {
    if (rates[i] >= flows[i].rate_cap - eps) continue;  // demand-limited
    bool justified = false;
    for (std::size_t r : flows[i].resources) {
      const double slack_eps = eps * std::max(1.0, capacity[r]);
      if (used[r] < capacity[r] - slack_eps) continue;  // not saturated
      bool largest_here = true;
      const double my_norm = rates[i] / flows[i].weight;
      for (std::size_t j = 0; j < flows.size(); ++j) {
        if (j == i) continue;
        const auto& res_j = flows[j].resources;
        if (std::find(res_j.begin(), res_j.end(), r) == res_j.end()) continue;
        if (rates[j] / flows[j].weight > my_norm + eps) {
          largest_here = false;
          break;
        }
      }
      if (largest_here) {
        justified = true;
        break;
      }
    }
    if (!justified) return false;
  }
  return true;
}

}  // namespace remos::netsim
