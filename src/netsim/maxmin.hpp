// Weighted max-min fair bandwidth allocation with per-flow demand caps.
//
// This is the sharing model the paper adopts as the network-independent
// default: "all else being equal, the bottleneck link bandwidth will be
// shared equally by all flows (not being bottlenecked elsewhere)" -- the
// max-min fair share policy of Jaffe [14], the basis of ATM ABR flow
// control [16].  Weights generalize "equally" to "proportionally", which
// is what Remos variable-flow queries need (a 3 : 4.5 : 9 request resolves
// to a 1 : 1.5 : 3 allocation on a 5.5 Mbps bottleneck).
//
// Resources are abstract capacity pools.  The simulator maps each
// *direction* of each full-duplex link to one resource and each network
// node with finite internal bandwidth to another, so a single solve
// captures link sharing and switch-backplane sharing simultaneously.
#pragma once

#include <cstddef>
#include <limits>
#include <vector>

#include "util/units.hpp"

namespace remos::netsim {

inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

/// One flow as the solver sees it: the set of resources it consumes, its
/// fairness weight, and an upper bound on useful rate (its demand).
struct MaxMinFlow {
  std::vector<std::size_t> resources;
  double weight = 1.0;
  double rate_cap = kUnlimitedRate;
};

/// Result of an allocation.
struct MaxMinResult {
  /// Allocated rate per flow, in the input order.
  std::vector<double> rates;
  /// Remaining capacity per resource after allocation.
  std::vector<double> residual;
};

/// Computes the weighted max-min fair allocation by progressive filling:
/// all unfrozen flows grow at speed proportional to their weight until a
/// resource saturates (its flows freeze at their current rate) or a flow
/// reaches its cap (it freezes there).  Runs in O(iterations * (F + R))
/// with at most F + R iterations.
///
/// Preconditions: capacities >= 0, weights > 0, resource indices in range.
/// A flow with an empty resource list is limited only by its cap.
MaxMinResult max_min_allocate(const std::vector<double>& capacity,
                              const std::vector<MaxMinFlow>& flows);

/// Verifies the max-min property of an allocation (used by property tests
/// and available for debugging): no resource is over-subscribed, and no
/// flow can increase its rate without decreasing that of another flow with
/// equal or smaller weighted rate.  Returns true if `rates` is a valid
/// weighted max-min allocation for the instance, within tolerance `eps`.
bool is_max_min_fair(const std::vector<double>& capacity,
                     const std::vector<MaxMinFlow>& flows,
                     const std::vector<double>& rates, double eps = 1e-6);

}  // namespace remos::netsim
