// Weighted max-min fair bandwidth allocation with per-flow demand caps.
//
// This is the sharing model the paper adopts as the network-independent
// default: "all else being equal, the bottleneck link bandwidth will be
// shared equally by all flows (not being bottlenecked elsewhere)" -- the
// max-min fair share policy of Jaffe [14], the basis of ATM ABR flow
// control [16].  Weights generalize "equally" to "proportionally", which
// is what Remos variable-flow queries need (a 3 : 4.5 : 9 request resolves
// to a 1 : 1.5 : 3 allocation on a 5.5 Mbps bottleneck).
//
// Resources are abstract capacity pools.  The simulator maps each
// *direction* of each full-duplex link to one resource and each network
// node with finite internal bandwidth to another, so a single solve
// captures link sharing and switch-backplane sharing simultaneously.
//
// Two solvers share one progressive-filling core (util/sharing.hpp):
//   - max_min_allocate: from-scratch batch solve.  Kept as the oracle the
//     differential test suite compares against.
//   - IncrementalMaxMin: maintains flows and per-resource residuals
//     across churn (add/remove/update/capacity events) and re-solves only
//     the connected component(s) of the flow-resource graph touched by
//     the dirty set.  The max-min allocation is unique and decomposes
//     over those components, so the incremental result is exact, not an
//     approximation.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

#include "util/sharing.hpp"
#include "util/units.hpp"

namespace remos::netsim {

inline constexpr double kUnlimitedRate =
    std::numeric_limits<double>::infinity();

/// One flow as the solver sees it: the set of resources it consumes, its
/// fairness weight, and an upper bound on useful rate (its demand).
struct MaxMinFlow {
  std::vector<std::size_t> resources;
  double weight = 1.0;
  double rate_cap = kUnlimitedRate;
};

/// Result of an allocation.
struct MaxMinResult {
  /// Allocated rate per flow, in the input order.
  std::vector<double> rates;
  /// Remaining capacity per resource after allocation.
  std::vector<double> residual;
};

/// Computes the weighted max-min fair allocation by progressive filling:
/// all unfrozen flows grow at speed proportional to their weight until a
/// resource saturates (its flows freeze at their current rate) or a flow
/// reaches its cap (it freezes there).  Runs in O(iterations * (F + R))
/// with at most F + R iterations.
///
/// Preconditions: capacities >= 0, weights > 0, resource indices in range.
/// A flow with an empty resource list is limited only by its cap.
MaxMinResult max_min_allocate(const std::vector<double>& capacity,
                              const std::vector<MaxMinFlow>& flows);

/// Verifies the max-min property of an allocation (used by property tests
/// and available for debugging): no resource is over-subscribed, and no
/// flow can increase its rate without decreasing that of another flow with
/// equal or smaller weighted rate.  Returns true if `rates` is a valid
/// weighted max-min allocation for the instance, within tolerance `eps`.
bool is_max_min_fair(const std::vector<double>& capacity,
                     const std::vector<MaxMinFlow>& flows,
                     const std::vector<double>& rates, double eps = 1e-6);

/// Handle to a flow registered with IncrementalMaxMin.  Handles are dense
/// small integers; freed handles are recycled.
using FlowHandle = std::size_t;

inline constexpr FlowHandle kInvalidFlowHandle =
    std::numeric_limits<std::size_t>::max();

/// Incremental weighted max-min solver.
///
/// Mutations (add_flow / remove_flow / update_flow / set_capacity) mark
/// the touched resources dirty; solve() grows the dirty set to the full
/// connected component(s) of the flow-resource bipartite graph reachable
/// from it and re-runs the shared progressive fill on those components
/// only.  Rates of flows outside the dirty components are untouched --
/// correctness rests on the decomposition property: no flow in a
/// component shares a resource with a flow outside it, so the global
/// unique max-min allocation restricted to the component equals the
/// component-local solve.
///
/// Residuals and rates are recomputed from scratch within a component on
/// every solve (never accumulated across solves), so there is no
/// floating-point drift: the incremental allocation matches a full
/// from-scratch solve bit-for-bit up to summation order.
///
/// All working storage (dirty stacks, BFS marks, component scratch, the
/// fill buffers) is retained between solves and only ever grows, so once
/// buffers reach their high-water mark the churn loop performs zero heap
/// allocations -- the property the differential test asserts by
/// instrumenting operator new.
class IncrementalMaxMin {
 public:
  IncrementalMaxMin() = default;
  explicit IncrementalMaxMin(std::vector<double> capacity) {
    reset(std::move(capacity));
  }

  /// Discards all flows and installs a new capacity vector.
  void reset(std::vector<double> capacity);

  std::size_t resource_count() const { return capacity_.size(); }
  std::size_t flow_count() const { return live_flows_; }

  /// Changes one resource's capacity; dirties the resource.
  void set_capacity(std::size_t resource, double value);
  double capacity(std::size_t resource) const;

  /// Registers a flow over `resources[0..n)`; returns its handle.
  /// Validation matches max_min_allocate (positive finite weight,
  /// non-negative cap, indices in range).
  FlowHandle add_flow(const std::size_t* resources, std::size_t n,
                      double weight, double rate_cap = kUnlimitedRate);
  FlowHandle add_flow(const MaxMinFlow& flow) {
    return add_flow(flow.resources.data(), flow.resources.size(), flow.weight,
                    flow.rate_cap);
  }

  /// Rebinds an existing flow (reroute / weight / cap change).  A call
  /// that changes nothing is a no-op and dirties nothing.
  void update_flow(FlowHandle handle, const std::size_t* resources,
                   std::size_t n, double weight,
                   double rate_cap = kUnlimitedRate);

  /// Unregisters a flow; its resources become dirty, the handle is
  /// recycled by a later add_flow.
  void remove_flow(FlowHandle handle);

  /// True if any mutation since the last solve() needs resolving.
  bool dirty() const {
    return !dirty_resources_.empty() || !dirty_lone_.empty();
  }

  /// Re-solves the dirty components.  Returns the handles of flows whose
  /// rate changed (valid until the next mutation or solve).  Cheap no-op
  /// when nothing is dirty.
  const std::vector<FlowHandle>& solve();

  /// Current allocated rate of a live flow.
  double rate(FlowHandle handle) const;
  /// Remaining capacity of a resource (as of the last solve touching it).
  double residual(std::size_t resource) const;

  /// Resources that were part of the component(s) re-solved by the last
  /// solve() -- exactly the set whose residuals may have changed.
  const std::vector<std::size_t>& last_solved_resources() const {
    return comp_res_;
  }
  /// Number of flows in the component(s) the last solve() re-ran the fill
  /// over (the cost driver; 0 when the solve was a no-op).
  std::size_t last_solved_flows() const { return last_solved_flows_; }
  /// Total solve() calls since reset (introspection for bench/tests).
  std::uint64_t solves() const { return solves_; }

 private:
  struct Slot {
    std::vector<std::size_t> resources;
    // pos[k]: index of this flow within res_flows_[resources[k]], kept
    // exact under swap-removal so detach is O(degree).
    std::vector<std::uint32_t> pos;
    double weight = 1.0;
    double rate_cap = kUnlimitedRate;
    double rate = 0.0;
    bool live = false;
  };

  void validate_flow(const std::size_t* resources, std::size_t n,
                     double weight, double rate_cap) const;
  /// Inserts `handle` into its resources' flow lists and dirties them.
  void attach(FlowHandle handle);
  /// Swap-removes `handle` from its resources' flow lists.
  void detach(FlowHandle handle);
  void mark_resource_dirty(std::size_t r);
  void mark_lone_dirty(FlowHandle handle);

  std::vector<double> capacity_;
  std::vector<double> residual_;
  std::vector<Slot> slots_;
  std::vector<FlowHandle> free_slots_;
  std::size_t live_flows_ = 0;
  // res_flows_[r]: handles of live flows using resource r (unordered).
  std::vector<std::vector<FlowHandle>> res_flows_;

  // Dirty tracking, deduplicated by epoch stamps (cleared lazily).
  std::vector<std::size_t> dirty_resources_;
  std::vector<FlowHandle> dirty_lone_;  // resource-less flows
  std::vector<std::uint64_t> res_dirty_stamp_;
  std::uint64_t dirty_epoch_ = 1;

  // Solve-time scratch: component discovery and local fill inputs.
  std::vector<std::uint64_t> res_visit_stamp_;
  std::vector<std::uint64_t> flow_visit_stamp_;
  std::uint64_t visit_epoch_ = 0;
  std::vector<std::uint32_t> res_local_;   // global resource -> local index
  std::vector<std::size_t> comp_res_;      // component resources (global)
  std::vector<FlowHandle> comp_flows_;     // component flows (handles)
  std::vector<std::size_t> bfs_stack_;     // resources pending expansion
  std::vector<double> cap_local_;
  std::vector<double> rates_local_;
  std::vector<double> residual_local_;
  std::vector<std::size_t> flow_res_flat_;  // local indices, all flows
  std::vector<FairShareFlowView> views_;
  FairShareScratch fill_scratch_;
  std::vector<FlowHandle> changed_;
  std::size_t last_solved_flows_ = 0;
  std::uint64_t solves_ = 0;
};

}  // namespace remos::netsim
