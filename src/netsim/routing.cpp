#include "netsim/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "util/error.hpp"

namespace remos::netsim {

namespace {

// Dijkstra cost: (hops, latency).  Lexicographic comparison gives
// hop-count-first routing with latency tie-break.
struct Cost {
  std::size_t hops = std::numeric_limits<std::size_t>::max();
  Seconds latency = std::numeric_limits<Seconds>::max();

  bool operator<(const Cost& o) const {
    return std::tie(hops, latency) < std::tie(o.hops, o.latency);
  }
  bool operator==(const Cost& o) const {
    return hops == o.hops && latency == o.latency;
  }
};

}  // namespace

RoutingTable::RoutingTable(const Topology& topology)
    : RoutingTable(topology,
                   std::vector<bool>(topology.link_count(), true)) {}

RoutingTable::RoutingTable(const Topology& topology,
                           const std::vector<bool>& link_enabled)
    : topology_(&topology), n_(topology.node_count()) {
  if (link_enabled.size() != topology.link_count())
    throw InvalidArgument("RoutingTable: link_enabled size mismatch");
  paths_.resize(n_ * n_);
  for (std::size_t s = 0; s < n_; ++s) {
    const auto src = static_cast<NodeId>(s);
    std::vector<Cost> best(n_);
    std::vector<NodeId> prev_node(n_, kInvalidNode);
    std::vector<LinkId> prev_link(n_, kInvalidLink);
    best[s] = Cost{0, 0};

    using QueueEntry = std::pair<Cost, NodeId>;
    auto cmp = [](const QueueEntry& a, const QueueEntry& b) {
      if (b.first < a.first) return true;
      if (a.first < b.first) return false;
      return a.second > b.second;  // deterministic: lower id first
    };
    std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(cmp)>
        queue(cmp);
    queue.push({best[s], src});

    while (!queue.empty()) {
      const auto [cost, u] = queue.top();
      queue.pop();
      if (best[static_cast<std::size_t>(u)] < cost) continue;
      // Compute nodes do not forward: only the source expands from a host.
      if (u != src && topology.node(u).kind == NodeKind::kCompute) continue;
      for (LinkId lid : topology.links_at(u)) {
        if (!link_enabled[static_cast<std::size_t>(lid)]) continue;
        const Link& l = topology.link(lid);
        const NodeId v = l.other(u);
        const Cost cand{cost.hops + 1, cost.latency + l.latency};
        auto& bv = best[static_cast<std::size_t>(v)];
        const bool better = cand < bv;
        // Equal-cost tie-break: prefer the predecessor with the smaller id
        // so the chosen path is unique and stable.
        const bool tie_wins =
            cand == bv && u < prev_node[static_cast<std::size_t>(v)];
        if (better || tie_wins) {
          bv = cand;
          prev_node[static_cast<std::size_t>(v)] = u;
          prev_link[static_cast<std::size_t>(v)] = lid;
          queue.push({cand, v});
        }
      }
    }

    for (std::size_t d = 0; d < n_; ++d) {
      const auto dst = static_cast<NodeId>(d);
      Path& p = paths_[s * n_ + d];
      if (s == d) {
        p.nodes = {src};
        continue;
      }
      if (prev_node[d] == kInvalidNode) continue;  // unreachable
      NodeId cur = dst;
      while (cur != src) {
        p.nodes.push_back(cur);
        p.links.push_back(prev_link[static_cast<std::size_t>(cur)]);
        cur = prev_node[static_cast<std::size_t>(cur)];
      }
      p.nodes.push_back(src);
      std::reverse(p.nodes.begin(), p.nodes.end());
      std::reverse(p.links.begin(), p.links.end());
    }
  }
}

const Path& RoutingTable::route(NodeId src, NodeId dst) const {
  const Path& p = paths_[index(src, dst)];
  if (!p.valid())
    throw NotFoundError("no route from " + topology_->name_of(src) + " to " +
                        topology_->name_of(dst));
  return p;
}

bool RoutingTable::reachable(NodeId src, NodeId dst) const {
  return paths_[index(src, dst)].valid();
}

Seconds RoutingTable::path_latency(NodeId src, NodeId dst) const {
  const Path& p = route(src, dst);
  Seconds total = 0;
  for (LinkId lid : p.links) total += topology_->link(lid).latency;
  return total;
}

BitsPerSec RoutingTable::path_capacity(NodeId src, NodeId dst) const {
  const Path& p = route(src, dst);
  BitsPerSec cap = std::numeric_limits<BitsPerSec>::infinity();
  for (LinkId lid : p.links)
    cap = std::min(cap, topology_->link(lid).capacity);
  return cap;
}

std::size_t RoutingTable::index(NodeId src, NodeId dst) const {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n_ ||
      static_cast<std::size_t>(dst) >= n_)
    throw NotFoundError("RoutingTable: node id out of range");
  return static_cast<std::size_t>(src) * n_ + static_cast<std::size_t>(dst);
}

}  // namespace remos::netsim
