#include "netsim/routing.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <tuple>

#include "util/error.hpp"

namespace remos::netsim {

namespace {

// Dijkstra cost: (hops, latency).  Lexicographic comparison gives
// hop-count-first routing with latency tie-break.
struct Cost {
  std::size_t hops = std::numeric_limits<std::size_t>::max();
  Seconds latency = std::numeric_limits<Seconds>::max();

  bool operator<(const Cost& o) const {
    return std::tie(hops, latency) < std::tie(o.hops, o.latency);
  }
  bool operator==(const Cost& o) const {
    return hops == o.hops && latency == o.latency;
  }
};

}  // namespace

RoutingTable::RoutingTable(const Topology& topology)
    : RoutingTable(topology,
                   std::vector<bool>(topology.link_count(), true)) {}

RoutingTable::RoutingTable(const Topology& topology,
                           const std::vector<bool>& link_enabled)
    : topology_(&topology),
      link_enabled_(link_enabled),
      n_(topology.node_count()),
      rows_(topology.node_count()) {
  if (link_enabled_.size() != topology.link_count())
    throw InvalidArgument("RoutingTable: link_enabled size mismatch");
}

const RoutingTable::Row& RoutingTable::row_for(NodeId src) const {
  const auto s = static_cast<std::size_t>(src);
  if (rows_[s]) return *rows_[s];

  const Topology& topology = *topology_;
  auto row = std::make_unique<Row>();
  row->prev_node.assign(n_, kInvalidNode);
  row->prev_link.assign(n_, kInvalidLink);
  std::vector<Cost> best(n_);
  best[s] = Cost{0, 0};

  using QueueEntry = std::pair<Cost, NodeId>;
  auto cmp = [](const QueueEntry& a, const QueueEntry& b) {
    if (b.first < a.first) return true;
    if (a.first < b.first) return false;
    return a.second > b.second;  // deterministic: lower id first
  };
  std::priority_queue<QueueEntry, std::vector<QueueEntry>, decltype(cmp)>
      queue(cmp);
  queue.push({best[s], src});

  while (!queue.empty()) {
    const auto [cost, u] = queue.top();
    queue.pop();
    if (best[static_cast<std::size_t>(u)] < cost) continue;
    // Compute nodes do not forward: only the source expands from a host.
    if (u != src && topology.node(u).kind == NodeKind::kCompute) continue;
    for (LinkId lid : topology.links_at(u)) {
      if (!link_enabled_[static_cast<std::size_t>(lid)]) continue;
      const Link& l = topology.link(lid);
      const NodeId v = l.other(u);
      const Cost cand{cost.hops + 1, cost.latency + l.latency};
      auto& bv = best[static_cast<std::size_t>(v)];
      const bool better = cand < bv;
      // Equal-cost tie-break: prefer the predecessor with the smaller id
      // so the chosen path is unique and stable.
      const bool tie_wins =
          cand == bv && u < row->prev_node[static_cast<std::size_t>(v)];
      if (better || tie_wins) {
        bv = cand;
        row->prev_node[static_cast<std::size_t>(v)] = u;
        row->prev_link[static_cast<std::size_t>(v)] = lid;
        queue.push({cand, v});
      }
    }
  }

  rows_[s] = std::move(row);
  ++rows_built_;
  return *rows_[s];
}

Path RoutingTable::route(NodeId src, NodeId dst) const {
  check(src, dst);
  Path p;
  if (src == dst) {
    p.nodes = {src};
    return p;
  }
  const Row& row = row_for(src);
  const auto d = static_cast<std::size_t>(dst);
  if (row.prev_node[d] == kInvalidNode)
    throw NotFoundError("no route from " + topology_->name_of(src) + " to " +
                        topology_->name_of(dst));
  NodeId cur = dst;
  while (cur != src) {
    p.nodes.push_back(cur);
    p.links.push_back(row.prev_link[static_cast<std::size_t>(cur)]);
    cur = row.prev_node[static_cast<std::size_t>(cur)];
  }
  p.nodes.push_back(src);
  std::reverse(p.nodes.begin(), p.nodes.end());
  std::reverse(p.links.begin(), p.links.end());
  return p;
}

bool RoutingTable::reachable(NodeId src, NodeId dst) const {
  check(src, dst);
  if (src == dst) return true;
  return row_for(src).prev_node[static_cast<std::size_t>(dst)] !=
         kInvalidNode;
}

Seconds RoutingTable::path_latency(NodeId src, NodeId dst) const {
  check(src, dst);
  if (src == dst) return 0;
  const Row& row = row_for(src);
  if (row.prev_node[static_cast<std::size_t>(dst)] == kInvalidNode)
    throw NotFoundError("no route from " + topology_->name_of(src) + " to " +
                        topology_->name_of(dst));
  Seconds total = 0;
  for (NodeId cur = dst; cur != src;
       cur = row.prev_node[static_cast<std::size_t>(cur)])
    total += topology_->link(row.prev_link[static_cast<std::size_t>(cur)])
                 .latency;
  return total;
}

BitsPerSec RoutingTable::path_capacity(NodeId src, NodeId dst) const {
  check(src, dst);
  BitsPerSec cap = std::numeric_limits<BitsPerSec>::infinity();
  if (src == dst) return cap;
  const Row& row = row_for(src);
  if (row.prev_node[static_cast<std::size_t>(dst)] == kInvalidNode)
    throw NotFoundError("no route from " + topology_->name_of(src) + " to " +
                        topology_->name_of(dst));
  for (NodeId cur = dst; cur != src;
       cur = row.prev_node[static_cast<std::size_t>(cur)])
    cap = std::min(
        cap,
        topology_->link(row.prev_link[static_cast<std::size_t>(cur)])
            .capacity);
  return cap;
}

void RoutingTable::check(NodeId src, NodeId dst) const {
  if (src < 0 || dst < 0 || static_cast<std::size_t>(src) >= n_ ||
      static_cast<std::size_t>(dst) >= n_)
    throw NotFoundError("RoutingTable: node id out of range");
}

}  // namespace remos::netsim
