// Static shortest-path routing over a Topology.
//
// Routes are computed once from the topology (IP-style static routing on
// the paper's testbed): shortest by hop count, ties broken by lower total
// latency, then by lexicographically smallest node-id sequence so routing
// is fully deterministic.  Compute nodes never forward traffic -- interior
// path nodes must be network nodes (hosts are stub-attached, as on the CMU
// testbed).
#pragma once

#include <vector>

#include "netsim/topology.hpp"

namespace remos::netsim {

/// A route from src to dst: the node sequence (src first, dst last) and
/// the link sequence (one shorter).  Empty links with nodes == {src} means
/// src == dst.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  std::size_t hops() const { return links.size(); }
  bool valid() const { return !nodes.empty(); }
};

/// All-pairs route table, precomputed by per-source Dijkstra.
class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topology);

  /// Routes over a partial network: links whose id maps to false in
  /// `link_enabled` are ignored (failure/maintenance scenarios).
  RoutingTable(const Topology& topology,
               const std::vector<bool>& link_enabled);

  /// Route from src to dst; throws NotFoundError if dst is unreachable.
  const Path& route(NodeId src, NodeId dst) const;

  /// True if dst is reachable from src.
  bool reachable(NodeId src, NodeId dst) const;

  /// Total one-way path latency (sum of link latencies).
  Seconds path_latency(NodeId src, NodeId dst) const;

  /// Minimum link capacity along the route (static bottleneck).
  BitsPerSec path_capacity(NodeId src, NodeId dst) const;

 private:
  std::size_t index(NodeId src, NodeId dst) const;

  const Topology* topology_;
  std::size_t n_;
  std::vector<Path> paths_;  // n*n entries; invalid Path if unreachable
};

}  // namespace remos::netsim
