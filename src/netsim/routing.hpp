// Static shortest-path routing over a Topology.
//
// Routes are computed from the topology (IP-style static routing on the
// paper's testbed): shortest by hop count, ties broken by lower total
// latency, then by lexicographically smallest node-id sequence so routing
// is fully deterministic.  Compute nodes never forward traffic -- interior
// path nodes must be network nodes (hosts are stub-attached, as on the CMU
// testbed).
//
// Scale plane: instead of materializing all n^2 Path objects up front
// (quadratic memory and O(n^2 * pathlen) build time, prohibitive at
// 1024+ hosts), the table keeps one next-hop row per *source* --
// predecessor node + predecessor link for every destination, exactly the
// Dijkstra output -- computed lazily on first use and memoized.  route()
// reconstructs the Path from the row in O(path length).  The table is
// immutable with respect to the topology snapshot it was built from;
// topology changes (link up/down) build a fresh table, which drops every
// cached row at once.
#pragma once

#include <memory>
#include <vector>

#include "netsim/topology.hpp"

namespace remos::netsim {

/// A route from src to dst: the node sequence (src first, dst last) and
/// the link sequence (one shorter).  Empty links with nodes == {src} means
/// src == dst.
struct Path {
  std::vector<NodeId> nodes;
  std::vector<LinkId> links;

  std::size_t hops() const { return links.size(); }
  bool valid() const { return !nodes.empty(); }
};

/// Route table with per-source next-hop rows, built lazily by per-source
/// Dijkstra and cached for the lifetime of the table.
class RoutingTable {
 public:
  explicit RoutingTable(const Topology& topology);

  /// Routes over a partial network: links whose id maps to false in
  /// `link_enabled` are ignored (failure/maintenance scenarios).
  RoutingTable(const Topology& topology,
               const std::vector<bool>& link_enabled);

  /// Route from src to dst, reconstructed from the source's next-hop row
  /// in O(path length); throws NotFoundError if dst is unreachable.
  Path route(NodeId src, NodeId dst) const;

  /// True if dst is reachable from src.
  bool reachable(NodeId src, NodeId dst) const;

  /// Total one-way path latency (sum of link latencies).
  Seconds path_latency(NodeId src, NodeId dst) const;

  /// Minimum link capacity along the route (static bottleneck).
  BitsPerSec path_capacity(NodeId src, NodeId dst) const;

  /// Number of per-source rows computed so far (cache introspection;
  /// at most node_count).
  std::size_t cached_sources() const { return rows_built_; }

 private:
  /// Per-source Dijkstra output: predecessor node and the link taken to
  /// reach each destination (kInvalidNode where unreachable).
  struct Row {
    std::vector<NodeId> prev_node;
    std::vector<LinkId> prev_link;
  };

  void check(NodeId src, NodeId dst) const;
  /// The memoized row for src, running Dijkstra on first use.
  const Row& row_for(NodeId src) const;

  const Topology* topology_;
  std::vector<bool> link_enabled_;
  std::size_t n_;
  mutable std::vector<std::unique_ptr<Row>> rows_;
  mutable std::size_t rows_built_ = 0;
};

}  // namespace remos::netsim
