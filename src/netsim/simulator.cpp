#include "netsim/simulator.hpp"

#include <algorithm>
#include <cmath>

#include "util/error.hpp"

namespace remos::netsim {

namespace {
// Relative tolerance for "flow has delivered its whole volume".
constexpr double kDoneEps = 1e-9;
}  // namespace

Simulator::Simulator(Topology topology)
    : topology_(std::move(topology)),
      link_up_(topology_.link_count(), true),
      cpu_load_(topology_.node_count(), 0.0),
      routing_(topology_) {
  const std::size_t nl = topology_.link_count();
  const std::size_t nn = topology_.node_count();
  resource_capacity_.assign(2 * nl + nn, 0.0);
  for (const Link& l : topology_.links()) {
    resource_capacity_[dir_index(l.id, true)] = l.capacity;
    resource_capacity_[dir_index(l.id, false)] = l.capacity;
  }
  for (const Node& n : topology_.nodes()) {
    resource_capacity_[2 * nl + static_cast<std::size_t>(n.id)] =
        n.internal_bw > 0 ? n.internal_bw : kUnlimitedRate;
  }
  dir_tx_bytes_.assign(2 * nl, 0.0);
  dir_tx_rate_.assign(2 * nl, 0.0);
  solver_.reset(resource_capacity_);
}

FlowId Simulator::start_flow(NodeId src, NodeId dst, FlowOptions options,
                             FlowCallback on_complete) {
  if (topology_.node(src).kind != NodeKind::kCompute ||
      topology_.node(dst).kind != NodeKind::kCompute)
    throw InvalidArgument("start_flow: endpoints must be compute nodes");
  if (src == dst) throw InvalidArgument("start_flow: src == dst");
  if (options.weight <= 0) throw InvalidArgument("start_flow: weight <= 0");
  if (options.demand_cap <= 0)
    throw InvalidArgument("start_flow: demand_cap <= 0");
  if (options.volume <= 0) throw InvalidArgument("start_flow: volume <= 0");

  Flow f;
  f.id = next_flow_id_++;
  f.src = src;
  f.dst = dst;
  f.options = std::move(options);
  f.on_complete = std::move(on_complete);
  f.started = now_;
  bind_path(f);
  if (f.stalled && !any_link_down()) {
    // On an intact network an unreachable pair is a caller error, not a
    // transient condition.
    throw NotFoundError("start_flow: no route from " +
                        topology_.name_of(src) + " to " +
                        topology_.name_of(dst));
  }
  const FlowId id = f.id;
  auto it = flows_.emplace(id, std::move(f)).first;
  if (!it->second.stalled) attach_solver(it->second);
  allocation_dirty_ = true;
  return id;
}

FlowId Simulator::start_flow(const std::string& src, const std::string& dst,
                             FlowOptions options, FlowCallback on_complete) {
  return start_flow(topology_.id_of(src), topology_.id_of(dst),
                    std::move(options), std::move(on_complete));
}

void Simulator::bind_path(Flow& f) {
  f.resources.clear();
  f.tx_dirs.clear();
  f.stalled = false;
  if (!routing_.reachable(f.src, f.dst)) {
    f.stalled = true;
    return;
  }
  const Path& path = routing_.route(f.src, f.dst);
  const std::size_t nl = topology_.link_count();
  for (std::size_t i = 0; i < path.links.size(); ++i) {
    const Link& l = topology_.link(path.links[i]);
    const bool from_a = path.nodes[i] == l.a;
    const std::size_t dir = dir_index(l.id, from_a);
    f.tx_dirs.push_back(dir);
    f.resources.push_back(dir);
  }
  for (NodeId n : path.nodes) {
    if (topology_.node(n).internal_bw > 0)
      f.resources.push_back(2 * nl + static_cast<std::size_t>(n));
  }
}

bool Simulator::any_link_down() const {
  for (bool up : link_up_)
    if (!up) return true;
  return false;
}

void Simulator::attach_solver(Flow& f) {
  f.solver_handle = solver_.add_flow(f.resources.data(), f.resources.size(),
                                     f.options.weight, f.options.demand_cap);
  if (slot_owner_.size() <= f.solver_handle)
    slot_owner_.resize(f.solver_handle + 1, -1);
  slot_owner_[f.solver_handle] = f.id;
}

void Simulator::detach_solver(Flow& f) {
  if (f.solver_handle == kInvalidFlowHandle) return;
  solver_.remove_flow(f.solver_handle);
  slot_owner_[f.solver_handle] = -1;
  f.solver_handle = kInvalidFlowHandle;
}

void Simulator::set_link_up(LinkId id, bool up) {
  const Link& link = topology_.link(id);  // bounds check
  if (link_up_[static_cast<std::size_t>(id)] == up) return;
  link_up_[static_cast<std::size_t>(id)] = up;
  const double dir_cap = up ? link.capacity : 0.0;
  resource_capacity_[dir_index(id, true)] = dir_cap;
  resource_capacity_[dir_index(id, false)] = dir_cap;
  solver_.set_capacity(dir_index(id, true), dir_cap);
  solver_.set_capacity(dir_index(id, false), dir_cap);
  routing_ = RoutingTable(topology_, link_up_);
  for (auto& [fid, flow] : flows_) {
    bind_path(flow);
    if (flow.stalled) {
      detach_solver(flow);
      flow.rate = 0.0;
    } else if (flow.solver_handle != kInvalidFlowHandle) {
      solver_.update_flow(flow.solver_handle, flow.resources.data(),
                          flow.resources.size(), flow.options.weight,
                          flow.options.demand_cap);
    } else {
      attach_solver(flow);
    }
  }
  allocation_dirty_ = true;
}

bool Simulator::link_up(LinkId id) const {
  topology_.link(id);
  return link_up_[static_cast<std::size_t>(id)];
}

void Simulator::set_cpu_load(NodeId id, double load) {
  if (topology_.node(id).kind != NodeKind::kCompute)
    throw InvalidArgument("set_cpu_load: not a compute node");
  if (load < 0.0 || load >= 1.0)
    throw InvalidArgument("set_cpu_load: load outside [0, 1)");
  cpu_load_[static_cast<std::size_t>(id)] = load;
}

double Simulator::cpu_load(NodeId id) const {
  topology_.node(id);
  return cpu_load_[static_cast<std::size_t>(id)];
}

void Simulator::enable_telemetry(obs::TimeSeriesStore& store, Seconds period) {
  if (period <= 0)
    throw InvalidArgument("enable_telemetry: period <= 0");
  telemetry_.assign(dir_tx_rate_.size(), nullptr);
  for (const Link& l : topology_.links()) {
    const std::string base = "sim.link." + topology_.name_of(l.a) + "~" +
                             topology_.name_of(l.b);
    telemetry_[dir_index(l.id, true)] = &store.series(base + ".ab");
    telemetry_[dir_index(l.id, false)] = &store.series(base + ".ba");
  }
  telemetry_period_ = period;
  // First sample lands on the next period boundary strictly after now.
  telemetry_due_ =
      (std::floor(now_ / period) + 1.0) * period;
}

void Simulator::sample_telemetry(Seconds upto) {
  while (telemetry_due_ <= upto) {
    for (const Link& l : topology_.links()) {
      if (l.capacity <= 0) continue;
      for (bool from_a : {true, false}) {
        const std::size_t dir = dir_index(l.id, from_a);
        telemetry_[dir]->append(telemetry_due_,
                                dir_tx_rate_[dir] / l.capacity);
      }
    }
    telemetry_due_ += telemetry_period_;
  }
}

double Simulator::effective_speed(NodeId id) const {
  return topology_.node(id).cpu_speed * (1.0 - cpu_load(id));
}

void Simulator::stop_flow(FlowId id) {
  auto it = flows_.find(id);
  if (it == flows_.end()) return;
  detach_solver(it->second);
  flows_.erase(it);
  allocation_dirty_ = true;
}

bool Simulator::flow_active(FlowId id) const { return flows_.contains(id); }

BitsPerSec Simulator::flow_rate(FlowId id) {
  if (allocation_dirty_) reallocate();
  return get_flow(id).rate;
}

Bytes Simulator::flow_sent(FlowId id) const { return get_flow(id).sent; }

FlowInfo Simulator::flow_info(FlowId id) const {
  const Flow& f = get_flow(id);
  return FlowInfo{f.id, f.src, f.dst, f.options, f.sent, f.rate, f.started};
}

std::vector<FlowInfo> Simulator::active_flows() const {
  std::vector<FlowInfo> out;
  out.reserve(flows_.size());
  for (const auto& [id, f] : flows_)
    out.push_back(FlowInfo{f.id, f.src, f.dst, f.options, f.sent, f.rate,
                           f.started});
  return out;
}

void Simulator::schedule(Seconds at, Callback fn) {
  if (at < now_) throw InvalidArgument("schedule: time in the past");
  if (!fn) throw InvalidArgument("schedule: empty callback");
  timers_.push(Timer{at, next_timer_seq_++, std::move(fn)});
}

void Simulator::reallocate() {
  // Re-solve only the dirty components; flows and directed links outside
  // them keep their rates untouched (residuals are recomputed inside the
  // component on every solve, so nothing drifts).
  for (const FlowHandle h : solver_.solve()) {
    auto it = flows_.find(slot_owner_[h]);
    if (it == flows_.end()) continue;
    it->second.rate = solver_.rate(h);
  }
  const std::size_t ndirs = dir_tx_rate_.size();
  for (const std::size_t r : solver_.last_solved_resources()) {
    if (r >= ndirs) continue;  // node backplane resource, not a link dir
    dir_tx_rate_[r] = std::max(0.0, resource_capacity_[r] - solver_.residual(r));
  }
  allocation_dirty_ = false;
}

void Simulator::integrate(Seconds dt) {
  if (dt <= 0) return;
  // Rates are constant across [now, now + dt]; telemetry boundaries in
  // this interval sample them exactly.
  if (!telemetry_.empty()) sample_telemetry(now_ + dt);
  for (auto& [id, f] : flows_) {
    if (f.rate <= 0) continue;
    const Bytes moved = f.rate * dt / 8.0;
    f.sent += moved;
    for (std::size_t dir : f.tx_dirs) dir_tx_bytes_[dir] += moved;
  }
}

bool Simulator::step(Seconds horizon) {
  if (allocation_dirty_) reallocate();

  // Candidate next event time: earliest timer, earliest flow completion.
  Seconds t_next = horizon;
  bool event_before_horizon = false;
  if (!timers_.empty() && timers_.top().at <= t_next) {
    t_next = timers_.top().at;
    event_before_horizon = true;
  }
  for (const auto& [id, f] : flows_) {
    if (f.options.volume == kUnboundedVolume || f.rate <= 0) continue;
    const Bytes left = f.options.volume - f.sent;
    const Seconds t_done = now_ + std::max(0.0, left) * 8.0 / f.rate;
    if (t_done <= t_next) {
      t_next = t_done;
      event_before_horizon = true;
    }
  }

  integrate(t_next - now_);
  now_ = t_next;

  // Complete finished flows first (they may be what a timer waits for).
  std::vector<Flow> finished;
  for (auto it = flows_.begin(); it != flows_.end();) {
    Flow& f = it->second;
    if (f.options.volume != kUnboundedVolume &&
        f.sent >= f.options.volume * (1.0 - kDoneEps)) {
      f.sent = f.options.volume;
      detach_solver(f);
      finished.push_back(std::move(f));
      it = flows_.erase(it);
      allocation_dirty_ = true;
    } else {
      ++it;
    }
  }
  for (Flow& f : finished)
    if (f.on_complete) f.on_complete(f.id);

  // Fire all timers due now (callbacks may schedule more).
  while (!timers_.empty() && timers_.top().at <= now_) {
    Callback fn = std::move(const_cast<Timer&>(timers_.top()).fn);
    timers_.pop();
    fn();
  }

  return event_before_horizon;
}

void Simulator::run_until(Seconds t) {
  if (t < now_) throw InvalidArgument("run_until: time in the past");
  while (now_ < t) {
    if (!step(t)) break;  // reached horizon with no intermediate events
  }
  // A timer callback may itself have advanced the clock (re-entrant use,
  // e.g. an active-probing collector); never move time backwards.
  if (now_ < t) now_ = t;
}

void Simulator::run_until_flows_done(const std::vector<FlowId>& ids) {
  auto pending = [&] {
    for (FlowId id : ids)
      if (flows_.contains(id)) return true;
    return false;
  };
  while (pending()) {
    // Detect deadlock: every tracked flow stalled and no timers remain.
    if (allocation_dirty_) reallocate();
    if (timers_.empty()) {
      bool any_moving = false;
      for (FlowId id : ids) {
        auto it = flows_.find(id);
        if (it != flows_.end() && it->second.rate > 0 &&
            it->second.options.volume != kUnboundedVolume)
          any_moving = true;
      }
      if (!any_moving)
        throw Error("run_until_flows_done: flows cannot make progress");
    }
    if (!step(std::numeric_limits<Seconds>::infinity()))
      throw Error("run_until_flows_done: no further events");
  }
}

Bytes Simulator::link_tx_bytes(LinkId id, bool from_a) const {
  topology_.link(id);  // bounds check
  return dir_tx_bytes_[dir_index(id, from_a)];
}

BitsPerSec Simulator::link_tx_rate(LinkId id, bool from_a) {
  topology_.link(id);
  if (allocation_dirty_) reallocate();
  return dir_tx_rate_[dir_index(id, from_a)];
}

double Simulator::link_utilization(LinkId id, bool from_a) {
  return link_tx_rate(id, from_a) / topology_.link(id).capacity;
}

const Simulator::Flow& Simulator::get_flow(FlowId id) const {
  auto it = flows_.find(id);
  if (it == flows_.end())
    throw NotFoundError("unknown/completed flow " + std::to_string(id));
  return it->second;
}

}  // namespace remos::netsim
