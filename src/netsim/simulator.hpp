// Fluid-flow, event-driven network simulator.
//
// The simulator advances a virtual clock over a Topology.  Traffic is
// modeled as flows: piecewise-constant-rate streams between compute
// nodes.  Whenever the flow set changes, the weighted max-min fair
// allocation over all directed-link and node-backplane resources is
// brought up to date incrementally (IncrementalMaxMin re-solves only the
// connected components of the flow-resource graph the change touched --
// exact, not approximate); between such events, rates are constant and
// byte counters (per flow and per link direction, the basis of the SNMP
// ifTable) are integrated exactly.
//
// This is the substitution for the paper's physical CMU testbed: the
// observable quantities Remos consumes -- per-link utilization and the
// throughput competing flows actually achieve -- are produced directly by
// the max-min sharing model the paper itself assumes for IP networks.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <queue>
#include <string>
#include <vector>

#include "netsim/maxmin.hpp"
#include "netsim/routing.hpp"
#include "netsim/topology.hpp"
#include "obs/timeseries.hpp"

namespace remos::netsim {

using FlowId = std::int64_t;

inline constexpr Bytes kUnboundedVolume =
    std::numeric_limits<Bytes>::infinity();

/// Parameters of a flow.
struct FlowOptions {
  /// Max-min fairness weight (TCP-like flows: 1).
  double weight = 1.0;
  /// Application demand ceiling; a CBR source sets its rate here.
  BitsPerSec demand_cap = kUnlimitedRate;
  /// Total bytes to move; kUnboundedVolume means the flow runs until
  /// stopped.  Finite flows complete and fire their callback.
  Bytes volume = kUnboundedVolume;
  /// Free-form label; lets a network-aware application recognize its own
  /// traffic in measurements (paper §8.3's self-interference discussion).
  std::string tag;
};

/// Read-only view of a live flow.
struct FlowInfo {
  FlowId id = -1;
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  FlowOptions options;
  Bytes sent = 0;
  BitsPerSec rate = 0;
  Seconds started = 0;
};

class Simulator {
 public:
  using Callback = std::function<void()>;
  using FlowCallback = std::function<void(FlowId)>;

  explicit Simulator(Topology topology);

  const Topology& topology() const { return topology_; }
  const RoutingTable& routing() const { return routing_; }
  Seconds now() const { return now_; }

  /// Starts a flow from src to dst along the static route.  The optional
  /// callback fires when a finite-volume flow completes (not when stopped).
  FlowId start_flow(NodeId src, NodeId dst, FlowOptions options = {},
                    FlowCallback on_complete = {});
  FlowId start_flow(const std::string& src, const std::string& dst,
                    FlowOptions options = {}, FlowCallback on_complete = {});

  /// Removes a flow; no-op if it already completed.
  void stop_flow(FlowId id);

  bool flow_active(FlowId id) const;
  /// Current allocated rate (recomputes the allocation if stale).
  BitsPerSec flow_rate(FlowId id);
  Bytes flow_sent(FlowId id) const;
  FlowInfo flow_info(FlowId id) const;
  std::size_t active_flow_count() const { return flows_.size(); }
  std::vector<FlowInfo> active_flows() const;

  /// Schedules a callback at absolute simulated time `at` (>= now).
  void schedule(Seconds at, Callback fn);
  void schedule_in(Seconds delay, Callback fn) {
    schedule(now_ + delay, std::move(fn));
  }

  /// Advances the clock to `t`, firing timers and completing flows.
  void run_until(Seconds t);
  void run_for(Seconds dt) { run_until(now_ + dt); }

  /// Runs until every listed flow has completed (or been stopped).  Throws
  /// Error if progress stalls (a pending flow with zero rate and no timers
  /// left that could change that).
  void run_until_flows_done(const std::vector<FlowId>& ids);

  /// Cumulative bytes transmitted over a link in the a->b (from_a = true)
  /// or b->a direction.  Monotonic; feeds the SNMP octet counters.
  Bytes link_tx_bytes(LinkId id, bool from_a) const;

  /// Current aggregate allocated rate on a link direction.
  BitsPerSec link_tx_rate(LinkId id, bool from_a);

  /// Current utilization fraction of a link direction in [0, 1].
  double link_utilization(LinkId id, bool from_a);

  /// EXTENSION: takes a link out of service (or restores it).  Routing is
  /// recomputed over the surviving links and every live flow re-binds to
  /// its new route; a flow whose endpoints become disconnected stalls at
  /// zero rate until connectivity returns.  Agents expose the state as
  /// ifOperStatus.
  void set_link_up(LinkId id, bool up);
  bool link_up(LinkId id) const;

  /// EXTENSION (observability): records ground-truth per-link directed
  /// utilization into `store` every `period` simulated seconds, as
  /// series "sim.link.<a>~<b>.<ab|ba>" (utilization fraction in [0,1]).
  /// Sampling happens at integration boundaries, where rates are exact
  /// piecewise constants -- no event, no timer, no interaction with
  /// run_until_flows_done stall detection.  Handles are resolved once
  /// here; the per-sample cost is one O(1) series append per direction.
  void enable_telemetry(obs::TimeSeriesStore& store, Seconds period);
  void disable_telemetry() { telemetry_.clear(); }

  /// Competing CPU load on a compute node, in [0, 1) of one CPU: 0 =
  /// idle, 0.5 = half the cycles go elsewhere.  Host agents expose it as
  /// hrProcessorLoad; the Fx runtime's compute phases slow by 1/(1-load).
  void set_cpu_load(NodeId id, double load);
  double cpu_load(NodeId id) const;
  /// Effective relative speed of a node: cpu_speed * (1 - load).
  double effective_speed(NodeId id) const;

 private:
  struct Flow {
    FlowId id;
    NodeId src;
    NodeId dst;
    FlowOptions options;
    FlowCallback on_complete;
    std::vector<std::size_t> resources;  // solver resource indices
    std::vector<std::size_t> tx_dirs;    // directed-link indices for octets
    Bytes sent = 0;
    BitsPerSec rate = 0;
    Seconds started = 0;
    bool stalled = false;  // no route between endpoints right now
    /// Registration with the incremental solver; kInvalidFlowHandle while
    /// stalled (stalled flows are not part of the allocation problem).
    FlowHandle solver_handle = kInvalidFlowHandle;
  };

  struct Timer {
    Seconds at;
    std::uint64_t seq;  // FIFO among equal-time timers
    Callback fn;
  };
  struct TimerOrder {
    bool operator()(const Timer& x, const Timer& y) const {
      if (x.at != y.at) return x.at > y.at;
      return x.seq > y.seq;
    }
  };

  std::size_t dir_index(LinkId link, bool from_a) const {
    return 2 * static_cast<std::size_t>(link) + (from_a ? 0 : 1);
  }
  /// (Re)computes a flow's route and resource bindings; marks it stalled
  /// when its endpoints are disconnected.
  void bind_path(Flow& flow);
  bool any_link_down() const;
  /// Registers a non-stalled flow with the incremental solver.
  void attach_solver(Flow& flow);
  /// Unregisters a flow from the solver (no-op if not registered).
  void detach_solver(Flow& flow);
  /// Re-solves the dirty components of the allocation and refreshes the
  /// affected flows' rates and directed-link aggregate rates.
  void reallocate();
  /// Moves the clock forward by dt with current rates; integrates bytes.
  void integrate(Seconds dt);
  /// Appends telemetry samples at every period boundary in (now, upto].
  void sample_telemetry(Seconds upto);
  /// Runs one event step, not beyond `horizon`.  Returns false when the
  /// clock reached the horizon with nothing left to do before it.
  bool step(Seconds horizon);
  const Flow& get_flow(FlowId id) const;

  Topology topology_;
  std::vector<bool> link_up_;
  std::vector<double> cpu_load_;
  RoutingTable routing_;
  Seconds now_ = 0;
  FlowId next_flow_id_ = 1;
  std::uint64_t next_timer_seq_ = 0;

  std::map<FlowId, Flow> flows_;  // ordered: deterministic iteration
  std::priority_queue<Timer, std::vector<Timer>, TimerOrder> timers_;
  bool allocation_dirty_ = true;

  std::vector<double> resource_capacity_;  // 2*links + nodes
  std::vector<Bytes> dir_tx_bytes_;        // cumulative, per directed link
  std::vector<BitsPerSec> dir_tx_rate_;    // current, per directed link

  /// Incremental max-min state shared across flow events: only the
  /// components touched since the last solve are recomputed.
  IncrementalMaxMin solver_;
  /// Reverse map solver handle -> FlowId for applying changed rates.
  std::vector<FlowId> slot_owner_;

  // Ground-truth telemetry (empty = disabled): one resolved series
  // handle per directed link, indexed like dir_tx_rate_.
  std::vector<obs::TimeSeries*> telemetry_;
  Seconds telemetry_period_ = 0;
  Seconds telemetry_due_ = 0;
};

}  // namespace remos::netsim
