#include "netsim/testbeds.hpp"

namespace remos::netsim {

Topology make_figure1(BitsPerSec internal_bw) {
  Topology t;
  const NodeId a = t.add_node("A", NodeKind::kNetwork, internal_bw);
  const NodeId b = t.add_node("B", NodeKind::kNetwork, internal_bw);
  for (int i = 1; i <= 8; ++i) {
    const NodeId host = t.add_node(std::to_string(i), NodeKind::kCompute);
    t.add_link(host, i <= 4 ? a : b, mbps(10), millis(0.2));
  }
  t.add_link(a, b, mbps(100), millis(0.2));
  return t;
}

const std::vector<std::string>& CmuNames::hosts() {
  static const std::vector<std::string> names = {"m-1", "m-2", "m-3", "m-4",
                                                 "m-5", "m-6", "m-7", "m-8"};
  return names;
}

const std::vector<std::string>& CmuNames::routers() {
  static const std::vector<std::string> names = {"aspen", "timberline",
                                                 "whiteface"};
  return names;
}

Topology make_cmu_testbed(BitsPerSec link_rate, Seconds hop_latency) {
  Topology t;
  for (const std::string& r : CmuNames::routers())
    t.add_node(r, NodeKind::kNetwork);
  for (const std::string& h : CmuNames::hosts())
    t.add_node(h, NodeKind::kCompute);

  auto attach = [&](const std::string& host, const std::string& router) {
    t.add_link(host, router, link_rate, hop_latency);
  };
  attach("m-1", "aspen");
  attach("m-2", "aspen");
  attach("m-3", "aspen");
  attach("m-4", "timberline");
  attach("m-5", "timberline");
  attach("m-6", "timberline");
  attach("m-7", "whiteface");
  attach("m-8", "whiteface");

  // Router triangle: every host pair is at most 3 hops apart (§8.1).
  t.add_link("aspen", "timberline", link_rate, hop_latency);
  t.add_link("timberline", "whiteface", link_rate, hop_latency);
  t.add_link("aspen", "whiteface", link_rate, hop_latency);
  return t;
}

}  // namespace remos::netsim
