// Canonical topologies from the paper.
//
// * Figure 1: the didactic 8-host / 2-switch graph used in §4.3 to explain
//   logical topology and node internal bandwidth.
// * Figure 3: the CMU IP testbed the experiments ran on -- eight DEC Alpha
//   endpoints m-1..m-8 behind three PC routers (aspen, timberline,
//   whiteface) joined by 100 Mbps point-to-point Ethernet.
#pragma once

#include <string>
#include <vector>

#include "netsim/topology.hpp"

namespace remos::netsim {

/// Figure 1 of the paper: compute nodes "1".."8" attached by 10 Mbps links
/// to network nodes "A" and "B", which are joined by a 100 Mbps link.
/// `internal_bw` is the forwarding capacity of A and B: with 100 Mbps the
/// access links limit each host to 10 Mbps; with 10 Mbps the two network
/// nodes themselves bottleneck the aggregate (the paper's two readings of
/// the same logical graph).  Pass 0 for unlimited.
Topology make_figure1(BitsPerSec internal_bw);

/// Names of the CMU testbed, kept in one place so experiments and tests
/// agree on spelling.
struct CmuNames {
  static const std::vector<std::string>& hosts();    // m-1 .. m-8
  static const std::vector<std::string>& routers();  // aspen/timberline/whiteface
};

/// Figure 3 of the paper: the CMU testbed.  Hosts m-1..m-3 attach to
/// aspen, m-4..m-6 to timberline, m-7..m-8 to whiteface; the three routers
/// form a triangle (any host reaches any other within 3 hops).  All links
/// are 100 Mbps point-to-point Ethernet with a uniform per-hop latency
/// (the paper's Collector "assumes a fixed per-hop delay").
Topology make_cmu_testbed(BitsPerSec link_rate = mbps(100),
                          Seconds hop_latency = millis(0.2));

}  // namespace remos::netsim
