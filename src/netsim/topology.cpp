#include "netsim/topology.hpp"

#include <deque>

#include "util/error.hpp"

namespace remos::netsim {

NodeId Link::other(NodeId n) const {
  if (n == a) return b;
  if (n == b) return a;
  throw InvalidArgument("Link::other: node is not an endpoint");
}

NodeId Topology::add_node(const std::string& name, NodeKind kind,
                          BitsPerSec internal_bw, double cpu_speed) {
  if (name.empty()) throw InvalidArgument("add_node: empty name");
  if (by_name_.contains(name))
    throw InvalidArgument("add_node: duplicate name '" + name + "'");
  if (internal_bw < 0) throw InvalidArgument("add_node: negative internal_bw");
  if (cpu_speed <= 0) throw InvalidArgument("add_node: non-positive cpu_speed");
  const auto id = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(Node{id, name, kind, internal_bw, cpu_speed});
  adjacency_.emplace_back();
  by_name_.emplace(name, id);
  return id;
}

LinkId Topology::add_link(NodeId a, NodeId b, BitsPerSec capacity,
                          Seconds latency) {
  check_node(a);
  check_node(b);
  if (a == b) throw InvalidArgument("add_link: self-loop");
  if (capacity <= 0) throw InvalidArgument("add_link: non-positive capacity");
  if (latency < 0) throw InvalidArgument("add_link: negative latency");
  const auto id = static_cast<LinkId>(links_.size());
  links_.push_back(Link{id, a, b, capacity, latency});
  adjacency_[static_cast<std::size_t>(a)].push_back(id);
  adjacency_[static_cast<std::size_t>(b)].push_back(id);
  return id;
}

LinkId Topology::add_link(const std::string& a, const std::string& b,
                          BitsPerSec capacity, Seconds latency) {
  return add_link(id_of(a), id_of(b), capacity, latency);
}

const Node& Topology::node(NodeId id) const {
  check_node(id);
  return nodes_[static_cast<std::size_t>(id)];
}

const Link& Topology::link(LinkId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= links_.size())
    throw NotFoundError("unknown link id " + std::to_string(id));
  return links_[static_cast<std::size_t>(id)];
}

NodeId Topology::id_of(const std::string& name) const {
  auto it = by_name_.find(name);
  if (it == by_name_.end()) throw NotFoundError("unknown node '" + name + "'");
  return it->second;
}

bool Topology::has_node(const std::string& name) const {
  return by_name_.contains(name);
}

const std::vector<LinkId>& Topology::links_at(NodeId id) const {
  check_node(id);
  return adjacency_[static_cast<std::size_t>(id)];
}

LinkId Topology::link_between(NodeId a, NodeId b) const {
  check_node(a);
  check_node(b);
  for (LinkId lid : adjacency_[static_cast<std::size_t>(a)]) {
    const Link& l = links_[static_cast<std::size_t>(lid)];
    if (l.other(a) == b) return lid;
  }
  return kInvalidLink;
}

std::vector<NodeId> Topology::compute_nodes() const {
  std::vector<NodeId> out;
  for (const Node& n : nodes_)
    if (n.kind == NodeKind::kCompute) out.push_back(n.id);
  return out;
}

bool Topology::connected() const {
  if (nodes_.empty()) return true;
  std::vector<bool> seen(nodes_.size(), false);
  std::deque<NodeId> queue{0};
  seen[0] = true;
  std::size_t reached = 1;
  while (!queue.empty()) {
    const NodeId n = queue.front();
    queue.pop_front();
    for (LinkId lid : adjacency_[static_cast<std::size_t>(n)]) {
      const NodeId m = links_[static_cast<std::size_t>(lid)].other(n);
      if (!seen[static_cast<std::size_t>(m)]) {
        seen[static_cast<std::size_t>(m)] = true;
        ++reached;
        queue.push_back(m);
      }
    }
  }
  return reached == nodes_.size();
}

void Topology::check_node(NodeId id) const {
  if (id < 0 || static_cast<std::size_t>(id) >= nodes_.size())
    throw NotFoundError("unknown node id " + std::to_string(id));
}

}  // namespace remos::netsim
