// Physical network topology for the simulation substrate.
//
// A networked system in the paper's model consists of compute nodes
// (hosts), network nodes (routers/switches), and full-duplex physical
// links.  Links carry a capacity (per direction) and a propagation/
// forwarding latency.  Network nodes may additionally carry an "internal
// bandwidth" -- an aggregate forwarding capacity shared by all traffic
// traversing the node (the paper's Figure 1 uses this to model a shared
// Ethernet segment as a logical switch node).
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace remos::netsim {

using NodeId = std::int32_t;
using LinkId = std::int32_t;

inline constexpr NodeId kInvalidNode = -1;
inline constexpr LinkId kInvalidLink = -1;

enum class NodeKind : std::uint8_t {
  kCompute,  // runs applications; can source/sink traffic
  kNetwork,  // forwards only (router/switch)
};

struct Node {
  NodeId id = kInvalidNode;
  std::string name;
  NodeKind kind = NodeKind::kCompute;
  /// Aggregate forwarding capacity through this node; 0 means unlimited.
  BitsPerSec internal_bw = 0;
  /// Relative compute speed (1.0 = reference host).  Network nodes: unused.
  double cpu_speed = 1.0;
};

struct Link {
  LinkId id = kInvalidLink;
  NodeId a = kInvalidNode;
  NodeId b = kInvalidNode;
  /// Capacity per direction (full duplex).
  BitsPerSec capacity = 0;
  /// One-way latency across the link.
  Seconds latency = 0;

  /// The endpoint opposite `n`; throws if `n` is not an endpoint.
  NodeId other(NodeId n) const;
};

/// An immutable-after-construction graph of nodes and links.
class Topology {
 public:
  /// Adds a node; names must be unique and non-empty.
  NodeId add_node(const std::string& name, NodeKind kind,
                  BitsPerSec internal_bw = 0, double cpu_speed = 1.0);

  /// Adds a full-duplex link between two distinct existing nodes.
  LinkId add_link(NodeId a, NodeId b, BitsPerSec capacity, Seconds latency);
  LinkId add_link(const std::string& a, const std::string& b,
                  BitsPerSec capacity, Seconds latency);

  std::size_t node_count() const { return nodes_.size(); }
  std::size_t link_count() const { return links_.size(); }

  const Node& node(NodeId id) const;
  const Link& link(LinkId id) const;
  const std::vector<Node>& nodes() const { return nodes_; }
  const std::vector<Link>& links() const { return links_; }

  /// Resolves a node name; throws NotFoundError if unknown.
  NodeId id_of(const std::string& name) const;
  /// True if a node with this name exists.
  bool has_node(const std::string& name) const;
  const std::string& name_of(NodeId id) const { return node(id).name; }

  /// Links incident to a node.
  const std::vector<LinkId>& links_at(NodeId id) const;

  /// The link joining a and b, or kInvalidLink if none.
  LinkId link_between(NodeId a, NodeId b) const;

  /// All compute-node ids, in id order.
  std::vector<NodeId> compute_nodes() const;

  /// True if every node can reach every other node.
  bool connected() const;

 private:
  void check_node(NodeId id) const;

  std::vector<Node> nodes_;
  std::vector<Link> links_;
  std::vector<std::vector<LinkId>> adjacency_;
  std::unordered_map<std::string, NodeId> by_name_;
};

}  // namespace remos::netsim
