#include "netsim/topology_io.hpp"

#include <fstream>
#include <sstream>

#include "util/error.hpp"
#include "util/strings.hpp"
#include "util/units.hpp"

namespace remos::netsim {

namespace {

[[noreturn]] void fail(std::size_t line, const std::string& what) {
  throw InvalidArgument("topology line " + std::to_string(line) + ": " +
                        what);
}

double parse_number(const std::string& token, std::size_t line,
                    const char* what) {
  try {
    std::size_t used = 0;
    const double v = std::stod(token, &used);
    if (used != token.size()) fail(line, std::string("bad ") + what);
    return v;
  } catch (const std::exception&) {
    fail(line, std::string("bad ") + what + " '" + token + "'");
  }
}

std::vector<std::string> tokenize(const std::string& line) {
  std::vector<std::string> out;
  std::istringstream is(line);
  std::string tok;
  while (is >> tok) {
    if (tok[0] == '#') break;  // trailing comment
    out.push_back(tok);
  }
  return out;
}

}  // namespace

Topology load_topology(std::istream& in) {
  Topology topology;
  std::string line;
  std::size_t lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    const auto tokens = tokenize(line);
    if (tokens.empty()) continue;
    if (tokens[0] == "node") {
      if (tokens.size() < 3 || tokens.size() > 5)
        fail(lineno, "node needs: name compute|network "
                     "[internal_bw_mbps] [cpu_speed]");
      NodeKind kind;
      if (tokens[2] == "compute") {
        kind = NodeKind::kCompute;
      } else if (tokens[2] == "network") {
        kind = NodeKind::kNetwork;
      } else {
        fail(lineno, "node kind must be 'compute' or 'network', got '" +
                         tokens[2] + "'");
      }
      BitsPerSec internal_bw = 0;
      double cpu_speed = 1.0;
      if (tokens.size() >= 4)
        internal_bw = mbps(parse_number(tokens[3], lineno, "internal_bw"));
      if (tokens.size() >= 5)
        cpu_speed = parse_number(tokens[4], lineno, "cpu_speed");
      try {
        topology.add_node(tokens[1], kind, internal_bw, cpu_speed);
      } catch (const Error& e) {
        fail(lineno, e.what());
      }
    } else if (tokens[0] == "link") {
      if (tokens.size() != 5)
        fail(lineno, "link needs: a b capacity_mbps latency_ms");
      const double capacity = parse_number(tokens[3], lineno, "capacity");
      const double latency = parse_number(tokens[4], lineno, "latency");
      try {
        topology.add_link(tokens[1], tokens[2], mbps(capacity),
                          millis(latency));
      } catch (const Error& e) {
        fail(lineno, e.what());
      }
    } else {
      fail(lineno, "unknown directive '" + tokens[0] + "'");
    }
  }
  return topology;
}

Topology load_topology_string(const std::string& text) {
  std::istringstream is(text);
  return load_topology(is);
}

Topology load_topology_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw NotFoundError("cannot open topology file " + path);
  return load_topology(in);
}

void save_topology(const Topology& topology, std::ostream& out) {
  for (const Node& n : topology.nodes()) {
    out << "node " << n.name << " "
        << (n.kind == NodeKind::kCompute ? "compute" : "network");
    if (n.internal_bw > 0 || n.cpu_speed != 1.0)
      out << " " << fixed(to_mbps(n.internal_bw), 3);
    if (n.cpu_speed != 1.0) out << " " << fixed(n.cpu_speed, 3);
    out << "\n";
  }
  for (const Link& l : topology.links()) {
    out << "link " << topology.name_of(l.a) << " " << topology.name_of(l.b)
        << " " << fixed(to_mbps(l.capacity), 3) << " "
        << fixed(l.latency * 1e3, 3) << "\n";
  }
}

std::string save_topology_string(const Topology& topology) {
  std::ostringstream os;
  save_topology(topology, os);
  return os.str();
}

}  // namespace remos::netsim
