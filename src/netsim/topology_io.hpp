// Text serialization of topologies, so downstream users can describe
// their own networks without writing C++.
//
// Format (one directive per line; '#' starts a comment):
//
//   node <name> compute|network [internal_bw_mbps] [cpu_speed]
//   link <a> <b> <capacity_mbps> <latency_ms>
//
// Example (the paper's Figure 1):
//
//   # hosts
//   node 1 compute
//   node A network 100     # 100 Mbps backplane
//   link 1 A 10 0.2
//
// load_topology throws InvalidArgument with the offending line number on
// malformed input.  save/load round-trip exactly.
#pragma once

#include <iosfwd>
#include <string>

#include "netsim/topology.hpp"

namespace remos::netsim {

Topology load_topology(std::istream& in);
Topology load_topology_string(const std::string& text);
Topology load_topology_file(const std::string& path);

void save_topology(const Topology& topology, std::ostream& out);
std::string save_topology_string(const Topology& topology);

}  // namespace remos::netsim
