#include "netsim/traffic.hpp"

#include <cmath>

#include "util/error.hpp"

namespace remos::netsim {

CbrTraffic::CbrTraffic(Simulator& sim, NodeId src, NodeId dst,
                       BitsPerSec rate, double weight, std::string tag)
    : sim_(sim) {
  FlowOptions opts;
  opts.weight = weight;
  opts.demand_cap = rate;
  opts.tag = std::move(tag);
  flow_ = sim_.start_flow(src, dst, std::move(opts));
}

CbrTraffic::CbrTraffic(Simulator& sim, const std::string& src,
                       const std::string& dst, BitsPerSec rate, double weight,
                       std::string tag)
    : CbrTraffic(sim, sim.topology().id_of(src), sim.topology().id_of(dst),
                 rate, weight, std::move(tag)) {}

CbrTraffic::~CbrTraffic() { stop(); }

void CbrTraffic::stop() {
  if (flow_) {
    sim_.stop_flow(*flow_);
    flow_.reset();
  }
}

FlowId CbrTraffic::flow_id() const {
  if (!flow_) throw Error("CbrTraffic: stopped");
  return *flow_;
}

OnOffTraffic::OnOffTraffic(Simulator& sim, NodeId src, NodeId dst,
                           Config config)
    : sim_(sim), src_(src), dst_(dst), config_(config), rng_(config.seed) {
  if (config_.rate <= 0) throw InvalidArgument("OnOffTraffic: rate <= 0");
  if (config_.mean_on <= 0 || config_.mean_off <= 0)
    throw InvalidArgument("OnOffTraffic: non-positive period");
  turn_on();
}

OnOffTraffic::~OnOffTraffic() { stop(); }

void OnOffTraffic::stop() {
  stopped_ = true;
  ++epoch_;  // orphan any pending timers
  if (flow_) {
    sim_.stop_flow(*flow_);
    flow_.reset();
  }
}

void OnOffTraffic::turn_on() {
  if (stopped_) return;
  FlowOptions opts;
  opts.weight = config_.weight;
  opts.demand_cap = config_.rate;
  opts.tag = config_.tag;
  flow_ = sim_.start_flow(src_, dst_, std::move(opts));
  const Seconds on_for = rng_.exponential(config_.mean_on);
  const std::uint64_t epoch = epoch_;
  sim_.schedule_in(on_for, [this, epoch] {
    if (epoch == epoch_) turn_off();
  });
}

void OnOffTraffic::turn_off() {
  if (stopped_) return;
  if (flow_) {
    sim_.stop_flow(*flow_);
    flow_.reset();
  }
  const Seconds off_for = rng_.exponential(config_.mean_off);
  const std::uint64_t epoch = epoch_;
  sim_.schedule_in(off_for, [this, epoch] {
    if (epoch == epoch_) turn_on();
  });
}

PoissonTransfers::PoissonTransfers(Simulator& sim, NodeId src, NodeId dst,
                                   Config config)
    : sim_(sim), src_(src), dst_(dst), config_(config), rng_(config.seed) {
  if (config_.arrivals_per_sec <= 0)
    throw InvalidArgument("PoissonTransfers: non-positive arrival rate");
  if (config_.mean_size <= 0)
    throw InvalidArgument("PoissonTransfers: non-positive mean size");
  if (config_.pareto_alpha <= 1.0)
    throw InvalidArgument("PoissonTransfers: alpha must exceed 1");
  arm_next_arrival();
}

PoissonTransfers::~PoissonTransfers() { stop(); }

void PoissonTransfers::stop() {
  stopped_ = true;
  ++epoch_;
  // In-flight transfers are finite and drain on their own.
}

void PoissonTransfers::arm_next_arrival() {
  if (stopped_) return;
  const Seconds wait = rng_.exponential(1.0 / config_.arrivals_per_sec);
  const std::uint64_t epoch = epoch_;
  sim_.schedule_in(wait, [this, epoch] {
    if (epoch != epoch_) return;
    // Bounded-Pareto size scaled so the mean matches mean_size:
    // E[Pareto(xm, a)] = a*xm/(a-1)  =>  xm = mean*(a-1)/a.
    const double a = config_.pareto_alpha;
    const double xm = config_.mean_size * (a - 1.0) / a;
    const Bytes size = std::min(rng_.pareto(xm, a), 100.0 * config_.mean_size);
    FlowOptions opts;
    opts.weight = config_.weight;
    opts.volume = size;
    opts.tag = config_.tag;
    sim_.start_flow(src_, dst_, std::move(opts));
    ++started_;
    arm_next_arrival();
  });
}

}  // namespace remos::netsim
