// Background-traffic generators.
//
// The paper's Table 2/3 experiments inject "a synthetic program that
// generates significant traffic" between chosen endpoints.  These
// generators reproduce that role and add the standard shapes used by the
// collector-accuracy ablations: constant bit-rate, on-off (bursty), and
// Poisson arrivals of heavy-tailed transfers.
//
// Generators hold simulator timers that capture `this`; a generator must
// outlive the simulation it drives (or be stop()ed first).
#pragma once

#include <optional>
#include <string>

#include "netsim/simulator.hpp"
#include "util/rng.hpp"

namespace remos::netsim {

/// Constant-bit-rate source: one capped, unbounded-volume flow.  A CBR
/// source models aggressive traffic that does not back off (the 1998
/// synthetic UDP blaster): its max-min weight can be raised to emulate a
/// source that claims more than one TCP-fair share.
class CbrTraffic {
 public:
  CbrTraffic(Simulator& sim, NodeId src, NodeId dst, BitsPerSec rate,
             double weight = 1.0, std::string tag = "cbr");
  CbrTraffic(Simulator& sim, const std::string& src, const std::string& dst,
             BitsPerSec rate, double weight = 1.0, std::string tag = "cbr");
  ~CbrTraffic();

  CbrTraffic(const CbrTraffic&) = delete;
  CbrTraffic& operator=(const CbrTraffic&) = delete;

  void stop();
  bool running() const { return flow_.has_value(); }
  FlowId flow_id() const;

 private:
  Simulator& sim_;
  std::optional<FlowId> flow_;
};

/// On-off source: alternates exponentially distributed on and off periods;
/// during on-periods it sends at `rate`.  Produces the bimodal availability
/// distributions that motivate the paper's quartile representation.
class OnOffTraffic {
 public:
  struct Config {
    BitsPerSec rate = 0;
    Seconds mean_on = 1.0;
    Seconds mean_off = 1.0;
    double weight = 1.0;
    std::uint64_t seed = 1;
    std::string tag = "onoff";
  };

  OnOffTraffic(Simulator& sim, NodeId src, NodeId dst, Config config);
  ~OnOffTraffic();

  OnOffTraffic(const OnOffTraffic&) = delete;
  OnOffTraffic& operator=(const OnOffTraffic&) = delete;

  void stop();
  bool sending() const { return flow_.has_value(); }

 private:
  void turn_on();
  void turn_off();

  Simulator& sim_;
  NodeId src_;
  NodeId dst_;
  Config config_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t epoch_ = 0;  // invalidates in-flight timers after stop()
  std::optional<FlowId> flow_;
};

/// Poisson arrivals of finite transfers with bounded-Pareto sizes, each
/// sent as a greedy (uncapped) flow -- a web-mix-like aggregate.
class PoissonTransfers {
 public:
  struct Config {
    double arrivals_per_sec = 1.0;
    Bytes mean_size = 1e6;
    double pareto_alpha = 1.5;  // tail index; sizes ~ bounded Pareto
    double weight = 1.0;
    std::uint64_t seed = 2;
    std::string tag = "poisson";
  };

  PoissonTransfers(Simulator& sim, NodeId src, NodeId dst, Config config);
  ~PoissonTransfers();

  PoissonTransfers(const PoissonTransfers&) = delete;
  PoissonTransfers& operator=(const PoissonTransfers&) = delete;

  void stop();
  std::size_t transfers_started() const { return started_; }

 private:
  void arm_next_arrival();

  Simulator& sim_;
  NodeId src_;
  NodeId dst_;
  Config config_;
  Rng rng_;
  bool stopped_ = false;
  std::uint64_t epoch_ = 0;
  std::size_t started_ = 0;
};

}  // namespace remos::netsim
