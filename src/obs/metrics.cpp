#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace remos::obs {

namespace {

bool valid_name(const std::string& name, bool allow_colon) {
  if (name.empty()) return false;
  auto ok = [allow_colon](char c, bool first) {
    if ((c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_')
      return true;
    if (c == ':') return allow_colon;
    return !first && c >= '0' && c <= '9';
  };
  if (!ok(name[0], true)) return false;
  for (std::size_t i = 1; i < name.size(); ++i)
    if (!ok(name[i], false)) return false;
  return true;
}

/// Label values may hold anything; escape per the exposition format.
std::string escape_label_value(const std::string& v) {
  std::string out;
  out.reserve(v.size());
  for (const char c : v) {
    if (c == '\\') out += "\\\\";
    else if (c == '"') out += "\\\"";
    else if (c == '\n') out += "\\n";
    else out += c;
  }
  return out;
}

/// Canonical `{k="v",...}` text for a sorted label set ("" when empty).
std::string label_text(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  for (std::size_t i = 0; i < labels.size(); ++i) {
    if (i > 0) out += ",";
    out += labels[i].first + "=\"" + escape_label_value(labels[i].second) +
           "\"";
  }
  out += "}";
  return out;
}

/// Like label_text but with extra pairs appended (histogram `le`).
std::string label_text_with(const Labels& labels, const std::string& key,
                            const std::string& value) {
  Labels all = labels;
  all.emplace_back(key, value);
  return label_text(all);
}

/// Minimal stable formatting: integers render without a decimal point,
/// everything else via %g (enough precision for metric values).
std::string format_value(double v) {
  if (std::isfinite(v) && v == std::floor(v) && std::fabs(v) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0f", v);
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof buf, "%g", v);
  return buf;
}

Labels sorted(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

const char* kind_name(int kind) {
  switch (kind) {
    case 0: return "counter";
    case 1: return "gauge";
    default: return "histogram";
  }
}

}  // namespace

void Histogram::observe(double v) const {
  if (!cells_) return;
  const auto it =
      std::lower_bound(cells_->bounds.begin(), cells_->bounds.end(), v);
  const auto idx =
      static_cast<std::size_t>(it - cells_->bounds.begin());
  cells_->counts[idx].fetch_add(1, std::memory_order_relaxed);
  double cur = cells_->sum.load(std::memory_order_relaxed);
  while (!cells_->sum.compare_exchange_weak(cur, cur + v,
                                            std::memory_order_relaxed)) {
  }
}

std::uint64_t Histogram::count() const {
  if (!cells_) return 0;
  std::uint64_t n = 0;
  for (const auto& c : cells_->counts)
    n += c.load(std::memory_order_relaxed);
  return n;
}

double Histogram::sum() const {
  return cells_ ? cells_->sum.load(std::memory_order_relaxed) : 0.0;
}

double Histogram::quantile(double q) const {
  if (!cells_) return 0.0;
  const std::uint64_t n = count();
  if (n == 0) return 0.0;
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < cells_->counts.size(); ++i) {
    seen += cells_->counts[i].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target)
      return i < cells_->bounds.size() ? cells_->bounds[i]
                                       : cells_->bounds.back();
  }
  return cells_->bounds.empty() ? 0.0 : cells_->bounds.back();
}

const std::vector<double>& default_time_buckets() {
  static const std::vector<double> kBuckets{
      1e-5, 2e-5, 5e-5, 1e-4, 2e-4, 5e-4, 1e-3, 2e-3, 5e-3,
      1e-2, 2e-2, 5e-2, 0.1,  0.2,  0.5,  1.0,  2.0,  5.0,  10.0};
  return kBuckets;
}

MetricsRegistry::Family& MetricsRegistry::family(const std::string& name,
                                                Kind kind,
                                                const std::string& help) {
  if (!valid_name(name, /*allow_colon=*/true))
    throw InvalidArgument("MetricsRegistry: bad metric name '" + name +
                          "'");
  auto [it, inserted] = families_.try_emplace(name);
  Family& fam = it->second;
  if (inserted) {
    fam.kind = kind;
    fam.help = help;
  } else if (fam.kind != kind) {
    throw InvalidArgument(
        "MetricsRegistry: '" + name + "' already registered as " +
        kind_name(static_cast<int>(fam.kind)) + ", requested as " +
        kind_name(static_cast<int>(kind)));
  }
  if (fam.help.empty() && !help.empty()) fam.help = help;
  return fam;
}

MetricsRegistry::Series& MetricsRegistry::series(Family& fam,
                                                 const Labels& labels) {
  for (const auto& [k, v] : labels)
    if (!valid_name(k, /*allow_colon=*/false))
      throw InvalidArgument("MetricsRegistry: bad label name '" + k + "'");
  const Labels canon = sorted(labels);
  auto [it, inserted] = fam.series_.try_emplace(label_text(canon));
  if (inserted) it->second.labels = canon;
  return it->second;
}

Counter MetricsRegistry::counter(const std::string& name,
                                 const Labels& labels,
                                 const std::string& help) {
  std::lock_guard<std::mutex> lk(mutex_);
  Series& s = series(family(name, Kind::kCounter, help), labels);
  if (!s.counter)
    s.counter = std::make_unique<std::atomic<std::uint64_t>>(0);
  return Counter(s.counter.get());
}

Gauge MetricsRegistry::gauge(const std::string& name, const Labels& labels,
                             const std::string& help) {
  std::lock_guard<std::mutex> lk(mutex_);
  Series& s = series(family(name, Kind::kGauge, help), labels);
  if (!s.gauge) s.gauge = std::make_unique<std::atomic<double>>(0.0);
  return Gauge(s.gauge.get());
}

Histogram MetricsRegistry::histogram(const std::string& name,
                                     std::vector<double> bounds,
                                     const Labels& labels,
                                     const std::string& help) {
  if (bounds.empty())
    throw InvalidArgument("MetricsRegistry: histogram '" + name +
                          "' with no buckets");
  if (!std::is_sorted(bounds.begin(), bounds.end()))
    throw InvalidArgument("MetricsRegistry: histogram '" + name +
                          "' buckets not ascending");
  std::lock_guard<std::mutex> lk(mutex_);
  Family& fam = family(name, Kind::kHistogram, help);
  if (fam.bounds.empty())
    fam.bounds = bounds;
  else if (fam.bounds != bounds)
    throw InvalidArgument("MetricsRegistry: histogram '" + name +
                          "' re-registered with different buckets");
  Series& s = series(fam, labels);
  if (!s.histogram)
    s.histogram = std::make_unique<Histogram::Cells>(fam.bounds);
  return Histogram(s.histogram.get());
}

std::size_t MetricsRegistry::series_count() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::size_t n = 0;
  for (const auto& [name, fam] : families_) n += fam.series_.size();
  return n;
}

std::string MetricsRegistry::render() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::ostringstream out;
  for (const auto& [name, fam] : families_) {
    if (!fam.help.empty())
      out << "# HELP " << name << " " << fam.help << "\n";
    out << "# TYPE " << name << " "
        << kind_name(static_cast<int>(fam.kind)) << "\n";
    for (const auto& [key, s] : fam.series_) {
      if (s.counter) {
        out << name << key << " "
            << s.counter->load(std::memory_order_relaxed) << "\n";
      } else if (s.gauge) {
        out << name << key << " "
            << format_value(s.gauge->load(std::memory_order_relaxed))
            << "\n";
      } else if (s.histogram) {
        const Histogram::Cells& c = *s.histogram;
        std::uint64_t cum = 0;
        for (std::size_t i = 0; i < c.bounds.size(); ++i) {
          cum += c.counts[i].load(std::memory_order_relaxed);
          out << name << "_bucket"
              << label_text_with(s.labels, "le", format_value(c.bounds[i]))
              << " " << cum << "\n";
        }
        cum += c.counts.back().load(std::memory_order_relaxed);
        out << name << "_bucket"
            << label_text_with(s.labels, "le", "+Inf") << " " << cum
            << "\n";
        out << name << "_sum" << label_text(s.labels) << " "
            << format_value(c.sum.load(std::memory_order_relaxed)) << "\n";
        out << name << "_count" << label_text(s.labels) << " " << cum
            << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace remos::obs
