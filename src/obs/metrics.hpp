// Metrics registry: named counters, gauges and fixed-bucket histograms
// with lock-free hot-path updates and a Prometheus-style text exposition.
//
// Design: a registry is a catalogue of *families* (one per metric name),
// each holding one *series* per distinct label set.  Resolving a handle
// (counter()/gauge()/histogram()) takes the registry mutex once and
// returns a small value object pointing at heap cells that live as long
// as the registry; recording through a handle is a relaxed atomic
// operation with no lock and no allocation, so components resolve their
// handles at wiring time and increment on the hot path for ~one
// fetch_add.  A default-constructed handle is a no-op sink, so
// instrumented code runs unchanged when observability is not wired.
//
// Resolution is idempotent: asking for the same (name, labels) returns a
// handle onto the same cells, which is also how tests and scrapers read
// values back.  Asking for the same name with a different metric kind
// (or a histogram with different buckets) throws InvalidArgument --
// families keep one shape for their whole life, as Prometheus requires.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace remos::obs {

/// Label set attached to one series, e.g. {{"status", "answered"}}.
using Labels = std::vector<std::pair<std::string, std::string>>;

class MetricsRegistry;

/// Monotonic event count.  Copyable; null handles are no-op sinks.
class Counter {
 public:
  Counter() = default;

  void inc(std::uint64_t n = 1) const {
    if (cell_) cell_->fetch_add(n, std::memory_order_relaxed);
  }
  std::uint64_t value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<std::uint64_t>* cell) : cell_(cell) {}
  std::atomic<std::uint64_t>* cell_ = nullptr;
};

/// Point-in-time value that can move both ways (queue depth, health).
class Gauge {
 public:
  Gauge() = default;

  void set(double v) const {
    if (cell_) cell_->store(v, std::memory_order_relaxed);
  }
  void add(double d) const {
    if (!cell_) return;
    double cur = cell_->load(std::memory_order_relaxed);
    while (!cell_->compare_exchange_weak(cur, cur + d,
                                         std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return cell_ ? cell_->load(std::memory_order_relaxed) : 0.0;
  }
  explicit operator bool() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Fixed-bucket distribution.  Bucket i counts observations v with
/// v <= bounds[i] (Prometheus `le` semantics); one overflow bucket
/// (+Inf) is implicit.  Quantiles report the matched bucket's upper
/// bound, so they are conservative.
class Histogram {
 public:
  Histogram() = default;

  void observe(double v) const;
  std::uint64_t count() const;
  double sum() const;
  /// Upper-bound estimate of the q-quantile (q in [0,1]); the overflow
  /// bucket reports the largest finite bound.
  double quantile(double q) const;
  explicit operator bool() const { return cells_ != nullptr; }

 private:
  friend class MetricsRegistry;
  struct Cells {
    std::vector<double> bounds;  // ascending, finite upper bounds
    std::vector<std::atomic<std::uint64_t>> counts;  // bounds.size() + 1
    std::atomic<double> sum{0.0};
    explicit Cells(std::vector<double> b)
        : bounds(std::move(b)), counts(bounds.size() + 1) {}
  };
  explicit Histogram(Cells* cells) : cells_(cells) {}
  Cells* cells_ = nullptr;
};

/// Power-of-ten-ish ladder from 10us to 10s: the default for latencies
/// and deadline slack, wide enough for both in-process answers and polls.
const std::vector<double>& default_time_buckets();

class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Resolve handles (create on first use).  Names must match
  /// [a-zA-Z_:][a-zA-Z0-9_:]*; label names likewise (no colon).  Throws
  /// InvalidArgument on malformed names or a kind/bucket mismatch with
  /// an existing family.
  Counter counter(const std::string& name, const Labels& labels = {},
                  const std::string& help = "");
  Gauge gauge(const std::string& name, const Labels& labels = {},
              const std::string& help = "");
  Histogram histogram(const std::string& name, std::vector<double> bounds,
                      const Labels& labels = {},
                      const std::string& help = "");

  /// Prometheus text exposition: families in name order, each with
  /// # HELP / # TYPE headers, series in label order, histograms expanded
  /// into cumulative _bucket/_sum/_count lines.
  std::string render() const;

  /// Number of registered series across all families.
  std::size_t series_count() const;

 private:
  enum class Kind { kCounter, kGauge, kHistogram };

  struct Series {
    Labels labels;
    std::unique_ptr<std::atomic<std::uint64_t>> counter;
    std::unique_ptr<std::atomic<double>> gauge;
    std::unique_ptr<Histogram::Cells> histogram;
  };

  struct Family {
    Kind kind = Kind::kCounter;
    std::string help;
    std::vector<double> bounds;              // histograms only
    std::map<std::string, Series> series_;   // key: canonical label text
  };

  Family& family(const std::string& name, Kind kind,
                 const std::string& help);
  Series& series(Family& fam, const Labels& labels);

  mutable std::mutex mutex_;
  std::map<std::string, Family> families_;
};

}  // namespace remos::obs
