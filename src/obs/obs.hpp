// Observability wiring context.
//
// Components take a lightweight, copyable Obs view (two nullable
// pointers) and resolve their metric handles once at wiring time; a
// default Obs disables everything at the cost of one predictable branch
// per record.  Whoever owns the deployment (CmuHarness, a test, a real
// daemon) owns one Observability bundle and hands out views.
#pragma once

#include "obs/metrics.hpp"
#include "obs/recorder.hpp"
#include "obs/status.hpp"
#include "obs/timeseries.hpp"
#include "obs/trace.hpp"

namespace remos::obs {

/// Non-owning view a component keeps; null members are simply not fed.
struct Obs {
  MetricsRegistry* metrics = nullptr;
  FlightRecorder* recorder = nullptr;
  /// Telemetry history plane: long-horizon multi-resolution series
  /// (instantaneous values live in `metrics`; their history lives here).
  TimeSeriesStore* series = nullptr;

  explicit operator bool() const { return metrics || recorder || series; }
};

/// Owning bundle: one registry + one recorder + one series store for a
/// whole deployment.
struct Observability {
  MetricsRegistry metrics;
  FlightRecorder recorder{512};
  TimeSeriesStore series;

  Obs view() { return Obs{&metrics, &recorder, &series}; }
};

}  // namespace remos::obs
