#include "obs/recorder.hpp"

#include <cstdio>
#include <sstream>

#include "util/error.hpp"

namespace remos::obs {

FlightRecorder::FlightRecorder(std::size_t capacity)
    : capacity_(capacity), epoch_(std::chrono::steady_clock::now()) {
  if (capacity == 0)
    throw InvalidArgument("FlightRecorder: zero capacity");
  ring_.reserve(capacity);
}

void FlightRecorder::record(EventSeverity severity, std::string component,
                            std::string kind, std::string detail,
                            Seconds model_time) {
  Event e;
  e.wall_offset = std::chrono::duration<double>(
                      std::chrono::steady_clock::now() - epoch_)
                      .count();
  e.model_time = model_time;
  e.severity = severity;
  e.component = std::move(component);
  e.kind = std::move(kind);
  e.detail = std::move(detail);

  std::lock_guard<std::mutex> lk(mutex_);
  e.seq = seq_++;
  if (ring_.size() < capacity_) {
    ring_.push_back(std::move(e));
  } else {
    ring_[head_] = std::move(e);
    head_ = (head_ + 1) % capacity_;
  }
}

std::vector<Event> FlightRecorder::dump() const {
  std::lock_guard<std::mutex> lk(mutex_);
  std::vector<Event> out;
  out.reserve(ring_.size());
  for (std::size_t i = 0; i < ring_.size(); ++i)
    out.push_back(ring_[(head_ + i) % ring_.size()]);
  return out;
}

std::string FlightRecorder::dump_text() const {
  std::ostringstream out;
  for (const Event& e : dump()) {
    char when[64];
    if (e.model_time >= 0)
      std::snprintf(when, sizeof when, "t=%.1fs", e.model_time);
    else
      std::snprintf(when, sizeof when, "+%.3fs", e.wall_offset);
    out << "#" << e.seq << "  " << when << "  [" << to_string(e.severity)
        << "] " << e.component << "/" << e.kind;
    if (!e.detail.empty()) out << ": " << e.detail;
    out << "\n";
  }
  return out.str();
}

namespace {

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

}  // namespace

std::string FlightRecorder::dump_jsonl() const {
  std::ostringstream out;
  for (const Event& e : dump()) {
    char nums[96];
    std::snprintf(nums, sizeof nums,
                  "\"wall_offset\":%.6f,\"model_time\":%.6f", e.wall_offset,
                  e.model_time);
    out << "{\"seq\":" << e.seq << "," << nums << ",\"severity\":\""
        << to_string(e.severity) << "\",\"component\":\""
        << json_escape(e.component) << "\",\"kind\":\"" << json_escape(e.kind)
        << "\",\"detail\":\"" << json_escape(e.detail) << "\"}\n";
  }
  return out.str();
}

std::uint64_t FlightRecorder::total() const {
  std::lock_guard<std::mutex> lk(mutex_);
  return seq_;
}

}  // namespace remos::obs
