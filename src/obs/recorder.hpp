// Flight recorder: a bounded ring of recent structured events.
//
// Metrics tell an operator *how much* (counts, rates, distributions);
// the flight recorder tells them *what happened last*: the most recent
// breaker trips, health transitions, snapshot publishes and shed
// episodes, in order, with both wall offsets and model-clock stamps.
// The ring is fixed-size, so it can stay attached to a production
// service forever and be dumped on demand or on fault without unbounded
// memory.  Events are rare (state transitions, not per-query), so a
// mutex-protected ring is plenty; the hot paths never touch it.
#pragma once

#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace remos::obs {

enum class EventSeverity { kInfo, kWarn, kError };

inline const char* to_string(EventSeverity s) {
  switch (s) {
    case EventSeverity::kInfo: return "info";
    case EventSeverity::kWarn: return "warn";
    case EventSeverity::kError: return "error";
  }
  return "?";
}

struct Event {
  std::uint64_t seq = 0;       // ever-increasing; gaps reveal wraparound
  double wall_offset = 0;      // seconds since the recorder was created
  Seconds model_time = -1;     // model clock when known, else -1
  EventSeverity severity = EventSeverity::kInfo;
  std::string component;       // "snmp", "collector", "service", ...
  std::string kind;            // "breaker_open", "health_transition", ...
  std::string detail;
};

class FlightRecorder {
 public:
  explicit FlightRecorder(std::size_t capacity = 256);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  void record(EventSeverity severity, std::string component,
              std::string kind, std::string detail,
              Seconds model_time = -1);

  /// The retained window, oldest to newest.
  std::vector<Event> dump() const;
  /// One line per retained event, oldest to newest.
  std::string dump_text() const;
  /// One JSON object per line ({"seq":..,"wall_offset":..,"model_time":..,
  /// "severity":"..","component":"..","kind":"..","detail":".."}), oldest
  /// to newest -- the machine-readable artifact weathermap and CI consume
  /// instead of re-parsing dump_text().
  std::string dump_jsonl() const;

  /// Events ever recorded (>= dump().size() once wrapped).
  std::uint64_t total() const;
  std::size_t capacity() const { return capacity_; }

 private:
  const std::size_t capacity_;
  const std::chrono::steady_clock::time_point epoch_;
  mutable std::mutex mutex_;
  std::vector<Event> ring_;  // insertion ring once full
  std::size_t head_ = 0;     // index of oldest element once full
  std::uint64_t seq_ = 0;
};

}  // namespace remos::obs
