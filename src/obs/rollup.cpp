#include "obs/rollup.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace remos::obs {

namespace {

constexpr Seconds kTimeEps = 1e-9;

double count_weighted(double a, std::size_t na, double b, std::size_t nb) {
  const double wa = static_cast<double>(na);
  const double wb = static_cast<double>(nb);
  return (a * wa + b * wb) / (wa + wb);
}

}  // namespace

BucketSummary summarize_bucket(Seconds start, Seconds width,
                               const std::vector<double>& values) {
  BucketSummary b;
  b.start = start;
  b.width = width;
  if (values.empty()) return b;
  b.count = values.size();
  b.q = quartiles_of(values);
  double sum = 0;
  for (double v : values) sum += v;
  b.mean = sum / static_cast<double>(values.size());
  return b;
}

BucketSummary merge_buckets(const BucketSummary& a, const BucketSummary& b) {
  if (a.empty()) return b;
  if (b.empty()) return a;
  BucketSummary m;
  m.start = std::min(a.start, b.start);
  m.width = std::max(a.end(), b.end()) - m.start;
  m.count = a.count + b.count;
  m.q.min = std::min(a.q.min, b.q.min);
  m.q.max = std::max(a.q.max, b.q.max);
  m.q.q1 = count_weighted(a.q.q1, a.count, b.q.q1, b.count);
  m.q.median = count_weighted(a.q.median, a.count, b.q.median, b.count);
  m.q.q3 = count_weighted(a.q.q3, a.count, b.q.q3, b.count);
  m.mean = count_weighted(a.mean, a.count, b.mean, b.count);
  return m;
}

Measurement to_measurement(const BucketSummary& s) {
  Measurement m;
  if (s.empty()) return m;
  m.quartiles = s.q;
  m.mean = s.mean;
  m.samples = s.count;
  // Same accuracy heuristic as Measurement::from_samples: saturating in
  // sample count, discounted by relative interquartile dispersion.
  const double count_term =
      std::min(1.0, static_cast<double>(s.count) / 16.0);
  const double scale = std::max(std::abs(m.mean), 1e-12);
  const double dispersion = std::min(1.0, m.quartiles.iqr() / scale);
  m.accuracy = count_term * (1.0 - 0.5 * dispersion);
  return m;
}

const std::vector<RollupCascade::LevelSpec>& RollupCascade::default_levels() {
  static const std::vector<LevelSpec> kLevels{{10.0, 360}, {60.0, 1440}};
  return kLevels;
}

RollupCascade::RollupCascade(std::vector<LevelSpec> levels) {
  levels_.reserve(levels.size());
  Seconds prev = 0;
  for (const LevelSpec& spec : levels) {
    if (spec.width <= 0)
      throw InvalidArgument("RollupCascade: non-positive bucket width");
    if (spec.capacity == 0)
      throw InvalidArgument("RollupCascade: zero bucket capacity");
    if (prev > 0 && spec.width <= prev)
      throw InvalidArgument("RollupCascade: widths must strictly coarsen");
    prev = spec.width;
    levels_.emplace_back(spec);
  }
}

void RollupCascade::append(Seconds at, double value) {
  if (levels_.empty()) return;
  ++total_samples_;
  Level& l0 = levels_.front();
  const Seconds aligned =
      std::floor(at / l0.spec.width) * l0.spec.width;
  if (!l0.open_active) {
    l0.open_active = true;
    l0.open_start = aligned;
  } else if (at >= l0.open_start + l0.spec.width) {
    seal(0);
    l0.open_active = true;
    l0.open_start = aligned;
  }
  l0.scratch.push_back(value);
  if (l0.scratch.size() >= kOpenBucketScratch) {
    // Compact: exact partial summary, merged on seal.  Bounded scratch
    // means bounded allocation no matter the sample rate.
    l0.partial = merge_buckets(
        l0.partial,
        summarize_bucket(l0.open_start, l0.spec.width, l0.scratch));
    l0.scratch.clear();
  }
}

void RollupCascade::seal(std::size_t i) {
  Level& l = levels_[i];
  if (!l.open_active) return;
  BucketSummary sealed_bucket = l.partial;
  if (i == 0 && !l.scratch.empty())
    sealed_bucket = merge_buckets(
        sealed_bucket,
        summarize_bucket(l.open_start, l.spec.width, l.scratch));
  sealed_bucket.start = l.open_start;
  sealed_bucket.width = l.spec.width;
  l.open_active = false;
  l.scratch.clear();
  l.partial = BucketSummary{};
  if (sealed_bucket.empty()) return;
  l.ring.push(sealed_bucket);
  if (i + 1 < levels_.size()) accept(i + 1, sealed_bucket);
}

void RollupCascade::accept(std::size_t i, const BucketSummary& sealed_bucket) {
  Level& l = levels_[i];
  const Seconds aligned =
      std::floor(sealed_bucket.start / l.spec.width) * l.spec.width;
  if (!l.open_active) {
    l.open_active = true;
    l.open_start = aligned;
  } else if (sealed_bucket.start >= l.open_start + l.spec.width - kTimeEps) {
    seal(i);
    l.open_active = true;
    l.open_start = aligned;
  }
  l.partial = merge_buckets(l.partial, sealed_bucket);
}

std::vector<BucketSummary> RollupCascade::sealed(std::size_t level) const {
  return levels_.at(level).ring.to_vector();
}

Seconds RollupCascade::oldest_sealed() const {
  Seconds oldest = std::numeric_limits<Seconds>::infinity();
  for (const Level& l : levels_)
    if (!l.ring.empty()) oldest = std::min(oldest, l.ring.front().start);
  return oldest;
}

std::size_t RollupCascade::memory_bytes() const {
  std::size_t bytes = 0;
  for (const Level& l : levels_) {
    bytes += l.ring.size() * sizeof(BucketSummary);
    bytes += l.scratch.capacity() * sizeof(double);
    bytes += sizeof(Level);
  }
  return bytes;
}

WindowStats RollupCascade::stitched(Seconds now, Seconds window,
                                    const std::vector<double>& raw_in_window,
                                    Seconds raw_oldest) const {
  WindowStats out;
  out.requested = std::max(0.0, window);
  out.raw_samples = raw_in_window.size();

  // "Everything retained" contract: answer from the raw ring alone.
  if (window <= 0) {
    out.measurement = Measurement::from_samples(raw_in_window);
    out.covered = std::isinf(raw_oldest) ? 0.0
                                         : std::max(0.0, now - raw_oldest);
    return out;
  }

  const Seconds start = now - window;

  // Fast, exact path: the raw ring reaches past the window start, so the
  // in-window samples are the complete story (this is the pre-rollup
  // behaviour for short windows).
  if (raw_oldest <= start + kTimeEps) {
    out.measurement = Measurement::from_samples(raw_in_window);
    out.covered = window;
    return out;
  }

  // Stitch: exact raw tail over [raw_oldest, now], then sealed buckets
  // for the older remainder, finest level first.  `cursor` marks the
  // oldest instant already answered for; only buckets wholly before it
  // and wholly inside the window are taken, so no span is double
  // counted.
  BucketSummary acc;
  Seconds cursor = now;
  Seconds covered_from = now;
  if (!raw_in_window.empty()) {
    acc = summarize_bucket(raw_oldest, now - raw_oldest, raw_in_window);
    cursor = raw_oldest;
    covered_from = raw_oldest;
  }
  Seconds slack = 0;
  for (std::size_t li = 0; li < levels_.size(); ++li) {
    Seconds level_min_start = cursor;
    bool used = false;
    for (const BucketSummary& b : sealed(li)) {
      if (b.empty()) continue;
      if (b.end() > cursor + kTimeEps) continue;   // raw/finer already has it
      if (b.start < start - kTimeEps) continue;    // straddles the window edge
      acc = merge_buckets(acc, b);
      level_min_start = std::min(level_min_start, b.start);
      used = true;
      ++out.rollup_buckets;
    }
    if (used) {
      cursor = level_min_start;
      covered_from = std::min(covered_from, level_min_start);
      slack = levels_[li].spec.width;  // coarsest level consulted so far
    }
  }

  out.covered = std::clamp(now - covered_from, 0.0, window);
  // Quantization slack: a window edge falling inside a bucket loses at
  // most one coarsest-consulted bucket of coverage without being a real
  // truncation.
  out.truncated = (out.requested - out.covered) > slack + kTimeEps;
  out.measurement = to_measurement(acc);
  // Honest accuracy: an answer covering half the requested span is worth
  // half the confidence (paper §4.4: report the variation, don't hide it).
  out.measurement.accuracy *= out.coverage();
  return out;
}

}  // namespace remos::obs
