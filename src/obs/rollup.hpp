// Cascaded quartile rollups: bounded long-horizon retention for one
// telemetry series.
//
// Remos answers every dynamic query as quartile statistics over a
// variable timescale (paper §4.2/§4.4), but a raw sample ring can only
// retain `capacity * poll_period` seconds -- a 256-sample ring polled
// every 2 s forgets everything older than ~8.5 minutes.  A RollupCascade
// extends the horizon at bounded memory the way RRD-style stores do:
// raw samples are folded into fixed-width time buckets (default 10 s),
// sealed buckets cascade into coarser ones (default 60 s), and each
// bucket keeps a *five-number summary + count + mean* instead of the
// samples themselves, so windowed quartile reads stay principled:
//
//   - count, mean, min and max merge exactly (count-weighted mean,
//     element-wise min/max);
//   - q1/median/q3 merge by count-weighted interpolation, which is the
//     standard summary-merge approximation: each merged quartile is
//     guaranteed to lie inside [min, max] and inside the envelope of the
//     inputs' corresponding quartiles.  Against raw-sample ground truth
//     the documented tolerance is 15% of the raw spread (max - min) for
//     streams whose distribution is stable across buckets; the property
//     tests in tests/test_timeseries.cpp enforce it.
//
// Appends are O(1) amortized (one open-bucket push; a seal + cascade
// every `width / sample_period` appends) and allocation-bounded: the
// open bucket's scratch buffer is compacted into a partial summary when
// it reaches kOpenBucketScratch values, and every sealed ring has fixed
// capacity.
#pragma once

#include <cstddef>
#include <vector>

#include "util/ring_buffer.hpp"
#include "util/stats.hpp"
#include "util/units.hpp"

namespace remos::obs {

/// Five-number summary + count + mean of the samples that fell into one
/// time bucket [start, start + width).
struct BucketSummary {
  Seconds start = 0;
  Seconds width = 0;
  std::size_t count = 0;
  QuartileSummary q;
  double mean = 0;

  Seconds end() const { return start + width; }
  bool empty() const { return count == 0; }
};

/// Exact summary of raw values (single sort); empty input yields an
/// empty bucket.
BucketSummary summarize_bucket(Seconds start, Seconds width,
                               const std::vector<double>& values);

/// Count-weighted merge of two summaries.  The result spans both
/// buckets' time ranges; count/mean/min/max are exact, quartiles are the
/// count-weighted interpolation described in the header comment.  Either
/// side may be empty.
BucketSummary merge_buckets(const BucketSummary& a, const BucketSummary& b);

/// Converts a (possibly merged) summary into the Remos Measurement
/// representation, using the same accuracy heuristic as
/// Measurement::from_samples (saturating count term, dispersion
/// discount).
Measurement to_measurement(const BucketSummary& s);

/// What a stitched window read answered with, and how much of the
/// requested span it actually saw.
struct WindowStats {
  Measurement measurement;
  Seconds requested = 0;
  /// Effective covered span: from the oldest retained datum inside the
  /// window (or the window start, whichever is younger) to `now`.
  Seconds covered = 0;
  /// True when retention could not reach back over the whole request
  /// (beyond one coarsest-consulted-bucket width of quantization slack).
  bool truncated = false;
  std::size_t raw_samples = 0;   // raw samples consulted
  std::size_t rollup_buckets = 0;  // sealed buckets consulted

  double coverage() const {
    return requested <= 0 ? 1.0
                          : (covered >= requested ? 1.0 : covered / requested);
  }
};

/// The cascade itself: one ring of sealed buckets per level, finest
/// first, plus one open (accumulating) bucket per level.
class RollupCascade {
 public:
  struct LevelSpec {
    Seconds width = 0;        // bucket length; each level a multiple of
                              // the previous
    std::size_t capacity = 0;  // sealed buckets retained
  };

  /// Default cascade: 10 s x 360 (one hour) -> 60 s x 1440 (one day).
  static const std::vector<LevelSpec>& default_levels();

  explicit RollupCascade(std::vector<LevelSpec> levels);
  RollupCascade() : RollupCascade(default_levels()) {}

  /// Folds one sample in.  Timestamps are expected non-decreasing (the
  /// collector and simulator clocks are); a late sample is folded into
  /// the current open bucket rather than dropped.
  void append(Seconds at, double value);

  std::size_t level_count() const { return levels_.size(); }
  const LevelSpec& level(std::size_t i) const { return levels_[i].spec; }

  /// Sealed buckets of one level, oldest first.
  std::vector<BucketSummary> sealed(std::size_t level) const;

  /// Oldest instant any sealed bucket still covers; +inf when nothing
  /// has been sealed yet.
  Seconds oldest_sealed() const;

  /// Samples folded in since construction.
  std::size_t total_samples() const { return total_samples_; }

  /// Approximate heap footprint of retained state (sealed buckets +
  /// open-bucket scratch), for memory-bound assertions.
  std::size_t memory_bytes() const;

  /// Answers a windowed quartile read over (now - window, now] by
  /// stitching the caller's raw samples (everything the raw ring retains
  /// inside the window, oldest first, spanning [raw_oldest, now]) with
  /// sealed buckets for the older remainder, finest level first.  Pass
  /// raw_oldest = +inf when the raw ring is empty.  window <= 0 answers
  /// from the raw samples alone with full coverage (the "everything
  /// retained" contract of LinkHistory).
  WindowStats stitched(Seconds now, Seconds window,
                       const std::vector<double>& raw_in_window,
                       Seconds raw_oldest) const;

 private:
  /// Open-bucket scratch values kept before compacting into a partial
  /// summary (bounds allocation regardless of sample rate).
  static constexpr std::size_t kOpenBucketScratch = 256;

  struct Level {
    LevelSpec spec;
    RingBuffer<BucketSummary> ring;
    // Open bucket state.  Level 0 accumulates raw values (scratch +
    // partial); coarser levels accumulate sealed finer buckets by merge.
    bool open_active = false;
    Seconds open_start = 0;
    std::vector<double> scratch;      // level 0 only
    BucketSummary partial;            // compacted/merged accumulation

    explicit Level(LevelSpec s) : spec(s), ring(s.capacity) {}
  };

  /// Seals level `i`'s open bucket (if non-empty) and cascades the
  /// sealed summary upward.
  void seal(std::size_t i);
  /// Feeds one sealed bucket into level `i`'s open accumulation.
  void accept(std::size_t i, const BucketSummary& sealed_bucket);

  std::vector<Level> levels_;
  std::size_t total_samples_ = 0;
};

}  // namespace remos::obs
