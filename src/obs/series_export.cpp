#include "obs/series_export.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>

namespace remos::obs {

namespace {

/// Finite number in a format the exposition scraper accepts
/// (`-?[0-9]+(\.[0-9]+)?([eE][+-]?[0-9]+)?`); non-finite values become 0.
std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  std::ostringstream os;
  os << v;
  return os.str();
}

std::string escape_label(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') out.push_back('\\');
    if (c == '\n') {
      out += "\\n";
      continue;
    }
    out.push_back(c);
  }
  return out;
}

void csv_row(std::ostream& out, char sep, const std::string& series,
             const std::string& level, Seconds start, Seconds end,
             std::size_t count, const QuartileSummary& q, double mean) {
  out << series << sep << level << sep << num(start) << sep << num(end)
      << sep << count << sep << num(q.min) << sep << num(q.q1) << sep
      << num(q.median) << sep << num(q.q3) << sep << num(q.max) << sep
      << num(mean) << "\n";
}

}  // namespace

void dump_series_csv(const TimeSeriesStore& store, std::ostream& out,
                     char sep) {
  out << "series" << sep << "level" << sep << "start" << sep << "end" << sep
      << "count" << sep << "min" << sep << "q1" << sep << "median" << sep
      << "q3" << sep << "max" << sep << "mean" << "\n";
  for (const std::string& name : store.names()) {
    const TimeSeries* s = store.find(name);
    if (!s) continue;
    for (const SeriesPoint& p : s->raw(std::numeric_limits<Seconds>::max(),
                                       0)) {
      const QuartileSummary q{p.value, p.value, p.value, p.value, p.value};
      csv_row(out, sep, name, "raw", p.at, p.at, 1, q, p.value);
    }
    for (std::size_t level = 0; level < s->level_count(); ++level) {
      std::string width;
      for (const BucketSummary& b : s->sealed(level)) {
        if (width.empty()) width = num(b.width);
        csv_row(out, sep, name, width, b.start, b.end(), b.count, b.q,
                b.mean);
      }
    }
  }
}

std::string render_series_exposition(const TimeSeriesStore& store,
                                     Seconds now, Seconds window) {
  std::ostringstream out;
  out << "# HELP remos_series_window Recent-window summary per telemetry "
         "series\n";
  out << "# TYPE remos_series_window gauge\n";
  for (const std::string& name : store.names()) {
    const TimeSeries* s = store.find(name);
    if (!s) continue;
    const WindowStats w = s->window(now, window);
    const std::string esc = escape_label(name);
    auto line = [&](const char* stat, double v) {
      out << "remos_series_window{series=\"" << esc << "\",stat=\"" << stat
          << "\"} " << num(v) << "\n";
    };
    line("count", static_cast<double>(w.measurement.samples));
    line("covered_seconds", w.covered);
    if (w.measurement.samples == 0) continue;
    line("min", w.measurement.quartiles.min);
    line("q1", w.measurement.quartiles.q1);
    line("median", w.measurement.quartiles.median);
    line("q3", w.measurement.quartiles.q3);
    line("max", w.measurement.quartiles.max);
    line("mean", w.measurement.mean);
  }
  return out.str();
}

std::vector<double> resample_mean(const std::vector<SeriesPoint>& points,
                                  Seconds from, Seconds to,
                                  std::size_t cols) {
  std::vector<double> out(cols, std::numeric_limits<double>::quiet_NaN());
  if (cols == 0 || to <= from) return out;
  std::vector<double> sum(cols, 0.0);
  std::vector<std::size_t> count(cols, 0);
  const Seconds span = to - from;
  for (const SeriesPoint& p : points) {
    if (p.at < from || p.at >= to) continue;
    auto col = static_cast<std::size_t>((p.at - from) / span *
                                        static_cast<double>(cols));
    col = std::min(col, cols - 1);
    sum[col] += p.value;
    ++count[col];
  }
  for (std::size_t i = 0; i < cols; ++i)
    if (count[i] > 0) out[i] = sum[i] / static_cast<double>(count[i]);
  return out;
}

std::string sparkline(const std::vector<double>& values, double lo,
                      double hi) {
  static const char* kBlocks[] = {"▁", "▂", "▃", "▄",
                                  "▅", "▆", "▇", "█"};
  std::string out;
  const double span = hi - lo;
  for (double v : values) {
    if (!std::isfinite(v)) {
      out += ' ';
      continue;
    }
    double t = span <= 0 ? 0.0 : (v - lo) / span;
    t = std::clamp(t, 0.0, 1.0);
    const auto idx =
        std::min<std::size_t>(7, static_cast<std::size_t>(t * 8.0));
    out += kBlocks[idx];
  }
  return out;
}

}  // namespace remos::obs
