// Exporters over the telemetry history plane (obs/timeseries.hpp).
//
// Three consumers, one artifact each:
//   - dump_series_csv: every retained datum (raw samples + sealed rollup
//     buckets) as CSV/TSV for offline analysis and CI validation.  Fixed
//     11-column schema; rows are grouped by series, and within one
//     (series, level) group timestamps are strictly non-decreasing --
//     the CI workflow parses the dump and fails on a violated invariant.
//   - render_series_exposition: Prometheus-style text lines summarizing
//     each series' recent window (count, covered span, five-number
//     summary, mean), shaped to pass the same exposition scraper the
//     PR 3 metrics block does.
//   - sparkline/resample_mean: terminal rendering helpers for the
//     examples/weathermap dashboard.
#pragma once

#include <cstddef>
#include <ostream>
#include <string>
#include <vector>

#include "obs/timeseries.hpp"

namespace remos::obs {

/// Column order of every data row:
///   series,level,start,end,count,min,q1,median,q3,max,mean
/// `level` is "raw" for ring samples (start == end == sample time,
/// count 1, all five numbers the sample value) or the bucket width in
/// seconds ("10", "60") for sealed rollup buckets.  A header row is
/// emitted first.  `sep` switches CSV/TSV.
void dump_series_csv(const TimeSeriesStore& store, std::ostream& out,
                     char sep = ',');

/// One exposition block over the recent window (now - window, now] of
/// every series:
///   remos_series_window{series="...",stat="median"} 1.25e+07
///   ...stat in {count,covered_seconds,min,q1,median,q3,max,mean}
/// Series with nothing in the window emit count/covered only.  Output
/// lines satisfy `name{labels} number` with finite numbers, so the CI
/// exposition validator accepts the block unchanged.
std::string render_series_exposition(const TimeSeriesStore& store,
                                     Seconds now, Seconds window);

/// Buckets `points` into `cols` equal slices of [from, to) and returns
/// the per-slice mean; empty slices yield NaN (rendered blank).
std::vector<double> resample_mean(const std::vector<SeriesPoint>& points,
                                  Seconds from, Seconds to,
                                  std::size_t cols);

/// Renders values as a UTF-8 block-glyph sparkline scaled to [lo, hi];
/// non-finite values render as a space, values outside the range clamp.
std::string sparkline(const std::vector<double>& values, double lo,
                      double hi);

}  // namespace remos::obs
