// Shared status vocabulary for the whole stack.
//
// Before this header existed every subsystem hand-rolled its own outcome
// enum and its own label strings (service::QueryStatus, the collector's
// AgentHealth, the SNMP breaker's State), which meant three switch
// statements that could drift apart and three spellings of the same idea
// in logs and metrics.  The enums now live here, each with a to_string(),
// and the owning subsystems alias them (service::QueryStatus is
// obs::QueryStatus, and so on) so existing call sites keep compiling.
// Metric label values and flight-recorder events use exactly these
// strings, so an operator greps for one vocabulary everywhere.
#pragma once

namespace remos::obs {

/// Outcome of one service query, as seen by the caller.
enum class QueryStatus {
  kAnswered,    // served from a snapshot within the staleness budget
  kStale,       // served, but the freshest snapshot exceeded the budget
  kDegraded,    // brownout: last good cached answer, accuracy discounted
  kOverloaded,  // shed at admission: the bounded queue was full
  kExpired,     // the deadline passed before a worker could answer
  kError,       // malformed query (structured; the service stays up)
};

/// Number of QueryStatus values (per-status metric arrays).
inline constexpr int kQueryStatusCount = 6;

/// Per-router agent health as seen by a collector.
enum class AgentHealth { kHealthy, kDegraded, kUnreachable };

/// Per-agent circuit-breaker state (closed admits, open fast-fails).
enum class BreakerState { kClosed, kOpen, kHalfOpen };

/// Outcome of a structured (non-throwing) topology query.
enum class GraphStatus {
  kOk,          // every queried node resolved
  kPartial,     // graph built over the known subset; some nodes unknown
  kUnresolved,  // no queried node is known to the model; graph is empty
  kInvalid,     // malformed query (empty node set, bad timeframe)
};

inline const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kAnswered: return "answered";
    case QueryStatus::kStale: return "stale";
    case QueryStatus::kDegraded: return "degraded";
    case QueryStatus::kOverloaded: return "overloaded";
    case QueryStatus::kExpired: return "expired";
    case QueryStatus::kError: return "error";
  }
  return "?";
}

inline const char* to_string(AgentHealth health) {
  switch (health) {
    case AgentHealth::kHealthy: return "healthy";
    case AgentHealth::kDegraded: return "degraded";
    case AgentHealth::kUnreachable: return "unreachable";
  }
  return "?";
}

inline const char* to_string(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed: return "closed";
    case BreakerState::kOpen: return "open";
    case BreakerState::kHalfOpen: return "half-open";
  }
  return "?";
}

inline const char* to_string(GraphStatus status) {
  switch (status) {
    case GraphStatus::kOk: return "ok";
    case GraphStatus::kPartial: return "partial";
    case GraphStatus::kUnresolved: return "unresolved";
    case GraphStatus::kInvalid: return "invalid";
  }
  return "?";
}

}  // namespace remos::obs
