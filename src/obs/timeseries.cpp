#include "obs/timeseries.hpp"

#include <algorithm>
#include <limits>

#include "util/error.hpp"

namespace remos::obs {

TimeSeries::TimeSeries(Options options)
    : raw_(options.raw_capacity), rollups_(std::move(options.levels)) {}

void TimeSeries::append(Seconds at, double value) {
  const std::lock_guard<std::mutex> lock(mutex_);
  raw_.push(SeriesPoint{at, value});
  rollups_.append(at, value);
  ++total_;
}

WindowStats TimeSeries::window(Seconds now, Seconds window) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<double> values;
  Seconds raw_oldest = std::numeric_limits<Seconds>::infinity();
  if (!raw_.empty()) raw_oldest = raw_.front().at;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const SeriesPoint& p = raw_[i];
    if (window > 0 && p.at <= now - window) continue;
    if (p.at > now) continue;
    values.push_back(p.value);
  }
  return rollups_.stitched(now, window, values, raw_oldest);
}

std::vector<SeriesPoint> TimeSeries::raw(Seconds now, Seconds window) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<SeriesPoint> out;
  for (std::size_t i = 0; i < raw_.size(); ++i) {
    const SeriesPoint& p = raw_[i];
    if (window > 0 && p.at <= now - window) continue;
    if (p.at > now) continue;
    out.push_back(p);
  }
  return out;
}

std::vector<BucketSummary> TimeSeries::sealed(std::size_t level) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return rollups_.sealed(level);
}

std::size_t TimeSeries::level_count() const { return rollups_.level_count(); }

bool TimeSeries::empty() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_ == 0;
}

std::size_t TimeSeries::raw_size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return raw_.size();
}

SeriesPoint TimeSeries::latest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  if (raw_.empty()) throw Error("TimeSeries: empty series");
  return raw_.back();
}

Seconds TimeSeries::oldest() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  Seconds oldest = rollups_.oldest_sealed();
  if (!raw_.empty()) oldest = std::min(oldest, raw_.front().at);
  return oldest;
}

std::size_t TimeSeries::total_samples() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return total_;
}

std::size_t TimeSeries::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return raw_.size() * sizeof(SeriesPoint) + rollups_.memory_bytes();
}

TimeSeries& TimeSeriesStore::series(const std::string& name,
                                    const TimeSeries::Options& options) {
  if (name.empty()) throw InvalidArgument("TimeSeriesStore: empty name");
  const std::lock_guard<std::mutex> lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end())
    it = series_.emplace(name, std::make_unique<TimeSeries>(options)).first;
  return *it->second;
}

const TimeSeries* TimeSeriesStore::find(const std::string& name) const {
  const std::lock_guard<std::mutex> lock(mutex_);
  const auto it = series_.find(name);
  return it == series_.end() ? nullptr : it->second.get();
}

std::vector<std::string> TimeSeriesStore::names() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, s] : series_) out.push_back(name);
  return out;
}

std::size_t TimeSeriesStore::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return series_.size();
}

std::size_t TimeSeriesStore::memory_bytes() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  std::size_t bytes = 0;
  for (const auto& [name, s] : series_) bytes += s->memory_bytes();
  return bytes;
}

}  // namespace remos::obs
