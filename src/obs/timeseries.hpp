// Multi-resolution telemetry time series.
//
// A TimeSeries is one named stream of (time, value) samples with a raw
// ring for recent history plus a RollupCascade for long horizons: the
// poll/publish hot path appends in O(1) amortized under a per-series
// mutex (uncontended in the single-writer deployments this repo runs --
// "lock-friendly", not lock-free: the critical section is a ring push
// and an open-bucket push), and windowed reads stitch raw samples with
// rollup buckets to answer any horizon at bounded memory, reporting the
// effective covered span instead of silently truncating.
//
// A TimeSeriesStore is the deployment-wide registry: components resolve
// a series handle once at wiring time (`store.series("service.latency_ms")`)
// and append through the stable pointer on the hot path; exporters
// (obs/series_export.hpp) iterate the registry for CSV dumps, the
// Prometheus-style recent-window exposition, and the weathermap.
#pragma once

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/rollup.hpp"
#include "util/ring_buffer.hpp"
#include "util/units.hpp"

namespace remos::obs {

struct SeriesPoint {
  Seconds at = 0;
  double value = 0;
};

class TimeSeries {
 public:
  struct Options {
    std::size_t raw_capacity = 256;
    std::vector<RollupCascade::LevelSpec> levels =
        RollupCascade::default_levels();
  };

  explicit TimeSeries(Options options);
  TimeSeries() : TimeSeries(Options{}) {}

  /// O(1) amortized; safe from any thread.
  void append(Seconds at, double value);

  /// Stitched quartile read over (now - window, now]; window <= 0 means
  /// "everything the raw ring retains".
  WindowStats window(Seconds now, Seconds window) const;

  /// Raw samples in (now - window, now], oldest first (window <= 0:
  /// everything retained) -- sparkline/export fodder.
  std::vector<SeriesPoint> raw(Seconds now, Seconds window) const;

  /// Sealed rollup buckets of one level, oldest first.
  std::vector<BucketSummary> sealed(std::size_t level) const;
  std::size_t level_count() const;

  bool empty() const;
  std::size_t raw_size() const;
  SeriesPoint latest() const;  // throws on empty
  /// Oldest instant any retained datum (raw or sealed) covers; +inf when
  /// the series is empty.
  Seconds oldest() const;
  std::size_t total_samples() const;

  /// Approximate heap footprint of retained state.
  std::size_t memory_bytes() const;

 private:
  mutable std::mutex mutex_;
  RingBuffer<SeriesPoint> raw_;
  RollupCascade rollups_;
  std::size_t total_ = 0;
};

/// Named registry of series.  Resolution takes the registry mutex once
/// and returns a pointer that stays valid for the store's lifetime;
/// appends through the handle never touch the registry lock.
class TimeSeriesStore {
 public:
  TimeSeriesStore() = default;
  TimeSeriesStore(const TimeSeriesStore&) = delete;
  TimeSeriesStore& operator=(const TimeSeriesStore&) = delete;

  /// Resolves (creating on first use with `options`).  Idempotent:
  /// the same name always returns the same series.
  TimeSeries& series(const std::string& name,
                     const TimeSeries::Options& options = {});

  /// Null when the name was never resolved.
  const TimeSeries* find(const std::string& name) const;

  /// Registered names, sorted.
  std::vector<std::string> names() const;
  std::size_t size() const;

  /// Sum of memory_bytes() over every series.
  std::size_t memory_bytes() const;

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<TimeSeries>> series_;
};

}  // namespace remos::obs
