#include "obs/trace.hpp"

#include <sstream>

namespace remos::obs {

std::string SpanTree::render() const {
  // Depth by chasing parents; spans are appended in open order, so a
  // simple pass renders the tree correctly.
  std::ostringstream out;
  for (const Span& s : spans) {
    int depth = 0;
    for (std::int32_t p = s.parent; p >= 0;
         p = spans[static_cast<std::size_t>(p)].parent)
      ++depth;
    for (int i = 0; i < depth; ++i) out << "  ";
    out << s.name << "  +" << s.start_us << "us  " << s.duration_us
        << "us\n";
  }
  return out.str();
}

std::uint64_t TraceBuilder::since_epoch_us() const {
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                      Clock::now() - epoch_)
                      .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

std::size_t TraceBuilder::open(std::string name) {
  Span s;
  s.name = std::move(name);
  s.parent = stack_.empty()
                 ? -1
                 : static_cast<std::int32_t>(stack_.back());
  s.start_us = since_epoch_us();
  spans_.push_back(std::move(s));
  const std::size_t index = spans_.size() - 1;
  stack_.push_back(index);
  return index;
}

void TraceBuilder::close(std::size_t index) {
  if (index >= spans_.size()) return;
  Span& s = spans_[index];
  const std::uint64_t now = since_epoch_us();
  s.duration_us = now > s.start_us ? now - s.start_us : 0;
  // Pop through the stack to this span (tolerates unclosed children).
  while (!stack_.empty()) {
    const std::size_t top = stack_.back();
    stack_.pop_back();
    if (top == index) break;
  }
}

void TraceBuilder::add_complete(std::string name, std::uint64_t start_us,
                                std::uint64_t duration_us) {
  Span s;
  s.name = std::move(name);
  s.parent = stack_.empty()
                 ? -1
                 : static_cast<std::int32_t>(stack_.back());
  s.start_us = start_us;
  s.duration_us = duration_us;
  spans_.push_back(std::move(s));
}

SpanTree TraceBuilder::take() {
  while (!stack_.empty()) close(stack_.back());
  SpanTree tree;
  tree.spans = std::move(spans_);
  spans_.clear();
  return tree;
}

}  // namespace remos::obs
