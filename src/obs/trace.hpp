// Per-query tracing: scoped timers that build a span tree.
//
// A TraceBuilder is created when a traced query starts executing and is
// carried along the execution path (service worker -> modeler); each
// stage opens a Scoped span, nesting under whatever span is open on the
// builder's stack.  The finished SpanTree -- a flat vector with parent
// indices, offsets and durations relative to the trace epoch -- is
// attached to the query's response, so a caller can see exactly where a
// slow answer spent its budget (admission, queue wait, snapshot pickup,
// route resolution, max-min solve, ...).
//
// A TraceBuilder is deliberately not thread-safe: one query's spans are
// produced by one thread at a time, and the promise/future handoff that
// delivers the response publishes the finished tree to the caller.  Code
// that may run untraced passes a nullptr builder; Scoped tolerates it.
#pragma once

#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace remos::obs {

struct Span {
  std::string name;
  std::int32_t parent = -1;     // index into SpanTree::spans; -1 = root
  std::uint64_t start_us = 0;   // offset from the trace epoch
  std::uint64_t duration_us = 0;
};

struct SpanTree {
  std::vector<Span> spans;

  bool empty() const { return spans.empty(); }

  /// Indented one-line-per-span text (duration-first, tree order).
  std::string render() const;
};

class TraceBuilder {
 public:
  using Clock = std::chrono::steady_clock;

  /// Epoch = now: span offsets count from construction.
  TraceBuilder() : epoch_(Clock::now()) {}
  /// Epoch in the past (e.g. when the query was enqueued), so spans that
  /// conceptually started before the builder existed line up.
  explicit TraceBuilder(Clock::time_point epoch) : epoch_(epoch) {}

  /// Opens a span under the innermost open span; returns its index.
  std::size_t open(std::string name);
  void close(std::size_t index);

  /// Records an already-finished span (e.g. queue wait measured from
  /// timestamps) under the innermost open span.
  void add_complete(std::string name, std::uint64_t start_us,
                    std::uint64_t duration_us);

  /// Closes any still-open spans and returns the tree.
  SpanTree take();

  /// RAII span; a null builder makes it a no-op.
  class Scoped {
   public:
    Scoped(TraceBuilder* trace, const char* name)
        : trace_(trace), index_(trace ? trace->open(name) : 0) {}
    ~Scoped() {
      if (trace_) trace_->close(index_);
    }
    Scoped(const Scoped&) = delete;
    Scoped& operator=(const Scoped&) = delete;

   private:
    TraceBuilder* trace_;
    std::size_t index_;
  };

 private:
  std::uint64_t since_epoch_us() const;

  Clock::time_point epoch_;
  std::vector<Span> spans_;
  std::vector<std::size_t> stack_;  // indices of open spans
};

}  // namespace remos::obs
