// Admission control for the query service.
//
// The service's request queue is bounded: a query is admitted while
// fewer than `capacity` admitted queries are in flight (queued or
// executing); everything beyond that is shed immediately with a
// structured Overloaded result.  Shedding at the door keeps the latency
// of admitted queries bounded (queue depth x per-query cost) instead of
// letting a burst grow everyone's wait without limit -- at 2x sustained
// overload the shed rate goes nonzero while admitted-query p99 stays
// within the SLO, which is the serving property the soak test pins.
//
// Lock-free: a CAS loop on the in-flight count; counters are relaxed
// atomics read for monitoring only.
#pragma once

#include <atomic>
#include <cstdint>

#include "util/error.hpp"

namespace remos::service {

class AdmissionController {
 public:
  struct Options {
    /// Maximum queries in flight (queued + executing).
    std::size_t capacity = 64;
  };

  AdmissionController() : AdmissionController(Options{}) {}
  explicit AdmissionController(Options options) : options_(options) {
    if (options_.capacity == 0)
      throw InvalidArgument("AdmissionController: zero capacity");
  }

  /// True: the query is admitted (caller must release() when it leaves
  /// the queue/worker).  False: the query is shed.
  bool try_acquire() {
    std::size_t n = in_flight_.load(std::memory_order_relaxed);
    while (true) {
      if (n >= options_.capacity) {
        shed_.fetch_add(1, std::memory_order_relaxed);
        return false;
      }
      if (in_flight_.compare_exchange_weak(n, n + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed))
        break;
    }
    admitted_.fetch_add(1, std::memory_order_relaxed);
    std::size_t hw = high_water_.load(std::memory_order_relaxed);
    while (n + 1 > hw &&
           !high_water_.compare_exchange_weak(hw, n + 1,
                                              std::memory_order_relaxed)) {
    }
    return true;
  }

  void release() { in_flight_.fetch_sub(1, std::memory_order_acq_rel); }

  std::size_t capacity() const { return options_.capacity; }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  /// Deepest in-flight count ever observed.
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  /// Queries rejected at the door.
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

 private:
  Options options_;
  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
};

}  // namespace remos::service
