#include "service/endpoint.hpp"

#include <exception>

namespace remos::service {

namespace {

std::chrono::microseconds since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration_cast<std::chrono::microseconds>(
      std::chrono::steady_clock::now() - t0);
}

}  // namespace

ModelerEndpoint::ModelerEndpoint(const core::Modeler& modeler)
    : modeler_(&modeler) {}

GraphResponse ModelerEndpoint::get_graph(GraphQuery query) {
  const auto t0 = std::chrono::steady_clock::now();
  GraphResponse response;
  core::GraphResult result =
      modeler_->get_graph_result(query.nodes, query.timeframe, query.options);
  response.graph_status = result.status;
  response.unknown_nodes = std::move(result.unknown_nodes);
  if (result.status == obs::GraphStatus::kInvalid) {
    response.meta.status = QueryStatus::kError;
    response.meta.error = std::move(result.error);
  } else {
    // Unknown nodes stay a structured graph_status, same as the service.
    response.meta.status = QueryStatus::kAnswered;
    response.graph = std::move(result.graph);
  }
  response.meta.latency = since(t0);
  return response;
}

FlowInfoResponse ModelerEndpoint::flow_info(FlowInfoQuery query) {
  const auto t0 = std::chrono::steady_clock::now();
  FlowInfoResponse response;
  try {
    response.result = modeler_->flow_info(query.query);
    response.meta.status = QueryStatus::kAnswered;
  } catch (const std::exception& e) {
    response.meta.status = QueryStatus::kError;
    response.meta.error = e.what();
  }
  response.meta.latency = since(t0);
  return response;
}

FlowBatchResponse ModelerEndpoint::flow_info_batch(FlowBatchInfoQuery query) {
  const auto t0 = std::chrono::steady_clock::now();
  FlowBatchResponse response;
  try {
    core::FlowBatchResult result = modeler_->flow_info_batch(query.batch);
    response.results = std::move(result.results);
    response.errors = std::move(result.errors);
    response.meta.status = QueryStatus::kAnswered;
  } catch (const std::exception& e) {
    response.meta.status = QueryStatus::kError;
    response.meta.error = e.what();
  }
  response.meta.latency = since(t0);
  return response;
}

}  // namespace remos::service
