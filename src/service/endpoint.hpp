// The unified query surface: every way to ask Remos a question.
//
// Three callable surfaces answer the same three questions -- the local
// QueryService, the retrying RemosClient in front of it, and the
// replica-routing FailoverCoordinator -- and before this interface each
// grew its own signatures.  FlowInfoEndpoint extracts the shared shape:
//
//   get_graph(GraphQuery)            -> GraphResponse
//   flow_info(FlowInfoQuery)         -> FlowInfoResponse
//   flow_info_batch(FlowBatchInfoQuery) -> FlowBatchResponse
//
// so applications, examples and the fx adaptation layer program against
// one surface and pick the serving topology (in-process modeler, single
// service, client with retry budget, replicated plane) at wiring time.
//
// Every implementation keeps the serving guarantees: a structured
// response by the deadline, never an exception across the boundary.
// ModelerEndpoint (below) is the degenerate synchronous implementation
// over a bare core::Modeler for tools and tests that have no service.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/flows.hpp"
#include "core/graph.hpp"
#include "core/logical.hpp"
#include "core/modeler.hpp"
#include "obs/obs.hpp"
#include "service/tenant_admission.hpp"

namespace remos::service {

/// Outcome of one query, as seen by the caller (shared vocabulary; see
/// obs/status.hpp):
///   kAnswered    served from a snapshot within the staleness budget
///   kStale       served, but the freshest snapshot exceeded the budget
///   kDegraded    brownout: the tenant's slice was full, so the last good
///                cached answer is served with accuracy discounted
///   kOverloaded  shed at admission: the bounded queue was full
///   kExpired     the deadline passed before a worker could answer
///   kError       malformed query (structured; the service stays up)
using QueryStatus = obs::QueryStatus;

inline const char* to_string(QueryStatus status) {
  return obs::to_string(status);
}

struct GraphQuery {
  std::vector<std::string> nodes;
  core::Timeframe timeframe = core::Timeframe::current();
  core::LogicalOptions options;
  /// Wall-clock answer budget; service default when unset.
  std::optional<std::chrono::microseconds> deadline;
  /// Model-clock staleness budget; service SLO when unset.
  std::optional<Seconds> max_staleness;
  /// Collect a per-query span tree into ResponseMeta::trace (admission,
  /// snapshot pickup, route resolution, solve, ...).
  bool trace = false;
  /// Tenant id from QueryService::register_tenant; unregistered ids fall
  /// back to the default tenant.
  int tenant = TenantAdmission::kDefaultTenant;
};

struct FlowInfoQuery {
  core::FlowQuery query;
  std::optional<std::chrono::microseconds> deadline;
  std::optional<Seconds> max_staleness;
  /// Collect a per-query span tree into ResponseMeta::trace.
  bool trace = false;
  /// Tenant id from QueryService::register_tenant.
  int tenant = TenantAdmission::kDefaultTenant;
};

/// N flow queries against one snapshot in one round trip; the whole batch
/// is one admission unit and one max-min solve (see core::FlowBatchQuery
/// for the kShared / kIndependent sharing semantics).
struct FlowBatchInfoQuery {
  core::FlowBatchQuery batch;
  /// Wall-clock budget for the whole batch; service default when unset.
  std::optional<std::chrono::microseconds> deadline;
  std::optional<Seconds> max_staleness;
  /// Collect a per-batch span tree into ResponseMeta::trace.
  bool trace = false;
  /// Tenant id; the batch consumes ONE admission slot regardless of size
  /// (it is one unit of solver work).
  int tenant = TenantAdmission::kDefaultTenant;
};

struct ResponseMeta {
  QueryStatus status = QueryStatus::kError;
  /// Version of the snapshot that answered (0 when none was consulted).
  std::uint64_t snapshot_version = 0;
  /// Age of that snapshot on the model clock at answer time.
  Seconds snapshot_age = 0;
  /// Wall-clock time from submission to response.
  std::chrono::microseconds latency{0};
  std::string error;
  /// Span tree for this query; non-empty only when the query asked for
  /// tracing and reached a worker.
  obs::SpanTree trace;
  /// True when the payload came from the result cache (a fresh O(1) hit,
  /// or -- when status is kDegraded -- a brownout answer).
  bool from_cache = false;

  /// True when a payload was produced (kAnswered, kStale, or a brownout
  /// kDegraded -- the latter with accuracy explicitly discounted).
  bool ok() const {
    return status == QueryStatus::kAnswered ||
           status == QueryStatus::kStale ||
           status == QueryStatus::kDegraded;
  }
};

struct GraphResponse {
  ResponseMeta meta;
  core::NetworkGraph graph;  // valid when meta.ok()
  /// Structured topology outcome (core::GraphResult): a query naming
  /// unknown nodes is still kAnswered/kStale at the service level, with
  /// graph_status kPartial/kUnresolved and the names listed here.
  obs::GraphStatus graph_status = obs::GraphStatus::kOk;
  std::vector<std::string> unknown_nodes;
};

struct FlowInfoResponse {
  ResponseMeta meta;
  core::FlowQueryResult result;  // valid when meta.ok()
};

struct FlowBatchResponse {
  /// Batch-level outcome: admission, snapshot, deadline and solve status
  /// for the whole batch (one solve, one verdict).
  ResponseMeta meta;
  /// Index-aligned sub-query results; valid when meta.ok().
  std::vector<core::FlowQueryResult> results;
  /// Index-aligned per-sub-query errors (independent mode): a non-empty
  /// string marks a malformed sub-query; its result slot is empty while
  /// the rest of the batch still answered.
  std::vector<std::string> errors;
};

/// The one interface all Remos query surfaces implement.  Implementations
/// never throw across this boundary and always return by the query's
/// deadline; callers branch on ResponseMeta::status.
class FlowInfoEndpoint {
 public:
  virtual ~FlowInfoEndpoint() = default;

  /// remos_get_graph: the logical topology connecting the queried nodes.
  virtual GraphResponse get_graph(GraphQuery query) = 0;
  /// remos_flow_info: one simultaneous multi-class flow query.
  virtual FlowInfoResponse flow_info(FlowInfoQuery query) = 0;
  /// remos_flow_info_batch: N flow queries, one snapshot, one solve.
  virtual FlowBatchResponse flow_info_batch(FlowBatchInfoQuery query) = 0;
};

/// Synchronous in-process endpoint over a bare core::Modeler -- no
/// workers, no admission, no deadlines (the calling thread does the
/// solve).  Lets single-threaded tools, examples and tests program
/// against FlowInfoEndpoint without standing up a QueryService, and be
/// re-pointed at one later without a code change.
///
/// Status mapping: kAnswered on success, kError (with the exception
/// message) on a structurally malformed query.  snapshot_version is 0 --
/// there is no snapshot plane underneath.  Deadlines, staleness budgets
/// and tenant ids on the query are ignored.
class ModelerEndpoint : public FlowInfoEndpoint {
 public:
  /// The modeler must outlive the endpoint.
  explicit ModelerEndpoint(const core::Modeler& modeler);

  GraphResponse get_graph(GraphQuery query) override;
  FlowInfoResponse flow_info(FlowInfoQuery query) override;
  FlowBatchResponse flow_info_batch(FlowBatchInfoQuery query) override;

 private:
  const core::Modeler* modeler_;
};

}  // namespace remos::service
