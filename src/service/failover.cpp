#include "service/failover.hpp"

#include <algorithm>
#include <string>
#include <utility>

namespace remos::service {

// ---------------------------------------------------------------------------
// FailoverCoordinator

FailoverCoordinator::FailoverCoordinator(std::vector<ReplicaStore*> replicas,
                                         Options options, obs::Obs obs)
    : replicas_(std::move(replicas)), options_(options) {
  recorder_ = obs.recorder;
  if (obs.metrics) {
    reroutes_counter_ = obs.metrics->counter(
        "remos_failover_reroutes_total", {},
        "Queries answered by other than the first replica tried.");
    exhausted_counter_ = obs.metrics->counter(
        "remos_failover_exhausted_total", {},
        "Queries that burned every attempt without an ok answer.");
    unrouted_counter_ = obs.metrics->counter(
        "remos_failover_unrouted_total", {},
        "Queries with no routable replica (synthesized kError).");
    degraded_fallback_counter_ = obs.metrics->counter(
        "remos_failover_degraded_fallback_total", {},
        "Queries answered by an unhealthy-but-serving fallback replica.");
    fast_expired_counter_ = obs.metrics->counter(
        "remos_failover_fast_expired_total", {},
        "Queries failed fast: deadline below one minimum attempt slice.");
    healthy_gauge_ =
        obs.metrics->gauge("remos_failover_healthy_replicas", {},
                           "Replicas currently in the routing rotation.");
  }
}

bool FailoverCoordinator::healthy(std::size_t i) const {
  const ReplicaStore* r = replicas_[i];
  if (!r->serving() || r->needs_full()) return false;
  const std::uint64_t applied = r->applied_version();
  if (applied == 0) return false;
  const std::uint64_t primary =
      primary_version_.load(std::memory_order_acquire);
  if (primary > applied && primary - applied > options_.max_lag_versions)
    return false;
  if (options_.heartbeat_timeout > 0) {
    const Seconds beat = r->last_applied_at();
    const Seconds now = model_now_.load(std::memory_order_acquire);
    if (beat < 0 || now - beat > options_.heartbeat_timeout) return false;
  }
  return true;
}

std::size_t FailoverCoordinator::healthy_count() const {
  std::size_t n = 0;
  for (std::size_t i = 0; i < replicas_.size(); ++i)
    if (healthy(i)) ++n;
  return n;
}

void FailoverCoordinator::note_publish(std::uint64_t version, Seconds now) {
  primary_version_.store(version, std::memory_order_release);
  model_now_.store(now, std::memory_order_release);
  const std::size_t n = healthy_count();
  healthy_gauge_.set(static_cast<double>(n));
  if (n == 0 && !degraded_) {
    degraded_ = true;
    if (recorder_)
      recorder_->record(obs::EventSeverity::kWarn, "failover",
                        "degraded_begin",
                        "no healthy replica; serving stale fallbacks", now);
  } else if (n > 0 && degraded_) {
    degraded_ = false;
    if (recorder_)
      recorder_->record(obs::EventSeverity::kInfo, "failover", "degraded_end",
                        std::to_string(n) + " replica(s) healthy again", now);
  }
}

template <typename Response, typename Query, typename Fn>
Response FailoverCoordinator::route(Query& query, Fn&& call) {
  queries_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t n = replicas_.size();
  Response last{};
  if (n == 0) {
    unrouted_.fetch_add(1, std::memory_order_relaxed);
    unrouted_counter_.inc();
    last.meta.status = QueryStatus::kError;
    last.meta.error = "failover: no replica available";
    return last;
  }

  // Slice the caller's total budget across attempts so a reroute after a
  // slow or dead replica still lands inside the original deadline.
  int attempts_allowed = std::max(1, options_.max_attempts);
  const std::chrono::microseconds total = query.deadline.value_or(
      replicas_[0]->service().options().default_deadline);
  if (options_.min_attempt_slice.count() > 0) {
    // Clamp: fewer, viable attempts beat many doomed ones.  A budget that
    // cannot cover even one slice fails fast without touching a replica.
    if (total < options_.min_attempt_slice) {
      fast_expired_.fetch_add(1, std::memory_order_relaxed);
      fast_expired_counter_.inc();
      last.meta.status = QueryStatus::kExpired;
      last.meta.error = "failover: deadline below minimum attempt slice";
      return last;
    }
    while (attempts_allowed > 1 &&
           total / attempts_allowed < options_.min_attempt_slice)
      --attempts_allowed;
  }
  query.deadline = total / attempts_allowed;

  const std::size_t start = cursor_.fetch_add(1, std::memory_order_relaxed);
  std::vector<char> tried(n, 0);
  int attempts = 0;
  // Pass 0 routes only to healthy replicas; pass 1 falls back to any
  // serving, ever-synced replica (a stale answer beats no answer).
  for (int pass = 0; pass < 2 && attempts < attempts_allowed; ++pass) {
    for (std::size_t k = 0; k < n && attempts < attempts_allowed; ++k) {
      const std::size_t i = (start + k) % n;
      if (tried[i]) continue;
      ReplicaStore* r = replicas_[i];
      const bool eligible = pass == 0
                                ? healthy(i)
                                : (r->serving() && r->applied_version() > 0);
      if (!eligible) continue;
      tried[i] = 1;
      ++attempts;
      Response resp = call(*r, query);
      if (resp.meta.ok()) {
        // A reroute is any answer served by other than round-robin's
        // natural pick -- whether that pick was skipped as unhealthy or
        // tried and failed.
        if (i != start % n) {
          rerouted_.fetch_add(1, std::memory_order_relaxed);
          reroutes_counter_.inc();
        }
        if (pass == 1) {
          degraded_fallback_.fetch_add(1, std::memory_order_relaxed);
          degraded_fallback_counter_.inc();
        }
        return resp;
      }
      last = std::move(resp);
    }
  }

  if (attempts == 0) {
    unrouted_.fetch_add(1, std::memory_order_relaxed);
    unrouted_counter_.inc();
    last.meta.status = QueryStatus::kError;
    last.meta.error = "failover: no replica available";
  } else {
    exhausted_.fetch_add(1, std::memory_order_relaxed);
    exhausted_counter_.inc();
  }
  return last;
}

GraphResponse FailoverCoordinator::get_graph(GraphQuery query) {
  return route<GraphResponse>(query, [](ReplicaStore& r, GraphQuery& q) {
    return r.service().get_graph(q);
  });
}

FlowInfoResponse FailoverCoordinator::flow_info(FlowInfoQuery query) {
  return route<FlowInfoResponse>(query,
                                 [](ReplicaStore& r, FlowInfoQuery& q) {
                                   return r.service().flow_info(q);
                                 });
}

FlowBatchResponse FailoverCoordinator::flow_info_batch(
    FlowBatchInfoQuery query) {
  return route<FlowBatchResponse>(
      query, [](ReplicaStore& r, FlowBatchInfoQuery& q) {
        return r.service().flow_info_batch(q);
      });
}

FailoverCoordinator::Stats FailoverCoordinator::stats() const {
  Stats s;
  s.queries = queries_.load(std::memory_order_relaxed);
  s.rerouted = rerouted_.load(std::memory_order_relaxed);
  s.exhausted = exhausted_.load(std::memory_order_relaxed);
  s.unrouted = unrouted_.load(std::memory_order_relaxed);
  s.degraded_fallback = degraded_fallback_.load(std::memory_order_relaxed);
  s.fast_expired = fast_expired_.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// ReplicatedService

ReplicatedService::ReplicatedService(Options options, obs::Obs obs)
    : options_(options), faults_(options.seed), bus_(faults_) {
  replicas_.reserve(options_.replicas);
  std::vector<ReplicaStore*> raw;
  for (std::size_t i = 0; i < options_.replicas; ++i) {
    replicas_.push_back(std::make_unique<ReplicaStore>(
        static_cast<int>(i), ReplicaStore::Options{options_.service}, obs));
    ReplicaStore* r = replicas_.back().get();
    raw.push_back(r);
    bus_.subscribe([r](const std::vector<std::uint8_t>& frame, Seconds now) {
      r->on_frame(frame, now);
    });
  }
  coordinator_ = std::make_unique<FailoverCoordinator>(
      std::move(raw), options_.failover, obs);
  if (obs.metrics) {
    full_frames_ =
        obs.metrics->counter("remos_replication_frames_total",
                             {{"kind", "full"}}, "Frames sent by the primary.");
    delta_frames_ = obs.metrics->counter("remos_replication_frames_total",
                                         {{"kind", "delta"}},
                                         "Frames sent by the primary.");
    resync_frames_ = obs.metrics->counter(
        "remos_replication_frames_total", {{"kind", "resync"}},
        "Targeted full frames answering a needs-full flag.");
    wire_bytes_ = obs.metrics->counter("remos_replication_wire_bytes_total",
                                       {}, "Encoded frame bytes produced.");
    for (std::size_t i = 0; i < options_.replicas; ++i)
      lag_gauges_.push_back(obs.metrics->gauge(
          "remos_replication_lag_versions",
          {{"replica", std::to_string(i)}},
          "Versions this replica trails the primary by."));
  }
}

ReplicatedService::~ReplicatedService() { stop(); }

void ReplicatedService::start() {
  if (started_) return;
  started_ = true;
  for (auto& r : replicas_) r->start();
}

void ReplicatedService::stop() {
  if (!started_) return;
  started_ = false;
  for (auto& r : replicas_) r->stop();
}

void ReplicatedService::publish(const collector::NetworkModel& model,
                                Seconds now) {
  const SnapshotStore::Ptr snap = store_.publish(model, now);
  const std::uint64_t v = snap->version;

  // Deltas anchor on the pinned previous version; every full_every-th
  // version (and any version without a base) ships full so a quiet
  // channel still converges from scratch within one anchor period.
  std::vector<std::uint8_t> wire;
  bool is_full = true;
  if (base_ && (options_.full_every == 0 || v % options_.full_every != 1)) {
    wire = collector::encode_delta(base_->model, base_->version, snap->model,
                                   v, now);
    is_full = false;
  } else {
    wire = collector::encode_full(snap->model, v, now);
  }
  (is_full ? full_frames_ : delta_frames_).inc();
  wire_bytes_.inc(wire.size());

  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const int id = static_cast<int>(i);
    if (faults_.crashed(id, now))
      replicas_[i]->note_outage(now);
    else
      replicas_[i]->note_alive(now);
    bus_.send(id, wire, now);
  }

  // Targeted resync: answer gap/restart flags with a full frame through
  // the same faulty channel (it may be lost again; next round retries).
  std::vector<std::uint8_t> full;
  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const int id = static_cast<int>(i);
    if (!replicas_[i]->needs_full() || faults_.crashed(id, now)) continue;
    if (full.empty())
      full = is_full ? wire : collector::encode_full(snap->model, v, now);
    resync_frames_.inc();
    wire_bytes_.inc(full.size());
    bus_.send(id, full, now);
  }

  base_ = store_.acquire(v);

  for (std::size_t i = 0; i < replicas_.size(); ++i) {
    const std::uint64_t applied = replicas_[i]->applied_version();
    if (i < lag_gauges_.size())
      lag_gauges_[i].set(static_cast<double>(v > applied ? v - applied : 0));
  }
  coordinator_->note_publish(v, now);
}

std::uint64_t ReplicatedService::primary_fingerprint() const {
  const SnapshotStore::Ptr snap = store_.current();
  return snap ? collector::model_fingerprint(snap->model) : 0;
}

}  // namespace remos::service
