// Client-side failover over snapshot replicas, plus the ReplicatedService
// bundle that wires primary, channel, replicas and coordinator together.
//
// The FailoverCoordinator is the piece a network-aware application links
// against when the Modeler is replicated: it health-checks replicas
// (serving flag, applied-version lag against the primary, applied-frame
// heartbeat) and routes each query to a healthy replica round-robin,
// retrying the next one on failure with a per-attempt slice of the
// caller's deadline -- so a crashed or partitioned replica mid-fault-storm
// costs a reroute, not a blown p99.  Failover state machine per replica:
//
//          frames applied, lag small
//        ┌──────────── HEALTHY ◄───────────┐
//        │ in rotation   │                 │ full frame applied
//        │               │ gap / lag /     │ (resync)
//        ▼               │ heartbeat stale │
//   serves queries       ▼                 │
//                     DEGRADED ────────────┘
//                  fallback only │
//                        │ crash window opens
//                        ▼
//                      DOWN ── restart (state wiped) ──► DEGRADED
//                 never routed
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "obs/obs.hpp"
#include "service/replication.hpp"

namespace remos::service {

class FailoverCoordinator : public FlowInfoEndpoint {
 public:
  struct Options {
    /// A replica trailing the primary by more than this many versions is
    /// unhealthy (it still serves as a stale fallback).
    std::uint64_t max_lag_versions = 8;
    /// Model-clock heartbeat budget: a replica whose newest applied
    /// frame is older than this against the publish clock is unhealthy.
    /// <= 0 disables the heartbeat check.
    Seconds heartbeat_timeout = 0;
    /// Distinct replicas tried per query; the caller's deadline is
    /// divided evenly across attempts so retries stay inside it.
    int max_attempts = 3;
    /// Floor on the per-attempt deadline slice.  Rather than issuing
    /// doomed near-zero-budget attempts, the coordinator first reduces
    /// the attempt count until every slice clears this floor; a total
    /// deadline below even one slice fails fast with a synthesized
    /// kExpired (no attempt is issued at all).  0 disables the clamp.
    std::chrono::microseconds min_attempt_slice{1'000};
  };

  FailoverCoordinator(std::vector<ReplicaStore*> replicas, Options options,
                      obs::Obs obs = {});

  /// Publisher-thread tick: anchors lag and heartbeat checks, maintains
  /// the healthy-replica gauge, and edge-detects total degradation.
  void note_publish(std::uint64_t version, Seconds now);

  /// Query entry points (FlowInfoEndpoint), callable from any thread.
  /// Route to a healthy replica; on failure retry the next, then fall
  /// back to any serving replica (stale answers beat no answers);
  /// synthesize a structured kError response when nothing is routable.
  /// A batch routes (and reroutes) as one unit to one replica -- its
  /// sub-queries always answer from a single consistent snapshot.
  GraphResponse get_graph(GraphQuery query) override;
  FlowInfoResponse flow_info(FlowInfoQuery query) override;
  FlowBatchResponse flow_info_batch(FlowBatchInfoQuery query) override;

  /// In rotation: serving, synced, within lag and heartbeat budgets.
  bool healthy(std::size_t i) const;
  std::size_t healthy_count() const;

  struct Stats {
    std::uint64_t queries = 0;
    /// Queries answered by other than the first replica tried.
    std::uint64_t rerouted = 0;
    /// Queries that burned every attempt without an ok() answer.
    std::uint64_t exhausted = 0;
    /// Queries with no routable replica at all (synthesized kError).
    std::uint64_t unrouted = 0;
    /// Queries answered on pass 1 (an unhealthy-but-serving replica: a
    /// stale fallback beats no answer).
    std::uint64_t degraded_fallback = 0;
    /// Queries failed fast with a synthesized kExpired because the total
    /// deadline could not cover even one min_attempt_slice.
    std::uint64_t fast_expired = 0;
  };
  Stats stats() const;

 private:
  template <typename Response, typename Query, typename Fn>
  Response route(Query& query, Fn&& call);

  std::vector<ReplicaStore*> replicas_;
  Options options_;

  std::atomic<std::uint64_t> primary_version_{0};
  std::atomic<double> model_now_{0.0};
  std::atomic<std::uint64_t> cursor_{0};

  std::atomic<std::uint64_t> queries_{0};
  std::atomic<std::uint64_t> rerouted_{0};
  std::atomic<std::uint64_t> exhausted_{0};
  std::atomic<std::uint64_t> unrouted_{0};
  std::atomic<std::uint64_t> degraded_fallback_{0};
  std::atomic<std::uint64_t> fast_expired_{0};

  obs::FlightRecorder* recorder_ = nullptr;
  obs::Counter reroutes_counter_;
  obs::Counter exhausted_counter_;
  obs::Counter unrouted_counter_;
  obs::Counter degraded_fallback_counter_;
  obs::Counter fast_expired_counter_;
  obs::Gauge healthy_gauge_;
  bool degraded_ = false;  // publisher thread only (edge detector)
};

/// The replicated snapshot plane in one object: a primary SnapshotStore
/// (with a pinned delta base), the fault-injectable ReplicationBus, N
/// ReplicaStores, and a FailoverCoordinator over them.  publish() is the
/// single publisher-thread entry point; queries go through coordinator().
class ReplicatedService {
 public:
  struct Options {
    std::size_t replicas = 3;
    /// Options for each replica's embedded QueryService.
    QueryService::Options service;
    /// Every full_every-th version ships as a full frame (delta anchor);
    /// other versions ship as deltas against the previous version.
    std::uint64_t full_every = 32;
    FailoverCoordinator::Options failover;
    std::uint64_t seed = 0x5EB05;
  };

  explicit ReplicatedService(Options options, obs::Obs obs = {});
  ReplicatedService() : ReplicatedService(Options{}) {}
  ~ReplicatedService();

  ReplicatedService(const ReplicatedService&) = delete;
  ReplicatedService& operator=(const ReplicatedService&) = delete;

  void start();
  void stop();

  /// Publishes to the primary store and streams one frame per replica
  /// through the faulty channel, plus targeted full frames to replicas
  /// flagging needs_full().  Publisher thread only.
  void publish(const collector::NetworkModel& model, Seconds now);

  ChannelFaultInjector& faults() { return faults_; }
  FailoverCoordinator& coordinator() { return *coordinator_; }
  ReplicaStore& replica(std::size_t i) { return *replicas_.at(i); }
  std::size_t replica_count() const { return replicas_.size(); }
  const ReplicationBus::Stats& bus_stats() const { return bus_.stats(); }

  std::uint64_t primary_version() const { return store_.version(); }
  /// Canonical fingerprint of the primary's newest snapshot (0 = none).
  std::uint64_t primary_fingerprint() const;

 private:
  Options options_;
  ChannelFaultInjector faults_;
  ReplicationBus bus_;
  SnapshotStore store_;
  SnapshotStore::Pin base_;  // keeps the delta base version addressable
  std::vector<std::unique_ptr<ReplicaStore>> replicas_;
  std::unique_ptr<FailoverCoordinator> coordinator_;
  bool started_ = false;

  obs::Counter full_frames_;
  obs::Counter delta_frames_;
  obs::Counter resync_frames_;
  obs::Counter wire_bytes_;
  std::vector<obs::Gauge> lag_gauges_;
};

}  // namespace remos::service
