#include "service/query_service.hpp"

#include <algorithm>
#include <utility>

#include "util/error.hpp"

namespace remos::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

double to_seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

QueryService::QueryService(Options options)
    : options_(options),
      admission_({options.queue_capacity}) {
  if (options_.workers == 0)
    throw InvalidArgument("QueryService: zero workers");
  if (options_.default_deadline.count() <= 0)
    throw InvalidArgument("QueryService: non-positive default deadline");
  if (options_.staleness_slo < 0)
    throw InvalidArgument("QueryService: negative staleness SLO");
  if (options_.poll_interval.count() <= 0)
    throw InvalidArgument("QueryService: non-positive poll interval");
}

QueryService::~QueryService() { stop(); }

void QueryService::set_obs(const obs::Obs& o) {
  if (o.metrics) {
    for (int s = 0; s < obs::kQueryStatusCount; ++s)
      status_counters_[static_cast<std::size_t>(s)] = o.metrics->counter(
          "remos_service_queries_total",
          {{"status", obs::to_string(static_cast<QueryStatus>(s))}},
          "Query outcomes by client-visible status");
    submitted_counter_ =
        o.metrics->counter("remos_service_queries_submitted_total", {},
                           "Queries offered to admission control");
    polls_counter_ = o.metrics->counter(
        "remos_service_polls_total", {}, "Background poll steps executed");
    queue_depth_gauge_ = o.metrics->gauge(
        "remos_service_queue_depth", {}, "Jobs enqueued awaiting a worker");
    snapshot_version_gauge_ =
        o.metrics->gauge("remos_service_snapshot_version", {},
                         "Version of the current published snapshot");
    snapshot_age_gauge_ = o.metrics->gauge(
        "remos_service_snapshot_age_seconds", {},
        "Model-clock age of the snapshot at the last answer");
    latency_ = o.metrics->histogram(
        "remos_service_latency_seconds", obs::default_time_buckets(), {},
        "Wall-clock submission-to-response latency of executed queries");
    deadline_slack_ = o.metrics->histogram(
        "remos_service_deadline_slack_seconds", obs::default_time_buckets(),
        {}, "Wall-clock budget remaining when the answer landed");
    modeler_obs_ = core::ModelerObs::resolve(o);
  }
  if (o.series) {
    for (int s = 0; s < obs::kQueryStatusCount; ++s)
      latency_series_[static_cast<std::size_t>(s)] = &o.series->series(
          std::string("service.latency_ms.") +
          obs::to_string(static_cast<QueryStatus>(s)));
    shed_series_ = &o.series->series("service.shed");
    staleness_series_ = &o.series->series("service.staleness");
  }
  recorder_ = o.recorder;
}

void QueryService::start() { start(std::function<void()>{}); }

void QueryService::start(std::function<void()> poll_step) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (started_) throw Error("QueryService: already started");
    started_ = true;
    stopping_ = false;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (poll_step)
    poller_ = std::thread(
        [this, step = std::move(poll_step)] { poller_loop(step); });
}

void QueryService::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  stop_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  // Jobs still queued complete inline; their clients (if any are still
  // waiting) get real answers, and abandoned ones are skipped.
  std::deque<std::function<void()>> rest;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    rest.swap(queue_);
    started_ = false;
  }
  for (auto& job : rest) job();
}

void QueryService::publish(collector::NetworkModel model, Seconds model_now) {
  store_.publish(std::move(model), model_now);
  note_model_now(model_now);
  snapshot_version_gauge_.set(static_cast<double>(store_.version()));
  if (recorder_)
    recorder_->record(obs::EventSeverity::kInfo, "service",
                      "snapshot_publish",
                      "version " + std::to_string(store_.version()),
                      model_now);
}

void QueryService::note_model_now(Seconds model_now) {
  double cur = model_now_.load(std::memory_order_relaxed);
  while (model_now > cur &&
         !model_now_.compare_exchange_weak(cur, model_now,
                                           std::memory_order_acq_rel)) {
  }
}

void QueryService::count_outcome(QueryStatus status) {
  status_counters_[static_cast<std::size_t>(status)].inc();
  switch (status) {
    case QueryStatus::kAnswered:
      answered_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kStale:
      stale_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void QueryService::note_shed(bool shed) {
  // Edge-triggered: the recorder logs shed *episodes*, not every shed
  // query -- an overload burst is one event in, one event out.
  if (shedding_.exchange(shed, std::memory_order_relaxed) == shed) return;
  if (recorder_)
    recorder_->record(shed ? obs::EventSeverity::kWarn
                           : obs::EventSeverity::kInfo,
                      "service",
                      shed ? "shed_episode_begin" : "shed_episode_end",
                      shed ? "admission queue full; shedding"
                           : "admission recovered");
}

template <typename Response, typename Fn>
void QueryService::run_job(const std::shared_ptr<Pending<Response>>& state,
                           Fn& execute) {
  queue_depth_gauge_.add(-1.0);
  if (state->abandoned.load(std::memory_order_acquire)) {
    // The caller already returned kExpired; skip the work entirely.
    admission_.release();
    return;
  }
  Response r;
  if (Clock::now() >= state->deadline) {
    r.meta.status = QueryStatus::kExpired;
  } else {
    r = execute(state->enqueued);
  }
  const auto done = Clock::now();
  const std::uint64_t us = elapsed_us(state->enqueued, done);
  r.meta.latency = std::chrono::microseconds(us);
  latency_.observe(static_cast<double>(us) * 1e-6);
  if (obs::TimeSeries* ts =
          latency_series_[static_cast<std::size_t>(r.meta.status)])
    ts->append(model_now(), static_cast<double>(us) * 1e-3);
  deadline_slack_.observe(
      std::max(0.0, to_seconds(state->deadline - done)));
  admission_.release();
  state->promise.set_value(std::move(r));
}

template <typename Response, typename Fn>
Response QueryService::submit(std::chrono::microseconds deadline_budget,
                              Fn execute) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_.inc();
  const auto enqueued = Clock::now();
  const auto deadline = enqueued + deadline_budget;

  Response r;
  if (!admission_.try_acquire()) {
    r.meta.status = QueryStatus::kOverloaded;
    if (shed_series_) shed_series_->append(model_now(), 1.0);
    note_shed(true);
    count_outcome(r.meta.status);
    return r;
  }
  if (shed_series_) shed_series_->append(model_now(), 0.0);
  note_shed(false);

  auto state = std::make_shared<Pending<Response>>();
  state->enqueued = enqueued;
  state->deadline = deadline;
  std::future<Response> fut = state->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) {
      admission_.release();
      r.meta.status = QueryStatus::kError;
      r.meta.error = "service stopped";
      count_outcome(r.meta.status);
      return r;
    }
    queue_.emplace_back(
        [this, state, execute = std::move(execute)]() mutable {
          run_job(state, execute);
        });
    queue_depth_gauge_.add(1.0);
  }
  queue_cv_.notify_one();

  if (fut.wait_until(deadline) == std::future_status::ready) {
    r = fut.get();
    count_outcome(r.meta.status);
    return r;
  }
  state->abandoned.store(true, std::memory_order_release);
  r.meta.status = QueryStatus::kExpired;
  r.meta.latency = std::chrono::microseconds(elapsed_us(enqueued, Clock::now()));
  count_outcome(r.meta.status);
  return r;
}

template <typename Response, typename Fn>
Response QueryService::answer(Seconds staleness_budget, bool trace,
                              std::chrono::steady_clock::time_point enqueued,
                              Fn&& query_fn) {
  Response r;
  // Epoch = submission, so the "admission" span (queue wait) lines up
  // with the worker-side spans in one tree.
  obs::TraceBuilder tb(enqueued);
  obs::TraceBuilder* tbp = trace ? &tb : nullptr;
  if (tbp) tb.add_complete("admission", 0, elapsed_us(enqueued, Clock::now()));

  SnapshotStore::Ptr snap;
  {
    obs::TraceBuilder::Scoped span(tbp, "snapshot_pickup");
    snap = store_.current();
  }
  if (!snap) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = "no snapshot published yet";
    if (tbp) r.meta.trace = tb.take();
    return r;
  }
  const Seconds now = model_now();
  const Seconds age = std::max(0.0, now - snap->taken_at);
  r.meta.snapshot_version = snap->version;
  r.meta.snapshot_age = age;
  snapshot_age_gauge_.set(age);
  if (staleness_series_) staleness_series_->append(now, age);
  // A fresh Modeler over the immutable snapshot: const queries, no
  // shared mutable state, nothing to lock.  The clock is pinned to the
  // model time observed at answer time, so accuracy keeps decaying
  // (PR 1) as the snapshot ages past its publication.  Metric handles
  // were pre-resolved at set_obs time; the trace builder (if any) is
  // owned by this one query.
  core::Modeler modeler(snap->model);
  modeler.set_clock([now] { return now; });
  modeler.set_obs(&modeler_obs_);
  modeler.set_trace(tbp);
  try {
    obs::TraceBuilder::Scoped span(tbp, "solve");
    query_fn(modeler, r);
    r.meta.status =
        age > staleness_budget ? QueryStatus::kStale : QueryStatus::kAnswered;
  } catch (const std::exception& e) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = e.what();
  } catch (...) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = "unknown error";
  }
  if (tbp) r.meta.trace = tb.take();
  return r;
}

GraphResponse QueryService::get_graph(GraphQuery query) {
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  return submit<GraphResponse>(
      budget,
      [this, q = std::move(query), slo](Clock::time_point enqueued) {
        return answer<GraphResponse>(
            slo, q.trace, enqueued,
            [&q](const core::Modeler& m, GraphResponse& r) {
              core::GraphResult gr =
                  m.get_graph_result(q.nodes, q.timeframe, q.options);
              r.graph = std::move(gr.graph);
              r.graph_status = gr.status;
              r.unknown_nodes = std::move(gr.unknown_nodes);
              // A structurally invalid query is still a service-level
              // error; partial/unresolved topologies are answers.
              if (gr.status == obs::GraphStatus::kInvalid)
                throw InvalidArgument(gr.error);
            });
      });
}

FlowInfoResponse QueryService::flow_info(FlowInfoQuery query) {
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  return submit<FlowInfoResponse>(
      budget,
      [this, q = std::move(query), slo](Clock::time_point enqueued) {
        return answer<FlowInfoResponse>(
            slo, q.trace, enqueued,
            [&q](const core::Modeler& m, FlowInfoResponse& r) {
              r.result = m.flow_info(q.query);
            });
      });
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.answered = answered_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.polls = polls_.load(std::memory_order_relaxed);
  s.snapshot_version = store_.version();
  s.in_flight_high_water = admission_.high_water();
  s.p50_us = static_cast<std::uint64_t>(latency_.quantile(0.50) * 1e6);
  s.p99_us = static_cast<std::uint64_t>(latency_.quantile(0.99) * 1e6);
  return s;
}

void QueryService::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void QueryService::poller_loop(std::function<void()> poll_step) {
  while (true) {
    poll_step();
    polls_.fetch_add(1, std::memory_order_relaxed);
    polls_counter_.inc();
    std::unique_lock<std::mutex> lk(mutex_);
    if (stop_cv_.wait_for(lk, options_.poll_interval,
                          [this] { return stopping_; }))
      return;
  }
}

}  // namespace remos::service
