#include "service/query_service.hpp"

#include <algorithm>
#include <cmath>
#include <utility>

#include "service/result_cache.hpp"
#include "util/error.hpp"

namespace remos::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

double to_seconds(Clock::duration d) {
  return std::chrono::duration<double>(d).count();
}

}  // namespace

QueryService::QueryService(Options options)
    : options_(options),
      admission_({options.queue_capacity, options.reserved_fraction,
                  options.max_tenants}) {
  if (options_.workers == 0)
    throw InvalidArgument("QueryService: zero workers");
  if (options_.default_deadline.count() <= 0)
    throw InvalidArgument("QueryService: non-positive default deadline");
  if (options_.staleness_slo < 0)
    throw InvalidArgument("QueryService: negative staleness SLO");
  if (options_.poll_interval.count() <= 0)
    throw InvalidArgument("QueryService: non-positive poll interval");
  if (options_.brownout_halflife < 0)
    throw InvalidArgument("QueryService: negative brownout half-life");
  if (options_.coalesce_window.count() < 0)
    throw InvalidArgument("QueryService: negative coalesce window");
  if (options_.coalesce_window.count() > 0 && options_.coalesce_max_batch == 0)
    throw InvalidArgument("QueryService: zero coalesce batch bound");
  if (options_.adaptive)
    aimd_ = std::make_unique<AimdController>(options_.aimd,
                                             options_.default_deadline);
  graph_cache_ = std::make_unique<ResultCache<GraphResponse>>(
      ResultCache<GraphResponse>::Options{options_.cache_capacity});
  flow_cache_ = std::make_unique<ResultCache<FlowInfoResponse>>(
      ResultCache<FlowInfoResponse>::Options{options_.cache_capacity});
  batch_cache_ = std::make_unique<ResultCache<FlowBatchResponse>>(
      ResultCache<FlowBatchResponse>::Options{options_.cache_capacity});
}

QueryService::~QueryService() { stop(); }

int QueryService::register_tenant(const std::string& name, double weight) {
  return admission_.register_tenant(name, weight);
}

void QueryService::set_obs(const obs::Obs& o) {
  if (o.metrics) {
    for (int s = 0; s < obs::kQueryStatusCount; ++s)
      status_counters_[static_cast<std::size_t>(s)] = o.metrics->counter(
          "remos_service_queries_total",
          {{"status", obs::to_string(static_cast<QueryStatus>(s))}},
          "Query outcomes by client-visible status");
    submitted_counter_ =
        o.metrics->counter("remos_service_queries_submitted_total", {},
                           "Queries offered to admission control");
    polls_counter_ = o.metrics->counter(
        "remos_service_polls_total", {}, "Background poll steps executed");
    queue_depth_gauge_ = o.metrics->gauge(
        "remos_service_queue_depth", {}, "Jobs enqueued awaiting a worker");
    snapshot_version_gauge_ =
        o.metrics->gauge("remos_service_snapshot_version", {},
                         "Version of the current published snapshot");
    snapshot_age_gauge_ = o.metrics->gauge(
        "remos_service_snapshot_age_seconds", {},
        "Model-clock age of the snapshot at the last answer");
    latency_ = o.metrics->histogram(
        "remos_service_latency_seconds", obs::default_time_buckets(), {},
        "Wall-clock submission-to-response latency of executed queries");
    deadline_slack_ = o.metrics->histogram(
        "remos_service_deadline_slack_seconds", obs::default_time_buckets(),
        {}, "Wall-clock budget remaining when the answer landed");
    cache_hit_counter_ = o.metrics->counter(
        "remos_service_cache_hits_total", {},
        "Fresh result-cache hits (current snapshot version)");
    brownout_counter_ = o.metrics->counter(
        "remos_service_brownouts_total", {},
        "Queries answered from the cache with kDegraded instead of shed");
    budget_gauge_ = o.metrics->gauge(
        "remos_service_admission_budget", {},
        "Current global admission budget (AIMD-resized when adaptive)");
    budget_gauge_.set(static_cast<double>(admission_.capacity()));
    const std::size_t tenants = admission_.tenant_count();
    tenant_admitted_counters_.clear();
    tenant_shed_counters_.clear();
    for (std::size_t t = 0; t < tenants; ++t) {
      const auto ts = admission_.tenant_stats(static_cast<int>(t));
      tenant_admitted_counters_.push_back(o.metrics->counter(
          "remos_service_tenant_admitted_total", {{"tenant", ts.name}},
          "Queries admitted, by tenant"));
      tenant_shed_counters_.push_back(o.metrics->counter(
          "remos_service_tenant_shed_total", {{"tenant", ts.name}},
          "Queries shed at admission, by tenant"));
    }
    modeler_obs_ = core::ModelerObs::resolve(o);
  }
  if (o.series) {
    for (int s = 0; s < obs::kQueryStatusCount; ++s)
      latency_series_[static_cast<std::size_t>(s)] = &o.series->series(
          std::string("service.latency_ms.") +
          obs::to_string(static_cast<QueryStatus>(s)));
    shed_series_ = &o.series->series("service.shed");
    staleness_series_ = &o.series->series("service.staleness");
  }
  recorder_ = o.recorder;
}

void QueryService::start() { start(std::function<void()>{}); }

void QueryService::start(std::function<void()> poll_step) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (started_) throw Error("QueryService: already started");
    started_ = true;
    stopping_ = false;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (poll_step)
    poller_ = std::thread(
        [this, step = std::move(poll_step)] { poller_loop(step); });
}

void QueryService::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  stop_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  // Jobs still queued complete inline; their clients (if any are still
  // waiting) get real answers, and abandoned ones are skipped.
  std::deque<std::function<void()>> rest;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    rest.swap(queue_);
    started_ = false;
  }
  for (auto& job : rest) job();
}

void QueryService::publish(collector::NetworkModel model, Seconds model_now) {
  store_.publish(std::move(model), model_now);
  note_model_now(model_now);
  snapshot_version_gauge_.set(static_cast<double>(store_.version()));
  if (recorder_)
    recorder_->record(obs::EventSeverity::kInfo, "service",
                      "snapshot_publish",
                      "version " + std::to_string(store_.version()),
                      model_now);
}

void QueryService::note_model_now(Seconds model_now) {
  double cur = model_now_.load(std::memory_order_relaxed);
  while (model_now > cur &&
         !model_now_.compare_exchange_weak(cur, model_now,
                                           std::memory_order_acq_rel)) {
  }
}

void QueryService::count_outcome(QueryStatus status) {
  status_counters_[static_cast<std::size_t>(status)].inc();
  switch (status) {
    case QueryStatus::kAnswered:
      answered_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kStale:
      stale_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kDegraded:
      degraded_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

void QueryService::count_tenant(int tenant, bool admitted) {
  auto& counters =
      admitted ? tenant_admitted_counters_ : tenant_shed_counters_;
  const std::size_t i = static_cast<std::size_t>(tenant);
  if (tenant >= 0 && i < counters.size()) counters[i].inc();
}

void QueryService::note_shed(bool shed) {
  // Edge-triggered: the recorder logs shed *episodes*, not every shed
  // query -- an overload burst is one event in, one event out.
  if (shedding_.exchange(shed, std::memory_order_relaxed) == shed) return;
  if (recorder_)
    recorder_->record(shed ? obs::EventSeverity::kWarn
                           : obs::EventSeverity::kInfo,
                      "service",
                      shed ? "shed_episode_begin" : "shed_episode_end",
                      shed ? "admission queue full; shedding"
                           : "admission recovered");
}

template <typename Response, typename Fn>
void QueryService::run_job(const std::shared_ptr<Pending<Response>>& state,
                           Fn& execute) {
  queue_depth_gauge_.add(-1.0);
  if (state->abandoned.load(std::memory_order_acquire)) {
    // The caller already returned kExpired; skip the work entirely.
    admission_.release(state->tenant);
    return;
  }
  Response r;
  if (Clock::now() >= state->deadline) {
    r.meta.status = QueryStatus::kExpired;
  } else {
    r = execute(state->enqueued);
  }
  const auto done = Clock::now();
  const std::uint64_t us = elapsed_us(state->enqueued, done);
  r.meta.latency = std::chrono::microseconds(us);
  latency_.observe(static_cast<double>(us) * 1e-6);
  if (obs::TimeSeries* ts =
          latency_series_[static_cast<std::size_t>(r.meta.status)])
    ts->append(model_now(), static_cast<double>(us) * 1e-3);
  deadline_slack_.observe(
      std::max(0.0, to_seconds(state->deadline - done)));
  admission_.release(state->tenant);
  if (aimd_ && aimd_->on_complete(std::chrono::microseconds(us), admission_))
    budget_gauge_.set(static_cast<double>(admission_.capacity()));
  state->promise.set_value(std::move(r));
}

template <typename Response, typename Fn, typename Brownout>
Response QueryService::submit(std::chrono::microseconds deadline_budget,
                              int tenant, Fn execute, Brownout brownout) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_.inc();
  const auto enqueued = Clock::now();
  const auto deadline = enqueued + deadline_budget;

  Response r;
  if (!admission_.try_acquire(tenant)) {
    count_tenant(tenant, false);
    if (shed_series_) shed_series_->append(model_now(), 1.0);
    note_shed(true);
    // Brownout rung: a cached answer with discounted accuracy beats a
    // shed -- but it is always labelled kDegraded, never fresh.
    if (std::optional<Response> cached = brownout()) {
      r = std::move(*cached);
      brownout_counter_.inc();
    } else {
      r.meta.status = QueryStatus::kOverloaded;
    }
    r.meta.latency =
        std::chrono::microseconds(elapsed_us(enqueued, Clock::now()));
    count_outcome(r.meta.status);
    return r;
  }
  count_tenant(tenant, true);
  if (shed_series_) shed_series_->append(model_now(), 0.0);
  note_shed(false);

  auto state = std::make_shared<Pending<Response>>();
  state->enqueued = enqueued;
  state->deadline = deadline;
  state->tenant = tenant;
  std::future<Response> fut = state->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) {
      admission_.release(tenant);
      r.meta.status = QueryStatus::kError;
      r.meta.error = "service stopped";
      count_outcome(r.meta.status);
      return r;
    }
    queue_.emplace_back(
        [this, state, execute = std::move(execute)]() mutable {
          run_job(state, execute);
        });
    queue_depth_gauge_.add(1.0);
  }
  queue_cv_.notify_one();

  if (fut.wait_until(deadline) == std::future_status::ready) {
    r = fut.get();
    count_outcome(r.meta.status);
    return r;
  }
  state->abandoned.store(true, std::memory_order_release);
  r.meta.status = QueryStatus::kExpired;
  r.meta.latency = std::chrono::microseconds(elapsed_us(enqueued, Clock::now()));
  count_outcome(r.meta.status);
  return r;
}

template <typename Response, typename Fn>
Response QueryService::answer(Seconds staleness_budget, bool trace,
                              std::chrono::steady_clock::time_point enqueued,
                              Fn&& query_fn) {
  Response r;
  // Epoch = submission, so the "admission" span (queue wait) lines up
  // with the worker-side spans in one tree.
  obs::TraceBuilder tb(enqueued);
  obs::TraceBuilder* tbp = trace ? &tb : nullptr;
  if (tbp) tb.add_complete("admission", 0, elapsed_us(enqueued, Clock::now()));

  SnapshotStore::Ptr snap;
  {
    obs::TraceBuilder::Scoped span(tbp, "snapshot_pickup");
    snap = store_.current();
  }
  if (!snap) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = "no snapshot published yet";
    if (tbp) r.meta.trace = tb.take();
    return r;
  }
  const Seconds now = model_now();
  const Seconds age = std::max(0.0, now - snap->taken_at);
  r.meta.snapshot_version = snap->version;
  r.meta.snapshot_age = age;
  snapshot_age_gauge_.set(age);
  if (staleness_series_) staleness_series_->append(now, age);
  // A fresh Modeler over the immutable snapshot: const queries, no
  // shared mutable state, nothing to lock.  The clock is pinned to the
  // model time observed at answer time, so accuracy keeps decaying
  // (PR 1) as the snapshot ages past its publication.  Metric handles
  // were pre-resolved at set_obs time; the trace builder (if any) is
  // owned by this one query.
  core::Modeler modeler(snap->model);
  modeler.set_clock([now] { return now; });
  modeler.set_obs(&modeler_obs_);
  modeler.set_trace(tbp);
  try {
    obs::TraceBuilder::Scoped span(tbp, "solve");
    query_fn(modeler, r);
    r.meta.status =
        age > staleness_budget ? QueryStatus::kStale : QueryStatus::kAnswered;
  } catch (const std::exception& e) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = e.what();
  } catch (...) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = "unknown error";
  }
  if (tbp) r.meta.trace = tb.take();
  return r;
}

template <typename Response>
std::optional<Response> QueryService::cache_fresh_hit(
    ResultCache<Response>* cache, const std::string& key,
    Seconds staleness_budget, int tenant) {
  (void)tenant;
  auto hit = cache->find(key);
  if (!hit || hit->version != store_.version()) return std::nullopt;
  Response r = std::move(hit->response);
  const Seconds age = std::max(0.0, model_now() - hit->taken_at);
  r.meta.status =
      age > staleness_budget ? QueryStatus::kStale : QueryStatus::kAnswered;
  r.meta.snapshot_version = hit->version;
  r.meta.snapshot_age = age;
  r.meta.from_cache = true;
  r.meta.error.clear();
  return r;
}

template <typename Response>
std::optional<Response> QueryService::cache_brownout(
    ResultCache<Response>* cache, const std::string& key) {
  if (!cache->enabled() || key.empty()) return std::nullopt;
  auto hit = cache->find(key);
  if (!hit) return std::nullopt;
  Response r = std::move(hit->response);
  const Seconds age = std::max(0.0, model_now() - hit->taken_at);
  const double factor = options_.brownout_halflife > 0
                            ? std::exp2(-age / options_.brownout_halflife)
                            : 1.0;
  discount_accuracy(r, factor);
  r.meta.status = QueryStatus::kDegraded;
  r.meta.snapshot_version = hit->version;
  r.meta.snapshot_age = age;
  r.meta.from_cache = true;
  r.meta.error.clear();
  return r;
}

template <typename Response>
void QueryService::cache_store(ResultCache<Response>* cache,
                               const std::string& key,
                               const Response& response) {
  // Only executed payload-bearing answers are cacheable; kDegraded came
  // *from* the cache, and errors/sheds carry no payload.
  if (!cache->enabled() || key.empty()) return;
  if (response.meta.status != QueryStatus::kAnswered &&
      response.meta.status != QueryStatus::kStale)
    return;
  SnapshotStore::Pin pin = store_.acquire(response.meta.snapshot_version);
  if (!pin) return;  // version already beyond the store's retention
  // Read through the pin before handing it to insert(): the by-value Pin
  // argument is move-constructed at an unspecified point relative to its
  // sibling arguments.
  const Seconds taken_at = pin->taken_at;
  cache->insert(key, response, response.meta.snapshot_version, taken_at,
                std::move(pin));
}

GraphResponse QueryService::get_graph(GraphQuery query) {
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  // Traced queries bypass the cache: the caller asked to watch this very
  // query execute, and a cached answer has no span tree to give.
  const std::string key = graph_cache_->enabled() && !query.trace
                              ? canonical_key(query)
                              : std::string{};
  if (!key.empty()) {
    if (auto hit = cache_fresh_hit(graph_cache_.get(), key, slo,
                                   query.tenant)) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      submitted_counter_.inc();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hit_counter_.inc();
      count_outcome(hit->meta.status);
      return std::move(*hit);
    }
  }
  return submit<GraphResponse>(
      budget, query.tenant,
      [this, q = std::move(query), slo, key](Clock::time_point enqueued) {
        GraphResponse r = answer<GraphResponse>(
            slo, q.trace, enqueued,
            [&q](const core::Modeler& m, GraphResponse& out) {
              core::GraphResult gr =
                  m.get_graph_result(q.nodes, q.timeframe, q.options);
              out.graph = std::move(gr.graph);
              out.graph_status = gr.status;
              out.unknown_nodes = std::move(gr.unknown_nodes);
              // A structurally invalid query is still a service-level
              // error; partial/unresolved topologies are answers.
              if (gr.status == obs::GraphStatus::kInvalid)
                throw InvalidArgument(gr.error);
            });
        cache_store(graph_cache_.get(), key, r);
        return r;
      },
      [this, key] { return cache_brownout(graph_cache_.get(), key); });
}

FlowInfoResponse QueryService::flow_info(FlowInfoQuery query) {
  // Traced queries keep the direct path: the span tree narrates THIS
  // query's solve, which a shared batch solve cannot attribute.
  if (options_.coalesce_window.count() > 0 && !query.trace)
    return flow_info_coalesced(std::move(query));
  return flow_info_direct(std::move(query));
}

FlowInfoResponse QueryService::flow_info_direct(FlowInfoQuery query) {
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  const std::string key = flow_cache_->enabled() && !query.trace
                              ? canonical_key(query)
                              : std::string{};
  if (!key.empty()) {
    if (auto hit = cache_fresh_hit(flow_cache_.get(), key, slo,
                                   query.tenant)) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      submitted_counter_.inc();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hit_counter_.inc();
      count_outcome(hit->meta.status);
      return std::move(*hit);
    }
  }
  return submit<FlowInfoResponse>(
      budget, query.tenant,
      [this, q = std::move(query), slo, key](Clock::time_point enqueued) {
        FlowInfoResponse r = answer<FlowInfoResponse>(
            slo, q.trace, enqueued,
            [&q](const core::Modeler& m, FlowInfoResponse& out) {
              out.result = m.flow_info(q.query);
            });
        cache_store(flow_cache_.get(), key, r);
        return r;
      },
      [this, key] { return cache_brownout(flow_cache_.get(), key); });
}

FlowInfoResponse QueryService::flow_info_coalesced(FlowInfoQuery query) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  submitted_counter_.inc();
  const auto enqueued = Clock::now();
  const auto deadline =
      enqueued + query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  const std::string key =
      flow_cache_->enabled() ? canonical_key(query) : std::string{};

  FlowInfoResponse r;
  if (!key.empty()) {
    if (auto hit =
            cache_fresh_hit(flow_cache_.get(), key, slo, query.tenant)) {
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hit_counter_.inc();
      count_outcome(hit->meta.status);
      return std::move(*hit);
    }
  }

  // Admission happens per query, BEFORE parking: every coalesced entry
  // holds its own tenant slot for the duration, so weighted fairness and
  // the shed/brownout ladder see exactly the load they would have seen
  // without the window.
  if (!admission_.try_acquire(query.tenant)) {
    count_tenant(query.tenant, false);
    if (shed_series_) shed_series_->append(model_now(), 1.0);
    note_shed(true);
    if (auto cached = cache_brownout(flow_cache_.get(), key)) {
      r = std::move(*cached);
      brownout_counter_.inc();
    } else {
      r.meta.status = QueryStatus::kOverloaded;
    }
    r.meta.latency =
        std::chrono::microseconds(elapsed_us(enqueued, Clock::now()));
    count_outcome(r.meta.status);
    return r;
  }
  count_tenant(query.tenant, true);
  if (shed_series_) shed_series_->append(model_now(), 0.0);
  note_shed(false);

  auto state = std::make_shared<Pending<FlowInfoResponse>>();
  state->enqueued = enqueued;
  state->deadline = deadline;
  state->tenant = query.tenant;
  std::future<FlowInfoResponse> fut = state->promise.get_future();

  bool open_window = false;
  {
    std::lock_guard<std::mutex> lk(coalesce_mutex_);
    if (!coalesce_scheduled_) {
      coalesce_scheduled_ = true;
      coalesce_first_ = enqueued;
      open_window = true;
    }
    coalesce_buf_.push_back(
        CoalesceEntry{std::move(query), slo, key, state});
    if (coalesce_buf_.size() >= options_.coalesce_max_batch)
      coalesce_cv_.notify_one();
  }
  if (open_window) {
    // The first parker enqueues ONE flush job for the whole window.
    bool stopped = false;
    {
      std::lock_guard<std::mutex> lk(mutex_);
      if (stopping_) {
        stopped = true;
      } else {
        queue_.emplace_back([this] { flush_coalesced(); });
        queue_depth_gauge_.add(1.0);
      }
    }
    if (stopped) {
      // No worker will ever flush; fail the buffered entries now.
      std::vector<CoalesceEntry> orphans;
      {
        std::lock_guard<std::mutex> lk(coalesce_mutex_);
        orphans.swap(coalesce_buf_);
        coalesce_scheduled_ = false;
      }
      for (CoalesceEntry& e : orphans) {
        admission_.release(e.state->tenant);
        FlowInfoResponse dead;
        dead.meta.status = QueryStatus::kError;
        dead.meta.error = "service stopped";
        e.state->promise.set_value(std::move(dead));
      }
    } else {
      queue_cv_.notify_one();
    }
  }

  if (fut.wait_until(deadline) == std::future_status::ready) {
    r = fut.get();
    count_outcome(r.meta.status);
    return r;
  }
  state->abandoned.store(true, std::memory_order_release);
  r.meta.status = QueryStatus::kExpired;
  r.meta.latency =
      std::chrono::microseconds(elapsed_us(enqueued, Clock::now()));
  count_outcome(r.meta.status);
  return r;
}

void QueryService::flush_coalesced() {
  std::vector<CoalesceEntry> bundle;
  {
    std::unique_lock<std::mutex> lk(coalesce_mutex_);
    // Hold the window open from the FIRST arrival, flushing early once
    // the bundle is full.  Later arrivals keep joining until the swap.
    coalesce_cv_.wait_until(lk, coalesce_first_ + options_.coalesce_window,
                            [this] {
                              return coalesce_buf_.size() >=
                                     options_.coalesce_max_batch;
                            });
    bundle.swap(coalesce_buf_);
    coalesce_scheduled_ = false;
  }
  queue_depth_gauge_.add(-1.0);
  if (bundle.empty()) return;

  // Per-entry completion, mirroring run_job's bookkeeping: latency and
  // slack histograms, admission release, AIMD feedback, promise.
  auto finish = [this](CoalesceEntry& e, FlowInfoResponse&& resp) {
    const auto done = Clock::now();
    const std::uint64_t us = elapsed_us(e.state->enqueued, done);
    resp.meta.latency = std::chrono::microseconds(us);
    latency_.observe(static_cast<double>(us) * 1e-6);
    if (obs::TimeSeries* ts =
            latency_series_[static_cast<std::size_t>(resp.meta.status)])
      ts->append(model_now(), static_cast<double>(us) * 1e-3);
    deadline_slack_.observe(
        std::max(0.0, to_seconds(e.state->deadline - done)));
    admission_.release(e.state->tenant);
    if (aimd_ &&
        aimd_->on_complete(std::chrono::microseconds(us), admission_))
      budget_gauge_.set(static_cast<double>(admission_.capacity()));
    e.state->promise.set_value(std::move(resp));
  };

  // Per-query deadlines survive the window: entries whose caller already
  // gave up (or whose deadline passed while parked) never reach the
  // solve -- exactly the treatment run_job gives a lone query.
  const auto now0 = Clock::now();
  std::vector<CoalesceEntry> live;
  live.reserve(bundle.size());
  for (CoalesceEntry& e : bundle) {
    if (e.state->abandoned.load(std::memory_order_acquire)) {
      admission_.release(e.state->tenant);
      continue;
    }
    if (now0 >= e.state->deadline) {
      FlowInfoResponse expired;
      expired.meta.status = QueryStatus::kExpired;
      finish(e, std::move(expired));
      continue;
    }
    live.push_back(std::move(e));
  }
  if (live.empty()) return;

  // ONE snapshot, ONE modeler, ONE independent-mode batch solve for the
  // whole bundle: answers are bit-for-bit what each lone call would have
  // produced against this same snapshot.
  SnapshotStore::Ptr snap = store_.current();
  if (!snap) {
    for (CoalesceEntry& e : live) {
      FlowInfoResponse none;
      none.meta.status = QueryStatus::kError;
      none.meta.error = "no snapshot published yet";
      finish(e, std::move(none));
    }
    return;
  }
  const Seconds now = model_now();
  const Seconds age = std::max(0.0, now - snap->taken_at);
  snapshot_age_gauge_.set(age);
  if (staleness_series_) staleness_series_->append(now, age);

  core::Modeler modeler(snap->model);
  modeler.set_clock([now] { return now; });
  modeler.set_obs(&modeler_obs_);

  core::FlowBatchQuery batch;
  batch.mode = core::FlowBatchQuery::Mode::kIndependent;
  batch.queries.reserve(live.size());
  for (const CoalesceEntry& e : live) batch.queries.push_back(e.query.query);

  core::FlowBatchResult solved;
  std::string batch_error;
  try {
    solved = modeler.flow_info_batch(batch);
  } catch (const std::exception& ex) {
    batch_error = ex.what();
  } catch (...) {
    batch_error = "unknown error";
  }
  coalesced_batches_.fetch_add(1, std::memory_order_relaxed);
  coalesced_queries_.fetch_add(live.size(), std::memory_order_relaxed);

  for (std::size_t i = 0; i < live.size(); ++i) {
    CoalesceEntry& e = live[i];
    FlowInfoResponse resp;
    resp.meta.snapshot_version = snap->version;
    resp.meta.snapshot_age = age;
    if (!batch_error.empty()) {
      resp.meta.status = QueryStatus::kError;
      resp.meta.error = batch_error;
    } else if (!solved.errors[i].empty()) {
      resp.meta.status = QueryStatus::kError;
      resp.meta.error = solved.errors[i];
    } else {
      resp.result = std::move(solved.results[i]);
      resp.meta.status = age > e.slo ? QueryStatus::kStale
                                     : QueryStatus::kAnswered;
      cache_store(flow_cache_.get(), e.cache_key, resp);
    }
    finish(e, std::move(resp));
  }
}

FlowBatchResponse QueryService::flow_info_batch(FlowBatchInfoQuery query) {
  batch_queries_.fetch_add(1, std::memory_order_relaxed);
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  const std::string key = batch_cache_->enabled() && !query.trace
                              ? canonical_key(query)
                              : std::string{};
  if (!key.empty()) {
    if (auto hit =
            cache_fresh_hit(batch_cache_.get(), key, slo, query.tenant)) {
      submitted_.fetch_add(1, std::memory_order_relaxed);
      submitted_counter_.inc();
      cache_hits_.fetch_add(1, std::memory_order_relaxed);
      cache_hit_counter_.inc();
      count_outcome(hit->meta.status);
      return std::move(*hit);
    }
  }
  // The whole batch is ONE admission unit: one tenant slot, one queue
  // entry, one solve -- that is the amortization the batch API sells.
  return submit<FlowBatchResponse>(
      budget, query.tenant,
      [this, q = std::move(query), slo, key](Clock::time_point enqueued) {
        FlowBatchResponse r = answer<FlowBatchResponse>(
            slo, q.trace, enqueued,
            [&q](const core::Modeler& m, FlowBatchResponse& out) {
              core::FlowBatchResult br = m.flow_info_batch(q.batch);
              out.results = std::move(br.results);
              out.errors = std::move(br.errors);
            });
        cache_store(batch_cache_.get(), key, r);
        // Independent-mode sub-answers are exactly what the lone query
        // would have produced, so warm the single-query fingerprints too:
        // a later flow_info for any sub-query is an O(1) fresh hit.
        if (r.meta.ok() && !q.trace &&
            q.batch.mode == core::FlowBatchQuery::Mode::kIndependent &&
            flow_cache_->enabled()) {
          for (std::size_t i = 0; i < q.batch.queries.size(); ++i) {
            if (!r.errors[i].empty()) continue;
            FlowInfoQuery single;
            single.query = q.batch.queries[i];
            FlowInfoResponse sr;
            sr.meta = r.meta;
            sr.meta.trace = obs::SpanTree{};
            sr.result = r.results[i];
            cache_store(flow_cache_.get(), canonical_key(single), sr);
          }
        }
        return r;
      },
      [this, key] { return cache_brownout(batch_cache_.get(), key); });
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.answered = answered_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.degraded = degraded_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.polls = polls_.load(std::memory_order_relaxed);
  s.snapshot_version = store_.version();
  s.cache_hits = cache_hits_.load(std::memory_order_relaxed);
  s.batch_queries = batch_queries_.load(std::memory_order_relaxed);
  s.coalesced_batches = coalesced_batches_.load(std::memory_order_relaxed);
  s.coalesced_queries = coalesced_queries_.load(std::memory_order_relaxed);
  s.admission_budget = admission_.capacity();
  s.in_flight_high_water = admission_.high_water();
  s.p50_us = static_cast<std::uint64_t>(latency_.quantile(0.50) * 1e6);
  s.p99_us = static_cast<std::uint64_t>(latency_.quantile(0.99) * 1e6);
  return s;
}

void QueryService::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void QueryService::poller_loop(std::function<void()> poll_step) {
  while (true) {
    poll_step();
    polls_.fetch_add(1, std::memory_order_relaxed);
    polls_counter_.inc();
    std::unique_lock<std::mutex> lk(mutex_);
    if (stop_cv_.wait_for(lk, options_.poll_interval,
                          [this] { return stopping_; }))
      return;
  }
}

}  // namespace remos::service
