#include "service/query_service.hpp"

#include <algorithm>
#include <bit>
#include <utility>

#include "util/error.hpp"

namespace remos::service {

namespace {

using Clock = std::chrono::steady_clock;

std::uint64_t elapsed_us(Clock::time_point from, Clock::time_point to) {
  const auto us =
      std::chrono::duration_cast<std::chrono::microseconds>(to - from)
          .count();
  return us > 0 ? static_cast<std::uint64_t>(us) : 0;
}

}  // namespace

const char* to_string(QueryStatus status) {
  switch (status) {
    case QueryStatus::kAnswered: return "answered";
    case QueryStatus::kStale: return "stale";
    case QueryStatus::kOverloaded: return "overloaded";
    case QueryStatus::kExpired: return "expired";
    case QueryStatus::kError: return "error";
  }
  return "?";
}

void LatencyHistogram::record(std::uint64_t us) {
  const std::size_t b =
      std::min<std::size_t>(std::bit_width(us), kBuckets - 1);
  buckets_[b].fetch_add(1, std::memory_order_relaxed);
}

std::uint64_t LatencyHistogram::count() const {
  std::uint64_t n = 0;
  for (const auto& b : buckets_) n += b.load(std::memory_order_relaxed);
  return n;
}

std::uint64_t LatencyHistogram::quantile_us(double q) const {
  const std::uint64_t n = count();
  if (n == 0) return 0;
  const double target = q * static_cast<double>(n);
  std::uint64_t seen = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    seen += buckets_[i].load(std::memory_order_relaxed);
    if (static_cast<double>(seen) >= target)
      return i == 0 ? 0 : (std::uint64_t{1} << i) - 1;
  }
  return std::uint64_t{1} << (kBuckets - 1);
}

QueryService::QueryService(Options options)
    : options_(options),
      admission_({options.queue_capacity}) {
  if (options_.workers == 0)
    throw InvalidArgument("QueryService: zero workers");
  if (options_.default_deadline.count() <= 0)
    throw InvalidArgument("QueryService: non-positive default deadline");
  if (options_.staleness_slo < 0)
    throw InvalidArgument("QueryService: negative staleness SLO");
  if (options_.poll_interval.count() <= 0)
    throw InvalidArgument("QueryService: non-positive poll interval");
}

QueryService::~QueryService() { stop(); }

void QueryService::start() { start(std::function<void()>{}); }

void QueryService::start(std::function<void()> poll_step) {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (started_) throw Error("QueryService: already started");
    started_ = true;
    stopping_ = false;
  }
  workers_.reserve(options_.workers);
  for (std::size_t i = 0; i < options_.workers; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  if (poll_step)
    poller_ = std::thread(
        [this, step = std::move(poll_step)] { poller_loop(step); });
}

void QueryService::stop() {
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!started_) return;
    stopping_ = true;
  }
  queue_cv_.notify_all();
  stop_cv_.notify_all();
  if (poller_.joinable()) poller_.join();
  for (std::thread& w : workers_)
    if (w.joinable()) w.join();
  workers_.clear();
  // Jobs still queued complete inline; their clients (if any are still
  // waiting) get real answers, and abandoned ones are skipped.
  std::deque<std::function<void()>> rest;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    rest.swap(queue_);
    started_ = false;
  }
  for (auto& job : rest) job();
}

void QueryService::publish(collector::NetworkModel model, Seconds model_now) {
  store_.publish(std::move(model), model_now);
  note_model_now(model_now);
}

void QueryService::note_model_now(Seconds model_now) {
  double cur = model_now_.load(std::memory_order_relaxed);
  while (model_now > cur &&
         !model_now_.compare_exchange_weak(cur, model_now,
                                           std::memory_order_acq_rel)) {
  }
}

void QueryService::count_outcome(QueryStatus status) {
  switch (status) {
    case QueryStatus::kAnswered:
      answered_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kStale:
      stale_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kOverloaded:
      shed_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kExpired:
      expired_.fetch_add(1, std::memory_order_relaxed);
      break;
    case QueryStatus::kError:
      errors_.fetch_add(1, std::memory_order_relaxed);
      break;
  }
}

template <typename Response, typename Fn>
void QueryService::run_job(const std::shared_ptr<Pending<Response>>& state,
                           Fn& execute) {
  if (state->abandoned.load(std::memory_order_acquire)) {
    // The caller already returned kExpired; skip the work entirely.
    admission_.release();
    return;
  }
  Response r;
  if (Clock::now() >= state->deadline) {
    r.meta.status = QueryStatus::kExpired;
  } else {
    r = execute();
  }
  const std::uint64_t us = elapsed_us(state->enqueued, Clock::now());
  r.meta.latency = std::chrono::microseconds(us);
  latency_.record(us);
  admission_.release();
  state->promise.set_value(std::move(r));
}

template <typename Response, typename Fn>
Response QueryService::submit(std::chrono::microseconds deadline_budget,
                              Fn execute) {
  submitted_.fetch_add(1, std::memory_order_relaxed);
  const auto enqueued = Clock::now();
  const auto deadline = enqueued + deadline_budget;

  Response r;
  if (!admission_.try_acquire()) {
    r.meta.status = QueryStatus::kOverloaded;
    count_outcome(r.meta.status);
    return r;
  }

  auto state = std::make_shared<Pending<Response>>();
  state->enqueued = enqueued;
  state->deadline = deadline;
  std::future<Response> fut = state->promise.get_future();
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (stopping_) {
      admission_.release();
      r.meta.status = QueryStatus::kError;
      r.meta.error = "service stopped";
      count_outcome(r.meta.status);
      return r;
    }
    queue_.emplace_back(
        [this, state, execute = std::move(execute)]() mutable {
          run_job(state, execute);
        });
  }
  queue_cv_.notify_one();

  if (fut.wait_until(deadline) == std::future_status::ready) {
    r = fut.get();
    count_outcome(r.meta.status);
    return r;
  }
  state->abandoned.store(true, std::memory_order_release);
  r.meta.status = QueryStatus::kExpired;
  r.meta.latency = std::chrono::microseconds(elapsed_us(enqueued, Clock::now()));
  count_outcome(r.meta.status);
  return r;
}

template <typename Response, typename Fn>
Response QueryService::answer(Seconds staleness_budget, Fn&& query_fn) {
  Response r;
  const SnapshotStore::Ptr snap = store_.current();
  if (!snap) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = "no snapshot published yet";
    return r;
  }
  const Seconds now = model_now();
  const Seconds age = std::max(0.0, now - snap->taken_at);
  r.meta.snapshot_version = snap->version;
  r.meta.snapshot_age = age;
  // A fresh Modeler over the immutable snapshot: const queries, no
  // shared mutable state, nothing to lock.  The clock is pinned to the
  // model time observed at answer time, so accuracy keeps decaying
  // (PR 1) as the snapshot ages past its publication.
  core::Modeler modeler(snap->model);
  modeler.set_clock([now] { return now; });
  try {
    query_fn(modeler, r);
    r.meta.status =
        age > staleness_budget ? QueryStatus::kStale : QueryStatus::kAnswered;
  } catch (const std::exception& e) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = e.what();
  } catch (...) {
    r.meta.status = QueryStatus::kError;
    r.meta.error = "unknown error";
  }
  return r;
}

GraphResponse QueryService::get_graph(GraphQuery query) {
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  return submit<GraphResponse>(
      budget, [this, q = std::move(query), slo]() {
        return answer<GraphResponse>(
            slo, [&q](const core::Modeler& m, GraphResponse& r) {
              r.graph = m.get_graph(q.nodes, q.timeframe, q.options);
            });
      });
}

FlowInfoResponse QueryService::flow_info(FlowInfoQuery query) {
  const auto budget = query.deadline.value_or(options_.default_deadline);
  const Seconds slo = query.max_staleness.value_or(options_.staleness_slo);
  return submit<FlowInfoResponse>(
      budget, [this, q = std::move(query), slo]() {
        return answer<FlowInfoResponse>(
            slo, [&q](const core::Modeler& m, FlowInfoResponse& r) {
              r.result = m.flow_info(q.query);
            });
      });
}

ServiceStats QueryService::stats() const {
  ServiceStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.answered = answered_.load(std::memory_order_relaxed);
  s.stale = stale_.load(std::memory_order_relaxed);
  s.shed = shed_.load(std::memory_order_relaxed);
  s.expired = expired_.load(std::memory_order_relaxed);
  s.errors = errors_.load(std::memory_order_relaxed);
  s.polls = polls_.load(std::memory_order_relaxed);
  s.snapshot_version = store_.version();
  s.in_flight_high_water = admission_.high_water();
  s.p50_us = latency_.quantile_us(0.50);
  s.p99_us = latency_.quantile_us(0.99);
  return s;
}

void QueryService::worker_loop() {
  while (true) {
    std::function<void()> job;
    {
      std::unique_lock<std::mutex> lk(mutex_);
      queue_cv_.wait(lk, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping and drained
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    job();
  }
}

void QueryService::poller_loop(std::function<void()> poll_step) {
  while (true) {
    poll_step();
    polls_.fetch_add(1, std::memory_order_relaxed);
    std::unique_lock<std::mutex> lk(mutex_);
    if (stop_cv_.wait_for(lk, options_.poll_interval,
                          [this] { return stopping_; }))
      return;
  }
}

}  // namespace remos::service
