// Concurrent Remos query service (the serving layer in front of the
// Modeler).
//
// The paper positions the Modeler as a long-lived session many
// network-aware applications query concurrently (§3, §5), but the Modeler
// itself is a single-threaded library: a query issued mid-poll would
// observe torn collector state.  The QueryService is the serving skeleton
// that makes concurrent use safe and bounded:
//
//   poller thread ──> publishes immutable versioned ModelSnapshots
//                     (SnapshotStore: pointer swap under a tiny spinlock)
//   client threads ─> admission control (bounded in-flight count)
//                     ──> work queue ──> worker pool answers against the
//                     snapshot current at execution time
//
// Serving guarantees:
//   - No contended locking on the answer hot path: a worker picks up the
//     current snapshot (a refcount bump under the store's spinlock) and
//     runs const Modeler queries against that immutable copy.
//   - Every query carries a wall-clock deadline.  The caller always gets
//     a structured response by its deadline -- kAnswered, kStale,
//     kOverloaded, kExpired or kError; never a hang, and never an
//     exception across the API boundary.
//   - Staleness SLO: if the freshest snapshot is older (on the model
//     clock) than the query's staleness budget, the answer is served
//     anyway -- with PR 1's decayed accuracy, since the snapshot clock
//     keeps advancing -- and flagged kStale instead of kAnswered.
//   - Overload shedding: when the bounded queue is full, excess queries
//     are shed immediately with kOverloaded, so admitted-query latency
//     stays bounded by queue depth x per-query cost at any offered load.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/flows.hpp"
#include "core/graph.hpp"
#include "core/logical.hpp"
#include "core/modeler.hpp"
#include "obs/obs.hpp"
#include "service/endpoint.hpp"
#include "service/snapshot_store.hpp"
#include "service/tenant_admission.hpp"

namespace remos::service {

template <typename Response>
class ResultCache;  // service/result_cache.hpp

// The query/response vocabulary (QueryStatus, GraphQuery, FlowInfoQuery,
// FlowBatchInfoQuery, ResponseMeta, GraphResponse, FlowInfoResponse,
// FlowBatchResponse) and the FlowInfoEndpoint interface live in
// service/endpoint.hpp, shared by every callable surface.

/// Monitoring snapshot.  submitted == answered + stale + degraded + shed
/// + expired + errors once the service is idle (counts are client-visible
/// outcomes).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t stale = 0;
  /// Brownout answers: served from the cache with kDegraded instead of
  /// being shed.
  std::uint64_t degraded = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t polls = 0;
  std::uint64_t snapshot_version = 0;
  /// Fresh result-cache hits (exact current-version match; answered
  /// without consuming an admission slot or a worker).
  std::uint64_t cache_hits = 0;
  /// Explicit flow_info_batch calls answered (each counted once however
  /// many sub-queries it carried).
  std::uint64_t batch_queries = 0;
  /// Coalesced solves flushed, and single flow_info calls folded into
  /// them.  coalesced_queries / coalesced_batches is the achieved mean
  /// batch size of the micro-batching window.
  std::uint64_t coalesced_batches = 0;
  std::uint64_t coalesced_queries = 0;
  /// Current global admission budget (queue_capacity unless the AIMD
  /// controller has moved it).
  std::size_t admission_budget = 0;
  std::size_t in_flight_high_water = 0;
  /// Service-side completion latency quantiles (executed queries only),
  /// conservative bucket upper bounds.  Sourced from the wired metrics
  /// registry, so they read 0 until set_obs is called.
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

class QueryService : public FlowInfoEndpoint {
 public:
  struct Options {
    /// Worker threads answering queries.
    std::size_t workers = 4;
    /// Admission bound: queries in flight (queued + executing) beyond
    /// this are shed with kOverloaded.  With `adaptive`, this is only the
    /// starting budget.
    std::size_t queue_capacity = 64;
    /// Fraction of the budget reserved as weighted per-tenant slices;
    /// the rest is a shared pool (see TenantAdmission::Options).
    double reserved_fraction = 0.75;
    /// Upper bound on register_tenant calls.
    std::size_t max_tenants = 64;
    /// Deadline for queries that do not carry their own.
    std::chrono::microseconds default_deadline{100'000};
    /// Staleness SLO for queries that do not carry their own: answers
    /// from snapshots older than this (model clock) are flagged kStale.
    Seconds staleness_slo = 10.0;
    /// Wall-clock pacing between background poll steps.
    std::chrono::microseconds poll_interval{2'000};
    /// AIMD concurrency control: let the observed completion p99 resize
    /// the admission budget between aimd.min_budget and aimd.max_budget.
    /// Off by default (fixed queue_capacity, the pre-PR-7 behaviour).
    bool adaptive = false;
    AimdController::Options aimd;
    /// Result-cache fingerprints retained per response type; 0 disables
    /// caching and brownout entirely (default: existing callers see the
    /// exact pre-cache service).
    std::size_t cache_capacity = 0;
    /// Brownout accuracy half-life: a cached answer served under
    /// overload is discounted by 2^(-age / halflife) (model-clock age of
    /// its snapshot).  0 serves brownout answers undiscounted.
    Seconds brownout_halflife = 30.0;
    /// Micro-batching window for single flow_info calls: an admitted
    /// query waits up to this long for concurrently arriving queries,
    /// then the whole bundle is answered as one independent-mode batch
    /// solve against ONE snapshot.  Per-query deadlines, tenant slots and
    /// cache fingerprints are preserved; traced queries bypass the
    /// window.  0 disables coalescing (the exact pre-batch service).
    std::chrono::microseconds coalesce_window{0};
    /// The window flushes early once this many queries are buffered.
    std::size_t coalesce_max_batch = 32;
  };

  explicit QueryService(Options options);
  QueryService() : QueryService(Options{}) {}
  ~QueryService() override;

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Wires metrics and flight-recorder events: per-status query
  /// counters, queue depth, latency and deadline-slack histograms,
  /// snapshot gauges, and shed-episode / publish events.  Call before
  /// start(); handles are resolved once and the hot path stays
  /// lock-free.  Without it every sink is a no-op.
  void set_obs(const obs::Obs& o);

  /// Starts the worker pool.  With `poll_step`, also starts a background
  /// poller thread that invokes it every poll_interval until stop() --
  /// the step typically drives CollectorSet::poll_all / the simulator one
  /// period and publishes a fresh snapshot (see CmuHarness::serve).
  void start();
  void start(std::function<void()> poll_step);
  void stop();

  /// Publishes an immutable snapshot; callable from the poll step (via
  /// collector hooks) or directly from tests.
  void publish(collector::NetworkModel model, Seconds model_now);

  /// Advances the service's model clock without publishing (a poll round
  /// that yielded nothing new still ages the snapshots).
  void note_model_now(Seconds model_now);
  Seconds model_now() const {
    return model_now_.load(std::memory_order_acquire);
  }

  /// Registers a tenant for weighted fair admission and returns its id
  /// (stamp it on queries / hand it to a RemosClient).  Register tenants
  /// before set_obs so their metric handles resolve.
  int register_tenant(const std::string& name, double weight);

  /// Synchronous query entry points (FlowInfoEndpoint), callable from
  /// any thread.  Always return by the query's deadline; never throw.
  GraphResponse get_graph(GraphQuery query) override;
  /// With Options::coalesce_window set, untraced flow_info calls are
  /// buffered briefly and answered as one shared batch solve; the
  /// response is indistinguishable from a lone call against the same
  /// snapshot (independent-mode semantics are bit-for-bit).
  FlowInfoResponse flow_info(FlowInfoQuery query) override;
  /// Explicit batch: one admission slot, one snapshot, one solve for the
  /// whole batch.  Independent-mode sub-results additionally warm the
  /// single-query result cache under their own fingerprints.
  FlowBatchResponse flow_info_batch(FlowBatchInfoQuery query) override;

  const SnapshotStore& snapshots() const { return store_; }
  const TenantAdmission& admission() const { return admission_; }
  /// Mutable admission surface: an external controller may resize the
  /// budget; tests pre-occupy slots to drive the shed/brownout path
  /// deterministically.  Slots acquired here must be released here.
  TenantAdmission& admission() { return admission_; }
  const AimdController* aimd() const { return aimd_.get(); }
  const ResultCache<GraphResponse>* graph_cache() const {
    return graph_cache_.get();
  }
  const ResultCache<FlowInfoResponse>* flow_cache() const {
    return flow_cache_.get();
  }
  const ResultCache<FlowBatchResponse>* batch_cache() const {
    return batch_cache_.get();
  }
  const Options& options() const { return options_; }
  ServiceStats stats() const;

 private:
  template <typename Response>
  struct Pending {
    std::promise<Response> promise;
    std::atomic<bool> abandoned{false};
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
    int tenant = TenantAdmission::kDefaultTenant;
  };

  /// `brownout` is invoked when admission sheds the query; returning a
  /// response (the cached-degraded rung of the ladder) replaces the
  /// kOverloaded outcome.
  template <typename Response, typename Fn, typename Brownout>
  Response submit(std::chrono::microseconds deadline_budget, int tenant,
                  Fn execute, Brownout brownout);
  template <typename Response, typename Fn>
  void run_job(const std::shared_ptr<Pending<Response>>& state, Fn& execute);
  template <typename Response, typename Fn>
  Response answer(Seconds staleness_budget, bool trace,
                  std::chrono::steady_clock::time_point enqueued,
                  Fn&& query_fn);
  /// Fresh-hit fast path: serves `key` from `cache` iff the cached
  /// version matches the store's current version.  O(1): no admission
  /// slot, no worker, no Modeler.
  template <typename Response>
  std::optional<Response> cache_fresh_hit(ResultCache<Response>* cache,
                                          const std::string& key,
                                          Seconds staleness_budget,
                                          int tenant);
  /// Brownout rung: any-version cached answer, accuracy discounted by
  /// snapshot age, status kDegraded.  nullopt when the cache has nothing.
  template <typename Response>
  std::optional<Response> cache_brownout(ResultCache<Response>* cache,
                                         const std::string& key);
  /// Inserts an executed answer into the cache, pinning its snapshot.
  template <typename Response>
  void cache_store(ResultCache<Response>* cache, const std::string& key,
                   const Response& response);
  void count_outcome(QueryStatus status);
  void count_tenant(int tenant, bool admitted);
  void note_shed(bool shed);

  /// One single flow_info call parked in the micro-batching window.  The
  /// entry already holds its tenant's admission slot; the flush job
  /// answers (or expires) it and releases the slot, exactly as run_job
  /// would have for a lone query.
  struct CoalesceEntry {
    FlowInfoQuery query;
    Seconds slo = 0;
    std::string cache_key;  // empty when caching is off or query traced
    std::shared_ptr<Pending<FlowInfoResponse>> state;
  };

  /// The pre-coalescing flow_info path (admission -> queue -> worker).
  FlowInfoResponse flow_info_direct(FlowInfoQuery query);
  /// Parks the query in the window; the first parker enqueues one flush
  /// job that answers the whole bundle with a single batch solve.
  FlowInfoResponse flow_info_coalesced(FlowInfoQuery query);
  /// Worker-side flush: waits out the window, swaps the buffer, answers
  /// every live entry from one snapshot via Modeler::flow_info_batch.
  void flush_coalesced();

  void worker_loop();
  void poller_loop(std::function<void()> poll_step);

  Options options_;
  SnapshotStore store_;
  TenantAdmission admission_;
  std::unique_ptr<AimdController> aimd_;
  std::unique_ptr<ResultCache<GraphResponse>> graph_cache_;
  std::unique_ptr<ResultCache<FlowInfoResponse>> flow_cache_;
  std::unique_ptr<ResultCache<FlowBatchResponse>> batch_cache_;
  std::atomic<double> model_now_{0.0};

  // Micro-batching window (Options::coalesce_window > 0 only).
  std::mutex coalesce_mutex_;  // guards the three fields below
  std::condition_variable coalesce_cv_;  // wakes the flush at max_batch
  std::vector<CoalesceEntry> coalesce_buf_;
  bool coalesce_scheduled_ = false;  // a flush job owns the open window
  std::chrono::steady_clock::time_point coalesce_first_{};

  std::mutex mutex_;  // guards queue_, stopping_, started_
  std::condition_variable queue_cv_;
  std::condition_variable stop_cv_;  // wakes the poller's pacing sleep
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> workers_;
  std::thread poller_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> degraded_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> polls_{0};
  std::atomic<std::uint64_t> cache_hits_{0};
  std::atomic<std::uint64_t> batch_queries_{0};
  std::atomic<std::uint64_t> coalesced_batches_{0};
  std::atomic<std::uint64_t> coalesced_queries_{0};

  // Observability (no-op sinks until set_obs).
  obs::FlightRecorder* recorder_ = nullptr;
  core::ModelerObs modeler_obs_;
  std::array<obs::Counter, obs::kQueryStatusCount> status_counters_;
  obs::Counter submitted_counter_;
  obs::Counter polls_counter_;
  obs::Gauge queue_depth_gauge_;
  obs::Gauge snapshot_version_gauge_;
  obs::Gauge snapshot_age_gauge_;
  obs::Histogram latency_;        // seconds, submission -> response
  obs::Histogram deadline_slack_; // seconds left when the answer landed
  obs::Counter cache_hit_counter_;
  obs::Counter brownout_counter_;
  obs::Gauge budget_gauge_;
  /// Per-tenant admitted/shed counters, indexed by tenant id; resolved at
  /// set_obs time for tenants registered by then (register first).
  std::vector<obs::Counter> tenant_admitted_counters_;
  std::vector<obs::Counter> tenant_shed_counters_;
  std::atomic<bool> shedding_{false};  // edge detector for episode events

  // History series (telemetry plane; null until set_obs with a store):
  // per-status latency in ms, shed 0/1 per submit, snapshot staleness at
  // answer time.  Stamped on the model clock so they line up with the
  // simulator's and collector's link series.
  std::array<obs::TimeSeries*, obs::kQueryStatusCount> latency_series_{};
  obs::TimeSeries* shed_series_ = nullptr;
  obs::TimeSeries* staleness_series_ = nullptr;
};

}  // namespace remos::service
