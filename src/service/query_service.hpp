// Concurrent Remos query service (the serving layer in front of the
// Modeler).
//
// The paper positions the Modeler as a long-lived session many
// network-aware applications query concurrently (§3, §5), but the Modeler
// itself is a single-threaded library: a query issued mid-poll would
// observe torn collector state.  The QueryService is the serving skeleton
// that makes concurrent use safe and bounded:
//
//   poller thread ──> publishes immutable versioned ModelSnapshots
//                     (SnapshotStore: pointer swap under a tiny spinlock)
//   client threads ─> admission control (bounded in-flight count)
//                     ──> work queue ──> worker pool answers against the
//                     snapshot current at execution time
//
// Serving guarantees:
//   - No contended locking on the answer hot path: a worker picks up the
//     current snapshot (a refcount bump under the store's spinlock) and
//     runs const Modeler queries against that immutable copy.
//   - Every query carries a wall-clock deadline.  The caller always gets
//     a structured response by its deadline -- kAnswered, kStale,
//     kOverloaded, kExpired or kError; never a hang, and never an
//     exception across the API boundary.
//   - Staleness SLO: if the freshest snapshot is older (on the model
//     clock) than the query's staleness budget, the answer is served
//     anyway -- with PR 1's decayed accuracy, since the snapshot clock
//     keeps advancing -- and flagged kStale instead of kAnswered.
//   - Overload shedding: when the bounded queue is full, excess queries
//     are shed immediately with kOverloaded, so admitted-query latency
//     stays bounded by queue depth x per-query cost at any offered load.
#pragma once

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/flows.hpp"
#include "core/graph.hpp"
#include "core/logical.hpp"
#include "core/modeler.hpp"
#include "obs/obs.hpp"
#include "service/admission.hpp"
#include "service/snapshot_store.hpp"

namespace remos::service {

/// Outcome of one query, as seen by the caller (shared vocabulary; see
/// obs/status.hpp):
///   kAnswered    served from a snapshot within the staleness budget
///   kStale       served, but the freshest snapshot exceeded the budget
///   kOverloaded  shed at admission: the bounded queue was full
///   kExpired     the deadline passed before a worker could answer
///   kError       malformed query (structured; the service stays up)
using QueryStatus = obs::QueryStatus;

inline const char* to_string(QueryStatus status) {
  return obs::to_string(status);
}

struct GraphQuery {
  std::vector<std::string> nodes;
  core::Timeframe timeframe = core::Timeframe::current();
  core::LogicalOptions options;
  /// Wall-clock answer budget; service default when unset.
  std::optional<std::chrono::microseconds> deadline;
  /// Model-clock staleness budget; service SLO when unset.
  std::optional<Seconds> max_staleness;
  /// Collect a per-query span tree into ResponseMeta::trace (admission,
  /// snapshot pickup, route resolution, solve, ...).
  bool trace = false;
};

struct FlowInfoQuery {
  core::FlowQuery query;
  std::optional<std::chrono::microseconds> deadline;
  std::optional<Seconds> max_staleness;
  /// Collect a per-query span tree into ResponseMeta::trace.
  bool trace = false;
};

struct ResponseMeta {
  QueryStatus status = QueryStatus::kError;
  /// Version of the snapshot that answered (0 when none was consulted).
  std::uint64_t snapshot_version = 0;
  /// Age of that snapshot on the model clock at answer time.
  Seconds snapshot_age = 0;
  /// Wall-clock time from submission to response.
  std::chrono::microseconds latency{0};
  std::string error;
  /// Span tree for this query; non-empty only when the query asked for
  /// tracing and reached a worker.
  obs::SpanTree trace;

  /// True when a payload was produced (kAnswered or kStale).
  bool ok() const {
    return status == QueryStatus::kAnswered || status == QueryStatus::kStale;
  }
};

struct GraphResponse {
  ResponseMeta meta;
  core::NetworkGraph graph;  // valid when meta.ok()
  /// Structured topology outcome (core::GraphResult): a query naming
  /// unknown nodes is still kAnswered/kStale at the service level, with
  /// graph_status kPartial/kUnresolved and the names listed here.
  obs::GraphStatus graph_status = obs::GraphStatus::kOk;
  std::vector<std::string> unknown_nodes;
};

struct FlowInfoResponse {
  ResponseMeta meta;
  core::FlowQueryResult result;  // valid when meta.ok()
};

/// Monitoring snapshot.  submitted == answered + stale + shed + expired +
/// errors once the service is idle (counts are client-visible outcomes).
struct ServiceStats {
  std::uint64_t submitted = 0;
  std::uint64_t answered = 0;
  std::uint64_t stale = 0;
  std::uint64_t shed = 0;
  std::uint64_t expired = 0;
  std::uint64_t errors = 0;
  std::uint64_t polls = 0;
  std::uint64_t snapshot_version = 0;
  std::size_t in_flight_high_water = 0;
  /// Service-side completion latency quantiles (executed queries only),
  /// conservative bucket upper bounds.  Sourced from the wired metrics
  /// registry, so they read 0 until set_obs is called.
  std::uint64_t p50_us = 0;
  std::uint64_t p99_us = 0;
};

class QueryService {
 public:
  struct Options {
    /// Worker threads answering queries.
    std::size_t workers = 4;
    /// Admission bound: queries in flight (queued + executing) beyond
    /// this are shed with kOverloaded.
    std::size_t queue_capacity = 64;
    /// Deadline for queries that do not carry their own.
    std::chrono::microseconds default_deadline{100'000};
    /// Staleness SLO for queries that do not carry their own: answers
    /// from snapshots older than this (model clock) are flagged kStale.
    Seconds staleness_slo = 10.0;
    /// Wall-clock pacing between background poll steps.
    std::chrono::microseconds poll_interval{2'000};
  };

  explicit QueryService(Options options);
  QueryService() : QueryService(Options{}) {}
  ~QueryService();

  QueryService(const QueryService&) = delete;
  QueryService& operator=(const QueryService&) = delete;

  /// Wires metrics and flight-recorder events: per-status query
  /// counters, queue depth, latency and deadline-slack histograms,
  /// snapshot gauges, and shed-episode / publish events.  Call before
  /// start(); handles are resolved once and the hot path stays
  /// lock-free.  Without it every sink is a no-op.
  void set_obs(const obs::Obs& o);

  /// Starts the worker pool.  With `poll_step`, also starts a background
  /// poller thread that invokes it every poll_interval until stop() --
  /// the step typically drives CollectorSet::poll_all / the simulator one
  /// period and publishes a fresh snapshot (see CmuHarness::serve).
  void start();
  void start(std::function<void()> poll_step);
  void stop();

  /// Publishes an immutable snapshot; callable from the poll step (via
  /// collector hooks) or directly from tests.
  void publish(collector::NetworkModel model, Seconds model_now);

  /// Advances the service's model clock without publishing (a poll round
  /// that yielded nothing new still ages the snapshots).
  void note_model_now(Seconds model_now);
  Seconds model_now() const {
    return model_now_.load(std::memory_order_acquire);
  }

  /// Synchronous query entry points, callable from any thread.  Always
  /// return by the query's deadline; never throw.
  GraphResponse get_graph(GraphQuery query);
  FlowInfoResponse flow_info(FlowInfoQuery query);

  const SnapshotStore& snapshots() const { return store_; }
  const AdmissionController& admission() const { return admission_; }
  const Options& options() const { return options_; }
  ServiceStats stats() const;

 private:
  template <typename Response>
  struct Pending {
    std::promise<Response> promise;
    std::atomic<bool> abandoned{false};
    std::chrono::steady_clock::time_point enqueued;
    std::chrono::steady_clock::time_point deadline;
  };

  template <typename Response, typename Fn>
  Response submit(std::chrono::microseconds deadline_budget, Fn execute);
  template <typename Response, typename Fn>
  void run_job(const std::shared_ptr<Pending<Response>>& state, Fn& execute);
  template <typename Response, typename Fn>
  Response answer(Seconds staleness_budget, bool trace,
                  std::chrono::steady_clock::time_point enqueued,
                  Fn&& query_fn);
  void count_outcome(QueryStatus status);
  void note_shed(bool shed);

  void worker_loop();
  void poller_loop(std::function<void()> poll_step);

  Options options_;
  SnapshotStore store_;
  AdmissionController admission_;
  std::atomic<double> model_now_{0.0};

  std::mutex mutex_;  // guards queue_, stopping_, started_
  std::condition_variable queue_cv_;
  std::condition_variable stop_cv_;  // wakes the poller's pacing sleep
  std::deque<std::function<void()>> queue_;
  bool stopping_ = false;
  bool started_ = false;
  std::vector<std::thread> workers_;
  std::thread poller_;

  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> answered_{0};
  std::atomic<std::uint64_t> stale_{0};
  std::atomic<std::uint64_t> shed_{0};
  std::atomic<std::uint64_t> expired_{0};
  std::atomic<std::uint64_t> errors_{0};
  std::atomic<std::uint64_t> polls_{0};

  // Observability (no-op sinks until set_obs).
  obs::FlightRecorder* recorder_ = nullptr;
  core::ModelerObs modeler_obs_;
  std::array<obs::Counter, obs::kQueryStatusCount> status_counters_;
  obs::Counter submitted_counter_;
  obs::Counter polls_counter_;
  obs::Gauge queue_depth_gauge_;
  obs::Gauge snapshot_version_gauge_;
  obs::Gauge snapshot_age_gauge_;
  obs::Histogram latency_;        // seconds, submission -> response
  obs::Histogram deadline_slack_; // seconds left when the answer landed
  std::atomic<bool> shedding_{false};  // edge detector for episode events

  // History series (telemetry plane; null until set_obs with a store):
  // per-status latency in ms, shed 0/1 per submit, snapshot staleness at
  // answer time.  Stamped on the model clock so they line up with the
  // simulator's and collector's link series.
  std::array<obs::TimeSeries*, obs::kQueryStatusCount> latency_series_{};
  obs::TimeSeries* shed_series_ = nullptr;
  obs::TimeSeries* staleness_series_ = nullptr;
};

}  // namespace remos::service
