#include "service/remos_client.hpp"

#include <algorithm>
#include <thread>

#include "util/error.hpp"

namespace remos::service {

RemosClient::RemosClient(QueryService& service, Options options)
    : service_(service), options_(options), rng_(options.seed) {
  if (options_.max_attempts == 0)
    throw InvalidArgument("RemosClient: zero attempts");
  if (options_.retry_budget_ratio < 0)
    throw InvalidArgument("RemosClient: negative retry budget ratio");
  if (options_.retry_budget_cap < 0)
    throw InvalidArgument("RemosClient: negative retry budget cap");
  if (options_.jitter < 0 || options_.jitter > 1)
    throw InvalidArgument("RemosClient: jitter outside [0,1]");
  retry_tokens_ = options_.retry_budget_cap;
}

bool RemosClient::spend_retry_token() {
  std::lock_guard<std::mutex> lk(budget_mutex_);
  if (retry_tokens_ < 1.0) return false;
  retry_tokens_ -= 1.0;
  return true;
}

std::chrono::microseconds RemosClient::jittered(
    std::chrono::microseconds backoff) {
  double factor = 1.0;
  if (options_.jitter > 0) {
    std::lock_guard<std::mutex> lk(rng_mutex_);
    factor = rng_.uniform(1.0 - options_.jitter, 1.0 + options_.jitter);
  }
  return std::chrono::microseconds(static_cast<std::int64_t>(
      std::max(0.0, static_cast<double>(backoff.count()) * factor)));
}

template <typename Response, typename Query>
Response RemosClient::run(Query query) {
  using Clock = std::chrono::steady_clock;
  query.tenant = options_.tenant;
  requests_.fetch_add(1, std::memory_order_relaxed);
  {
    // Each fresh request earns its ratio of a retry token, up to the cap.
    std::lock_guard<std::mutex> lk(budget_mutex_);
    retry_tokens_ = std::min(options_.retry_budget_cap,
                             retry_tokens_ + options_.retry_budget_ratio);
  }

  const auto total_budget =
      query.deadline.value_or(service_.options().default_deadline);
  const auto deadline = Clock::now() + total_budget;
  auto backoff = options_.base_backoff;

  Response r;
  for (std::size_t attempt = 0;; ++attempt) {
    // Deadline propagation: this attempt gets only what is left.
    const auto remaining = std::chrono::duration_cast<std::chrono::microseconds>(
        deadline - Clock::now());
    if (remaining.count() <= 0) {
      if (attempt == 0) {
        r.meta.status = QueryStatus::kExpired;
        attempts_.fetch_add(1, std::memory_order_relaxed);
      }
      return r;
    }
    Query q = query;
    q.deadline = remaining;
    attempts_.fetch_add(1, std::memory_order_relaxed);
    if constexpr (std::is_same_v<Response, GraphResponse>)
      r = service_.get_graph(std::move(q));
    else if constexpr (std::is_same_v<Response, FlowBatchResponse>)
      r = service_.flow_info_batch(std::move(q));
    else
      r = service_.flow_info(std::move(q));

    if (r.meta.status != QueryStatus::kOverloaded) return r;
    if (attempt + 1 >= options_.max_attempts) return r;
    const auto sleep = jittered(backoff);
    if (sleep >= deadline - Clock::now()) {
      // The backoff would outlive the deadline: stop, report honestly.
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
    if (!spend_retry_token()) {
      suppressed_.fetch_add(1, std::memory_order_relaxed);
      return r;
    }
    retries_.fetch_add(1, std::memory_order_relaxed);
    if (sleep.count() > 0) std::this_thread::sleep_for(sleep);
    backoff *= 2;
  }
}

GraphResponse RemosClient::get_graph(GraphQuery query) {
  return run<GraphResponse>(std::move(query));
}

FlowInfoResponse RemosClient::flow_info(FlowInfoQuery query) {
  return run<FlowInfoResponse>(std::move(query));
}

FlowBatchResponse RemosClient::flow_info_batch(FlowBatchInfoQuery query) {
  return run<FlowBatchResponse>(std::move(query));
}

RemosClient::Stats RemosClient::stats() const {
  Stats s;
  s.requests = requests_.load(std::memory_order_relaxed);
  s.attempts = attempts_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.suppressed = suppressed_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lk(budget_mutex_);
    s.retry_tokens = retry_tokens_;
  }
  return s;
}

}  // namespace remos::service
