// Client-side retry wrapper with a per-tenant retry budget.
//
// Naive clients retry every shed query immediately, which turns a 50%
// shed rate into 2x offered load -- the classic retry storm that keeps an
// overloaded service overloaded after the original spike has passed.
// RemosClient bounds that feedback loop three ways:
//
//   1. Retry budget (the Finagle/"retry budgets, not retry counts"
//      idiom): each fresh request earns `retry_budget_ratio` tokens
//      (capped), each retry spends one.  Steady-state retries are thus at
//      most ratio x base load no matter the shed rate -- with the default
//      0.2 ratio, total offered load can never exceed 1.2x base, inside
//      the 1.3x amplification ceiling this PR's soak asserts.
//   2. Exponential backoff with seeded jitter between attempts, so a
//      thundering herd decorrelates deterministically (reproducible in
//      tests -- no wall-clock entropy).
//   3. Deadline propagation: the caller's total deadline is one budget
//      spread across all attempts; each attempt carries only the time
//      remaining, and when the remainder cannot cover the next backoff
//      the client stops retrying and returns the last response instead
//      of issuing a doomed attempt.
//
// Only kOverloaded is retried: kExpired means the deadline is already
// spent, kError is deterministic (a malformed query does not become
// well-formed by retrying), and kDegraded/kStale are answers.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>

#include "service/query_service.hpp"
#include "service/tenant_admission.hpp"
#include "util/rng.hpp"

namespace remos::service {

class RemosClient : public FlowInfoEndpoint {
 public:
  struct Options {
    /// Tenant id stamped on every query this client issues (overrides
    /// whatever the query carried).
    int tenant = TenantAdmission::kDefaultTenant;
    /// Attempts per query including the first (1 = never retry).
    std::size_t max_attempts = 3;
    /// Retry tokens earned per fresh request; also the steady-state
    /// amplification bound (offered <= (1 + ratio) x base).
    double retry_budget_ratio = 0.2;
    /// Token cap (and initial balance): bounds the burst of retries a
    /// long quiet period can bank.
    double retry_budget_cap = 10.0;
    /// First backoff; doubles per subsequent attempt.
    std::chrono::microseconds base_backoff{200};
    /// Uniform jitter applied to each backoff: sleep in
    /// [backoff*(1-jitter), backoff*(1+jitter)).
    double jitter = 0.5;
    /// Seed for the jitter stream (deterministic tests).
    std::uint64_t seed = 0x9d1fb8a2c34be001ULL;
  };

  struct Stats {
    std::uint64_t requests = 0;  // caller-visible queries
    std::uint64_t attempts = 0;  // server-visible submissions
    std::uint64_t retries = 0;
    /// Retries wanted but suppressed: empty budget or deadline too far
    /// gone to cover the backoff.
    std::uint64_t suppressed = 0;
    double retry_tokens = 0;
  };

  RemosClient(QueryService& service, Options options);

  /// Synchronous entry points (FlowInfoEndpoint); the query's tenant is
  /// overwritten with this client's, and its deadline (or the service
  /// default) bounds all attempts together.  A batch retries as a unit:
  /// it is one admission slot server-side, so one retry token covers it.
  GraphResponse get_graph(GraphQuery query) override;
  FlowInfoResponse flow_info(FlowInfoQuery query) override;
  FlowBatchResponse flow_info_batch(FlowBatchInfoQuery query) override;

  Stats stats() const;
  int tenant() const { return options_.tenant; }

 private:
  template <typename Response, typename Query>
  Response run(Query query);
  /// True if a retry token was available and spent.
  bool spend_retry_token();
  std::chrono::microseconds jittered(std::chrono::microseconds backoff);

  QueryService& service_;
  Options options_;
  std::mutex rng_mutex_;
  Rng rng_;
  mutable std::mutex budget_mutex_;
  double retry_tokens_ = 0;
  std::atomic<std::uint64_t> requests_{0};
  std::atomic<std::uint64_t> attempts_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> suppressed_{0};
};

}  // namespace remos::service
