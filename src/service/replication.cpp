#include "service/replication.hpp"

#include <utility>

#include "util/error.hpp"

namespace remos::service {

// ---------------------------------------------------------------------------
// ChannelFaultInjector

ChannelFaultInjector::ChannelFaultInjector(std::uint64_t seed) : rng_(seed) {}

void ChannelFaultInjector::drop(Window window, double probability,
                                int replica) {
  drops_.push_back(Fault{window, probability, replica});
}

void ChannelFaultInjector::duplicate(Window window, double probability,
                                     int replica) {
  duplicates_.push_back(Fault{window, probability, replica});
}

void ChannelFaultInjector::reorder(Window window, double probability,
                                   int replica) {
  reorders_.push_back(Fault{window, probability, replica});
}

void ChannelFaultInjector::corrupt(Window window, double probability,
                                   int replica) {
  corruptions_.push_back(Fault{window, probability, replica});
}

void ChannelFaultInjector::truncate(Window window, double probability,
                                    int replica) {
  truncations_.push_back(Fault{window, probability, replica});
}

void ChannelFaultInjector::partition(int replica, Window window) {
  partitions_.push_back(Outage{replica, window});
}

void ChannelFaultInjector::crash(int replica, Window window) {
  crashes_.push_back(Outage{replica, window});
}

bool ChannelFaultInjector::crashed(int replica, Seconds now) const {
  for (const Outage& o : crashes_)
    if (matches(o.replica, replica) && o.window.contains(now)) return true;
  return false;
}

bool ChannelFaultInjector::partitioned(int replica, Seconds now) const {
  for (const Outage& o : partitions_)
    if (matches(o.replica, replica) && o.window.contains(now)) return true;
  return false;
}

bool ChannelFaultInjector::roll(const std::vector<Fault>& faults, int replica,
                                Seconds now) {
  for (const Fault& f : faults) {
    if (!matches(f.replica, replica) || !f.window.contains(now)) continue;
    if (rng_.chance(f.probability)) {
      ++faults_injected_;
      return true;
    }
  }
  return false;
}

bool ChannelFaultInjector::roll_drop(int replica, Seconds now) {
  return roll(drops_, replica, now);
}

bool ChannelFaultInjector::roll_duplicate(int replica, Seconds now) {
  return roll(duplicates_, replica, now);
}

bool ChannelFaultInjector::roll_reorder(int replica, Seconds now) {
  return roll(reorders_, replica, now);
}

std::vector<std::uint8_t> ChannelFaultInjector::mutate(
    int replica, Seconds now, std::vector<std::uint8_t> frame) {
  if (frame.empty()) return frame;
  if (roll(corruptions_, replica, now)) {
    std::uint8_t& byte = frame[rng_.below(frame.size())];
    byte ^= static_cast<std::uint8_t>(1u << rng_.below(8));
  }
  if (roll(truncations_, replica, now))
    frame.resize(rng_.below(frame.size()));  // keep a strict prefix
  return frame;
}

// ---------------------------------------------------------------------------
// ReplicationBus

int ReplicationBus::subscribe(Sink sink) {
  endpoints_.push_back(Endpoint{std::move(sink), {}, false});
  return static_cast<int>(endpoints_.size()) - 1;
}

void ReplicationBus::deliver(Endpoint& ep,
                             const std::vector<std::uint8_t>& frame,
                             Seconds now) {
  ++stats_.delivered;
  ep.sink(frame, now);
}

void ReplicationBus::send(int replica, const std::vector<std::uint8_t>& frame,
                          Seconds now) {
  Endpoint& ep = endpoints_.at(static_cast<std::size_t>(replica));
  ++stats_.sent;

  if (faults_.crashed(replica, now) || faults_.partitioned(replica, now)) {
    ++stats_.blackholed;
    // Frames parked in the reorder slot are in the pipe: they die too.
    ep.holding = false;
    ep.held.clear();
    return;
  }
  if (faults_.roll_drop(replica, now)) {
    ++stats_.dropped;
    return;
  }

  std::vector<std::uint8_t> wire = faults_.mutate(replica, now, frame);
  if (wire != frame) ++stats_.mutated;

  if (!ep.holding && faults_.roll_reorder(replica, now)) {
    ep.held = std::move(wire);
    ep.holding = true;
    ++stats_.reordered;
    return;
  }

  deliver(ep, wire, now);
  if (faults_.roll_duplicate(replica, now)) {
    ++stats_.duplicated;
    deliver(ep, wire, now);
  }
  if (ep.holding) {
    const std::vector<std::uint8_t> held = std::move(ep.held);
    ep.holding = false;
    ep.held.clear();
    deliver(ep, held, now);  // the held frame lands after its successor
  }
}

// ---------------------------------------------------------------------------
// ReplicaStore

ReplicaStore::ReplicaStore(int id, Options options, obs::Obs obs)
    : id_(id), service_(options.service) {
  service_.set_obs(obs);
  recorder_ = obs.recorder;
  if (obs.metrics) {
    const obs::Labels who{{"replica", std::to_string(id)}};
    applied_counter_ =
        obs.metrics->counter("remos_replication_applied_total", who,
                             "Snapshot frames applied by this replica.");
    rejected_counter_ = obs.metrics->counter(
        "remos_replication_rejected_total", who,
        "Frames refused as corrupt or truncated by this replica.");
    gap_counter_ =
        obs.metrics->counter("remos_replication_gaps_total", who,
                             "Delta base-version mismatches detected.");
    resync_counter_ =
        obs.metrics->counter("remos_replication_resyncs_total", who,
                             "Full frames that repaired a gap or restart.");
  }
}

void ReplicaStore::on_frame(const std::vector<std::uint8_t>& frame,
                            Seconds now) {
  collector::SnapshotFrame f;
  try {
    f = collector::decode_frame(frame);
  } catch (const ProtocolError& e) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_counter_.inc();
    if (recorder_)
      recorder_->record(obs::EventSeverity::kWarn, "replication",
                        "frame_rejected",
                        "replica " + std::to_string(id_) + ": " + e.what(),
                        now);
    return;
  }

  // Redelivery idempotence: duplicates and late reorders arrive at or
  // below the applied version and are ignored without touching state.
  if (f.version <= applied_.load(std::memory_order_relaxed)) {
    ignored_stale_.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  if (f.kind == collector::FrameKind::kFull) {
    collector::NetworkModel next;
    try {
      next = collector::materialize(f);
    } catch (const ProtocolError& e) {
      rejected_.fetch_add(1, std::memory_order_relaxed);
      rejected_counter_.inc();
      if (recorder_)
        recorder_->record(obs::EventSeverity::kWarn, "replication",
                          "frame_rejected",
                          "replica " + std::to_string(id_) + ": " + e.what(),
                          now);
      return;
    }
    const bool repaired = needs_full_.load(std::memory_order_relaxed);
    model_ = std::move(next);
    applied_.store(f.version, std::memory_order_release);
    needs_full_.store(false, std::memory_order_release);
    fulls_applied_.fetch_add(1, std::memory_order_relaxed);
    applied_counter_.inc();
    if (repaired && ever_synced_) {
      resyncs_.fetch_add(1, std::memory_order_relaxed);
      resync_counter_.inc();
      if (recorder_)
        recorder_->record(obs::EventSeverity::kInfo, "replication", "resync",
                          "replica " + std::to_string(id_) +
                              " resynced at version " +
                              std::to_string(f.version),
                          now);
    }
    ever_synced_ = true;
    publish_to_service(f.taken_at);
    last_applied_at_.store(now, std::memory_order_release);
    return;
  }

  // Delta: only applicable against exactly the replica's applied version.
  const std::uint64_t applied = applied_.load(std::memory_order_relaxed);
  if (applied == 0 || f.base_version != applied) {
    gaps_.fetch_add(1, std::memory_order_relaxed);
    gap_counter_.inc();
    needs_full_.store(true, std::memory_order_release);
    if (recorder_)
      recorder_->record(obs::EventSeverity::kWarn, "replication",
                        "gap_detected",
                        "replica " + std::to_string(id_) + ": delta v" +
                            std::to_string(f.version) + " wants base v" +
                            std::to_string(f.base_version) + ", have v" +
                            std::to_string(applied),
                        now);
    return;
  }
  try {
    collector::apply_delta(model_, f);
  } catch (const ProtocolError& e) {
    // The model may be partially mutated now; a full resync repairs it.
    rejected_.fetch_add(1, std::memory_order_relaxed);
    rejected_counter_.inc();
    needs_full_.store(true, std::memory_order_release);
    if (recorder_)
      recorder_->record(obs::EventSeverity::kWarn, "replication",
                        "frame_rejected",
                        "replica " + std::to_string(id_) + ": " + e.what(),
                        now);
    return;
  }
  applied_.store(f.version, std::memory_order_release);
  deltas_applied_.fetch_add(1, std::memory_order_relaxed);
  applied_counter_.inc();
  publish_to_service(f.taken_at);
  last_applied_at_.store(now, std::memory_order_release);
}

void ReplicaStore::note_outage(Seconds now) {
  if (crashed_) return;
  crashed_ = true;
  serving_.store(false, std::memory_order_release);
  if (recorder_)
    recorder_->record(obs::EventSeverity::kWarn, "replication", "replica_down",
                      "replica " + std::to_string(id_) + " crashed", now);
}

void ReplicaStore::note_alive(Seconds now) {
  if (crashed_) {
    // Restart: the volatile state (model + applied version) is gone, and
    // the service answers from nothing until a full frame resyncs it.
    crashed_ = false;
    model_ = collector::NetworkModel{};
    applied_.store(0, std::memory_order_release);
    needs_full_.store(true, std::memory_order_release);
    restarts_.fetch_add(1, std::memory_order_relaxed);
    service_.publish(collector::NetworkModel{}, now);
    if (recorder_)
      recorder_->record(obs::EventSeverity::kInfo, "replication",
                        "replica_restart",
                        "replica " + std::to_string(id_) +
                            " restarted empty; awaiting full resync",
                        now);
  }
  serving_.store(true, std::memory_order_release);
  service_.note_model_now(now);
}

void ReplicaStore::publish_to_service(Seconds taken_at) {
  service_.publish(model_, taken_at);
}

ReplicaStore::Stats ReplicaStore::stats() const {
  Stats s;
  s.fulls_applied = fulls_applied_.load(std::memory_order_relaxed);
  s.deltas_applied = deltas_applied_.load(std::memory_order_relaxed);
  s.rejected = rejected_.load(std::memory_order_relaxed);
  s.ignored_stale = ignored_stale_.load(std::memory_order_relaxed);
  s.gaps = gaps_.load(std::memory_order_relaxed);
  s.resyncs = resyncs_.load(std::memory_order_relaxed);
  s.restarts = restarts_.load(std::memory_order_relaxed);
  return s;
}

}  // namespace remos::service
