// Replicated snapshot plane: primary -> N replicas over a faulty channel.
//
// The measurement plane produces one NetworkModel in one process -- a
// single fault domain.  This layer streams versioned snapshot frames
// (collector/snapshot_codec) from a primary publisher to N in-process
// replicas over a fault-injectable channel, so the query plane survives
// a misbehaving *replication* network exactly the way the collector
// survives a misbehaving management network (PR 1):
//
//   primary publish ──> SnapshotStore (version v, pinned base v-1)
//                   ──> delta(v-1 -> v)  ──ReplicationBus──> replica 0..N-1
//                        │ drop / duplicate / reorder / corrupt /
//                        │ truncate / partition / crash  (scripted,
//                        │ seeded, time-windowed -- the snmp::
//                        │ FaultInjector idiom at the snapshot layer)
//                        └─> targeted full frames for replicas that
//                            flagged a gap (resync)
//
// Each ReplicaStore applies frames with gap detection: a delta whose
// base version is not the replica's applied version flags needs_full(),
// and the publisher answers with a targeted full frame on its next
// round.  Duplicated or reordered frames at or below the applied
// version are ignored, so redelivery is idempotent.  A crashed replica
// loses its volatile state; on restart it rejoins with applied version
// 0 and resyncs from a full frame.  Replicas serve queries from their
// newest *verified* snapshot through an embedded QueryService, so a
// behind replica answers with the service plane's staleness SLO and the
// collector plane's accuracy decay rather than refusing.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "collector/network_model.hpp"
#include "collector/snapshot_codec.hpp"
#include "obs/obs.hpp"
#include "service/query_service.hpp"
#include "service/snapshot_store.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace remos::service {

/// Scriptable fault injection for the replication channel (the
/// snmp::FaultInjector idiom one layer up): seeded, time-windowed on the
/// model clock, per-replica or channel-wide.  Faults compose -- a frame
/// may survive a drop roll only to be corrupted and then reordered.
class ChannelFaultInjector {
 public:
  /// Half-open window [from, until) on the model clock.
  struct Window {
    Seconds from = 0;
    Seconds until = std::numeric_limits<double>::infinity();
    bool contains(Seconds t) const { return t >= from && t < until; }
  };

  static constexpr int kAllReplicas = -1;

  explicit ChannelFaultInjector(std::uint64_t seed = 0x5EB05);

  // --- scripting (replica kAllReplicas targets every endpoint) --------

  /// Per-frame loss probability while the window is active.
  void drop(Window window, double probability, int replica = kAllReplicas);
  /// Probability that a frame is delivered twice.
  void duplicate(Window window, double probability,
                 int replica = kAllReplicas);
  /// Probability that a frame is held and delivered after its successor.
  void reorder(Window window, double probability, int replica = kAllReplicas);
  /// Probability that one frame byte gets one bit flipped.
  void corrupt(Window window, double probability, int replica = kAllReplicas);
  /// Probability that a frame loses a suffix.
  void truncate(Window window, double probability,
                int replica = kAllReplicas);
  /// Replica unreachable (frames blackholed, state kept) for the window.
  void partition(int replica, Window window);
  /// Replica process down for the window; on restart its volatile state
  /// (applied model + version) is gone, like a real process crash.
  void crash(int replica, Window window);

  // --- hooks (bus/publisher side, model clock) -------------------------

  bool crashed(int replica, Seconds now) const;
  bool partitioned(int replica, Seconds now) const;
  bool roll_drop(int replica, Seconds now);
  bool roll_duplicate(int replica, Seconds now);
  bool roll_reorder(int replica, Seconds now);
  /// Applies corruption/truncation; returns the frame to deliver.
  std::vector<std::uint8_t> mutate(int replica, Seconds now,
                                   std::vector<std::uint8_t> frame);

  /// Faults realized (drops, duplicates, reorders, mutations).
  std::uint64_t faults_injected() const { return faults_injected_; }

 private:
  struct Fault {
    Window window;
    double probability = 0;
    int replica = kAllReplicas;
  };
  struct Outage {
    int replica = kAllReplicas;
    Window window;
  };

  static bool matches(int filter, int replica) {
    return filter == kAllReplicas || filter == replica;
  }
  bool roll(const std::vector<Fault>& faults, int replica, Seconds now);

  Rng rng_;
  std::vector<Fault> drops_;
  std::vector<Fault> duplicates_;
  std::vector<Fault> reorders_;
  std::vector<Fault> corruptions_;
  std::vector<Fault> truncations_;
  std::vector<Outage> partitions_;
  std::vector<Outage> crashes_;
  std::uint64_t faults_injected_ = 0;
};

/// In-process frame channel from the primary to its replicas, with the
/// fault injector sitting at the send boundary (replicas never know a
/// frame was perturbed -- they find out by decoding it).  Single-writer:
/// all sends happen on the publisher thread.
class ReplicationBus {
 public:
  using Sink = std::function<void(const std::vector<std::uint8_t>&, Seconds)>;

  explicit ReplicationBus(ChannelFaultInjector& faults) : faults_(faults) {}

  /// Registers a delivery sink; returns the endpoint's replica id.
  int subscribe(Sink sink);

  /// Sends one frame to one endpoint through the fault gauntlet.
  void send(int replica, const std::vector<std::uint8_t>& frame,
            Seconds now);

  struct Stats {
    std::uint64_t sent = 0;        // frames offered to the channel
    std::uint64_t delivered = 0;   // sink invocations (incl. duplicates)
    std::uint64_t dropped = 0;     // lost to drop rolls
    std::uint64_t blackholed = 0;  // lost to partition/crash windows
    std::uint64_t duplicated = 0;
    std::uint64_t reordered = 0;
    std::uint64_t mutated = 0;     // corrupted or truncated in flight
  };
  const Stats& stats() const { return stats_; }

 private:
  struct Endpoint {
    Sink sink;
    std::vector<std::uint8_t> held;  // one-slot reorder buffer
    bool holding = false;
  };

  void deliver(Endpoint& ep, const std::vector<std::uint8_t>& frame,
               Seconds now);

  ChannelFaultInjector& faults_;
  std::vector<Endpoint> endpoints_;
  Stats stats_;
};

/// One replica: the replicated model, frame application with gap
/// detection, and an embedded QueryService serving from the newest
/// verified snapshot.  Frame application runs on the publisher thread;
/// queries run on the replica service's worker threads; the health
/// signals the coordinator reads cross threads as atomics.
class ReplicaStore {
 public:
  struct Options {
    QueryService::Options service;
  };

  ReplicaStore(int id, Options options, obs::Obs obs = {});

  void start() { service_.start(); }
  void stop() { service_.stop(); }

  int id() const { return id_; }
  QueryService& service() { return service_; }

  // --- publisher-thread hooks -----------------------------------------

  /// Delivers one wire frame (possibly corrupted/reordered/duplicated).
  void on_frame(const std::vector<std::uint8_t>& frame, Seconds now);
  /// The replica is down at `now` (crash window): stop serving; the
  /// next note_alive marks a restart that wipes volatile state.
  void note_outage(Seconds now);
  /// The replica is up at `now`: advances its model clock so snapshots
  /// age (and staleness/accuracy decay apply) even while partitioned.
  void note_alive(Seconds now);

  /// Fingerprint of the applied model (publisher thread or quiesced).
  std::uint64_t fingerprint() const {
    return collector::model_fingerprint(model_);
  }

  // --- cross-thread health signals (coordinator side) ------------------

  /// False while the replica process is down.
  bool serving() const { return serving_.load(std::memory_order_acquire); }
  /// Newest applied (verified) snapshot version; 0 before the first.
  std::uint64_t applied_version() const {
    return applied_.load(std::memory_order_acquire);
  }
  /// True when a gap/restart was detected and a full resync is pending.
  bool needs_full() const {
    return needs_full_.load(std::memory_order_acquire);
  }
  /// Model clock of the last applied frame (heartbeat; -1 = never).
  Seconds last_applied_at() const {
    return last_applied_at_.load(std::memory_order_acquire);
  }

  struct Stats {
    std::uint64_t fulls_applied = 0;
    std::uint64_t deltas_applied = 0;
    std::uint64_t rejected = 0;       // corrupt/truncated frames refused
    std::uint64_t ignored_stale = 0;  // duplicates and late reorders
    std::uint64_t gaps = 0;           // base-version mismatches
    std::uint64_t resyncs = 0;        // fulls that cleared needs_full
    std::uint64_t restarts = 0;       // crash -> restart transitions
  };
  Stats stats() const;

 private:
  void publish_to_service(Seconds taken_at);

  const int id_;
  QueryService service_;
  collector::NetworkModel model_;  // publisher thread only
  bool crashed_ = false;           // publisher thread only
  bool ever_synced_ = false;       // distinguishes resync from first sync

  std::atomic<bool> serving_{true};
  std::atomic<bool> needs_full_{true};  // fresh replicas want a full
  std::atomic<std::uint64_t> applied_{0};
  std::atomic<double> last_applied_at_{-1.0};

  std::atomic<std::uint64_t> fulls_applied_{0};
  std::atomic<std::uint64_t> deltas_applied_{0};
  std::atomic<std::uint64_t> rejected_{0};
  std::atomic<std::uint64_t> ignored_stale_{0};
  std::atomic<std::uint64_t> gaps_{0};
  std::atomic<std::uint64_t> resyncs_{0};
  std::atomic<std::uint64_t> restarts_{0};

  obs::FlightRecorder* recorder_ = nullptr;
  obs::Counter applied_counter_;
  obs::Counter rejected_counter_;
  obs::Counter gap_counter_;
  obs::Counter resync_counter_;
};

}  // namespace remos::service
