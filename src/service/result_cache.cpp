#include "service/result_cache.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace remos::service {
namespace {

void append(std::ostringstream& out, const core::Timeframe& t) {
  out << "tf:" << static_cast<int>(t.kind) << ':' << t.window << ':'
      << t.horizon << ';';
}

void append(std::ostringstream& out, const core::FlowRequest& f) {
  out << f.src << '>' << f.dst << '@' << f.requested << ';';
}

void append(std::ostringstream& out, const core::MulticastRequest& m) {
  out << m.src << '>';
  for (const std::string& d : m.dsts) out << d << ',';
  out << '@' << m.requested << ';';
}

void append(std::ostringstream& out, const core::FlowQuery& q) {
  out << "x:";
  for (const core::FlowRequest& f : q.fixed) append(out, f);
  out << "|m:";
  for (const core::MulticastRequest& m : q.multicast) append(out, m);
  out << "|v:";
  for (const core::FlowRequest& f : q.variable) append(out, f);
  out << "|i:";
  if (q.independent) append(out, *q.independent);
  out << '|';
  append(out, q.timeframe);
}

double clamped(double accuracy, double factor) {
  return std::clamp(accuracy * std::clamp(factor, 0.0, 1.0), 0.0, 1.0);
}

void discount(Measurement& m, double factor) {
  m.accuracy = clamped(m.accuracy, factor);
}

}  // namespace

std::string canonical_key(const GraphQuery& query) {
  std::ostringstream out;
  out << "g|";
  std::vector<std::string> nodes = query.nodes;
  std::sort(nodes.begin(), nodes.end());
  nodes.erase(std::unique(nodes.begin(), nodes.end()), nodes.end());
  for (const std::string& n : nodes) out << n << ',';
  out << '|';
  append(out, query.timeframe);
  out << "o:" << query.options.collapse_chains << ':'
      << query.options.keep_all << ':' << query.options.accuracy_halflife;
  return out.str();
}

std::string canonical_key(const FlowInfoQuery& query) {
  std::ostringstream out;
  out << "f|";
  append(out, query.query);
  return out.str();
}

std::string canonical_key(const FlowBatchInfoQuery& query) {
  // Sub-query order is preserved: in shared mode the combined fixed-flow
  // admission order depends on it, and results are index-aligned either
  // way.
  std::ostringstream out;
  out << "b|" << (query.batch.mode == core::FlowBatchQuery::Mode::kShared
                      ? "s"
                      : "i");
  for (const core::FlowQuery& q : query.batch.queries) {
    out << "|[";
    append(out, q);
    out << ']';
  }
  return out.str();
}

void discount_accuracy(GraphResponse& response, double factor) {
  // Capacities and latencies stay untouched: physical invariants do not
  // erode with age.  Usage and forwarding estimates do.
  for (core::GraphLink& link : response.graph.mutable_links()) {
    discount(link.used_ab, factor);
    discount(link.used_ba, factor);
  }
  for (auto& [name, node] : response.graph.mutable_nodes())
    discount(node.internal_bw, factor);
}

namespace {

void discount_result(core::FlowQueryResult& result, double factor) {
  auto each = [factor](core::FlowResult& r) {
    discount(r.bandwidth, factor);
    discount(r.latency, factor);
  };
  for (core::FlowResult& r : result.fixed) each(r);
  for (core::MulticastResult& m : result.multicast) {
    discount(m.bandwidth, factor);
    discount(m.latency, factor);
  }
  for (core::FlowResult& r : result.variable) each(r);
  if (result.independent) each(*result.independent);
}

}  // namespace

void discount_accuracy(FlowInfoResponse& response, double factor) {
  discount_result(response.result, factor);
}

void discount_accuracy(FlowBatchResponse& response, double factor) {
  for (core::FlowQueryResult& r : response.results)
    discount_result(r, factor);
}

}  // namespace remos::service
