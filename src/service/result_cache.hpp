// Snapshot-versioned result cache (the brownout ladder's middle rung).
//
// The paper's §4 sharing semantics make a Remos answer a pure function of
// (network snapshot, query): two applications asking the same flow
// question against the same published model must receive the same
// quartiles.  That purity is cacheable.  Each entry is keyed by a
// *canonicalized query fingerprint* (sorted node sets, normalized
// timeframes; flow order preserved, because fixed-flow admission order is
// semantically significant) and stamped with the snapshot version that
// answered it, plus a SnapshotStore::Pin so the version stays addressable
// however many publishes happen afterwards.
//
// Two lookups fall out of one table:
//   - Fresh hit: the entry's version equals the store's current version.
//     The cached payload IS the answer -- O(1), no solve, no Modeler.
//   - Brownout: versions differ (or the fresh path already failed), but a
//     previous answer exists.  Under overload the service serves it with
//     kDegraded and every dynamic Measurement's accuracy multiplied by
//     2^(-age / halflife) -- PR 1's staleness-decay idiom -- so the
//     caller gets "the network looked like this `age` seconds ago, trust
//     it this much" instead of a shed.  Never a stale answer presented as
//     fresh: the status and the discount always travel with it.
//
// Publishes do not sweep the cache; entries self-invalidate for the fresh
// path by version comparison, and remain eligible for brownout until LRU
// eviction replaces them.  Capacity 0 disables caching entirely (the
// default: existing callers and benches see the exact pre-cache service).
#pragma once

#include <cstdint>
#include <list>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "service/query_service.hpp"
#include "service/snapshot_store.hpp"

namespace remos::service {

/// Canonical fingerprint of a graph query: sorted node set, timeframe,
/// logical options.  Deadline, staleness budget and trace flags are
/// excluded -- they shape *how* the answer is produced, not *what* it is.
std::string canonical_key(const GraphQuery& query);

/// Canonical fingerprint of a flow query.  Flow lists keep their order:
/// fixed flows are admitted sequentially, so [A,B] and [B,A] are
/// different questions when capacity is tight.
std::string canonical_key(const FlowInfoQuery& query);

/// Canonical fingerprint of a batch: sharing mode plus the per-sub-query
/// fingerprints in batch order (order matters in shared mode, and the
/// index-aligned results make it part of the question either way).
std::string canonical_key(const FlowBatchInfoQuery& query);

/// Multiplies the accuracy of every *dynamic* Measurement in the payload
/// by `factor` (clamped to [0,1]): link usage and node forwarding
/// estimates for graphs, bandwidth/latency estimates for flow results.
/// Static physical capacities keep accuracy 1 -- age does not erode them.
void discount_accuracy(GraphResponse& response, double factor);
void discount_accuracy(FlowInfoResponse& response, double factor);
void discount_accuracy(FlowBatchResponse& response, double factor);

template <typename Response>
class ResultCache {
 public:
  struct Options {
    /// Maximum cached fingerprints; 0 disables the cache (every lookup
    /// misses, inserts are dropped).
    std::size_t capacity = 0;
  };

  struct Hit {
    Response response;
    std::uint64_t version = 0;
    /// Model clock when the cached answer's snapshot was taken (brownout
    /// age = now - taken_at).
    Seconds taken_at = 0;
  };

  ResultCache() = default;
  explicit ResultCache(Options options) : options_(options) {}

  bool enabled() const { return options_.capacity > 0; }

  /// The newest cached answer for `key`, whatever its version (the
  /// caller compares Hit::version against the store's current version to
  /// distinguish a fresh hit from brownout material).
  std::optional<Hit> find(const std::string& key) {
    if (!enabled()) return std::nullopt;
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      misses_.fetch_add(1, std::memory_order_relaxed);
      return std::nullopt;
    }
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    hits_.fetch_add(1, std::memory_order_relaxed);
    return Hit{it->second.response, it->second.version, it->second.taken_at};
  }

  /// Stores `response` as the answer for `key` at `version`.  A newer
  /// version replaces an older entry for the same fingerprint; an older
  /// or equal one is dropped (a slow worker must not roll the cache
  /// back).  `pin` keeps the snapshot version addressable for as long as
  /// the entry lives.
  void insert(const std::string& key, Response response,
              std::uint64_t version, Seconds taken_at,
              SnapshotStore::Pin pin) {
    if (!enabled()) return;
    std::lock_guard<std::mutex> lk(mutex_);
    auto it = entries_.find(key);
    if (it != entries_.end()) {
      if (version <= it->second.version) return;
      it->second.response = std::move(response);
      it->second.version = version;
      it->second.taken_at = taken_at;
      it->second.pin = std::move(pin);
      lru_.splice(lru_.begin(), lru_, it->second.lru_it);
      inserts_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    while (entries_.size() >= options_.capacity && !lru_.empty()) {
      entries_.erase(lru_.back());
      lru_.pop_back();
      evictions_.fetch_add(1, std::memory_order_relaxed);
    }
    lru_.push_front(key);
    Entry e;
    e.response = std::move(response);
    e.version = version;
    e.taken_at = taken_at;
    e.pin = std::move(pin);
    e.lru_it = lru_.begin();
    entries_.emplace(key, std::move(e));
    inserts_.fetch_add(1, std::memory_order_relaxed);
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lk(mutex_);
    return entries_.size();
  }
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t inserts() const {
    return inserts_.load(std::memory_order_relaxed);
  }
  std::uint64_t evictions() const {
    return evictions_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    Response response;
    std::uint64_t version = 0;
    Seconds taken_at = 0;
    SnapshotStore::Pin pin;
    std::list<std::string>::iterator lru_it;
  };

  Options options_;
  mutable std::mutex mutex_;
  std::unordered_map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recent
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> inserts_{0};
  std::atomic<std::uint64_t> evictions_{0};
};

}  // namespace remos::service
