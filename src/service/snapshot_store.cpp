#include "service/snapshot_store.hpp"

#include <utility>

namespace remos::service {

SnapshotStore::Ptr SnapshotStore::publish(collector::NetworkModel model,
                                          Seconds taken_at) {
  auto snap = std::make_shared<ModelSnapshot>();
  snap->taken_at = taken_at;
  snap->model = std::move(model);
  // Publishers are serialized (one poller), so load-then-store is
  // race-free for the version counter; readers see version() lag, never
  // lead, the snapshot it describes.
  snap->version = version_.load(std::memory_order_acquire) + 1;

  Ptr retired;  // destroyed after unlock: no model dtor under the lock
  lock();
  retired = std::move(previous_);
  previous_ = std::move(current_);
  current_ = snap;
  unlock();
  version_.store(snap->version, std::memory_order_release);
  return snap;
}

SnapshotStore::Ptr SnapshotStore::current() const {
  lock();
  Ptr p = current_;
  unlock();
  return p;
}

SnapshotStore::Ptr SnapshotStore::previous() const {
  lock();
  Ptr p = previous_;
  unlock();
  return p;
}

SnapshotStore::Pin SnapshotStore::acquire(std::uint64_t version) {
  lock();
  Ptr found;
  if (current_ && current_->version == version) {
    found = current_;
  } else if (previous_ && previous_->version == version) {
    found = previous_;
  } else if (const auto it = pinned_.find(version); it != pinned_.end()) {
    found = it->second.first;
  }
  if (found) {
    auto [it, inserted] = pinned_.try_emplace(version, found, 0);
    ++it->second.second;
  }
  unlock();
  return found ? Pin(this, std::move(found)) : Pin();
}

void SnapshotStore::unpin(std::uint64_t version) {
  Ptr retired;  // destroyed after unlock: no model dtor under the lock
  lock();
  if (const auto it = pinned_.find(version); it != pinned_.end()) {
    if (--it->second.second == 0) {
      retired = std::move(it->second.first);
      pinned_.erase(it);
    }
  }
  unlock();
}

void SnapshotStore::Pin::release() {
  if (store_ && snapshot_) store_->unpin(snapshot_->version);
  store_ = nullptr;
  snapshot_.reset();
}

}  // namespace remos::service
