// Versioned, immutable model snapshots (service layer).
//
// The measurement plane mutates the collector's NetworkModel in place on
// every poll; a query reading that model concurrently would observe torn
// state (a link whose history grew mid-read, a half-merged CollectorSet
// view).  The SnapshotStore decouples the two planes: the poller thread
// publishes a deep copy of the model as an immutable ModelSnapshot, and
// query workers load the current snapshot pointer -- no copy, no torn
// reads.  Readers holding an older snapshot keep it alive through their
// own shared_ptr until they drop it (double-buffered: the store also
// pins the previous snapshot, so the common "one reader still on version
// n-1" case never frees mid-query).
//
// Publication is a pointer swap under a tiny acquire/release spinlock
// rather than std::atomic<shared_ptr>.  That is not a concession:
// libstdc++ implements atomic<shared_ptr> as exactly such a spinlock
// internally, but unlocks reads with a *relaxed* RMW, which leaves the
// reader's critical section unordered against the next writer under the
// ISO memory model -- ThreadSanitizer (correctly) reports it.  Spelling
// the lock out with proper acquire/release costs the same handful of
// instructions and is provably race-free.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <utility>

#include "collector/network_model.hpp"

namespace remos::service {

/// One published view of the network: a deep copy of a collector model,
/// stamped with a monotonically increasing version and the model clock
/// at publication.  Immutable after construction.
struct ModelSnapshot {
  std::uint64_t version = 0;
  /// Model clock (simulated seconds) when this snapshot was taken; the
  /// freshness anchor for the service's staleness SLO.
  Seconds taken_at = 0;
  collector::NetworkModel model;
};

class SnapshotStore {
 public:
  using Ptr = std::shared_ptr<const ModelSnapshot>;

  /// RAII pin on one snapshot version.  While any pin on a version is
  /// alive, acquire(version) keeps resolving it no matter how many
  /// publishes happen in between -- the API a delta encoder uses to hold
  /// its base version against a concurrent publisher.  (A bare Ptr keeps
  /// the *object* alive but the store forgets anything older than
  /// previous(); the pin keeps it *addressable by version* too.)
  /// Movable, not copyable; empty pins are valid and inert.
  class Pin {
   public:
    Pin() = default;
    ~Pin() { release(); }
    Pin(Pin&& other) noexcept { *this = std::move(other); }
    Pin& operator=(Pin&& other) noexcept {
      if (this != &other) {
        release();
        store_ = other.store_;
        snapshot_ = std::move(other.snapshot_);
        other.store_ = nullptr;
        other.snapshot_.reset();
      }
      return *this;
    }
    Pin(const Pin&) = delete;
    Pin& operator=(const Pin&) = delete;

    const Ptr& snapshot() const { return snapshot_; }
    const ModelSnapshot* operator->() const { return snapshot_.get(); }
    explicit operator bool() const { return snapshot_ != nullptr; }

    /// Drops the pin early (idempotent).
    void release();

   private:
    friend class SnapshotStore;
    Pin(SnapshotStore* store, Ptr snapshot)
        : store_(store), snapshot_(std::move(snapshot)) {}
    SnapshotStore* store_ = nullptr;
    Ptr snapshot_;
  };

  /// Pins `version` if the store still retains it: the current snapshot,
  /// the previous one, or any version somebody else holds a pin on.
  /// Returns an empty Pin otherwise (the caller falls back to a full
  /// encode instead of a delta).
  Pin acquire(std::uint64_t version);

  /// Publishes `model` as the new current snapshot and returns it.  The
  /// previously current snapshot stays pinned as previous().  Safe to
  /// call concurrently with any number of readers; publishers are
  /// expected to be serialized (one poller thread).
  Ptr publish(collector::NetworkModel model, Seconds taken_at);

  /// The freshest published snapshot; null until the first publish.
  /// A refcount bump under the spinlock -- the query hot path.
  Ptr current() const;

  /// The snapshot before current (null until the second publish).
  Ptr previous() const;

  /// Version of the current snapshot; 0 before the first publish.
  std::uint64_t version() const {
    return version_.load(std::memory_order_acquire);
  }

 private:
  void lock() const {
    while (lock_.test_and_set(std::memory_order_acquire))
      while (lock_.test(std::memory_order_relaxed)) {
      }
  }
  void unlock() const { lock_.clear(std::memory_order_release); }

  void unpin(std::uint64_t version);

  mutable std::atomic_flag lock_ = ATOMIC_FLAG_INIT;
  Ptr current_;
  Ptr previous_;
  /// version -> {snapshot, live pin count}; entries leave at count 0.
  std::map<std::uint64_t, std::pair<Ptr, std::size_t>> pinned_;
  std::atomic<std::uint64_t> version_{0};
};

}  // namespace remos::service
