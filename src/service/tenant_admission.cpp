#include "service/tenant_admission.hpp"

#include <algorithm>
#include <cmath>

namespace remos::service {

TenantAdmission::TenantAdmission(Options options) : options_(options) {
  if (options_.budget == 0)
    throw InvalidArgument("TenantAdmission: zero budget");
  if (options_.reserved_fraction < 0.0 || options_.reserved_fraction > 1.0)
    throw InvalidArgument("TenantAdmission: reserved_fraction outside [0,1]");
  if (options_.max_tenants == 0)
    throw InvalidArgument("TenantAdmission: zero max_tenants");
  tenants_.reserve(options_.max_tenants);
  budget_.store(options_.budget, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lk(mutex_);
    auto def = std::make_unique<Tenant>();
    def->name = "default";
    def->weight = 1.0;
    tenants_.push_back(std::move(def));
    tenant_count_.store(1, std::memory_order_release);
    recompute_slices();
  }
}

int TenantAdmission::register_tenant(const std::string& name, double weight) {
  if (!(weight > 0.0))
    throw InvalidArgument("TenantAdmission: weight must be positive");
  std::lock_guard<std::mutex> lk(mutex_);
  if (tenants_.size() >= options_.max_tenants)
    throw InvalidArgument("TenantAdmission: max_tenants exhausted");
  auto t = std::make_unique<Tenant>();
  t->name = name;
  t->weight = weight;
  tenants_.push_back(std::move(t));
  const int id = static_cast<int>(tenants_.size() - 1);
  // Publish the new count only after the slot is fully constructed; the
  // vector never reallocates (reserved at max_tenants), so concurrent
  // acquires index safely.
  tenant_count_.store(tenants_.size(), std::memory_order_release);
  recompute_slices();
  return id;
}

TenantAdmission::Tenant& TenantAdmission::slot(int tenant) {
  const std::size_t n = tenant_count_.load(std::memory_order_acquire);
  const std::size_t i = static_cast<std::size_t>(tenant);
  return tenant >= 0 && i < n ? *tenants_[i]
                              : *tenants_[kDefaultTenant];
}

const TenantAdmission::Tenant& TenantAdmission::slot(int tenant) const {
  return const_cast<TenantAdmission*>(this)->slot(tenant);
}

void TenantAdmission::recompute_slices() {
  const std::size_t budget = budget_.load(std::memory_order_acquire);
  const std::size_t n = tenants_.size();
  double total_weight = 0;
  for (const auto& t : tenants_) total_weight += t->weight;
  const double reserved_budget =
      static_cast<double>(budget) * options_.reserved_fraction;
  std::size_t reserved_total = 0;
  for (auto& t : tenants_) {
    // Every tenant keeps at least one guaranteed slot: a starved tenant
    // can always make progress, however small its weight.
    const std::size_t slots = std::max<std::size_t>(
        1, static_cast<std::size_t>(
               std::floor(reserved_budget * t->weight / total_weight)));
    t->reserved_limit.store(slots, std::memory_order_release);
    reserved_total += slots;
  }
  // The minimum-one-slot floor can overshoot a tiny budget; the pool
  // simply collapses to zero then (sum of slices may exceed the budget
  // by at most n-1 -- bounded and documented rather than starving).
  pool_size_.store(reserved_total >= budget ? 0 : budget - reserved_total,
                   std::memory_order_release);
  (void)n;
}

bool TenantAdmission::try_acquire(int tenant) {
  Tenant& t = slot(tenant);
  // Reserved slice first: isolation.
  std::size_t cur = t.reserved_in_use.load(std::memory_order_relaxed);
  while (cur < t.reserved_limit.load(std::memory_order_acquire)) {
    if (t.reserved_in_use.compare_exchange_weak(cur, cur + 1,
                                                std::memory_order_acq_rel,
                                                std::memory_order_relaxed)) {
      note_admitted(t);
      return true;
    }
  }
  // Slice full: borrow a shared-pool slot (work conservation).
  std::size_t pool = pool_in_use_.load(std::memory_order_relaxed);
  while (pool < pool_size_.load(std::memory_order_acquire)) {
    if (pool_in_use_.compare_exchange_weak(pool, pool + 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
      t.borrowed.fetch_add(1, std::memory_order_acq_rel);
      note_admitted(t);
      return true;
    }
  }
  t.shed.fetch_add(1, std::memory_order_relaxed);
  shed_.fetch_add(1, std::memory_order_relaxed);
  return false;
}

void TenantAdmission::note_admitted(Tenant& t) {
  t.admitted.fetch_add(1, std::memory_order_relaxed);
  admitted_.fetch_add(1, std::memory_order_relaxed);
  const std::size_t now =
      in_flight_.fetch_add(1, std::memory_order_acq_rel) + 1;
  std::size_t hw = high_water_.load(std::memory_order_relaxed);
  while (now > hw && !high_water_.compare_exchange_weak(
                         hw, now, std::memory_order_relaxed)) {
  }
}

void TenantAdmission::release(int tenant) {
  Tenant& t = slot(tenant);
  // Return a borrowed pool slot first: the pool is the shared resource,
  // so freeing it early keeps other tenants' borrow path open.  Which
  // physical acquire grabbed which slot does not matter -- per-tenant
  // totals (reserved_in_use + borrowed) are conserved either way.
  std::size_t borrowed = t.borrowed.load(std::memory_order_relaxed);
  while (borrowed > 0 &&
         !t.borrowed.compare_exchange_weak(borrowed, borrowed - 1,
                                           std::memory_order_acq_rel,
                                           std::memory_order_relaxed)) {
  }
  if (borrowed > 0)
    pool_in_use_.fetch_sub(1, std::memory_order_acq_rel);
  else
    t.reserved_in_use.fetch_sub(1, std::memory_order_acq_rel);
  in_flight_.fetch_sub(1, std::memory_order_acq_rel);
}

void TenantAdmission::set_budget(std::size_t budget) {
  if (budget == 0) throw InvalidArgument("TenantAdmission: zero budget");
  std::lock_guard<std::mutex> lk(mutex_);
  budget_.store(budget, std::memory_order_release);
  recompute_slices();
}

TenantAdmission::TenantStats TenantAdmission::tenant_stats(int tenant) const {
  const Tenant& t = slot(tenant);
  TenantStats s;
  s.name = t.name;
  s.weight = t.weight;
  s.reserved_slots = t.reserved_limit.load(std::memory_order_acquire);
  s.in_flight = t.reserved_in_use.load(std::memory_order_relaxed) +
                t.borrowed.load(std::memory_order_relaxed);
  s.admitted = t.admitted.load(std::memory_order_relaxed);
  s.shed = t.shed.load(std::memory_order_relaxed);
  return s;
}

// ---------------------------------------------------------------------------
// AimdController

AimdController::AimdController(Options options,
                               std::chrono::microseconds deadline)
    : options_(options),
      target_p99_(std::chrono::microseconds(static_cast<std::int64_t>(
          static_cast<double>(deadline.count()) * options.target_ratio))) {
  if (options_.min_budget == 0 || options_.max_budget < options_.min_budget)
    throw InvalidArgument("AimdController: degenerate budget bounds");
  if (options_.window == 0)
    throw InvalidArgument("AimdController: zero window");
  if (options_.decrease_factor <= 0.0 || options_.decrease_factor >= 1.0)
    throw InvalidArgument("AimdController: decrease_factor outside (0,1)");
  if (target_p99_.count() <= 0)
    throw InvalidArgument("AimdController: non-positive latency target");
  window_us_.reserve(options_.window);
}

bool AimdController::on_complete(std::chrono::microseconds latency,
                                 TenantAdmission& admission) {
  std::uint64_t p99_us = 0;
  {
    std::lock_guard<std::mutex> lk(mutex_);
    if (!primed_) {
      // Adopt whatever budget the admission layer started with; the
      // controller owns it from here on.
      budget_.store(
          std::clamp(admission.capacity(), options_.min_budget,
                     options_.max_budget),
          std::memory_order_relaxed);
      primed_ = true;
    }
    window_us_.push_back(
        static_cast<std::uint64_t>(std::max<std::int64_t>(0, latency.count())));
    if (window_us_.size() < options_.window) return false;
    const std::size_t idx = static_cast<std::size_t>(
        0.99 * static_cast<double>(window_us_.size()));
    std::nth_element(window_us_.begin(),
                     window_us_.begin() + static_cast<std::ptrdiff_t>(idx),
                     window_us_.end());
    p99_us = window_us_[idx];
    window_us_.clear();
  }

  std::size_t budget = budget_.load(std::memory_order_relaxed);
  if (p99_us > static_cast<std::uint64_t>(target_p99_.count())) {
    budget = std::max(
        options_.min_budget,
        static_cast<std::size_t>(std::floor(
            static_cast<double>(budget) * options_.decrease_factor)));
    decreases_.fetch_add(1, std::memory_order_relaxed);
  } else {
    budget = std::min(options_.max_budget, budget + options_.additive_step);
    increases_.fetch_add(1, std::memory_order_relaxed);
  }
  budget_.store(budget, std::memory_order_relaxed);
  admission.set_budget(budget);
  return true;
}

}  // namespace remos::service
