// Tenant-aware overload control: weighted fair admission over a bounded
// (and adaptively resized) global budget.
//
// The old gate (admission.hpp) bounds *total* queries in flight with one
// counter, so a single hot client saturates the shared queue and every
// other application is shed alongside it -- exactly the failure mode a
// shared Remos Modeler must not have (the paper positions one Modeler
// session in front of many network-aware applications at once).
//
// TenantAdmission divides a global budget B into per-tenant slices:
//
//   reserved_i = max(1, floor(B * reserved_fraction * w_i / sum(w)))
//   shared pool = B - sum(reserved_i)            (work conservation)
//
// A tenant is admitted from its own reserved slice first; when the slice
// is full it may borrow a shared-pool slot; when both are exhausted it
// -- and only it -- is shed.  A tenant offered 10x its weight therefore
// saturates its slice plus the pool, while every other tenant's reserved
// slice stays untouched: isolation by construction, not by scheduling
// luck.  Releases return borrowed pool slots before reserved ones, so
// slot totals are conserved under any acquire/release interleaving.
//
// Hot path is lock-free: per-tenant CAS on the reserved count, CAS on
// the pool count, relaxed counters for monitoring.  Registration and
// budget resizing take a mutex (setup / controller cadence, not per
// query); tenant storage is pre-reserved so registration never moves
// slots under a concurrent acquire.
//
// AimdController closes the loop on the budget itself: additive increase
// while the observed completion p99 sits below its target (a fraction of
// the deadline), multiplicative decrease when the service falls behind --
// the TCP congestion-control idiom applied to a concurrency limit, so
// the cap tracks what the hardware actually sustains instead of a
// hand-tuned constant.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "util/error.hpp"

namespace remos::service {

class TenantAdmission {
 public:
  /// Tenant id 0 is always present (the "default" tenant, weight 1):
  /// callers that never register anything get the old single-gate
  /// behaviour through it.
  static constexpr int kDefaultTenant = 0;

  struct Options {
    /// Global budget: queries in flight (queued + executing) across all
    /// tenants.  Resized at runtime by set_budget (AIMD controller).
    std::size_t budget = 64;
    /// Fraction of the budget partitioned into weighted reserved slices;
    /// the remainder is a shared pool any tenant may borrow from once
    /// its own slice is full.  1.0 = strict partition, 0.0 = the old
    /// single global gate.
    double reserved_fraction = 0.75;
    /// Upper bound on registered tenants (storage is pre-reserved so the
    /// lock-free hot path never races a reallocation).
    std::size_t max_tenants = 64;
  };

  TenantAdmission() : TenantAdmission(Options{}) {}
  explicit TenantAdmission(Options options);

  /// Registers a tenant and returns its id.  Call during setup (before
  /// the query storm); throws when max_tenants is exhausted or the
  /// weight is not positive.  Thread-safe against concurrent acquires.
  int register_tenant(const std::string& name, double weight);

  /// True: admitted (caller must release(tenant) exactly once when the
  /// query leaves).  False: this tenant's slice and the shared pool are
  /// both full -- the query is shed.  Unknown tenant ids fall back to
  /// the default tenant rather than faulting.
  bool try_acquire(int tenant);
  void release(int tenant);

  /// Resizes the global budget and recomputes every reserved slice
  /// (AIMD controller cadence).  In-flight queries above a shrunken
  /// slice drain naturally; no new admissions land until they do.
  void set_budget(std::size_t budget);

  // --- monitoring (AdmissionController-compatible surface) -------------
  std::size_t capacity() const {
    return budget_.load(std::memory_order_acquire);
  }
  std::size_t in_flight() const {
    return in_flight_.load(std::memory_order_relaxed);
  }
  std::size_t high_water() const {
    return high_water_.load(std::memory_order_relaxed);
  }
  std::uint64_t admitted() const {
    return admitted_.load(std::memory_order_relaxed);
  }
  std::uint64_t shed() const { return shed_.load(std::memory_order_relaxed); }

  struct TenantStats {
    std::string name;
    double weight = 1.0;
    std::size_t reserved_slots = 0;
    std::size_t in_flight = 0;
    std::uint64_t admitted = 0;
    std::uint64_t shed = 0;
  };
  std::size_t tenant_count() const {
    return tenant_count_.load(std::memory_order_acquire);
  }
  TenantStats tenant_stats(int tenant) const;
  /// Shared-pool slots currently borrowed / total pool size.
  std::size_t pool_in_use() const {
    return pool_in_use_.load(std::memory_order_relaxed);
  }
  std::size_t pool_size() const {
    return pool_size_.load(std::memory_order_acquire);
  }

 private:
  struct Tenant {
    std::string name;
    double weight = 1.0;
    std::atomic<std::size_t> reserved_limit{0};
    std::atomic<std::size_t> reserved_in_use{0};
    std::atomic<std::size_t> borrowed{0};
    std::atomic<std::uint64_t> admitted{0};
    std::atomic<std::uint64_t> shed{0};
  };

  Tenant& slot(int tenant);
  const Tenant& slot(int tenant) const;
  /// Recomputes reserved slices + pool from budget_ and weights.
  /// Caller holds mutex_.
  void recompute_slices();
  void note_admitted(Tenant& t);

  Options options_;
  std::mutex mutex_;  // registration + budget resize only
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::atomic<std::size_t> tenant_count_{0};

  std::atomic<std::size_t> budget_{0};
  std::atomic<std::size_t> pool_size_{0};
  std::atomic<std::size_t> pool_in_use_{0};

  std::atomic<std::size_t> in_flight_{0};
  std::atomic<std::size_t> high_water_{0};
  std::atomic<std::uint64_t> admitted_{0};
  std::atomic<std::uint64_t> shed_{0};
};

/// Additive-increase / multiplicative-decrease controller for the global
/// admission budget.  Feed it every executed query's completion latency;
/// every `window` completions it compares the window's p99 against
/// `target_ratio * deadline` and grows the budget one additive step
/// (service keeping up: admit more) or shrinks it multiplicatively
/// (falling behind: shed earlier, protect the admitted).
class AimdController {
 public:
  struct Options {
    std::size_t min_budget = 8;
    std::size_t max_budget = 4096;
    std::size_t additive_step = 4;
    double decrease_factor = 0.7;
    /// Completions per control decision.
    std::size_t window = 256;
    /// p99 target as a fraction of the default deadline.
    double target_ratio = 0.5;
  };

  AimdController(Options options, std::chrono::microseconds deadline);

  /// Records one executed query's latency; when a window closes, applies
  /// the control decision to `admission` and returns true.
  bool on_complete(std::chrono::microseconds latency,
                   TenantAdmission& admission);

  std::size_t budget() const {
    return budget_.load(std::memory_order_relaxed);
  }
  std::uint64_t increases() const {
    return increases_.load(std::memory_order_relaxed);
  }
  std::uint64_t decreases() const {
    return decreases_.load(std::memory_order_relaxed);
  }

 private:
  Options options_;
  std::chrono::microseconds target_p99_;
  std::mutex mutex_;  // window buffer; touched once per completion
  std::vector<std::uint64_t> window_us_;
  std::atomic<std::size_t> budget_{0};
  std::atomic<std::uint64_t> increases_{0};
  std::atomic<std::uint64_t> decreases_{0};
  bool primed_ = false;
};

}  // namespace remos::service
