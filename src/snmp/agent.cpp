#include "snmp/agent.hpp"

#include "snmp/codec.hpp"
#include "util/error.hpp"

namespace remos::snmp {

Pdu Agent::handle(const Pdu& request) const {
  Pdu response;
  response.type = PduType::kResponse;
  response.community = request.community;
  response.request_id = request.request_id;

  if (request.community != community_) {
    // Real v2c agents silently drop bad-community requests; we respond
    // with genErr so tests can observe the rejection deterministically.
    response.error_status = ErrorStatus::kGenErr;
    return response;
  }

  switch (request.type) {
    case PduType::kGet:
      for (const VarBind& vb : request.bindings)
        response.bindings.push_back(VarBind{vb.oid, mib_.get(vb.oid)});
      break;
    case PduType::kGetNext:
      for (const VarBind& vb : request.bindings) {
        if (const auto next = mib_.get_next(vb.oid)) {
          response.bindings.push_back(VarBind{next->first, next->second});
        } else {
          response.bindings.push_back(
              VarBind{vb.oid, Value::end_of_mib_view()});
        }
      }
      break;
    case PduType::kSet:
      response.bindings = request.bindings;
      response.error_status = ErrorStatus::kNotWritable;
      response.error_index = request.bindings.empty() ? 0 : 1;
      break;
    case PduType::kResponse:
      response.error_status = ErrorStatus::kGenErr;
      break;
  }
  return response;
}

void Agent::bind(Transport& transport, const std::string& address) {
  transport.bind(address, [this](const std::vector<std::uint8_t>& wire)
                     -> std::optional<std::vector<std::uint8_t>> {
    try {
      return encode(handle(decode(wire)));
    } catch (const ProtocolError&) {
      return std::nullopt;  // malformed datagram: drop, like a UDP agent
    }
  });
}

}  // namespace remos::snmp
