// SNMP agent: serves GET/GETNEXT/SET over a Mib.
//
// One agent runs per managed node (in the paper: each router on the
// testbed).  handle() implements RFC 1905 semantics for the supported
// operations: GET fills noSuchObject per missing binding, GETNEXT walks in
// lexicographic order and marks the end of the view, SET is refused
// (everything Remos reads is read-only instrumentation).
#pragma once

#include <string>

#include "snmp/mib.hpp"
#include "snmp/pdu.hpp"
#include "snmp/transport.hpp"

namespace remos::snmp {

class Agent {
 public:
  /// Agents only answer requests carrying this community string.
  explicit Agent(std::string community = "public")
      : community_(std::move(community)) {}

  Mib& mib() { return mib_; }
  const Mib& mib() const { return mib_; }

  /// Processes one request PDU and produces the response.
  Pdu handle(const Pdu& request) const;

  /// Binds this agent to a transport address (wire-level entry point:
  /// decodes the datagram, handles it, encodes the response).  The agent
  /// must outlive the transport binding.
  void bind(Transport& transport, const std::string& address);

 private:
  std::string community_;
  Mib mib_;
};

}  // namespace remos::snmp
