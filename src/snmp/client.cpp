#include "snmp/client.hpp"

#include <optional>

#include "snmp/codec.hpp"
#include "util/error.hpp"

namespace remos::snmp {

namespace {

/// FNV-1a, so each client's jitter stream is a deterministic function of
/// its agent address (reproducible chaos runs, no shared-RNG coupling).
std::uint64_t address_seed(const std::string& address) {
  std::uint64_t h = 1469598103934665603ULL;
  for (const char c : address) {
    h ^= static_cast<std::uint8_t>(c);
    h *= 1099511628211ULL;
  }
  return h;
}

}  // namespace

ClientObs ClientObs::resolve(const obs::Obs& o) {
  ClientObs c;
  if (o.metrics) {
    c.exchanges = o.metrics->counter("remos_snmp_exchanges_total", {},
                                     "SNMP exchange attempts started");
    c.retries = o.metrics->counter("remos_snmp_retries_total", {},
                                   "SNMP per-exchange retransmissions");
    c.timeouts = o.metrics->counter(
        "remos_snmp_timeouts_total", {},
        "SNMP exchanges that exhausted their retry budget");
    c.garbled = o.metrics->counter(
        "remos_snmp_garbled_total", {},
        "Undecodable or request-id-mismatched SNMP responses");
  }
  c.recorder = o.recorder;
  return c;
}

BreakerBoard::BreakerBoard(Options options) : options_(options) {
  if (options_.failure_threshold < 1)
    throw InvalidArgument("BreakerBoard: failure_threshold < 1");
  if (options_.cooldown < 0)
    throw InvalidArgument("BreakerBoard: negative cooldown");
}

BreakerBoard::State BreakerBoard::state(const std::string& address) const {
  const auto it = entries_.find(address);
  return it == entries_.end() ? State::kClosed : it->second.state;
}

void BreakerBoard::set_obs(const obs::Obs& o) {
  if (o.metrics) {
    open_gauge_ = o.metrics->gauge("remos_snmp_breakers_open", {},
                                   "Agent circuit breakers currently open");
    fast_fail_counter_ =
        o.metrics->counter("remos_snmp_breaker_fast_fail_total", {},
                           "Exchanges rejected by an open breaker");
  }
  recorder_ = o.recorder;
}

void BreakerBoard::note_transition(const std::string& address, State from,
                                   State to, Seconds now) {
  if (from == to) return;
  if (recorder_)
    recorder_->record(to == State::kOpen ? obs::EventSeverity::kWarn
                                         : obs::EventSeverity::kInfo,
                      "snmp", "breaker_transition",
                      address + ": " + obs::to_string(from) + " -> " +
                          obs::to_string(to),
                      now);
  open_gauge_.set(static_cast<double>(open_count()));
}

bool BreakerBoard::admit(const std::string& address, Seconds now,
                         bool* probe) {
  *probe = false;
  Entry& e = entries_[address];
  switch (e.state) {
    case State::kClosed:
      return true;
    case State::kOpen:
      if (now - e.opened_at < options_.cooldown) {
        ++fast_failures_;
        fast_fail_counter_.inc();
        return false;
      }
      e.state = State::kHalfOpen;
      note_transition(address, State::kOpen, State::kHalfOpen, now);
      *probe = true;
      return true;
    case State::kHalfOpen:
      // An unresolved probe (caller aborted mid-exchange); allow another.
      *probe = true;
      return true;
  }
  return true;
}

void BreakerBoard::on_success(const std::string& address) {
  Entry& e = entries_[address];
  const State from = e.state;
  e.state = State::kClosed;
  e.consecutive_failures = 0;
  note_transition(address, from, State::kClosed, -1);
}

void BreakerBoard::on_failure(const std::string& address, Seconds now) {
  Entry& e = entries_[address];
  const State from = e.state;
  ++e.consecutive_failures;
  if (e.state == State::kHalfOpen ||
      e.consecutive_failures >= options_.failure_threshold) {
    e.state = State::kOpen;
    e.opened_at = now;
  }
  note_transition(address, from, e.state, now);
}

std::size_t BreakerBoard::open_count() const {
  std::size_t n = 0;
  for (const auto& [address, e] : entries_)
    if (e.state == State::kOpen) ++n;
  return n;
}

Client::Client(Transport& transport, std::string agent_address,
               std::string community, Config config, BreakerBoard* breakers,
               const ClientObs* client_obs)
    : transport_(&transport),
      address_(std::move(agent_address)),
      community_(std::move(community)),
      config_(config),
      breakers_(breakers),
      obs_(client_obs),
      jitter_rng_(address_seed(address_)) {
  if (config_.max_attempts < 1)
    throw InvalidArgument("Client: max_attempts < 1");
  if (config_.timeout_budget <= 0)
    throw InvalidArgument("Client: timeout_budget <= 0");
}

Pdu Client::exchange(Pdu request) {
  request.community = community_;
  request.request_id = next_request_id_++;

  bool probe = false;
  if (breakers_ && !breakers_->admit(address_, transport_->now(), &probe))
    throw CircuitOpenError("SNMP: circuit open for " + address_);

  if (obs_) obs_->exchanges.inc();
  const auto wire = encode(request);
  const int attempts = probe ? 1 : config_.max_attempts;
  Seconds spent = 0;
  Seconds backoff = config_.base_backoff;
  std::optional<ProtocolError> garbled;  // most recent undecodable answer

  for (int attempt = 0; attempt < attempts; ++attempt) {
    if (attempt > 0) {
      if (obs_) obs_->retries.inc();
      // Exponential backoff with jitter, charged against the budget.
      const Seconds wait =
          backoff * (1.0 + config_.jitter * jitter_rng_.uniform());
      if (spent + wait >= config_.timeout_budget) break;
      spent += wait;
      backoff *= config_.backoff_factor;
    }
    Transport::Attempt result;
    try {
      result = transport_->attempt(address_, wire);
    } catch (const NotFoundError&) {
      // Nothing bound there (agent process gone): resolves the exchange.
      if (breakers_) breakers_->on_failure(address_, transport_->now());
      throw;
    }
    spent += result.latency;
    if (!result.response) {
      if (spent >= config_.timeout_budget) break;
      continue;
    }
    Pdu response;
    try {
      response = decode(*result.response);
    } catch (const ProtocolError& e) {
      garbled = e;  // corrupt datagram: as good as lost, retry
      if (obs_) obs_->garbled.inc();
      continue;
    }
    if (response.type != PduType::kResponse) {
      garbled = ProtocolError("SNMP: non-response PDU from " + address_);
      if (obs_) obs_->garbled.inc();
      continue;
    }
    if (response.request_id != request.request_id) {
      garbled =
          ProtocolError("SNMP: request-id mismatch from " + address_);
      if (obs_) obs_->garbled.inc();
      continue;
    }
    // A decoded, matching response is a definitive answer: the agent is
    // alive even when it reports an error status.
    if (breakers_) breakers_->on_success(address_);
    if (response.error_status != ErrorStatus::kNoError)
      throw ProtocolError("SNMP: agent error status " +
                          std::to_string(static_cast<int>(
                              response.error_status)) +
                          " from " + address_);
    return response;
  }

  if (breakers_) breakers_->on_failure(address_, transport_->now());
  if (garbled) throw *garbled;
  if (obs_) obs_->timeouts.inc();
  throw TimeoutError("SNMP: no response from " + address_ + " within " +
                     std::to_string(config_.timeout_budget) + "s budget");
}

Value Client::get(const Oid& oid) {
  Pdu request;
  request.type = PduType::kGet;
  request.bindings.push_back(VarBind{oid, Value::null()});
  const Pdu response = exchange(std::move(request));
  if (response.bindings.size() != 1)
    throw ProtocolError("SNMP: wrong varbind count in GET response");
  const Value& v = response.bindings[0].value;
  if (v.type() == ValueType::kNoSuchObject)
    throw NotFoundError("SNMP: " + oid.to_string() + " not in " + address_);
  return v;
}

std::vector<VarBind> Client::get_many(const std::vector<Oid>& oids) {
  Pdu request;
  request.type = PduType::kGet;
  for (const Oid& oid : oids)
    request.bindings.push_back(VarBind{oid, Value::null()});
  Pdu response = exchange(std::move(request));
  if (response.bindings.size() != oids.size())
    throw ProtocolError("SNMP: wrong varbind count in GET response");
  return std::move(response.bindings);
}

VarBind Client::get_next(const Oid& oid) {
  Pdu request;
  request.type = PduType::kGetNext;
  request.bindings.push_back(VarBind{oid, Value::null()});
  Pdu response = exchange(std::move(request));
  if (response.bindings.size() != 1)
    throw ProtocolError("SNMP: wrong varbind count in GETNEXT response");
  return std::move(response.bindings[0]);
}

std::vector<VarBind> Client::walk(const Oid& prefix) {
  std::vector<VarBind> out;
  Oid cursor = prefix;
  for (std::size_t steps = 0;; ++steps) {
    if (steps >= config_.max_walk_steps)
      throw ProtocolError("SNMP: walk exceeded " +
                          std::to_string(config_.max_walk_steps) +
                          " steps under " + prefix.to_string() +
                          " (looping agent?)");
    VarBind vb = get_next(cursor);
    if (vb.value.type() == ValueType::kEndOfMibView) break;
    if (!vb.oid.starts_with(prefix)) break;  // left the subtree
    if (!out.empty() && vb.oid <= out.back().oid)
      throw ProtocolError("SNMP: walk did not advance (agent bug?)");
    cursor = vb.oid;
    out.push_back(std::move(vb));
  }
  return out;
}

}  // namespace remos::snmp
