#include "snmp/client.hpp"

#include "snmp/codec.hpp"
#include "util/error.hpp"

namespace remos::snmp {

Client::Client(Transport& transport, std::string agent_address,
               std::string community)
    : transport_(&transport),
      address_(std::move(agent_address)),
      community_(std::move(community)) {}

Pdu Client::exchange(Pdu request) {
  request.community = community_;
  request.request_id = next_request_id_++;
  const auto wire = transport_->request(address_, encode(request));
  if (!wire)
    throw TimeoutError("SNMP: no response from " + address_);
  Pdu response = decode(*wire);
  if (response.type != PduType::kResponse)
    throw ProtocolError("SNMP: non-response PDU from " + address_);
  if (response.request_id != request.request_id)
    throw ProtocolError("SNMP: request-id mismatch from " + address_);
  if (response.error_status != ErrorStatus::kNoError)
    throw ProtocolError("SNMP: agent error status " +
                        std::to_string(static_cast<int>(
                            response.error_status)) +
                        " from " + address_);
  return response;
}

Value Client::get(const Oid& oid) {
  Pdu request;
  request.type = PduType::kGet;
  request.bindings.push_back(VarBind{oid, Value::null()});
  const Pdu response = exchange(std::move(request));
  if (response.bindings.size() != 1)
    throw ProtocolError("SNMP: wrong varbind count in GET response");
  const Value& v = response.bindings[0].value;
  if (v.type() == ValueType::kNoSuchObject)
    throw NotFoundError("SNMP: " + oid.to_string() + " not in " + address_);
  return v;
}

std::vector<VarBind> Client::get_many(const std::vector<Oid>& oids) {
  Pdu request;
  request.type = PduType::kGet;
  for (const Oid& oid : oids)
    request.bindings.push_back(VarBind{oid, Value::null()});
  Pdu response = exchange(std::move(request));
  if (response.bindings.size() != oids.size())
    throw ProtocolError("SNMP: wrong varbind count in GET response");
  return std::move(response.bindings);
}

VarBind Client::get_next(const Oid& oid) {
  Pdu request;
  request.type = PduType::kGetNext;
  request.bindings.push_back(VarBind{oid, Value::null()});
  Pdu response = exchange(std::move(request));
  if (response.bindings.size() != 1)
    throw ProtocolError("SNMP: wrong varbind count in GETNEXT response");
  return std::move(response.bindings[0]);
}

std::vector<VarBind> Client::walk(const Oid& prefix) {
  std::vector<VarBind> out;
  Oid cursor = prefix;
  while (true) {
    VarBind vb = get_next(cursor);
    if (vb.value.type() == ValueType::kEndOfMibView) break;
    if (!vb.oid.starts_with(prefix)) break;  // left the subtree
    if (!out.empty() && vb.oid <= out.back().oid)
      throw ProtocolError("SNMP: walk did not advance (agent bug?)");
    cursor = vb.oid;
    out.push_back(std::move(vb));
  }
  return out;
}

}  // namespace remos::snmp
