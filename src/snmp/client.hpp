// SNMP client: typed GET/GETNEXT/walk over a Transport.
//
// This is the collector's only channel to the network -- it never touches
// simulator state directly, mirroring the paper's architecture where the
// Collector speaks SNMP to routers it does not control.
//
// Failure policy: each exchange retries under a simulated-time budget
// with exponential backoff plus deterministic jitter; garbled responses
// (undecodable datagrams, stale request-ids) count as loss and are
// retried, while definitive agent answers (error-status, noSuchObject)
// are surfaced immediately.  An optional per-agent circuit breaker
// (BreakerBoard, shared across the short-lived Client instances a
// collector creates) fast-fails exchanges to an agent that keeps timing
// out, so a dead router costs O(1) datagrams per poll cycle instead of a
// retry storm, and probes it again after a cooldown (closed -> open ->
// half-open).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "obs/obs.hpp"
#include "snmp/pdu.hpp"
#include "snmp/transport.hpp"
#include "util/rng.hpp"

namespace remos::snmp {

/// Pre-resolved observability handles shared by every Client a collector
/// creates (clients are short-lived; resolving per-client would hit the
/// registry mutex on every exchange batch).  All handles are optional
/// no-op sinks until resolve() is called with a live registry.
struct ClientObs {
  obs::Counter exchanges;      // exchange attempts started
  obs::Counter retries;        // per-exchange retransmissions
  obs::Counter timeouts;       // exchanges that exhausted their budget
  obs::Counter garbled;        // undecodable / mismatched responses
  obs::FlightRecorder* recorder = nullptr;

  static ClientObs resolve(const obs::Obs& o);
};

/// Per-agent circuit breakers, keyed by transport address.  One board is
/// shared by every Client a collector creates, so breaker state survives
/// the clients themselves.  Single-threaded, like the rest of the stack.
class BreakerBoard {
 public:
  using State = obs::BreakerState;  // shared vocabulary (obs/status.hpp)

  struct Options {
    /// Consecutive exchange failures that open the breaker.
    int failure_threshold = 3;
    /// Time (transport clock) an open breaker waits before allowing one
    /// half-open probe exchange.
    Seconds cooldown = 5.0;
  };

  BreakerBoard() = default;
  explicit BreakerBoard(Options options);

  /// kClosed for addresses never seen.
  State state(const std::string& address) const;

  /// May this exchange proceed?  Sets *probe when it is a half-open
  /// probe (callers should spend at most one attempt on probes).
  bool admit(const std::string& address, Seconds now, bool* probe);

  void on_success(const std::string& address);
  void on_failure(const std::string& address, Seconds now);

  /// Exchanges rejected without touching the wire.
  std::uint64_t fast_failures() const { return fast_failures_; }
  /// Addresses whose breaker is currently open.
  std::size_t open_count() const;

  /// Wires metrics (open-breaker gauge, fast-fail counter) and recorder
  /// events (every state transition) into this board.
  void set_obs(const obs::Obs& o);

 private:
  void note_transition(const std::string& address, State from, State to,
                       Seconds now);

  struct Entry {
    State state = State::kClosed;
    int consecutive_failures = 0;
    Seconds opened_at = 0;
  };

  Options options_;
  std::map<std::string, Entry> entries_;
  std::uint64_t fast_failures_ = 0;
  obs::Gauge open_gauge_;
  obs::Counter fast_fail_counter_;
  obs::FlightRecorder* recorder_ = nullptr;
};

class Client {
 public:
  struct Config {
    /// Attempts per exchange (1 try + retries); half-open probes use 1.
    int max_attempts = 4;
    /// Simulated-time budget per exchange: attempts stop once their
    /// cumulative latency (RTTs + backoff waits) would exceed it.
    Seconds timeout_budget = 0.5;
    /// First retry backoff; doubles (backoff_factor) per retry.
    Seconds base_backoff = 0.01;
    double backoff_factor = 2.0;
    /// Uniform jitter fraction added to each backoff wait.
    double jitter = 0.25;
    /// GETNEXT steps walk() tolerates before declaring the agent's MIB
    /// faulty (a looping agent must not hang the collector).
    std::size_t max_walk_steps = 4096;
  };

  Client(Transport& transport, std::string agent_address,
         std::string community, Config config,
         BreakerBoard* breakers = nullptr,
         const ClientObs* client_obs = nullptr);
  Client(Transport& transport, std::string agent_address,
         std::string community = "public")
      : Client(transport, std::move(agent_address), std::move(community),
               Config{}, nullptr) {}

  /// GET of a single object; throws TimeoutError if the agent never
  /// answers (CircuitOpenError when fast-failed by the breaker),
  /// ProtocolError on a broken response, NotFoundError if the agent
  /// reports noSuchObject.
  Value get(const Oid& oid);

  /// GET of several objects in one PDU (one round-trip).
  std::vector<VarBind> get_many(const std::vector<Oid>& oids);

  /// Raw GETNEXT step.
  VarBind get_next(const Oid& oid);

  /// Walks the subtree under `prefix` via repeated GETNEXT.  Throws
  /// ProtocolError if the agent fails to advance or the walk exceeds
  /// Config::max_walk_steps.
  std::vector<VarBind> walk(const Oid& prefix);

  const std::string& address() const { return address_; }

 private:
  Pdu exchange(Pdu request);

  Transport* transport_;
  std::string address_;
  std::string community_;
  Config config_;
  BreakerBoard* breakers_;
  const ClientObs* obs_;  // nullable; handles inside are no-op when unset
  Rng jitter_rng_;
  std::int32_t next_request_id_ = 1;
};

}  // namespace remos::snmp
