// SNMP client: typed GET/GETNEXT/walk over a Transport.
//
// This is the collector's only channel to the network -- it never touches
// simulator state directly, mirroring the paper's architecture where the
// Collector speaks SNMP to routers it does not control.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snmp/pdu.hpp"
#include "snmp/transport.hpp"

namespace remos::snmp {

class Client {
 public:
  Client(Transport& transport, std::string agent_address,
         std::string community = "public");

  /// GET of a single object; throws TimeoutError if the agent never
  /// answers, ProtocolError on a broken response, NotFoundError if the
  /// agent reports noSuchObject.
  Value get(const Oid& oid);

  /// GET of several objects in one PDU (one round-trip).
  std::vector<VarBind> get_many(const std::vector<Oid>& oids);

  /// Raw GETNEXT step.
  VarBind get_next(const Oid& oid);

  /// Walks the subtree under `prefix` via repeated GETNEXT.
  std::vector<VarBind> walk(const Oid& prefix);

  const std::string& address() const { return address_; }

 private:
  Pdu exchange(Pdu request);

  Transport* transport_;
  std::string address_;
  std::string community_;
  std::int32_t next_request_id_ = 1;
};

}  // namespace remos::snmp
