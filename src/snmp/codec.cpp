#include "snmp/codec.hpp"

#include <limits>

#include "util/error.hpp"

namespace remos::snmp {

namespace {

// BER universal tags and SNMP application/context tags.
constexpr std::uint8_t kTagInteger = 0x02;
constexpr std::uint8_t kTagOctetString = 0x04;
constexpr std::uint8_t kTagNull = 0x05;
constexpr std::uint8_t kTagOid = 0x06;
constexpr std::uint8_t kTagSequence = 0x30;
constexpr std::uint8_t kTagCounter32 = 0x41;
constexpr std::uint8_t kTagGauge32 = 0x42;
constexpr std::uint8_t kTagTimeTicks = 0x43;
constexpr std::uint8_t kTagNoSuchObject = 0x80;
constexpr std::uint8_t kTagEndOfMibView = 0x82;
constexpr std::uint8_t kTagPduBase = 0xA0;  // + PduType
constexpr std::int64_t kSnmpVersion2c = 1;

using Bytes = std::vector<std::uint8_t>;

// ---------- encoding ----------

void put_length(Bytes& out, std::size_t len) {
  if (len < 0x80) {
    out.push_back(static_cast<std::uint8_t>(len));
    return;
  }
  Bytes digits;
  while (len > 0) {
    digits.push_back(static_cast<std::uint8_t>(len & 0xFF));
    len >>= 8;
  }
  out.push_back(static_cast<std::uint8_t>(0x80 | digits.size()));
  for (auto it = digits.rbegin(); it != digits.rend(); ++it)
    out.push_back(*it);
}

void put_tlv(Bytes& out, std::uint8_t tag, const Bytes& content) {
  out.push_back(tag);
  put_length(out, content.size());
  out.insert(out.end(), content.begin(), content.end());
}

Bytes encode_integer_content(std::int64_t v) {
  // Minimal-length two's complement.
  Bytes digits;
  while (true) {
    digits.push_back(static_cast<std::uint8_t>(v & 0xFF));
    const std::int64_t rest = v >> 8;
    const bool sign_ok = (rest == 0 && !(digits.back() & 0x80)) ||
                         (rest == -1 && (digits.back() & 0x80));
    if (sign_ok) break;
    v = rest;
  }
  return Bytes(digits.rbegin(), digits.rend());
}

void put_integer(Bytes& out, std::uint8_t tag, std::int64_t v) {
  put_tlv(out, tag, encode_integer_content(v));
}

void put_unsigned(Bytes& out, std::uint8_t tag, std::uint32_t v) {
  // Counter32/Gauge32/TimeTicks are encoded as unsigned: prepend a zero
  // octet if the leading bit would read as a sign.
  Bytes digits;
  std::uint64_t x = v;
  do {
    digits.push_back(static_cast<std::uint8_t>(x & 0xFF));
    x >>= 8;
  } while (x > 0);
  if (digits.back() & 0x80) digits.push_back(0x00);
  put_tlv(out, tag, Bytes(digits.rbegin(), digits.rend()));
}

Bytes encode_oid_content(const Oid& oid) {
  if (oid.size() < 2)
    throw ProtocolError("encode: OID needs at least two arcs");
  if (oid[0] > 2 || oid[1] >= 40)
    throw ProtocolError("encode: first two OID arcs out of range");
  Bytes out;
  out.push_back(static_cast<std::uint8_t>(oid[0] * 40 + oid[1]));
  for (std::size_t i = 2; i < oid.size(); ++i) {
    std::uint32_t arc = oid[i];
    Bytes groups;
    do {
      groups.push_back(static_cast<std::uint8_t>(arc & 0x7F));
      arc >>= 7;
    } while (arc > 0);
    for (std::size_t j = groups.size(); j-- > 1;)
      out.push_back(static_cast<std::uint8_t>(groups[j] | 0x80));
    out.push_back(groups[0]);
  }
  return out;
}

void put_value(Bytes& out, const Value& value) {
  switch (value.type()) {
    case ValueType::kNull:
      put_tlv(out, kTagNull, {});
      break;
    case ValueType::kInteger:
      put_integer(out, kTagInteger, value.as_integer());
      break;
    case ValueType::kCounter32:
      put_unsigned(out, kTagCounter32, value.as_counter32());
      break;
    case ValueType::kGauge32:
      put_unsigned(out, kTagGauge32, value.as_gauge32());
      break;
    case ValueType::kTimeTicks:
      put_unsigned(out, kTagTimeTicks, value.as_time_ticks());
      break;
    case ValueType::kOctetString: {
      const std::string& s = value.as_octets();
      put_tlv(out, kTagOctetString, Bytes(s.begin(), s.end()));
      break;
    }
    case ValueType::kObjectId:
      put_tlv(out, kTagOid, encode_oid_content(value.as_object_id()));
      break;
    case ValueType::kNoSuchObject:
      put_tlv(out, kTagNoSuchObject, {});
      break;
    case ValueType::kEndOfMibView:
      put_tlv(out, kTagEndOfMibView, {});
      break;
  }
}

// ---------- decoding ----------

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  bool done() const { return pos_ >= data_.size(); }

  std::uint8_t peek_tag() const {
    require(1);
    return data_[pos_];
  }

  /// Reads one TLV header; returns (tag, content reader) and advances
  /// past the whole element.
  std::pair<std::uint8_t, Reader> read_tlv() {
    require(1);
    const std::uint8_t tag = data_[pos_++];
    const std::size_t len = read_length();
    require(len);
    Reader content(data_.subspan(pos_, len));
    pos_ += len;
    return {tag, content};
  }

  Reader expect(std::uint8_t tag) {
    auto [got, content] = read_tlv();
    if (got != tag)
      throw ProtocolError("decode: expected tag " + std::to_string(tag) +
                          ", got " + std::to_string(got));
    return content;
  }

  std::int64_t read_integer(std::uint8_t tag = kTagInteger) {
    Reader c = expect(tag);
    if (c.data_.empty()) throw ProtocolError("decode: empty INTEGER");
    if (c.data_.size() > 8) throw ProtocolError("decode: INTEGER too wide");
    std::int64_t v = (c.data_[0] & 0x80) ? -1 : 0;
    for (std::uint8_t byte : c.data_) v = (v << 8) | byte;
    return v;
  }

  std::uint32_t read_unsigned(std::uint8_t tag) {
    Reader c = expect(tag);
    if (c.data_.empty()) throw ProtocolError("decode: empty unsigned");
    if (c.data_.size() > 5 || (c.data_.size() == 5 && c.data_[0] != 0))
      throw ProtocolError("decode: unsigned too wide");
    std::uint64_t v = 0;
    for (std::uint8_t byte : c.data_) v = (v << 8) | byte;
    if (v > std::numeric_limits<std::uint32_t>::max())
      throw ProtocolError("decode: unsigned exceeds 32 bits");
    return static_cast<std::uint32_t>(v);
  }

  std::string read_octets() {
    Reader c = expect(kTagOctetString);
    return std::string(c.data_.begin(), c.data_.end());
  }

  Oid read_oid() {
    Reader c = expect(kTagOid);
    if (c.data_.empty()) throw ProtocolError("decode: empty OID");
    std::vector<std::uint32_t> arcs;
    arcs.push_back(c.data_[0] / 40);
    arcs.push_back(c.data_[0] % 40);
    std::uint64_t arc = 0;
    bool in_progress = false;
    for (std::size_t i = 1; i < c.data_.size(); ++i) {
      const std::uint8_t byte = c.data_[i];
      arc = (arc << 7) | (byte & 0x7F);
      if (arc > std::numeric_limits<std::uint32_t>::max())
        throw ProtocolError("decode: OID arc overflow");
      if (byte & 0x80) {
        in_progress = true;
      } else {
        arcs.push_back(static_cast<std::uint32_t>(arc));
        arc = 0;
        in_progress = false;
      }
    }
    if (in_progress) throw ProtocolError("decode: truncated OID arc");
    return Oid(std::move(arcs));
  }

  Value read_value() {
    const std::uint8_t tag = peek_tag();
    switch (tag) {
      case kTagNull:
        expect(kTagNull);
        return Value::null();
      case kTagInteger:
        return Value::integer(read_integer());
      case kTagCounter32:
        return Value::counter32(read_unsigned(kTagCounter32));
      case kTagGauge32:
        return Value::gauge32(read_unsigned(kTagGauge32));
      case kTagTimeTicks:
        return Value::time_ticks(read_unsigned(kTagTimeTicks));
      case kTagOctetString:
        return Value::octets(read_octets());
      case kTagOid:
        return Value::object_id(read_oid());
      case kTagNoSuchObject:
        expect(kTagNoSuchObject);
        return Value::no_such_object();
      case kTagEndOfMibView:
        expect(kTagEndOfMibView);
        return Value::end_of_mib_view();
      default:
        throw ProtocolError("decode: unknown value tag " +
                            std::to_string(tag));
    }
  }

  void expect_done() const {
    if (!done()) throw ProtocolError("decode: trailing bytes");
  }

 private:
  std::size_t read_length() {
    require(1);
    const std::uint8_t first = data_[pos_++];
    if (!(first & 0x80)) return first;
    const std::size_t n = first & 0x7F;
    if (n == 0 || n > 4)
      throw ProtocolError("decode: unsupported length-of-length");
    require(n);
    std::size_t len = 0;
    for (std::size_t i = 0; i < n; ++i) len = (len << 8) | data_[pos_++];
    return len;
  }

  void require(std::size_t n) const {
    if (pos_ + n > data_.size())
      throw ProtocolError("decode: truncated message");
  }

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace

std::vector<std::uint8_t> encode(const Pdu& pdu) {
  Bytes varbinds;
  for (const VarBind& vb : pdu.bindings) {
    Bytes one;
    put_tlv(one, kTagOid, encode_oid_content(vb.oid));
    put_value(one, vb.value);
    put_tlv(varbinds, kTagSequence, one);
  }

  Bytes body;
  put_integer(body, kTagInteger, pdu.request_id);
  put_integer(body, kTagInteger,
              static_cast<std::int64_t>(pdu.error_status));
  put_integer(body, kTagInteger, pdu.error_index);
  put_tlv(body, kTagSequence, varbinds);

  Bytes message;
  put_integer(message, kTagInteger, kSnmpVersion2c);
  put_tlv(message, kTagOctetString,
          Bytes(pdu.community.begin(), pdu.community.end()));
  put_tlv(message,
          static_cast<std::uint8_t>(kTagPduBase +
                                    static_cast<std::uint8_t>(pdu.type)),
          body);

  Bytes wire;
  put_tlv(wire, kTagSequence, message);
  return wire;
}

Pdu decode(std::span<const std::uint8_t> wire) {
  Reader top(wire);
  Reader message = top.expect(kTagSequence);
  top.expect_done();

  const std::int64_t version = message.read_integer();
  if (version != kSnmpVersion2c)
    throw ProtocolError("decode: unsupported SNMP version " +
                        std::to_string(version));

  Pdu pdu;
  pdu.community = message.read_octets();

  auto [pdu_tag, body] = message.read_tlv();
  message.expect_done();
  if (pdu_tag < kTagPduBase || pdu_tag > kTagPduBase + 3)
    throw ProtocolError("decode: unknown PDU tag " + std::to_string(pdu_tag));
  pdu.type = static_cast<PduType>(pdu_tag - kTagPduBase);

  pdu.request_id = static_cast<std::int32_t>(body.read_integer());
  pdu.error_status = static_cast<ErrorStatus>(body.read_integer());
  pdu.error_index = static_cast<std::int32_t>(body.read_integer());

  Reader varbinds = body.expect(kTagSequence);
  body.expect_done();
  while (!varbinds.done()) {
    Reader vb = varbinds.expect(kTagSequence);
    VarBind binding;
    binding.oid = vb.read_oid();
    binding.value = vb.read_value();
    vb.expect_done();
    pdu.bindings.push_back(std::move(binding));
  }
  return pdu;
}

}  // namespace remos::snmp
