// BER wire codec for the SNMP message subset.
//
// Messages are encoded as in SNMPv2c over UDP: a SEQUENCE of version,
// community and a context-tagged PDU, with TLV (tag/length/value) framing,
// definite lengths (short and long form), base-128 OID arcs and
// minimal-length two's-complement INTEGERs.  decode() rejects malformed
// input with ProtocolError -- truncation, trailing garbage, bad tags and
// over-long lengths are all detected (and unit-tested), because the
// collector must survive a lossy datagram transport.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "snmp/pdu.hpp"

namespace remos::snmp {

/// Serializes a message to wire bytes.
std::vector<std::uint8_t> encode(const Pdu& pdu);

/// Parses wire bytes; throws ProtocolError on any malformation.
Pdu decode(std::span<const std::uint8_t> wire);

}  // namespace remos::snmp
