#include "snmp/fault_injector.hpp"

#include <algorithm>

#include "snmp/codec.hpp"
#include "util/error.hpp"

namespace remos::snmp {

FaultInjector::FaultInjector(std::uint64_t seed) : rng_(seed) {}

void FaultInjector::loss_burst(Window window, double probability,
                               std::string address) {
  if (probability < 0 || probability > 1.0)
    throw InvalidArgument("FaultInjector: loss probability outside [0,1]");
  loss_bursts_.push_back({window, probability, std::move(address)});
}

void FaultInjector::latency_spike(Window window, Seconds extra,
                                  std::string address) {
  if (extra < 0)
    throw InvalidArgument("FaultInjector: negative latency spike");
  latency_spikes_.push_back({window, extra, std::move(address)});
}

void FaultInjector::crash(std::string address, Window window) {
  if (address.empty())
    throw InvalidArgument("FaultInjector: crash needs a concrete address");
  // A reboot re-bases the agent's counters; register the reset at the
  // restart instant (a never-ending crash never restarts).
  if (window.until < std::numeric_limits<double>::infinity())
    counter_reset(address, window.until);
  crashes_.push_back({std::move(address), window});
}

void FaultInjector::corrupt(Window window, double probability,
                            std::string address) {
  if (probability < 0 || probability > 1.0)
    throw InvalidArgument("FaultInjector: corrupt probability outside [0,1]");
  corruptions_.push_back({window, probability, std::move(address)});
}

void FaultInjector::truncate(Window window, double probability,
                             std::string address) {
  if (probability < 0 || probability > 1.0)
    throw InvalidArgument(
        "FaultInjector: truncate probability outside [0,1]");
  truncations_.push_back({window, probability, std::move(address)});
}

void FaultInjector::counter_reset(std::string address, Seconds at) {
  if (address.empty())
    throw InvalidArgument(
        "FaultInjector: counter_reset needs a concrete address");
  resets_[std::move(address)].push_back(CounterReset{at, {}});
}

void FaultInjector::stick_counters(std::string address, Window window) {
  if (address.empty())
    throw InvalidArgument(
        "FaultInjector: stick_counters needs a concrete address");
  sticks_[std::move(address)].push_back(CounterStick{window, {}});
}

bool FaultInjector::agent_down(const std::string& address,
                               Seconds now) const {
  for (const Crash& c : crashes_)
    if (c.address == address && c.window.contains(now)) return true;
  return false;
}

bool FaultInjector::drop_request(const std::string& address, Seconds now) {
  for (const LossBurst& b : loss_bursts_) {
    if (!matches(b.address, address) || !b.window.contains(now)) continue;
    if (rng_.chance(b.probability)) {
      ++faults_injected_;
      return true;
    }
  }
  return false;
}

bool FaultInjector::drop_response(const std::string& address, Seconds now) {
  // Bursts hit both directions independently, like real congestion.
  return drop_request(address, now);
}

Seconds FaultInjector::extra_latency(const std::string& address,
                                     Seconds now) const {
  Seconds extra = 0;
  for (const LatencySpike& s : latency_spikes_)
    if (matches(s.address, address) && s.window.contains(now))
      extra += s.extra;
  return extra;
}

bool FaultInjector::roll_windows(const std::vector<Mutation>& faults,
                                 const std::string& address, Seconds now) {
  for (const Mutation& m : faults) {
    if (!matches(m.address, address) || !m.window.contains(now)) continue;
    if (rng_.chance(m.probability)) return true;
  }
  return false;
}

std::vector<std::uint8_t> FaultInjector::mutate_response(
    const std::string& address, Seconds now, std::vector<std::uint8_t> wire) {
  // 1. Counter faults rewrite the decoded PDU, so they always produce a
  // syntactically valid datagram carrying semantically wrong values --
  // the hardest case for the collector.
  const auto stick_it = sticks_.find(address);
  const auto reset_it = resets_.find(address);
  CounterStick* stick = nullptr;
  if (stick_it != sticks_.end())
    for (CounterStick& s : stick_it->second)
      if (s.window.contains(now)) stick = &s;
  CounterReset* reset = nullptr;
  if (reset_it != resets_.end())
    for (CounterReset& r : reset_it->second)
      if (r.at <= now) reset = &r;  // latest reset wins (list is in order)
  if (stick != nullptr || reset != nullptr) {
    try {
      Pdu pdu = decode(wire);
      bool changed = false;
      for (VarBind& vb : pdu.bindings) {
        if (stick != nullptr && vb.value.type() == ValueType::kCounter32) {
          const auto [it, first] =
              stick->frozen.try_emplace(vb.oid, vb.value.as_counter32());
          if (!first) vb.value = Value::counter32(it->second);
          changed = true;
          continue;
        }
        if (reset == nullptr) continue;
        if (vb.value.type() == ValueType::kCounter32) {
          const auto [it, _] =
              reset->baseline.try_emplace(vb.oid, vb.value.as_counter32());
          vb.value =
              Value::counter32(vb.value.as_counter32() - it->second);
          changed = true;
        } else if (vb.value.type() == ValueType::kTimeTicks) {
          const auto [it, _] =
              reset->baseline.try_emplace(vb.oid, vb.value.as_time_ticks());
          vb.value =
              Value::time_ticks(vb.value.as_time_ticks() - it->second);
          changed = true;
        }
      }
      if (changed) {
        ++faults_injected_;
        wire = encode(pdu);
      }
    } catch (const ProtocolError&) {
      // Not a decodable PDU (already mangled); leave as-is.
    }
  }

  // 2. Byte-level damage on the encoded form.
  if (!wire.empty() && roll_windows(corruptions_, address, now)) {
    ++faults_injected_;
    const std::size_t index = rng_.below(wire.size());
    std::uint8_t flip = 0;
    while (flip == 0) flip = static_cast<std::uint8_t>(rng_.below(256));
    wire[index] ^= flip;
  }
  if (!wire.empty() && roll_windows(truncations_, address, now)) {
    ++faults_injected_;
    wire.resize(rng_.below(wire.size()));  // keep [0, size) bytes
  }
  return wire;
}

}  // namespace remos::snmp
