// Scriptable fault injection for the management plane.
//
// A FaultInjector attaches to a Transport and perturbs exchanges
// according to a schedule of time-windowed faults, so that every chaos
// scenario the collector must survive -- loss bursts, latency spikes,
// agent crashes and restarts, garbled datagrams, stuck or reset MIB
// counters -- can be reproduced deterministically from a seed.  The
// injector sits strictly at the transport boundary: agents and the
// simulator are never aware of it, which mirrors how real failures look
// to a management station (the router does not announce that it is about
// to reboot).
//
// Counter faults are implemented by rewriting response PDUs in flight:
// a "reset" re-bases every Counter32/TimeTicks value of an address to
// zero from the reset instant (exactly what an agent restart does to its
// ifTable), and a "stick" freezes Counter32 values for the window (a
// wedged line card).  Both therefore exercise the collector's delta
// plausibility logic over the real wire encoding.
#pragma once

#include <cstdint>
#include <limits>
#include <map>
#include <string>
#include <vector>

#include "snmp/oid.hpp"
#include "util/rng.hpp"
#include "util/units.hpp"

namespace remos::snmp {

class FaultInjector {
 public:
  /// Half-open time window [from, until) on the transport's clock.
  struct Window {
    Seconds from = 0;
    Seconds until = std::numeric_limits<double>::infinity();

    bool contains(Seconds t) const { return t >= from && t < until; }
  };

  explicit FaultInjector(std::uint64_t seed = 0xFA017);

  // --- scripting -------------------------------------------------------
  // An empty `address` targets every agent.  Faults compose: a datagram
  // may survive a loss burst only to be corrupted.

  /// Extra per-datagram loss probability while the window is active.
  void loss_burst(Window window, double probability,
                  std::string address = "");

  /// Extra per-attempt round-trip latency while the window is active
  /// (consumes the client's per-exchange timeout budget).
  void latency_spike(Window window, Seconds extra, std::string address = "");

  /// Agent down for the whole window; on restart its counters and uptime
  /// re-base to zero, like a real reboot.
  void crash(std::string address, Window window);

  /// Probability that a response datagram gets one byte flipped.
  void corrupt(Window window, double probability, std::string address = "");

  /// Probability that a response datagram loses a suffix.
  void truncate(Window window, double probability, std::string address = "");

  /// Counter discontinuity without downtime (e.g. an snmpd restart):
  /// Counter32/TimeTicks values from `address` re-base to zero at `at`.
  void counter_reset(std::string address, Seconds at);

  /// Counter32 values from `address` freeze for the window (wedged
  /// line-card firmware); on thaw they jump forward.
  void stick_counters(std::string address, Window window);

  // --- hooks (called by Transport with its clock) ----------------------

  bool agent_down(const std::string& address, Seconds now) const;
  bool drop_request(const std::string& address, Seconds now);
  bool drop_response(const std::string& address, Seconds now);
  Seconds extra_latency(const std::string& address, Seconds now) const;

  /// Applies counter rewrites, corruption and truncation; returns the
  /// datagram to deliver (possibly unchanged).
  std::vector<std::uint8_t> mutate_response(const std::string& address,
                                            Seconds now,
                                            std::vector<std::uint8_t> wire);

  /// Total faults realized (dropped, delayed datagrams excluded; counts
  /// mutations and scheduled-drop hits) -- for test introspection.
  std::uint64_t faults_injected() const { return faults_injected_; }

 private:
  struct LossBurst {
    Window window;
    double probability;
    std::string address;
  };
  struct LatencySpike {
    Window window;
    Seconds extra;
    std::string address;
  };
  struct Crash {
    std::string address;
    Window window;
  };
  struct Mutation {
    Window window;
    double probability;
    std::string address;
  };
  struct CounterReset {
    Seconds at;
    /// First value seen at/after `at`, per OID: the re-base point.
    std::map<Oid, std::uint32_t> baseline;
  };
  struct CounterStick {
    Window window;
    std::map<Oid, std::uint32_t> frozen;
  };

  bool matches(const std::string& filter, const std::string& address) const {
    return filter.empty() || filter == address;
  }
  bool roll_windows(const std::vector<Mutation>& faults,
                    const std::string& address, Seconds now);

  Rng rng_;
  std::vector<LossBurst> loss_bursts_;
  std::vector<LatencySpike> latency_spikes_;
  std::vector<Crash> crashes_;
  std::vector<Mutation> corruptions_;
  std::vector<Mutation> truncations_;
  std::map<std::string, std::vector<CounterReset>> resets_;
  std::map<std::string, std::vector<CounterStick>> sticks_;
  std::uint64_t faults_injected_ = 0;
};

}  // namespace remos::snmp
