#include "snmp/mib.hpp"

#include "util/error.hpp"

namespace remos::snmp {

void Mib::add(const Oid& oid, Binding binding) {
  if (!binding) throw InvalidArgument("Mib::add: empty binding");
  entries_[oid] = std::move(binding);
}

void Mib::add_constant(const Oid& oid, Value value) {
  add(oid, [v = std::move(value)] { return v; });
}

Value Mib::get(const Oid& oid) const {
  const auto it = entries_.find(oid);
  if (it == entries_.end()) return Value::no_such_object();
  return it->second();
}

std::optional<std::pair<Oid, Value>> Mib::get_next(const Oid& oid) const {
  const auto it = entries_.upper_bound(oid);
  if (it == entries_.end()) return std::nullopt;
  return std::make_pair(it->first, it->second());
}

}  // namespace remos::snmp
