// Management information base: an ordered map from OID to a binding.
//
// Bindings are closures so agents can expose live state (the simulator's
// octet counters) without copying; constants are just closures returning a
// fixed Value.  GETNEXT traversal uses the map's lexicographic order.
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <utility>

#include "snmp/oid.hpp"
#include "snmp/value.hpp"

namespace remos::snmp {

class Mib {
 public:
  using Binding = std::function<Value()>;

  /// Registers a live binding; re-registering an OID replaces it.
  void add(const Oid& oid, Binding binding);
  /// Registers a fixed value.
  void add_constant(const Oid& oid, Value value);

  /// Exact lookup; returns noSuchObject for unknown OIDs.
  Value get(const Oid& oid) const;

  /// First entry with OID strictly greater; nullopt past the end.
  std::optional<std::pair<Oid, Value>> get_next(const Oid& oid) const;

  std::size_t size() const { return entries_.size(); }

 private:
  std::map<Oid, Binding> entries_;
};

}  // namespace remos::snmp
