#include "snmp/mib2.hpp"

#include <cmath>

namespace remos::snmp {

namespace {

/// Truncates a monotonically growing byte count to Counter32 semantics.
std::uint32_t wrap32(double bytes) {
  // fmod keeps precision for counts far beyond 2^53 never reached here.
  return static_cast<std::uint32_t>(
      std::fmod(bytes, 4294967296.0));
}

}  // namespace

void populate_node_mib(Agent& agent, netsim::Simulator& sim,
                       netsim::NodeId node, const HostStats* host_stats) {
  using netsim::Link;
  using netsim::LinkId;
  Mib& mib = agent.mib();
  const netsim::Topology& topo = sim.topology();
  const netsim::Node& self = topo.node(node);

  // --- system group ---
  const bool is_router = self.kind == netsim::NodeKind::kNetwork;
  mib.add_constant(oids::kSysDescr,
                   Value::octets(is_router ? "remos-sim router"
                                           : "remos-sim host"));
  mib.add_constant(oids::kSysName, Value::octets(self.name));
  mib.add(oids::kSysUpTime, [&sim] {
    return Value::time_ticks(static_cast<std::uint32_t>(sim.now() * 100.0));
  });
  if (self.internal_bw > 0) {
    mib.add_constant(
        oids::kRemosBackplaneKbps,
        Value::gauge32(static_cast<std::uint32_t>(self.internal_bw / 1e3)));
  }

  // --- interfaces group ---
  const std::vector<LinkId>& links = topo.links_at(node);
  mib.add_constant(oids::kIfNumber,
                   Value::integer(static_cast<std::int64_t>(links.size())));
  for (std::size_t i = 0; i < links.size(); ++i) {
    const auto if_index = static_cast<std::uint32_t>(i + 1);
    const LinkId lid = links[i];
    const Link& link = topo.link(lid);
    const bool node_is_a = link.a == node;
    auto col = [&](std::uint32_t c) {
      return oids::kIfTableEntry.descend({c, if_index});
    };
    mib.add_constant(col(oids::kIfIndexCol), Value::integer(if_index));
    mib.add_constant(col(oids::kIfDescrCol),
                     Value::octets("eth" + std::to_string(i) + " to " +
                                   topo.name_of(link.other(node))));
    mib.add_constant(
        col(oids::kIfSpeedCol),
        Value::gauge32(static_cast<std::uint32_t>(link.capacity)));
    mib.add(col(oids::kIfOperStatusCol), [&sim, lid] {
      return Value::integer(sim.link_up(lid) ? 1 : 2);  // up(1)/down(2)
    });
    // Out = bytes this node transmits onto the link; In = received.
    mib.add(col(oids::kIfOutOctetsCol), [&sim, lid, node_is_a] {
      return Value::counter32(wrap32(sim.link_tx_bytes(lid, node_is_a)));
    });
    mib.add(col(oids::kIfInOctetsCol), [&sim, lid, node_is_a] {
      return Value::counter32(wrap32(sim.link_tx_bytes(lid, !node_is_a)));
    });

    // --- remos neighbor table (discovery substrate) ---
    const netsim::Node& peer = topo.node(link.other(node));
    auto nbr = [&](std::uint32_t c) {
      return oids::kRemosNeighborEntry.descend({c, if_index});
    };
    mib.add_constant(nbr(oids::kNbrNameCol), Value::octets(peer.name));
    mib.add_constant(
        nbr(oids::kNbrIsRouterCol),
        Value::integer(peer.kind == netsim::NodeKind::kNetwork ? 1 : 0));
    mib.add_constant(
        nbr(oids::kNbrLatencyMicrosCol),
        Value::gauge32(static_cast<std::uint32_t>(link.latency * 1e6)));
    // The simulator's links share by weighted max-min fairness.
    mib.add_constant(
        nbr(oids::kNbrSharingCol),
        Value::integer(static_cast<std::int64_t>(
            SharingPolicy::kMaxMinFair)));
  }

  // --- host group (compute nodes only) ---
  if (host_stats != nullptr) {
    // CPU load is live simulator state (the OS scheduler's view); memory
    // size comes from the static host description.
    mib.add(oids::kHrProcessorLoad, [&sim, node] {
      return Value::integer(
          static_cast<std::int64_t>(sim.cpu_load(node) * 100.0));
    });
    mib.add(oids::kHrMemorySize, [host_stats] {
      return Value::gauge32(host_stats->memory_mb);
    });
  }
}

std::string agent_address(const std::string& node_name) {
  return "udp://" + node_name + ":161";
}

}  // namespace remos::snmp
