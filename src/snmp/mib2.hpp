// The MIB-2 subset served by simulated agents, and its binding to the
// network simulator.
//
// Served groups:
//   system    -- sysDescr/sysName/sysUpTime (1.3.6.1.2.1.1)
//   interfaces-- ifNumber + ifTable columns ifIndex/ifDescr/ifSpeed/
//                ifOperStatus/ifInOctets/ifOutOctets (1.3.6.1.2.1.2);
//                octet counters are live Counter32 views of the simulator
//                with authentic 32-bit wrap
//   host      -- hrProcessorLoad-style CPU load and memory for compute
//                nodes (Remos "includes a simple interface to computation
//                and memory resources")
//   remosTopo -- an enterprise neighbor table (the role LLDP/CDP or
//                ipRouteTable plays in real discovery): per interface, the
//                neighbor's sysName, whether it forwards, and the link
//                latency in microseconds
//
// Interface indices are 1-based positions in Topology::links_at(node),
// fixed at agent-construction time, exactly like a router's ifTable.
#pragma once

#include <string>

#include "netsim/simulator.hpp"
#include "snmp/agent.hpp"
#include "snmp/oid.hpp"
#include "util/sharing.hpp"

namespace remos::snmp {

/// Well-known OIDs (shared by agents and the collector).
namespace oids {

inline const Oid kSysDescr{1, 3, 6, 1, 2, 1, 1, 1, 0};
inline const Oid kSysUpTime{1, 3, 6, 1, 2, 1, 1, 3, 0};
inline const Oid kSysName{1, 3, 6, 1, 2, 1, 1, 5, 0};

inline const Oid kIfNumber{1, 3, 6, 1, 2, 1, 2, 1, 0};
inline const Oid kIfTableEntry{1, 3, 6, 1, 2, 1, 2, 2, 1};
inline constexpr std::uint32_t kIfIndexCol = 1;
inline constexpr std::uint32_t kIfDescrCol = 2;
inline constexpr std::uint32_t kIfSpeedCol = 5;
inline constexpr std::uint32_t kIfOperStatusCol = 8;
inline constexpr std::uint32_t kIfInOctetsCol = 10;
inline constexpr std::uint32_t kIfOutOctetsCol = 16;

inline const Oid kHrProcessorLoad{1, 3, 6, 1, 2, 1, 25, 3, 3, 1, 2, 1};
inline const Oid kHrMemorySize{1, 3, 6, 1, 2, 1, 25, 2, 2, 0};

/// Enterprise arc for the Remos testbed instrumentation.
inline const Oid kRemosNeighborEntry{1, 3, 6, 1, 4, 1, 57005, 1, 1};
inline constexpr std::uint32_t kNbrNameCol = 1;
inline constexpr std::uint32_t kNbrIsRouterCol = 2;
inline constexpr std::uint32_t kNbrLatencyMicrosCol = 3;
/// Sharing policy of the attached link (SharingPolicy enum value).
inline constexpr std::uint32_t kNbrSharingCol = 4;

/// Aggregate forwarding (backplane) capacity of the node in kbit/s; only
/// present on nodes whose capacity is finite (Figure 1's "internal
/// bandwidth").  Kbps keeps multi-Gbps values inside Gauge32.
inline const Oid kRemosBackplaneKbps{1, 3, 6, 1, 4, 1, 57005, 2, 1, 0};

}  // namespace oids

/// Host-side static description exposed through the host group (dynamic
/// CPU load is read live from the simulator via Simulator::cpu_load).
struct HostStats {
  std::uint32_t memory_mb = 512;
};

/// Populates `agent`'s MIB for node `node` of `sim`'s topology, with all
/// dynamic entries bound to live simulator state.  `host_stats` may be
/// null for network nodes.  The simulator (and host_stats if given) must
/// outlive the agent.
void populate_node_mib(Agent& agent, netsim::Simulator& sim,
                       netsim::NodeId node, const HostStats* host_stats);

/// Transport address an agent for `node_name` binds to.
std::string agent_address(const std::string& node_name);

}  // namespace remos::snmp
