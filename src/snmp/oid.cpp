#include "snmp/oid.hpp"

#include <charconv>

#include "util/error.hpp"
#include "util/strings.hpp"

namespace remos::snmp {

Oid Oid::parse(const std::string& dotted) {
  if (dotted.empty()) throw InvalidArgument("Oid::parse: empty string");
  std::vector<std::uint32_t> arcs;
  for (const std::string& part : split(dotted, '.')) {
    if (part.empty())
      throw InvalidArgument("Oid::parse: empty arc in '" + dotted + "'");
    std::uint32_t value = 0;
    const auto [ptr, ec] =
        std::from_chars(part.data(), part.data() + part.size(), value);
    if (ec != std::errc{} || ptr != part.data() + part.size())
      throw InvalidArgument("Oid::parse: bad arc '" + part + "'");
    arcs.push_back(value);
  }
  return Oid(std::move(arcs));
}

std::string Oid::to_string() const {
  std::string out;
  for (std::size_t i = 0; i < arcs_.size(); ++i) {
    if (i > 0) out += '.';
    out += std::to_string(arcs_[i]);
  }
  return out;
}

Oid Oid::child(std::uint32_t arc) const {
  Oid out = *this;
  out.arcs_.push_back(arc);
  return out;
}

Oid Oid::descend(std::initializer_list<std::uint32_t> arcs) const {
  Oid out = *this;
  out.arcs_.insert(out.arcs_.end(), arcs.begin(), arcs.end());
  return out;
}

bool Oid::starts_with(const Oid& prefix) const {
  if (prefix.size() > size()) return false;
  for (std::size_t i = 0; i < prefix.size(); ++i)
    if (arcs_[i] != prefix[i]) return false;
  return true;
}

}  // namespace remos::snmp
