// SNMP object identifiers.
//
// An Oid is a sequence of unsigned arcs ("1.3.6.1.2.1...").  Ordering is
// lexicographic, which is what GETNEXT/walk traversal is defined over.
#pragma once

#include <compare>
#include <cstdint>
#include <initializer_list>
#include <string>
#include <vector>

namespace remos::snmp {

class Oid {
 public:
  Oid() = default;
  Oid(std::initializer_list<std::uint32_t> arcs) : arcs_(arcs) {}
  explicit Oid(std::vector<std::uint32_t> arcs) : arcs_(std::move(arcs)) {}

  /// Parses dotted notation ("1.3.6.1"); throws InvalidArgument on
  /// malformed input (empty, non-numeric, overflow).
  static Oid parse(const std::string& dotted);

  std::string to_string() const;

  std::size_t size() const { return arcs_.size(); }
  bool empty() const { return arcs_.empty(); }
  std::uint32_t operator[](std::size_t i) const { return arcs_[i]; }
  const std::vector<std::uint32_t>& arcs() const { return arcs_; }

  /// Returns this OID with one extra arc appended.
  Oid child(std::uint32_t arc) const;
  /// Returns this OID with several arcs appended.
  Oid descend(std::initializer_list<std::uint32_t> arcs) const;

  /// True if `prefix` is a (non-strict) prefix of this OID.
  bool starts_with(const Oid& prefix) const;

  auto operator<=>(const Oid&) const = default;

 private:
  std::vector<std::uint32_t> arcs_;
};

}  // namespace remos::snmp
