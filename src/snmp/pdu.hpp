// SNMP protocol data units (the SNMPv2c subset Remos uses: GET, GETNEXT,
// SET and RESPONSE with standard error-status codes from RFC 1905).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "snmp/oid.hpp"
#include "snmp/value.hpp"

namespace remos::snmp {

enum class PduType : std::uint8_t {
  kGet = 0,
  kGetNext = 1,
  kResponse = 2,
  kSet = 3,
};

/// RFC 1905 error-status values (subset).
enum class ErrorStatus : std::int32_t {
  kNoError = 0,
  kTooBig = 1,
  kNoSuchName = 2,
  kBadValue = 3,
  kReadOnly = 4,
  kGenErr = 5,
  kNotWritable = 17,
};

struct VarBind {
  Oid oid;
  Value value;

  bool operator==(const VarBind&) const = default;
};

struct Pdu {
  PduType type = PduType::kGet;
  std::string community = "public";
  std::int32_t request_id = 0;
  ErrorStatus error_status = ErrorStatus::kNoError;
  std::int32_t error_index = 0;  // 1-based varbind index, 0 = none
  std::vector<VarBind> bindings;

  bool operator==(const Pdu&) const = default;
};

}  // namespace remos::snmp
