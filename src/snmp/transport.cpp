#include "snmp/transport.hpp"

#include "util/error.hpp"

namespace remos::snmp {

Transport::Transport(Config config) : config_(config), rng_(config.seed) {
  if (config_.loss_probability < 0 || config_.loss_probability >= 1.0)
    throw InvalidArgument("Transport: loss probability outside [0,1)");
  if (config_.max_attempts < 1)
    throw InvalidArgument("Transport: max_attempts < 1");
}

void Transport::bind(const std::string& address, Handler handler) {
  if (!handler) throw InvalidArgument("Transport::bind: empty handler");
  if (!endpoints_.emplace(address, std::move(handler)).second)
    throw InvalidArgument("Transport::bind: address in use: " + address);
}

void Transport::unbind(const std::string& address) {
  endpoints_.erase(address);
}

bool Transport::bound(const std::string& address) const {
  return endpoints_.contains(address);
}

std::optional<std::vector<std::uint8_t>> Transport::request(
    const std::string& address, const std::vector<std::uint8_t>& datagram) {
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end())
    throw NotFoundError("Transport: no endpoint at " + address);

  for (int attempt = 0; attempt < config_.max_attempts; ++attempt) {
    ++datagrams_sent_;
    bytes_sent_ += datagram.size();
    if (rng_.chance(config_.loss_probability)) {
      ++datagrams_lost_;  // request lost in flight
      continue;
    }
    const auto response = it->second(datagram);
    if (!response) continue;  // endpoint dropped it
    ++datagrams_sent_;
    bytes_sent_ += response->size();
    if (rng_.chance(config_.loss_probability)) {
      ++datagrams_lost_;  // response lost in flight
      continue;
    }
    return response;
  }
  ++requests_failed_;
  return std::nullopt;
}

}  // namespace remos::snmp
