#include "snmp/transport.hpp"

#include "snmp/fault_injector.hpp"
#include "util/error.hpp"

namespace remos::snmp {

Transport::Transport(Config config) : config_(config), rng_(config.seed) {
  if (config_.loss_probability < 0 || config_.loss_probability >= 1.0)
    throw InvalidArgument("Transport: loss probability outside [0,1)");
  if (config_.max_attempts < 1)
    throw InvalidArgument("Transport: max_attempts < 1");
  if (config_.base_rtt < 0)
    throw InvalidArgument("Transport: negative base_rtt");
}

void Transport::bind(const std::string& address, Handler handler) {
  if (!handler) throw InvalidArgument("Transport::bind: empty handler");
  if (!endpoints_.emplace(address, std::move(handler)).second)
    throw InvalidArgument("Transport::bind: address in use: " + address);
}

void Transport::unbind(const std::string& address) {
  endpoints_.erase(address);
}

bool Transport::bound(const std::string& address) const {
  return endpoints_.contains(address);
}

void Transport::set_clock(std::function<Seconds()> clock) {
  clock_ = std::move(clock);
}

std::uint64_t Transport::datagrams_sent_to(const std::string& address) const {
  const auto it = sent_to_.find(address);
  return it == sent_to_.end() ? 0 : it->second;
}

Transport::Attempt Transport::attempt(
    const std::string& address, const std::vector<std::uint8_t>& datagram) {
  const auto it = endpoints_.find(address);
  if (it == endpoints_.end())
    throw NotFoundError("Transport: no endpoint at " + address);

  const Seconds t = now();
  Attempt out;
  out.latency = config_.base_rtt;
  if (injector_) out.latency += injector_->extra_latency(address, t);
  synthetic_now_ += out.latency;

  ++datagrams_sent_;
  ++sent_to_[address];
  bytes_sent_ += datagram.size();
  // A crashed agent looks exactly like a lost request: silence.
  if (injector_ &&
      (injector_->agent_down(address, t) ||
       injector_->drop_request(address, t))) {
    ++datagrams_lost_;
    return out;
  }
  if (rng_.chance(config_.loss_probability)) {
    ++datagrams_lost_;  // request lost in flight
    return out;
  }

  auto response = it->second(datagram);
  if (!response) return out;  // endpoint dropped it
  ++datagrams_sent_;
  ++sent_to_[address];
  bytes_sent_ += response->size();
  if (injector_) {
    *response = injector_->mutate_response(address, t, std::move(*response));
    if (injector_->drop_response(address, t)) {
      ++datagrams_lost_;
      return out;
    }
  }
  if (rng_.chance(config_.loss_probability)) {
    ++datagrams_lost_;  // response lost in flight
    return out;
  }
  out.response = std::move(response);
  return out;
}

std::optional<std::vector<std::uint8_t>> Transport::request(
    const std::string& address, const std::vector<std::uint8_t>& datagram) {
  for (int i = 0; i < config_.max_attempts; ++i) {
    Attempt result = attempt(address, datagram);
    if (result.response) return std::move(result.response);
  }
  ++requests_failed_;
  return std::nullopt;
}

}  // namespace remos::snmp
