// In-process datagram transport with simulated latency and loss.
//
// Stands in for UDP on the testbed.  Endpoints bind request handlers by
// address ("udp://aspen:161"); clients issue request/response exchanges
// with timeout-and-retry semantics.  Loss is applied independently to the
// request and the response datagram (seeded, deterministic), so the
// collector's retry path is genuinely exercised.  Exchanges are
// logically instantaneous with respect to the fluid simulator's clock --
// management round-trips (sub-millisecond on the LAN testbed) are far
// below the collector polling period -- but every attempt reports its
// simulated latency cost (base RTT plus any injected spike) so clients
// can enforce per-exchange timeout budgets, and every datagram is
// accounted (count + bytes, globally and per address) so the overhead
// ablation and the chaos tests can audit management load.
//
// A FaultInjector may be attached to perturb exchanges (loss bursts,
// crashes, corruption, counter rewrites) on a schedule keyed to the
// transport's clock; see fault_injector.hpp.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"
#include "util/units.hpp"

namespace remos::snmp {

class FaultInjector;

class Transport {
 public:
  /// A bound endpoint turns a request datagram into a response datagram
  /// (or nothing, if it chooses to drop the request).
  using Handler = std::function<std::optional<std::vector<std::uint8_t>>(
      const std::vector<std::uint8_t>&)>;

  struct Config {
    double loss_probability = 0.0;  // per datagram, each direction
    int max_attempts = 3;           // 1 try + retries (request() only)
    std::uint64_t seed = 0xC0FFEE;
    /// Simulated round-trip cost of one attempt on the management LAN.
    Seconds base_rtt = 0.001;
  };

  /// One datagram exchange attempt: the response (absent on loss, crash
  /// or endpoint drop) and the simulated time the attempt cost.
  struct Attempt {
    std::optional<std::vector<std::uint8_t>> response;
    Seconds latency = 0;
  };

  Transport() = default;
  explicit Transport(Config config);

  /// Binds an address; throws InvalidArgument on duplicates.
  void bind(const std::string& address, Handler handler);
  void unbind(const std::string& address);
  bool bound(const std::string& address) const;

  /// Wires an external clock (normally the simulator's).  Without one,
  /// the transport keeps a synthetic clock that advances by each
  /// attempt's latency, so time-based policies still make progress in
  /// plain unit tests.
  void set_clock(std::function<Seconds()> clock);
  Seconds now() const { return clock_ ? clock_() : synthetic_now_; }
  bool has_clock() const { return static_cast<bool>(clock_); }

  /// Attaches a fault injector (non-owning; may be null to detach).
  void set_fault_injector(FaultInjector* injector) { injector_ = injector; }

  /// One attempt, no retries: the building block for client-side retry
  /// policies.  Throws NotFoundError if the address was never bound.
  Attempt attempt(const std::string& address,
                  const std::vector<std::uint8_t>& datagram);

  /// Sends a request and waits for the response, retrying on loss up to
  /// Config::max_attempts.  Returns nullopt after all attempts fail;
  /// throws NotFoundError if the address was never bound.
  std::optional<std::vector<std::uint8_t>> request(
      const std::string& address, const std::vector<std::uint8_t>& datagram);

  // Accounting for the management-overhead ablation and chaos tests.
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t datagrams_lost() const { return datagrams_lost_; }
  std::uint64_t requests_failed() const { return requests_failed_; }
  /// Datagrams (both directions) of exchanges with one agent address.
  std::uint64_t datagrams_sent_to(const std::string& address) const;

 private:
  Config config_;
  Rng rng_{config_.seed};
  std::function<Seconds()> clock_;
  Seconds synthetic_now_ = 0;
  FaultInjector* injector_ = nullptr;
  std::unordered_map<std::string, Handler> endpoints_;
  std::unordered_map<std::string, std::uint64_t> sent_to_;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t datagrams_lost_ = 0;
  std::uint64_t requests_failed_ = 0;
};

}  // namespace remos::snmp
