// In-process datagram transport with simulated latency and loss.
//
// Stands in for UDP on the testbed.  Endpoints bind request handlers by
// address ("udp://aspen:161"); clients issue request/response exchanges
// with timeout-and-retry semantics.  Loss is applied independently to the
// request and the response datagram (seeded, deterministic), so the
// collector's retry path is genuinely exercised.  Exchanges are
// logically instantaneous with respect to the fluid simulator's clock --
// management round-trips (sub-millisecond on the LAN testbed) are far
// below the collector polling period -- but every datagram is accounted
// (count + bytes) so the overhead ablation can report management load.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/rng.hpp"

namespace remos::snmp {

class Transport {
 public:
  /// A bound endpoint turns a request datagram into a response datagram
  /// (or nothing, if it chooses to drop the request).
  using Handler = std::function<std::optional<std::vector<std::uint8_t>>(
      const std::vector<std::uint8_t>&)>;

  struct Config {
    double loss_probability = 0.0;  // per datagram, each direction
    int max_attempts = 3;           // 1 try + retries
    std::uint64_t seed = 0xC0FFEE;
  };

  Transport() = default;
  explicit Transport(Config config);

  /// Binds an address; throws InvalidArgument on duplicates.
  void bind(const std::string& address, Handler handler);
  void unbind(const std::string& address);
  bool bound(const std::string& address) const;

  /// Sends a request and waits for the response, retrying on loss.
  /// Returns nullopt after all attempts fail; throws NotFoundError if the
  /// address was never bound.
  std::optional<std::vector<std::uint8_t>> request(
      const std::string& address, const std::vector<std::uint8_t>& datagram);

  // Accounting for the management-overhead ablation.
  std::uint64_t datagrams_sent() const { return datagrams_sent_; }
  std::uint64_t bytes_sent() const { return bytes_sent_; }
  std::uint64_t datagrams_lost() const { return datagrams_lost_; }
  std::uint64_t requests_failed() const { return requests_failed_; }

 private:
  Config config_;
  Rng rng_{config_.seed};
  std::unordered_map<std::string, Handler> endpoints_;
  std::uint64_t datagrams_sent_ = 0;
  std::uint64_t bytes_sent_ = 0;
  std::uint64_t datagrams_lost_ = 0;
  std::uint64_t requests_failed_ = 0;
};

}  // namespace remos::snmp
