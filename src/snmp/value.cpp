#include "snmp/value.hpp"

#include "util/error.hpp"

namespace remos::snmp {

Value Value::integer(std::int64_t v) { return Value(Storage{v}); }
Value Value::counter32(std::uint32_t v) {
  return Value(Storage{Counter32Tag{v}});
}
Value Value::gauge32(std::uint32_t v) { return Value(Storage{Gauge32Tag{v}}); }
Value Value::time_ticks(std::uint32_t v) {
  return Value(Storage{TimeTicksTag{v}});
}
Value Value::octets(std::string v) { return Value(Storage{std::move(v)}); }
Value Value::object_id(Oid v) { return Value(Storage{std::move(v)}); }
Value Value::no_such_object() { return Value(Storage{NoSuchObjectTag{}}); }
Value Value::end_of_mib_view() { return Value(Storage{EndOfMibTag{}}); }

ValueType Value::type() const {
  return static_cast<ValueType>(data_.index());
}

namespace {
[[noreturn]] void type_mismatch(const char* wanted) {
  throw ProtocolError(std::string("Value: not a ") + wanted);
}
}  // namespace

std::int64_t Value::as_integer() const {
  if (const auto* p = std::get_if<std::int64_t>(&data_)) return *p;
  type_mismatch("Integer");
}

std::uint32_t Value::as_counter32() const {
  if (const auto* p = std::get_if<Counter32Tag>(&data_)) return p->v;
  type_mismatch("Counter32");
}

std::uint32_t Value::as_gauge32() const {
  if (const auto* p = std::get_if<Gauge32Tag>(&data_)) return p->v;
  type_mismatch("Gauge32");
}

std::uint32_t Value::as_time_ticks() const {
  if (const auto* p = std::get_if<TimeTicksTag>(&data_)) return p->v;
  type_mismatch("TimeTicks");
}

const std::string& Value::as_octets() const {
  if (const auto* p = std::get_if<std::string>(&data_)) return *p;
  type_mismatch("OctetString");
}

const Oid& Value::as_object_id() const {
  if (const auto* p = std::get_if<Oid>(&data_)) return *p;
  type_mismatch("ObjectId");
}

std::string Value::to_string() const {
  switch (type()) {
    case ValueType::kNull:
      return "null";
    case ValueType::kInteger:
      return std::to_string(as_integer());
    case ValueType::kCounter32:
      return "Counter32(" + std::to_string(as_counter32()) + ")";
    case ValueType::kGauge32:
      return "Gauge32(" + std::to_string(as_gauge32()) + ")";
    case ValueType::kTimeTicks:
      return "TimeTicks(" + std::to_string(as_time_ticks()) + ")";
    case ValueType::kOctetString:
      return "\"" + as_octets() + "\"";
    case ValueType::kObjectId:
      return as_object_id().to_string();
    case ValueType::kNoSuchObject:
      return "noSuchObject";
    case ValueType::kEndOfMibView:
      return "endOfMibView";
  }
  return "?";
}

}  // namespace remos::snmp
