// SNMP values (the SMI subset the Remos collector needs).
//
// Counter32 deliberately keeps SNMP's 32-bit wrapping semantics: a router
// moving 100 Mbps wraps ifOutOctets roughly every 5.7 minutes, and the
// collector must difference counters modulo 2^32 -- a real failure mode of
// 1998 (and current) SNMP polling that the tests exercise.
#pragma once

#include <cstdint>
#include <string>
#include <variant>

#include "snmp/oid.hpp"

namespace remos::snmp {

enum class ValueType : std::uint8_t {
  kNull,
  kInteger,      // signed 64-bit in API, BER INTEGER on the wire
  kCounter32,    // wrapping, monotonic
  kGauge32,      // non-wrapping, clamping
  kTimeTicks,    // hundredths of a second
  kOctetString,
  kObjectId,
  kNoSuchObject,  // exception marker in responses
  kEndOfMibView,  // exception marker for GETNEXT past the MIB
};

class Value {
 public:
  Value() : data_(std::monostate{}) {}

  static Value null() { return Value(); }
  static Value integer(std::int64_t v);
  static Value counter32(std::uint32_t v);
  static Value gauge32(std::uint32_t v);
  static Value time_ticks(std::uint32_t v);
  static Value octets(std::string v);
  static Value object_id(Oid v);
  static Value no_such_object();
  static Value end_of_mib_view();

  ValueType type() const;
  bool is_exception() const {
    return type() == ValueType::kNoSuchObject ||
           type() == ValueType::kEndOfMibView;
  }

  /// Typed accessors; throw ProtocolError when the type does not match.
  std::int64_t as_integer() const;
  std::uint32_t as_counter32() const;
  std::uint32_t as_gauge32() const;
  std::uint32_t as_time_ticks() const;
  const std::string& as_octets() const;
  const Oid& as_object_id() const;

  std::string to_string() const;

  bool operator==(const Value&) const = default;

 private:
  struct Counter32Tag {
    std::uint32_t v;
    bool operator==(const Counter32Tag&) const = default;
  };
  struct Gauge32Tag {
    std::uint32_t v;
    bool operator==(const Gauge32Tag&) const = default;
  };
  struct TimeTicksTag {
    std::uint32_t v;
    bool operator==(const TimeTicksTag&) const = default;
  };
  struct NoSuchObjectTag {
    bool operator==(const NoSuchObjectTag&) const = default;
  };
  struct EndOfMibTag {
    bool operator==(const EndOfMibTag&) const = default;
  };

  using Storage =
      std::variant<std::monostate, std::int64_t, Counter32Tag, Gauge32Tag,
                   TimeTicksTag, std::string, Oid, NoSuchObjectTag,
                   EndOfMibTag>;
  explicit Value(Storage s) : data_(std::move(s)) {}

  Storage data_;
};

}  // namespace remos::snmp
