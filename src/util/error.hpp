// Error types for the Remos libraries.
//
// Remos reports unrecoverable misuse (unknown node names, malformed
// queries, protocol violations) via exceptions derived from Error.
// Recoverable conditions that an application is expected to handle --
// e.g. "this flow request can only be partially satisfied" -- are never
// exceptions; they are encoded in the query result per the paper
// ("data structures will be filled in to the extent that the flow
// requests can be satisfied").
#pragma once

#include <stdexcept>
#include <string>

namespace remos {

/// Base class of all Remos exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// A name or id did not resolve (node, link, agent address, OID...).
class NotFoundError : public Error {
 public:
  explicit NotFoundError(const std::string& what) : Error(what) {}
};

/// Structurally invalid input (bad topology, negative capacity, ...).
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Wire-protocol decode/encode failure (SNMP substrate).
class ProtocolError : public Error {
 public:
  explicit ProtocolError(const std::string& what) : Error(what) {}
};

/// A request timed out after all retries (lossy transport).
class TimeoutError : public Error {
 public:
  explicit TimeoutError(const std::string& what) : Error(what) {}
};

/// An exchange was refused without touching the wire because the target
/// agent's circuit breaker is open (it failed repeatedly and its cooldown
/// has not elapsed).  Derives from TimeoutError so callers that already
/// degrade gracefully on timeouts handle fast-fails identically.
class CircuitOpenError : public TimeoutError {
 public:
  explicit CircuitOpenError(const std::string& what) : TimeoutError(what) {}
};

}  // namespace remos
