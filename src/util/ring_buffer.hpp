// Fixed-capacity ring buffer for measurement histories.
//
// Collectors retain a bounded window of samples per link; old samples are
// evicted in FIFO order.  Iteration order is oldest-to-newest.
#pragma once

#include <cstddef>
#include <vector>

#include "util/error.hpp"

namespace remos {

template <typename T>
class RingBuffer {
 public:
  explicit RingBuffer(std::size_t capacity) : capacity_(capacity) {
    if (capacity == 0) throw InvalidArgument("RingBuffer: zero capacity");
    items_.reserve(capacity);
  }

  void push(T value) {
    if (items_.size() < capacity_) {
      items_.push_back(std::move(value));
    } else {
      items_[head_] = std::move(value);
      head_ = (head_ + 1) % capacity_;
    }
  }

  std::size_t size() const { return items_.size(); }
  std::size_t capacity() const { return capacity_; }
  bool empty() const { return items_.empty(); }

  /// i-th element, 0 = oldest.
  const T& operator[](std::size_t i) const {
    return items_[(head_ + i) % items_.size()];
  }

  const T& back() const { return (*this)[items_.size() - 1]; }
  const T& front() const { return (*this)[0]; }

  /// Snapshot in oldest-to-newest order.
  std::vector<T> to_vector() const {
    std::vector<T> out;
    out.reserve(items_.size());
    for (std::size_t i = 0; i < items_.size(); ++i) out.push_back((*this)[i]);
    return out;
  }

  void clear() {
    items_.clear();
    head_ = 0;
  }

 private:
  std::size_t capacity_;
  std::size_t head_ = 0;  // index of oldest element once full
  std::vector<T> items_;
};

}  // namespace remos
