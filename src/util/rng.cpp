#include "util/rng.hpp"

#include <cmath>

namespace remos {

double Rng::uniform() {
  // 53 random mantissa bits -> uniform in [0,1).
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

std::uint64_t Rng::below(std::uint64_t n) {
  // Debiased multiply-shift (Lemire).
  const std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * n;
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::exponential(double mean) {
  // Inverse CDF; uniform() < 1 so log argument is > 0.
  return -mean * std::log(1.0 - uniform());
}

double Rng::normal(double mean, double stddev) {
  const double u1 = 1.0 - uniform();
  const double u2 = uniform();
  const double z = std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
  return mean + stddev * z;
}

bool Rng::chance(double probability) { return uniform() < probability; }

double Rng::pareto(double xm, double alpha) {
  return xm / std::pow(1.0 - uniform(), 1.0 / alpha);
}

}  // namespace remos
