// Deterministic random number generation.
//
// Every stochastic element of the reproduction (traffic generators,
// probe jitter, transport loss) draws from an explicitly seeded
// generator so that tests and benchmark tables are reproducible.
// We use xoshiro256** seeded via splitmix64 (the recommended seeding
// procedure), implemented locally to avoid any libstdc++ distribution
// variance across platforms.
#pragma once

#include <cstdint>

namespace remos {

/// splitmix64: used to expand a single 64-bit seed into a full state.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_(seed) {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256**: fast, high-quality 64-bit generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1fb8a2c34be001ULL) {
    SplitMix64 sm(seed);
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~result_type{0}; }

  result_type operator()() { return next(); }

  std::uint64_t next() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t below(std::uint64_t n);

  /// Exponentially distributed value with the given mean.
  double exponential(double mean);

  /// Standard normal via Box-Muller (no cached spare: keeps state simple).
  double normal(double mean, double stddev);

  /// Bernoulli trial.
  bool chance(double probability);

  /// Bounded Pareto (shape alpha, minimum xm) -- heavy-tailed transfer sizes.
  double pareto(double xm, double alpha);

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace remos
