#include "util/sharing.hpp"

#include <algorithm>

#include "util/error.hpp"

namespace remos {

std::string to_string(SharingPolicy policy) {
  switch (policy) {
    case SharingPolicy::kUnknown:
      return "unknown";
    case SharingPolicy::kMaxMinFair:
      return "max-min-fair";
    case SharingPolicy::kWeightedShare:
      return "weighted-share";
  }
  return "?";
}

void FairShareScratch::reserve(std::size_t flows, std::size_t resources) {
  active.reserve(flows);
  active_weight.reserve(resources);
  active_count.reserve(resources);
}

void fair_share_fill(const double* capacity, std::size_t resource_count,
                     const FairShareFlowView* flows, std::size_t flow_count,
                     double* rates, double* residual,
                     FairShareScratch& scratch) {
  const std::size_t nf = flow_count;
  const std::size_t nr = resource_count;

  for (std::size_t i = 0; i < nf; ++i) rates[i] = 0.0;
  for (std::size_t r = 0; r < nr; ++r) residual[r] = capacity[r];

  // active[i]: flow i still grows with the water level.
  auto& active = scratch.active;
  active.assign(nf, 1);
  // Weight and count of active flows per resource.  The count matters:
  // subtracting weights leaves float residue (~1e-16), and a "saturated"
  // resource with zero remaining flows but ghost weight would pin the
  // water level forever.
  auto& active_weight = scratch.active_weight;
  auto& active_count = scratch.active_count;
  active_weight.assign(nr, 0.0);
  active_count.assign(nr, 0);
  for (std::size_t i = 0; i < nf; ++i) {
    const FairShareFlowView& f = flows[i];
    for (std::size_t k = 0; k < f.resource_count; ++k) {
      active_weight[f.resources[k]] += f.weight;
      ++active_count[f.resources[k]];
    }
  }

  // Flows with no cap and no resources would grow forever; freeze them at
  // infinity immediately (a flow across a zero-hop path is not rate
  // limited by the network).
  std::size_t remaining = 0;
  for (std::size_t i = 0; i < nf; ++i) {
    if (flows[i].resource_count == 0 &&
        flows[i].rate_cap == kUnlimitedShare) {
      rates[i] = kUnlimitedShare;
      active[i] = 0;
    } else {
      ++remaining;
    }
  }

  double level = 0.0;  // water level: active flow i has rate weight_i*level
  // Every iteration freezes at least one flow, so nf + 1 rounds suffice;
  // exceeding that means a numeric-progress bug and must fail loudly
  // rather than spin.
  std::size_t iterations_left = nf + 2;
  while (remaining > 0) {
    if (iterations_left-- == 0)
      throw Error("fair_share_fill: failed to make progress");
    // Next event: a resource saturates or a flow hits its demand cap.
    double next_level = kUnlimitedShare;
    for (std::size_t r = 0; r < nr; ++r) {
      if (active_count[r] == 0 || active_weight[r] <= 0) continue;
      const double lvl = level + residual[r] / active_weight[r];
      next_level = std::min(next_level, lvl);
    }
    for (std::size_t i = 0; i < nf; ++i) {
      if (!active[i] || flows[i].rate_cap == kUnlimitedShare) continue;
      next_level = std::min(next_level, flows[i].rate_cap / flows[i].weight);
    }
    if (next_level == kUnlimitedShare) {
      // No constraint binds the remaining flows (all-infinite capacities).
      for (std::size_t i = 0; i < nf; ++i)
        if (active[i]) rates[i] = kUnlimitedShare;
      break;
    }

    // Advance all active flows to the new level and charge resources.
    const double delta = next_level - level;
    if (delta > 0) {
      for (std::size_t i = 0; i < nf; ++i) {
        if (!active[i]) continue;
        const FairShareFlowView& f = flows[i];
        rates[i] += f.weight * delta;
        for (std::size_t k = 0; k < f.resource_count; ++k)
          residual[f.resources[k]] -= f.weight * delta;
      }
      for (std::size_t r = 0; r < nr; ++r)
        residual[r] = std::max(residual[r], 0.0);
    }
    level = next_level;

    // Freeze flows that hit their cap or sit on a saturated resource.
    // Both thresholds are relative to the quantity's own magnitude: the
    // water-fill accumulates rates as sums of weight*delta, whose
    // rounding residue scales with the value (at bits/sec magnitudes an
    // absolute epsilon would never trigger and the loop would stall).
    constexpr double kEps = 1e-12;
    for (std::size_t i = 0; i < nf; ++i) {
      if (!active[i]) continue;
      const FairShareFlowView& f = flows[i];
      const bool cap_bound =
          f.rate_cap != kUnlimitedShare &&
          rates[i] >= f.rate_cap - kEps * std::max(1.0, f.rate_cap);
      bool freeze = cap_bound;
      if (!freeze) {
        for (std::size_t k = 0; k < f.resource_count; ++k) {
          const std::size_t r = f.resources[k];
          if (residual[r] <= kEps * std::max(1.0, capacity[r])) {
            freeze = true;
            break;
          }
        }
      }
      if (freeze) {
        // A demand-limited flow receives exactly its demand; snapping
        // removes the accumulated sub-epsilon rounding residue.
        if (cap_bound) rates[i] = f.rate_cap;
        active[i] = 0;
        --remaining;
        for (std::size_t k = 0; k < f.resource_count; ++k) {
          active_weight[f.resources[k]] -= f.weight;
          --active_count[f.resources[k]];
        }
      }
    }
  }
}

}  // namespace remos
