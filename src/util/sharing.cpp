#include "util/sharing.hpp"

namespace remos {

std::string to_string(SharingPolicy policy) {
  switch (policy) {
    case SharingPolicy::kUnknown:
      return "unknown";
    case SharingPolicy::kMaxMinFair:
      return "max-min-fair";
    case SharingPolicy::kWeightedShare:
      return "weighted-share";
  }
  return "?";
}

}  // namespace remos
