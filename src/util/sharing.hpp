// Link sharing policies (extension; paper §4.3: "If other sharing
// policies become common, we could add a query type to Remos that would
// allow applications to identify the sharing policy for different
// physical links").
//
// The policy tells an application how to convert "available bandwidth"
// into "what my flow will actually get": under max-min fairness a new
// flow can claim a fair share even of a busy link, while on an unknown
// link only the measured residual is a safe assumption.
#pragma once

#include <cstdint>
#include <string>

namespace remos {

enum class SharingPolicy : std::uint8_t {
  kUnknown = 0,         // no information (e.g. an opaque WAN cloud)
  kMaxMinFair = 1,      // equal split among backlogged flows (ATM ABR,
                        // round-robin schedulers, idealized TCP)
  kWeightedShare = 2,   // proportional to configured weights (WFQ)
};

std::string to_string(SharingPolicy policy);

}  // namespace remos
