// Link sharing policies (extension; paper §4.3: "If other sharing
// policies become common, we could add a query type to Remos that would
// allow applications to identify the sharing policy for different
// physical links").
//
// The policy tells an application how to convert "available bandwidth"
// into "what my flow will actually get": under max-min fairness a new
// flow can claim a fair share even of a busy link, while on an unknown
// link only the measured residual is a safe assumption.
//
// This header also owns the single implementation of the weighted
// max-min progressive-filling computation (`fair_share_fill`).  Both the
// from-scratch solver (`netsim::max_min_allocate`, the differential
// oracle) and the incremental solver (`netsim::IncrementalMaxMin`) call
// into it, so there is exactly one place where the fair-share math lives
// and the oracle test exercises the same code the hot path runs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

namespace remos {

enum class SharingPolicy : std::uint8_t {
  kUnknown = 0,         // no information (e.g. an opaque WAN cloud)
  kMaxMinFair = 1,      // equal split among backlogged flows (ATM ABR,
                        // round-robin schedulers, idealized TCP)
  kWeightedShare = 2,   // proportional to configured weights (WFQ)
};

std::string to_string(SharingPolicy policy);

/// Rate cap meaning "limited only by the network".
inline constexpr double kUnlimitedShare =
    std::numeric_limits<double>::infinity();

/// One flow as the fill core sees it: a span of resource indices, a
/// fairness weight, and a demand cap.  The span is not owned; it must
/// stay valid for the duration of the fair_share_fill call.
struct FairShareFlowView {
  const std::size_t* resources = nullptr;
  std::size_t resource_count = 0;
  double weight = 1.0;
  double rate_cap = kUnlimitedShare;
};

/// Reusable working storage for fair_share_fill.  Callers that solve
/// repeatedly (the incremental solver's churn hot path) keep one scratch
/// alive so no per-solve heap allocation happens once the buffers have
/// grown to the high-water mark.  Treat the members as opaque.
class FairShareScratch {
 public:
  /// Pre-sizes the buffers so a following fill of at most `flows` flows
  /// over at most `resources` resources allocates nothing.
  void reserve(std::size_t flows, std::size_t resources);

  std::vector<char> active;            // flow still grows with the level
  std::vector<double> active_weight;   // per resource
  std::vector<std::size_t> active_count;
};

/// Computes the weighted max-min fair allocation by progressive filling:
/// all unfrozen flows grow at speed proportional to their weight until a
/// resource saturates (its flows freeze at their current rate) or a flow
/// reaches its cap (it freezes there).  Runs in O(iterations * (F + R))
/// with at most F + R iterations.
///
/// `rates` (size flow_count) and `residual` (size resource_count) are
/// output spans owned by the caller; residual need not be initialized.
/// Inputs are assumed validated: capacities >= 0 and not NaN, weights
/// positive and finite, caps >= 0 and not NaN, resource indices in range.
/// A flow with an empty resource list is limited only by its cap.
/// Throws Error if the fill fails to make numeric progress.
void fair_share_fill(const double* capacity, std::size_t resource_count,
                     const FairShareFlowView* flows, std::size_t flow_count,
                     double* rates, double* residual,
                     FairShareScratch& scratch);

}  // namespace remos
