#include "util/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/error.hpp"

namespace remos {

QuartileSummary QuartileSummary::scaled(double factor) const {
  QuartileSummary s{min * factor, q1 * factor, median * factor, q3 * factor,
                    max * factor};
  if (factor < 0) {
    std::swap(s.min, s.max);
    std::swap(s.q1, s.q3);
  }
  return s;
}

namespace {

double quantile_sorted(const std::vector<double>& sorted, double q) {
  const std::size_t n = sorted.size();
  if (n == 1) return sorted[0];
  const double pos = q * static_cast<double>(n - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, n - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

double quantile(std::vector<double> samples, double q) {
  if (samples.empty()) throw InvalidArgument("quantile: empty sample set");
  if (q < 0.0 || q > 1.0) throw InvalidArgument("quantile: q outside [0,1]");
  std::sort(samples.begin(), samples.end());
  return quantile_sorted(samples, q);
}

QuartileSummary quartiles_of(std::vector<double> samples) {
  if (samples.empty()) throw InvalidArgument("quartiles_of: empty sample set");
  std::sort(samples.begin(), samples.end());
  return QuartileSummary{samples.front(), quantile_sorted(samples, 0.25),
                         quantile_sorted(samples, 0.5),
                         quantile_sorted(samples, 0.75), samples.back()};
}

Measurement Measurement::exact(double value) {
  Measurement m;
  m.quartiles = {value, value, value, value, value};
  m.mean = value;
  m.samples = 1;
  m.accuracy = 1.0;
  return m;
}

Measurement Measurement::from_samples(const std::vector<double>& samples) {
  Measurement m;
  if (samples.empty()) return m;
  m.quartiles = quartiles_of(samples);
  double sum = 0;
  for (double x : samples) sum += x;
  m.mean = sum / static_cast<double>(samples.size());
  m.samples = samples.size();
  // Accuracy heuristic: saturating in sample count (cap at 16 samples),
  // discounted by relative interquartile dispersion.  A single sample is
  // a point estimate with low confidence; many tightly grouped samples
  // approach 1.
  const double count_term =
      std::min(1.0, static_cast<double>(samples.size()) / 16.0);
  const double scale = std::max(std::abs(m.mean), 1e-12);
  const double dispersion = std::min(1.0, m.quartiles.iqr() / scale);
  m.accuracy = count_term * (1.0 - 0.5 * dispersion);
  return m;
}

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

std::string to_string(const QuartileSummary& q) {
  std::ostringstream os;
  os << "[" << q.min << ", " << q.q1 << ", " << q.median << ", " << q.q3
     << ", " << q.max << "]";
  return os.str();
}

std::string to_string(const Measurement& m) {
  std::ostringstream os;
  os << to_string(m.quartiles) << " mean=" << m.mean << " n=" << m.samples
     << " acc=" << m.accuracy;
  return os.str();
}

}  // namespace remos
