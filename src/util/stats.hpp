// Statistical summaries used by the Remos data representation (paper §4.4).
//
// Remos reports every dynamic quantity as a set of quartile measures plus
// an estimation-accuracy figure, because network measurements rarely follow
// a known distribution (bursty cross-traffic gives bimodal availability).
// QuartileSummary is that representation; this header also provides the
// sample-set reductions that produce it.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace remos {

/// Five-number summary of a sample set: minimum, first quartile, median,
/// third quartile, maximum -- "considered the best choice for an unknown
/// data distribution" (Jain 1991, cited as [15] in the paper).
struct QuartileSummary {
  double min = 0;
  double q1 = 0;
  double median = 0;
  double q3 = 0;
  double max = 0;

  double spread() const { return max - min; }
  double iqr() const { return q3 - q1; }

  /// Scales all five numbers (e.g. octets -> bits).
  QuartileSummary scaled(double factor) const;

  bool operator==(const QuartileSummary&) const = default;
};

/// A dynamic quantity as the Remos API reports it: quartiles of observed
/// values, the sample mean, the number of samples behind the estimate, and
/// an accuracy grade in [0,1] (1 = invariant physical capacity; lower as
/// the estimate rests on fewer or more dispersed samples).
struct Measurement {
  QuartileSummary quartiles;
  double mean = 0;
  std::size_t samples = 0;
  double accuracy = 0;

  /// An exactly-known (static) quantity, e.g. a link's physical capacity.
  static Measurement exact(double value);

  /// Summarizes a sample set.  Accuracy grows with sample count and falls
  /// with relative dispersion; empty input yields a zero, accuracy-0 value.
  static Measurement from_samples(const std::vector<double>& samples);

  bool known() const { return samples > 0; }
};

/// Linear-interpolation quantile (R-7, the default in S and numpy) of an
/// unsorted sample set.  q in [0,1].  Throws InvalidArgument on empty input.
double quantile(std::vector<double> samples, double q);

/// Five-number summary of an unsorted sample set (single sort internally).
QuartileSummary quartiles_of(std::vector<double> samples);

/// Incremental mean/variance (Welford) for streaming statistics.
class RunningStats {
 public:
  void add(double x);
  std::size_t count() const { return n_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 for fewer than two samples.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0;
  double m2_ = 0;
  double min_ = 0;
  double max_ = 0;
};

std::string to_string(const QuartileSummary& q);
std::string to_string(const Measurement& m);

}  // namespace remos
