#include "util/strings.hpp"

#include <cstdio>

namespace remos {

std::string join(const std::vector<std::string>& items,
                 const std::string& sep) {
  std::string out;
  for (std::size_t i = 0; i < items.size(); ++i) {
    if (i > 0) out += sep;
    out += items[i];
  }
  return out;
}

std::vector<std::string> split(const std::string& s, char sep) {
  std::vector<std::string> out;
  std::string cur;
  for (char c : s) {
    if (c == sep) {
      out.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  out.push_back(cur);
  return out;
}

std::string fixed(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, value);
  return buf;
}

std::string pad_left(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return std::string(width - s.size(), ' ') + s;
}

std::string pad_right(const std::string& s, std::size_t width) {
  if (s.size() >= width) return s;
  return s + std::string(width - s.size(), ' ');
}

}  // namespace remos
