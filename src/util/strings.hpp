// Small string helpers shared by reporting code.
#pragma once

#include <string>
#include <vector>

namespace remos {

/// Joins items with a separator: join({"a","b"}, ", ") == "a, b".
std::string join(const std::vector<std::string>& items,
                 const std::string& sep);

/// Splits on a single-character separator; keeps empty fields.
std::vector<std::string> split(const std::string& s, char sep);

/// Fixed-precision decimal formatting ("%.*f").
std::string fixed(double value, int decimals);

/// Left-pads to the given width with spaces.
std::string pad_left(const std::string& s, std::size_t width);

/// Right-pads to the given width with spaces.
std::string pad_right(const std::string& s, std::size_t width);

}  // namespace remos
