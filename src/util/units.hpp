// Physical units used throughout Remos.
//
// The model works in SI base units: seconds for time, bits/second for
// bandwidth, bytes for data volumes.  Plain doubles are used (the fluid
// simulator integrates piecewise-constant rates, so double precision is
// ample), with named constructors so that call sites read in the units
// the paper uses (Mbps links, KB/MB transfers).
#pragma once

namespace remos {

/// Simulated time, in seconds since simulation start.
using Seconds = double;

/// Bandwidth/data rate, in bits per second.
using BitsPerSec = double;

/// Data volume, in bytes.
using Bytes = double;

constexpr BitsPerSec kbps(double v) { return v * 1e3; }
constexpr BitsPerSec mbps(double v) { return v * 1e6; }
constexpr BitsPerSec gbps(double v) { return v * 1e9; }

constexpr Bytes kib(double v) { return v * 1024.0; }
constexpr Bytes mib(double v) { return v * 1024.0 * 1024.0; }

constexpr Seconds millis(double v) { return v * 1e-3; }
constexpr Seconds micros(double v) { return v * 1e-6; }

/// Converts a rate back to Mbps for reporting.
constexpr double to_mbps(BitsPerSec v) { return v / 1e6; }

/// Time to move `volume` bytes at `rate` bits/sec.
constexpr Seconds transfer_time(Bytes volume, BitsPerSec rate) {
  return volume * 8.0 / rate;
}

}  // namespace remos
