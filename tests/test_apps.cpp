// Calibration tests: the application models must land near the paper's
// dedicated-network numbers (Table 1) within a modest tolerance, and the
// harness must wire the full Figure-2 pipeline.
#include <gtest/gtest.h>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "fx/runtime.hpp"
#include "util/error.hpp"

namespace remos::apps {
namespace {

double run_on(const fx::AppModel& app, std::vector<std::string> nodes) {
  CmuHarness h;
  return fx::FxRuntime(h.sim(), app, std::move(nodes)).run().total;
}

TEST(Calibration, Fft512MatchesPaperShape) {
  // Paper Table 1: 0.462 s on {m-4,m-5}; 0.266 s on {m-4,m-5,m-6,m-7}.
  const double t2 = run_on(apps::make_fft(512), {"m-4", "m-5"});
  const double t4 = run_on(apps::make_fft(512), {"m-4", "m-5", "m-6", "m-7"});
  EXPECT_NEAR(t2, 0.462, 0.07);
  EXPECT_NEAR(t4, 0.266, 0.07);
  EXPECT_LT(t4, t2);  // more nodes still wins at this size
}

TEST(Calibration, Fft1kMatchesPaperShape) {
  // Paper: 2.63 s on 2 nodes, 1.51 s on 4.
  const double t2 = run_on(apps::make_fft(1024), {"m-4", "m-5"});
  const double t4 =
      run_on(apps::make_fft(1024), {"m-4", "m-5", "m-6", "m-7"});
  EXPECT_NEAR(t2, 2.63, 0.4);
  EXPECT_NEAR(t4, 1.51, 0.4);
}

TEST(Calibration, AirshedMatchesPaperShape) {
  // Paper: 908 s on 3 nodes, 650 s on 5.
  const double t3 = run_on(apps::make_airshed(), {"m-4", "m-5", "m-6"});
  const double t5 =
      run_on(apps::make_airshed(), {"m-4", "m-5", "m-6", "m-7", "m-8"});
  EXPECT_NEAR(t3, 908.0, 90.0);
  EXPECT_NEAR(t5, 650.0, 65.0);
}

TEST(Calibration, AirshedCompiledFor8On5CarriesOverhead) {
  // Paper Table 3: the fixed 8-chunk/5-node run takes ~862 s vs ~650 s
  // for the native 5-node program (about 1.33x).
  const std::vector<std::string> five{"m-4", "m-5", "m-6", "m-7", "m-8"};
  const double native = run_on(apps::make_airshed(), five);
  const double pinned = run_on(apps::make_airshed(24, 8), five);
  EXPECT_GT(pinned, native * 1.1);
  EXPECT_LT(pinned, native * 1.5);
}

TEST(AppModels, Validation) {
  EXPECT_THROW(apps::make_fft(1), InvalidArgument);
  EXPECT_THROW(apps::make_airshed(0), InvalidArgument);
  const fx::AppModel fft = apps::make_fft(512);
  EXPECT_EQ(fft.iterations, 1u);
  EXPECT_EQ(fft.phases.size(), 3u);
  const fx::AppModel air = apps::make_airshed();
  EXPECT_EQ(air.iterations, 24u);
  EXPECT_EQ(air.tasks_for(5), 5u);
  EXPECT_EQ(apps::make_airshed(24, 8).tasks_for(5), 8u);
}

TEST(Harness, FullPipelineDelivers) {
  CmuHarness h;
  h.start(10.0);
  EXPECT_EQ(h.collector().model().nodes().size(), 11u);
  EXPECT_GT(h.collector().polls_completed(), 2u);
  const auto g =
      h.modeler().get_graph(h.hosts(), core::Timeframe::current());
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_THROW(h.host_stats("aspen"), NotFoundError);
  EXPECT_NO_THROW(h.host_stats("m-1"));
}

TEST(Harness, HostAgentsOptional) {
  CmuHarness::Options o;
  o.host_agents = false;
  CmuHarness h(o);
  h.start(5.0);
  EXPECT_FALSE(h.collector().model().node("m-1").has_host_info);
  EXPECT_THROW(h.host_stats("m-1"), NotFoundError);
}

}  // namespace
}  // namespace remos::apps
