// BreakerBoard half-open recovery edges (PR 1 hardening follow-up).
//
// The closed -> open -> half-open lifecycle has corners the original
// chaos suite never pinned down:
//   - a probe that succeeds and then the agent fails again (re-trip);
//   - two clients sharing one board racing probes at a half-open breaker;
//   - an agent crash/restart landing exactly mid-half-open.
#include <gtest/gtest.h>

#include "snmp/agent.hpp"
#include "snmp/client.hpp"
#include "snmp/fault_injector.hpp"
#include "snmp/transport.hpp"
#include "util/error.hpp"

namespace remos::snmp {
namespace {

// --- Board-level unit tests (no wire) ---

TEST(BreakerHalfOpen, ProbeSuccessThenFailuresRetrip) {
  BreakerBoard::Options o;
  o.failure_threshold = 3;
  o.cooldown = 5.0;
  BreakerBoard b(o);
  bool probe = false;

  for (int i = 0; i < 3; ++i) b.on_failure("a", 0.0);
  ASSERT_EQ(b.state("a"), BreakerBoard::State::kOpen);

  // Cooldown elapses, the probe is admitted and succeeds: fully closed.
  ASSERT_TRUE(b.admit("a", 6.0, &probe));
  EXPECT_TRUE(probe);
  b.on_success("a");
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kClosed);

  // The success must have reset the consecutive-failure count: it takes
  // a full threshold of fresh failures to re-trip, not one.
  b.on_failure("a", 7.0);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kClosed);
  b.on_failure("a", 7.5);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kClosed);
  b.on_failure("a", 8.0);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kOpen);

  // And the new open window dates from the re-trip, not the first trip.
  EXPECT_FALSE(b.admit("a", 12.0, &probe));  // 8.0 + 5.0 > 12.0
  EXPECT_TRUE(b.admit("a", 13.1, &probe));
  EXPECT_TRUE(probe);
}

TEST(BreakerHalfOpen, ProbeFailureReopensWithFreshCooldown) {
  BreakerBoard::Options o;
  o.failure_threshold = 3;
  o.cooldown = 5.0;
  BreakerBoard b(o);
  bool probe = false;

  for (int i = 0; i < 3; ++i) b.on_failure("a", 0.0);
  ASSERT_TRUE(b.admit("a", 6.0, &probe));
  ASSERT_TRUE(probe);

  // One failed probe reopens immediately -- no threshold accumulation in
  // half-open -- and restarts the cooldown from the probe's failure time.
  b.on_failure("a", 6.2);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kOpen);
  EXPECT_FALSE(b.admit("a", 9.0, &probe));   // old cooldown would allow
  EXPECT_FALSE(b.admit("a", 11.0, &probe));  // 6.2 + 5.0 > 11.0
  EXPECT_TRUE(b.admit("a", 11.3, &probe));
  EXPECT_TRUE(probe);
  EXPECT_EQ(b.fast_failures(), 2u);
}

TEST(BreakerHalfOpen, SecondCallerDuringUnresolvedProbeIsAlsoAProbe) {
  // Two clients share one board.  Client A's probe is in flight
  // (unresolved) when client B asks: B must also be treated as a probe
  // (one attempt, no retry storm) rather than fast-failed or admitted
  // as a normal exchange.
  BreakerBoard b;
  bool probe_a = false, probe_b = false;
  for (int i = 0; i < 3; ++i) b.on_failure("a", 0.0);
  ASSERT_TRUE(b.admit("a", 6.0, &probe_a));
  EXPECT_TRUE(probe_a);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kHalfOpen);
  ASSERT_TRUE(b.admit("a", 6.0, &probe_b));
  EXPECT_TRUE(probe_b);

  // Whichever probe resolves first decides for both: a failure reopens...
  b.on_failure("a", 6.1);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kOpen);
  // ...and the straggler's own failure just refreshes the open window.
  b.on_failure("a", 6.2);
  EXPECT_EQ(b.state("a"), BreakerBoard::State::kOpen);
}

// --- Wire-level integration: real Transport/Agent/Client with a manual
// clock and fault injector ---

struct Rig {
  Transport transport;
  FaultInjector fx;
  Agent agent;
  BreakerBoard board;
  Seconds clock = 0.0;

  explicit Rig(BreakerBoard::Options bo) : board(bo) {
    transport.set_clock([this] { return clock; });
    transport.set_fault_injector(&fx);
    agent.mib().add_constant(Oid({1, 3, 7}), Value::integer(42));
    agent.bind(transport, "udp://r:161");
  }

  Client client() {
    Client::Config cfg;
    cfg.max_attempts = 2;
    cfg.timeout_budget = 0.5;
    return Client(transport, "udp://r:161", "public", cfg, &board);
  }
};

TEST(BreakerHalfOpenWire, CrashTripsProbeRecoversThenRetrips) {
  BreakerBoard::Options bo;
  bo.failure_threshold = 2;
  bo.cooldown = 5.0;
  Rig rig(bo);
  Client c = rig.client();

  // Healthy exchange first.
  EXPECT_EQ(c.get(Oid({1, 3, 7})).as_integer(), 42);

  // Agent crashes: exchanges fail until the breaker opens, after which
  // they fast-fail without touching the wire.
  rig.fx.crash("udp://r:161", {1.0, 10.0});
  rig.clock = 2.0;
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kOpen);
  const std::uint64_t wire_before = rig.transport.datagrams_sent();
  EXPECT_THROW(c.get(Oid({1, 3, 7})), CircuitOpenError);
  EXPECT_EQ(rig.transport.datagrams_sent(), wire_before);  // fast-failed

  // The agent restarts; after the cooldown one probe closes the breaker.
  rig.clock = 12.0;
  EXPECT_EQ(c.get(Oid({1, 3, 7})).as_integer(), 42);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kClosed);

  // Succeeds-then-fails: a fresh crash must take a full threshold of
  // failures to re-trip even though the breaker was recently open.
  rig.fx.crash("udp://r:161", {13.0, 30.0});
  rig.clock = 14.0;
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kClosed);
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kOpen);
}

TEST(BreakerHalfOpenWire, CrashMidHalfOpenReopensAndLaterRecovers) {
  BreakerBoard::Options bo;
  bo.failure_threshold = 2;
  bo.cooldown = 5.0;
  Rig rig(bo);
  Client c = rig.client();

  // Trip the breaker with a crash, then schedule the restart so the
  // half-open probe lands while the agent is STILL down: the probe must
  // burn exactly one attempt, reopen the breaker, and the next cooldown
  // must date from the failed probe.
  rig.fx.crash("udp://r:161", {0.0, 20.0});
  rig.clock = 1.0;
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  ASSERT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kOpen);

  rig.clock = 7.0;  // past cooldown, agent still crashed
  const std::uint64_t wire_before = rig.transport.datagrams_sent();
  EXPECT_THROW(c.get(Oid({1, 3, 7})), TimeoutError);
  // A probe spends one datagram, not a retry volley.
  EXPECT_EQ(rig.transport.datagrams_sent(), wire_before + 1);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kOpen);

  // Before the refreshed cooldown expires: fast-fail, no wire traffic.
  rig.clock = 9.0;
  EXPECT_THROW(c.get(Oid({1, 3, 7})), CircuitOpenError);

  // Agent back up, cooldown elapsed: the next probe restores service and
  // the restarted agent's re-based counters do not confuse the client.
  rig.clock = 21.0;
  EXPECT_EQ(c.get(Oid({1, 3, 7})).as_integer(), 42);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kClosed);
  EXPECT_EQ(rig.board.open_count(), 0u);
}

TEST(BreakerHalfOpenWire, TwoClientsSharingOneBoardProbeConcurrently) {
  BreakerBoard::Options bo;
  bo.failure_threshold = 2;
  bo.cooldown = 5.0;
  Rig rig(bo);
  Client a = rig.client();
  Client b = rig.client();

  rig.fx.crash("udp://r:161", {0.0, 6.0});
  rig.clock = 1.0;
  EXPECT_THROW(a.get(Oid({1, 3, 7})), TimeoutError);
  EXPECT_THROW(b.get(Oid({1, 3, 7})), TimeoutError);
  ASSERT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kOpen);

  // While open, BOTH clients fast-fail -- the board is genuinely shared.
  EXPECT_THROW(a.get(Oid({1, 3, 7})), CircuitOpenError);
  EXPECT_THROW(b.get(Oid({1, 3, 7})), CircuitOpenError);
  EXPECT_EQ(rig.board.fast_failures(), 2u);

  // Past cooldown with the agent healthy again: client A's probe closes
  // the breaker, and client B immediately gets normal service (its own
  // exchange is a regular closed-state one, not a second probe).
  rig.clock = 7.0;
  EXPECT_EQ(a.get(Oid({1, 3, 7})).as_integer(), 42);
  EXPECT_EQ(rig.board.state("udp://r:161"), BreakerBoard::State::kClosed);
  EXPECT_EQ(b.get(Oid({1, 3, 7})).as_integer(), 42);
}

}  // namespace
}  // namespace remos::snmp
