// Chaos soak: the full measurement plane under a scripted multi-fault
// schedule on the Figure-3 CMU testbed.  The acceptance bar for graceful
// degradation:
//   - the collector's poll() never throws, no matter what the transport
//     does to it;
//   - router health transitions (healthy -> degraded -> unreachable and
//     back) are observable in the collector's log;
//   - data from a crashed router keeps answering queries, with accuracy
//     decaying monotonically as it goes stale;
//   - a permanently dead router costs O(1) datagrams per poll cycle once
//     its circuit breaker opens;
//   - everything is bit-for-bit reproducible from the seeds.
#include <gtest/gtest.h>

#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "fx/adaptation.hpp"
#include "fx/runtime.hpp"
#include "netsim/traffic.hpp"
#include "snmp/fault_injector.hpp"
#include "snmp/mib2.hpp"
#include "util/error.hpp"

namespace remos {
namespace {

using apps::CmuHarness;
using collector::AgentHealth;
using collector::HealthTransition;
using snmp::FaultInjector;

bool saw_transition(const std::vector<HealthTransition>& log,
                    const std::string& router, AgentHealth to) {
  for (const HealthTransition& t : log)
    if (t.router == router && t.to == to) return true;
  return false;
}

/// Least accuracy among links with any known usage in the logical graph
/// for `nodes` at the current timeframe.
double min_usage_accuracy(const core::Modeler& modeler,
                          const std::vector<std::string>& nodes) {
  const core::NetworkGraph g =
      modeler.get_graph(nodes, core::Timeframe::current());
  double acc = 1.0;
  bool any = false;
  for (const core::GraphLink& l : g.links()) {
    if (!l.used_ab.known() && !l.used_ba.known()) continue;
    any = true;
    acc = std::min(acc,
                   std::max(l.used_ab.known() ? l.used_ab.accuracy : 0.0,
                            l.used_ba.known() ? l.used_ba.accuracy : 0.0));
  }
  return any ? acc : -1.0;
}

TEST(ChaosSoak, MultiFaultScheduleDegradesGracefully) {
  CmuHarness::Options o;
  o.poll_period = 2.0;
  CmuHarness h(o);
  FaultInjector& fx = h.fault_injector();

  // The schedule: a 30% loss burst, two agent crash/restarts, a counter
  // reset without downtime, and (below, on the simulator) a link flap.
  fx.loss_burst({30.0, 60.0}, 0.30);
  fx.crash(snmp::agent_address("timberline"), {70.0, 90.0});
  fx.counter_reset(snmp::agent_address("aspen"), 100.0);
  fx.crash(snmp::agent_address("whiteface"), {120.0, 150.0});

  h.start(6.0);
  // Background traffic so link histories carry real usage.
  netsim::CbrTraffic cbr(h.sim(), "m-5", "m-8", mbps(20), 4.0);

  h.sim().run_for(94.0);  // through the burst and the timberline crash

  // Timberline died for 10 poll periods: it must have been marked
  // unreachable and recovered after the restart.
  EXPECT_TRUE(saw_transition(h.collector().health_log(), "timberline",
                             AgentHealth::kUnreachable));
  EXPECT_TRUE(saw_transition(h.collector().health_log(), "timberline",
                             AgentHealth::kHealthy));
  EXPECT_EQ(h.collector().health("timberline"), AgentHealth::kHealthy);

  h.sim().run_for(22.0);  // now 122: past the aspen counter reset
  // The reset re-based aspen's counters; the collector must have dropped
  // the implausible delta instead of recording a garbage sample.
  EXPECT_GE(h.collector().implausible_deltas(), 1u);

  // Whiteface is crashed from 120 to 150.  Its last samples keep
  // answering m-7/m-8 queries, with accuracy decaying as they age.
  std::vector<double> acc;
  for (int i = 0; i < 4; ++i) {
    h.sim().run_for(6.0);
    acc.push_back(min_usage_accuracy(h.modeler(), {"m-7", "m-8"}));
  }
  for (double a : acc) ASSERT_GT(a, 0.0);  // still answering
  for (std::size_t i = 1; i < acc.size(); ++i)
    EXPECT_LT(acc[i], acc[i - 1]) << "accuracy must decay with age";
  EXPECT_EQ(h.collector().health("whiteface"), AgentHealth::kUnreachable);

  // poll() is explicitly exception-free, even mid-crash.
  EXPECT_NO_THROW(h.collector().poll());

  h.sim().run_for(14.0);  // now 160: whiteface restarted
  EXPECT_EQ(h.collector().health("whiteface"), AgentHealth::kHealthy);
  const double recovered = min_usage_accuracy(h.modeler(), {"m-7", "m-8"});
  EXPECT_GT(recovered, acc.back());  // fresh samples restore confidence

  // Link flap on the physical plane: ifOperStatus must track it.
  const auto& topo = h.sim().topology();
  const netsim::LinkId tw = topo.link_between(topo.id_of("timberline"),
                                              topo.id_of("whiteface"));
  h.sim().set_link_up(tw, false);
  h.sim().run_for(5.0);
  const collector::ModelLink* ml =
      h.collector().model().find_link("timberline", "whiteface");
  ASSERT_NE(ml, nullptr);
  EXPECT_FALSE(ml->up);
  h.sim().set_link_up(tw, true);
  h.sim().run_for(5.0);
  EXPECT_TRUE(ml->up);

  // The soak really exercised the fault machinery and never lost the
  // polling loop.
  EXPECT_GT(fx.faults_injected(), 0u);
  EXPECT_GT(h.collector().breakers().fast_failures(), 0u);
  EXPECT_GT(h.collector().polls_completed(), 80u);
}

TEST(ChaosBreaker, DeadRouterCostsO1DatagramsPerPollCycle) {
  CmuHarness::Options o;
  o.poll_period = 2.0;
  CmuHarness h(o);
  const std::string dead = snmp::agent_address("whiteface");
  h.fault_injector().crash(dead, {10.0, FaultInjector::Window{}.until});

  h.start(6.0);
  h.sim().run_for(24.0);  // t=30: breaker long open

  EXPECT_EQ(h.collector().breakers().open_count(), 1u);
  const std::uint64_t before = h.transport().datagrams_sent_to(dead);
  const int cycles = 20;
  h.sim().run_for(cycles * o.poll_period);
  const std::uint64_t cost =
      h.transport().datagrams_sent_to(dead) - before;
  // A healthy router costs ~a dozen datagrams per poll (uptime + one
  // multi-GET per interface, requests and responses).  Open-breaker polls
  // must average O(1): only the periodic half-open probes touch the wire.
  EXPECT_LE(cost, static_cast<std::uint64_t>(2 * cycles));
  EXPECT_GT(h.collector().breakers().fast_failures(), 0u);
  EXPECT_EQ(h.collector().health("whiteface"), AgentHealth::kUnreachable);

  // The rest of the network is unaffected: queries between live hosts
  // still answer with full-confidence data.
  EXPECT_GT(min_usage_accuracy(h.modeler(), {"m-1", "m-4"}), 0.0);
}

TEST(ChaosAdaptive, AdaptiveRunBeatsFixedUnderInterferenceAndFaults) {
  // Table-3-style comparison with the interfering-1 traffic pattern plus
  // a management-plane loss burst: adaptation must still find the quiet
  // side of the network and beat the fixed mapping.
  auto run = [](bool adaptive) {
    CmuHarness h;
    h.fault_injector().loss_burst({20.0, 50.0}, 0.30);
    h.start(5.0);
    netsim::CbrTraffic blast(h.sim(), "m-6", "m-8", mbps(95), 120.0,
                             "external");
    h.sim().run_for(10.0);
    const std::vector<std::string> start_nodes{"m-4", "m-5", "m-6", "m-7",
                                               "m-8"};
    fx::FxRuntime rt(h.sim(), apps::make_airshed(12, /*chunks=*/8),
                     start_nodes);
    std::unique_ptr<fx::AdaptationModule> adapt;
    if (adaptive) {
      fx::AdaptationModule::Options opts;
      opts.timeframe = core::Timeframe::history(10.0);
      opts.compensate_own_traffic = true;
      opts.min_accuracy = 0.2;  // exercise the gate without starving it
      adapt = std::make_unique<fx::AdaptationModule>(
          h.modeler(), h.hosts(), "m-4", opts);
      rt.set_adaptation(adapt.get());
    }
    return rt.run();
  };
  const fx::RunStats fixed_run = run(false);
  const fx::RunStats adaptive_run = run(true);
  EXPECT_GT(adaptive_run.migrations, 0u);
  EXPECT_LT(adaptive_run.total, fixed_run.total);
}

TEST(ChaosDeterminism, FixedSeedsReproduceBitForBit) {
  auto signature = [] {
    CmuHarness::Options o;
    o.poll_period = 2.0;
    o.seed = 0xBEEF;
    CmuHarness h(o);
    FaultInjector& fx = h.fault_injector();
    fx.loss_burst({10.0, 30.0}, 0.30);
    fx.crash(snmp::agent_address("aspen"), {35.0, 50.0});
    fx.corrupt({52.0, 58.0}, 0.25);
    fx.truncate({52.0, 58.0}, 0.25);
    fx.stick_counters(snmp::agent_address("timberline"), {40.0, 55.0});
    h.start(6.0);
    netsim::CbrTraffic cbr(h.sim(), "m-1", "m-6", mbps(30), 4.0);
    h.sim().run_for(60.0);

    std::ostringstream out;
    out << h.transport().datagrams_sent() << '/'
        << h.transport().bytes_sent() << '/'
        << h.transport().datagrams_lost() << '/'
        << fx.faults_injected() << '/'
        << h.collector().implausible_deltas() << '/'
        << h.collector().breakers().fast_failures() << '\n';
    for (const HealthTransition& t : h.collector().health_log())
      out << t.at << ' ' << t.router << ' '
          << collector::to_string(t.from) << "->"
          << collector::to_string(t.to) << '\n';
    for (const collector::ModelLink& l : h.collector().model().links()) {
      out << l.a << '-' << l.b << ' ' << l.last_update << ' '
          << l.history.size();
      if (!l.history.empty())
        out << ' ' << l.history.latest().at << ' '
            << l.history.latest().used_ab << ' '
            << l.history.latest().used_ba;
      out << '\n';
    }
    return out.str();
  };
  const std::string first = signature();
  const std::string second = signature();
  EXPECT_EQ(first, second);
}

}  // namespace
}  // namespace remos
