#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/harness.hpp"
#include "cluster/clustering.hpp"
#include "cluster/distance.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"
#include "util/rng.hpp"

namespace remos::cluster {
namespace {

using apps::CmuHarness;
using core::Timeframe;

class ClusterOnTestbed : public ::testing::Test {
 protected:
  ClusterOnTestbed() { harness_.start(10.0); }

  DistanceMatrix distances(const Timeframe& tf = Timeframe::current()) {
    const core::NetworkGraph g =
        harness_.modeler().get_graph(harness_.hosts(), tf);
    return DistanceMatrix(g, harness_.hosts());
  }

  CmuHarness harness_;
};

TEST_F(ClusterOnTestbed, DistanceMatrixSymmetricWithZeroDiagonal) {
  const DistanceMatrix d = distances();
  EXPECT_EQ(d.size(), 8u);
  for (std::size_t i = 0; i < d.size(); ++i) {
    EXPECT_DOUBLE_EQ(d.at(i, i), 0.0);
    for (std::size_t j = 0; j < d.size(); ++j)
      EXPECT_DOUBLE_EQ(d.at(i, j), d.at(j, i));
  }
  // Clean 100 Mbps paths normalize to distance 1.
  EXPECT_NEAR(d.at("m-4", "m-5"), 1.0, 0.05);
  EXPECT_NEAR(d.at("m-1", "m-8"), 1.0, 0.05);
}

TEST_F(ClusterOnTestbed, DistanceGrowsOnCongestedPaths) {
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(80));
  harness_.sim().run_for(10.0);
  const DistanceMatrix d = distances();
  EXPECT_NEAR(d.at("m-4", "m-5"), 1.0, 0.05);       // clean
  EXPECT_GT(d.at("m-6", "m-8"), 4.0);               // 20 Mbps left
  EXPECT_GT(d.at("m-4", "m-8"), 4.0);               // shares t->w link
}

TEST_F(ClusterOnTestbed, DistanceValidation) {
  const core::NetworkGraph g =
      harness_.modeler().get_graph(harness_.hosts(), Timeframe::current());
  EXPECT_THROW(DistanceMatrix(g, {}), InvalidArgument);
  EXPECT_THROW(DistanceMatrix(g, {"m-1", "m-1"}), InvalidArgument);
  EXPECT_THROW(DistanceMatrix(g, {"m-1", "nope"}), NotFoundError);
  DistanceMatrix d = distances();
  EXPECT_THROW(d.at(0, 99), InvalidArgument);
  EXPECT_THROW(d.index_of("nope"), NotFoundError);
  EXPECT_FALSE(d.to_string().empty());
}

TEST_F(ClusterOnTestbed, GreedyPrefersSameRouterOnCleanNetwork) {
  const DistanceMatrix d = distances();
  const ClusterResult two = greedy_cluster(d, "m-4", 2);
  // m-5 and m-6 share timberline with m-4 (distance 1 vs 1 for all...
  // same-router pairs have 2-hop paths but identical bandwidth, so the
  // tie-break picks the lexicographically first: m-5.
  EXPECT_EQ(two.nodes, (std::vector<std::string>{"m-4", "m-5"}));
  const ClusterResult three = greedy_cluster(d, "m-4", 3);
  EXPECT_EQ(three.nodes,
            (std::vector<std::string>{"m-4", "m-5", "m-6"}));
}

TEST_F(ClusterOnTestbed, Figure4SelectionAvoidsBusyLinks) {
  // The paper's Figure 4: traffic m-6 -> timberline -> whiteface -> m-8;
  // start node m-4; expected selection {m-1, m-2, m-4, m-5}.
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(95), 19.0);
  harness_.sim().run_for(10.0);
  const DistanceMatrix d = distances(Timeframe::history(8.0));
  ClusterResult r = greedy_cluster(d, "m-4", 4);
  std::sort(r.nodes.begin(), r.nodes.end());
  EXPECT_EQ(r.nodes,
            (std::vector<std::string>{"m-1", "m-2", "m-4", "m-5"}));
}

TEST_F(ClusterOnTestbed, GreedyMatchesExhaustiveUnderTraffic) {
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(95), 19.0);
  harness_.sim().run_for(10.0);
  const DistanceMatrix d = distances(Timeframe::history(8.0));
  for (std::size_t k : {2u, 3u, 4u, 5u}) {
    const ClusterResult greedy = greedy_cluster(d, "m-4", k);
    const ClusterResult best = best_cluster_exhaustive(d, "m-4", k);
    // The heuristic is not guaranteed optimal, but on the testbed with
    // one hot link it should be within a small factor.
    EXPECT_LE(greedy.cost, best.cost * 1.3 + 1e-9) << "k=" << k;
    EXPECT_LE(best.cost, greedy.cost + 1e-9);
  }
}

TEST(ClusterCost, SumsPairwiseDistances) {
  // Hand-built 3-node matrix via a tiny graph.
  core::NetworkGraph g;
  core::GraphNode a, b, r;
  a.name = "a";
  b.name = "b";
  r.name = "r";
  r.is_compute = false;
  g.add_node(a);
  g.add_node(b);
  g.add_node(r);
  core::GraphLink l1, l2;
  l1.a = "a";
  l1.b = "r";
  l1.capacity = Measurement::exact(mbps(100));
  l1.latency = Measurement::exact(millis(1));
  l2 = l1;
  l2.a = "r";
  l2.b = "b";
  g.add_link(l1);
  g.add_link(l2);
  const DistanceMatrix d(g, {"a", "b"});
  EXPECT_NEAR(cluster_cost(d, {"a", "b"}), 1.0, 0.05);
  EXPECT_DOUBLE_EQ(cluster_cost(d, {"a"}), 0.0);
}

TEST(ClusterValidation, SizeAndMembershipChecks) {
  core::NetworkGraph g;
  core::GraphNode a, b, r;
  a.name = "a";
  b.name = "b";
  r.name = "r";
  r.is_compute = false;
  g.add_node(a);
  g.add_node(b);
  g.add_node(r);
  core::GraphLink l1;
  l1.a = "a";
  l1.b = "r";
  l1.capacity = Measurement::exact(mbps(100));
  l1.latency = Measurement::exact(millis(1));
  core::GraphLink l2 = l1;
  l2.a = "r";
  l2.b = "b";
  g.add_link(l1);
  g.add_link(l2);
  const DistanceMatrix d(g, {"a", "b"});
  EXPECT_THROW(greedy_cluster(d, "a", 0), InvalidArgument);
  EXPECT_THROW(greedy_cluster(d, "a", 3), InvalidArgument);
  EXPECT_THROW(greedy_cluster(d, "zz", 1), NotFoundError);
  EXPECT_THROW(best_cluster_exhaustive(d, "a", 0), InvalidArgument);
  const ClusterResult one = best_cluster_exhaustive(d, "a", 1);
  EXPECT_EQ(one.nodes, (std::vector<std::string>{"a"}));
  EXPECT_DOUBLE_EQ(one.cost, 0.0);
}

// Property: greedy cluster always contains the start node, has the
// requested size, no duplicates, and never beats the exhaustive optimum.
class GreedyProperty : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GreedyProperty, InvariantsOnRandomDistanceMatrices) {
  Rng rng(GetParam());
  // Random complete graph of 6 compute nodes via a star topology with
  // per-spoke capacities.
  core::NetworkGraph g;
  core::GraphNode hub;
  hub.name = "hub";
  hub.is_compute = false;
  g.add_node(hub);
  std::vector<std::string> names;
  for (int i = 0; i < 6; ++i) {
    core::GraphNode n;
    n.name = "h" + std::to_string(i);
    g.add_node(n);
    names.push_back(n.name);
    core::GraphLink l;
    l.a = n.name;
    l.b = "hub";
    l.capacity = Measurement::exact(mbps(rng.uniform(10, 100)));
    l.latency = Measurement::exact(millis(rng.uniform(0.1, 5)));
    g.add_link(l);
  }
  const DistanceMatrix d(g, names);
  const std::string start = names[rng.below(names.size())];
  const std::size_t k = 2 + rng.below(5);
  const ClusterResult greedy = greedy_cluster(d, start, k);
  EXPECT_EQ(greedy.nodes.size(), k);
  EXPECT_EQ(greedy.nodes.front(), start);
  std::set<std::string> unique(greedy.nodes.begin(), greedy.nodes.end());
  EXPECT_EQ(unique.size(), k);
  const ClusterResult best = best_cluster_exhaustive(d, start, k);
  EXPECT_GE(greedy.cost + 1e-9, best.cost);
}

INSTANTIATE_TEST_SUITE_P(Seeds, GreedyProperty,
                         ::testing::Range<std::uint64_t>(1, 33));

}  // namespace
}  // namespace remos::cluster
