// Fuzz-lite for the BER codec: every truncation and every single-bit
// flip of valid wire messages must resolve to a clean ProtocolError or a
// well-formed PDU -- never a crash, a hang, or a silently inconsistent
// decode.  This is the wire-robustness contract the fault injector's
// corruption and truncation faults rely on.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "snmp/codec.hpp"
#include "util/error.hpp"

namespace remos::snmp {
namespace {

std::vector<Pdu> corpus() {
  Pdu get;
  get.type = PduType::kGet;
  get.request_id = 42;
  get.bindings.push_back(
      VarBind{Oid({1, 3, 6, 1, 2, 1, 1, 5, 0}), Value::null()});

  Pdu response;
  response.type = PduType::kResponse;
  response.community = "remos";
  response.request_id = -7;
  response.bindings = {
      VarBind{Oid({1, 3, 1}), Value::integer(-123456789)},
      VarBind{Oid({1, 3, 2}), Value::counter32(4294967295u)},
      VarBind{Oid({1, 3, 3}), Value::gauge32(100000000u)},
      VarBind{Oid({1, 3, 4}), Value::time_ticks(360000u)},
      VarBind{Oid({1, 3, 5}), Value::octets("hello world")},
      VarBind{Oid({1, 3, 6}), Value::object_id(Oid({1, 3, 6, 1, 4, 1}))},
      VarBind{Oid({1, 3, 7}), Value::no_such_object()},
      VarBind{Oid({1, 3, 8}), Value::end_of_mib_view()},
  };

  Pdu error;
  error.type = PduType::kResponse;
  error.request_id = 7;
  error.error_status = ErrorStatus::kGenErr;
  error.error_index = 1;
  error.bindings.push_back(
      VarBind{Oid({1, 3, 6, 1, 4, 1, 57005, 4294967295u}), Value::null()});

  return {get, response, error};
}

TEST(CodecFuzz, EveryTruncationThrowsProtocolError) {
  for (const Pdu& p : corpus()) {
    const std::vector<std::uint8_t> wire = encode(p);
    for (std::size_t len = 0; len < wire.size(); ++len) {
      const std::vector<std::uint8_t> cut(wire.begin(),
                                          wire.begin() +
                                              static_cast<long>(len));
      EXPECT_THROW(decode(cut), ProtocolError)
          << "prefix of length " << len << " decoded";
    }
  }
}

TEST(CodecFuzz, EveryBitFlipDecodesCleanlyOrThrowsProtocolError) {
  for (const Pdu& p : corpus()) {
    const std::vector<std::uint8_t> wire = encode(p);
    for (std::size_t i = 0; i < wire.size(); ++i) {
      for (int bit = 0; bit < 8; ++bit) {
        std::vector<std::uint8_t> flipped = wire;
        flipped[i] = static_cast<std::uint8_t>(flipped[i] ^ (1u << bit));
        Pdu decoded;
        try {
          decoded = decode(flipped);
        } catch (const ProtocolError&) {
          continue;  // clean rejection: the contract
        }
        // The flip produced a structurally valid message.  It must be a
        // *stable* parse: re-encoding and re-decoding yields the same
        // PDU, so nothing downstream sees a value that shifts under it.
        // (Re-encoding itself may throw ProtocolError -- e.g. a flipped
        // leading OID arc can be unrepresentable -- which is also clean.)
        std::vector<std::uint8_t> rewire;
        try {
          rewire = encode(decoded);
        } catch (const ProtocolError&) {
          continue;
        }
        EXPECT_EQ(decode(rewire), decoded)
            << "unstable parse at byte " << i << " bit " << bit;
      }
    }
  }
}

TEST(CodecFuzz, GarbageHeadersNeverEscapeProtocolError) {
  // Every possible leading tag byte on an otherwise valid body.
  const std::vector<std::uint8_t> wire = encode(corpus()[0]);
  for (int tag = 0; tag < 256; ++tag) {
    std::vector<std::uint8_t> mutated = wire;
    mutated[0] = static_cast<std::uint8_t>(tag);
    try {
      (void)decode(mutated);
    } catch (const ProtocolError&) {
      // expected for almost every tag; anything else fails the test
    }
  }
}

}  // namespace
}  // namespace remos::snmp
