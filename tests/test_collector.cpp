#include <gtest/gtest.h>

#include "apps/harness.hpp"
#include "collector/benchmark_collector.hpp"
#include "collector/collector_set.hpp"
#include "collector/snmp_collector.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"

namespace remos::collector {
namespace {

using apps::CmuHarness;

TEST(NetworkModel, NodeAndLinkBasics) {
  NetworkModel m;
  m.upsert_node("r1", true);
  m.upsert_node("h1", false);
  EXPECT_TRUE(m.has_node("r1"));
  EXPECT_TRUE(m.node("r1").is_router);
  EXPECT_FALSE(m.node("h1").is_router);
  EXPECT_THROW(m.node("zz"), NotFoundError);

  ModelLink& l = m.upsert_link("r1", "h1", mbps(100), millis(1));
  EXPECT_EQ(l.capacity, mbps(100));
  // Re-upsert in either orientation returns the same link.
  EXPECT_EQ(&m.upsert_link("h1", "r1", 0, 0), &l);
  EXPECT_EQ(m.links().size(), 1u);
  bool flipped = false;
  EXPECT_EQ(m.find_link("h1", "r1", &flipped), &l);
  EXPECT_TRUE(flipped);
  EXPECT_EQ(m.find_link("h1", "zz"), nullptr);
  EXPECT_THROW(m.upsert_link("r1", "r1", 1, 0), InvalidArgument);
  EXPECT_THROW(m.upsert_link("r1", "zz", 1, 0), InvalidArgument);
}

TEST(NetworkModel, RouterKnowledgeDominates) {
  NetworkModel m;
  m.upsert_node("x", false);
  m.upsert_node("x", true);
  EXPECT_TRUE(m.node("x").is_router);
  m.upsert_node("x", false);  // cannot demote
  EXPECT_TRUE(m.node("x").is_router);
}

TEST(LinkHistory, WindowingSelectsSamples) {
  LinkHistory h;
  for (int i = 1; i <= 10; ++i)
    h.record(Sample{static_cast<Seconds>(i), i * 1.0, i * 2.0});
  // Window (5, 10]: samples at t=6..10.
  const auto ab = h.used_in_window(10.0, 5.0, true);
  EXPECT_EQ(ab.size(), 5u);
  EXPECT_EQ(ab.front(), 6.0);
  EXPECT_EQ(ab.back(), 10.0);
  // window <= 0: everything.
  EXPECT_EQ(h.used_in_window(10.0, 0, false).size(), 10u);
  // Future samples (beyond now) excluded.
  EXPECT_EQ(h.used_in_window(5.0, 0, true).size(), 5u);
}

TEST(NetworkModel, MergeAdoptsNewerSamplesOnly) {
  NetworkModel a, b;
  a.upsert_node("x", true);
  a.upsert_node("y", true);
  b.upsert_node("x", true);
  b.upsert_node("y", true);
  ModelLink& la = a.upsert_link("x", "y", mbps(10), 0);
  la.history.record(Sample{1.0, 100, 200});
  la.history.record(Sample{2.0, 110, 210});
  // b holds the same link flipped, with one older + one newer sample.
  ModelLink& lb = b.upsert_link("y", "x", mbps(10), 0);
  lb.history.record(Sample{1.5, 999, 888});   // older than a's newest: skip
  lb.history.record(Sample{3.0, 333, 444});   // newer: adopt (flipped)
  a.merge_from(b);
  ASSERT_EQ(la.history.size(), 3u);
  EXPECT_EQ(la.history.latest().at, 3.0);
  EXPECT_EQ(la.history.latest().used_ab, 444);  // direction un-flipped
  EXPECT_EQ(la.history.latest().used_ba, 333);
}

class SnmpCollectorOnTestbed : public ::testing::Test {
 protected:
  SnmpCollectorOnTestbed() : harness_(make_options()) {}
  static CmuHarness::Options make_options() {
    CmuHarness::Options o;
    o.poll_period = 2.0;
    return o;
  }
  CmuHarness harness_;
};

TEST_F(SnmpCollectorOnTestbed, DiscoversFullTopologyFromOneSeed) {
  // Seeding only aspen must reach the whole triangle transitively.
  SnmpCollector solo(harness_.transport(), {"aspen"});
  solo.discover();
  const NetworkModel& m = solo.model();
  EXPECT_EQ(m.nodes().size(), 11u);
  EXPECT_EQ(m.links().size(), 11u);
  EXPECT_TRUE(m.node("whiteface").is_router);
  EXPECT_FALSE(m.node("m-8").is_router);
  EXPECT_NE(m.find_link("timberline", "whiteface"), nullptr);
  EXPECT_NE(m.find_link("m-6", "timberline"), nullptr);
  for (const ModelLink& l : m.links()) {
    EXPECT_EQ(l.capacity, mbps(100));
    EXPECT_GT(l.latency, 0);
  }
}

TEST_F(SnmpCollectorOnTestbed, HostInfoReadThroughHostAgents) {
  harness_.sim().set_cpu_load(harness_.sim().topology().id_of("m-3"), 0.5);
  harness_.host_stats("m-3").memory_mb = 1024;
  harness_.collector().discover();
  const ModelNode& n = harness_.collector().model().node("m-3");
  ASSERT_TRUE(n.has_host_info);
  EXPECT_DOUBLE_EQ(n.cpu_load, 0.5);
  EXPECT_EQ(n.memory_mb, 1024u);
}

TEST_F(SnmpCollectorOnTestbed, PollMeasuresDirectionalUtilization) {
  harness_.start(0.1);
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(40));
  harness_.sim().run_for(20.0);

  const NetworkModel& m = harness_.collector().model();
  bool flipped = false;
  const ModelLink* tw = m.find_link("timberline", "whiteface", &flipped);
  ASSERT_NE(tw, nullptr);
  ASSERT_FALSE(tw->history.empty());
  const Sample& s = tw->history.latest();
  const double toward_whiteface = flipped ? s.used_ba : s.used_ab;
  const double toward_timberline = flipped ? s.used_ab : s.used_ba;
  EXPECT_NEAR(toward_whiteface, mbps(40), mbps(1));
  EXPECT_NEAR(toward_timberline, 0.0, mbps(1));

  // The unrelated aspen side stays quiet.
  const ModelLink* at = m.find_link("aspen", "timberline");
  ASSERT_NE(at, nullptr);
  ASSERT_FALSE(at->history.empty());
  EXPECT_NEAR(at->history.latest().used_ab, 0.0, mbps(1));
}

TEST_F(SnmpCollectorOnTestbed, SurvivesCounterWrap) {
  harness_.start(0.1);
  // 95 Mbps wraps ifOutOctets (2^32 B) every ~361 s; run long enough to
  // wrap several times and verify no garbage samples appear.
  netsim::CbrTraffic cbr(harness_.sim(), "m-1", "m-7", mbps(95));
  harness_.sim().run_for(1200.0);
  const NetworkModel& m = harness_.collector().model();
  const ModelLink* link = m.find_link("m-1", "aspen");
  ASSERT_NE(link, nullptr);
  const auto rates = link->history.used_in_window(
      harness_.sim().now(), 600.0, link->a == "m-1");
  ASSERT_GT(rates.size(), 100u);
  for (double r : rates) EXPECT_NEAR(r, mbps(95), mbps(2));
}

TEST_F(SnmpCollectorOnTestbed, OnOffTrafficYieldsBimodalHistory) {
  harness_.start(0.1);
  netsim::OnOffTraffic::Config cfg;
  cfg.rate = mbps(60);
  cfg.mean_on = 6.0;
  cfg.mean_off = 6.0;
  cfg.seed = 11;
  netsim::OnOffTraffic gen(harness_.sim(),
                           harness_.sim().topology().id_of("m-4"),
                           harness_.sim().topology().id_of("m-5"), cfg);
  harness_.sim().run_for(300.0);
  const ModelLink* link =
      harness_.collector().model().find_link("m-4", "timberline");
  ASSERT_NE(link, nullptr);
  const Measurement m = link->history.used_measurement(
      harness_.sim().now(), 300.0, link->a == "m-4");
  // Bimodal: near 0 and near 60 Mbps; quartile spread must show it.
  EXPECT_GT(m.quartiles.max, mbps(55));
  EXPECT_LT(m.quartiles.min, mbps(5));
  EXPECT_GT(m.quartiles.spread(), mbps(50));
}

TEST(SnmpCollectorErrors, RequiresSeeds) {
  snmp::Transport t;
  EXPECT_THROW(SnmpCollector(t, {}), InvalidArgument);
}

TEST(SnmpCollectorErrors, AllSeedsUnreachableThrows) {
  snmp::Transport t;
  t.bind(snmp::agent_address("other"), [](const auto& d) {
    return std::optional(d);
  });
  SnmpCollector c(t, {"ghost"});
  EXPECT_THROW(c.discover(), Error);
  EXPECT_EQ(c.unreachable_agents(), 1u);
}

TEST(SnmpCollectorLoss, DiscoveryAndPollingSurviveLossyTransport) {
  CmuHarness::Options o;
  o.snmp_loss = 0.15;  // retries absorb this
  o.poll_period = 2.0;
  CmuHarness harness(o);
  harness.start(30.0);
  EXPECT_EQ(harness.collector().model().nodes().size(), 11u);
  EXPECT_GT(harness.collector().polls_completed(), 10u);
}

TEST(BenchmarkCollectorTest, MeasuresCleanAndCongestedPairs) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  BenchmarkCollector bench(sim, {"m-1", "m-4", "m-7"});
  bench.discover();
  EXPECT_EQ(bench.model().nodes().size(), 3u);
  EXPECT_EQ(bench.model().links().size(), 3u);  // clique

  bench.poll();  // clean network: every pair achieves full rate
  for (const ModelLink& l : bench.model().links()) {
    EXPECT_NEAR(l.capacity, mbps(100), mbps(2));
    EXPECT_GT(l.latency, 0);
    ASSERT_FALSE(l.history.empty());
  }

  // Congest timberline->whiteface; the m-4/m-7 pair must show usage.
  netsim::CbrTraffic cbr(sim, "m-5", "m-8", mbps(80), 4.0);
  bench.poll();
  bool flipped = false;
  const ModelLink* l = bench.model().find_link("m-4", "m-7", &flipped);
  ASSERT_NE(l, nullptr);
  const Sample& s = l->history.latest();
  const double used_toward_7 = flipped ? s.used_ba : s.used_ab;
  EXPECT_GT(used_toward_7, mbps(50));
  EXPECT_GT(bench.last_poll_duration(), 0.0);
}

TEST(BenchmarkCollectorTest, Validation) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  EXPECT_THROW(BenchmarkCollector(sim, {"m-1"}), InvalidArgument);
  BenchmarkCollector::Options bad;
  bad.probe_bytes = 0;
  EXPECT_THROW(BenchmarkCollector(sim, {"m-1", "m-2"}, bad),
               InvalidArgument);
  BenchmarkCollector ok(sim, {"m-1", "nope"});
  EXPECT_THROW(ok.discover(), NotFoundError);
}

TEST(CollectorSetTest, MergesSnmpAndBenchmarkViews) {
  CmuHarness harness;
  harness.start(10.0);
  BenchmarkCollector bench(harness.sim(), {"m-1", "m-8"});
  bench.discover();
  bench.poll();

  CollectorSet set;
  set.add(harness.collector());
  set.add(bench);
  EXPECT_THROW(set.add(bench), InvalidArgument);
  const NetworkModel merged = set.merged();
  // Physical topology (11 nodes) + the benchmark's logical m-1--m-8 link.
  EXPECT_EQ(merged.nodes().size(), 11u);
  EXPECT_EQ(merged.links().size(), 12u);
  EXPECT_NE(merged.find_link("m-1", "m-8"), nullptr);
  EXPECT_NE(merged.find_link("aspen", "timberline"), nullptr);
}

TEST(CollectorSetTest, PollRoundsAndMergeDurationAreObservable) {
  CmuHarness harness;
  harness.start(10.0);
  BenchmarkCollector bench(harness.sim(), {"m-1", "m-8"});
  bench.discover();

  obs::MetricsRegistry registry;
  CollectorSet set;
  set.set_obs(obs::Obs{&registry, nullptr});
  set.add(harness.collector());
  set.add(bench);
  std::size_t published = 0;
  set.set_publish_hook([&](NetworkModel) { ++published; });
  set.poll_all();
  set.poll_all();

  EXPECT_EQ(published, 2u);
  EXPECT_EQ(
      registry.counter("remos_collectorset_poll_rounds_total").value(), 2u);
  EXPECT_EQ(
      registry.counter("remos_collectorset_poll_errors_total").value(), 0u);
  // The publish path times merged(): one observation per round.
  EXPECT_EQ(registry
                .histogram("remos_collectorset_merge_duration_seconds",
                           obs::default_time_buckets())
                .count(),
            2u);
}

TEST(CollectorPolling, StartStopLifecycle) {
  CmuHarness harness;  // polling armed in ctor
  harness.start(9.0);
  const std::size_t polls = harness.collector().polls_completed();
  EXPECT_GE(polls, 3u);
  harness.collector().stop_polling();
  harness.sim().run_for(10.0);
  EXPECT_EQ(harness.collector().polls_completed(), polls);
  EXPECT_THROW(harness.collector().start_polling(harness.sim(), 0),
               InvalidArgument);
}

}  // namespace
}  // namespace remos::collector
