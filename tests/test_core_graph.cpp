#include <gtest/gtest.h>

#include <cmath>

#include "core/graph.hpp"
#include "util/error.hpp"

namespace remos::core {
namespace {

GraphNode compute(const std::string& name) {
  GraphNode n;
  n.name = name;
  n.is_compute = true;
  return n;
}

GraphNode router(const std::string& name) {
  GraphNode n;
  n.name = name;
  n.is_compute = false;
  return n;
}

GraphLink link(const std::string& a, const std::string& b, double cap_mbps,
               double used_ab_mbps = -1, double used_ba_mbps = -1,
               double latency_ms = 1.0) {
  GraphLink l;
  l.a = a;
  l.b = b;
  l.capacity = Measurement::exact(mbps(cap_mbps));
  l.latency = Measurement::exact(millis(latency_ms));
  if (used_ab_mbps >= 0)
    l.used_ab = Measurement::from_samples({mbps(used_ab_mbps)});
  if (used_ba_mbps >= 0)
    l.used_ba = Measurement::from_samples({mbps(used_ba_mbps)});
  return l;
}

NetworkGraph y_graph() {
  // a -- r1 -- b, r1 -- r2 -- c
  NetworkGraph g;
  g.add_node(compute("a"));
  g.add_node(compute("b"));
  g.add_node(compute("c"));
  g.add_node(router("r1"));
  g.add_node(router("r2"));
  g.add_link(link("a", "r1", 100));
  g.add_link(link("r1", "b", 100));
  g.add_link(link("r1", "r2", 100, 60, 0));
  g.add_link(link("r2", "c", 100));
  return g;
}

TEST(GraphLink, AvailabilityIsCapacityMinusUsed) {
  const GraphLink l = link("a", "b", 100, 30, 80);
  EXPECT_NEAR(l.available_ab().quartiles.median, mbps(70), 1);
  EXPECT_NEAR(l.available_ba().quartiles.median, mbps(20), 1);
  EXPECT_NEAR(l.available_from("a").quartiles.median, mbps(70), 1);
  EXPECT_NEAR(l.available_from("b").quartiles.median, mbps(20), 1);
  EXPECT_THROW(l.available_from("zz"), InvalidArgument);
}

TEST(GraphLink, UnknownUsageMeansFullCapacity) {
  const GraphLink l = link("a", "b", 100);
  EXPECT_DOUBLE_EQ(l.available_ab().quartiles.median, mbps(100));
}

TEST(GraphLink, QuartileFlipUnderSubtraction) {
  GraphLink l = link("a", "b", 100);
  l.used_ab = Measurement::from_samples({mbps(10), mbps(20), mbps(90)});
  const Measurement avail = l.available_ab();
  // Max usage (90) produces min availability (10).
  EXPECT_NEAR(avail.quartiles.min, mbps(10), 1);
  EXPECT_NEAR(avail.quartiles.max, mbps(90), 1);
  EXPECT_LE(avail.quartiles.q1, avail.quartiles.median);
  EXPECT_LE(avail.quartiles.median, avail.quartiles.q3);
}

TEST(GraphLink, AvailabilityClampsAtZero) {
  GraphLink l = link("a", "b", 10, 50);  // oversubscribed measurement
  EXPECT_DOUBLE_EQ(l.available_ab().quartiles.median, 0.0);
}

TEST(NetworkGraph, BasicShapeAndValidation) {
  NetworkGraph g = y_graph();
  EXPECT_EQ(g.node_count(), 5u);
  EXPECT_EQ(g.link_count(), 4u);
  EXPECT_TRUE(g.has_node("a"));
  EXPECT_THROW(g.node("zz"), NotFoundError);
  EXPECT_THROW(g.add_node(compute("a")), InvalidArgument);
  EXPECT_THROW(g.add_link(link("a", "a", 1)), InvalidArgument);
  EXPECT_THROW(g.add_link(link("a", "zz", 1)), InvalidArgument);
  EXPECT_THROW(g.add_link(link("a", "r1", 1)), InvalidArgument);  // dup
  EXPECT_EQ(g.compute_nodes(), (std::vector<std::string>{"a", "b", "c"}));
  EXPECT_EQ(g.neighbors("r1"),
            (std::vector<std::string>{"a", "b", "r2"}));
}

TEST(NetworkGraph, FindLinkEitherOrientation) {
  NetworkGraph g = y_graph();
  bool flipped = true;
  ASSERT_NE(g.find_link("a", "r1", &flipped), nullptr);
  EXPECT_FALSE(flipped);
  ASSERT_NE(g.find_link("r1", "a", &flipped), nullptr);
  EXPECT_TRUE(flipped);
  EXPECT_EQ(g.find_link("a", "b"), nullptr);
}

TEST(NetworkGraph, RouteThroughRouters) {
  NetworkGraph g = y_graph();
  const auto p = g.route("a", "c");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->nodes,
            (std::vector<std::string>{"a", "r1", "r2", "c"}));
  EXPECT_EQ(p->hops(), 3u);
}

TEST(NetworkGraph, ComputeNodesDoNotForward) {
  // a -- b -- c chain where b is a compute node: a cannot reach c via b.
  NetworkGraph g;
  g.add_node(compute("a"));
  g.add_node(compute("b"));
  g.add_node(compute("c"));
  g.add_link(link("a", "b", 100));
  g.add_link(link("b", "c", 100));
  EXPECT_FALSE(g.route("a", "c").has_value());
  EXPECT_EQ(g.bottleneck_available("a", "c"), 0.0);
  EXPECT_TRUE(std::isinf(g.path_latency("a", "c")));
}

TEST(NetworkGraph, SelfRoute) {
  NetworkGraph g = y_graph();
  const auto p = g.route("a", "a");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->hops(), 0u);
}

TEST(NetworkGraph, BottleneckUsesDirectionalAvailability) {
  NetworkGraph g = y_graph();
  // r1->r2 carries 60 Mbps of traffic; reverse is clean.
  EXPECT_NEAR(g.bottleneck_available("a", "c"), mbps(40), 1);
  EXPECT_NEAR(g.bottleneck_available("c", "a"), mbps(100), 1);
  EXPECT_NEAR(g.bottleneck_available("a", "b"), mbps(100), 1);
}

TEST(NetworkGraph, PathLatencySumsLinks) {
  NetworkGraph g = y_graph();
  EXPECT_NEAR(g.path_latency("a", "c"), millis(3), 1e-9);
  EXPECT_NEAR(g.path_latency("a", "b"), millis(2), 1e-9);
}

TEST(NetworkGraph, ToStringMentionsStructure) {
  NetworkGraph g = y_graph();
  const std::string s = g.to_string();
  EXPECT_NE(s.find("5 nodes"), std::string::npos);
  EXPECT_NE(s.find("r1 -- r2"), std::string::npos);
  EXPECT_NE(s.find("[compute]"), std::string::npos);
}

}  // namespace
}  // namespace remos::core
