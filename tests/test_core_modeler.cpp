// End-to-end Modeler tests: simulator -> SNMP -> collector -> queries.
#include <gtest/gtest.h>

#include <limits>

#include "apps/harness.hpp"
#include "core/remos_api.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"

namespace remos::core {
namespace {

using apps::CmuHarness;

class ModelerOnTestbed : public ::testing::Test {
 protected:
  ModelerOnTestbed() { harness_.start(10.0); }
  CmuHarness harness_;
};

TEST_F(ModelerOnTestbed, GetGraphPrunesToRelevantSubgraph) {
  // m-4 and m-5 share timberline.  Nothing from aspen or whiteface is
  // relevant, and the unqueried degree-2 router collapses away, leaving
  // a single logical link that abstracts it.
  const NetworkGraph g =
      harness_.modeler().get_graph({"m-4", "m-5"}, Timeframe::current());
  EXPECT_EQ(g.node_count(), 2u);
  EXPECT_FALSE(g.has_node("aspen"));
  EXPECT_FALSE(g.has_node("m-1"));
  ASSERT_EQ(g.link_count(), 1u);
  EXPECT_EQ(g.links()[0].abstracts,
            (std::vector<std::string>{"timberline"}));

  // With collapsing disabled the physical star is visible.
  LogicalOptions raw;
  raw.collapse_chains = false;
  const NetworkGraph star = harness_.modeler().get_graph(
      {"m-4", "m-5"}, Timeframe::current(), raw);
  EXPECT_EQ(star.node_count(), 3u);
  EXPECT_TRUE(star.has_node("timberline"));
  EXPECT_EQ(star.link_count(), 2u);
}

TEST_F(ModelerOnTestbed, GetGraphCollapsesInteriorChains) {
  // m-1 (aspen) to m-8 (whiteface): aspen and whiteface each keep degree
  // 2 on the relevant subgraph, so the whole interior collapses into one
  // logical link m-1 -- m-8 that abstracts both routers.
  const NetworkGraph g =
      harness_.modeler().get_graph({"m-1", "m-8"}, Timeframe::current());
  EXPECT_EQ(g.node_count(), 2u);
  ASSERT_EQ(g.link_count(), 1u);
  const GraphLink& l = g.links()[0];
  EXPECT_EQ(l.abstracts.size(), 2u);
  EXPECT_NEAR(l.capacity.mean, mbps(100), 1);
  // Latency adds up across the 3 collapsed hops.
  EXPECT_NEAR(l.latency.mean, 3 * millis(0.2), 1e-6);
}

TEST_F(ModelerOnTestbed, CollapseKeepsQueriedAndBranchingNodes) {
  // With three hosts on three different routers, the routers have degree
  // >= 3 in the relevant subgraph (triangle + access links) and survive.
  const NetworkGraph g = harness_.modeler().get_graph(
      {"m-1", "m-4", "m-7"}, Timeframe::current());
  EXPECT_TRUE(g.has_node("aspen"));
  EXPECT_TRUE(g.has_node("timberline"));
  EXPECT_TRUE(g.has_node("whiteface"));
  EXPECT_EQ(g.node_count(), 6u);
}

TEST_F(ModelerOnTestbed, GetGraphReflectsMeasuredTraffic) {
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(50));
  harness_.sim().run_for(10.0);
  const NetworkGraph g = harness_.modeler().get_graph(
      {"m-4", "m-6", "m-7", "m-8"}, Timeframe::current());
  bool flipped = false;
  const GraphLink* tw = g.find_link("timberline", "whiteface", &flipped);
  ASSERT_NE(tw, nullptr);
  const Measurement used = flipped ? tw->used_ba : tw->used_ab;
  EXPECT_NEAR(used.quartiles.median, mbps(50), mbps(2));
  const Measurement avail =
      flipped ? tw->available_ba() : tw->available_ab();
  EXPECT_NEAR(avail.quartiles.median, mbps(50), mbps(2));
}

TEST_F(ModelerOnTestbed, StaticTimeframeIgnoresTraffic) {
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(90));
  harness_.sim().run_for(10.0);
  const NetworkGraph g = harness_.modeler().get_graph(
      {"m-6", "m-8"}, Timeframe::statics());
  for (const GraphLink& l : g.links()) {
    EXPECT_FALSE(l.used_ab.known());
    EXPECT_DOUBLE_EQ(l.available_ab().quartiles.median, l.capacity.mean);
  }
}

TEST_F(ModelerOnTestbed, HistoryTimeframeAveragesWindow) {
  // 30 s of 80 Mbps followed by 30 s of idle: a 60 s window sees both.
  netsim::CbrTraffic cbr(harness_.sim(), "m-4", "m-5", mbps(80));
  harness_.sim().run_for(30.0);
  cbr.stop();
  harness_.sim().run_for(30.0);
  // The logical m-4 -- m-5 link (timberline collapsed inside).
  const NetworkGraph g = harness_.modeler().get_graph(
      {"m-4", "m-5"}, Timeframe::history(60.0));
  bool flipped = false;
  const GraphLink* l = g.find_link("m-4", "m-5", &flipped);
  ASSERT_NE(l, nullptr);
  const Measurement used = flipped ? l->used_ba : l->used_ab;
  EXPECT_GT(used.quartiles.max, mbps(75));
  EXPECT_LT(used.quartiles.min, mbps(5));
  EXPECT_GT(used.samples, 20u);
  // A short window sees only the idle tail.
  const NetworkGraph g2 = harness_.modeler().get_graph(
      {"m-4", "m-5"}, Timeframe::history(10.0));
  const GraphLink* l2 = g2.find_link("m-4", "m-5", &flipped);
  ASSERT_NE(l2, nullptr);
  const Measurement used2 = flipped ? l2->used_ba : l2->used_ab;
  EXPECT_LT(used2.quartiles.max, mbps(5));
}

TEST_F(ModelerOnTestbed, UnknownNodeRejected) {
  EXPECT_THROW(
      harness_.modeler().get_graph({"m-1", "nope"}, Timeframe::current()),
      NotFoundError);
  EXPECT_THROW(harness_.modeler().get_graph({}, Timeframe::current()),
               InvalidArgument);
}

TEST_F(ModelerOnTestbed, FlowInfoSingleFlowSeesBottleneck) {
  netsim::CbrTraffic cbr(harness_.sim(), "m-6", "m-8", mbps(60));
  harness_.sim().run_for(10.0);
  FlowQuery q;
  q.independent = FlowRequest{"m-4", "m-8", 0};
  q.timeframe = Timeframe::current();
  const FlowQueryResult r = harness_.modeler().flow_info(q);
  ASSERT_TRUE(r.independent.has_value());
  EXPECT_TRUE(r.independent->routable);
  // timberline->whiteface has 40 Mbps left.
  EXPECT_NEAR(r.independent->bandwidth.quartiles.median, mbps(40), mbps(3));
  EXPECT_NEAR(r.independent->latency.mean, 3 * millis(0.2), 1e-6);
}

TEST_F(ModelerOnTestbed, FixedFlowAdmission) {
  FlowQuery q;
  q.fixed.push_back(FlowRequest{"m-4", "m-5", mbps(30)});
  q.fixed.push_back(FlowRequest{"m-4", "m-5", mbps(80)});  // only 70 left
  const FlowQueryResult r = harness_.modeler().flow_info(q);
  ASSERT_EQ(r.fixed.size(), 2u);
  EXPECT_TRUE(r.fixed[0].satisfied);
  EXPECT_NEAR(r.fixed[0].bandwidth.quartiles.median, mbps(30), 1);
  EXPECT_FALSE(r.fixed[1].satisfied);  // filled only to the extent possible
  EXPECT_NEAR(r.fixed[1].bandwidth.quartiles.median, mbps(70), 1);
  EXPECT_FALSE(r.all_fixed_satisfied());
}

TEST_F(ModelerOnTestbed, PaperVariableFlowProportions) {
  // §4.2's example, scaled to the testbed: three variable flows with
  // relative demands 3 : 4.5 : 9 on one shared bottleneck...
  // The access link m-4 -> timberline (100 Mbps) is shared; expected
  // split 3/16.5, 4.5/16.5, 9/16.5 of 100 Mbps.
  FlowQuery q;
  q.variable = {FlowRequest{"m-4", "m-5", 3},
                FlowRequest{"m-4", "m-6", 4.5},
                FlowRequest{"m-4", "m-7", 9}};
  const FlowQueryResult r = harness_.modeler().flow_info(q);
  ASSERT_EQ(r.variable.size(), 3u);
  const double total = mbps(100);
  EXPECT_NEAR(r.variable[0].bandwidth.quartiles.median, total * 3 / 16.5,
              mbps(1));
  EXPECT_NEAR(r.variable[1].bandwidth.quartiles.median, total * 4.5 / 16.5,
              mbps(1));
  EXPECT_NEAR(r.variable[2].bandwidth.quartiles.median, total * 9 / 16.5,
              mbps(1));
}

TEST_F(ModelerOnTestbed, SimultaneousQueryAccountsInternalSharing) {
  // Two independent-class... two variable flows from the same source
  // share the access link: each sees 50, not 100 -- the internal-sharing
  // point of §4.2.  Queried separately they would each report 100.
  FlowQuery together;
  together.variable = {FlowRequest{"m-4", "m-5", 1},
                       FlowRequest{"m-4", "m-6", 1}};
  const FlowQueryResult rt = harness_.modeler().flow_info(together);
  EXPECT_NEAR(rt.variable[0].bandwidth.quartiles.median, mbps(50), 1);
  EXPECT_NEAR(rt.variable[1].bandwidth.quartiles.median, mbps(50), 1);

  FlowQuery alone;
  alone.independent = FlowRequest{"m-4", "m-5", 0};
  const FlowQueryResult ra = harness_.modeler().flow_info(alone);
  EXPECT_NEAR(ra.independent->bandwidth.quartiles.median, mbps(100), 1);
}

TEST_F(ModelerOnTestbed, ThreeClassPriorityOrdering) {
  // fixed (40) is satisfied first, variable splits the rest, independent
  // gets what remains after both.
  FlowQuery q;
  q.fixed = {FlowRequest{"m-4", "m-7", mbps(40)}};
  q.variable = {FlowRequest{"m-4", "m-8", 1}};
  q.independent = FlowRequest{"m-4", "m-6", 0};
  const FlowQueryResult r = harness_.modeler().flow_info(q);
  EXPECT_TRUE(r.fixed[0].satisfied);
  // All three share m-4's access link (100): variable gets 100-40 = 60;
  // independent, after fixed+variable, gets 0.
  EXPECT_NEAR(r.variable[0].bandwidth.quartiles.median, mbps(60), 1);
  EXPECT_NEAR(r.independent->bandwidth.quartiles.median, 0.0, 1);
}

TEST_F(ModelerOnTestbed, FlowQueryValidation) {
  FlowQuery empty;
  EXPECT_THROW(harness_.modeler().flow_info(empty), InvalidArgument);
  FlowQuery self;
  self.fixed = {FlowRequest{"m-1", "m-1", 1}};
  EXPECT_THROW(harness_.modeler().flow_info(self), InvalidArgument);
}

TEST_F(ModelerOnTestbed, PaperShapedApiWrappers) {
  const GraphResult topo = remos_get_graph(
      harness_.modeler(), {"m-4", "m-5", "m-6"}, Timeframe::current());
  EXPECT_TRUE(topo.ok());
  EXPECT_EQ(topo.graph.node_count(), 4u);  // 3 hosts + timberline
  const FlowQueryResult r = remos_flow_info(
      harness_.modeler(), {FlowRequest{"m-4", "m-5", mbps(10)}},
      {FlowRequest{"m-4", "m-6", 2}}, FlowRequest{"m-5", "m-6", 0},
      Timeframe::current());
  EXPECT_TRUE(r.fixed[0].satisfied);
  EXPECT_TRUE(r.independent.has_value());
}

TEST_F(ModelerOnTestbed, QuartilesPropagateThroughFlowQuery) {
  // On-off background on the shared link: flow bandwidth is reported with
  // real spread, not a single number.
  netsim::OnOffTraffic::Config cfg;
  cfg.rate = mbps(80);
  cfg.mean_on = 5.0;
  cfg.mean_off = 5.0;
  cfg.seed = 3;
  netsim::OnOffTraffic gen(harness_.sim(),
                           harness_.sim().topology().id_of("m-6"),
                           harness_.sim().topology().id_of("m-8"), cfg);
  harness_.sim().run_for(200.0);
  FlowQuery q;
  q.independent = FlowRequest{"m-4", "m-8", 0};
  q.timeframe = Timeframe::history(120.0);
  const FlowQueryResult r = harness_.modeler().flow_info(q);
  EXPECT_GT(r.independent->bandwidth.quartiles.spread(), mbps(40));
  EXPECT_GT(r.independent->bandwidth.quartiles.max, mbps(90));
  EXPECT_LT(r.independent->bandwidth.quartiles.min, mbps(40));
  EXPECT_LT(r.independent->bandwidth.accuracy, 1.0);
}

TEST(ModelerFigure1, NodeInternalBandwidthGovernsAggregate) {
  // Figure 1 from raw models (no SNMP needed): 10 Mbps access links, a
  // 100 Mbps trunk, and switch backplanes of either 100 or 10 Mbps.
  for (const double backplane_mbps : {100.0, 10.0}) {
    collector::NetworkModel model;
    model.upsert_node("A", true).internal_bw = mbps(backplane_mbps);
    model.upsert_node("B", true).internal_bw = mbps(backplane_mbps);
    for (int i = 1; i <= 8; ++i) {
      const std::string h = std::to_string(i);
      model.upsert_node(h, false);
      model.upsert_link(h, i <= 4 ? "A" : "B", mbps(10), millis(0.2));
    }
    model.upsert_link("A", "B", mbps(100), millis(0.2));

    // A throwaway collector wrapper to drive the Modeler from the model.
    class FixedCollector : public collector::Collector {
     public:
      explicit FixedCollector(collector::NetworkModel m) {
        model_ = std::move(m);
      }
      void discover() override {}
      void poll() override {}
    };
    FixedCollector fixed(model);
    Modeler modeler(fixed);

    FlowQuery q;
    q.variable = {FlowRequest{"1", "5", 1}, FlowRequest{"2", "6", 1},
                  FlowRequest{"3", "7", 1}, FlowRequest{"4", "8", 1}};
    q.timeframe = Timeframe::statics();
    const FlowQueryResult r = modeler.flow_info(q);
    double total = 0;
    for (const FlowResult& f : r.variable)
      total += f.bandwidth.quartiles.median;
    if (backplane_mbps == 100.0) {
      EXPECT_NEAR(total, mbps(40), mbps(1));  // access links limit
    } else {
      EXPECT_NEAR(total, mbps(10), mbps(1));  // switch nodes limit
    }
  }
}

// --- Structured not-found answers (a bad query must not kill a session) ---

/// Tiny host--router--host model for snapshot-mode Modeler tests.
collector::NetworkModel tiny_model() {
  collector::NetworkModel m;
  m.upsert_node("a", false);
  m.upsert_node("b", false);
  m.upsert_node("r", true);
  m.upsert_link("a", "r", mbps(100), millis(0.2));
  m.upsert_link("r", "b", mbps(100), millis(0.2));
  for (collector::ModelLink& l : m.links()) {
    l.last_update = 1.0;
    l.history.record({1.0, mbps(10), mbps(5)});
  }
  return m;
}

TEST(FlowInfoNotFound, UnknownHostYieldsRoutableFalseNotThrow) {
  const collector::NetworkModel m = tiny_model();
  const Modeler modeler(m);
  FlowQuery q;
  q.fixed = {FlowRequest{"a", "ghost", mbps(5)}};
  FlowQueryResult r;
  ASSERT_NO_THROW(r = modeler.flow_info(q));
  ASSERT_EQ(r.fixed.size(), 1u);
  EXPECT_FALSE(r.fixed[0].routable);
  EXPECT_FALSE(r.fixed[0].satisfied);
}

TEST(FlowInfoNotFound, KnownFlowsStillAnsweredNextToUnknownOnes) {
  const collector::NetworkModel m = tiny_model();
  const Modeler modeler(m);
  FlowQuery q;
  q.fixed = {FlowRequest{"a", "b", mbps(5)},
             FlowRequest{"nowhere", "b", mbps(5)}};
  q.variable = {FlowRequest{"a", "phantom", 1}};
  const FlowQueryResult r = modeler.flow_info(q);
  EXPECT_TRUE(r.fixed[0].routable);
  EXPECT_TRUE(r.fixed[0].satisfied);
  EXPECT_FALSE(r.fixed[1].routable);
  EXPECT_FALSE(r.variable[0].routable);
}

TEST(FlowInfoNotFound, MulticastUnknownReceiverYieldsRoutableFalse) {
  const collector::NetworkModel m = tiny_model();
  const Modeler modeler(m);
  FlowQuery q;
  q.multicast = {MulticastRequest{"a", {"b", "ghost"}, mbps(2)}};
  const FlowQueryResult r = modeler.flow_info(q);
  ASSERT_EQ(r.multicast.size(), 1u);
  EXPECT_FALSE(r.multicast[0].routable);
}

TEST(FlowInfoNotFound, AllEndpointsUnknownStillStructured) {
  const collector::NetworkModel m = tiny_model();
  const Modeler modeler(m);
  FlowQuery q;
  q.fixed = {FlowRequest{"x", "y", mbps(5)}};
  const FlowQueryResult r = modeler.flow_info(q);
  EXPECT_FALSE(r.fixed[0].routable);
}

TEST(FlowInfoNotFound, StructurallyMalformedQueriesStillThrow) {
  const collector::NetworkModel m = tiny_model();
  const Modeler modeler(m);
  FlowQuery empty;
  EXPECT_THROW(modeler.flow_info(empty), InvalidArgument);
  FlowQuery self;
  self.fixed = {FlowRequest{"a", "a", mbps(1)}};
  EXPECT_THROW(modeler.flow_info(self), InvalidArgument);
}

// --- Timeframe validation (degenerate durations must not silently
// produce nonsense statistics) ---

TEST(TimeframeValidation, FactoriesRejectDegenerateDurations) {
  EXPECT_THROW(Timeframe::history(0), InvalidArgument);
  EXPECT_THROW(Timeframe::history(-5.0), InvalidArgument);
  EXPECT_THROW(Timeframe::future(10.0, 0), InvalidArgument);
  EXPECT_THROW(Timeframe::future(10.0, -1.0), InvalidArgument);
  EXPECT_THROW(Timeframe::future(-1.0), InvalidArgument);
  EXPECT_NO_THROW(Timeframe::history(30.0));
  EXPECT_NO_THROW(Timeframe::future(10.0));
  EXPECT_NO_THROW(Timeframe::current());
  EXPECT_NO_THROW(Timeframe::statics());
}

TEST(TimeframeValidation, HandBuiltTimeframesAreValidatedAtUse) {
  const collector::NetworkModel m = tiny_model();
  const Modeler modeler(m);
  Timeframe inverted;  // negative window = an inverted history range
  inverted.kind = Timeframe::Kind::kHistory;
  inverted.window = -30.0;
  EXPECT_THROW(modeler.get_graph({"a", "b"}, inverted), InvalidArgument);

  Timeframe nan_frame;
  nan_frame.kind = Timeframe::Kind::kFuture;
  nan_frame.window = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(modeler.get_graph({"a", "b"}, nan_frame), InvalidArgument);

  FlowQuery q;
  q.fixed = {FlowRequest{"a", "b", mbps(1)}};
  q.timeframe.kind = Timeframe::Kind::kHistory;
  q.timeframe.window = 0;
  EXPECT_THROW(modeler.flow_info(q), InvalidArgument);
}

TEST(TimeframeValidation, SnapshotModelerMatchesLiveModeler) {
  // Snapshot mode answers the same query the same way a live collector
  // does -- the service layer depends on this equivalence.
  const collector::NetworkModel m = tiny_model();
  const Modeler snap(m);
  const NetworkGraph g = snap.get_graph({"a", "b"}, Timeframe::current());
  EXPECT_TRUE(g.has_node("a"));
  EXPECT_TRUE(g.has_node("b"));
  ASSERT_GE(g.link_count(), 1u);
  EXPECT_EQ(snap.queries_answered(), 1u);
}

}  // namespace
}  // namespace remos::core
