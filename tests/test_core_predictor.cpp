#include <gtest/gtest.h>

#include "apps/harness.hpp"
#include "core/predictor.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"

namespace remos::core {
namespace {

std::vector<TimedSample> series(std::initializer_list<double> values) {
  std::vector<TimedSample> out;
  double t = 0;
  for (double v : values) out.push_back(TimedSample{t += 1.0, v});
  return out;
}

TEST(Predictors, EmptyInputIsUnknown) {
  LastValuePredictor lv;
  WindowMeanPredictor wm;
  EwmaPredictor ew(0.5);
  for (const Predictor* p : {static_cast<const Predictor*>(&lv),
                             static_cast<const Predictor*>(&wm),
                             static_cast<const Predictor*>(&ew)}) {
    const Measurement m = p->predict({});
    EXPECT_FALSE(m.known());
  }
}

TEST(Predictors, LastValueTracksLatest) {
  LastValuePredictor p;
  const Measurement m = p.predict(series({10, 20, 30, 90}));
  EXPECT_DOUBLE_EQ(m.quartiles.median, 90);
  EXPECT_DOUBLE_EQ(m.mean, 90);
}

TEST(Predictors, WindowMeanIsWindowStatistics) {
  WindowMeanPredictor p;
  const Measurement m = p.predict(series({10, 20, 30, 40}));
  EXPECT_DOUBLE_EQ(m.mean, 25);
  EXPECT_DOUBLE_EQ(m.quartiles.min, 10);
  EXPECT_DOUBLE_EQ(m.quartiles.max, 40);
}

TEST(Predictors, EwmaWeighsRecentMore) {
  EwmaPredictor fast(0.9);
  EwmaPredictor slow(0.1);
  const auto s = series({0, 0, 0, 0, 0, 0, 0, 0, 100});
  EXPECT_GT(fast.predict(s).quartiles.median, 85.0);
  EXPECT_LT(slow.predict(s).quartiles.median, 15.0);
}

TEST(Predictors, EwmaValidatesAlpha) {
  EXPECT_THROW(EwmaPredictor(0.0), InvalidArgument);
  EXPECT_THROW(EwmaPredictor(1.5), InvalidArgument);
  EXPECT_NO_THROW(EwmaPredictor(1.0));
}

TEST(Predictors, ForecastsClampNonNegative) {
  LastValuePredictor p;
  // Shifting quartiles down to center 0 must not go negative.
  const Measurement m = p.predict(series({100, 100, 100, 0}));
  EXPECT_GE(m.quartiles.min, 0.0);
  EXPECT_DOUBLE_EQ(m.quartiles.median, 0.0);
}

TEST(Predictors, NamesAreDistinct) {
  EXPECT_EQ(LastValuePredictor{}.name(), "last-value");
  EXPECT_EQ(WindowMeanPredictor{}.name(), "window-mean");
  EXPECT_EQ(EwmaPredictor{0.25}.name(), "ewma(0.25)");
  EXPECT_NE(make_default_predictor(), nullptr);
}

TEST(FutureTimeframe, EndToEndPredictionThroughModeler) {
  apps::CmuHarness harness;
  harness.start(5.0);
  // Ramp: traffic grows over time; a future query should sit near the
  // recent (higher) usage, not the whole-window average.
  netsim::CbrTraffic low(harness.sim(), "m-4", "m-5", mbps(10));
  harness.sim().run_for(40.0);
  low.stop();
  netsim::CbrTraffic high(harness.sim(), "m-4", "m-5", mbps(70));
  harness.sim().run_for(20.0);

  harness.modeler().set_predictor(std::make_unique<EwmaPredictor>(0.5));
  const NetworkGraph g = harness.modeler().get_graph(
      {"m-4", "m-5"}, Timeframe::future(10.0, 60.0));
  bool flipped = false;
  const GraphLink* l = g.find_link("m-4", "m-5", &flipped);
  ASSERT_NE(l, nullptr);
  const Measurement used = flipped ? l->used_ba : l->used_ab;
  EXPECT_GT(used.quartiles.median, mbps(55));  // tracks the recent regime

  // A plain history query over the same window reports the mixed average.
  const NetworkGraph g2 = harness.modeler().get_graph(
      {"m-4", "m-5"}, Timeframe::history(60.0));
  const GraphLink* l2 = g2.find_link("m-4", "m-5", &flipped);
  ASSERT_NE(l2, nullptr);
  const Measurement used2 = flipped ? l2->used_ba : l2->used_ab;
  EXPECT_LT(used2.quartiles.median, mbps(40));
}

TEST(FutureTimeframe, SetPredictorRejectsNull) {
  apps::CmuHarness harness;
  EXPECT_THROW(harness.modeler().set_predictor(nullptr), InvalidArgument);
}

}  // namespace
}  // namespace remos::core
