// Tests for the computation/communication-tradeoff extension (§7.2 calls
// it out as needed future work): simulator-owned CPU load, its exposure
// through host agents, load-aware clustering and the Fx runtime's
// slowdown on busy hosts.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/harness.hpp"
#include "cluster/clustering.hpp"
#include "fx/adaptation.hpp"
#include "fx/runtime.hpp"
#include "util/error.hpp"

namespace remos {
namespace {

using apps::CmuHarness;
using core::Timeframe;

TEST(CpuLoad, SimulatorAccessorsAndValidation) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  const auto m1 = sim.topology().id_of("m-1");
  EXPECT_DOUBLE_EQ(sim.cpu_load(m1), 0.0);
  EXPECT_DOUBLE_EQ(sim.effective_speed(m1), 1.0);
  sim.set_cpu_load(m1, 0.75);
  EXPECT_DOUBLE_EQ(sim.cpu_load(m1), 0.75);
  EXPECT_DOUBLE_EQ(sim.effective_speed(m1), 0.25);
  EXPECT_THROW(sim.set_cpu_load(m1, -0.1), InvalidArgument);
  EXPECT_THROW(sim.set_cpu_load(m1, 1.0), InvalidArgument);
}

TEST(CpuLoad, ComputePhasesSlowOnBusyHosts) {
  CmuHarness idle, busy;
  fx::AppModel app;
  app.name = "compute";
  app.iterations = 1;
  fx::ComputePhase c;
  c.parallel_seconds = 8.0;
  app.phases = {c};
  const std::vector<std::string> nodes{"m-4", "m-5"};

  const double t_idle = fx::FxRuntime(idle.sim(), app, nodes).run().total;
  // m-5 at 50% load: its half of the work takes twice as long, and the
  // synchronous phase waits for it.
  busy.sim().set_cpu_load(busy.sim().topology().id_of("m-5"), 0.5);
  const double t_busy = fx::FxRuntime(busy.sim(), app, nodes).run().total;
  EXPECT_NEAR(t_idle, 4.0, 1e-9);
  EXPECT_NEAR(t_busy, 8.0, 1e-9);
}

TEST(CpuLoad, ReachesModelerThroughHostAgents) {
  CmuHarness harness;
  harness.sim().set_cpu_load(harness.sim().topology().id_of("m-6"), 0.8);
  harness.start(4.0);
  const auto g =
      harness.modeler().get_graph(harness.hosts(), Timeframe::current());
  EXPECT_TRUE(g.node("m-6").has_host_info);
  EXPECT_DOUBLE_EQ(g.node("m-6").cpu_load, 0.8);
  EXPECT_DOUBLE_EQ(g.node("m-1").cpu_load, 0.0);
}

TEST(CpuLoad, CpuCostsBuildFromGraph) {
  CmuHarness harness;
  harness.sim().set_cpu_load(harness.sim().topology().id_of("m-2"), 0.6);
  harness.start(4.0);
  const auto g =
      harness.modeler().get_graph(harness.hosts(), Timeframe::current());
  const cluster::NodeCosts costs = cluster::cpu_costs(g, 2.0);
  EXPECT_DOUBLE_EQ(costs.at("m-2"), 1.2);
  EXPECT_DOUBLE_EQ(costs.at("m-1"), 0.0);
  // Routers have no host info and get no entry.
  EXPECT_FALSE(costs.contains("timberline"));
}

TEST(CpuLoad, ClusteringAvoidsLoadedHosts) {
  CmuHarness harness;
  // m-5 and m-6 (the network-preferred same-router partners of m-4) are
  // busy; clustering with a CPU term should skip them.
  harness.sim().set_cpu_load(harness.sim().topology().id_of("m-5"), 0.9);
  harness.sim().set_cpu_load(harness.sim().topology().id_of("m-6"), 0.9);
  harness.start(6.0);
  const auto g =
      harness.modeler().get_graph(harness.hosts(), Timeframe::current());
  const cluster::DistanceMatrix d(g, harness.hosts());

  auto network_only = cluster::greedy_cluster(d, "m-4", 3);
  std::sort(network_only.nodes.begin(), network_only.nodes.end());
  EXPECT_EQ(network_only.nodes,
            (std::vector<std::string>{"m-4", "m-5", "m-6"}));

  const cluster::NodeCosts costs = cluster::cpu_costs(g, 1.0);
  auto load_aware = cluster::greedy_cluster(d, "m-4", 3, costs);
  std::sort(load_aware.nodes.begin(), load_aware.nodes.end());
  EXPECT_EQ(load_aware.nodes,
            (std::vector<std::string>{"m-1", "m-2", "m-4"}));
  // The tradeoff is real: a tiny CPU weight is not worth three hops.
  const cluster::NodeCosts timid = cluster::cpu_costs(g, 0.001);
  auto near_network = cluster::greedy_cluster(d, "m-4", 3, timid);
  std::sort(near_network.nodes.begin(), near_network.nodes.end());
  EXPECT_EQ(near_network.nodes,
            (std::vector<std::string>{"m-4", "m-5", "m-6"}));
}

TEST(CpuLoad, ExhaustiveAgreesUnderNodeCosts) {
  CmuHarness harness;
  harness.sim().set_cpu_load(harness.sim().topology().id_of("m-5"), 0.9);
  harness.start(4.0);
  const auto g =
      harness.modeler().get_graph(harness.hosts(), Timeframe::current());
  const cluster::DistanceMatrix d(g, harness.hosts());
  const cluster::NodeCosts costs = cluster::cpu_costs(g, 1.0);
  for (std::size_t k : {2u, 3u, 4u}) {
    const auto greedy = cluster::greedy_cluster(d, "m-4", k, costs);
    const auto best = cluster::best_cluster_exhaustive(d, "m-4", k, costs);
    EXPECT_GE(greedy.cost + 1e-9, best.cost);
    EXPECT_LE(greedy.cost, best.cost * 1.3 + 1e-9);
  }
}

TEST(CpuLoad, AdaptationMigratesOffLoadedHost) {
  CmuHarness harness;
  harness.start(6.0);
  // The app runs on {m-4, m-5}; m-5 acquires a heavy competing job.
  harness.sim().set_cpu_load(harness.sim().topology().id_of("m-5"), 0.9);
  harness.sim().run_for(4.0);

  fx::AdaptationModule::Options network_only;
  network_only.timeframe = Timeframe::current();
  fx::AdaptationModule blind(harness.modeler(), harness.hosts(), "m-4",
                             network_only);
  EXPECT_FALSE(blind.evaluate({"m-4", "m-5"}).migrate);

  fx::AdaptationModule::Options aware = network_only;
  aware.cpu_weight = 1.0;
  fx::AdaptationModule seeing(harness.modeler(), harness.hosts(), "m-4",
                              aware);
  const auto d = seeing.evaluate({"m-4", "m-5"});
  EXPECT_TRUE(d.migrate);
  EXPECT_EQ(std::count(d.nodes.begin(), d.nodes.end(), "m-5"), 0);
}

}  // namespace
}  // namespace remos
