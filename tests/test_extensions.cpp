// Tests for the two implemented extensions the paper names but leaves
// out: multicast flow queries (§4.5) and operational link state / failure
// handling (ifOperStatus through the whole stack).
#include <gtest/gtest.h>

#include "apps/harness.hpp"
#include "collector/static_collector.hpp"
#include "core/modeler.hpp"
#include "netsim/testbeds.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"

namespace remos {
namespace {

using apps::CmuHarness;
using core::FlowQuery;
using core::FlowRequest;
using core::MulticastRequest;
using core::Timeframe;

class MulticastQuery : public ::testing::Test {
 protected:
  MulticastQuery() { harness_.start(6.0); }
  CmuHarness harness_;
};

TEST_F(MulticastQuery, TreeLinksChargedOnce) {
  // m-4 multicasts to m-5 and m-6: both paths share the m-4 uplink, so a
  // 60 Mbps tree fits even though two unicast 60s would not.
  FlowQuery q;
  q.multicast.push_back(MulticastRequest{"m-4", {"m-5", "m-6"}, mbps(60)});
  const auto r = harness_.modeler().flow_info(q);
  ASSERT_EQ(r.multicast.size(), 1u);
  EXPECT_TRUE(r.multicast[0].satisfied);
  EXPECT_NEAR(r.multicast[0].bandwidth.quartiles.median, mbps(60), 1);

  FlowQuery unicast;
  unicast.fixed = {FlowRequest{"m-4", "m-5", mbps(60)},
                   FlowRequest{"m-4", "m-6", mbps(60)}};
  const auto ru = harness_.modeler().flow_info(unicast);
  EXPECT_TRUE(ru.fixed[0].satisfied);
  EXPECT_FALSE(ru.fixed[1].satisfied);  // uplink exhausted: 40 left
}

TEST_F(MulticastQuery, CongestedBranchLimitsWholeTree) {
  netsim::CbrTraffic cross(harness_.sim(), "m-6", "m-8", mbps(80));
  harness_.sim().run_for(8.0);
  FlowQuery q;
  q.multicast.push_back(
      MulticastRequest{"m-4", {"m-5", "m-8"}, mbps(50)});
  q.timeframe = Timeframe::current();
  const auto r = harness_.modeler().flow_info(q);
  EXPECT_FALSE(r.multicast[0].satisfied);
  // timberline->whiteface has ~20 Mbps left; that's the deliverable rate.
  EXPECT_NEAR(r.multicast[0].bandwidth.quartiles.median, mbps(20), mbps(3));
  // Latency reports the farthest receiver (3 hops to m-8).
  EXPECT_NEAR(r.multicast[0].latency.mean, 3 * millis(0.2), 1e-6);
}

TEST_F(MulticastQuery, ConsumesBeforeVariableAndIndependent) {
  FlowQuery q;
  q.multicast.push_back(MulticastRequest{"m-4", {"m-5"}, mbps(70)});
  q.variable = {FlowRequest{"m-4", "m-6", 1.0}};
  q.independent = FlowRequest{"m-4", "m-7", 0};
  const auto r = harness_.modeler().flow_info(q);
  EXPECT_TRUE(r.multicast[0].satisfied);
  EXPECT_NEAR(r.variable[0].bandwidth.quartiles.median, mbps(30), 1);
  EXPECT_NEAR(r.independent->bandwidth.quartiles.median, 0.0, 1);
  EXPECT_TRUE(r.all_fixed_satisfied());
}

TEST_F(MulticastQuery, Validation) {
  FlowQuery no_receivers;
  no_receivers.multicast.push_back(MulticastRequest{"m-4", {}, mbps(1)});
  EXPECT_THROW(harness_.modeler().flow_info(no_receivers), InvalidArgument);
  FlowQuery self;
  self.multicast.push_back(MulticastRequest{"m-4", {"m-4"}, mbps(1)});
  EXPECT_THROW(harness_.modeler().flow_info(self), InvalidArgument);
  FlowQuery only_mc;  // a multicast-only query is legal
  only_mc.multicast.push_back(MulticastRequest{"m-4", {"m-5"}, mbps(1)});
  EXPECT_NO_THROW(harness_.modeler().flow_info(only_mc));
}

// ---------------------------------------------------------------------
// Link failure / operational state.
// ---------------------------------------------------------------------

netsim::LinkId link_of(netsim::Simulator& sim, const std::string& a,
                       const std::string& b) {
  return sim.topology().link_between(sim.topology().id_of(a),
                                     sim.topology().id_of(b));
}

TEST(LinkFailureSim, FlowsRerouteAroundDeadLink) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  const auto f = sim.start_flow("m-4", "m-7");  // timberline->whiteface
  EXPECT_NEAR(sim.flow_rate(f), mbps(100), 1);
  const auto tw = link_of(sim, "timberline", "whiteface");
  sim.set_link_up(tw, false);
  EXPECT_FALSE(sim.link_up(tw));
  // Route shifts to timberline->aspen->whiteface; still 100 Mbps clean.
  EXPECT_NEAR(sim.flow_rate(f), mbps(100), 1);
  // The detour now shares links with aspen traffic.
  const auto g = sim.start_flow("m-1", "m-8");  // aspen->whiteface
  EXPECT_NEAR(sim.flow_rate(f), mbps(50), 1);
  EXPECT_NEAR(sim.flow_rate(g), mbps(50), 1);
  sim.set_link_up(tw, true);
  EXPECT_NEAR(sim.flow_rate(f), mbps(100), 1);
}

TEST(LinkFailureSim, DisconnectionStallsAndRecovers) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  const auto access = link_of(sim, "m-7", "whiteface");
  netsim::FlowOptions opts;
  opts.volume = 12.5e6;  // 1 s at full rate
  bool done = false;
  const auto f = sim.start_flow("m-4", "m-7", opts, [&](auto) { done = true; });
  sim.run_for(0.5);
  sim.set_link_up(access, false);  // m-7 unreachable: flow stalls
  EXPECT_DOUBLE_EQ(sim.flow_rate(f), 0.0);
  sim.run_for(5.0);
  EXPECT_FALSE(done);
  EXPECT_NEAR(sim.flow_sent(f), 6.25e6, 1e3);  // frozen mid-transfer
  sim.set_link_up(access, true);
  sim.run_for(0.6);
  EXPECT_TRUE(done);
}

TEST(LinkFailureSim, StartFlowToUnreachableHostStalls) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  const auto access = link_of(sim, "m-8", "whiteface");
  sim.set_link_up(access, false);
  const auto f = sim.start_flow("m-1", "m-8");
  EXPECT_DOUBLE_EQ(sim.flow_rate(f), 0.0);
  // On a fully-up network the same situation is a caller error.
  netsim::Simulator intact(netsim::make_cmu_testbed());
  netsim::Topology island;
  island.add_node("x", netsim::NodeKind::kCompute);
  island.add_node("y", netsim::NodeKind::kCompute);
  netsim::Simulator partitioned(island);
  EXPECT_THROW(partitioned.start_flow("x", "y"), NotFoundError);
}

TEST(LinkFailureSim, DownLinkCarriesNoOctets) {
  netsim::Simulator sim(netsim::make_cmu_testbed());
  const auto tw = link_of(sim, "timberline", "whiteface");
  sim.start_flow("m-4", "m-7");
  sim.run_for(1.0);
  const Bytes before = sim.link_tx_bytes(tw, true) +
                       sim.link_tx_bytes(tw, false);
  EXPECT_GT(before, 0);
  sim.set_link_up(tw, false);
  sim.run_for(5.0);
  EXPECT_DOUBLE_EQ(sim.link_tx_bytes(tw, true) +
                       sim.link_tx_bytes(tw, false),
                   before);
}

TEST(LinkFailureStack, OperStatusReachesModelerAndClustering) {
  CmuHarness harness;
  harness.start(6.0);
  netsim::Simulator& sim = harness.sim();
  const auto tw = link_of(sim, "timberline", "whiteface");
  sim.set_link_up(tw, false);
  sim.run_for(6.0);  // a few polls observe ifOperStatus = down

  // Collector sees the failure...
  const auto* ml =
      harness.collector().model().find_link("timberline", "whiteface");
  ASSERT_NE(ml, nullptr);
  EXPECT_FALSE(ml->up);

  // ...the logical topology routes around it...
  const auto g = harness.modeler().get_graph({"m-4", "m-7"},
                                             Timeframe::current());
  ASSERT_TRUE(g.route("m-4", "m-7").has_value());
  for (const auto& l : g.links()) {
    EXPECT_FALSE((l.a == "timberline" && l.b == "whiteface") ||
                 (l.a == "whiteface" && l.b == "timberline"));
  }

  // ...and a flow query reports the detour's latency (4 hops via aspen).
  FlowQuery q;
  q.independent = FlowRequest{"m-4", "m-7", 0};
  const auto r = harness.modeler().flow_info(q);
  EXPECT_TRUE(r.independent->routable);
  EXPECT_NEAR(r.independent->latency.mean, 4 * millis(0.2), 1e-6);
}

TEST(LinkFailureStack, PartitionedHostBecomesUnroutable) {
  CmuHarness harness;
  harness.start(6.0);
  netsim::Simulator& sim = harness.sim();
  sim.set_link_up(link_of(sim, "m-8", "whiteface"), false);
  sim.run_for(6.0);
  FlowQuery q;
  q.independent = FlowRequest{"m-1", "m-8", 0};
  const auto r = harness.modeler().flow_info(q);
  EXPECT_FALSE(r.independent->routable);
  EXPECT_FALSE(r.independent->bandwidth.known());
}

TEST(LinkFailureStack, AgentReportsOperStatusOnWire) {
  CmuHarness harness;
  harness.start(1.0);
  snmp::Client client(harness.transport(),
                      snmp::agent_address("whiteface"));
  const auto before =
      client.walk(snmp::oids::kIfTableEntry.child(
          snmp::oids::kIfOperStatusCol));
  for (const auto& vb : before) EXPECT_EQ(vb.value.as_integer(), 1);
  harness.sim().set_link_up(
      link_of(harness.sim(), "m-8", "whiteface"), false);
  const auto after = client.walk(snmp::oids::kIfTableEntry.child(
      snmp::oids::kIfOperStatusCol));
  int down = 0;
  for (const auto& vb : after)
    if (vb.value.as_integer() == 2) ++down;
  EXPECT_EQ(down, 1);
}

}  // namespace
}  // namespace remos
