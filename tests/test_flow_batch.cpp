// The batch query plane (ISSUE 8): flow_info_batch at every layer.
//
// The differential oracle this suite enforces:
//   - an independent-mode batch is bit-for-bit N sequential flow_info
//     calls against the same pinned snapshot (the batch only amortizes
//     shared work, it must not change a single double);
//   - a shared-mode batch equals the hand-built combined FlowQuery
//     (sub-query flow lists concatenated), scattered back by offsets;
//   - the service coalescer folds concurrent single flow_info calls into
//     one batch solve without changing answers, deadlines, or tenant
//     admission accounting (slots conserved, sheds charged at arrival).
//
// Plus the FlowInfoEndpoint satellite: QueryService, RemosClient,
// FailoverCoordinator and the degenerate ModelerEndpoint all answer the
// same three questions through one abstract surface.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>
#include <vector>

#include "apps/harness.hpp"
#include "core/flows.hpp"
#include "core/remos_api.hpp"
#include "netsim/traffic.hpp"
#include "service/endpoint.hpp"
#include "service/failover.hpp"
#include "service/query_service.hpp"
#include "service/remos_client.hpp"
#include "service/replication.hpp"
#include "util/error.hpp"

namespace remos::service {
namespace {

using namespace std::chrono_literals;
using apps::CmuHarness;
using core::FlowBatchQuery;
using core::FlowQuery;
using core::FlowRequest;
using core::Timeframe;

// --- bit-for-bit comparison helpers -----------------------------------
// Measurement has no operator== (quartiles do); compare field by field
// with EXPECT_EQ so any drift names the exact double that moved.

void expect_measurement_eq(const Measurement& a, const Measurement& b,
                           const std::string& what) {
  EXPECT_TRUE(a.quartiles == b.quartiles) << what << ": quartiles differ";
  EXPECT_EQ(a.mean, b.mean) << what << ": mean";
  EXPECT_EQ(a.samples, b.samples) << what << ": samples";
  EXPECT_EQ(a.accuracy, b.accuracy) << what << ": accuracy";
}

void expect_flow_eq(const core::FlowResult& a, const core::FlowResult& b,
                    const std::string& what) {
  EXPECT_EQ(a.request.src, b.request.src) << what;
  EXPECT_EQ(a.request.dst, b.request.dst) << what;
  EXPECT_EQ(a.request.requested, b.request.requested) << what;
  EXPECT_EQ(a.satisfied, b.satisfied) << what << ": satisfied";
  EXPECT_EQ(a.routable, b.routable) << what << ": routable";
  expect_measurement_eq(a.bandwidth, b.bandwidth, what + ".bandwidth");
  expect_measurement_eq(a.latency, b.latency, what + ".latency");
}

void expect_result_eq(const core::FlowQueryResult& a,
                      const core::FlowQueryResult& b,
                      const std::string& what) {
  ASSERT_EQ(a.fixed.size(), b.fixed.size()) << what;
  ASSERT_EQ(a.multicast.size(), b.multicast.size()) << what;
  ASSERT_EQ(a.variable.size(), b.variable.size()) << what;
  ASSERT_EQ(a.independent.has_value(), b.independent.has_value()) << what;
  for (std::size_t i = 0; i < a.fixed.size(); ++i)
    expect_flow_eq(a.fixed[i], b.fixed[i],
                   what + ".fixed[" + std::to_string(i) + "]");
  for (std::size_t i = 0; i < a.variable.size(); ++i)
    expect_flow_eq(a.variable[i], b.variable[i],
                   what + ".variable[" + std::to_string(i) + "]");
  for (std::size_t i = 0; i < a.multicast.size(); ++i) {
    const core::MulticastResult& ma = a.multicast[i];
    const core::MulticastResult& mb = b.multicast[i];
    const std::string tag = what + ".multicast[" + std::to_string(i) + "]";
    EXPECT_EQ(ma.request.src, mb.request.src) << tag;
    EXPECT_EQ(ma.request.dsts, mb.request.dsts) << tag;
    EXPECT_EQ(ma.satisfied, mb.satisfied) << tag;
    EXPECT_EQ(ma.routable, mb.routable) << tag;
    expect_measurement_eq(ma.bandwidth, mb.bandwidth, tag + ".bandwidth");
    expect_measurement_eq(ma.latency, mb.latency, tag + ".latency");
  }
  if (a.independent)
    expect_flow_eq(*a.independent, *b.independent, what + ".independent");
}

/// Tiny host--router--host model; `t` stamps the link confirmations.
collector::NetworkModel tiny_model(Seconds t) {
  collector::NetworkModel m;
  m.upsert_node("a", false);
  m.upsert_node("b", false);
  m.upsert_node("r", true);
  m.upsert_link("a", "r", mbps(100), millis(0.2));
  m.upsert_link("r", "b", mbps(100), millis(0.2));
  for (collector::ModelLink& l : m.links()) {
    l.last_update = t;
    l.history.record({t, mbps(10), mbps(5)});
  }
  return m;
}

FlowInfoQuery tiny_flow(double req_mbps) {
  FlowQuery fq;
  fq.fixed = {FlowRequest{"a", "b", mbps(req_mbps)}};
  FlowInfoQuery q;
  q.query = std::move(fq);
  return q;
}

std::size_t occupy_all_slots(QueryService& svc, int tenant) {
  std::size_t held = 0;
  while (svc.admission().try_acquire(tenant)) ++held;
  return held;
}

void release_slots(QueryService& svc, int tenant, std::size_t held) {
  for (std::size_t i = 0; i < held; ++i) svc.admission().release(tenant);
}

/// Polls until the admission plane drains (coalescer flush jobs release
/// parked slots asynchronously).
void wait_for_drain(const QueryService& svc) {
  for (int i = 0; i < 2000 && svc.admission().in_flight() > 0; ++i)
    std::this_thread::sleep_for(1ms);
  EXPECT_EQ(svc.admission().in_flight(), 0u);
}

// --- Modeler: the batch differential oracle ---------------------------

class ModelerBatch : public ::testing::Test {
 protected:
  ModelerBatch() { harness_.start(10.0); }
  CmuHarness harness_;
};

TEST_F(ModelerBatch, IndependentBatchMatchesSequentialBitForBit) {
  // Four deliberately diverse sub-queries: a lone fixed flow, a variable
  // trio sharing one bottleneck, a mixed three-class query, and one on a
  // history timeframe (distinct graph-build group).
  FlowQuery q0;
  q0.fixed = {FlowRequest{"m-1", "m-8", mbps(5)}};

  FlowQuery q1;
  q1.variable = {FlowRequest{"m-4", "m-5", mbps(10)},
                 FlowRequest{"m-4", "m-7", mbps(15)},
                 FlowRequest{"m-4", "m-8", mbps(30)}};

  FlowQuery q2;
  q2.fixed = {FlowRequest{"m-2", "m-7", mbps(3)}};
  q2.variable = {FlowRequest{"m-2", "m-6", mbps(8)}};
  q2.independent = FlowRequest{"m-3", "m-6", 0};

  FlowQuery q3;
  q3.fixed = {FlowRequest{"m-4", "m-5", mbps(5)}};
  q3.timeframe = Timeframe::history(5.0);

  FlowBatchQuery batch;
  batch.mode = FlowBatchQuery::Mode::kIndependent;
  batch.queries = {q0, q1, q2, q3};

  // Sequential oracle first, batch second: both against the same live
  // modeler, with the simulator paused (no polling between the calls).
  const core::Modeler& m = harness_.modeler();
  std::vector<core::FlowQueryResult> seq;
  for (const FlowQuery& q : batch.queries) seq.push_back(m.flow_info(q));

  const core::FlowBatchResult br = m.flow_info_batch(batch);
  ASSERT_EQ(br.results.size(), 4u);
  ASSERT_EQ(br.errors.size(), 4u);
  EXPECT_TRUE(br.all_ok());
  for (std::size_t i = 0; i < seq.size(); ++i)
    expect_result_eq(br.results[i], seq[i],
                     "sub[" + std::to_string(i) + "]");
}

TEST_F(ModelerBatch, IndependentModeIsolatesMalformedSubQueries) {
  FlowQuery good;
  good.fixed = {FlowRequest{"m-1", "m-8", mbps(5)}};
  FlowQuery bad;  // src == dst: flow_info's documented InvalidArgument
  bad.fixed = {FlowRequest{"m-4", "m-4", mbps(5)}};

  FlowBatchQuery batch;
  batch.mode = FlowBatchQuery::Mode::kIndependent;
  batch.queries = {good, bad, good};

  const core::FlowBatchResult br =
      harness_.modeler().flow_info_batch(batch);
  EXPECT_FALSE(br.all_ok());
  EXPECT_TRUE(br.errors[0].empty());
  EXPECT_NE(br.errors[1].find("src == dst"), std::string::npos)
      << br.errors[1];
  EXPECT_TRUE(br.errors[2].empty());
  // The healthy slots still carry the sequential answer.
  const core::FlowQueryResult lone = harness_.modeler().flow_info(good);
  expect_result_eq(br.results[0], lone, "sub[0]");
  expect_result_eq(br.results[2], lone, "sub[2]");
  // The malformed slot is empty, not garbage.
  EXPECT_TRUE(br.results[1].fixed.empty());
}

TEST_F(ModelerBatch, SharedBatchEqualsHandBuiltCombinedQuery) {
  // Two co-scheduled applications.  The shared-mode contract: solving
  // them as a batch IS solving the one combined simultaneous query.
  FlowQuery a;
  a.fixed = {FlowRequest{"m-1", "m-8", mbps(5)}};
  a.variable = {FlowRequest{"m-4", "m-5", mbps(10)}};
  FlowQuery b;
  b.fixed = {FlowRequest{"m-2", "m-7", mbps(3)}};
  b.variable = {FlowRequest{"m-4", "m-7", mbps(20)}};
  b.independent = FlowRequest{"m-6", "m-3", 0};

  FlowQuery combined;
  combined.fixed = {a.fixed[0], b.fixed[0]};
  combined.variable = {a.variable[0], b.variable[0]};
  combined.independent = b.independent;

  const core::Modeler& m = harness_.modeler();
  const core::FlowQueryResult cr = m.flow_info(combined);

  FlowBatchQuery batch;
  batch.mode = FlowBatchQuery::Mode::kShared;
  batch.queries = {a, b};
  const core::FlowBatchResult br = m.flow_info_batch(batch);
  ASSERT_TRUE(br.all_ok());
  ASSERT_EQ(br.results.size(), 2u);

  // Scatter check: each sub-query's slice of the combined answer, in
  // order, bit for bit.
  ASSERT_EQ(br.results[0].fixed.size(), 1u);
  ASSERT_EQ(br.results[1].fixed.size(), 1u);
  expect_flow_eq(br.results[0].fixed[0], cr.fixed[0], "a.fixed");
  expect_flow_eq(br.results[1].fixed[0], cr.fixed[1], "b.fixed");
  expect_flow_eq(br.results[0].variable[0], cr.variable[0], "a.variable");
  expect_flow_eq(br.results[1].variable[0], cr.variable[1], "b.variable");
  EXPECT_FALSE(br.results[0].independent.has_value());
  ASSERT_TRUE(br.results[1].independent.has_value());
  expect_flow_eq(*br.results[1].independent, *cr.independent,
                 "b.independent");
}

TEST_F(ModelerBatch, SharedBatchRejectsContradictions) {
  const core::Modeler& m = harness_.modeler();
  EXPECT_THROW(m.flow_info_batch(FlowBatchQuery{}), InvalidArgument);

  FlowQuery now;
  now.fixed = {FlowRequest{"m-1", "m-8", mbps(5)}};
  FlowQuery past = now;
  past.timeframe = Timeframe::history(5.0);
  FlowBatchQuery mixed;
  mixed.mode = FlowBatchQuery::Mode::kShared;
  mixed.queries = {now, past};
  EXPECT_THROW(m.flow_info_batch(mixed), InvalidArgument);

  FlowQuery indep = now;
  indep.independent = FlowRequest{"m-3", "m-6", 0};
  FlowBatchQuery two_indep;
  two_indep.mode = FlowBatchQuery::Mode::kShared;
  two_indep.queries = {indep, indep};
  EXPECT_THROW(m.flow_info_batch(two_indep), InvalidArgument);

  // Independent mode shrugs at both: per-sub isolation, no shared-mode
  // preconditions.
  mixed.mode = FlowBatchQuery::Mode::kIndependent;
  EXPECT_TRUE(m.flow_info_batch(mixed).all_ok());
}

// --- QueryService: the explicit batch endpoint ------------------------

TEST(ServiceBatch, OneAdmissionUnitOneAnswer) {
  QueryService::Options o;
  o.workers = 2;
  o.queue_capacity = 8;
  o.cache_capacity = 64;
  QueryService svc(o);
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  FlowBatchInfoQuery q;
  q.batch.mode = FlowBatchQuery::Mode::kIndependent;
  q.batch.queries = {tiny_flow(10).query, tiny_flow(20).query,
                     tiny_flow(200).query};
  const FlowBatchResponse r = svc.flow_info_batch(q);
  ASSERT_EQ(r.meta.status, QueryStatus::kAnswered) << r.meta.error;
  ASSERT_EQ(r.results.size(), 3u);
  EXPECT_TRUE(r.results[0].fixed[0].satisfied);
  EXPECT_TRUE(r.results[1].fixed[0].satisfied);
  EXPECT_FALSE(r.results[2].fixed[0].satisfied) << "200 Mbps on a 100 link";
  EXPECT_EQ(svc.stats().batch_queries, 1u);
  EXPECT_EQ(svc.admission().in_flight(), 0u);

  // The identical batch again: an O(1) fresh hit under the batch
  // fingerprint, no second solve.
  const FlowBatchResponse again = svc.flow_info_batch(q);
  EXPECT_EQ(again.meta.status, QueryStatus::kAnswered);
  EXPECT_TRUE(again.meta.from_cache);
  ASSERT_EQ(again.results.size(), 3u);
  expect_result_eq(again.results[2], r.results[2], "cached sub[2]");
}

TEST(ServiceBatch, IndependentBatchWarmsSingleQueryFingerprints) {
  QueryService::Options o;
  o.workers = 2;
  o.cache_capacity = 64;
  QueryService svc(o);
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  FlowBatchInfoQuery batch;
  batch.batch.mode = FlowBatchQuery::Mode::kIndependent;
  batch.batch.queries = {tiny_flow(10).query, tiny_flow(20).query};
  const FlowBatchResponse br = svc.flow_info_batch(batch);
  ASSERT_TRUE(br.meta.ok()) << br.meta.error;

  // A later lone flow_info for either sub-query never reaches a worker:
  // the batch already stored its answer under the single-query key.
  const FlowInfoResponse single = svc.flow_info(tiny_flow(20));
  EXPECT_EQ(single.meta.status, QueryStatus::kAnswered);
  EXPECT_TRUE(single.meta.from_cache);
  expect_result_eq(single.result, br.results[1], "warmed sub[1]");
}

TEST(ServiceBatch, SharedContradictionComesBackStructured) {
  QueryService svc;
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  FlowBatchInfoQuery q;
  q.batch.mode = FlowBatchQuery::Mode::kShared;
  q.batch.queries = {tiny_flow(5).query, tiny_flow(5).query};
  q.batch.queries[1].timeframe = Timeframe::history(5.0);
  const FlowBatchResponse r = svc.flow_info_batch(q);
  EXPECT_EQ(r.meta.status, QueryStatus::kError);
  EXPECT_NE(r.meta.error.find("one timeframe"), std::string::npos)
      << r.meta.error;
  EXPECT_EQ(svc.admission().in_flight(), 0u);
}

// --- QueryService: the coalescing window ------------------------------

TEST(Coalescer, ConcurrentSinglesMatchDirectAnswers) {
  // Two services over the same published model: one with the window off
  // (the oracle), one coalescing.  Every coalesced answer must be
  // bit-for-bit the direct answer.
  QueryService direct;
  direct.start();
  direct.publish(tiny_model(0.0), 0.0);

  QueryService::Options o;
  o.workers = 2;
  o.coalesce_window = 2ms;
  o.coalesce_max_batch = 16;
  QueryService svc(o);
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  constexpr int kCallers = 8;
  std::vector<FlowInfoResponse> got(kCallers);
  std::vector<std::thread> callers;
  for (int i = 0; i < kCallers; ++i)
    callers.emplace_back(
        [&svc, &got, i] { got[static_cast<std::size_t>(i)] =
                              svc.flow_info(tiny_flow(10 + i)); });
  for (std::thread& t : callers) t.join();

  for (int i = 0; i < kCallers; ++i) {
    const FlowInfoResponse& r = got[static_cast<std::size_t>(i)];
    ASSERT_EQ(r.meta.status, QueryStatus::kAnswered) << r.meta.error;
    const FlowInfoResponse oracle = direct.flow_info(tiny_flow(10 + i));
    expect_result_eq(r.result, oracle.result,
                     "caller[" + std::to_string(i) + "]");
  }

  const ServiceStats s = svc.stats();
  EXPECT_EQ(s.coalesced_queries, static_cast<std::uint64_t>(kCallers))
      << "every untraced flow_info should take the coalesced path";
  EXPECT_GE(s.coalesced_batches, 1u);
  EXPECT_LE(s.coalesced_batches, static_cast<std::uint64_t>(kCallers));
  EXPECT_EQ(direct.stats().coalesced_queries, 0u);
  wait_for_drain(svc);
}

TEST(Coalescer, TracedQueriesBypassTheWindow) {
  QueryService::Options o;
  o.coalesce_window = 2ms;
  QueryService svc(o);
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  FlowInfoQuery q = tiny_flow(10);
  q.trace = true;
  const FlowInfoResponse r = svc.flow_info(std::move(q));
  EXPECT_EQ(r.meta.status, QueryStatus::kAnswered) << r.meta.error;
  EXPECT_FALSE(r.meta.trace.empty()) << "traced query lost its span tree";
  EXPECT_EQ(svc.stats().coalesced_queries, 0u);
}

TEST(Coalescer, DeadlineExpiresInsideTheWindowWithoutLeakingSlots) {
  QueryService::Options o;
  o.workers = 2;
  o.coalesce_window = 50ms;  // far past the caller's budget
  QueryService svc(o);
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  FlowInfoQuery q = tiny_flow(10);
  q.deadline = 2ms;
  const FlowInfoResponse r = svc.flow_info(std::move(q));
  EXPECT_EQ(r.meta.status, QueryStatus::kExpired);
  EXPECT_GE(svc.stats().expired, 1u);
  // The parked entry's admission slot comes back when the flush fires.
  wait_for_drain(svc);
}

TEST(Coalescer, ShedsAtArrivalBeforeParking) {
  QueryService::Options o;
  o.workers = 1;
  o.queue_capacity = 2;
  o.coalesce_window = 5ms;
  QueryService svc(o);
  svc.start();
  svc.publish(tiny_model(0.0), 0.0);

  const std::size_t held =
      occupy_all_slots(svc, TenantAdmission::kDefaultTenant);
  ASSERT_GE(held, 1u);
  const FlowInfoResponse r = svc.flow_info(tiny_flow(10));
  EXPECT_EQ(r.meta.status, QueryStatus::kOverloaded)
      << "coalescing must not smuggle queries past admission";
  release_slots(svc, TenantAdmission::kDefaultTenant, held);

  // With the slots back, the same query parks and answers.
  const FlowInfoResponse ok = svc.flow_info(tiny_flow(10));
  EXPECT_EQ(ok.meta.status, QueryStatus::kAnswered) << ok.meta.error;
  wait_for_drain(svc);
}

// --- FlowInfoEndpoint: one surface, four implementations --------------

/// Exercises all three endpoint methods through the abstract base; every
/// implementation owes a structured ok() response on a healthy plane.
/// Budgets are deliberately lavish: this test is about the surface, and
/// a parallel ctest run must not be able to expire it.
void probe_endpoint(FlowInfoEndpoint& e, const std::string& src,
                    const std::string& dst, const std::string& who) {
  GraphQuery gq;
  gq.nodes = {src, dst};
  gq.deadline = std::chrono::seconds(10);
  gq.max_staleness = 1e9;
  const GraphResponse g = e.get_graph(std::move(gq));
  EXPECT_TRUE(g.meta.ok()) << who << ": " << g.meta.error;
  EXPECT_GE(g.graph.node_count(), 2u) << who;

  FlowQuery fq;
  fq.fixed = {FlowRequest{src, dst, mbps(5)}};
  FlowInfoQuery fi;
  fi.query = fq;
  fi.deadline = std::chrono::seconds(10);
  fi.max_staleness = 1e9;
  const FlowInfoResponse f = e.flow_info(std::move(fi));
  EXPECT_TRUE(f.meta.ok()) << who << ": " << f.meta.error;
  ASSERT_EQ(f.result.fixed.size(), 1u) << who;

  FlowBatchInfoQuery bq;
  bq.batch.mode = FlowBatchQuery::Mode::kIndependent;
  bq.batch.queries = {fq, fq};
  bq.deadline = std::chrono::seconds(10);
  bq.max_staleness = 1e9;
  const FlowBatchResponse b = e.flow_info_batch(std::move(bq));
  EXPECT_TRUE(b.meta.ok()) << who << ": " << b.meta.error;
  ASSERT_EQ(b.results.size(), 2u) << who;
  // Shape only, not bit-for-bit: against a live poller the lone call and
  // the batch can straddle a snapshot publish.  The pinned-snapshot
  // differential oracle lives in the ModelerBatch / Coalescer suites.
  ASSERT_EQ(b.results[0].fixed.size(), 1u) << who;
  EXPECT_TRUE(b.results[0].fixed[0].routable) << who;
  EXPECT_EQ(b.results[0].fixed[0].request.src, src) << who;
}

TEST(Endpoint, AllSurfacesAnswerThroughTheBase) {
  CmuHarness harness;
  harness.start(10.0);

  // The degenerate synchronous surface over the bare modeler.
  ModelerEndpoint bare(harness.modeler());
  probe_endpoint(bare, "m-4", "m-5", "ModelerEndpoint");

  // The concurrent service, and a retry-budgeted client in front of it.
  QueryService::Options so;
  so.workers = 2;
  auto service = harness.serve(so);
  probe_endpoint(*service, "m-4", "m-5", "QueryService");

  RemosClient client(*service, {});
  probe_endpoint(client, "m-4", "m-5", "RemosClient");
}

TEST(Endpoint, FailoverCoordinatorRoutesBatchesAsOneUnit) {
  ReplicatedService::Options o;
  o.replicas = 2;
  o.service.workers = 2;
  ReplicatedService rs(o);
  rs.start();
  rs.publish(tiny_model(1.0), 1.0);

  probe_endpoint(rs.coordinator(), "a", "b", "FailoverCoordinator");
  // One batch = one routed query against one replica's snapshot.
  EXPECT_GE(rs.coordinator().stats().queries, 3u);
}

}  // namespace
}  // namespace remos::service
