#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "apps/harness.hpp"
#include "fx/adaptation.hpp"
#include "fx/runtime.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"

namespace remos::fx {
namespace {

using apps::CmuHarness;

AppModel tiny_app(std::size_t iterations = 1) {
  AppModel app;
  app.name = "tiny";
  app.iterations = iterations;
  ComputePhase c;
  c.parallel_seconds = 1.0;
  CommPhase k;
  k.pattern = Pattern::kAllToAll;
  k.volume = 10e6;  // 10 MB
  app.phases = {c, k};
  return app;
}

TEST(FxRuntimeTest, ComputeScalesWithNodes) {
  CmuHarness h2, h4;
  AppModel app;
  app.name = "compute-only";
  app.iterations = 1;
  ComputePhase c;
  c.parallel_seconds = 8.0;
  app.phases = {c};

  FxRuntime two(h2.sim(), app, {"m-4", "m-5"});
  const RunStats s2 = two.run();
  EXPECT_NEAR(s2.total, 4.0, 1e-6);

  FxRuntime four(h4.sim(), app, {"m-4", "m-5", "m-6", "m-7"});
  const RunStats s4 = four.run();
  EXPECT_NEAR(s4.total, 2.0, 1e-6);
}

TEST(FxRuntimeTest, SerialFractionDoesNotScale) {
  CmuHarness h;
  AppModel app;
  app.name = "serial";
  app.iterations = 2;
  ComputePhase c;
  c.parallel_seconds = 4.0;
  c.serial_seconds = 1.0;
  app.phases = {c};
  FxRuntime rt(h.sim(), app, {"m-4", "m-5", "m-6", "m-7"});
  EXPECT_NEAR(rt.run().total, 2 * (1.0 + 1.0), 1e-6);
}

TEST(FxRuntimeTest, ChunkImbalancePenalizesMismatchedNodeCount) {
  // Compiled for 8 chunks, run on 5 nodes: the busiest node carries 2/8
  // of the work, vs 1/5 when perfectly decomposed -- a 1.25x compute
  // penalty (the paper's Table 3 "compiled for 8, running on 5" artifact).
  CmuHarness ha, hb;
  AppModel native;
  native.name = "native";
  native.iterations = 1;
  ComputePhase c;
  c.parallel_seconds = 10.0;
  native.phases = {c};
  AppModel pinned = native;
  pinned.chunks = 8;

  std::vector<std::string> five{"m-4", "m-5", "m-6", "m-7", "m-8"};
  const RunStats sn = FxRuntime(ha.sim(), native, five).run();
  const RunStats sp = FxRuntime(hb.sim(), pinned, five).run();
  EXPECT_NEAR(sn.total, 2.0, 1e-6);
  EXPECT_NEAR(sp.total, 2.5, 1e-6);
}

TEST(FxRuntimeTest, CommPhaseMovesRealBytes) {
  CmuHarness h;
  AppModel app = tiny_app();
  FxRuntime rt(h.sim(), app, {"m-4", "m-5"});
  const RunStats s = rt.run();
  // All-to-all of 10 MB over 2 nodes: each direction ships 2.5 MB at
  // 100 Mbps in parallel = 0.2 s (+ small overheads), compute 0.5 s.
  EXPECT_NEAR(s.compute, 0.5, 1e-6);
  EXPECT_NEAR(s.communication, 0.2, 0.05);
  EXPECT_NEAR(s.total, s.compute + s.communication, 1e-9);
}

TEST(FxRuntimeTest, SingleNodeSkipsCommunication) {
  CmuHarness h;
  FxRuntime rt(h.sim(), tiny_app(), {"m-4"});
  const RunStats s = rt.run();
  EXPECT_NEAR(s.compute, 1.0, 1e-9);
  EXPECT_LT(s.communication, 0.01);  // just the phase overhead
}

TEST(FxRuntimeTest, ExternalTrafficSlowsCommunication) {
  CmuHarness clean, busy;
  std::vector<std::string> nodes{"m-4", "m-6"};
  const RunStats fast = FxRuntime(clean.sim(), tiny_app(), nodes).run();
  netsim::CbrTraffic blast(busy.sim(), "m-6", "m-8", mbps(95), 19.0);
  const RunStats slow = FxRuntime(busy.sim(), tiny_app(), nodes).run();
  EXPECT_GT(slow.communication, 3.0 * fast.communication);
  EXPECT_NEAR(slow.compute, fast.compute, 1e-9);
}

TEST(FxRuntimeTest, RingBroadcastReducePatterns) {
  for (const Pattern p :
       {Pattern::kRing, Pattern::kBroadcast, Pattern::kReduce}) {
    CmuHarness h;
    AppModel app;
    app.name = "pat";
    app.iterations = 1;
    CommPhase k;
    k.pattern = p;
    k.volume = 30e6;
    app.phases = {k};
    FxRuntime rt(h.sim(), app, {"m-4", "m-5", "m-6"});
    const RunStats s = rt.run();
    EXPECT_GT(s.communication, 0.01) << to_string(p);
    EXPECT_LT(s.communication, 3.0) << to_string(p);
  }
}

TEST(FxRuntimeTest, Validation) {
  CmuHarness h;
  EXPECT_THROW(FxRuntime(h.sim(), tiny_app(), {}), InvalidArgument);
  EXPECT_THROW(FxRuntime(h.sim(), tiny_app(), {"m-4", "m-4"}),
               InvalidArgument);
  EXPECT_THROW(FxRuntime(h.sim(), tiny_app(), {"nope"}), NotFoundError);
  AppModel pinned = tiny_app();
  pinned.chunks = 2;
  EXPECT_THROW(FxRuntime(h.sim(), pinned, {"m-1", "m-2", "m-3"}),
               InvalidArgument);
  AppModel zero = tiny_app();
  zero.iterations = 0;
  EXPECT_THROW(FxRuntime(h.sim(), zero, {"m-1"}), InvalidArgument);
}

class AdaptationOnTestbed : public ::testing::Test {
 protected:
  AdaptationOnTestbed() { harness_.start(10.0); }
  CmuHarness harness_;
};

TEST_F(AdaptationOnTestbed, NoTrafficMeansNoMigration) {
  AdaptationModule adapt(harness_.modeler(), harness_.hosts(), "m-4");
  const auto d = adapt.evaluate({"m-4", "m-5", "m-6"});
  EXPECT_FALSE(d.migrate);
  EXPECT_LE(d.best_cost, d.current_cost + 1e-9);
  EXPECT_EQ(adapt.evaluations(), 1u);
}

TEST_F(AdaptationOnTestbed, MigratesAwayFromTraffic) {
  netsim::CbrTraffic blast(harness_.sim(), "m-6", "m-8", mbps(95), 19.0);
  harness_.sim().run_for(12.0);
  AdaptationModule::Options opts;
  opts.timeframe = core::Timeframe::history(10.0);
  AdaptationModule adapt(harness_.modeler(), harness_.hosts(), "m-4", opts);
  // Current mapping straddles the hot link.
  const auto d = adapt.evaluate({"m-4", "m-6", "m-8"});
  EXPECT_TRUE(d.migrate);
  EXPECT_LT(d.best_cost, d.current_cost);
  // Recommended set avoids m-6 and m-8 (their access links are hot).
  const std::set<std::string> rec(d.nodes.begin(), d.nodes.end());
  EXPECT_TRUE(rec.contains("m-4"));
  EXPECT_FALSE(rec.contains("m-8"));
}

TEST_F(AdaptationOnTestbed, OwnTrafficFallacyAndCompensation) {
  // The §8.3 fallacy: an app on {m-4, m-5, m-6} whose m-5/m-6 exchange
  // saturates those access links sees them busy and wants to move to the
  // idle aspen hosts -- fleeing its own traffic.  With compensation the
  // module credits the app's traffic back and stays put.
  netsim::CbrTraffic up(harness_.sim(), "m-5", "m-6", mbps(60));
  netsim::CbrTraffic down(harness_.sim(), "m-6", "m-5", mbps(60));
  harness_.sim().run_for(12.0);
  const std::vector<std::string> current{"m-4", "m-5", "m-6"};

  AdaptationModule::Options naive;
  naive.timeframe = core::Timeframe::history(10.0);
  AdaptationModule adapt_naive(harness_.modeler(), harness_.hosts(), "m-4",
                               naive);
  const auto d1 = adapt_naive.evaluate(current);
  EXPECT_TRUE(d1.migrate);  // flees its own traffic

  AdaptationModule::Options comp = naive;
  comp.compensate_own_traffic = true;
  AdaptationModule adapt_comp(harness_.modeler(), harness_.hosts(), "m-4",
                              comp);
  const auto d2 = adapt_comp.evaluate(current, mbps(60));
  EXPECT_FALSE(d2.migrate);
}

TEST_F(AdaptationOnTestbed, ThresholdSuppressesMarginalMoves) {
  netsim::CbrTraffic mild(harness_.sim(), "m-6", "m-8", mbps(10));
  harness_.sim().run_for(12.0);
  AdaptationModule::Options opts;
  opts.timeframe = core::Timeframe::history(10.0);
  opts.improvement_threshold = 0.5;  // demand a 50% gain
  AdaptationModule adapt(harness_.modeler(), harness_.hosts(), "m-4", opts);
  const auto d = adapt.evaluate({"m-4", "m-6", "m-8"});
  EXPECT_FALSE(d.migrate);  // 10 Mbps of cross-traffic is not worth it
}

TEST_F(AdaptationOnTestbed, Validation) {
  EXPECT_THROW(AdaptationModule(harness_.modeler(), {"m-1"}, "m-1"),
               InvalidArgument);
  EXPECT_THROW(
      AdaptationModule(harness_.modeler(), {"m-1", "m-2"}, "m-9"),
      InvalidArgument);
  AdaptationModule ok(harness_.modeler(), harness_.hosts(), "m-1");
  EXPECT_THROW(ok.evaluate({}), InvalidArgument);
  EXPECT_THROW(ok.evaluate({"not-a-candidate"}), InvalidArgument);
}

TEST_F(AdaptationOnTestbed, RuntimeMigratesUnderInterference) {
  // An iterative app starts on nodes crossing the hot link and must end
  // up mostly on clean nodes, completing faster than a pinned run.
  netsim::CbrTraffic blast(harness_.sim(), "m-6", "m-8", mbps(95), 19.0);
  harness_.sim().run_for(12.0);

  AppModel app;
  app.name = "adaptive-tiny";
  app.iterations = 6;
  ComputePhase c;
  c.parallel_seconds = 4.0;
  CommPhase k;
  k.pattern = Pattern::kAllToAll;
  k.volume = 40e6;
  app.phases = {c, k};

  const std::vector<std::string> bad_start{"m-4", "m-6", "m-8"};

  CmuHarness pinned_harness;
  pinned_harness.start(12.0);
  netsim::CbrTraffic blast2(pinned_harness.sim(), "m-6", "m-8", mbps(95),
                            19.0);
  pinned_harness.sim().run_for(12.0);
  const RunStats pinned =
      FxRuntime(pinned_harness.sim(), app, bad_start).run();

  AdaptationModule::Options opts;
  opts.timeframe = core::Timeframe::history(10.0);
  opts.compensate_own_traffic = true;
  AdaptationModule adapt(harness_.modeler(), harness_.hosts(), "m-4", opts);
  FxRuntime rt(harness_.sim(), app, bad_start);
  rt.set_adaptation(&adapt);
  const RunStats adaptive = rt.run();

  EXPECT_GE(adaptive.migrations, 1u);
  EXPECT_LT(adaptive.total, pinned.total);
  // Final mapping avoids the blast's endpoints.
  const auto& final_nodes = adaptive.mappings.back();
  const std::set<std::string> fin(final_nodes.begin(), final_nodes.end());
  EXPECT_FALSE(fin.contains("m-6"));
  EXPECT_FALSE(fin.contains("m-8"));
}

}  // namespace
}  // namespace remos::fx
namespace remos::fx {
namespace {

TEST(FxRuntimeAccounting, StatsPartitionTheRun) {
  apps::CmuHarness h;
  h.start(6.0);
  AppModel app;
  app.name = "acct";
  app.iterations = 4;
  ComputePhase c;
  c.parallel_seconds = 2.0;
  CommPhase k;
  k.pattern = Pattern::kAllToAll;
  k.volume = 20e6;
  app.phases = {c, k};
  AdaptationModule adapt(h.modeler(), h.hosts(), "m-4");
  FxRuntime rt(h.sim(), app, {"m-4", "m-5"});
  rt.set_adaptation(&adapt);
  const RunStats s = rt.run();
  EXPECT_NEAR(s.total, s.compute + s.communication + s.adaptation_overhead,
              1e-6);
  EXPECT_EQ(adapt.evaluations(), 3u);  // iterations 2..4
  ASSERT_FALSE(s.mappings.empty());
  EXPECT_EQ(s.mappings.size(), s.migrations + 1);
}

}  // namespace
}  // namespace remos::fx
