// Cross-module integration tests: whole-pipeline scenarios that mirror
// the paper's experiments at reduced scale, plus end-to-end behavior
// under transport loss and multi-collector merging.
#include <gtest/gtest.h>

#include <algorithm>

#include "apps/apps.hpp"
#include "apps/harness.hpp"
#include "cluster/clustering.hpp"
#include "collector/benchmark_collector.hpp"
#include "collector/collector_set.hpp"
#include "core/remos_api.hpp"
#include "fx/runtime.hpp"
#include "netsim/traffic.hpp"
#include "util/error.hpp"

namespace remos {
namespace {

using apps::CmuHarness;
using core::Timeframe;

TEST(Integration, MiniTable2SelectionBeatsStaticChoice) {
  // The Table 2 mechanism end-to-end at small scale: under a blast, nodes
  // picked from live measurements run a real workload measurably faster
  // than a traffic-oblivious set.
  auto run = [](const std::vector<std::string>& nodes) {
    CmuHarness h;
    h.start(5.0);
    netsim::CbrTraffic blast(h.sim(), "m-6", "m-8", mbps(95), 120.0);
    h.sim().run_for(10.0);
    fx::AppModel app = apps::make_fft(512);
    return fx::FxRuntime(h.sim(), app, nodes).run().total;
  };

  std::vector<std::string> selected;
  {
    CmuHarness h;
    h.start(5.0);
    netsim::CbrTraffic blast(h.sim(), "m-6", "m-8", mbps(95), 120.0);
    h.sim().run_for(10.0);
    const auto g = h.modeler().get_graph(h.hosts(), Timeframe::history(8.0));
    const cluster::DistanceMatrix d(g, h.hosts());
    selected = cluster::greedy_cluster(d, "m-4", 4).nodes;
  }
  const double t_selected = run(selected);
  const double t_static = run({"m-4", "m-5", "m-6", "m-7"});
  EXPECT_GT(t_static, 1.5 * t_selected);
}

TEST(Integration, ModelerOverMergedCollectors) {
  CmuHarness h;
  h.start(8.0);
  collector::BenchmarkCollector probes(h.sim(), {"m-1", "m-8"});
  probes.discover();
  probes.poll();

  collector::CollectorSet set;
  set.add(h.collector());
  set.add(probes);
  core::Modeler modeler(set);
  modeler.set_clock([&] { return h.sim().now(); });

  // The merged model contains BOTH the physical path and the benchmark
  // collector's logical pair link; with equal hop counts the physical
  // 3-hop route vs 1-hop logical link -- the logical link wins on hops.
  const auto g = modeler.get_graph({"m-1", "m-8"}, Timeframe::current());
  const auto path = g.route("m-1", "m-8");
  ASSERT_TRUE(path.has_value());
  EXPECT_EQ(path->hops(), 1u);

  core::FlowQuery q;
  q.independent = core::FlowRequest{"m-1", "m-8", 0};
  const auto r = modeler.flow_info(q);
  EXPECT_TRUE(r.independent->routable);
  EXPECT_GT(r.independent->bandwidth.quartiles.median, mbps(80));
}

TEST(Integration, QueriesSurviveLossyManagementNetwork) {
  CmuHarness::Options o;
  o.snmp_loss = 0.2;
  CmuHarness h(o);
  h.start(20.0);
  netsim::CbrTraffic cbr(h.sim(), "m-6", "m-8", mbps(50));
  h.sim().run_for(20.0);
  const auto g = h.modeler().get_graph(h.hosts(), Timeframe::history(15.0));
  EXPECT_EQ(g.compute_nodes().size(), 8u);
  bool flipped = false;
  const auto* tw = g.find_link("timberline", "whiteface", &flipped);
  ASSERT_NE(tw, nullptr);
  const Measurement used = flipped ? tw->used_ba : tw->used_ab;
  EXPECT_NEAR(used.quartiles.median, mbps(50), mbps(3));
}

TEST(Integration, KeepAllOptionReturnsWholeNetwork) {
  CmuHarness h;
  h.start(4.0);
  core::LogicalOptions opts;
  opts.keep_all = true;
  opts.collapse_chains = false;
  const auto g = h.modeler().get_graph({"m-1"}, Timeframe::current(), opts);
  EXPECT_EQ(g.node_count(), 11u);
  EXPECT_EQ(g.link_count(), 11u);
}

TEST(Integration, SharingPolicyVisibleEndToEnd) {
  CmuHarness h;
  h.start(4.0);
  // Physical links report max-min fairness through the enterprise MIB.
  core::LogicalOptions raw;
  raw.collapse_chains = false;
  const auto g = h.modeler().get_graph({"m-4", "m-5"},
                                       Timeframe::current(), raw);
  for (const auto& l : g.links())
    EXPECT_EQ(l.sharing, SharingPolicy::kMaxMinFair);
  // A collapsed chain of uniform policy keeps it.
  const auto collapsed =
      h.modeler().get_graph({"m-4", "m-5"}, Timeframe::current());
  ASSERT_EQ(collapsed.link_count(), 1u);
  EXPECT_EQ(collapsed.links()[0].sharing, SharingPolicy::kMaxMinFair);
  EXPECT_NE(collapsed.to_string().find("max-min-fair"), std::string::npos);

  // Benchmark-collector pair links have no policy information.
  collector::BenchmarkCollector probes(h.sim(), {"m-1", "m-8"});
  probes.discover();
  probes.poll();
  core::Modeler probe_modeler(probes);
  const auto pg = probe_modeler.get_graph({"m-1", "m-8"},
                                          Timeframe::current());
  ASSERT_EQ(pg.link_count(), 1u);
  EXPECT_EQ(pg.links()[0].sharing, SharingPolicy::kUnknown);
}

TEST(Integration, AdaptiveAppEndToEndUnderChangingConditions) {
  // Start clean, inject a blast mid-run, expect at least one migration
  // and a final mapping that avoids the blast.
  CmuHarness h;
  h.start(6.0);
  fx::AppModel app;
  app.name = "mid-run";
  app.iterations = 10;
  fx::ComputePhase c;
  c.parallel_seconds = 8.0;
  fx::CommPhase k;
  k.pattern = fx::Pattern::kAllToAll;
  k.volume = 50e6;
  app.phases = {c, k};

  auto blast = std::make_unique<netsim::CbrTraffic>(
      h.sim(), "m-6", "m-8", mbps(95), 120.0, "late-blast");
  // Kill the blast's flow until iteration ~3 by... simpler: schedule its
  // creation later.
  blast.reset();
  std::unique_ptr<netsim::CbrTraffic> late;
  h.sim().schedule_in(12.0, [&] {
    late = std::make_unique<netsim::CbrTraffic>(h.sim(), "m-6", "m-8",
                                                mbps(95), 120.0, "late");
  });

  fx::AdaptationModule::Options opts;
  opts.timeframe = Timeframe::history(8.0);
  opts.compensate_own_traffic = true;
  fx::AdaptationModule adapt(h.modeler(), h.hosts(), "m-4", opts);
  fx::FxRuntime rt(h.sim(), app, {"m-4", "m-6", "m-8"});
  rt.set_adaptation(&adapt);
  const auto stats = rt.run();
  EXPECT_GE(stats.migrations, 1u);
  const auto& final_nodes = stats.mappings.back();
  EXPECT_EQ(std::count(final_nodes.begin(), final_nodes.end(), "m-6"), 0);
  EXPECT_EQ(std::count(final_nodes.begin(), final_nodes.end(), "m-8"), 0);
}

TEST(Integration, QueryCountAccounting) {
  CmuHarness h;
  h.start(4.0);
  const std::size_t before = h.modeler().queries_answered();
  (void)h.modeler().get_graph({"m-1", "m-2"}, Timeframe::current());
  core::FlowQuery q;
  q.independent = core::FlowRequest{"m-1", "m-2", 0};
  (void)h.modeler().flow_info(q);
  // flow_info internally performs one graph query.
  EXPECT_EQ(h.modeler().queries_answered(), before + 3);
}

}  // namespace
}  // namespace remos
